// Shared helpers for the experiment benches (E1..E10).
//
// Every bench prints a GitHub-markdown table whose rows mirror what the
// paper reports (or motivates); EXPERIMENTS.md records the outputs.
#ifndef XDRS_BENCH_BENCH_UTIL_HPP
#define XDRS_BENCH_BENCH_UTIL_HPP

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "core/framework.hpp"
#include "topo/testbed.hpp"

namespace xdrs::bench {

inline void print_header(const char* experiment, const char* title) {
  std::printf("\n## %s — %s\n\n", experiment, title);
}

inline void print_note(const std::string& note) { std::printf("%s\n", note.c_str()); }

/// Standard hybrid configuration used by several experiments; individual
/// benches override the fields they sweep.
inline core::FrameworkConfig hybrid_base(std::uint32_t ports) {
  core::FrameworkConfig c;
  c.ports = ports;
  c.discipline = core::SchedulingDiscipline::kHybridEpoch;
  c.link_rate = sim::DataRate::gbps(10);
  c.eps_rate = sim::DataRate::gbps(10);
  c.epoch = sim::Time::microseconds(100);
  c.ocs_reconfig = sim::Time::microseconds(1);
  c.min_circuit_hold = sim::Time::microseconds(10);
  return c;
}

/// Installs the standard hybrid stack — instantaneous estimator + Solstice
/// sized to the configuration's reconfiguration cost — with the given
/// timing-model spec ("hardware", "software", "hw:500MHz", ...).  Built
/// entirely through the PolicyRegistry.
inline void install_hybrid_policies(core::HybridSwitchFramework& fw,
                                    const std::string& timing_spec = "hardware") {
  fw.set_policies(core::PolicyStack{}.with_timing(timing_spec));
}

// ---------------------------------------------------------------------------
// Heap-allocation counting for the zero-allocation steady-state check.
//
// The counter itself lives here; the replacement operator new/delete pair is
// compiled only into binaries that define XDRS_BENCH_ALLOC_COUNTER before
// including this header (replacement allocation functions must have exactly
// one definition per program).
inline std::atomic<std::uint64_t> g_heap_allocs{0};

[[nodiscard]] inline std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

}  // namespace xdrs::bench

#ifdef XDRS_BENCH_ALLOC_COUNTER
#include <cstdlib>
#include <new>

// GCC pairs new/delete expressions it inlines against these replacements and
// misreports malloc/free as mismatched; the pairing below is uniform
// (malloc or aligned_alloc in, free out), so silence that check here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  xdrs::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  xdrs::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& nt) noexcept {
  return ::operator new(size, nt);
}

// Over-aligned allocations (SIMD workspaces and the like) must count too,
// or they would slip past the zero-allocation gate unnoticed.
void* operator new(std::size_t size, std::align_val_t align) {
  xdrs::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif  // XDRS_BENCH_ALLOC_COUNTER

#endif  // XDRS_BENCH_BENCH_UTIL_HPP
