// Shared helpers for the experiment benches (E1..E10).
//
// Every bench prints a GitHub-markdown table whose rows mirror what the
// paper reports (or motivates); EXPERIMENTS.md records the outputs.
#ifndef XDRS_BENCH_BENCH_UTIL_HPP
#define XDRS_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <string>

#include "core/framework.hpp"
#include "schedulers/solstice.hpp"
#include "topo/testbed.hpp"

namespace xdrs::bench {

inline void print_header(const char* experiment, const char* title) {
  std::printf("\n## %s — %s\n\n", experiment, title);
}

inline void print_note(const std::string& note) { std::printf("%s\n", note.c_str()); }

/// Standard hybrid configuration used by several experiments; individual
/// benches override the fields they sweep.
inline core::FrameworkConfig hybrid_base(std::uint32_t ports) {
  core::FrameworkConfig c;
  c.ports = ports;
  c.discipline = core::SchedulingDiscipline::kHybridEpoch;
  c.link_rate = sim::DataRate::gbps(10);
  c.eps_rate = sim::DataRate::gbps(10);
  c.epoch = sim::Time::microseconds(100);
  c.ocs_reconfig = sim::Time::microseconds(1);
  c.min_circuit_hold = sim::Time::microseconds(10);
  return c;
}

/// Installs instantaneous estimator + given timing model + Solstice circuit
/// scheduler sized to the configuration's reconfiguration cost.
inline void install_hybrid_policies(core::HybridSwitchFramework& fw,
                                    std::unique_ptr<control::SchedulerTimingModel> timing) {
  const auto& c = fw.config();
  fw.set_estimator(std::make_unique<demand::InstantaneousEstimator>(c.ports, c.ports));
  fw.set_timing_model(std::move(timing));
  schedulers::SolsticeConfig sc;
  sc.reconfig_cost_bytes = core::reconfig_cost_bytes(c);
  sc.max_slots = c.ports;
  fw.set_circuit_scheduler(std::make_unique<schedulers::SolsticeScheduler>(sc));
}

}  // namespace xdrs::bench

#endif  // XDRS_BENCH_BENCH_UTIL_HPP
