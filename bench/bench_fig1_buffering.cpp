// E1 / Figure 1 — "Host buffering vs Switch buffering".
//
// Reproduces the paper's motivating analysis: the buffer memory required to
// run a 64x64, 10 Gbps/port input-queued hybrid switch losslessly, as a
// function of the optical switching time, under (a) a software control loop
// (ms-scale) and (b) a hardware control loop (ns-scale).  The paper's
// anchors: 1 ms switching -> "approximately gigabytes" (host buffering
// required), nanosecond switching -> "kilobytes" (fits in the ToR).
//
// The closed-form model (src/analysis) is then cross-validated against the
// peak VOQ occupancy measured by full simulation at three operating points.
#include <cinttypes>

#include "analysis/buffering.hpp"
#include "bench_util.hpp"
#include "control/timing.hpp"
#include "stats/table.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;
using sim::Time;

void model_sweep() {
  bench::print_header("E1 (Figure 1)", "buffering requirement vs switching time, 64x64 @ 10 Gbps");

  const control::SoftwareSchedulerTimingModel sw;
  const control::HardwareSchedulerTimingModel hw;
  const Time sw_latency = sw.decision_latency(64, 4, true).total();
  const Time hw_latency = hw.decision_latency(64, 4, true).total();

  stats::Table t{{"switching time", "control loop", "exposure", "total buffer", "per port",
                  "fits 32MiB ToR?", "regime"}};
  const Time sweep[] = {10_ns, 100_ns, 1_us, 10_us, 100_us, 1_ms, 10_ms};
  for (const Time tsw : sweep) {
    for (const bool hardware : {false, true}) {
      analysis::BufferingScenario s;
      s.ports = 64;
      s.port_rate = sim::DataRate::gbps(10);
      s.switching_time = tsw;
      s.control_loop_latency = hardware ? hw_latency : sw_latency;
      s.duty_cycle = 0.9;
      s.load = 1.0;
      const analysis::BufferingRequirement r = analysis::compute_buffering(s);
      t.row()
          .cell(tsw.to_string())
          .cell(hardware ? "hardware (ns)" : "software (ms)")
          .cell(r.exposure.to_string())
          .cell(sim::format_bytes(static_cast<double>(r.total_bytes)))
          .cell(sim::format_bytes(static_cast<double>(r.per_port_bytes)))
          .cell(r.fits_in_tor ? "yes" : "no")
          .cell(r.fits_in_tor ? "switch (ToR) buffering" : "host buffering");
    }
  }
  std::printf("%s\n", t.markdown().c_str());

  analysis::BufferingScenario s;
  s.ports = 64;
  s.port_rate = sim::DataRate::gbps(10);
  s.control_loop_latency = hw_latency;
  const Time crossover = analysis::max_switching_time_for_buffer(
      s, analysis::kTypicalTorBufferBytes);
  std::printf("Crossover: with a hardware control loop, switching up to %s still fits a "
              "32 MiB ToR buffer; beyond that, buffering must move to the hosts.\n",
              crossover.to_string().c_str());
}

void simulation_validation() {
  bench::print_header("E1 validation", "closed form vs simulated peak VOQ occupancy (8 ports, 1 Gbps)");
  bench::print_note("Scaled-down operating points; the model is linear in ports and rate.");

  struct Point {
    const char* label;
    Time reconfig;
    Time epoch;
    bool hardware;
  };
  const Point points[] = {
      {"fast (1us dark, 100us epoch, hw loop)", 1_us, 100_us, true},
      {"medium (10us dark, 1ms epoch, hw loop)", 10_us, 1_ms, true},
      {"slow (1ms dark, 10ms epoch, sw loop)", 1_ms, 10_ms, false},
  };

  stats::Table t{{"operating point", "model bound", "simulated peak", "peak/bound"}};
  for (const Point& pt : points) {
    core::FrameworkConfig c = bench::hybrid_base(8);
    c.link_rate = sim::DataRate::gbps(1);
    c.eps_rate = sim::DataRate::gbps(1);
    c.ocs_reconfig = pt.reconfig;
    c.epoch = pt.epoch;
    c.min_circuit_hold = pt.epoch / 10;
    c.placement = pt.hardware ? core::BufferPlacement::kToRSwitch : core::BufferPlacement::kHost;

    core::HybridSwitchFramework fw{c};
    if (pt.hardware) {
      bench::install_hybrid_policies(fw, "hardware");
    } else {
      bench::install_hybrid_policies(fw, "software");
    }
    topo::WorkloadSpec spec;
    spec.kind = topo::WorkloadSpec::Kind::kPoissonUniform;
    spec.load = 0.6;
    spec.seed = 11;
    topo::attach_workload(fw, spec);

    const Time run_for = std::max<Time>(20 * pt.epoch, 10_ms);
    const core::RunReport r = fw.run(run_for, 2 * pt.epoch);

    analysis::BufferingScenario s;
    s.ports = 8;
    s.port_rate = c.link_rate;
    s.switching_time = pt.reconfig;
    s.load = 0.6;
    s.duty_cycle = 0.9;
    const control::TimingBreakdown tb =
        pt.hardware ? control::HardwareSchedulerTimingModel{}.decision_latency(8, 4, true)
                    : control::SoftwareSchedulerTimingModel{}.decision_latency(8, 4, true);
    // The epoch bounds how stale a schedule can be; expose it like the
    // model's schedule period.
    s.control_loop_latency = tb.total() + pt.epoch;
    const analysis::BufferingRequirement model = analysis::compute_buffering(s);

    const std::int64_t simulated = r.peak_switch_buffer_bytes;
    t.row()
        .cell(pt.label)
        .cell(sim::format_bytes(static_cast<double>(model.total_bytes)))
        .cell(sim::format_bytes(static_cast<double>(simulated)))
        .cell(static_cast<double>(simulated) / static_cast<double>(model.total_bytes), 2);
  }
  std::printf("%s\n", t.markdown().c_str());
  bench::print_note(
      "The simulated peak tracks the closed-form estimate within ~1.5x (stochastic bursts push\n"
      "above the average-rate form at the fastest point; slower points sit below the worst case)\n"
      "and grows by orders of magnitude from the fast to the slow operating point, reproducing\n"
      "Figure 1's dichotomy: KB-scale at ns/us switching (ToR-resident) vs MB..GB-scale at ms\n"
      "(host-resident).");
}

}  // namespace

int main() {
  model_sweep();
  simulation_validation();
  return 0;
}
