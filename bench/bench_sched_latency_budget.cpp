// E2 — scheduler decision-latency budget: software vs hardware.
//
// Quantifies §2 of the paper: software schedulers "operate in the order of
// milliseconds due to their inherent latency (delays during demand
// estimation, schedule calculation, Input/Output (IO) processing,
// propagation delay between host and switch)", while a hardware pipeline
// answers in nanoseconds.  The same component breakdown is printed for both
// models across port counts, plus the end-to-end grant turnaround measured
// in full simulation.
#include "bench_util.hpp"
#include "control/timing.hpp"
#include "stats/table.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;
using sim::Time;

void component_table() {
  bench::print_header("E2", "decision-latency component budget (iSLIP-style, 4 iterations)");
  const control::SoftwareSchedulerTimingModel sw;
  const control::DistributedSchedulerTimingModel dist;
  const control::HardwareSchedulerTimingModel hw;
  const control::SchedulerTimingModel* models[] = {&sw, &dist, &hw};

  stats::Table t{{"model", "ports", "demand est.", "schedule comp.", "IO", "propagation",
                  "sync", "total"}};
  for (const std::uint32_t ports : {16u, 64u, 256u}) {
    for (const control::SchedulerTimingModel* model : models) {
      const control::TimingBreakdown b = model->decision_latency(ports, 4, true);
      t.row()
          .cell(model->name())
          .cell(static_cast<std::int64_t>(ports))
          .cell(b.demand_estimation.to_string())
          .cell(b.schedule_computation.to_string())
          .cell(b.io_processing.to_string())
          .cell(b.propagation.to_string())
          .cell(b.synchronisation.to_string())
          .cell(b.total().to_string());
    }
  }
  std::printf("%s\n", t.markdown().c_str());

  const double ratio = sw.decision_latency(64, 4, true).total().ratio(
      hw.decision_latency(64, 4, true).total());
  std::printf("At 64 ports the software loop is %.0fx slower than the hardware pipeline "
              "(paper: milliseconds vs nanoseconds).\n", ratio);
}

void lived_latency() {
  bench::print_header("E2 (lived)", "mean decision latency actually experienced in simulation");
  stats::Table t{{"timing model", "mean decision latency", "decisions", "p99 packet latency"}};
  for (const bool hardware : {true, false}) {
    core::FrameworkConfig c = bench::hybrid_base(8);
    c.epoch = hardware ? Time::microseconds(100) : Time::milliseconds(1);
    c.placement =
        hardware ? core::BufferPlacement::kToRSwitch : core::BufferPlacement::kHost;
    core::HybridSwitchFramework fw{c};
    if (hardware) {
      bench::install_hybrid_policies(fw, "hardware");
    } else {
      bench::install_hybrid_policies(fw, "software");
    }
    topo::WorkloadSpec spec;
    spec.load = 0.4;
    spec.seed = 3;
    topo::attach_workload(fw, spec);
    const core::RunReport r = fw.run(hardware ? 10_ms : 40_ms, hardware ? 1_ms : 4_ms);
    t.row()
        .cell(hardware ? "hardware" : "software")
        .cell(r.mean_decision_latency.to_string())
        .cell(r.scheduler_decisions)
        .cell(r.latency.quantile_time(0.99).to_string());
  }
  std::printf("%s\n", t.markdown().c_str());
}

}  // namespace

int main() {
  component_table();
  lived_latency();
  return 0;
}
