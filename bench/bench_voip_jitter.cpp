// E4 — interactive (VOIP-like) traffic latency and jitter under slow
// (software, host-buffered) vs fast (hardware, ToR-buffered) scheduling.
//
// Paper §2: slow scheduling "can increase the overall traffic latency and
// jitter of widely used applications (i.e., VOIP, multiuser gaming etc.)
// and decrease the user quality of experience."  CBR streams (200 B every
// 20 us — a G.711 stream time-compressed for simulation) cross the hybrid
// switch next to bursty background traffic; we report delivery latency
// percentiles and RFC 3550 jitter.
#include "bench_util.hpp"
#include "stats/table.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;
using sim::Time;

core::RunReport run_scenario(bool hardware, double background_load) {
  core::FrameworkConfig c = bench::hybrid_base(8);
  c.placement = hardware ? core::BufferPlacement::kToRSwitch : core::BufferPlacement::kHost;
  c.epoch = hardware ? Time::microseconds(100) : Time::milliseconds(1);
  c.min_circuit_hold = hardware ? Time::microseconds(10) : Time::microseconds(100);

  core::HybridSwitchFramework fw{c};
  if (hardware) {
    bench::install_hybrid_policies(fw, "hardware");
  } else {
    bench::install_hybrid_policies(fw, "software");
  }

  topo::attach_voip(fw, 4, 20_us, 200);
  if (background_load > 0) {
    topo::WorkloadSpec spec;
    spec.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
    spec.mean_on = 60_us;
    spec.mean_off = 140_us;
    spec.seed = 29;
    topo::attach_workload(fw, spec);
  }
  return fw.run(30_ms, 5_ms);
}

}  // namespace

int main() {
  bench::print_header("E4", "VOIP latency & jitter: fast (hw, ToR) vs slow (sw, host) scheduling");

  stats::Table t{{"scheduling", "background", "voip p50", "voip p99", "rfc3550 jitter (mean)",
                  "voip pkts", "delivery"}};
  for (const double bg : {0.0, 1.0}) {
    for (const bool hardware : {true, false}) {
      const core::RunReport r = run_scenario(hardware, bg);
      char jitter[32];
      std::snprintf(jitter, sizeof jitter, "%.2f us", r.jitter_us.mean());
      t.row()
          .cell(hardware ? "hardware (ns loop, ToR buf)" : "software (ms loop, host buf)")
          .cell(bg > 0 ? "bursty" : "none")
          .cell(r.latency_sensitive.quantile_time(0.50).to_string())
          .cell(r.latency_sensitive.quantile_time(0.99).to_string())
          .cell(jitter)
          .cell(r.latency_sensitive.count())
          .cell(r.delivery_ratio(), 3);
    }
  }
  std::printf("%s\n", t.markdown().c_str());
  bench::print_note(
      "Fast scheduling keeps interactive traffic at microsecond latency with negligible jitter;\n"
      "the millisecond software loop inflates both by orders of magnitude — the paper's QoE claim.");
  return 0;
}
