// E3a — wall-clock compute cost of each scheduling algorithm vs port count
// (google-benchmark microbenchmark), plus the steady-state zero-allocation
// gate CI runs (`--alloc-check`).
//
// Grounds the paper's claim that schedule computation is the bottleneck a
// hardware scheduler removes: even on a modern CPU, exact max-weight
// matching at 128 ports costs hundreds of microseconds per decision —
// far beyond a nanosecond-scale optical switching time.  The measured loop
// is the framework's real hot path: MatchingAlgorithm::compute_into with a
// recycled Matching, which must not touch the heap once warm.
#define XDRS_BENCH_ALLOC_COUNTER
#include "bench_util.hpp"

#include <benchmark/benchmark.h>

#include <cstring>

#include "demand/demand_matrix.hpp"
#include "schedulers/policy_registry.hpp"
#include "sim/random.hpp"

namespace {

using namespace xdrs;

demand::DemandMatrix random_demand(std::uint32_t n, std::uint64_t seed, double density) {
  sim::Rng rng{seed};
  demand::DemandMatrix m{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) m.set(i, j, rng.uniform_int(1, 1'000'000));
    }
  }
  return m;
}

void run_matcher(benchmark::State& state, const char* spec) {
  const auto ports = static_cast<std::uint32_t>(state.range(0));
  auto matcher = schedulers::PolicyRegistry::instance().make_matcher(
      spec, {.ports = ports, .seed = 42});
  const demand::DemandMatrix d = random_demand(ports, ports * 7 + 1, 0.5);
  schedulers::Matching out;
  for (auto _ : state) {
    matcher->compute_into(d, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetLabel(matcher->name());
  state.counters["ports"] = ports;
  state.counters["iters_used"] = matcher->last_iterations();
}

void BM_Islip1(benchmark::State& s) { run_matcher(s, "islip:1"); }
void BM_Islip4(benchmark::State& s) { run_matcher(s, "islip:4"); }
void BM_Pim4(benchmark::State& s) { run_matcher(s, "pim:4"); }
void BM_Rrm1(benchmark::State& s) { run_matcher(s, "rrm:1"); }
void BM_GreedyIlqf(benchmark::State& s) { run_matcher(s, "ilqf"); }
void BM_MaxSizeHk(benchmark::State& s) { run_matcher(s, "maxsize"); }
void BM_MaxWeightHungarian(benchmark::State& s) { run_matcher(s, "maxweight"); }
void BM_Rotor(benchmark::State& s) { run_matcher(s, "rotor"); }

constexpr std::int64_t kLo = 8, kHi = 128;

BENCHMARK(BM_Islip1)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_Islip4)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_Pim4)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_Rrm1)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_GreedyIlqf)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_MaxSizeHk)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_MaxWeightHungarian)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_Rotor)->RangeMultiplier(2)->Range(kLo, kHi);

/// `--alloc-check`: for every registered matcher spec, warm the decision
/// loop, then count heap allocations over a steady-state window.  Any
/// allocation is a regression of the allocation-free compute contract.
int alloc_check() {
  constexpr std::uint32_t kPorts = 64;
  constexpr int kWarmupDecisions = 64;
  constexpr int kMeasuredDecisions = 256;

  const auto& registry = schedulers::PolicyRegistry::instance();
  const demand::DemandMatrix d = random_demand(kPorts, 7, 0.5);

  int failures = 0;
  std::printf("steady-state heap allocations per %d decisions (%u ports):\n",
              kMeasuredDecisions, kPorts);
  for (const auto& spec : registry.known_specs(schedulers::PolicyKind::kMatcher)) {
    auto matcher = registry.make_matcher(spec, {.ports = kPorts, .seed = 42});
    schedulers::Matching out;
    for (int i = 0; i < kWarmupDecisions; ++i) matcher->compute_into(d, out);

    const std::uint64_t before = bench::heap_allocs();
    for (int i = 0; i < kMeasuredDecisions; ++i) matcher->compute_into(d, out);
    const std::uint64_t allocs = bench::heap_allocs() - before;

    const bool ok = allocs == 0;
    if (!ok) ++failures;
    std::printf("  %-12s %-18s %8llu %s\n", spec.c_str(), matcher->name().c_str(),
                static_cast<unsigned long long>(allocs), ok ? "OK" : "FAIL");
  }
  if (failures > 0) {
    std::fprintf(stderr, "alloc-check: %d matcher(s) allocate in steady state\n", failures);
    return 1;
  }
  std::printf("alloc-check: all matchers run allocation-free in steady state\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--alloc-check") == 0) return alloc_check();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
