// E3a — wall-clock compute cost of each scheduling algorithm vs port count
// (google-benchmark microbenchmark).
//
// Grounds the paper's claim that schedule computation is the bottleneck a
// hardware scheduler removes: even on a modern CPU, exact max-weight
// matching at 128 ports costs hundreds of microseconds per decision —
// far beyond a nanosecond-scale optical switching time.
#include <benchmark/benchmark.h>

#include "demand/demand_matrix.hpp"
#include "schedulers/factory.hpp"
#include "sim/random.hpp"

namespace {

using namespace xdrs;

demand::DemandMatrix random_demand(std::uint32_t n, std::uint64_t seed, double density) {
  sim::Rng rng{seed};
  demand::DemandMatrix m{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) m.set(i, j, rng.uniform_int(1, 1'000'000));
    }
  }
  return m;
}

void run_matcher(benchmark::State& state, const char* spec) {
  const auto ports = static_cast<std::uint32_t>(state.range(0));
  auto matcher = schedulers::make_matcher(spec, ports, 42);
  const demand::DemandMatrix d = random_demand(ports, ports * 7 + 1, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher->compute(d));
  }
  state.SetLabel(matcher->name());
  state.counters["ports"] = ports;
  state.counters["iters_used"] = matcher->last_iterations();
}

void BM_Islip1(benchmark::State& s) { run_matcher(s, "islip:1"); }
void BM_Islip4(benchmark::State& s) { run_matcher(s, "islip:4"); }
void BM_Pim4(benchmark::State& s) { run_matcher(s, "pim:4"); }
void BM_Rrm1(benchmark::State& s) { run_matcher(s, "rrm:1"); }
void BM_GreedyIlqf(benchmark::State& s) { run_matcher(s, "ilqf"); }
void BM_MaxSizeHk(benchmark::State& s) { run_matcher(s, "maxsize"); }
void BM_MaxWeightHungarian(benchmark::State& s) { run_matcher(s, "maxweight"); }
void BM_Rotor(benchmark::State& s) { run_matcher(s, "rotor"); }

constexpr std::int64_t kLo = 8, kHi = 128;

BENCHMARK(BM_Islip1)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_Islip4)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_Pim4)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_Rrm1)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_GreedyIlqf)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_MaxSizeHk)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_MaxWeightHungarian)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_Rotor)->RangeMultiplier(2)->Range(kLo, kHi);

}  // namespace

BENCHMARK_MAIN();
