// E3a — wall-clock compute cost of each scheduling algorithm vs port count
// (google-benchmark microbenchmark), plus the steady-state zero-allocation
// gate CI runs (`--alloc-check`), plus a self-contained timing mode
// (`--ports=N [--csv=PATH]`) that emits machine-readable numbers so kernel
// before/after comparisons are recorded, not copy-pasted.
//
// Grounds the paper's claim that schedule computation is the bottleneck a
// hardware scheduler removes: even on a modern CPU, exact max-weight
// matching at 128 ports costs hundreds of microseconds per decision —
// far beyond a nanosecond-scale optical switching time.  The measured loop
// is the framework's real hot path: MatchingAlgorithm::compute_into with a
// recycled Matching, which must not touch the heap once warm.
#define XDRS_BENCH_ALLOC_COUNTER
#include "bench_util.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "demand/demand_matrix.hpp"
#include "obs/metrics.hpp"
#include "schedulers/policy_registry.hpp"
#include "sim/random.hpp"
#include "util/parse.hpp"

namespace {

using namespace xdrs;

demand::DemandMatrix random_demand(std::uint32_t n, std::uint64_t seed, double density) {
  sim::Rng rng{seed};
  demand::DemandMatrix m{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) m.set(i, j, rng.uniform_int(1, 1'000'000));
    }
  }
  return m;
}

void run_matcher(benchmark::State& state, const char* spec) {
  const auto ports = static_cast<std::uint32_t>(state.range(0));
  auto matcher = schedulers::PolicyRegistry::instance().make_matcher(
      spec, {.ports = ports, .seed = 42});
  const demand::DemandMatrix d = random_demand(ports, ports * 7 + 1, 0.5);
  schedulers::Matching out;
  for (auto _ : state) {
    matcher->compute_into(d, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetLabel(matcher->name());
  state.counters["ports"] = ports;
  state.counters["iters_used"] = matcher->last_iterations();
}

void BM_Islip1(benchmark::State& s) { run_matcher(s, "islip:1"); }
void BM_Islip4(benchmark::State& s) { run_matcher(s, "islip:4"); }
void BM_Pim4(benchmark::State& s) { run_matcher(s, "pim:4"); }
void BM_Rrm1(benchmark::State& s) { run_matcher(s, "rrm:1"); }
void BM_GreedyIlqf(benchmark::State& s) { run_matcher(s, "ilqf"); }
void BM_MaxSizeHk(benchmark::State& s) { run_matcher(s, "maxsize"); }
void BM_MaxWeightHungarian(benchmark::State& s) { run_matcher(s, "maxweight"); }
void BM_Rotor(benchmark::State& s) { run_matcher(s, "rotor"); }

constexpr std::int64_t kLo = 8, kHi = 128;

BENCHMARK(BM_Islip1)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_Islip4)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_Pim4)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_Rrm1)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_GreedyIlqf)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_MaxSizeHk)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_MaxWeightHungarian)->RangeMultiplier(2)->Range(kLo, kHi);
BENCHMARK(BM_Rotor)->RangeMultiplier(2)->Range(kLo, kHi);

/// `--alloc-check`: for every registered matcher spec, warm the decision
/// loop, then count heap allocations over a steady-state window.  Any
/// allocation is a regression of the allocation-free compute contract.
/// Run at 48, 64 AND 128 ports: 48 is the 2-rack fat-tree ToR shape (32
/// host ports + 16 uplinks at 2:1 oversubscription) — a non-power-of-two
/// count the topology path schedules every epoch — while 64/128 prove the
/// bitset and warm-rematch workspaces are preallocated at paper scale too
/// (two words per port row, not one).
///
/// The measured loop wraps each decision in a disabled-registry ScopedSpan,
/// exactly as SchedulingLogic does when telemetry is compiled in but off —
/// so the gate also proves the telemetry-off hot path costs no allocation.
int alloc_check() {
  constexpr std::uint32_t kPortCounts[] = {48, 64, 128};
  constexpr int kWarmupDecisions = 64;
  constexpr int kMeasuredDecisions = 256;

  const auto& registry = schedulers::PolicyRegistry::instance();
  obs::Registry disabled_telemetry;  // never enabled: the production default
  obs::Timer& stage_timer = disabled_telemetry.timer("matcher_compute");

  int failures = 0;
  for (const std::uint32_t ports : kPortCounts) {
    const demand::DemandMatrix d = random_demand(ports, 7, 0.5);
    std::printf("steady-state heap allocations per %d decisions (%u ports):\n",
                kMeasuredDecisions, ports);
    for (const auto& spec : registry.known_specs(schedulers::PolicyKind::kMatcher)) {
      auto matcher = registry.make_matcher(spec, {.ports = ports, .seed = 42});
      schedulers::Matching out;
      for (int i = 0; i < kWarmupDecisions; ++i) matcher->compute_into(d, out);

      const std::uint64_t before = bench::heap_allocs();
      for (int i = 0; i < kMeasuredDecisions; ++i) {
        obs::ScopedSpan span{&disabled_telemetry, &stage_timer};
        matcher->compute_into(d, out);
      }
      const std::uint64_t allocs = bench::heap_allocs() - before;

      const bool ok = allocs == 0;
      if (!ok) ++failures;
      std::printf("  %-12s %-18s %8llu %s\n", spec.c_str(), matcher->name().c_str(),
                  static_cast<unsigned long long>(allocs), ok ? "OK" : "FAIL");
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "alloc-check: %d matcher config(s) allocate in steady state\n",
                 failures);
    return 1;
  }
  std::printf("alloc-check: all matchers run allocation-free in steady state\n");
  return 0;
}

/// `--ports=N [--csv=PATH]`: time every registered matcher at exactly the
/// requested port counts (repeatable flag) over the same randomized demand
/// the microbenchmarks use, and optionally append the numbers to a CSV —
/// one row per (spec, ports) — so kernel before/after comparisons live in
/// version-controllable files instead of terminal scrollback.
int timing_mode(const std::vector<std::uint32_t>& port_counts, const std::string& csv_path) {
  using clock = std::chrono::steady_clock;
  constexpr int kWarmupDecisions = 64;
  constexpr auto kMinWindow = std::chrono::milliseconds{200};

  std::FILE* csv = nullptr;
  if (!csv_path.empty()) {
    csv = std::fopen(csv_path.c_str(), "w");
    if (csv == nullptr) {
      std::fprintf(stderr, "bench_matching_compute: cannot open %s\n", csv_path.c_str());
      return 1;
    }
    std::fprintf(csv, "spec,name,ports,decisions,ns_per_decision,iters_used\n");
  }

  const auto& registry = schedulers::PolicyRegistry::instance();
  for (const std::uint32_t ports : port_counts) {
    const demand::DemandMatrix d = random_demand(ports, ports * 7 + 1, 0.5);
    std::printf("matcher compute cost at %u ports:\n", ports);
    for (const auto& spec : registry.known_specs(schedulers::PolicyKind::kMatcher)) {
      auto matcher = registry.make_matcher(spec, {.ports = ports, .seed = 42});
      schedulers::Matching out;
      for (int i = 0; i < kWarmupDecisions; ++i) matcher->compute_into(d, out);

      // Run whole batches until the measured window is long enough for the
      // clock resolution to be noise.
      std::uint64_t decisions = 0;
      const auto start = clock::now();
      auto elapsed = start - start;
      while (elapsed < kMinWindow) {
        for (int i = 0; i < 64; ++i) matcher->compute_into(d, out);
        decisions += 64;
        elapsed = clock::now() - start;
      }
      const double ns =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
          static_cast<double>(decisions);

      std::printf("  %-12s %-18s %12.1f ns/decision  (%llu decisions, %u iters)\n",
                  spec.c_str(), matcher->name().c_str(), ns,
                  static_cast<unsigned long long>(decisions), matcher->last_iterations());
      if (csv != nullptr) {
        std::fprintf(csv, "%s,%s,%u,%llu,%.1f,%u\n", spec.c_str(), matcher->name().c_str(),
                     ports, static_cast<unsigned long long>(decisions), ns,
                     matcher->last_iterations());
      }
    }
  }
  if (csv != nullptr) std::fclose(csv);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint32_t> port_counts;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--alloc-check") == 0) return alloc_check();
    if (std::strncmp(argv[i], "--ports=", 8) == 0) {
      std::uint32_t ports = 0;
      if (!util::parse_number(argv[i] + 8, ports) || ports == 0) {
        std::fprintf(stderr, "bench_matching_compute: bad --ports value: %s\n", argv[i] + 8);
        return 1;
      }
      port_counts.push_back(ports);
    } else if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      csv_path = argv[i] + 6;
    }
  }
  if (!port_counts.empty()) return timing_mode(port_counts, csv_path);
  if (!csv_path.empty()) {
    std::fprintf(stderr, "bench_matching_compute: --csv requires --ports=N\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
