// Profiling target: one hot scenario, repeated long enough to perf-record.
//
// The matcher inner loops (the RGA family in rga.cpp, the Hungarian solver
// behind "maxweight") are the expected hot spots; this bench pins one
// scenario and re-runs it with fresh seeds on a single thread until the
// requested wall-clock budget is spent, so samples overwhelmingly land in
// the simulator rather than setup/teardown.  Pair it with the Profile build
// type:
//
//   $ cmake -B build-profile -S . -DCMAKE_BUILD_TYPE=Profile
//   $ cmake --build build-profile -j --target bench_profile_hotloop
//   $ perf record -g ./build-profile/bench_profile_hotloop --seconds=10
//   $ perf report            # or: perf script | flamegraph.pl
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "exp/scenario.hpp"
#include "util/parse.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;

struct Options {
  std::string scenario{"uniform"};
  std::string matcher{"islip:4"};  // RGA inner loop; "maxweight" = Hungarian
  std::uint32_t ports{32};
  double load{0.9};
  double seconds{10.0};
};

// Whole-token, in-range parses (util::parse_number): "--ports=32x" or
// "--load=0.9oops" are errors, not silently truncated numbers, and so is a
// ports value past uint32 range.
bool parse(int argc, char** argv, Options& opt) try {
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--scenario") {
      opt.scenario = val;
    } else if (key == "--matcher") {
      opt.matcher = val;
    } else if (key == "--ports" || key == "--load" || key == "--seconds") {
      const bool ok = key == "--ports" ? util::parse_number(val, opt.ports)
                      : key == "--load" ? util::parse_number(val, opt.load)
                                        : util::parse_number(val, opt.seconds);
      if (!ok) {
        std::fprintf(stderr, "bench_profile_hotloop: bad %s value '%s'\n", key.c_str(),
                     val.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_profile_hotloop [--scenario=NAME] [--matcher=SPEC] [--ports=N] "
                   "[--load=F] [--seconds=S]\n");
      return false;
    }
  }
  return true;
} catch (const std::exception&) {
  std::fprintf(stderr, "bench_profile_hotloop: bad flag value\n");
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 2;

  exp::ScenarioSpec spec;
  try {
    spec = exp::make_scenario(opt.scenario, opt.ports, opt.load, /*seed=*/7)
               .with_matcher(opt.matcher)
               .with_window(2_ms, 200_us);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "bench_profile_hotloop: %s\n", e.what());
    return 2;
  }

  std::printf("hot loop: %s for %.1fs wall clock (single thread, fresh seed per iteration)\n",
              spec.key().c_str(), opt.seconds);

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };

  std::uint64_t iterations = 0;
  std::uint64_t decisions = 0;
  std::int64_t delivered = 0;
  while (elapsed() < opt.seconds) {
    spec.with_seed(7 + iterations);  // decorrelate iterations, keep the workload shape
    const core::RunReport report = exp::run_scenario(spec);
    decisions += report.scheduler_decisions;
    delivered += report.delivered_bytes;
    ++iterations;
  }

  const double wall = elapsed();
  std::printf("%llu iterations in %.2fs — %.2f sims/s, %.0f scheduler decisions/s "
              "(%.1f MB delivered)\n",
              static_cast<unsigned long long>(iterations), wall,
              static_cast<double>(iterations) / wall, static_cast<double>(decisions) / wall,
              static_cast<double>(delivered) / 1e6);
  bench::print_note(
      "Build with -DCMAKE_BUILD_TYPE=Profile and run under `perf record -g` to attribute\n"
      "samples; the matcher inner loops (rga.cpp, hungarian.cpp) should dominate.");
  return 0;
}
