// E6 — delivered throughput vs offered load for the pluggable matching
// algorithms, under uniform, permutation and hotspot traffic.
//
// The classic input-queued-switch comparison the framework exists to let
// researchers run: RRM saturates early (pointer synchronisation), iSLIP
// reaches high throughput under uniform traffic and improves with
// iterations, PIM sits between, maximum-weight is the quality ceiling.
// Ablation per DESIGN.md §6: iSLIP iteration count.
#include <string>

#include "bench_util.hpp"
#include "schedulers/factory.hpp"
#include "stats/table.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;
using sim::Time;

struct Result {
  double throughput;
  Time p99;
};

Result run_point(const std::string& matcher, topo::WorkloadSpec::Kind kind, double load) {
  core::FrameworkConfig c;
  c.ports = 8;
  c.discipline = core::SchedulingDiscipline::kSlotted;
  // ~10 MTUs per slot: the decision+reconfiguration overhead (~200 ns) and
  // the unusable slot tail stay small against the 12.5 us slot, so the
  // matching algorithm — not slot quantisation — dominates the curves.
  c.slot_time = Time::nanoseconds(12'500);
  c.ocs_reconfig = 50_ns;
  core::HybridSwitchFramework fw{c};
  fw.set_estimator(std::make_unique<demand::InstantaneousEstimator>(c.ports, c.ports));
  fw.set_timing_model(std::make_unique<control::HardwareSchedulerTimingModel>());
  fw.set_matcher(schedulers::make_matcher(matcher, c.ports, 97));

  topo::WorkloadSpec spec;
  spec.kind = kind;
  spec.load = load;
  spec.skew = kind == topo::WorkloadSpec::Kind::kPoissonHotspot ? 0.5 : 0.0;
  spec.seed = 53;
  topo::attach_workload(fw, spec);

  const core::RunReport r = fw.run(40_ms, 8_ms);
  return Result{r.service_fraction(c.link_rate, c.ports), r.latency.quantile_time(0.99)};
}

void sweep(const char* title, topo::WorkloadSpec::Kind kind,
           const std::vector<std::string>& matchers, bool with_delay = false) {
  bench::print_header("E6", title);
  std::vector<std::string> headers{"offered load"};
  headers.insert(headers.end(), matchers.begin(), matchers.end());
  stats::Table t{headers};
  stats::Table delays{headers};
  for (const double load : {0.3, 0.5, 0.7, 0.85, 0.95}) {
    auto& row = t.row().cell(load, 2);
    auto& drow = delays.row().cell(load, 2);
    for (const auto& m : matchers) {
      const Result res = run_point(m, kind, load);
      row.cell(res.throughput, 3);
      drow.cell(res.p99.to_string());
    }
  }
  std::printf("%s\n", t.markdown().c_str());
  if (with_delay) {
    std::printf("p99 packet delay (same runs) — the classic second axis: delay explodes at\n"
                "each algorithm's saturation point, earliest for RRM:\n\n%s\n",
                delays.markdown().c_str());
  }
}

}  // namespace

int main() {
  sweep("delivered throughput, uniform traffic (8 ports, slotted)",
        topo::WorkloadSpec::Kind::kPoissonUniform,
        {"rrm:1", "islip:1", "islip:4", "pim:1", "wavefront", "serena", "ilqf", "maxweight"},
        /*with_delay=*/true);
  sweep("delivered throughput, permutation traffic",
        topo::WorkloadSpec::Kind::kPermutation, {"rrm:1", "islip:1", "islip:4", "rotor"});
  sweep("delivered throughput, hotspot traffic (50% to port 0)",
        topo::WorkloadSpec::Kind::kPoissonHotspot, {"islip:4", "ilqf", "maxweight"});
  bench::print_note(
      "Expected shape (and observed): all algorithms track the offered load while it is low;\n"
      "under high uniform load RRM falls behind (pointer synchronisation), iSLIP with more\n"
      "iterations closes on max-weight; under hotspot load the output port saturates for all.");
  return 0;
}
