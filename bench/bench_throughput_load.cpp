// E6 — delivered throughput vs offered load for the pluggable matching
// algorithms, under uniform, permutation and hotspot traffic.
//
// The classic input-queued-switch comparison the framework exists to let
// researchers run: RRM saturates early (pointer synchronisation), iSLIP
// reaches high throughput under uniform traffic and improves with
// iterations, PIM sits between, maximum-weight is the quality ceiling.
// Ablation per DESIGN.md §6: iSLIP iteration count.
//
// Each traffic pattern is one load x matcher grid handed to the parallel
// ExperimentRunner; the scenario registry supplies the slotted baseline
// configuration.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;

const std::vector<double> kLoads{0.3, 0.5, 0.7, 0.85, 0.95};

void sweep(const char* title, const char* scenario, const std::vector<std::string>& matchers,
           bool with_delay = false) {
  bench::print_header("E6", title);

  std::vector<exp::ScenarioSpec> grid{
      exp::make_scenario(scenario, 8, 0.5, 53).with_window(40_ms, 8_ms)};
  grid = exp::expand(grid, exp::axis_load(kLoads));
  grid = exp::expand(grid, exp::axis_matcher(matchers));
  const exp::SweepResult res = exp::ExperimentRunner{}.run(grid);

  std::vector<std::string> headers{"offered load"};
  headers.insert(headers.end(), matchers.begin(), matchers.end());
  stats::Table t{headers};
  stats::Table delays{headers};
  std::size_t i = 0;
  for (const double load : kLoads) {
    auto& row = t.row().cell(load, 2);
    auto& drow = delays.row().cell(load, 2);
    for (std::size_t m = 0; m < matchers.size(); ++m, ++i) {
      const auto& p = res.points[i];
      row.cell(p.report.service_fraction(p.spec.config.link_rate, p.spec.config.ports), 3);
      drow.cell(p.report.latency.quantile_time(0.99).to_string());
    }
  }
  std::printf("%s\n", t.markdown().c_str());
  if (with_delay) {
    std::printf("p99 packet delay (same runs) — the classic second axis: delay explodes at\n"
                "each algorithm's saturation point, earliest for RRM:\n\n%s\n",
                delays.markdown().c_str());
  }
}

}  // namespace

int main() {
  sweep("delivered throughput, uniform traffic (8 ports, slotted)", "uniform",
        {"rrm:1", "islip:1", "islip:4", "pim:1", "wavefront", "serena", "ilqf", "maxweight"},
        /*with_delay=*/true);
  sweep("delivered throughput, permutation traffic", "permutation",
        {"rrm:1", "islip:1", "islip:4", "rotor"});
  sweep("delivered throughput, hotspot traffic (50% to port 0)", "hotspot",
        {"islip:4", "ilqf", "maxweight"});
  bench::print_note(
      "Expected shape (and observed): all algorithms track the offered load while it is low;\n"
      "under high uniform load RRM falls behind (pointer synchronisation), iSLIP with more\n"
      "iterations closes on max-weight; under hotspot load the output port saturates for all.");
  return 0;
}
