// E11 — the parallel experiment engine, exercised end to end: a 64-point
// ports x load x matcher grid over two scenarios, swept by ExperimentRunner
// across all cores.
//
// The emitted JSON/CSV is bit-identical for any --threads value (results
// collect in grid order; every point's simulator is independent and
// seeded), so `--json=BENCH_sweep.json` records a perf/behaviour baseline
// future PRs can diff exactly.
//
//   $ ./bench_sweep --threads=1 --json=a.json
//   $ ./bench_sweep --threads=8 --json=b.json
//   $ cmp a.json b.json        # identical
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "exp/runner.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;

struct Options {
  unsigned threads{0};   // 0 = all hardware threads
  std::string json_path;
  std::string csv_path;
  bool progress{false};
};

bool parse(int argc, char** argv, Options& opt) try {
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--threads") {
      opt.threads = static_cast<unsigned>(std::stoul(val));
    } else if (key == "--json") {
      opt.json_path = val;
    } else if (key == "--csv") {
      opt.csv_path = val;
    } else if (key == "--progress") {
      opt.progress = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_sweep [--threads=N] [--json=PATH] [--csv=PATH] [--progress]\n");
      return false;
    }
  }
  return true;
} catch (const std::exception&) {
  std::fprintf(stderr, "bench_sweep: bad numeric flag value\n");
  return false;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary};
  out << content;
  out.flush();  // surface write errors here, not in the silent destructor
  if (!out) {
    std::fprintf(stderr, "bench_sweep: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 2;

  // 2 scenarios x 2 port counts x 4 loads x 4 matchers = 64 points.
  std::vector<exp::ScenarioSpec> grid;
  for (const char* scenario : {"uniform", "permutation"}) {
    grid.push_back(exp::make_scenario(scenario, 8, 0.5, 7).with_window(2_ms, 400_us));
  }
  grid = exp::expand(grid, exp::axis_ports({4, 8}));
  grid = exp::expand(grid, exp::axis_load({0.3, 0.5, 0.7, 0.9}));
  grid = exp::expand(grid, exp::axis_matcher({"islip:1", "islip:4", "pim:1", "maxweight"}));

  exp::SweepOptions so;
  so.threads = opt.threads;
  if (opt.progress) {
    so.progress = [](std::size_t done, std::size_t total, const exp::ScenarioSpec& s) {
      std::fprintf(stderr, "[%3zu/%zu] %s\n", done, total, s.key().c_str());
    };
  }

  const exp::SweepResult result = exp::ExperimentRunner{so}.run(grid);

  bench::print_header("E11", "parallel sweep engine — 64-point ports x load x matcher grid");
  auto t = result.table(
      {"label", "delivery_ratio", "delivered_bytes", "latency_p99_ps", "voq_drops"});
  std::printf("%s\n", t.markdown().c_str());

  const core::RunReport total = result.merged();
  std::printf("grid totals: %s\n", total.summary().c_str());

  if (!opt.json_path.empty()) write_file(opt.json_path, result.to_json());
  if (!opt.csv_path.empty()) write_file(opt.csv_path, result.to_csv());

  bench::print_note(
      "Every row is one independent deterministic simulation; the grid saturates all cores and\n"
      "the collected artefact is bit-identical for any --threads value.");
  return 0;
}
