// E11 — the parallel experiment engine, exercised end to end on a named grid
// preset (exp/presets.hpp), swept by ExperimentRunner across all cores:
//
//   small         64-point ports x load x matcher grid  -> BENCH_sweep.json
//   full          paper-scale 64-port x 10G grid        -> BENCH_sweep_full.json
//   policy-cross  full PolicyRegistry known_specs cross-product
//
// The emitted JSON/CSV is bit-identical for any --threads value (results
// collect in grid order; every point's simulator is independent and
// seeded), so `--json=BENCH_sweep.json` records a perf/behaviour baseline
// future PRs can diff exactly.  sweepctl builds the same grids from the
// same preset names, so a sharded multi-process run merges to the same
// bytes:
//
//   $ ./bench_sweep --threads=1 --json=a.json
//   $ ./bench_sweep --threads=8 --json=b.json
//   $ cmp a.json b.json        # identical
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "bench_util.hpp"
#include "exp/presets.hpp"
#include "exp/runner.hpp"
#include "util/file_io.hpp"
#include "util/parse.hpp"

namespace {

using namespace xdrs;

struct Options {
  unsigned threads{0};   // 0 = all hardware threads
  std::string preset{"small"};
  std::string json_path;
  std::string csv_path;
  bool progress{false};
};

bool parse(int argc, char** argv, Options& opt) try {
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--threads") {
      // Whole-token, in-range parse: "--threads=2x" is an error, not 2
      // threads, and overflowing values are errors, not truncated counts.
      if (!util::parse_number(val, opt.threads)) {
        std::fprintf(stderr, "bench_sweep: bad --threads value '%s'\n", val.c_str());
        return false;
      }
    } else if (key == "--preset") {
      opt.preset = val;
    } else if (key == "--full") {  // shorthand for the paper-scale grid
      opt.preset = "full";
    } else if (key == "--json") {
      opt.json_path = val;
    } else if (key == "--csv") {
      opt.csv_path = val;
    } else if (key == "--progress") {
      opt.progress = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_sweep [--threads=N] "
                   "[--preset=small|full|policy-cross|composite|deadline|trace|empirical|ft2|p128] "
                   "[--full] "
                   "[--json=PATH] [--csv=PATH] [--progress]\n");
      return false;
    }
  }
  return true;
} catch (const std::exception&) {
  std::fprintf(stderr, "bench_sweep: bad numeric flag value\n");
  return false;
}

void write_file(const std::string& path, const std::string& content) {
  try {
    util::write_file(path, content);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "bench_sweep: %s\n", e.what());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 2;

  std::vector<exp::ScenarioSpec> grid;
  try {
    grid = exp::make_preset(opt.preset);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "bench_sweep: %s\n", e.what());
    return 2;
  }

  exp::SweepOptions so;
  so.threads = opt.threads;
  if (opt.progress) {
    so.progress = [](std::size_t done, std::size_t total, const exp::ScenarioSpec& s) {
      std::fprintf(stderr, "[%4zu/%zu] %s\n", done, total, s.key().c_str());
    };
  }

  const exp::SweepResult result = exp::ExperimentRunner{so}.run(grid);

  char title[128];
  std::snprintf(title, sizeof title, "parallel sweep engine — %zu-point '%s' grid", grid.size(),
                opt.preset.c_str());
  bench::print_header("E11", title);
  auto t = result.table(
      {"label", "delivery_ratio", "delivered_bytes", "latency_p99_ps", "voq_drops"});
  std::printf("%s\n", t.markdown().c_str());

  const core::RunReport total = result.merged();
  std::printf("grid totals: %s\n", total.summary().c_str());

  if (!opt.json_path.empty()) write_file(opt.json_path, result.to_json());
  if (!opt.csv_path.empty()) write_file(opt.csv_path, result.to_csv());

  bench::print_note(
      "Every row is one independent deterministic simulation; the grid saturates all cores and\n"
      "the collected artefact is bit-identical for any --threads value. The same preset names\n"
      "drive sweepctl, so sharded multi-process runs merge to these exact bytes.");
  return 0;
}
