// E7 — host <-> switch synchronisation sensitivity.
//
// Paper §2: software/host-buffered operation "requires tight
// synchronization between the host and switch, which is difficult to
// achieve at faster switching times".  In host-buffered mode we sweep the
// host clock skew and the guard band and report missed-window losses and
// delivery; ToR-buffered mode is shown as the skew-immune baseline.
#include "bench_util.hpp"
#include "stats/table.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;
using sim::Time;

core::RunReport run_point(core::BufferPlacement placement, Time skew, Time guard) {
  core::FrameworkConfig c = bench::hybrid_base(8);
  c.placement = placement;
  c.epoch = 200_us;
  c.min_circuit_hold = 20_us;
  c.sync.max_skew = skew;
  c.sync.guard_band = guard;
  c.sync.seed = 77;
  core::HybridSwitchFramework fw{c};
  bench::install_hybrid_policies(fw, "hardware");

  topo::WorkloadSpec spec;
  spec.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
  spec.mean_on = 60_us;
  spec.mean_off = 140_us;
  spec.seed = 61;
  topo::attach_workload(fw, spec);
  return fw.run(20_ms, 4_ms);
}

}  // namespace

int main() {
  bench::print_header("E7", "missed-window losses vs host clock skew and guard band (host-buffered)");

  stats::Table t{{"placement", "max skew", "guard band", "sync losses", "delivered", "delivery",
                  "ocs bytes"}};
  for (const Time skew : {Time::zero(), 1_us, 5_us, 10_us}) {
    for (const Time guard : {Time::zero(), 2_us, 10_us}) {
      const core::RunReport r = run_point(core::BufferPlacement::kHost, skew, guard);
      t.row()
          .cell("host")
          .cell(skew.to_string())
          .cell(guard.to_string())
          .cell(r.sync_losses)
          .cell(r.delivered_packets)
          .cell(r.delivery_ratio(), 3)
          .cell(sim::format_bytes(static_cast<double>(r.ocs_bytes)));
    }
  }
  // Skew-immune baseline: ToR-buffered, same workload, worst skew.
  const core::RunReport tor = run_point(core::BufferPlacement::kToRSwitch, 10_us, Time::zero());
  t.row()
      .cell("tor (baseline)")
      .cell((10_us).to_string())
      .cell("n/a")
      .cell(tor.sync_losses)
      .cell(tor.delivered_packets)
      .cell(tor.delivery_ratio(), 3)
      .cell(sim::format_bytes(static_cast<double>(tor.ocs_bytes)));
  std::printf("%s\n", t.markdown().c_str());

  bench::print_note(
      "Host-buffered operation loses packets once skew outgrows the guard band; widening the\n"
      "guard recovers correctness but burns circuit time. ToR buffering (fast scheduling) is\n"
      "immune — host clocks never gate transmission. This is the paper's synchronisation claim.");
  return 0;
}
