// E9 / Figure 2 — the scheduling pipeline, stage by stage.
//
// Traces one run of the framework and reports the latency of each arrow in
// Figure 2: request -> demand estimation -> schedule computation ->
// switching-logic configuration -> grant -> dequeue -> delivery.  Also
// ablates the paper's configure-before-grant ordering ("Before providing a
// grant to the processing logic, the scheduler sends the grant matrix to
// the switching logic"): overlapping them releases traffic into darkness.
#include "bench_util.hpp"
#include "stats/histogram.hpp"
#include "stats/table.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;
using sim::Time;
using sim::TraceCategory;

struct PipelineStats {
  stats::Histogram schedule_to_configured;
  stats::Histogram configured_to_grant;
  stats::Histogram grant_to_first_dequeue;
  core::RunReport report;
  std::uint64_t schedule_events{0};
};

PipelineStats run_traced(bool configure_before_grant) {
  core::FrameworkConfig c = bench::hybrid_base(4);
  c.epoch = 200_us;
  c.ocs_reconfig = 10_us;
  c.min_circuit_hold = 30_us;
  c.configure_before_grant = configure_before_grant;
  core::HybridSwitchFramework fw{c};
  bench::install_hybrid_policies(fw, "hardware");
  fw.trace().enable();

  topo::WorkloadSpec spec;
  spec.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
  spec.mean_on = 60_us;
  spec.mean_off = 100_us;
  spec.seed = 83;
  topo::attach_workload(fw, spec);

  PipelineStats out;
  out.report = fw.run(8_ms, 1_ms);

  // Walk the trace: for each kScheduleDone, find the next kReconfigDone,
  // then the first kGrant after it, then the first kDequeue after that.
  const auto& ev = fw.trace().events();
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (ev[i].category != TraceCategory::kScheduleDone) continue;
    ++out.schedule_events;
    Time configured{}, grant{}, dequeue{};
    bool have_conf = false, have_grant = false, have_deq = false;
    for (std::size_t j = i + 1; j < ev.size(); ++j) {
      if (ev[j].category == TraceCategory::kScheduleDone) break;  // next epoch
      if (!have_conf && ev[j].category == TraceCategory::kReconfigDone) {
        configured = ev[j].at;
        have_conf = true;
      } else if (have_conf && !have_grant && ev[j].category == TraceCategory::kGrant) {
        grant = ev[j].at;
        have_grant = true;
      } else if (have_grant && !have_deq && ev[j].category == TraceCategory::kDequeue) {
        dequeue = ev[j].at;
        have_deq = true;
        break;
      }
    }
    if (have_conf) out.schedule_to_configured.record_time(configured - ev[i].at);
    if (have_conf && have_grant) out.configured_to_grant.record_time(grant - configured);
    if (have_grant && have_deq) out.grant_to_first_dequeue.record_time(dequeue - grant);
  }
  return out;
}

void print_stage_table(const char* label, const PipelineStats& p) {
  std::printf("### %s\n\n", label);
  stats::Table t{{"pipeline stage (Figure 2 arrow)", "mean", "p99", "samples"}};
  const auto add = [&t](const char* stage, const stats::Histogram& h) {
    t.row()
        .cell(stage)
        .cell(h.mean_time().to_string())
        .cell(h.quantile_time(0.99).to_string())
        .cell(h.count());
  };
  add("schedule done -> circuits configured", p.schedule_to_configured);
  add("circuits configured -> grant issued", p.configured_to_grant);
  add("grant issued -> first dequeue", p.grant_to_first_dequeue);
  std::printf("%s\n", t.markdown().c_str());
}

}  // namespace

int main() {
  bench::print_header("E9 (Figure 2)", "pipeline stage latencies and grant-ordering ablation");

  const PipelineStats ordered = run_traced(true);
  print_stage_table("configure-before-grant (paper protocol)", ordered);

  const PipelineStats overlapped = run_traced(false);
  print_stage_table("overlapped grants (ablation)", overlapped);

  stats::Table cmp{{"protocol", "sync losses", "reconfig cuts", "delivery", "p99 latency"}};
  const auto row = [&cmp](const char* name, const core::RunReport& r) {
    cmp.row()
        .cell(name)
        .cell(r.sync_losses)
        .cell(r.reconfig_cuts)
        .cell(r.delivery_ratio(), 3)
        .cell(r.latency.quantile_time(0.99).to_string());
  };
  row("configure-before-grant", ordered.report);
  row("overlapped", overlapped.report);
  std::printf("%s\n", cmp.markdown().c_str());

  bench::print_note(
      "With the paper's ordering, grants strictly follow circuit establishment (the configured->\n"
      "grant gap is the guard band) and nothing is launched into darkness. Overlapping the two\n"
      "releases packets while the switch is still retuning: sync losses appear.");
  return 0;
}
