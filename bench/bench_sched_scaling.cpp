// E3b — schedule-computation latency scaling with port count, under the
// hardware pipeline model vs the software model.
//
// The hardware framework's payoff (paper §2): a request-grant-accept
// iteration is a constant-depth parallel circuit, so hardware latency is
// flat in the port count, while software cost grows polynomially.  Unlike
// the seed version of this bench (which queried the timing models against
// stand-alone matcher runs), the latency here is *lived*: every cell is a
// full framework simulation where grants really arrive that late, swept as
// one matcher x ports x timing grid on the parallel ExperimentRunner.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;

const std::vector<std::string> kMatchers{"islip:1", "islip:4", "pim:4", "wavefront",
                                         "ilqf",    "maxweight", "maxsize"};
const std::vector<std::uint32_t> kPorts{8, 16, 32, 64};
const std::vector<std::string> kTimings{"hardware", "software"};

}  // namespace

int main() {
  using namespace xdrs;
  bench::print_header("E3", "measured decision latency vs ports (hardware vs software timing)");

  std::vector<exp::ScenarioSpec> grid{
      exp::make_scenario("uniform", 8, 0.5, 7).with_window(2_ms, 400_us)};
  grid = exp::expand(grid, exp::axis_matcher(kMatchers));
  grid = exp::expand(grid, exp::axis_ports(kPorts));
  grid = exp::expand(grid, exp::axis_timing(kTimings));
  const exp::SweepResult res = exp::ExperimentRunner{}.run(grid);

  stats::Table t{{"algorithm", "ports", "decisions", "hardware latency", "software latency",
                  "sw/hw"}};
  // Grid order: matcher-major, then ports, then (hardware, software).
  std::size_t i = 0;
  for (const auto& matcher : kMatchers) {
    for (const std::uint32_t ports : kPorts) {
      const auto& hw = res.points[i++].report;
      const auto& sw = res.points[i++].report;
      t.row()
          .cell(matcher)
          .cell(static_cast<std::int64_t>(ports))
          .cell(hw.scheduler_decisions)
          .cell(hw.mean_decision_latency.to_string())
          .cell(sw.mean_decision_latency.to_string())
          .cell(sw.mean_decision_latency.ratio(hw.mean_decision_latency), 1);
    }
  }
  std::printf("%s\n", t.markdown().c_str());
  bench::print_note(
      "RGA-family algorithms stay flat in hardware (constant-depth arbitration per iteration)\n"
      "while software cost grows with ports — the gap that motivates the paper's framework.");
  return 0;
}
