// E3b — schedule-computation latency scaling with port count, under the
// hardware pipeline model vs the software model.
//
// The hardware framework's payoff (paper §2): a request-grant-accept
// iteration is a constant-depth parallel circuit, so hardware latency is
// flat in the port count, while software cost grows polynomially.  This
// bench prints the modelled decision latency per algorithm and port count,
// using each algorithm's *measured* iteration count on representative
// demand.
#include "control/timing.hpp"
#include "demand/demand_matrix.hpp"
#include "schedulers/factory.hpp"
#include "sim/random.hpp"
#include "stats/table.hpp"

#include "bench_util.hpp"

namespace {

using namespace xdrs;

demand::DemandMatrix random_demand(std::uint32_t n, std::uint64_t seed, double density) {
  sim::Rng rng{seed};
  demand::DemandMatrix m{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) m.set(i, j, rng.uniform_int(1, 1'000'000));
    }
  }
  return m;
}

}  // namespace

int main() {
  using namespace xdrs;
  bench::print_header("E3", "modelled decision latency vs ports (measured iteration counts)");

  const control::HardwareSchedulerTimingModel hw;
  const control::SoftwareSchedulerTimingModel sw;

  stats::Table t{{"algorithm", "ports", "iterations", "hardware latency", "software latency",
                  "sw/hw"}};
  for (const char* spec : {"islip:1", "islip:4", "pim:4", "wavefront", "ilqf", "maxweight", "maxsize"}) {
    for (const std::uint32_t ports : {16u, 64u, 256u}) {
      auto matcher = schedulers::make_matcher(spec, ports, 7);
      const auto d = random_demand(ports, ports, 0.5);
      (void)matcher->compute(d);
      const std::uint32_t iters = matcher->last_iterations();
      const bool parallel = matcher->hardware_parallel();
      const sim::Time h = hw.decision_latency(ports, iters, parallel).total();
      const sim::Time s = sw.decision_latency(ports, iters, parallel).total();
      t.row()
          .cell(matcher->name())
          .cell(static_cast<std::int64_t>(ports))
          .cell(static_cast<std::int64_t>(iters))
          .cell(h.to_string())
          .cell(s.to_string())
          .cell(s.ratio(h), 3);
    }
  }
  std::printf("%s\n", t.markdown().c_str());
  bench::print_note(
      "RGA-family algorithms stay flat in hardware (constant-depth arbitration per iteration)\n"
      "while software cost grows with ports — the gap that motivates the paper's framework.");
  return 0;
}
