// E8 — transient effects around reconfigurations.
//
// Paper §3: the framework "allows to detect and analyse transient effects
// that may not be visible under simulation environments".  We instrument
// the VOQ occupancy as a time series and correlate it with the OCS
// reconfiguration trace: every dark period produces a queue build-up spike,
// and packets caught on the fabric at reconfiguration are cut.
#include <algorithm>

#include "bench_util.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;
using sim::Time;

}  // namespace

int main() {
  bench::print_header("E8", "queue transients around OCS reconfigurations");

  core::FrameworkConfig c = bench::hybrid_base(8);
  c.epoch = 200_us;
  c.ocs_reconfig = 20_us;  // deliberately slow switch: visible transients
  c.min_circuit_hold = 50_us;
  core::HybridSwitchFramework fw{c};
  bench::install_hybrid_policies(fw, "hardware");
  fw.trace().enable();

  topo::WorkloadSpec spec;
  spec.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
  spec.mean_on = 80_us;
  spec.mean_off = 120_us;
  spec.seed = 71;
  topo::attach_workload(fw, spec);

  // Sample total VOQ occupancy every 2 us alongside the run.
  stats::TimeSeries occupancy{16384};
  const Time horizon = 12_ms;
  std::function<void()> sampler = [&] {
    occupancy.record(fw.simulator().now(),
                     static_cast<double>(fw.processing().voqs().total_bytes()));
    if (fw.simulator().now() < horizon) fw.simulator().schedule(2_us, sampler);
  };
  fw.simulator().schedule(Time::zero(), sampler);

  const core::RunReport r = fw.run(10_ms, 2_ms);

  // Occupancy growth across each dark interval vs across equal-length
  // bright reference intervals: the transient signature of reconfiguration.
  const auto& samples = occupancy.samples();
  const auto occupancy_at = [&samples](Time at) -> double {
    const auto it = std::lower_bound(
        samples.begin(), samples.end(), at,
        [](const stats::TimeSeries::Sample& s, Time t) { return s.at < t; });
    if (it == samples.begin()) return it->value;
    return std::prev(it)->value;
  };
  const auto starts = fw.trace().filter(sim::TraceCategory::kReconfigStart);
  const auto dones = fw.trace().filter(sim::TraceCategory::kReconfigDone);
  stats::Summary dark_growth, postdark_growth;
  for (std::size_t k = 0; k + 1 < std::min(starts.size(), dones.size()); ++k) {
    if (dones[k].at <= starts[k].at) continue;
    const Time len = dones[k].at - starts[k].at;
    dark_growth.record(occupancy_at(dones[k].at) - occupancy_at(starts[k].at));
    // Drain reference: the same-length window right after circuits return,
    // when the granted VOQs empty onto the fresh configuration.
    const Time ref_end = dones[k].at + len;
    if (ref_end < starts[k + 1].at) {
      postdark_growth.record(occupancy_at(ref_end) - occupancy_at(dones[k].at));
    }
  }

  stats::Table t{{"metric", "value"}};
  t.row().cell("reconfigurations (measured window)").cell(r.reconfigurations);
  t.row().cell("dark time total").cell(r.dark_time.to_string());
  t.row().cell("packets cut by reconfig").cell(r.reconfig_cuts);
  t.row()
      .cell("mean occupancy growth across one dark period")
      .cell(sim::format_bytes(dark_growth.mean()));
  t.row()
      .cell("mean growth right after circuits return (drain)")
      .cell(sim::format_bytes(postdark_growth.mean()));
  t.row().cell("dark intervals analysed").cell(dark_growth.count());
  t.row().cell("peak VOQ occupancy").cell(sim::format_bytes(occupancy.peak()));
  t.row().cell("delivery").cell(r.delivery_ratio(), 3);
  std::printf("%s\n", t.markdown().c_str());

  // A downsampled excerpt of the occupancy series (plot-ready CSV).
  std::printf("Occupancy excerpt (time_us,bytes):\n");
  const std::size_t step = std::max<std::size_t>(1, samples.size() / 20);
  for (std::size_t i = 0; i < samples.size(); i += step) {
    std::printf("  %.1f,%.0f\n", samples[i].at.us(), samples[i].value);
  }
  bench::print_note(
      "\nQueues grow across dark periods (no circuit is draining them) and shrink in the window\n"
      "right after circuits return — the reconfiguration transient the framework exposes.\n"
      "With the paper's configure-before-grant protocol no packet is cut at retune time; the\n"
      "overlapped ablation in bench_fig2_pipeline shows what happens without it.");
  return 0;
}
