// E5 — hybrid traffic split: "the OCS is used to serve long bursts of
// traffic and the EPS is used to serve the remaining traffic and short
// bursts" (paper §1).
//
// Workload: every port carries a fixed floor of short-packet "mice"
// traffic (0.1 load, Poisson, uniform) plus Pareto ON/OFF line-rate bursts
// whose share of the line rate is swept.  The EPS is oversubscribed 4:1
// versus the optical path (Helios-style provisioning), so bursts are only
// worth carrying if the scheduler gives them circuits; Solstice's
// amortisation rule keeps sub-burst backlogs electrical.  A second table
// ablates the demand estimator (DESIGN.md §6).
//
// Both tables are ExperimentRunner grids over one base ScenarioSpec: the
// burst share and the estimator are just sweep axes.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "exp/runner.hpp"
#include "stats/table.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;
using sim::Time;

const std::vector<double> kBurstShares{0.0, 0.1, 0.2, 0.4, 0.6};

/// Mice floor + 4:1-oversubscribed EPS + Solstice with a strict
/// amortisation rule: the E5 testbed as one declarative point.
exp::ScenarioSpec split_base() {
  exp::ScenarioSpec s = exp::make_scenario("uniform", 8, 0.1, 41);
  s.scenario = "hybrid-split";
  s.config.discipline = core::SchedulingDiscipline::kHybridEpoch;
  s.config.epoch = 100_us;
  s.config.ocs_reconfig = 1_us;
  s.config.min_circuit_hold = 10_us;
  s.config.eps_rate = sim::DataRate::mbps(2500);  // 4:1 electrical oversubscription
  s.config.eps_buffer_bytes = 4 << 20;
  s.with_circuit("solstice:10");  // a circuit must move 10x its dark-time cost
  s.workloads.front().seed = 41;
  return s.with_window(20_ms, 4_ms);
}

/// Overlays Pareto ON/OFF line-rate bursts with duty cycle `bs` on top of
/// the mice floor.
exp::Mutator burst_share(double bs) {
  return [bs](exp::ScenarioSpec& s) {
    char label[48];
    std::snprintf(label, sizeof label, "burst-share %.2f", bs);
    s.with_label(label);
    if (bs <= 0.0) return;
    topo::WorkloadSpec bursts;
    bursts.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
    bursts.mean_on = 80_us;
    bursts.mean_off = Time::seconds_f(80e-6 * (1.0 - bs) / bs);
    bursts.seed = 43;
    s.workloads.push_back(bursts);
  };
}

std::vector<exp::Mutator> axis_burst_share() {
  std::vector<exp::Mutator> axis;
  for (const double bs : kBurstShares) axis.push_back(burst_share(bs));
  return axis;
}

void split_sweep() {
  bench::print_header(
      "E5", "OCS/EPS byte split vs burst share (mice floor 0.1, EPS oversubscribed 4:1)");

  const exp::SweepResult res =
      exp::ExperimentRunner{}.run(exp::expand({split_base()}, axis_burst_share()));

  stats::Table t{{"burst share", "ocs bytes", "eps bytes", "ocs fraction", "duty cycle",
                  "reconfigs", "delivery"}};
  for (std::size_t i = 0; i < res.points.size(); ++i) {
    const core::RunReport& r = res.points[i].report;
    const double total = static_cast<double>(r.ocs_bytes + r.eps_bytes);
    t.row()
        .cell(kBurstShares[i], 2)
        .cell(sim::format_bytes(static_cast<double>(r.ocs_bytes)))
        .cell(sim::format_bytes(static_cast<double>(r.eps_bytes)))
        .cell(total > 0 ? static_cast<double>(r.ocs_bytes) / total : 0.0, 3)
        .cell(r.ocs_duty_cycle, 3)
        .cell(r.reconfigurations)
        .cell(r.delivery_ratio(), 3);
  }
  std::printf("%s\n", t.markdown().c_str());
  bench::print_note(
      "With no bursts everything rides the EPS; as the burst share grows, the OCS absorbs the\n"
      "long line-rate bursts (its byte share and duty cycle rise) while the mice floor stays\n"
      "electrical — the division of labour the paper's hybrid architecture prescribes.");
}

void estimator_ablation() {
  bench::print_header("E5 ablation", "demand estimator choice (burst share 0.4)");

  std::vector<exp::ScenarioSpec> grid{split_base()};
  grid = exp::expand(grid, {burst_share(0.4)});
  std::vector<exp::Mutator> estimators;
  for (const char* est : {"instantaneous", "ewma", "windowed"}) {
    estimators.push_back([est](exp::ScenarioSpec& s) { s.with_estimator(est).with_label(est); });
  }
  const exp::SweepResult res = exp::ExperimentRunner{}.run(exp::expand(grid, estimators));

  stats::Table t{{"estimator", "ocs fraction", "delivery", "reconfigs"}};
  for (const auto& p : res.points) {
    const core::RunReport& r = p.report;
    const double total = static_cast<double>(r.ocs_bytes + r.eps_bytes);
    t.row()
        .cell(p.spec.policies.estimator)
        .cell(total > 0 ? static_cast<double>(r.ocs_bytes) / total : 0.0, 3)
        .cell(r.delivery_ratio(), 3)
        .cell(r.reconfigurations);
  }
  std::printf("%s\n", t.markdown().c_str());
  bench::print_note(
      "Backlog-based estimation (instantaneous/EWMA) drives circuits where queues actually\n"
      "build; pure offered-rate estimation plans circuits for traffic the EPS already served\n"
      "and under-serves real backlog — demand estimation quality matters (paper §2).");
}

}  // namespace

int main() {
  split_sweep();
  estimator_ablation();
  return 0;
}
