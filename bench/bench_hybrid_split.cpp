// E5 — hybrid traffic split: "the OCS is used to serve long bursts of
// traffic and the EPS is used to serve the remaining traffic and short
// bursts" (paper §1).
//
// Workload: every port carries a fixed floor of short-packet "mice"
// traffic (0.1 load, Poisson, uniform) plus Pareto ON/OFF line-rate bursts
// whose share of the line rate is swept.  The EPS is oversubscribed 4:1
// versus the optical path (Helios-style provisioning), so bursts are only
// worth carrying if the scheduler gives them circuits; Solstice's
// amortisation rule keeps sub-burst backlogs electrical.  A second table
// ablates the demand estimator (DESIGN.md §6).
#include <memory>
#include <string_view>

#include "bench_util.hpp"
#include "stats/table.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;
using sim::Time;

core::RunReport run_split(double burst_share, std::string_view estimator) {
  core::FrameworkConfig c = bench::hybrid_base(8);
  c.eps_rate = sim::DataRate::mbps(2500);  // 4:1 electrical oversubscription
  c.eps_buffer_bytes = 4 << 20;
  core::HybridSwitchFramework fw{c};

  if (estimator == "ewma") {
    fw.set_estimator(std::make_unique<demand::EwmaEstimator>(c.ports, c.ports, 0.25));
  } else if (estimator == "windowed") {
    fw.set_estimator(
        std::make_unique<demand::WindowedRateEstimator>(c.ports, c.ports, 25_us, 4));
  } else {
    fw.set_estimator(std::make_unique<demand::InstantaneousEstimator>(c.ports, c.ports));
  }
  fw.set_timing_model(std::make_unique<control::HardwareSchedulerTimingModel>());
  schedulers::SolsticeConfig sc;
  sc.reconfig_cost_bytes = core::reconfig_cost_bytes(c);
  sc.min_amortisation = 10.0;  // a circuit must move 10x its dark-time cost
  sc.max_slots = c.ports;
  fw.set_circuit_scheduler(std::make_unique<schedulers::SolsticeScheduler>(sc));

  // Mice floor: 0.1 load of small packets on every port.
  topo::WorkloadSpec mice;
  mice.kind = topo::WorkloadSpec::Kind::kPoissonUniform;
  mice.load = 0.1;
  mice.seed = 41;
  topo::attach_workload(fw, mice);

  // Burst overlay: ON at line rate with duty cycle = burst_share.
  if (burst_share > 0.0) {
    topo::WorkloadSpec bursts;
    bursts.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
    bursts.mean_on = 80_us;
    bursts.mean_off = Time::seconds_f(80e-6 * (1.0 - burst_share) / burst_share);
    bursts.seed = 43;
    topo::attach_workload(fw, bursts);
  }
  return fw.run(20_ms, 4_ms);
}

void split_sweep() {
  bench::print_header(
      "E5", "OCS/EPS byte split vs burst share (mice floor 0.1, EPS oversubscribed 4:1)");
  stats::Table t{{"burst share", "ocs bytes", "eps bytes", "ocs fraction", "duty cycle",
                  "reconfigs", "delivery"}};
  for (const double bs : {0.0, 0.1, 0.2, 0.4, 0.6}) {
    const core::RunReport r = run_split(bs, "instantaneous");
    const double total = static_cast<double>(r.ocs_bytes + r.eps_bytes);
    t.row()
        .cell(bs, 2)
        .cell(sim::format_bytes(static_cast<double>(r.ocs_bytes)))
        .cell(sim::format_bytes(static_cast<double>(r.eps_bytes)))
        .cell(total > 0 ? static_cast<double>(r.ocs_bytes) / total : 0.0, 3)
        .cell(r.ocs_duty_cycle, 3)
        .cell(r.reconfigurations)
        .cell(r.delivery_ratio(), 3);
  }
  std::printf("%s\n", t.markdown().c_str());
  bench::print_note(
      "With no bursts everything rides the EPS; as the burst share grows, the OCS absorbs the\n"
      "long line-rate bursts (its byte share and duty cycle rise) while the mice floor stays\n"
      "electrical — the division of labour the paper's hybrid architecture prescribes.");
}

void estimator_ablation() {
  bench::print_header("E5 ablation", "demand estimator choice (burst share 0.4)");
  stats::Table t{{"estimator", "ocs fraction", "delivery", "reconfigs"}};
  for (const char* est : {"instantaneous", "ewma", "windowed"}) {
    const core::RunReport r = run_split(0.4, est);
    const double total = static_cast<double>(r.ocs_bytes + r.eps_bytes);
    t.row()
        .cell(est)
        .cell(total > 0 ? static_cast<double>(r.ocs_bytes) / total : 0.0, 3)
        .cell(r.delivery_ratio(), 3)
        .cell(r.reconfigurations);
  }
  std::printf("%s\n", t.markdown().c_str());
  bench::print_note(
      "Backlog-based estimation (instantaneous/EWMA) drives circuits where queues actually\n"
      "build; pure offered-rate estimation plans circuits for traffic the EPS already served\n"
      "and under-serves real backlog — demand estimation quality matters (paper §2).");
}

}  // namespace

int main() {
  split_sweep();
  estimator_ablation();
  return 0;
}
