// E10 — scalability: "A large testbed can be assembled, using tens of
// processing elements, a centralized scheduling entity and a commercial
// OCS" (paper §3).
//
// Scales the emulated testbed from 8 to 64 hosts and reports sustained
// throughput, scheduler decisions, and the simulation engine's own cost
// (events executed, wall-clock) — the practical limits of the framework.
#include <chrono>

#include "bench_util.hpp"
#include "stats/table.hpp"

namespace {

using namespace xdrs;
using namespace xdrs::sim::literals;
using sim::Time;

}  // namespace

int main() {
  bench::print_header("E10", "framework scalability with port count (hybrid, load 0.4)");

  stats::Table t{{"ports", "offered", "delivered", "delivery", "decisions", "reconfigs",
                  "sim events", "wall clock"}};
  for (const std::uint32_t ports : {8u, 16u, 32u, 64u}) {
    core::FrameworkConfig c = bench::hybrid_base(ports);
    c.epoch = 200_us;
    core::HybridSwitchFramework fw{c};
    bench::install_hybrid_policies(fw, "hardware");

    topo::WorkloadSpec spec;
    spec.kind = topo::WorkloadSpec::Kind::kPoissonUniform;
    spec.load = 0.4;
    spec.seed = 91;
    topo::attach_workload(fw, spec);

    const auto t0 = std::chrono::steady_clock::now();
    const core::RunReport r = fw.run(5_ms, 1_ms);
    const auto wall =
        std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0);

    char wall_str[32];
    std::snprintf(wall_str, sizeof wall_str, "%lld ms", static_cast<long long>(wall.count()));
    t.row()
        .cell(static_cast<std::int64_t>(ports))
        .cell(sim::format_bytes(static_cast<double>(r.offered_bytes)))
        .cell(sim::format_bytes(static_cast<double>(r.delivered_bytes)))
        .cell(r.delivery_ratio(), 3)
        .cell(r.scheduler_decisions)
        .cell(r.reconfigurations)
        .cell(fw.simulator().stats().events_executed)
        .cell(wall_str);
  }
  std::printf("%s\n", t.markdown().c_str());
  bench::print_note(
      "Delivery stays high as the emulated testbed grows to 64 hosts; engine cost grows with\n"
      "offered packets (linear in ports at fixed per-port load).");
  return 0;
}
