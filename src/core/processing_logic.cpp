#include "core/processing_logic.hpp"

#include <algorithm>

namespace xdrs::core {

using sim::Time;
using sim::TraceCategory;

ProcessingLogic::ProcessingLogic(sim::Simulator& sim, const FrameworkConfig& cfg,
                                 net::Classifier& classifier,
                                 switching::OpticalCircuitSwitch& ocs,
                                 switching::ElectricalPacketSwitch& eps,
                                 control::SyncModel& sync, sim::TraceRecorder& trace)
    : sim_{sim},
      cfg_{cfg},
      classifier_{classifier},
      ocs_{ocs},
      eps_{eps},
      sync_{sync},
      trace_{trace},
      voqs_{cfg.ports, cfg.ports, cfg.voq_limits},
      inputs_(cfg.ports) {
  voqs_.set_status_callback(
      [this](net::PortId input, net::PortId output, queueing::VoqStatus status) {
        if (status != queueing::VoqStatus::kBecameNonEmpty) return;
        if (request_cb_) {
          control::SchedulingRequest req;
          req.src = input;
          req.dst = output;
          req.backlog_bytes = voqs_.bytes(input, output);
          req.issued_at = sim_.now();
          request_cb_(req);
        }
        trace_.record(sim_.now(), TraceCategory::kRequest, input, output);
      });
}

sim::Time ProcessingLogic::host_offset(net::PortId input) const {
  return cfg_.placement == BufferPlacement::kHost ? sync_.offset_of(input) : Time::zero();
}

void ProcessingLogic::ingest(const net::Packet& p) {
  ++stats_.ingested_packets;
  stats_.ingested_bytes += p.size_bytes;
  trace_.record(sim_.now(), TraceCategory::kPacketArrival, p.src, p.dst);

  // Classification: look-up rules may retarget the VOQ / service class.
  net::Packet pkt = p;
  const net::Verdict fallback{p.dst, p.tclass};
  const net::Verdict v = classifier_.classify(pkt, fallback);
  pkt.dst = v.out_port;
  pkt.tclass = v.tclass;

  if (cfg_.placement == BufferPlacement::kToRSwitch) {
    // Packets traverse the host uplink before reaching switch VOQs.
    sim_.schedule(cfg_.link_latency, [this, pkt]() mutable {
      if (cfg_.latency_sensitive_to_eps &&
          pkt.tclass == net::TrafficClass::kLatencySensitive) {
        // Mice / interactive traffic never waits for circuits: straight to
        // the packet switch (possible precisely because buffering and
        // forwarding happen inside the ToR in this placement).
        ++stats_.eps_bypass_packets;
        send_eps_paced(pkt.src, pkt);
        return;
      }
      enqueue(pkt);
    });
  } else {
    // Host-buffered: ALL traffic waits in host queues for a grant — "packets
    // stored in the host can be passed to the switch only at appropriate
    // times, upon a grant from the scheduler" (§2).
    enqueue(pkt);
  }
}

void ProcessingLogic::enqueue(net::Packet p) {
  p.enqueued_at = sim_.now();
  const net::PortId input = p.src;
  if (voqs_.enqueue(input, p)) {
    trace_.record(sim_.now(), TraceCategory::kEnqueue, input, p.dst);
    if (arrival_cb_) arrival_cb_(input, p.dst, p.size_bytes, sim_.now());
    if (deadline_cb_ && !p.deadline.is_zero()) deadline_cb_(input, p.dst, p.deadline, sim_.now());
    // A sleeping OCS window may be waiting for exactly this backlog.
    pump_ocs(input);
    pump_eps(input);
  } else {
    trace_.record(sim_.now(), TraceCategory::kDrop, input, p.dst);
  }
}

void ProcessingLogic::handle_grants(const control::GrantSet& gs) {
  for (const control::Grant& g : gs.grants) {
    trace_.record(sim_.now(), TraceCategory::kGrant, g.src, g.dst);
    InputState& st = inputs_[g.src];
    if (g.via == control::FabricPath::kOcs) {
      // A new circuit grant supersedes the previous window for this input.
      st.ocs_grant = g;
      st.ocs_remaining = g.bytes;
      pump_ocs(g.src);
    } else {
      st.eps_grants.push_back(EpsGrant{g, g.bytes});
      pump_eps(g.src);
    }
  }
}

void ProcessingLogic::revoke_all_grants() {
  for (InputState& st : inputs_) {
    st.ocs_grant.reset();
    st.ocs_remaining = 0;
    st.eps_grants.clear();
  }
}

void ProcessingLogic::pump_ocs(net::PortId input) {
  InputState& st = inputs_[input];
  if (!st.ocs_grant.has_value()) return;
  const control::Grant& g = *st.ocs_grant;
  const Time offset = host_offset(input);
  const Time now = sim_.now();

  // The host acts when *its* clock reads the window times; physical time is
  // shifted by its offset.
  const Time window_open_physical = g.valid_from + offset;
  if (now < window_open_physical) {
    if (!st.ocs_pump_waiting) {
      st.ocs_pump_waiting = true;
      sim_.schedule_at(window_open_physical, [this, input] {
        inputs_[input].ocs_pump_waiting = false;
        pump_ocs(input);
      });
    }
    return;
  }

  if (st.ocs_remaining <= 0) {
    st.ocs_grant.reset();
    return;
  }
  const net::Packet* head = voqs_.peek(input, g.dst);
  if (head == nullptr) return;  // new arrivals will re-pump

  const Time tx = cfg_.link_rate.transmission_time(head->size_bytes + sim::kWireOverheadBytes);
  const Time perceived_now = now - offset;
  if (perceived_now + tx > g.valid_until) {
    // The host believes the window is over (possibly wrongly, under skew).
    st.ocs_grant.reset();
    return;
  }

  net::Packet p = *voqs_.dequeue(input, g.dst);
  if (departure_cb_) departure_cb_(input, g.dst, p.size_bytes, now);
  trace_.record(now, TraceCategory::kDequeue, input, g.dst);
  ++stats_.granted_ocs_packets;

  const auto delivered = ocs_.send(input, p);
  if (!delivered.has_value()) {
    // No live circuit: the host launched into darkness or a stale circuit
    // (clock skew, or configure/grant overlap ablation).
    ++stats_.sync_losses;
    trace_.record(now, TraceCategory::kDrop, input, g.dst);
    if (cfg_.eps_fallback_on_miss) {
      send_eps_paced(input, p);
    }
    // The host still believes the transmission took tx.
    sim_.schedule(tx, [this, input] { pump_ocs(input); });
    return;
  }
  st.ocs_remaining -= p.size_bytes;
  const Time next_free = ocs_.port_free_at(input);
  sim_.schedule_at(next_free, [this, input] { pump_ocs(input); });
}

void ProcessingLogic::pump_eps(net::PortId input) {
  InputState& st = inputs_[input];
  if (st.eps_pumping) return;

  // Retire exhausted / expired / empty-backlog grants.
  while (!st.eps_grants.empty()) {
    EpsGrant& eg = st.eps_grants.front();
    const Time offset = host_offset(input);
    const bool expired = (sim_.now() - offset) >= eg.grant.valid_until;
    if (eg.remaining <= 0 || expired || voqs_.empty(input, eg.grant.dst)) {
      st.eps_grants.pop_front();
      continue;
    }
    break;
  }
  if (st.eps_grants.empty()) return;

  EpsGrant& eg = st.eps_grants.front();
  net::Packet p = *voqs_.dequeue(input, eg.grant.dst);
  eg.remaining -= p.size_bytes;
  if (departure_cb_) departure_cb_(input, eg.grant.dst, p.size_bytes, sim_.now());
  trace_.record(sim_.now(), TraceCategory::kDequeue, input, eg.grant.dst);
  ++stats_.granted_eps_packets;

  st.eps_pumping = true;
  const Time tx = cfg_.eps_rate.transmission_time(p.size_bytes + sim::kWireOverheadBytes);
  const Time start = std::max(sim_.now(), st.eps_busy_until);
  st.eps_busy_until = start + tx;
  const Time link = cfg_.placement == BufferPlacement::kHost ? cfg_.link_latency : Time::zero();
  sim_.schedule_at(start + tx + link, [this, input, p] {
    eps_.send(p);
    inputs_[input].eps_pumping = false;
    pump_eps(input);
  });
}

void ProcessingLogic::send_eps_paced(net::PortId input, const net::Packet& p) {
  InputState& st = inputs_[input];
  const Time tx = cfg_.eps_rate.transmission_time(p.size_bytes + sim::kWireOverheadBytes);
  const Time start = std::max(sim_.now(), st.eps_busy_until);
  st.eps_busy_until = start + tx;
  sim_.schedule_at(start + tx, [this, p] { eps_.send(p); });
}

}  // namespace xdrs::core
