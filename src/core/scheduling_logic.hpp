// Scheduling logic (Figure 2, centre block): "processes the incoming
// requests, estimates the demand matrix, and runs the scheduling algorithm,
// generating corresponding transmission grants."
//
// Two disciplines:
//  * kSlotted     — every slot, run a MatchingAlgorithm on the demand
//                   estimate and grant one slot's worth of service to each
//                   matched pair (classic input-queued crossbar operation);
//  * kHybridEpoch — every epoch, run a CircuitScheduler, execute its slot
//                   sequence on the OCS (configure -> hold -> next) and
//                   grant the residual matrix to the EPS.
//
// Every decision is delayed by the pluggable SchedulerTimingModel — a
// software model *lives* its milliseconds here, which is how the paper's
// fast-vs-slow comparison is realised end to end.
#ifndef XDRS_CORE_SCHEDULING_LOGIC_HPP
#define XDRS_CORE_SCHEDULING_LOGIC_HPP

#include <cstdint>
#include <functional>
#include <memory>

#include "control/messages.hpp"
#include "control/timing.hpp"
#include "core/config.hpp"
#include "core/switching_logic.hpp"
#include "demand/estimator.hpp"
#include "obs/metrics.hpp"
#include "schedulers/circuit_scheduler.hpp"
#include "schedulers/matcher.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "stats/summary.hpp"

namespace xdrs::core {

struct SchedulingStats {
  std::uint64_t decisions{0};
  std::uint64_t requests_received{0};
  sim::Time decision_latency_total{};
  stats::Summary plan_slots;        ///< circuit slots per hybrid decision
  stats::Summary residual_fraction; ///< EPS share of demand per decision
};

class SchedulingLogic {
 public:
  using GrantCallback = std::function<void(const control::GrantSet&)>;

  SchedulingLogic(sim::Simulator& sim, const FrameworkConfig& cfg, SwitchingLogic& switching,
                  sim::TraceRecorder& trace);

  // Pluggable policy objects.  Which are required depends on the
  // discipline: kSlotted needs a matcher, kHybridEpoch a circuit scheduler;
  // both need an estimator and a timing model.
  void set_matcher(std::unique_ptr<schedulers::MatchingAlgorithm> m) { matcher_ = std::move(m); }
  void set_circuit_scheduler(std::unique_ptr<schedulers::CircuitScheduler> s) {
    circuit_scheduler_ = std::move(s);
  }
  void set_estimator(std::unique_ptr<demand::DemandEstimator> e) { estimator_ = std::move(e); }
  void set_timing_model(std::unique_ptr<control::SchedulerTimingModel> t) {
    timing_ = std::move(t);
  }

  void set_grant_callback(GrantCallback cb) { grant_cb_ = std::move(cb); }

  /// Begins periodic operation (first decision immediately).
  void start();

  // Demand-information feed from the processing logic.
  void on_request(const control::SchedulingRequest& req);
  void on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at);
  void on_departure(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at);
  void on_deadline(net::PortId src, net::PortId dst, sim::Time deadline, sim::Time at);

  [[nodiscard]] const SchedulingStats& stats() const noexcept { return stats_; }

  /// Wires stage profiling: resolves the "estimator_snapshot",
  /// "matcher_compute" and "circuit_plan" timers out of `reg` once, so the
  /// decision loop holds raw pointers and the telemetry-off path stays a
  /// single branch per stage.  nullptr detaches (the default).
  void set_stage_timers(obs::Registry* reg);

  /// The demand estimate of the most recent decision (telemetry sampling
  /// reads its sparsity; read-only).
  [[nodiscard]] const demand::DemandMatrix& demand() const noexcept { return demand_; }

  /// Latency of the most recent decision (component breakdown).
  [[nodiscard]] const control::TimingBreakdown& last_breakdown() const noexcept {
    return last_breakdown_;
  }

  /// "matcher/circuit/estimator/timing" self-reported names of the
  /// installed policy objects ('-' for absent ones) — stamped into
  /// RunReport so artifacts name the stack that actually scheduled them.
  [[nodiscard]] std::string installed_policy_names() const;

 private:
  void tick();
  void decide_slotted();
  void decide_hybrid();
  /// Executes hybrid plan slot `k`: configure, wait, grant, advance.
  /// `deadline` is the end of this epoch's planning horizon: no window may
  /// extend past it, so stale grants can never collide with the next
  /// epoch's reconfiguration (hosts with clock skew still can — that is
  /// the synchronisation experiment).
  void run_plan_slot(std::shared_ptr<schedulers::CircuitPlan> plan, std::size_t k,
                     std::uint64_t epoch, sim::Time deadline);
  void account_decision(const control::TimingBreakdown& b);

  sim::Simulator& sim_;
  const FrameworkConfig& cfg_;
  SwitchingLogic& switching_;
  sim::TraceRecorder& trace_;

  std::unique_ptr<schedulers::MatchingAlgorithm> matcher_;
  std::unique_ptr<schedulers::CircuitScheduler> circuit_scheduler_;
  std::unique_ptr<demand::DemandEstimator> estimator_;
  std::unique_ptr<control::SchedulerTimingModel> timing_;
  GrantCallback grant_cb_;

  // Stage-profiling hooks; null until set_stage_timers() attaches a registry.
  obs::Registry* obs_{nullptr};
  obs::Timer* t_estimator_{nullptr};
  obs::Timer* t_matcher_{nullptr};
  obs::Timer* t_circuit_{nullptr};

  demand::DemandMatrix demand_;
  control::TimingBreakdown last_breakdown_;
  std::uint64_t epoch_counter_{0};
  SchedulingStats stats_;

  // Recycled decision buffers.  Each decision borrows an entry whose only
  // reference is the pool's (in-flight grant/configure events hold extra
  // references), so steady-state decisions reuse matchings, plans and their
  // residual matrices instead of allocating per slot/epoch.  The pool grows
  // only while decisions outlive a period (slow software schedulers), then
  // stabilises.
  template <typename T>
  [[nodiscard]] std::shared_ptr<T> acquire(std::vector<std::shared_ptr<T>>& pool) {
    for (const auto& entry : pool) {
      if (entry.use_count() == 1) return entry;
    }
    pool.push_back(std::make_shared<T>());
    return pool.back();
  }

  std::vector<std::shared_ptr<schedulers::Matching>> matching_pool_;
  std::vector<std::shared_ptr<schedulers::CircuitPlan>> plan_pool_;
};

}  // namespace xdrs::core

#endif  // XDRS_CORE_SCHEDULING_LOGIC_HPP
