#include "core/framework.hpp"

#include <algorithm>
#include <stdexcept>

namespace xdrs::core {

std::int64_t reconfig_cost_bytes(const FrameworkConfig& cfg) {
  return cfg.link_rate.bytes_in(cfg.ocs_reconfig);
}

HybridSwitchFramework::HybridSwitchFramework(FrameworkConfig cfg)
    : HybridSwitchFramework{cfg, std::make_unique<sim::Simulator>(), nullptr} {}

HybridSwitchFramework::HybridSwitchFramework(sim::Simulator& shared, FrameworkConfig cfg)
    : HybridSwitchFramework{cfg, nullptr, &shared} {}

HybridSwitchFramework::HybridSwitchFramework(FrameworkConfig cfg,
                                             std::unique_ptr<sim::Simulator> owned,
                                             sim::Simulator* shared)
    : cfg_{cfg},
      owned_sim_{std::move(owned)},
      sim_{owned_sim_ ? *owned_sim_ : *shared},
      classifier_{},
      sync_{cfg.ports, cfg.sync},
      ocs_{sim_,
           switching::OcsConfig{cfg.ports, cfg.link_rate, cfg.ocs_reconfig,
                                cfg.placement == BufferPlacement::kHost
                                    ? cfg.ocs_fabric_latency + cfg.link_latency
                                    : cfg.ocs_fabric_latency,
                                cfg.ocs_failure_prob, cfg.seed ^ 0xfa17ed}},
      eps_{sim_, switching::EpsConfig{cfg.ports, cfg.eps_rate, cfg.eps_latency,
                                      cfg.eps_buffer_bytes, cfg.eps_strict_priority}},
      switching_{sim_, ocs_, trace_},
      processing_{sim_, cfg_, classifier_, ocs_, eps_, sync_, trace_},
      scheduling_{sim_, cfg_, switching_, trace_} {
  if (cfg.ports < 2) throw std::invalid_argument{"Framework: need >= 2 ports"};
  wire();
}

void HybridSwitchFramework::wire() {
  // Processing -> scheduling: requests and demand-estimator events.  All
  // control-path latency is owned by the timing model (E2), so the wiring
  // itself is immediate.
  processing_.set_request_callback(
      [this](const control::SchedulingRequest& r) { scheduling_.on_request(r); });
  processing_.set_arrival_callback(
      [this](net::PortId s, net::PortId d, std::int64_t b, sim::Time at) {
        scheduling_.on_arrival(s, d, b, at);
      });
  processing_.set_departure_callback(
      [this](net::PortId s, net::PortId d, std::int64_t b, sim::Time at) {
        scheduling_.on_departure(s, d, b, at);
      });
  processing_.set_deadline_callback(
      [this](net::PortId s, net::PortId d, sim::Time deadline, sim::Time at) {
        scheduling_.on_deadline(s, d, deadline, at);
      });

  // Scheduling -> processing: grants (after the switching logic has
  // configured circuits; SchedulingLogic enforces the ordering).
  scheduling_.set_grant_callback(
      [this](const control::GrantSet& gs) { processing_.handle_grants(gs); });

  // Fabric deliveries -> measurement.
  ocs_.set_deliver_callback([this](const net::Packet& p, net::PortId) {
    on_deliver(p, control::FabricPath::kOcs);
  });
  eps_.set_deliver_callback([this](const net::Packet& p, net::PortId) {
    on_deliver(p, control::FabricPath::kEps);
  });
}

schedulers::PolicyContext HybridSwitchFramework::policy_context() const {
  schedulers::PolicyContext ctx;
  ctx.ports = cfg_.ports;
  ctx.seed = cfg_.seed;
  ctx.reconfig_cost_bytes = reconfig_cost_bytes(cfg_);
  return ctx;
}

void HybridSwitchFramework::set_policies(const PolicyStack& stack) {
  const auto& registry = schedulers::PolicyRegistry::instance();
  const schedulers::PolicyContext ctx = policy_context();
  scheduling_.set_estimator(registry.make_estimator(stack.estimator, ctx));
  scheduling_.set_timing_model(registry.make_timing(stack.timing, ctx));
  if (cfg_.discipline == SchedulingDiscipline::kSlotted) {
    scheduling_.set_matcher(registry.make_matcher(stack.matcher, ctx));
  } else {
    scheduling_.set_circuit_scheduler(registry.make_circuit(stack.circuit, ctx));
  }
}

void HybridSwitchFramework::enable_telemetry(const obs::TelemetryConfig& tcfg) {
  if (ran_) throw std::logic_error{"Framework: enable_telemetry() must precede run()"};
  telemetry_ = std::make_unique<obs::RunTelemetry>(tcfg);
  attach_stage_timers(&telemetry_->registry());
}

void HybridSwitchFramework::attach_stage_timers(obs::Registry* registry) {
  scheduling_.set_stage_timers(registry);
  switching_.set_stage_timers(registry);
}

obs::TimelineSnapshot HybridSwitchFramework::timeline_snapshot(sim::Time urgent_horizon) const {
  obs::TimelineSnapshot s;
  s.voq_total_bytes = processing_.voqs().total_bytes();
  s.voq_max_bytes = processing_.voqs().max_voq_bytes();
  s.demand_nonzeros = scheduling_.demand().nonzero_count();
  // Cumulative delivered bytes of the measured window (0 during warmup);
  // reading the report is safe because the sampler never writes it.
  s.ocs_delivered_bytes = report_.ocs_bytes;
  s.eps_delivered_bytes = report_.eps_bytes;
  const FlowCompletionTracker::UrgentBacklog urgent =
      completion_.urgent_backlog(sim_.now(), urgent_horizon);
  s.urgent_flows = urgent.flows;
  s.urgent_bytes = urgent.bytes;
  return s;
}

void HybridSwitchFramework::sample_timeline(sim::Time period, sim::Time horizon) {
  // "Urgent" = open deadline flows due within one sample period, so the
  // horizon tracks the timeline's own resolution.
  telemetry_->timeline().record(sim_.now(), timeline_snapshot(period));
  const sim::Time next = sim_.now() + period;
  if (next > horizon) return;
  sim_.schedule_at(next, [this, period, horizon] { sample_timeline(period, horizon); });
}

void HybridSwitchFramework::add_generator(std::unique_ptr<traffic::TrafficGenerator> g,
                                          IngressTransform transform) {
  if (!g) throw std::invalid_argument{"Framework: null generator"};
  generators_.push_back(AttachedGenerator{std::move(g), std::move(transform)});
}

void HybridSwitchFramework::set_uplink_hook(net::PortId first_uplink, UplinkHook hook) {
  if (ran_) throw std::logic_error{"Framework: set_uplink_hook() must precede run()"};
  first_uplink_ = first_uplink;
  uplink_hook_ = std::move(hook);
}

void HybridSwitchFramework::inject(const net::Packet& p) {
  if (measuring_) {
    ++report_.offered_packets;
    report_.offered_bytes += p.size_bytes;
  }
  processing_.ingest(p);
}

void HybridSwitchFramework::reinject(const net::Packet& p) {
  // No offered accounting: the packet was offered once, at its source rack.
  processing_.ingest(p);
}

void HybridSwitchFramework::on_deliver(const net::Packet& p, control::FabricPath via) {
  // A delivery at an uplink port is a transit hop, not an arrival: hand it
  // to the core tier before any completion/measurement accounting — the
  // destination rack records the final delivery.
  if (uplink_hook_ && p.dst >= first_uplink_) {
    uplink_hook_(p, via);
    return;
  }
  // The completion tracker sees every delivery, warmup included, so flows
  // straddling the measurement boundary are recognised and then excluded at
  // finalize (their early packets were never measured).
  completion_.on_deliver(p, sim_.now());
  if (!measuring_) return;
  report_.serviced_bytes += p.size_bytes;
  // Only packets born inside the measurement window count further, so
  // that delivered <= offered holds exactly (warmup stragglers excluded).
  if (p.created_at < measure_start_) return;
  ++report_.delivered_packets;
  report_.delivered_bytes += p.size_bytes;
  if (via == control::FabricPath::kOcs) {
    report_.ocs_bytes += p.size_bytes;
  } else {
    report_.eps_bytes += p.size_bytes;
  }
  report_.class_bytes[static_cast<std::size_t>(p.tclass)] += p.size_bytes;
  (p.remote ? report_.cross_rack_bytes : report_.intra_rack_bytes) += p.size_bytes;
  const sim::Time latency = sim_.now() - p.created_at;
  report_.latency.record_time(latency);
  if (p.tclass == net::TrafficClass::kLatencySensitive) {
    report_.latency_sensitive.record_time(latency);
    flow_jitter_[p.flow].record(p.created_at, sim_.now());
  }
  trace_.record(sim_.now(), sim::TraceCategory::kDeliver, p.src, p.dst);
}

void HybridSwitchFramework::start_run(sim::Time duration, sim::Time warmup) {
  if (ran_) throw std::logic_error{"Framework: run() is one-shot per instance"};
  ran_ = true;
  if (duration <= sim::Time::zero()) {
    throw std::invalid_argument{"Framework: duration must be positive"};
  }
  duration_ = duration;
  measure_start_ = warmup;
  horizon_ = warmup + duration;

  scheduling_.start();
  for (auto& e : generators_) {
    if (e.transform) {
      // Copy-rewrite-inject: the placement stage never mutates the
      // generator's own packet (generators may reuse buffers).
      e.g->start(
          sim_,
          [this, t = e.transform](const net::Packet& p) {
            net::Packet q = p;
            t(q);
            inject(q);
          },
          horizon_);
    } else {
      e.g->start(sim_, [this](const net::Packet& p) { inject(p); }, horizon_);
    }
  }
}

void HybridSwitchFramework::begin_measurement() {
  if (!ran_) throw std::logic_error{"Framework: begin_measurement() before start_run()"};
  if (measurement_begun_) throw std::logic_error{"Framework: begin_measurement() is one-shot"};
  measurement_begun_ = true;

  // Measurement window begins: reset high-water marks and snapshot the
  // monotonic counters so the report shows deltas.
  processing_.voqs().reset_peaks();
  base_.voq_drops = processing_.voqs().stats().dropped_packets;
  base_.eps_drops = eps_.stats().packets_dropped;
  base_.sync_losses = processing_.stats().sync_losses;
  base_.reconfig_cuts = ocs_.stats().packets_cut_by_reconfig;
  base_.reconfigurations = ocs_.stats().reconfigurations;
  base_.dark_time = ocs_.stats().dark_time_total;
  base_.ocs_busy = ocs_.stats().busy_time_total;
  base_.decisions = scheduling_.stats().decisions;
  base_.decision_latency_total = scheduling_.stats().decision_latency_total;
  base_.uplink_drops = 0;
  for (auto& e : generators_) {
    e.g->reset_queue_peak();
    base_.uplink_drops += e.g->queue_drops();
  }
  // measure_start_ was set by start_run() (== warmup, not now(): the event
  // queue stopped 1 ps short of the boundary).
  measuring_ = true;

  if (telemetry_) {
    // Resolve the sampling period: explicit, or ~256 samples across the
    // measured window (never finer than 1 us).  Sampling is read-only and
    // rides its own event chain, so it cannot perturb the run.
    sim::Time period = telemetry_->config().sample_period;
    if (period <= sim::Time::zero()) {
      period = std::max(duration_ / 256, sim::Time::microseconds(1));
    }
    telemetry_->set_resolved_period(period);
    sim_.schedule_at(measure_start_, [this, period, horizon = horizon_] {
      sample_timeline(period, horizon);
    });
  }
}

RunReport HybridSwitchFramework::finalize_run() {
  if (!measurement_begun_) throw std::logic_error{"Framework: finalize_run() before measurement"};
  measuring_ = false;

  report_.duration = duration_;
  // Self-reported names of the objects that actually scheduled this run —
  // truthful even when bespoke policies were installed via scheduling().
  report_.policy_stack = scheduling_.installed_policy_names();
  report_.voq_drops = processing_.voqs().stats().dropped_packets - base_.voq_drops;
  report_.eps_drops = eps_.stats().packets_dropped - base_.eps_drops;
  report_.sync_losses = processing_.stats().sync_losses - base_.sync_losses;
  report_.reconfig_cuts = ocs_.stats().packets_cut_by_reconfig - base_.reconfig_cuts;
  report_.reconfigurations = ocs_.stats().reconfigurations - base_.reconfigurations;
  report_.dark_time = ocs_.stats().dark_time_total - base_.dark_time;

  const sim::Time busy = ocs_.stats().busy_time_total - base_.ocs_busy;
  report_.ocs_duty_cycle =
      duration_.is_zero() ? 0.0
                          : busy.ratio(duration_ * static_cast<std::int64_t>(cfg_.ports));

  report_.peak_switch_buffer_bytes = processing_.voqs().stats().peak_total_bytes;
  std::int64_t worst_host = 0;
  for (std::uint32_t i = 0; i < cfg_.ports; ++i) {
    worst_host = std::max(worst_host, processing_.voqs().peak_input_bytes(i));
  }
  report_.peak_host_buffer_bytes = worst_host;

  const std::uint64_t decisions = scheduling_.stats().decisions - base_.decisions;
  report_.scheduler_decisions = decisions;
  if (decisions > 0) {
    report_.mean_decision_latency =
        (scheduling_.stats().decision_latency_total - base_.decision_latency_total) /
        static_cast<std::int64_t>(decisions);
  }

  // Ingress-queue stage (rack-aggregation uplinks): worst high-water mark
  // and measured-window drops across this switch's generators.  Zero for
  // plain per-port sources.
  std::uint64_t generator_drops = 0;
  for (const auto& e : generators_) {
    report_.peak_uplink_queue_bytes =
        std::max(report_.peak_uplink_queue_bytes, e.g->peak_queue_bytes());
    generator_drops += e.g->queue_drops();
  }
  report_.uplink_drops = generator_drops - base_.uplink_drops;

  for (const auto& [flow, jit] : flow_jitter_) {
    if (jit.samples() >= 8) report_.jitter_us.record(jit.jitter().us());
  }
  completion_.finalize(measure_start_, horizon_, report_);
  return report_;
}

RunReport HybridSwitchFramework::run(sim::Time duration, sim::Time warmup) {
  start_run(duration, warmup);
  // Stop 1 ps short of the boundary: run_until() executes events stamped
  // exactly at its horizon, and packets injected at t == warmup must fall
  // inside the measured window (counted offered), not at the tail of the
  // unmeasured warmup — otherwise synchronized sources (incast rounds, CBR
  // phases) deliver packets that were never offered.
  if (warmup > sim::Time::zero()) sim_.run_until(warmup - sim::Time::picoseconds(1));
  begin_measurement();
  sim_.run_until(horizon_);
  return finalize_run();
}

}  // namespace xdrs::core
