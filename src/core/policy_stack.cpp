#include "core/policy_stack.hpp"

#include <stdexcept>

#include "schedulers/policy_registry.hpp"

namespace xdrs::core {

namespace {

using schedulers::PolicyKind;
using schedulers::PolicyRegistry;

std::string* field_of(PolicyStack& stack, PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kMatcher: return &stack.matcher;
    case PolicyKind::kCircuit: return &stack.circuit;
    case PolicyKind::kEstimator: return &stack.estimator;
    case PolicyKind::kTiming: return &stack.timing;
  }
  return nullptr;
}

PolicyKind kind_from_key(std::string_view key, std::string_view segment) {
  if (key == "matcher") return PolicyKind::kMatcher;
  if (key == "circuit") return PolicyKind::kCircuit;
  if (key == "estimator") return PolicyKind::kEstimator;
  if (key == "timing") return PolicyKind::kTiming;
  throw std::invalid_argument{"PolicyStack: bad kind '" + std::string{key} + "' in segment '" +
                              std::string{segment} +
                              "' (want matcher=, circuit=, estimator= or timing=)"};
}

}  // namespace

PolicyStack PolicyStack::parse(std::string_view spec) {
  PolicyStack stack;
  const auto& registry = PolicyRegistry::instance();
  bool assigned[4] = {false, false, false, false};

  while (!spec.empty()) {
    const auto slash = spec.find('/');
    std::string_view segment = spec.substr(0, slash);
    spec = slash == std::string_view::npos ? std::string_view{} : spec.substr(slash + 1);
    if (segment.empty()) continue;  // tolerate "a//b" and trailing '/'

    PolicyKind kind;
    const auto eq = segment.find('=');
    if (eq != std::string_view::npos) {
      kind = kind_from_key(segment.substr(0, eq), segment);
      segment = segment.substr(eq + 1);
      // A kind prefix narrows classification; the name must still exist, or
      // a typo would silently ride along until (or past) construction time.
      const auto name = segment.substr(0, segment.find(':'));
      if (!registry.knows(kind, name)) {
        throw std::invalid_argument{"PolicyStack: unknown " +
                                    std::string{schedulers::to_string(kind)} + " '" +
                                    std::string{segment} + "'"};
      }
    } else {
      const auto name = segment.substr(0, segment.find(':'));
      const auto kinds = registry.kinds_of(name);
      if (kinds.empty()) {
        throw std::invalid_argument{"PolicyStack: unknown policy '" + std::string{segment} +
                                    "' (no kind registers the name '" + std::string{name} + "')"};
      }
      if (kinds.size() > 1) {
        throw std::invalid_argument{"PolicyStack: ambiguous policy '" + std::string{segment} +
                                    "' — prefix it with its kind, e.g. 'matcher=" +
                                    std::string{segment} + "'"};
      }
      kind = kinds.front();
    }

    const auto idx = static_cast<std::size_t>(kind);
    if (assigned[idx]) {
      throw std::invalid_argument{"PolicyStack: duplicate " +
                                  std::string{schedulers::to_string(kind)} + " in '" +
                                  std::string{segment} + "'"};
    }
    assigned[idx] = true;
    *field_of(stack, kind) = std::string{segment};
  }
  return stack;
}

std::string PolicyStack::to_string() const {
  // Names registered under more than one kind would parse back as
  // ambiguous; qualify exactly those so parse(to_string()) always
  // round-trips.
  const auto& registry = PolicyRegistry::instance();
  const auto segment = [&registry](PolicyKind kind, const std::string& spec) -> std::string {
    const std::string_view name = std::string_view{spec}.substr(0, spec.find(':'));
    if (registry.kinds_of(name).size() > 1) {
      return std::string{schedulers::to_string(kind)} + "=" + spec;
    }
    return spec;
  };
  return segment(PolicyKind::kMatcher, matcher) + "/" + segment(PolicyKind::kCircuit, circuit) +
         "/" + segment(PolicyKind::kEstimator, estimator) + "/" +
         segment(PolicyKind::kTiming, timing);
}

}  // namespace xdrs::core
