// HybridSwitchFramework: the paper's proposed system (Figure 2), assembled.
//
//   hosts/generators --> ProcessingLogic --requests--> SchedulingLogic
//        ^                    | VOQs                        |
//        |                    |<-------- grants ------------|  (after
//        |                    v                             v   configuring)
//      deliveries <---- OCS circuits / EPS <---- SwitchingLogic
//
// The framework owns the simulator, fabrics and the three logic partitions,
// wires their callbacks, runs the experiment and aggregates a RunReport.
// The scheduling algorithm, demand estimator, circuit scheduler and timing
// model are pluggable — the "users implement novel design in the scheduling
// logic module" of §3.
#ifndef XDRS_CORE_FRAMEWORK_HPP
#define XDRS_CORE_FRAMEWORK_HPP

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "schedulers/policy_registry.hpp"

#include "core/config.hpp"
#include "core/flow_tracker.hpp"
#include "core/policy_stack.hpp"
#include "core/processing_logic.hpp"
#include "core/scheduling_logic.hpp"
#include "core/switching_logic.hpp"
#include "net/classifier.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "switching/eps.hpp"
#include "switching/ocs.hpp"
#include "traffic/generators.hpp"

namespace xdrs::core {

class HybridSwitchFramework {
 public:
  explicit HybridSwitchFramework(FrameworkConfig cfg);

  /// Shares an external simulator (fat-tree mode: every ToR switch of a
  /// topology rides one event chain).  `shared` must outlive the framework;
  /// run() is then orchestrated by the topology through start_run() /
  /// begin_measurement() / finalize_run() instead of being called here.
  HybridSwitchFramework(sim::Simulator& shared, FrameworkConfig cfg);

  HybridSwitchFramework(const HybridSwitchFramework&) = delete;
  HybridSwitchFramework& operator=(const HybridSwitchFramework&) = delete;

  // ---- pluggable scheduling logic ----------------------------------------
  /// Installs the whole policy stack by spec, constructing every component
  /// through the PolicyRegistry with this switch's context (ports, seed,
  /// reconfiguration cost).  The matcher is built only for kSlotted and the
  /// circuit scheduler only for kHybridEpoch — the stack's other spec may
  /// then name anything.  Throws std::invalid_argument on unknown specs.
  ///
  /// Bespoke (unregistered) policy objects can still be installed through
  /// scheduling().set_matcher() and friends; registering them instead makes
  /// them sweepable by name.
  void set_policies(const PolicyStack& stack);

  /// set_policies overload for the spec-string grammar, e.g.
  /// `set_policies("islip:4/instant/hw:500MHz")`.
  void set_policies(std::string_view stack_spec) { set_policies(PolicyStack::parse(stack_spec)); }

  /// Installs the default stack (PolicyStack{}): iSLIP(2) for kSlotted or
  /// Solstice for kHybridEpoch, instantaneous estimator, hardware timing.
  void use_default_policies() { set_policies(PolicyStack{}); }

  /// The registry context this framework constructs policies with.
  [[nodiscard]] schedulers::PolicyContext policy_context() const;

  // ---- workload -----------------------------------------------------------
  /// Applied to every packet a generator emits, before it is injected: the
  /// fat-tree placement stage retargets a locality-chosen fraction of flows
  /// at the uplink ports here.  A pure function of the packet (no simulator
  /// state), so placement is deterministic by construction.
  using IngressTransform = std::function<void(net::Packet&)>;

  /// Takes ownership; the generator starts when run() is called.  The
  /// optional transform rewrites this generator's packets at injection time
  /// (empty = inject as emitted, the single-switch path).
  void add_generator(std::unique_ptr<traffic::TrafficGenerator> g,
                     IngressTransform transform = {});

  /// Direct injection (integration tests / custom drivers).
  void inject(const net::Packet& p);

  /// Transit injection for packets arriving from another tier (fat-tree
  /// core links): ingests without offered-traffic accounting — the packet
  /// was already offered at its source rack.
  void reinject(const net::Packet& p);

  // ---- multi-rack hooks ---------------------------------------------------
  /// Delivery hook for cross-rack forwarding: a fabric delivery at port
  /// >= `first_uplink` is handed to `hook` (the fat-tree core tier) instead
  /// of being recorded as a final delivery.  Unset in single-switch runs.
  using UplinkHook = std::function<void(const net::Packet&, control::FabricPath)>;
  void set_uplink_hook(net::PortId first_uplink, UplinkHook hook);

  // ---- telemetry ----------------------------------------------------------
  /// Switches on the observability layer for this run: stage timers attach
  /// to the scheduling/switching logic and run() drives a periodic timeline
  /// sampler over the measured window.  Telemetry is sidecar-only — it
  /// never enters RunReport or perturbs the event sequence, so results are
  /// byte-identical with it on or off (CI-gated).  Call before run().
  void enable_telemetry(const obs::TelemetryConfig& tcfg = {});

  /// The run's telemetry bundle; nullptr unless enable_telemetry() was
  /// called.
  [[nodiscard]] obs::RunTelemetry* telemetry() noexcept { return telemetry_.get(); }
  [[nodiscard]] const obs::RunTelemetry* telemetry() const noexcept { return telemetry_.get(); }

  // ---- execution ----------------------------------------------------------
  /// Runs warmup (unmeasured) then `duration` (measured); returns the
  /// measured-window report.  One-shot: a framework instance runs once.
  /// Exactly start_run() + run_until(warmup) + begin_measurement() +
  /// run_until(horizon) + finalize_run(), so single- and multi-switch runs
  /// share one code path.
  RunReport run(sim::Time duration, sim::Time warmup = sim::Time::zero());

  // ---- phased execution (topology drivers) --------------------------------
  // A topology owning several frameworks on one shared simulator drives the
  // phases itself: start_run() on every switch, advance the shared clock to
  // the warmup boundary, begin_measurement() on every switch, advance to
  // the horizon, finalize_run() on every switch.  run() is these phases
  // over the framework's own simulator.
  /// Starts scheduling and the generators; events run until `warmup +
  /// duration` (the horizon).  One-shot, like run().
  void start_run(sim::Time duration, sim::Time warmup = sim::Time::zero());
  /// Snapshots baselines and opens the measured window.  Call with the
  /// simulator stopped just short of the warmup boundary (run() stops 1 ps
  /// early so boundary-stamped injections fall inside the window).
  void begin_measurement();
  /// Assembles and returns the measured-window report.  Call after the
  /// simulator reached the horizon.
  RunReport finalize_run();
  /// The run horizon (warmup + duration); valid after start_run().
  [[nodiscard]] sim::Time horizon() const noexcept { return horizon_; }

  /// One timeline-sampler tick's worth of switch state (telemetry); urgent
  /// backlog looks `urgent_horizon` ahead.  Read-only.
  [[nodiscard]] obs::TimelineSnapshot timeline_snapshot(sim::Time urgent_horizon) const;

  /// Attaches the scheduling/switching stage timers to `registry` without
  /// creating a framework-owned telemetry bundle (fat-tree mode: the
  /// topology owns one registry for all tiers).
  void attach_stage_timers(obs::Registry* registry);

  // ---- component access (tests, benches, examples) ------------------------
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] sim::TraceRecorder& trace() noexcept { return trace_; }
  [[nodiscard]] net::Classifier& classifier() noexcept { return classifier_; }
  [[nodiscard]] ProcessingLogic& processing() noexcept { return processing_; }
  [[nodiscard]] SchedulingLogic& scheduling() noexcept { return scheduling_; }
  [[nodiscard]] SwitchingLogic& switching() noexcept { return switching_; }
  [[nodiscard]] switching::OpticalCircuitSwitch& ocs() noexcept { return ocs_; }
  [[nodiscard]] switching::ElectricalPacketSwitch& eps() noexcept { return eps_; }
  [[nodiscard]] const FrameworkConfig& config() const noexcept { return cfg_; }

 private:
  HybridSwitchFramework(FrameworkConfig cfg, std::unique_ptr<sim::Simulator> owned,
                        sim::Simulator* shared);

  void wire();
  void on_deliver(const net::Packet& p, control::FabricPath via);
  /// One telemetry tick: snapshot switch state (read-only), fold it into
  /// the sampler, reschedule until `horizon`.
  void sample_timeline(sim::Time period, sim::Time horizon);

  FrameworkConfig cfg_;
  /// Owned in single-switch mode, null when sharing a topology simulator;
  /// sim_ is the one reference every component uses either way.
  std::unique_ptr<sim::Simulator> owned_sim_;
  sim::Simulator& sim_;
  sim::TraceRecorder trace_;
  net::Classifier classifier_;
  control::SyncModel sync_;
  switching::OpticalCircuitSwitch ocs_;
  switching::ElectricalPacketSwitch eps_;
  SwitchingLogic switching_;
  ProcessingLogic processing_;
  SchedulingLogic scheduling_;
  struct AttachedGenerator {
    std::unique_ptr<traffic::TrafficGenerator> g;
    IngressTransform transform;  ///< empty on the single-switch path
  };
  std::vector<AttachedGenerator> generators_;
  std::unique_ptr<obs::RunTelemetry> telemetry_;

  // Multi-rack forwarding (unset in single-switch runs).
  net::PortId first_uplink_{0};
  UplinkHook uplink_hook_;

  // Measurement state (active after warmup).
  bool measuring_{false};
  bool ran_{false};
  bool measurement_begun_{false};
  sim::Time duration_{};
  sim::Time horizon_{};
  sim::Time measure_start_{};
  RunReport report_;
  std::unordered_map<net::FlowId, stats::Rfc3550Jitter> flow_jitter_;
  FlowCompletionTracker completion_;

  // Snapshots taken at measurement start, to report deltas.
  struct Baseline {
    std::uint64_t voq_drops{0};
    std::uint64_t eps_drops{0};
    std::uint64_t sync_losses{0};
    std::uint64_t reconfig_cuts{0};
    std::uint64_t reconfigurations{0};
    sim::Time dark_time{};
    sim::Time ocs_busy{};
    std::uint64_t decisions{0};
    sim::Time decision_latency_total{};
    std::uint64_t uplink_drops{0};
  } base_;
};

/// Convenience: an OCS reconfiguration cost expressed in bytes at the
/// configured link rate — the quantity Solstice amortises against.
[[nodiscard]] std::int64_t reconfig_cost_bytes(const FrameworkConfig& cfg);

}  // namespace xdrs::core

#endif  // XDRS_CORE_FRAMEWORK_HPP
