// HybridSwitchFramework: the paper's proposed system (Figure 2), assembled.
//
//   hosts/generators --> ProcessingLogic --requests--> SchedulingLogic
//        ^                    | VOQs                        |
//        |                    |<-------- grants ------------|  (after
//        |                    v                             v   configuring)
//      deliveries <---- OCS circuits / EPS <---- SwitchingLogic
//
// The framework owns the simulator, fabrics and the three logic partitions,
// wires their callbacks, runs the experiment and aggregates a RunReport.
// The scheduling algorithm, demand estimator, circuit scheduler and timing
// model are pluggable — the "users implement novel design in the scheduling
// logic module" of §3.
#ifndef XDRS_CORE_FRAMEWORK_HPP
#define XDRS_CORE_FRAMEWORK_HPP

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "schedulers/policy_registry.hpp"

#include "core/config.hpp"
#include "core/flow_tracker.hpp"
#include "core/policy_stack.hpp"
#include "core/processing_logic.hpp"
#include "core/scheduling_logic.hpp"
#include "core/switching_logic.hpp"
#include "net/classifier.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "switching/eps.hpp"
#include "switching/ocs.hpp"
#include "traffic/generators.hpp"

namespace xdrs::core {

class HybridSwitchFramework {
 public:
  explicit HybridSwitchFramework(FrameworkConfig cfg);

  HybridSwitchFramework(const HybridSwitchFramework&) = delete;
  HybridSwitchFramework& operator=(const HybridSwitchFramework&) = delete;

  // ---- pluggable scheduling logic ----------------------------------------
  /// Installs the whole policy stack by spec, constructing every component
  /// through the PolicyRegistry with this switch's context (ports, seed,
  /// reconfiguration cost).  The matcher is built only for kSlotted and the
  /// circuit scheduler only for kHybridEpoch — the stack's other spec may
  /// then name anything.  Throws std::invalid_argument on unknown specs.
  ///
  /// Bespoke (unregistered) policy objects can still be installed through
  /// scheduling().set_matcher() and friends; registering them instead makes
  /// them sweepable by name.
  void set_policies(const PolicyStack& stack);

  /// set_policies overload for the spec-string grammar, e.g.
  /// `set_policies("islip:4/instant/hw:500MHz")`.
  void set_policies(std::string_view stack_spec) { set_policies(PolicyStack::parse(stack_spec)); }

  /// Installs the default stack (PolicyStack{}): iSLIP(2) for kSlotted or
  /// Solstice for kHybridEpoch, instantaneous estimator, hardware timing.
  void use_default_policies() { set_policies(PolicyStack{}); }

  /// The registry context this framework constructs policies with.
  [[nodiscard]] schedulers::PolicyContext policy_context() const;

  // ---- workload -----------------------------------------------------------
  /// Takes ownership; the generator starts when run() is called.
  void add_generator(std::unique_ptr<traffic::TrafficGenerator> g);

  /// Direct injection (integration tests / custom drivers).
  void inject(const net::Packet& p);

  // ---- telemetry ----------------------------------------------------------
  /// Switches on the observability layer for this run: stage timers attach
  /// to the scheduling/switching logic and run() drives a periodic timeline
  /// sampler over the measured window.  Telemetry is sidecar-only — it
  /// never enters RunReport or perturbs the event sequence, so results are
  /// byte-identical with it on or off (CI-gated).  Call before run().
  void enable_telemetry(const obs::TelemetryConfig& tcfg = {});

  /// The run's telemetry bundle; nullptr unless enable_telemetry() was
  /// called.
  [[nodiscard]] obs::RunTelemetry* telemetry() noexcept { return telemetry_.get(); }
  [[nodiscard]] const obs::RunTelemetry* telemetry() const noexcept { return telemetry_.get(); }

  // ---- execution ----------------------------------------------------------
  /// Runs warmup (unmeasured) then `duration` (measured); returns the
  /// measured-window report.  One-shot: a framework instance runs once.
  RunReport run(sim::Time duration, sim::Time warmup = sim::Time::zero());

  // ---- component access (tests, benches, examples) ------------------------
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] sim::TraceRecorder& trace() noexcept { return trace_; }
  [[nodiscard]] net::Classifier& classifier() noexcept { return classifier_; }
  [[nodiscard]] ProcessingLogic& processing() noexcept { return processing_; }
  [[nodiscard]] SchedulingLogic& scheduling() noexcept { return scheduling_; }
  [[nodiscard]] SwitchingLogic& switching() noexcept { return switching_; }
  [[nodiscard]] switching::OpticalCircuitSwitch& ocs() noexcept { return ocs_; }
  [[nodiscard]] switching::ElectricalPacketSwitch& eps() noexcept { return eps_; }
  [[nodiscard]] const FrameworkConfig& config() const noexcept { return cfg_; }

 private:
  void wire();
  void on_deliver(const net::Packet& p, control::FabricPath via);
  /// One telemetry tick: snapshot switch state (read-only), fold it into
  /// the sampler, reschedule until `horizon`.
  void sample_timeline(sim::Time period, sim::Time horizon);

  FrameworkConfig cfg_;
  sim::Simulator sim_;
  sim::TraceRecorder trace_;
  net::Classifier classifier_;
  control::SyncModel sync_;
  switching::OpticalCircuitSwitch ocs_;
  switching::ElectricalPacketSwitch eps_;
  SwitchingLogic switching_;
  ProcessingLogic processing_;
  SchedulingLogic scheduling_;
  std::vector<std::unique_ptr<traffic::TrafficGenerator>> generators_;
  std::unique_ptr<obs::RunTelemetry> telemetry_;

  // Measurement state (active after warmup).
  bool measuring_{false};
  bool ran_{false};
  sim::Time measure_start_{};
  RunReport report_;
  std::unordered_map<net::FlowId, stats::Rfc3550Jitter> flow_jitter_;
  FlowCompletionTracker completion_;

  // Snapshots taken at measurement start, to report deltas.
  struct Baseline {
    std::uint64_t voq_drops{0};
    std::uint64_t eps_drops{0};
    std::uint64_t sync_losses{0};
    std::uint64_t reconfig_cuts{0};
    std::uint64_t reconfigurations{0};
    sim::Time dark_time{};
    sim::Time ocs_busy{};
    std::uint64_t decisions{0};
    sim::Time decision_latency_total{};
  } base_;
};

/// Convenience: an OCS reconfiguration cost expressed in bytes at the
/// configured link rate — the quantity Solstice amortises against.
[[nodiscard]] std::int64_t reconfig_cost_bytes(const FrameworkConfig& cfg);

}  // namespace xdrs::core

#endif  // XDRS_CORE_FRAMEWORK_HPP
