// Per-flow completion tracking: FCT and deadline met/missed records.
//
// Generators that model whole flows stamp every packet with the owning
// flow's total size (net::Packet::flow_bytes) and absolute deadline
// (net::Packet::deadline, zero = none).  The tracker folds delivered
// packets into per-flow state and, at the end of a run, turns that state
// into the RunReport deadline metrics:
//
//   * a flow COMPLETES when its delivered bytes reach flow_bytes; the
//     completion time minus the first packet's creation time is its FCT
//   * a deadline flow is MET when it completes by its deadline, MISSED
//     when it completes late or is still unfinished at the end of the run
//     with its deadline already expired
//   * an unfinished flow whose deadline lies beyond the run (or that has
//     no deadline) is CENSORED — excluded entirely — so a short horizon
//     cannot inflate the miss ratio with flows that were never given a
//     chance
//   * goodput-before-deadline accumulates the bytes of deadline flows that
//     arrived at or before their deadline: the useful work the SLO got
//
// The tracker observes EVERY delivery, including warmup, because a flow
// that straddles the measurement boundary must be recognised (and then
// excluded: only flows whose first packet was created inside the window
// count).  Every output is an order-independent fold (sums, maxima,
// histogram bucket counts), so metrics are deterministic even though the
// per-flow table iterates in hash order.
#ifndef XDRS_CORE_FLOW_TRACKER_HPP
#define XDRS_CORE_FLOW_TRACKER_HPP

#include <cstdint>
#include <unordered_map>

#include "core/config.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace xdrs::core {

class FlowCompletionTracker {
 public:
  /// Folds one delivered packet in.  Packets without a stamped flow size
  /// (flow_bytes <= 0: packet-level sources like Poisson/CBR) are ignored.
  void on_deliver(const net::Packet& p, sim::Time now);

  /// Writes the deadline metrics of flows whose first packet was created in
  /// [measure_start, end) into `report`.  `end` is the run horizon used for
  /// the missed-vs-censored split of unfinished flows.
  void finalize(sim::Time measure_start, sim::Time end, RunReport& report) const;

  [[nodiscard]] std::size_t tracked_flows() const noexcept { return flows_.size(); }

  /// Deadline-urgent backlog: open (incomplete) deadline flows whose
  /// deadline falls at or before now + horizon — already-expired ones
  /// included — and their undelivered bytes.  Order-independent fold over
  /// the flow table, so the result is deterministic; used by the telemetry
  /// timeline sampler.
  struct UrgentBacklog {
    std::uint64_t flows{0};
    std::int64_t bytes{0};
  };
  [[nodiscard]] UrgentBacklog urgent_backlog(sim::Time now, sim::Time horizon) const {
    UrgentBacklog out;
    for (const auto& [key, f] : flows_) {
      if (f.deadline.ps() == 0 || f.completed_at.ps() != 0) continue;
      if (f.deadline > now + horizon) continue;
      ++out.flows;
      if (f.flow_bytes > f.delivered) out.bytes += f.flow_bytes - f.delivered;
    }
    return out;
  }

 private:
  // Flow ids are only unique per source port (each generator numbers its
  // own flows), so the table keys on the (ingress port, flow id) pair.
  struct Key {
    net::PortId src{0};
    net::FlowId flow{0};
    bool operator==(const Key&) const noexcept = default;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = 0xcbf29ce484222325ULL;
      h = (h ^ k.flow) * 0x100000001b3ULL;
      h = (h ^ k.src) * 0x100000001b3ULL;
      return static_cast<std::size_t>(h);
    }
  };

  struct FlowState {
    sim::Time first_created{sim::Time::max()};  ///< earliest packet creation seen
    sim::Time deadline{};                       ///< absolute; zero = none
    sim::Time completed_at{};                   ///< zero until complete
    std::int64_t flow_bytes{0};
    std::int64_t delivered{0};
    std::int64_t bytes_before_deadline{0};
    bool crossed_core{false};  ///< any packet crossed the fat-tree core tier
  };

  std::unordered_map<Key, FlowState, KeyHash> flows_;
};

}  // namespace xdrs::core

#endif  // XDRS_CORE_FLOW_TRACKER_HPP
