// Configuration and result types of the hybrid switch scheduling framework.
#ifndef XDRS_CORE_CONFIG_HPP
#define XDRS_CORE_CONFIG_HPP

#include <array>
#include <cstdint>
#include <string>

#include "control/sync.hpp"
#include "queueing/voq.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"
#include "stats/histogram.hpp"
#include "stats/serialize.hpp"
#include "stats/summary.hpp"

namespace xdrs::core {

/// Where the VOQs physically live — the two regimes of Figure 1.
enum class BufferPlacement : std::uint8_t {
  kToRSwitch,  ///< fast scheduling: VOQs in the switch, grants on-chip
  kHost,       ///< slow scheduling: VOQs at hosts, grants over the network
};

[[nodiscard]] constexpr const char* to_string(BufferPlacement p) noexcept {
  return p == BufferPlacement::kToRSwitch ? "tor-buffered" : "host-buffered";
}

/// How the scheduling logic runs.
enum class SchedulingDiscipline : std::uint8_t {
  kSlotted,      ///< fixed time slots, one matching per slot (crossbar style)
  kHybridEpoch,  ///< periodic epochs, circuit plan + EPS residual (hybrid)
};

[[nodiscard]] constexpr const char* to_string(SchedulingDiscipline d) noexcept {
  return d == SchedulingDiscipline::kSlotted ? "slotted" : "hybrid-epoch";
}

struct FrameworkConfig {
  std::uint32_t ports{8};

  /// Trailing ports of the switch that face the fat-tree core tier instead
  /// of hosts (topo::FatTree sets this when it builds per-rack configs;
  /// single-switch runs leave it 0).  Uplink ports are scheduled by the
  /// fabric exactly like host ports — that is how oversubscription bites —
  /// but workload builders only attach sources/destinations to the first
  /// host_ports() ports.
  std::uint32_t uplink_ports{0};

  [[nodiscard]] std::uint32_t host_ports() const noexcept { return ports - uplink_ports; }

  /// Host uplink and OCS circuit rate (the paper's 10 Gbps per port).
  sim::DataRate link_rate{sim::DataRate::gbps(10)};
  /// EPS per-port rate; hybrid designs usually give the electrical path a
  /// fraction of the optical rate (Helios: 10G electrical vs 10G x W optical).
  sim::DataRate eps_rate{sim::DataRate::gbps(10)};

  sim::Time link_latency{sim::Time::nanoseconds(500)};   ///< host <-> ToR propagation
  sim::Time eps_latency{sim::Time::nanoseconds(800)};    ///< EPS fabric traversal
  sim::Time ocs_fabric_latency{sim::Time::nanoseconds(100)};
  sim::Time ocs_reconfig{sim::Time::microseconds(10)};   ///< dark time T_sw
  /// Failure injection: per-retune probability of a failed (repeated) tune.
  double ocs_failure_prob{0.0};

  std::int64_t eps_buffer_bytes{1 << 20};                ///< per EPS output port
  /// Strict-priority EPS queueing for latency-sensitive traffic.
  bool eps_strict_priority{false};
  queueing::VoqLimits voq_limits{};                      ///< default unlimited

  BufferPlacement placement{BufferPlacement::kToRSwitch};
  SchedulingDiscipline discipline{SchedulingDiscipline::kHybridEpoch};

  /// kSlotted: slot length.  Sensible: one MTU serialisation time.
  sim::Time slot_time{sim::Time::microseconds(1)};
  /// kHybridEpoch: demand snapshot / replanning period.
  sim::Time epoch{sim::Time::milliseconds(1)};
  /// Minimum circuit-hold duration per plan slot (amortises dark time).
  sim::Time min_circuit_hold{sim::Time::microseconds(10)};

  /// Latency-sensitive packets bypass circuits and ride the EPS.
  bool latency_sensitive_to_eps{true};
  /// Paper §3 ordering: configure circuits before granting.  Disabling
  /// overlaps them (grants act during dark time) — ablation for E9.
  bool configure_before_grant{true};
  /// Host-buffered mode: when a granted packet misses its circuit window
  /// (skew), divert it to the EPS instead of dropping it.
  bool eps_fallback_on_miss{false};

  control::SyncConfig sync{};  ///< host clock skew / guard bands

  std::uint64_t seed{1};
};

/// Aggregated outcome of one framework run.
///
/// RunReport is a *mergeable* record: merge() folds another report in as if
/// both runs' packets had been observed by one measurement window, so a
/// parameter sweep can aggregate per-point reports into grid totals.  It is
/// also *self-describing*: fields() names every scalar it carries, and the
/// CSV/JSON emitters are derived from that list, so new metrics propagate to
/// every output format by editing one function.
struct RunReport {
  /// Serialization schema version, emitted as the first CSV/JSON field so
  /// archived artifacts stay interpretable across schema evolution.
  /// History: 1 = unversioned seed schema; 2 = adds schema_version and
  /// policy_stack (the unified policy-stack redesign); 3 = adds the
  /// deadline/SLO completion metrics (deadline_flows_met/missed,
  /// goodput_before_deadline_bytes, per-class FCT histograms); 4 = adds the
  /// per-hop/topology metrics (intra- vs cross-rack delivered bytes and FCT
  /// split, rack uplink-queue peak/drops, core-tier bytes/drops/occupancy/
  /// utilisation for fat-tree runs).
  static constexpr std::uint64_t kSchemaVersion = 4;

  sim::Time duration{};

  /// "matcher/circuit/estimator/timing" names of the policy objects that
  /// produced this report ('-' for kinds the discipline does not use);
  /// "mixed" after merging reports from different stacks.
  std::string policy_stack;

  std::uint64_t offered_packets{0};
  std::int64_t offered_bytes{0};
  std::uint64_t delivered_packets{0};
  std::int64_t delivered_bytes{0};
  /// All bytes delivered during the window, including packets born before
  /// it (the fabric's service rate; delivered_bytes counts only
  /// window-born packets so that delivered <= offered holds exactly).
  std::int64_t serviced_bytes{0};
  std::int64_t ocs_bytes{0};
  std::int64_t eps_bytes{0};
  /// Delivered bytes per traffic class, indexed by net::TrafficClass.
  std::array<std::int64_t, 3> class_bytes{};

  std::uint64_t voq_drops{0};
  std::uint64_t eps_drops{0};
  std::uint64_t sync_losses{0};      ///< missed circuit windows (host mode)
  std::uint64_t reconfig_cuts{0};    ///< packets cut by reconfiguration

  std::uint64_t reconfigurations{0};
  sim::Time dark_time{};
  double ocs_duty_cycle{0.0};        ///< busy / elapsed, per port average

  std::int64_t peak_switch_buffer_bytes{0};  ///< whole VOQ bank high-water
  std::int64_t peak_host_buffer_bytes{0};    ///< worst single input

  std::uint64_t scheduler_decisions{0};
  sim::Time mean_decision_latency{};

  stats::Histogram latency;                  ///< all delivered packets
  stats::Histogram latency_sensitive;        ///< kLatencySensitive class only
  stats::Summary jitter_us;                  ///< RFC3550 jitter per CBR flow, us

  // ---- deadline/SLO completion metrics (schema 3) -------------------------
  // Flows are tracked only when the generator stamps a total size
  // (net::Packet::flow_bytes > 0) and only when they start inside the
  // measurement window.  A flow with a deadline counts as met when its last
  // byte arrives by the deadline, as missed when it completes late OR is
  // still unfinished at the end of the run with its deadline expired;
  // unfinished flows whose deadline lies beyond the run are censored
  // (excluded), so short runs cannot inflate the miss ratio.
  std::uint64_t deadline_flows_met{0};
  std::uint64_t deadline_flows_missed{0};
  /// Bytes of deadline-carrying flows delivered at or before their deadline
  /// — the useful work the SLO actually received.
  std::int64_t goodput_before_deadline_bytes{0};
  stats::Histogram fct_deadline;             ///< FCT of completed deadline flows
  stats::Histogram fct_other;                ///< FCT of completed no-deadline flows

  // ---- per-hop/topology metrics (schema 4) --------------------------------
  // A single-switch run is one rack: every delivery is intra-rack and the
  // core-tier metrics stay zero.  Fat-tree runs (topo::FatTree) split
  // deliveries and completed-flow FCTs by whether the packet/flow crossed
  // the core tier, and add the core tier's own accounting.
  std::int64_t intra_rack_bytes{0};   ///< window-born deliveries within one rack
  std::int64_t cross_rack_bytes{0};   ///< window-born deliveries that crossed the core
  stats::Histogram fct_intra_rack;    ///< FCT of completed rack-local flows
  stats::Histogram fct_cross_rack;    ///< FCT of completed core-crossing flows
  /// Rack-aggregation ingress stage (topo::RackAggregator uplink FIFOs):
  /// worst high-water mark and drops across the run's aggregators; zero
  /// when no generator models an ingress queue.
  std::int64_t peak_uplink_queue_bytes{0};
  std::uint64_t uplink_drops{0};
  /// Core tier (fat-tree core-switch downlink FIFOs), measured window.
  std::int64_t core_link_bytes{0};    ///< bytes forwarded across the core
  std::uint64_t core_drops{0};        ///< core FIFO overflows
  std::int64_t peak_core_queue_bytes{0};  ///< worst single core FIFO
  double core_utilization{0.0};       ///< core bytes / core capacity, per link avg

  /// missed / (met + missed); exactly 0 when no flow carries a deadline.
  [[nodiscard]] double deadline_miss_ratio() const noexcept {
    const std::uint64_t total = deadline_flows_met + deadline_flows_missed;
    return total == 0 ? 0.0
                      : static_cast<double>(deadline_flows_missed) / static_cast<double>(total);
  }

  /// delivered / offered bytes.
  [[nodiscard]] double delivery_ratio() const noexcept {
    return offered_bytes == 0
               ? 0.0
               : static_cast<double>(delivered_bytes) / static_cast<double>(offered_bytes);
  }

  /// Aggregate goodput (window-born packets) as a fraction of capacity.
  [[nodiscard]] double throughput_fraction(sim::DataRate link_rate, std::uint32_t ports) const {
    const double capacity_bytes = static_cast<double>(link_rate.bits_per_sec()) / 8.0 *
                                  duration.sec() * static_cast<double>(ports);
    return capacity_bytes == 0.0 ? 0.0 : static_cast<double>(delivered_bytes) / capacity_bytes;
  }

  /// Aggregate service rate (all deliveries) as a fraction of capacity —
  /// the right metric beyond saturation, where FIFO order means most
  /// deliveries are backlog from before the window.
  [[nodiscard]] double service_fraction(sim::DataRate link_rate, std::uint32_t ports) const {
    const double capacity_bytes = static_cast<double>(link_rate.bits_per_sec()) / 8.0 *
                                  duration.sec() * static_cast<double>(ports);
    return capacity_bytes == 0.0 ? 0.0 : static_cast<double>(serviced_bytes) / capacity_bytes;
  }

  /// Folds `other` into this report: counters and byte totals sum,
  /// durations accumulate, peaks take the maximum, latency/jitter
  /// distributions merge, and derived rates (duty cycle, mean decision
  /// latency) are re-weighted by their denominators.
  void merge(const RunReport& other);

  /// Ordered name/value view of every scalar metric, including the
  /// distribution digests (count/mean/quantiles).  The basis of csv_row()
  /// and to_json().
  [[nodiscard]] std::vector<stats::Field> fields() const;

  /// Single-line JSON object of fields().
  [[nodiscard]] std::string to_json() const;

  /// CSV emit; header and row orderings both come from fields().
  [[nodiscard]] static std::string csv_header();
  [[nodiscard]] std::string csv_row() const;

  [[nodiscard]] std::string summary() const;
};

}  // namespace xdrs::core

#endif  // XDRS_CORE_CONFIG_HPP
