#include "core/switching_logic.hpp"

#include <utility>

namespace xdrs::core {

SwitchingLogic::SwitchingLogic(sim::Simulator& sim, switching::OpticalCircuitSwitch& ocs,
                               sim::TraceRecorder& trace)
    : sim_{sim}, ocs_{ocs}, trace_{trace} {
  ocs_.set_configured_callback([this](const schedulers::Matching& /*m*/) {
    ++stats_.configurations_completed;
    trace_.record(sim_.now(), sim::TraceCategory::kReconfigDone);
    if (pending_) {
      // Move out before invoking: the callback may call configure() again.
      ReadyCallback cb = std::move(pending_);
      pending_ = nullptr;
      cb(sim_.now());
    }
  });
}

void SwitchingLogic::set_stage_timers(obs::Registry* reg) {
  obs_ = reg;
  t_reconfigure_ = reg != nullptr ? &reg->timer("ocs_reconfigure") : nullptr;
}

void SwitchingLogic::configure(const schedulers::Matching& m, ReadyCallback on_ready,
                               bool wait_for_ready) {
  ++stats_.configurations_requested;
  ++generation_;
  trace_.record(sim_.now(), sim::TraceCategory::kReconfigStart);
  if (wait_for_ready) {
    pending_ = std::move(on_ready);  // supersedes any in-flight callback
    obs::ScopedSpan span{obs_, t_reconfigure_};
    ocs_.reconfigure(m);
  } else {
    pending_ = nullptr;
    {
      obs::ScopedSpan span{obs_, t_reconfigure_};
      ocs_.reconfigure(m);
    }
    if (on_ready) on_ready(sim_.now());
  }
}

}  // namespace xdrs::core
