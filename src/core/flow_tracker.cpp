#include "core/flow_tracker.hpp"

#include <algorithm>

namespace xdrs::core {

void FlowCompletionTracker::on_deliver(const net::Packet& p, sim::Time now) {
  if (p.flow_bytes <= 0) return;
  FlowState& st = flows_[Key{p.src, p.flow}];
  st.first_created = std::min(st.first_created, p.created_at);
  st.deadline = p.deadline;
  st.flow_bytes = p.flow_bytes;
  st.delivered += p.size_bytes;
  st.crossed_core = st.crossed_core || p.remote;
  if (!p.deadline.is_zero() && now <= p.deadline) st.bytes_before_deadline += p.size_bytes;
  if (st.completed_at.is_zero() && st.delivered >= st.flow_bytes) st.completed_at = now;
}

void FlowCompletionTracker::finalize(sim::Time measure_start, sim::Time end,
                                     RunReport& report) const {
  for (const auto& [key, st] : flows_) {
    // Flows that began before the window (warmup stragglers) are excluded,
    // mirroring the delivered-bytes accounting: their early packets were
    // never counted, so their byte totals could not be trusted anyway.
    if (st.first_created < measure_start) continue;
    const bool has_deadline = !st.deadline.is_zero();
    if (has_deadline) report.goodput_before_deadline_bytes += st.bytes_before_deadline;
    if (!st.completed_at.is_zero()) {
      const sim::Time fct = st.completed_at - st.first_created;
      (has_deadline ? report.fct_deadline : report.fct_other).record_time(fct);
      // Locality split: in a fat-tree the completion-time behaviour of
      // rack-local and core-crossing flows diverges, so they get their own
      // distributions (single-switch runs are all intra-rack).
      (st.crossed_core ? report.fct_cross_rack : report.fct_intra_rack).record_time(fct);
      if (has_deadline) {
        if (st.completed_at <= st.deadline) {
          ++report.deadline_flows_met;
        } else {
          ++report.deadline_flows_missed;
        }
      }
    } else if (has_deadline && st.deadline < end) {
      // Unfinished with the deadline already expired: a definite miss.
      // (Unfinished with deadline >= end is censored, not counted.)
      ++report.deadline_flows_missed;
    }
  }
}

}  // namespace xdrs::core
