#include "core/scheduling_logic.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace xdrs::core {

using sim::Time;
using sim::TraceCategory;

SchedulingLogic::SchedulingLogic(sim::Simulator& sim, const FrameworkConfig& cfg,
                                 SwitchingLogic& switching, sim::TraceRecorder& trace)
    : sim_{sim}, cfg_{cfg}, switching_{switching}, trace_{trace}, demand_{cfg.ports} {}

void SchedulingLogic::start() {
  if (!estimator_) throw std::logic_error{"SchedulingLogic: no demand estimator"};
  if (!timing_) throw std::logic_error{"SchedulingLogic: no timing model"};
  if (cfg_.discipline == SchedulingDiscipline::kSlotted && !matcher_) {
    throw std::logic_error{"SchedulingLogic: slotted discipline needs a matcher"};
  }
  if (cfg_.discipline == SchedulingDiscipline::kHybridEpoch && !circuit_scheduler_) {
    throw std::logic_error{"SchedulingLogic: hybrid discipline needs a circuit scheduler"};
  }
  tick();
}

void SchedulingLogic::on_request(const control::SchedulingRequest& /*req*/) {
  ++stats_.requests_received;
}

void SchedulingLogic::on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes,
                                 sim::Time at) {
  estimator_->on_arrival(src, dst, bytes, at);
}

void SchedulingLogic::on_departure(net::PortId src, net::PortId dst, std::int64_t bytes,
                                   sim::Time at) {
  estimator_->on_departure(src, dst, bytes, at);
}

void SchedulingLogic::on_deadline(net::PortId src, net::PortId dst, sim::Time deadline,
                                  sim::Time at) {
  estimator_->on_deadline(src, dst, deadline, at);
}

void SchedulingLogic::set_stage_timers(obs::Registry* reg) {
  obs_ = reg;
  t_estimator_ = reg != nullptr ? &reg->timer("estimator_snapshot") : nullptr;
  t_matcher_ = reg != nullptr ? &reg->timer("matcher_compute") : nullptr;
  t_circuit_ = reg != nullptr ? &reg->timer("circuit_plan") : nullptr;
}

std::string SchedulingLogic::installed_policy_names() const {
  std::string s = matcher_ ? matcher_->name() : std::string{"-"};
  s += '/';
  s += circuit_scheduler_ ? circuit_scheduler_->name() : std::string{"-"};
  s += '/';
  s += estimator_ ? estimator_->name() : "-";
  s += '/';
  s += timing_ ? timing_->name() : std::string{"-"};
  return s;
}

void SchedulingLogic::tick() {
  if (cfg_.discipline == SchedulingDiscipline::kSlotted) {
    decide_slotted();
  } else {
    decide_hybrid();
  }
  const Time period =
      cfg_.discipline == SchedulingDiscipline::kSlotted ? cfg_.slot_time : cfg_.epoch;
  sim_.schedule(period, [this] { tick(); });
}

void SchedulingLogic::account_decision(const control::TimingBreakdown& b) {
  ++stats_.decisions;
  stats_.decision_latency_total += b.total();
  last_breakdown_ = b;
}

void SchedulingLogic::decide_slotted() {
  trace_.record(sim_.now(), TraceCategory::kDemandUpdate);
  {
    obs::ScopedSpan span{obs_, t_estimator_};
    estimator_->snapshot(sim_.now(), demand_);
  }
  trace_.record(sim_.now(), TraceCategory::kScheduleStart);
  // Borrow a recycled matching; in-flight grant events from previous slots
  // hold their own references, so this never clobbers a live schedule.
  std::shared_ptr<schedulers::Matching> m = acquire(matching_pool_);
  {
    obs::ScopedSpan span{obs_, t_matcher_};
    matcher_->compute_into(demand_, *m);
  }
  trace_.record(sim_.now(), TraceCategory::kScheduleDone, m->size());

  const control::TimingBreakdown b = timing_->decision_latency(
      cfg_.ports, matcher_->last_iterations(), matcher_->hardware_parallel());
  account_decision(b);
  if (m->empty()) return;

  const std::uint64_t epoch = ++epoch_counter_;
  const std::int64_t slot_capacity = cfg_.link_rate.bytes_in(cfg_.slot_time);
  // Windows close at the slot boundary (measured from the decision), so a
  // straggling transmission can never collide with the next slot's
  // reconfiguration — except through host clock skew, which is the point
  // of the synchronisation experiments.
  const Time slot_end = sim_.now() + cfg_.slot_time;
  sim_.schedule(b.total(), [this, m = std::move(m), epoch, slot_capacity, slot_end] {
    switching_.configure(
        *m,
        [this, m, epoch, slot_capacity, slot_end](Time up) {
          control::GrantSet gs;
          gs.epoch = epoch;
          gs.computed_at = up;
          const Time guard = cfg_.sync.guard_band;
          m->for_each_pair([&](net::PortId i, net::PortId j) {
            control::Grant g;
            g.src = i;
            g.dst = j;
            g.bytes = slot_capacity;
            g.via = control::FabricPath::kOcs;
            g.valid_from = up + guard;
            g.valid_until = slot_end - guard;
            if (g.valid_until > g.valid_from) gs.grants.push_back(g);
          });
          if (grant_cb_ && !gs.grants.empty()) grant_cb_(gs);
        },
        cfg_.configure_before_grant);
  });
}

void SchedulingLogic::decide_hybrid() {
  trace_.record(sim_.now(), TraceCategory::kDemandUpdate);
  {
    obs::ScopedSpan span{obs_, t_estimator_};
    estimator_->snapshot(sim_.now(), demand_);
  }
  trace_.record(sim_.now(), TraceCategory::kScheduleStart);
  // Borrow a recycled plan (slot matchings and residual buffer included):
  // plan_into overwrites it in place, so the per-epoch DemandMatrix and
  // slot-vector copies of the old by-value path are gone.  Plans still
  // referenced by in-flight day sequences keep their extra pool reference
  // and are skipped by acquire().
  std::shared_ptr<schedulers::CircuitPlan> plan = acquire(plan_pool_);
  {
    obs::ScopedSpan span{obs_, t_circuit_};
    circuit_scheduler_->plan_into(demand_, *plan);
  }
  trace_.record(sim_.now(), TraceCategory::kScheduleDone, plan->slots.size());

  // Circuit planning is sequential work: roughly one bipartite-matching
  // solve per emitted slot, each touching O(ports) augmenting structure.
  const auto planning_steps =
      static_cast<std::uint32_t>((plan->slots.size() + 1) * cfg_.ports);
  const control::TimingBreakdown b =
      timing_->decision_latency(cfg_.ports, planning_steps, /*hardware_parallel=*/false);
  account_decision(b);

  stats_.plan_slots.record(static_cast<double>(plan->slots.size()));
  if (demand_.total() > 0) {
    stats_.residual_fraction.record(static_cast<double>(plan->residual.total()) /
                                    static_cast<double>(demand_.total()));
  }

  const std::uint64_t epoch = ++epoch_counter_;
  sim_.schedule(b.total(), [this, plan, epoch] {
    // Residual demand rides the EPS for the whole epoch, effective at once.
    control::GrantSet eps_gs;
    eps_gs.epoch = epoch;
    eps_gs.computed_at = sim_.now();
    // Exact size via a support-bitmap popcount, so the grant vector grows
    // once instead of doubling through the visitor below.
    eps_gs.grants.reserve(plan->residual.nonzero_count());
    plan->residual.for_each_nonzero([&](net::PortId i, net::PortId j, std::int64_t bytes) {
      control::Grant g;
      g.src = i;
      g.dst = j;
      g.bytes = bytes;
      g.via = control::FabricPath::kEps;
      g.valid_from = sim_.now();
      g.valid_until = sim_.now() + cfg_.epoch;
      eps_gs.grants.push_back(g);
    });
    if (grant_cb_ && !eps_gs.grants.empty()) grant_cb_(eps_gs);
    run_plan_slot(plan, 0, epoch, sim_.now() + cfg_.epoch);
  });
}

void SchedulingLogic::run_plan_slot(std::shared_ptr<schedulers::CircuitPlan> plan, std::size_t k,
                                    std::uint64_t epoch, sim::Time deadline) {
  // A newer epoch's plan supersedes this one.
  if (epoch != epoch_counter_) return;
  if (k >= plan->slots.size()) return;
  // No room left before the next epoch replans: stop the day sequence.
  if (sim_.now() + cfg_.ocs_reconfig >= deadline) return;
  const schedulers::CircuitSlot& slot = plan->slots[k];

  // Hold the configuration long enough to move `weight_bytes` per pair,
  // including per-packet wire overhead (estimated at MTU framing).
  const std::int64_t overhead =
      (slot.weight_bytes / sim::kMaxFrameBytes + 1) * sim::kWireOverheadBytes;
  const Time hold = std::max(
      cfg_.min_circuit_hold, cfg_.link_rate.transmission_time(slot.weight_bytes + overhead) +
                                 2 * cfg_.sync.guard_band);

  switching_.configure(
      slot.configuration,
      [this, plan, k, epoch, hold, deadline](Time up) {
        if (epoch != epoch_counter_) return;
        const schedulers::CircuitSlot& s = plan->slots[k];
        control::GrantSet gs;
        gs.epoch = epoch;
        gs.computed_at = up;
        const Time guard = cfg_.sync.guard_band;
        s.configuration.for_each_pair([&](net::PortId i, net::PortId j) {
          control::Grant g;
          g.src = i;
          g.dst = j;
          g.bytes = s.weight_bytes;
          g.via = control::FabricPath::kOcs;
          g.valid_from = up + guard;
          g.valid_until = std::min(up + hold, deadline) - guard;
          if (g.valid_until > g.valid_from) gs.grants.push_back(g);
        });
        if (grant_cb_ && !gs.grants.empty()) grant_cb_(gs);
        sim_.schedule_at(up + hold, [this, plan, k, epoch, deadline] {
          run_plan_slot(plan, k + 1, epoch, deadline);
        });
      },
      cfg_.configure_before_grant);
}

}  // namespace xdrs::core
