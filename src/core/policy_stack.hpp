// PolicyStack: the full pluggable-policy selection of one switch, as a
// copyable value of four spec strings — matcher, circuit scheduler, demand
// estimator and timing model.  It replaces the four individual framework
// setters: a framework is configured with one stack
//
//   framework.set_policies(core::PolicyStack::parse("islip:2/instant/hw"));
//
// and sweep artifacts (ScenarioSpec, RunReport) serialize the stack so every
// recorded point names exactly what scheduled it.
//
// Spec grammar: segments separated by '/'.  Each segment is either
//   * a bare policy spec ("islip:4", "ewma:0.2") — classified by asking the
//     PolicyRegistry which kind registered that name, or
//   * an explicit "kind=spec" pair ("matcher=islip:4") for names registered
//     under more than one kind.
// Omitted kinds keep their defaults (islip:2 / solstice / instantaneous /
// hardware), so "solstice:1.5" alone is a valid hybrid stack.
#ifndef XDRS_CORE_POLICY_STACK_HPP
#define XDRS_CORE_POLICY_STACK_HPP

#include <string>
#include <string_view>

namespace xdrs::core {

struct PolicyStack {
  std::string matcher{"islip:2"};
  std::string circuit{"solstice"};
  std::string estimator{"instantaneous"};
  std::string timing{"hardware"};

  /// Parses the '/'-separated grammar above.  Throws std::invalid_argument
  /// on unknown policy names, ambiguous bare segments, duplicate kinds and
  /// malformed "kind=spec" pairs.
  [[nodiscard]] static PolicyStack parse(std::string_view spec);

  /// Canonical "matcher/circuit/estimator/timing" rendering; parse() of the
  /// result reproduces the stack as long as every name stays registered.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const PolicyStack& other) const = default;

  // Fluent mutators for grid construction.
  PolicyStack& with_matcher(std::string spec) {
    matcher = std::move(spec);
    return *this;
  }
  PolicyStack& with_circuit(std::string spec) {
    circuit = std::move(spec);
    return *this;
  }
  PolicyStack& with_estimator(std::string spec) {
    estimator = std::move(spec);
    return *this;
  }
  PolicyStack& with_timing(std::string spec) {
    timing = std::move(spec);
    return *this;
  }
};

}  // namespace xdrs::core

#endif  // XDRS_CORE_POLICY_STACK_HPP
