// Switching logic (Figure 2, right block): receives the grant matrix from
// the scheduling logic and configures the OCS circuits to match it, then
// reports readiness so grants can be released — the paper's explicit
// ordering: "Before providing a grant to the processing logic, the
// scheduler sends the grant matrix to the switching logic to configure the
// circuits in the OCS to match the grant matrix."
#ifndef XDRS_CORE_SWITCHING_LOGIC_HPP
#define XDRS_CORE_SWITCHING_LOGIC_HPP

#include <cstdint>
#include <functional>

#include "obs/metrics.hpp"
#include "schedulers/matching.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "switching/ocs.hpp"

namespace xdrs::core {

struct SwitchingStats {
  std::uint64_t configurations_requested{0};
  std::uint64_t configurations_completed{0};
};

class SwitchingLogic {
 public:
  using ReadyCallback = std::function<void(sim::Time circuits_up_at)>;

  SwitchingLogic(sim::Simulator& sim, switching::OpticalCircuitSwitch& ocs,
                 sim::TraceRecorder& trace);

  /// Retunes the OCS to `m`.  When `wait_for_ready` (the paper's protocol)
  /// the callback fires once circuits are up; otherwise it fires
  /// immediately, modelling the overlapped-grant ablation.  A newer
  /// configure supersedes an in-flight one; the superseded callback is
  /// dropped (its grants must never be released onto the wrong circuits).
  void configure(const schedulers::Matching& m, ReadyCallback on_ready, bool wait_for_ready);

  [[nodiscard]] const SwitchingStats& stats() const noexcept { return stats_; }

  /// Wires stage profiling: resolves the "ocs_reconfigure" timer out of
  /// `reg` once (nullptr detaches).  Measures the host-side cost of driving
  /// a retune, not the optical dark period — that lives in virtual time.
  void set_stage_timers(obs::Registry* reg);

 private:
  sim::Simulator& sim_;
  switching::OpticalCircuitSwitch& ocs_;
  sim::TraceRecorder& trace_;
  obs::Registry* obs_{nullptr};
  obs::Timer* t_reconfigure_{nullptr};
  ReadyCallback pending_;
  std::uint64_t generation_{0};
  SwitchingStats stats_;
};

}  // namespace xdrs::core

#endif  // XDRS_CORE_SWITCHING_LOGIC_HPP
