#include "core/report_io.hpp"

#include <limits>
#include <stdexcept>

#include "stats/serialize.hpp"

namespace xdrs::core {

namespace {

using stats::Field;
using stats::JsonValue;

std::string histogram_state_json(const stats::Histogram& h) {
  const stats::Histogram::State s = h.state();
  std::string out = "{\"count\":" + std::to_string(s.count) + ",\"sum\":" + std::to_string(s.sum) +
                    ",\"min\":" + std::to_string(s.min) + ",\"max\":" + std::to_string(s.max) +
                    ",\"slots\":[";
  for (std::size_t i = 0; i < s.slots.size(); ++i) {
    if (i != 0) out += ',';
    out += '[' + std::to_string(s.slots[i].first) + ',' + std::to_string(s.slots[i].second) + ']';
  }
  out += "]}";
  return out;
}

std::string summary_state_json(const stats::Summary& s) {
  const stats::Summary::State st = s.state();
  return "{\"n\":" + std::to_string(st.n) + ",\"mean\":" + stats::format_double(st.mean) +
         ",\"m2\":" + stats::format_double(st.m2) + ",\"min\":" + stats::format_double(st.min) +
         ",\"max\":" + stats::format_double(st.max) + '}';
}

stats::Histogram histogram_from_state(const JsonValue& v) {
  stats::Histogram::State s;
  s.count = v.at("count").as_u64();
  s.sum = v.at("sum").as_i64();
  s.min = v.at("min").as_i64();
  s.max = v.at("max").as_i64();
  for (const JsonValue& pair : v.at("slots").items()) {
    const auto& items = pair.items();
    if (items.size() != 2) {
      throw std::invalid_argument{"report state: histogram slot entry is not a [slot,count] pair"};
    }
    // Reject indices that do not fit an int BEFORE the cast: a corrupt
    // value like 2^32 would otherwise truncate into range and pass
    // from_state's own [0, kSlots) check, landing counts in the wrong
    // bucket silently instead of failing loudly.
    const std::int64_t slot = items[0].as_i64();
    if (slot < 0 || slot > std::numeric_limits<int>::max()) {
      throw std::invalid_argument{"report state: histogram slot index out of range"};
    }
    s.slots.emplace_back(static_cast<int>(slot), items[1].as_u64());
  }
  return stats::Histogram::from_state(s);
}

stats::Summary summary_from_state(const JsonValue& v) {
  stats::Summary::State s;
  s.n = v.at("n").as_u64();
  s.mean = v.at("mean").as_f64();
  s.m2 = v.at("m2").as_f64();
  s.min = v.at("min").as_f64();
  s.max = v.at("max").as_f64();
  return stats::Summary::from_state(s);
}

}  // namespace

std::string report_state_json(const RunReport& report) {
  // The artefact object with the three distribution-state members appended —
  // a strict superset of to_json(), so state files stay greppable with the
  // same keys the sweep artefacts use.
  std::string out = stats::to_json_object(report.fields());
  out.pop_back();  // drop the closing '}'
  out += ",\"latency_state\":" + histogram_state_json(report.latency);
  out += ",\"latency_sensitive_state\":" + histogram_state_json(report.latency_sensitive);
  out += ",\"jitter_state\":" + summary_state_json(report.jitter_us);
  out += ",\"fct_deadline_state\":" + histogram_state_json(report.fct_deadline);
  out += ",\"fct_other_state\":" + histogram_state_json(report.fct_other);
  out += ",\"fct_intra_rack_state\":" + histogram_state_json(report.fct_intra_rack);
  out += ",\"fct_cross_rack_state\":" + histogram_state_json(report.fct_cross_rack);
  out += '}';
  return out;
}

RunReport report_from_state(const JsonValue& state) {
  const std::uint64_t version = state.at("schema_version").as_u64();
  if (version != RunReport::kSchemaVersion) {
    throw std::invalid_argument{"report state: schema_version " + std::to_string(version) +
                                " != supported " + std::to_string(RunReport::kSchemaVersion)};
  }
  RunReport r;
  r.policy_stack = state.at("policy_stack").as_str();
  r.duration = sim::Time::picoseconds(state.at("duration_ps").as_i64());
  r.offered_packets = state.at("offered_packets").as_u64();
  r.offered_bytes = state.at("offered_bytes").as_i64();
  r.delivered_packets = state.at("delivered_packets").as_u64();
  r.delivered_bytes = state.at("delivered_bytes").as_i64();
  r.serviced_bytes = state.at("serviced_bytes").as_i64();
  r.ocs_bytes = state.at("ocs_bytes").as_i64();
  r.eps_bytes = state.at("eps_bytes").as_i64();
  r.class_bytes[0] = state.at("latency_sensitive_bytes").as_i64();
  r.class_bytes[1] = state.at("throughput_bytes").as_i64();
  r.class_bytes[2] = state.at("best_effort_bytes").as_i64();
  r.voq_drops = state.at("voq_drops").as_u64();
  r.eps_drops = state.at("eps_drops").as_u64();
  r.sync_losses = state.at("sync_losses").as_u64();
  r.reconfig_cuts = state.at("reconfig_cuts").as_u64();
  r.reconfigurations = state.at("reconfigurations").as_u64();
  r.dark_time = sim::Time::picoseconds(state.at("dark_time_ps").as_i64());
  r.ocs_duty_cycle = state.at("ocs_duty_cycle").as_f64();
  r.peak_switch_buffer_bytes = state.at("peak_switch_buffer_bytes").as_i64();
  r.peak_host_buffer_bytes = state.at("peak_host_buffer_bytes").as_i64();
  r.scheduler_decisions = state.at("scheduler_decisions").as_u64();
  r.mean_decision_latency = sim::Time::picoseconds(state.at("mean_decision_latency_ps").as_i64());
  r.deadline_flows_met = state.at("deadline_flows_met").as_u64();
  r.deadline_flows_missed = state.at("deadline_flows_missed").as_u64();
  r.goodput_before_deadline_bytes = state.at("goodput_before_deadline_bytes").as_i64();
  r.intra_rack_bytes = state.at("intra_rack_bytes").as_i64();
  r.cross_rack_bytes = state.at("cross_rack_bytes").as_i64();
  r.peak_uplink_queue_bytes = state.at("peak_uplink_queue_bytes").as_i64();
  r.uplink_drops = state.at("uplink_drops").as_u64();
  r.core_link_bytes = state.at("core_link_bytes").as_i64();
  r.core_drops = state.at("core_drops").as_u64();
  r.peak_core_queue_bytes = state.at("peak_core_queue_bytes").as_i64();
  r.core_utilization = state.at("core_utilization").as_f64();
  // Digest fields (delivery_ratio, latency_* quantiles, deadline_miss_ratio)
  // are derived; the distributions themselves come back from their state
  // objects.
  r.latency = histogram_from_state(state.at("latency_state"));
  r.latency_sensitive = histogram_from_state(state.at("latency_sensitive_state"));
  r.jitter_us = summary_from_state(state.at("jitter_state"));
  r.fct_deadline = histogram_from_state(state.at("fct_deadline_state"));
  r.fct_other = histogram_from_state(state.at("fct_other_state"));
  r.fct_intra_rack = histogram_from_state(state.at("fct_intra_rack_state"));
  r.fct_cross_rack = histogram_from_state(state.at("fct_cross_rack_state"));
  return r;
}

RunReport report_from_state_json(std::string_view json) {
  return report_from_state(stats::parse_json(json));
}

}  // namespace xdrs::core
