// Exact RunReport persistence — the read side of the artefact pipeline.
//
// RunReport::to_json() is a *digest*: it renders quantiles and means but not
// the histogram buckets they came from, so a report parsed from it could not
// be merged again without drift.  The state form fixes that: it is the
// artefact object (every fields() entry, same order, same rendering) plus
// the distribution internals ("latency_state", "latency_sensitive_state",
// "jitter_state"), and report_from_state() reconstructs a report that is
// indistinguishable from the original — merging, re-serializing or hashing
// the reconstruction yields byte-identical output.  Result caches and shard
// files are built on this guarantee.
#ifndef XDRS_CORE_REPORT_IO_HPP
#define XDRS_CORE_REPORT_IO_HPP

#include <string>
#include <string_view>

#include "core/config.hpp"
#include "stats/json.hpp"

namespace xdrs::core {

/// Single-line JSON object: fields() followed by the distribution states.
[[nodiscard]] std::string report_state_json(const RunReport& report);

/// Reconstructs a report from a parsed state object.  Throws
/// std::invalid_argument on missing keys, type mismatches, or a
/// schema_version other than RunReport::kSchemaVersion.
[[nodiscard]] RunReport report_from_state(const stats::JsonValue& state);

/// parse_json() + report_from_state().
[[nodiscard]] RunReport report_from_state_json(std::string_view json);

}  // namespace xdrs::core

#endif  // XDRS_CORE_REPORT_IO_HPP
