// Processing logic (Figure 2, left block): "Incoming packets from hosts
// H1..Hn are sent to the processing logic.  There, packets are classified
// into flows based on configurable look-up rules and placed into their
// respective Virtual Output Queue.  As the status of a VOQ changes, the
// subsystem generates scheduling requests and transmits packets upon
// receiving transmission grants from the scheduling logic."
//
// The same class implements both buffer placements of Figure 1: with
// kToRSwitch the VOQ bank represents switch memory and grants act on-chip;
// with kHost it represents per-host memory, grants arrive delayed, and
// launch times suffer host clock skew (via the SyncModel).
#ifndef XDRS_CORE_PROCESSING_LOGIC_HPP
#define XDRS_CORE_PROCESSING_LOGIC_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "control/messages.hpp"
#include "control/sync.hpp"
#include "core/config.hpp"
#include "net/classifier.hpp"
#include "net/packet.hpp"
#include "queueing/voq.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "switching/eps.hpp"
#include "switching/ocs.hpp"

namespace xdrs::core {

struct ProcessingStats {
  std::uint64_t ingested_packets{0};
  std::int64_t ingested_bytes{0};
  std::uint64_t sync_losses{0};
  std::uint64_t eps_bypass_packets{0};
  std::uint64_t granted_ocs_packets{0};
  std::uint64_t granted_eps_packets{0};
};

class ProcessingLogic {
 public:
  using RequestCallback = std::function<void(const control::SchedulingRequest&)>;
  using VoqEventCallback =
      std::function<void(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at)>;
  using DeadlineCallback =
      std::function<void(net::PortId src, net::PortId dst, sim::Time deadline, sim::Time at)>;

  ProcessingLogic(sim::Simulator& sim, const FrameworkConfig& cfg, net::Classifier& classifier,
                  switching::OpticalCircuitSwitch& ocs, switching::ElectricalPacketSwitch& eps,
                  control::SyncModel& sync, sim::TraceRecorder& trace);

  /// Scheduling requests towards the scheduling logic (status changes).
  void set_request_callback(RequestCallback cb) { request_cb_ = std::move(cb); }
  /// Demand-estimator hooks.
  void set_arrival_callback(VoqEventCallback cb) { arrival_cb_ = std::move(cb); }
  void set_departure_callback(VoqEventCallback cb) { departure_cb_ = std::move(cb); }
  /// Fired when a packet carrying a flow deadline enters its VOQ.
  void set_deadline_callback(DeadlineCallback cb) { deadline_cb_ = std::move(cb); }

  /// Entry point for generator traffic at host `p.src`.
  void ingest(const net::Packet& p);

  /// Grant delivery from the scheduling logic (already latency-delayed).
  void handle_grants(const control::GrantSet& grants);

  /// Cancels grant state (used between measurement phases).
  void revoke_all_grants();

  [[nodiscard]] queueing::VoqBank& voqs() noexcept { return voqs_; }
  [[nodiscard]] const queueing::VoqBank& voqs() const noexcept { return voqs_; }
  [[nodiscard]] const ProcessingStats& stats() const noexcept { return stats_; }

 private:
  struct EpsGrant {
    control::Grant grant;
    std::int64_t remaining{0};
  };
  struct InputState {
    std::optional<control::Grant> ocs_grant;
    std::int64_t ocs_remaining{0};
    bool ocs_pump_waiting{false};  ///< a wake-up is already scheduled
    std::deque<EpsGrant> eps_grants;
    bool eps_pumping{false};
    sim::Time eps_busy_until{};
  };

  void enqueue(net::Packet p);
  void pump_ocs(net::PortId input);
  void pump_eps(net::PortId input);
  /// Serialises `p` onto the electrical path of `input` and admits it to
  /// the EPS; shared by granted traffic and the latency-sensitive bypass.
  void send_eps_paced(net::PortId input, const net::Packet& p);

  /// Host clock offset for `input` (zero in ToR placement).
  [[nodiscard]] sim::Time host_offset(net::PortId input) const;

  sim::Simulator& sim_;
  const FrameworkConfig& cfg_;
  net::Classifier& classifier_;
  switching::OpticalCircuitSwitch& ocs_;
  switching::ElectricalPacketSwitch& eps_;
  control::SyncModel& sync_;
  sim::TraceRecorder& trace_;

  queueing::VoqBank voqs_;
  std::vector<InputState> inputs_;
  RequestCallback request_cb_;
  VoqEventCallback arrival_cb_;
  VoqEventCallback departure_cb_;
  DeadlineCallback deadline_cb_;
  ProcessingStats stats_;
};

}  // namespace xdrs::core

#endif  // XDRS_CORE_PROCESSING_LOGIC_HPP
