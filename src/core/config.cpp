#include "core/config.hpp"

#include <algorithm>
#include <cstdio>

namespace xdrs::core {

void RunReport::merge(const RunReport& other) {
  // A merged report speaks for one stack only if every contributor agrees.
  if (policy_stack.empty()) {
    policy_stack = other.policy_stack;
  } else if (!other.policy_stack.empty() && other.policy_stack != policy_stack) {
    policy_stack = "mixed";
  }

  // Re-weight derived rates first, while both denominators are still intact.
  const double w = duration.sec();
  const double wo = other.duration.sec();
  ocs_duty_cycle =
      (w + wo) > 0.0 ? (ocs_duty_cycle * w + other.ocs_duty_cycle * wo) / (w + wo) : 0.0;
  // Core utilisation re-weights by duration exactly like the duty cycle:
  // both are time-averaged per-link rates.
  core_utilization =
      (w + wo) > 0.0 ? (core_utilization * w + other.core_utilization * wo) / (w + wo) : 0.0;
  const std::uint64_t decisions = scheduler_decisions + other.scheduler_decisions;
  if (decisions > 0) {
    const auto weighted =
        static_cast<__int128>(mean_decision_latency.ps()) * scheduler_decisions +
        static_cast<__int128>(other.mean_decision_latency.ps()) * other.scheduler_decisions;
    mean_decision_latency = sim::Time::picoseconds(
        static_cast<std::int64_t>(weighted / static_cast<__int128>(decisions)));
  }
  scheduler_decisions = decisions;

  duration += other.duration;
  offered_packets += other.offered_packets;
  offered_bytes += other.offered_bytes;
  delivered_packets += other.delivered_packets;
  delivered_bytes += other.delivered_bytes;
  serviced_bytes += other.serviced_bytes;
  ocs_bytes += other.ocs_bytes;
  eps_bytes += other.eps_bytes;
  for (std::size_t c = 0; c < class_bytes.size(); ++c) class_bytes[c] += other.class_bytes[c];

  voq_drops += other.voq_drops;
  eps_drops += other.eps_drops;
  sync_losses += other.sync_losses;
  reconfig_cuts += other.reconfig_cuts;
  reconfigurations += other.reconfigurations;
  dark_time += other.dark_time;

  peak_switch_buffer_bytes = std::max(peak_switch_buffer_bytes, other.peak_switch_buffer_bytes);
  peak_host_buffer_bytes = std::max(peak_host_buffer_bytes, other.peak_host_buffer_bytes);

  deadline_flows_met += other.deadline_flows_met;
  deadline_flows_missed += other.deadline_flows_missed;
  goodput_before_deadline_bytes += other.goodput_before_deadline_bytes;

  intra_rack_bytes += other.intra_rack_bytes;
  cross_rack_bytes += other.cross_rack_bytes;
  peak_uplink_queue_bytes = std::max(peak_uplink_queue_bytes, other.peak_uplink_queue_bytes);
  uplink_drops += other.uplink_drops;
  core_link_bytes += other.core_link_bytes;
  core_drops += other.core_drops;
  peak_core_queue_bytes = std::max(peak_core_queue_bytes, other.peak_core_queue_bytes);

  latency.merge(other.latency);
  latency_sensitive.merge(other.latency_sensitive);
  jitter_us.merge(other.jitter_us);
  fct_deadline.merge(other.fct_deadline);
  fct_other.merge(other.fct_other);
  fct_intra_rack.merge(other.fct_intra_rack);
  fct_cross_rack.merge(other.fct_cross_rack);
}

std::vector<stats::Field> RunReport::fields() const {
  using stats::Field;
  std::vector<Field> f;
  f.reserve(50);
  f.push_back(Field::u64("schema_version", kSchemaVersion));
  f.push_back(Field::str("policy_stack", policy_stack));
  f.push_back(Field::i64("duration_ps", duration.ps()));
  f.push_back(Field::u64("offered_packets", offered_packets));
  f.push_back(Field::i64("offered_bytes", offered_bytes));
  f.push_back(Field::u64("delivered_packets", delivered_packets));
  f.push_back(Field::i64("delivered_bytes", delivered_bytes));
  f.push_back(Field::i64("serviced_bytes", serviced_bytes));
  f.push_back(Field::i64("ocs_bytes", ocs_bytes));
  f.push_back(Field::i64("eps_bytes", eps_bytes));
  f.push_back(Field::i64("latency_sensitive_bytes", class_bytes[0]));
  f.push_back(Field::i64("throughput_bytes", class_bytes[1]));
  f.push_back(Field::i64("best_effort_bytes", class_bytes[2]));
  f.push_back(Field::u64("voq_drops", voq_drops));
  f.push_back(Field::u64("eps_drops", eps_drops));
  f.push_back(Field::u64("sync_losses", sync_losses));
  f.push_back(Field::u64("reconfig_cuts", reconfig_cuts));
  f.push_back(Field::u64("reconfigurations", reconfigurations));
  f.push_back(Field::i64("dark_time_ps", dark_time.ps()));
  f.push_back(Field::f64("ocs_duty_cycle", ocs_duty_cycle));
  f.push_back(Field::i64("peak_switch_buffer_bytes", peak_switch_buffer_bytes));
  f.push_back(Field::i64("peak_host_buffer_bytes", peak_host_buffer_bytes));
  f.push_back(Field::u64("scheduler_decisions", scheduler_decisions));
  f.push_back(Field::i64("mean_decision_latency_ps", mean_decision_latency.ps()));
  f.push_back(Field::f64("delivery_ratio", delivery_ratio()));
  f.push_back(Field::u64("latency_count", latency.count()));
  f.push_back(Field::f64("latency_mean_ps", latency.mean()));
  f.push_back(Field::i64("latency_p50_ps", latency.p50()));
  f.push_back(Field::i64("latency_p99_ps", latency.p99()));
  f.push_back(Field::i64("latency_max_ps", latency.max()));
  f.push_back(Field::u64("latency_sensitive_count", latency_sensitive.count()));
  f.push_back(Field::f64("latency_sensitive_mean_ps", latency_sensitive.mean()));
  f.push_back(Field::i64("latency_sensitive_p99_ps", latency_sensitive.p99()));
  f.push_back(Field::u64("jitter_flows", jitter_us.count()));
  f.push_back(Field::f64("jitter_mean_us", jitter_us.mean()));
  f.push_back(Field::f64("jitter_max_us", jitter_us.max()));
  f.push_back(Field::u64("deadline_flows_met", deadline_flows_met));
  f.push_back(Field::u64("deadline_flows_missed", deadline_flows_missed));
  f.push_back(Field::f64("deadline_miss_ratio", deadline_miss_ratio()));
  f.push_back(Field::i64("goodput_before_deadline_bytes", goodput_before_deadline_bytes));
  f.push_back(Field::u64("fct_deadline_count", fct_deadline.count()));
  f.push_back(Field::f64("fct_deadline_mean_ps", fct_deadline.mean()));
  f.push_back(Field::i64("fct_deadline_p50_ps", fct_deadline.p50()));
  f.push_back(Field::i64("fct_deadline_p99_ps", fct_deadline.p99()));
  f.push_back(Field::i64("fct_deadline_max_ps", fct_deadline.max()));
  f.push_back(Field::u64("fct_other_count", fct_other.count()));
  f.push_back(Field::f64("fct_other_mean_ps", fct_other.mean()));
  f.push_back(Field::i64("fct_other_p99_ps", fct_other.p99()));
  f.push_back(Field::i64("intra_rack_bytes", intra_rack_bytes));
  f.push_back(Field::i64("cross_rack_bytes", cross_rack_bytes));
  f.push_back(Field::u64("fct_intra_rack_count", fct_intra_rack.count()));
  f.push_back(Field::f64("fct_intra_rack_mean_ps", fct_intra_rack.mean()));
  f.push_back(Field::i64("fct_intra_rack_p99_ps", fct_intra_rack.p99()));
  f.push_back(Field::u64("fct_cross_rack_count", fct_cross_rack.count()));
  f.push_back(Field::f64("fct_cross_rack_mean_ps", fct_cross_rack.mean()));
  f.push_back(Field::i64("fct_cross_rack_p99_ps", fct_cross_rack.p99()));
  f.push_back(Field::i64("peak_uplink_queue_bytes", peak_uplink_queue_bytes));
  f.push_back(Field::u64("uplink_drops", uplink_drops));
  f.push_back(Field::i64("core_link_bytes", core_link_bytes));
  f.push_back(Field::u64("core_drops", core_drops));
  f.push_back(Field::i64("peak_core_queue_bytes", peak_core_queue_bytes));
  f.push_back(Field::f64("core_utilization", core_utilization));
  return f;
}

std::string RunReport::to_json() const { return stats::to_json_object(fields()); }

std::string RunReport::csv_header() { return stats::csv_header(RunReport{}.fields()); }

std::string RunReport::csv_row() const { return stats::csv_row(fields()); }

std::string RunReport::summary() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "delivered %lld/%lld bytes (%.1f%%), ocs %lld, eps %lld, drops voq=%llu eps=%llu "
                "sync=%llu cut=%llu, reconfigs=%llu, latency %s",
                static_cast<long long>(delivered_bytes), static_cast<long long>(offered_bytes),
                delivery_ratio() * 100.0, static_cast<long long>(ocs_bytes),
                static_cast<long long>(eps_bytes), static_cast<unsigned long long>(voq_drops),
                static_cast<unsigned long long>(eps_drops),
                static_cast<unsigned long long>(sync_losses),
                static_cast<unsigned long long>(reconfig_cuts),
                static_cast<unsigned long long>(reconfigurations),
                latency.summary_time().c_str());
  return buf;
}

}  // namespace xdrs::core
