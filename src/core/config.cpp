#include "core/config.hpp"

#include <cstdio>

namespace xdrs::core {

std::string RunReport::summary() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "delivered %lld/%lld bytes (%.1f%%), ocs %lld, eps %lld, drops voq=%llu eps=%llu "
                "sync=%llu cut=%llu, reconfigs=%llu, latency %s",
                static_cast<long long>(delivered_bytes), static_cast<long long>(offered_bytes),
                delivery_ratio() * 100.0, static_cast<long long>(ocs_bytes),
                static_cast<long long>(eps_bytes), static_cast<unsigned long long>(voq_drops),
                static_cast<unsigned long long>(eps_drops),
                static_cast<unsigned long long>(sync_losses),
                static_cast<unsigned long long>(reconfig_cuts),
                static_cast<unsigned long long>(reconfigurations),
                latency.summary_time().c_str());
  return buf;
}

}  // namespace xdrs::core
