#include "net/packet.hpp"

#include <cstdio>

namespace xdrs::net {

const char* to_string(TrafficClass c) noexcept {
  switch (c) {
    case TrafficClass::kLatencySensitive: return "latency-sensitive";
    case TrafficClass::kThroughput: return "throughput";
    case TrafficClass::kBestEffort: return "best-effort";
  }
  return "unknown";
}

std::string FiveTuple::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u > %u.%u.%u.%u:%u/%u",
                src_addr >> 24 & 0xff, src_addr >> 16 & 0xff, src_addr >> 8 & 0xff,
                src_addr & 0xff, src_port,
                dst_addr >> 24 & 0xff, dst_addr >> 16 & 0xff, dst_addr >> 8 & 0xff,
                dst_addr & 0xff, dst_port, static_cast<unsigned>(proto));
  return buf;
}

}  // namespace xdrs::net
