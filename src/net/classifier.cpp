#include "net/classifier.hpp"

#include <algorithm>

namespace xdrs::net {

bool Rule::matches(const FiveTuple& t) const noexcept {
  if ((t.src_addr & src_addr_mask) != (src_addr_value & src_addr_mask)) return false;
  if ((t.dst_addr & dst_addr_mask) != (dst_addr_value & dst_addr_mask)) return false;
  if ((t.src_port & src_port_mask) != (src_port_value & src_port_mask)) return false;
  if ((t.dst_port & dst_port_mask) != (dst_port_value & dst_port_mask)) return false;
  if (proto.has_value() && t.proto != *proto) return false;
  return true;
}

Classifier::Classifier(std::size_t cache_capacity) : cache_capacity_{cache_capacity} {
  cache_.reserve(std::min<std::size_t>(cache_capacity, 1 << 16));
}

void Classifier::add_rule(const Rule& rule) {
  const Indexed entry{rule, next_order_++};
  const auto pos = std::upper_bound(
      rules_.begin(), rules_.end(), entry, [](const Indexed& a, const Indexed& b) {
        if (a.rule.priority != b.rule.priority) return a.rule.priority < b.rule.priority;
        return a.order < b.order;
      });
  rules_.insert(pos, entry);
  cache_.clear();  // verdicts may have changed
}

std::size_t Classifier::remove_rule(std::uint64_t id) {
  const auto before = rules_.size();
  std::erase_if(rules_, [id](const Indexed& e) { return e.rule.id == id; });
  const std::size_t removed = before - rules_.size();
  if (removed > 0) cache_.clear();
  return removed;
}

void Classifier::clear_rules() noexcept {
  rules_.clear();
  cache_.clear();
}

void Classifier::count_rule_hit(std::uint64_t id, std::int64_t bytes) {
  if (id == 0) return;
  RuleCounters& c = counters_[id];
  ++c.packets;
  c.bytes += bytes;
}

Verdict Classifier::classify(const Packet& p, const Verdict& fallback) {
  ++stats_.lookups;
  if (const auto it = cache_.find(p.tuple); it != cache_.end()) {
    ++stats_.cache_hits;
    count_rule_hit(it->second.rule_id, p.size_bytes);
    return it->second.verdict;
  }
  CacheEntry entry{fallback, 0};
  bool from_rule = false;
  for (const auto& [rule, order] : rules_) {
    (void)order;
    if (rule.matches(p.tuple)) {
      entry = CacheEntry{rule.verdict, rule.id};
      from_rule = true;
      break;
    }
  }
  if (from_rule) {
    ++stats_.rule_hits;
    count_rule_hit(entry.rule_id, p.size_bytes);
  } else {
    ++stats_.default_hits;
  }
  if (cache_.size() < cache_capacity_) cache_.emplace(p.tuple, entry);
  return entry.verdict;
}

RuleCounters Classifier::rule_counters(std::uint64_t id) const {
  const auto it = counters_.find(id);
  return it == counters_.end() ? RuleCounters{} : it->second;
}

}  // namespace xdrs::net
