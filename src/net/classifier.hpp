// Configurable look-up rules of the processing logic (paper §3):
// "packets are classified into flows based on configurable look-up rules
//  and placed into their respective Virtual Output Queue".
//
// Two stages mirror an FPGA datapath:
//  1. an exact-match flow cache (hash table, models a CAM) hit in O(1), and
//  2. a priority-ordered wildcard rule table (models a TCAM) searched on
//     miss, whose verdict is installed into the cache.
// The verdict selects the destination port (hence the VOQ) and the traffic
// class used by hybrid fabric policy.  Rules carry caller-assigned ids and
// per-rule match counters, which is what the SDN layer (control/sdn.hpp)
// builds on.
#ifndef XDRS_NET_CLASSIFIER_HPP
#define XDRS_NET_CLASSIFIER_HPP

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"

namespace xdrs::net {

/// Result of classification: which VOQ (output port) and class.
struct Verdict {
  PortId out_port{0};
  TrafficClass tclass{TrafficClass::kBestEffort};
  constexpr bool operator==(const Verdict&) const noexcept = default;
};

/// A wildcard match rule.  A field participates in matching only when its
/// mask is non-zero: `(packet_field & mask) == value`.  Lower `priority`
/// wins; insertion order breaks ties.
struct Rule {
  std::uint32_t src_addr_value{0};
  std::uint32_t src_addr_mask{0};
  std::uint32_t dst_addr_value{0};
  std::uint32_t dst_addr_mask{0};
  std::uint16_t src_port_value{0};
  std::uint16_t src_port_mask{0};
  std::uint16_t dst_port_value{0};
  std::uint16_t dst_port_mask{0};
  std::optional<IpProto> proto{};  ///< match any protocol when empty
  std::uint32_t priority{0};
  std::uint64_t id{0};  ///< caller-assigned; 0 = anonymous
  Verdict verdict{};

  [[nodiscard]] bool matches(const FiveTuple& t) const noexcept;
};

/// Classifier statistics for the datapath benches.
struct ClassifierStats {
  std::uint64_t lookups{0};
  std::uint64_t cache_hits{0};
  std::uint64_t rule_hits{0};
  std::uint64_t default_hits{0};
};

/// Per-rule match counters (flow-table statistics in SDN terms).
struct RuleCounters {
  std::uint64_t packets{0};
  std::int64_t bytes{0};
};

class Classifier {
 public:
  explicit Classifier(std::size_t cache_capacity = 65536);

  /// Installs a rule; rules are kept sorted by (priority, insertion order).
  void add_rule(const Rule& rule);

  /// Removes every rule whose id equals `id`; returns the count removed.
  std::size_t remove_rule(std::uint64_t id);

  /// Removes all rules and invalidates the flow cache.
  void clear_rules() noexcept;

  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }

  /// Classifies `p`.  `fallback` supplies the verdict when no rule matches
  /// (typically derived from the packet's destination port field).
  Verdict classify(const Packet& p, const Verdict& fallback);

  [[nodiscard]] const ClassifierStats& stats() const noexcept { return stats_; }

  /// Match counters of rule `id` (zeroes if never hit / unknown).
  [[nodiscard]] RuleCounters rule_counters(std::uint64_t id) const;

 private:
  struct Indexed {
    Rule rule;
    std::uint64_t order;
  };
  struct CacheEntry {
    Verdict verdict;
    std::uint64_t rule_id{0};  ///< 0: fallback verdict
  };

  void count_rule_hit(std::uint64_t id, std::int64_t bytes);

  std::vector<Indexed> rules_;  // sorted by (priority, order)
  std::unordered_map<FiveTuple, CacheEntry, FiveTupleHash> cache_;
  std::unordered_map<std::uint64_t, RuleCounters> counters_;
  std::size_t cache_capacity_;
  std::uint64_t next_order_{0};
  ClassifierStats stats_;
};

}  // namespace xdrs::net

#endif  // XDRS_NET_CLASSIFIER_HPP
