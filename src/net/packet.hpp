// Packet and flow model.
//
// Packets are metadata-only: the framework studies scheduling, so payload
// bytes would cost memory without influencing any result.  Sizes, headers
// and timestamps are modelled exactly.
#ifndef XDRS_NET_PACKET_HPP
#define XDRS_NET_PACKET_HPP

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "sim/time.hpp"

namespace xdrs::net {

/// Switch-scope port index (host-facing input or output of the hybrid ToR).
using PortId = std::uint32_t;

/// Globally unique flow identifier assigned by generators.
using FlowId = std::uint64_t;

/// IP-protocol numbers the classifier understands.
enum class IpProto : std::uint8_t { kTcp = 6, kUdp = 17, kOther = 0 };

/// Service class attached by classification; determines default fabric
/// preference (latency-sensitive traffic avoids waiting for circuits).
enum class TrafficClass : std::uint8_t {
  kLatencySensitive,  ///< VOIP / gaming / RPC — EPS-preferred
  kThroughput,        ///< bulk transfers — OCS candidates
  kBestEffort,        ///< everything else
};

[[nodiscard]] const char* to_string(TrafficClass c) noexcept;

/// Classic 5-tuple used by the look-up rules.  Addresses are modelled as
/// 32-bit values (IPv4-like); the framework never routes on them beyond
/// classification, so this loses no generality.
struct FiveTuple {
  std::uint32_t src_addr{0};
  std::uint32_t dst_addr{0};
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  IpProto proto{IpProto::kOther};

  constexpr auto operator<=>(const FiveTuple&) const noexcept = default;

  [[nodiscard]] std::string to_string() const;
};

/// Hash for exact-match flow tables (FNV-1a over the tuple fields).
struct FiveTupleHash {
  [[nodiscard]] std::size_t operator()(const FiveTuple& t) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(t.src_addr);
    mix(t.dst_addr);
    mix(static_cast<std::uint64_t>(t.src_port) << 16 | t.dst_port);
    mix(static_cast<std::uint64_t>(t.proto));
    return static_cast<std::size_t>(h);
  }
};

/// A packet traversing the fabric.  Value type; freely copyable.
struct Packet {
  std::uint64_t id{0};
  FlowId flow{0};
  PortId src{0};           ///< ingress port at the hybrid switch
  PortId dst{0};           ///< egress port at the hybrid switch
  std::int64_t size_bytes{0};
  FiveTuple tuple{};
  TrafficClass tclass{TrafficClass::kBestEffort};
  sim::Time created_at{};    ///< stamped by the generator at the host
  sim::Time enqueued_at{};   ///< stamped when entering a VOQ
  sim::Time delivered_at{};  ///< stamped on delivery at the egress
  /// Absolute simulation time by which the owning FLOW should finish.
  /// Zero means "no deadline"; every packet of a flow carries the same
  /// value, so the completion recorder and deadline-aware policies read it
  /// without a flow table lookup.
  sim::Time deadline{};
  /// Total bytes of the owning flow (0 = unknown).  Lets the completion
  /// recorder detect "flow done" from delivered bytes alone, without the
  /// generator having to signal completion out of band.
  std::int64_t flow_bytes{0};

  // ---- multi-rack routing (topo::FatTree) --------------------------------
  // All zero/false in single-switch runs, so the legacy path is untouched.
  // A cross-rack packet travels source-ToR fabric -> core link -> dest-ToR
  // fabric; `dst` is rewritten per hop (uplink port, then final_dst) while
  // these fields carry the end-to-end route.
  std::uint32_t src_rack{0};  ///< rack the packet was generated in
  std::uint32_t dst_rack{0};  ///< rack the packet terminates in
  PortId final_dst{0};        ///< host port within dst_rack (cross-rack only)
  bool remote{false};         ///< true iff the packet crosses the core tier
};

}  // namespace xdrs::net

#endif  // XDRS_NET_PACKET_HPP
