// Electrical packet switch model: an output-queued store-and-forward switch.
//
// In the hybrid architecture the EPS carries "the remaining traffic and
// short bursts" (paper §1).  Output queuing makes it work-conserving —
// matching the role commodity ToR silicon plays in Helios/c-Through — while
// per-output buffer limits expose the shallow-buffer reality the paper's
// motivation leans on.
#ifndef XDRS_SWITCHING_EPS_HPP
#define XDRS_SWITCHING_EPS_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace xdrs::switching {

struct EpsConfig {
  std::uint32_t ports{0};
  sim::DataRate port_rate{};          ///< drain rate per output port
  sim::Time switching_latency{};      ///< fixed fabric traversal latency
  std::int64_t buffer_bytes_per_port{0};  ///< 0 = unlimited
  /// Two-level strict priority: latency-sensitive packets drain ahead of
  /// everything else (non-preemptive — an in-flight packet completes).
  bool strict_priority{false};
};

struct EpsStats {
  std::uint64_t packets_delivered{0};
  std::int64_t bytes_delivered{0};
  std::uint64_t packets_dropped{0};
  std::int64_t bytes_dropped{0};
  std::int64_t peak_queue_bytes{0};  ///< max over ports and time
  std::uint64_t priority_packets_delivered{0};  ///< latency-sensitive class
};

class ElectricalPacketSwitch {
 public:
  using DeliverCallback = std::function<void(const net::Packet&, net::PortId out)>;

  ElectricalPacketSwitch(sim::Simulator& sim, EpsConfig cfg);

  void set_deliver_callback(DeliverCallback cb) { deliver_cb_ = std::move(cb); }

  /// Accepts `p` into the queue of output `p.dst`.  Returns false (drop)
  /// when the output buffer is full.
  bool send(const net::Packet& p);

  [[nodiscard]] std::int64_t queue_bytes(net::PortId out) const;
  [[nodiscard]] std::size_t queue_packets(net::PortId out) const;

  [[nodiscard]] const EpsStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const EpsConfig& config() const noexcept { return cfg_; }

 private:
  struct OutPort {
    std::deque<net::Packet> queue;       ///< normal (or only) queue
    std::deque<net::Packet> prio_queue;  ///< latency-sensitive, strict_priority mode
    std::int64_t bytes{0};               ///< across both queues
    bool draining{false};
  };

  void drain(net::PortId out);
  /// Next packet to serialise on `port`, honouring priority; nullptr if idle.
  [[nodiscard]] static const net::Packet* head_of(const OutPort& port);

  sim::Simulator& sim_;
  EpsConfig cfg_;
  std::vector<OutPort> out_;
  DeliverCallback deliver_cb_;
  EpsStats stats_;
};

}  // namespace xdrs::switching

#endif  // XDRS_SWITCHING_EPS_HPP
