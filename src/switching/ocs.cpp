#include "switching/ocs.hpp"

#include <algorithm>
#include <stdexcept>

namespace xdrs::switching {

OpticalCircuitSwitch::OpticalCircuitSwitch(sim::Simulator& sim, OcsConfig cfg)
    : sim_{sim},
      cfg_{cfg},
      config_{cfg.ports, cfg.ports},
      busy_until_(cfg.ports, sim::Time::zero()),
      in_flight_(cfg.ports),
      failure_rng_{cfg.failure_seed} {
  if (cfg.ports == 0) throw std::invalid_argument{"OCS: ports must be >= 1"};
  if (cfg.port_rate.is_zero()) throw std::invalid_argument{"OCS: port rate must be positive"};
  if (cfg.reconfig_time.is_negative()) {
    throw std::invalid_argument{"OCS: negative reconfiguration time"};
  }
  if (cfg.retune_failure_prob < 0.0 || cfg.retune_failure_prob > 1.0) {
    throw std::invalid_argument{"OCS: retune failure probability must be in [0, 1]"};
  }
}

void OpticalCircuitSwitch::reconfigure(const schedulers::Matching& next) {
  if (next.inputs() != cfg_.ports || next.outputs() != cfg_.ports) {
    throw std::invalid_argument{"OCS: configuration dimensions mismatch"};
  }

  // Cut every packet still on the fabric: light stops propagating the
  // instant mirrors start moving.
  for (std::uint32_t in = 0; in < cfg_.ports; ++in) {
    InFlight& f = in_flight_[in];
    if (f.active && f.completes > sim_.now()) {
      sim_.cancel(f.event);
      f.active = false;
      ++stats_.packets_cut_by_reconfig;
      busy_until_[in] = sim_.now();
    }
  }

  config_ = next;
  ++stats_.reconfigurations;
  stats_.dark_time_total += cfg_.reconfig_time;

  // A reconfigure issued while already dark restarts the dark period for
  // the new target (the device retunes from wherever its mirrors are).
  if (dark_) sim_.cancel(dark_end_event_);
  dark_ = true;
  dark_end_event_ = sim_.schedule(cfg_.reconfig_time, [this] { finish_dark_period(); });
}

void OpticalCircuitSwitch::finish_dark_period() {
  if (cfg_.retune_failure_prob > 0.0 && failure_rng_.bernoulli(cfg_.retune_failure_prob)) {
    // Injected fault: the retune missed (mirror over/undershoot); the
    // device repeats the dark period and tries again.
    ++stats_.retune_failures;
    stats_.dark_time_total += cfg_.reconfig_time;
    dark_end_event_ = sim_.schedule(cfg_.reconfig_time, [this] { finish_dark_period(); });
    return;
  }
  dark_ = false;
  if (configured_cb_) configured_cb_(config_);
}

bool OpticalCircuitSwitch::circuit_up(net::PortId in, net::PortId out) const {
  if (in >= cfg_.ports || out >= cfg_.ports) throw std::out_of_range{"OCS::circuit_up"};
  if (dark_) return false;
  const auto matched = config_.output_of(in);
  return matched.has_value() && *matched == out;
}

std::optional<sim::Time> OpticalCircuitSwitch::send(net::PortId in, const net::Packet& p) {
  if (!circuit_up(in, p.dst)) return std::nullopt;

  const sim::Time start = std::max(sim_.now(), busy_until_[in]);
  const sim::Time tx = cfg_.port_rate.transmission_time(p.size_bytes + sim::kWireOverheadBytes);
  const sim::Time done = start + tx;
  busy_until_[in] = done;
  stats_.busy_time_total += tx;

  const sim::Time deliver_at = done + cfg_.fabric_latency;
  net::Packet delivered = p;
  InFlight& f = in_flight_[in];
  f.completes = deliver_at;
  f.active = true;
  f.event = sim_.schedule_at(deliver_at, [this, delivered, in] {
    in_flight_[in].active = false;
    ++stats_.packets_delivered;
    stats_.bytes_delivered += delivered.size_bytes;
    if (deliver_cb_) deliver_cb_(delivered, delivered.dst);
  });
  return deliver_at;
}

sim::Time OpticalCircuitSwitch::port_free_at(net::PortId in) const {
  if (in >= cfg_.ports) throw std::out_of_range{"OCS::port_free_at"};
  return std::max(busy_until_[in], sim_.now());
}

}  // namespace xdrs::switching
