// Optical circuit switch model.
//
// The defining property (paper §2): "During the switching time (which can
// vary from nanoseconds to milliseconds based on its construction), no
// packets can be sent through the switch and hence need to be buffered."
// The model therefore centres on the reconfiguration *dark period*: between
// `reconfigure()` and the configured callback, every circuit is down, and
// packets still serialising onto the fabric when darkness falls are lost
// (counted separately — they are the transients of experiment E8).
#ifndef XDRS_SWITCHING_OCS_HPP
#define XDRS_SWITCHING_OCS_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "schedulers/matching.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace xdrs::switching {

struct OcsConfig {
  std::uint32_t ports{0};
  sim::DataRate port_rate{};          ///< serialisation rate per circuit
  sim::Time reconfig_time{};          ///< dark period per reconfiguration
  sim::Time fabric_latency{};         ///< propagation through the fabric
  /// Failure injection: probability that one retune attempt fails and the
  /// device must repeat the dark period before circuits establish.
  double retune_failure_prob{0.0};
  std::uint64_t failure_seed{1};
};

struct OcsStats {
  std::uint64_t reconfigurations{0};
  sim::Time dark_time_total{};
  std::uint64_t packets_delivered{0};
  std::int64_t bytes_delivered{0};
  std::uint64_t packets_cut_by_reconfig{0};  ///< in flight when darkness fell
  sim::Time busy_time_total{};               ///< port-seconds of serialisation
  std::uint64_t retune_failures{0};          ///< injected retune retries
};

class OpticalCircuitSwitch {
 public:
  using DeliverCallback = std::function<void(const net::Packet&, net::PortId out)>;
  using ConfiguredCallback = std::function<void(const schedulers::Matching&)>;

  OpticalCircuitSwitch(sim::Simulator& sim, OcsConfig cfg);

  /// Delivery of a packet at its egress port.
  void set_deliver_callback(DeliverCallback cb) { deliver_cb_ = std::move(cb); }

  /// Fired when a reconfiguration completes and circuits are up again.
  void set_configured_callback(ConfiguredCallback cb) { configured_cb_ = std::move(cb); }

  /// Starts retuning to `next`.  Any packet still serialising is cut (lost).
  /// Re-entrant calls during a dark period supersede the pending target.
  void reconfigure(const schedulers::Matching& next);

  /// True while the switch is dark (no circuit usable).
  [[nodiscard]] bool is_dark() const noexcept { return dark_; }

  /// True when input `in` currently has a live circuit to output `out`.
  [[nodiscard]] bool circuit_up(net::PortId in, net::PortId out) const;

  /// The established configuration (the pending one while dark).
  [[nodiscard]] const schedulers::Matching& configuration() const noexcept { return config_; }

  /// Sends `p` from `in` over its circuit.  Returns the delivery time, or
  /// nullopt when there is no live circuit from `in` to `p.dst` (caller must
  /// buffer).  Serialisation is paced per input port; back-to-back sends
  /// queue behind the port's busy time.
  std::optional<sim::Time> send(net::PortId in, const net::Packet& p);

  /// Earliest time input `in` can begin serialising a new packet.
  [[nodiscard]] sim::Time port_free_at(net::PortId in) const;

  [[nodiscard]] const OcsStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const OcsConfig& config() const noexcept { return cfg_; }

 private:
  struct InFlight {
    sim::EventId event{};
    sim::Time completes{};
    bool active{false};
  };

  /// Completes (or retries, under failure injection) a dark period.
  void finish_dark_period();

  sim::Simulator& sim_;
  OcsConfig cfg_;
  schedulers::Matching config_;
  bool dark_{false};
  sim::EventId dark_end_event_{};
  std::vector<sim::Time> busy_until_;   // per input port
  std::vector<InFlight> in_flight_;     // per input port (one packet at a time)
  sim::Rng failure_rng_;
  DeliverCallback deliver_cb_;
  ConfiguredCallback configured_cb_;
  OcsStats stats_;
};

}  // namespace xdrs::switching

#endif  // XDRS_SWITCHING_OCS_HPP
