#include "switching/eps.hpp"

#include <algorithm>
#include <stdexcept>

namespace xdrs::switching {

ElectricalPacketSwitch::ElectricalPacketSwitch(sim::Simulator& sim, EpsConfig cfg)
    : sim_{sim}, cfg_{cfg}, out_(cfg.ports) {
  if (cfg.ports == 0) throw std::invalid_argument{"EPS: ports must be >= 1"};
  if (cfg.port_rate.is_zero()) throw std::invalid_argument{"EPS: port rate must be positive"};
}

const net::Packet* ElectricalPacketSwitch::head_of(const OutPort& port) {
  if (!port.prio_queue.empty()) return &port.prio_queue.front();
  if (!port.queue.empty()) return &port.queue.front();
  return nullptr;
}

bool ElectricalPacketSwitch::send(const net::Packet& p) {
  if (p.dst >= cfg_.ports) throw std::out_of_range{"EPS::send: bad destination"};
  OutPort& port = out_[p.dst];

  if (cfg_.buffer_bytes_per_port > 0 &&
      port.bytes + p.size_bytes > cfg_.buffer_bytes_per_port) {
    ++stats_.packets_dropped;
    stats_.bytes_dropped += p.size_bytes;
    return false;
  }

  const bool priority =
      cfg_.strict_priority && p.tclass == net::TrafficClass::kLatencySensitive;
  (priority ? port.prio_queue : port.queue).push_back(p);
  port.bytes += p.size_bytes;
  stats_.peak_queue_bytes = std::max(stats_.peak_queue_bytes, port.bytes);

  if (!port.draining) {
    port.draining = true;
    // The fabric traversal happens once per packet ahead of the output
    // queue; modelling it inside the drain loop keeps one event per packet.
    drain(p.dst);
  }
  return true;
}

void ElectricalPacketSwitch::drain(net::PortId outp) {
  OutPort& port = out_[outp];
  if (head_of(port) == nullptr) {
    port.draining = false;
    return;
  }
  // The queue choice binds when serialisation starts: a priority packet
  // arriving mid-drain overtakes queued normal traffic at the *next* wire
  // slot but never preempts the packet on the wire.  The packet stays in
  // its queue (and in the buffer accounting) until fully serialised —
  // store-and-forward semantics.
  const bool from_prio = !port.prio_queue.empty();
  const net::Packet& head = from_prio ? port.prio_queue.front() : port.queue.front();
  const sim::Time tx =
      cfg_.port_rate.transmission_time(head.size_bytes + sim::kWireOverheadBytes);
  // Serialisation paces the drain; fabric latency is pipelined on top and
  // only delays the delivery signal, not the next packet.
  sim_.schedule(tx, [this, outp, from_prio] {
    OutPort& prt = out_[outp];
    auto& q = from_prio ? prt.prio_queue : prt.queue;
    const net::Packet done = q.front();
    q.pop_front();
    prt.bytes -= done.size_bytes;
    ++stats_.packets_delivered;
    stats_.bytes_delivered += done.size_bytes;
    if (from_prio) ++stats_.priority_packets_delivered;
    if (deliver_cb_) {
      if (cfg_.switching_latency.is_zero()) {
        deliver_cb_(done, done.dst);
      } else {
        sim_.schedule(cfg_.switching_latency, [this, done] { deliver_cb_(done, done.dst); });
      }
    }
    drain(outp);
  });
}

std::int64_t ElectricalPacketSwitch::queue_bytes(net::PortId outp) const {
  if (outp >= cfg_.ports) throw std::out_of_range{"EPS::queue_bytes"};
  return out_[outp].bytes;
}

std::size_t ElectricalPacketSwitch::queue_packets(net::PortId outp) const {
  if (outp >= cfg_.ports) throw std::out_of_range{"EPS::queue_packets"};
  return out_[outp].queue.size() + out_[outp].prio_queue.size();
}

}  // namespace xdrs::switching
