#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace xdrs::exp {

// --------------------------------------------------------------- SweepResult

core::RunReport SweepResult::merged() const {
  core::RunReport total;
  for (const auto& p : points) total.merge(p.report);
  return total;
}

namespace {

std::vector<stats::Field> point_fields(const PointResult& p) {
  std::vector<stats::Field> f = p.spec.fields();
  std::vector<stats::Field> r = p.report.fields();
  f.insert(f.end(), std::make_move_iterator(r.begin()), std::make_move_iterator(r.end()));
  return f;
}

}  // namespace

std::string SweepResult::to_csv() const {
  std::string out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto fields = point_fields(points[i]);
    if (i == 0) out += stats::csv_header(fields) + '\n';
    out += stats::csv_row(fields) + '\n';
  }
  return out;
}

std::string SweepResult::to_json() const {
  std::string out{"{\n  \"points\": [\n"};
  for (std::size_t i = 0; i < points.size(); ++i) {
    out += "    " + stats::to_json_object(point_fields(points[i]));
    if (i + 1 < points.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n  \"merged\": " + merged().to_json() + "\n}\n";
  return out;
}

stats::Table SweepResult::table(const std::vector<std::string>& columns) const {
  stats::Table t{columns};
  for (const auto& p : points) {
    const auto fields = point_fields(p);
    auto& row = t.row();
    for (const auto& col : columns) {
      const auto it = std::find_if(fields.begin(), fields.end(),
                                   [&col](const stats::Field& f) { return f.name() == col; });
      row.cell(it == fields.end() ? std::string{"-"} : it->csv());
    }
  }
  return t;
}

// ---------------------------------------------------------- ExperimentRunner

SweepResult ExperimentRunner::run(const std::vector<ScenarioSpec>& grid) const {
  SweepResult result;
  result.points.resize(grid.size());
  if (grid.empty()) return result;

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::size_t completed = 0;
  std::mutex mutex;  // guards `completed`, `error` and the progress callback
  std::exception_ptr error;

  const auto work = [&] {
    for (;;) {
      // A failed point aborts the whole sweep: don't burn the remaining
      // grid on the surviving workers just to rethrow afterwards.
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= grid.size()) return;
      PointResult& slot = result.points[i];
      slot.spec = grid[i];
      try {
        slot.report = run_scenario(slot.spec);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock{mutex};
        if (!error) error = std::current_exception();
        return;
      }
      if (opts_.progress) {
        const std::lock_guard<std::mutex> lock{mutex};
        opts_.progress(++completed, grid.size(), slot.spec);
      }
    }
  };

  unsigned threads = opts_.threads != 0 ? opts_.threads
                                        : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, grid.size()));

  if (threads <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(work);
    for (auto& t : pool) t.join();
  }

  if (error) std::rethrow_exception(error);
  return result;
}

// ------------------------------------------------------------------- grids

std::vector<ScenarioSpec> expand(const std::vector<ScenarioSpec>& in,
                                 const std::vector<Mutator>& axis) {
  if (axis.empty()) throw std::invalid_argument{"expand: empty axis"};
  std::vector<ScenarioSpec> out;
  out.reserve(in.size() * axis.size());
  for (const auto& spec : in) {
    for (const auto& mutate : axis) {
      ScenarioSpec s = spec;
      mutate(s);
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<Mutator> axis_ports(const std::vector<std::uint32_t>& values) {
  std::vector<Mutator> axis;
  axis.reserve(values.size());
  for (const std::uint32_t v : values) {
    axis.push_back([v](ScenarioSpec& s) { s.with_ports(v); });
  }
  return axis;
}

std::vector<Mutator> axis_load(const std::vector<double>& values) {
  std::vector<Mutator> axis;
  axis.reserve(values.size());
  for (const double v : values) {
    axis.push_back([v](ScenarioSpec& s) { s.with_load(v); });
  }
  return axis;
}

std::vector<Mutator> axis_matcher(const std::vector<std::string>& specs) {
  std::vector<Mutator> axis;
  axis.reserve(specs.size());
  for (const auto& v : specs) {
    axis.push_back([v](ScenarioSpec& s) { s.with_matcher(v); });
  }
  return axis;
}

std::vector<Mutator> axis_timing(const std::vector<std::string>& models) {
  std::vector<Mutator> axis;
  axis.reserve(models.size());
  for (const auto& v : models) {
    axis.push_back([v](ScenarioSpec& s) { s.with_timing(v); });
  }
  return axis;
}

std::vector<Mutator> axis_seed(const std::vector<std::uint64_t>& seeds) {
  std::vector<Mutator> axis;
  axis.reserve(seeds.size());
  for (const std::uint64_t v : seeds) {
    axis.push_back([v](ScenarioSpec& s) { s.with_seed(v); });
  }
  return axis;
}

}  // namespace xdrs::exp
