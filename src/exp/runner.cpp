#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include <filesystem>

#include "core/report_io.hpp"
#include "exp/cache.hpp"
#include "exp/lease.hpp"
#include "obs/telemetry.hpp"
#include "stats/json.hpp"
#include "util/file_io.hpp"

namespace xdrs::exp {

namespace {

/// Bump when the shard-file envelope (not the report schema) changes.
constexpr std::uint64_t kShardSchema = 1;

/// Simulates one point with the observability layer on and drops its
/// telemetry sidecar into `dir`.  The report is the same object a plain
/// run_scenario() returns — telemetry is sidecar-only, so downstream
/// artefacts cannot tell the difference (CI-gated).  The sidecar write is
/// best-effort, like cache stores: a full disk never aborts a sweep.
core::RunReport run_with_telemetry(const ScenarioSpec& spec, const std::string& dir) {
  core::RunReport report;
  std::string doc;
  if (spec.topology.multi_rack()) {
    // Fat-tree points carry one topology-owned bundle: a shared registry
    // every ToR's stage timers attach to, plus the per-tier tracks.
    std::unique_ptr<topo::FatTree> ft = materialize_fat_tree(spec);
    ft->enable_telemetry();
    report = ft->run(spec.duration, spec.warmup);
    doc = obs::telemetry_sidecar_json(*ft->telemetry(), spec.key(), spec_hash_hex(spec),
                                      spec.scenario);
  } else {
    std::unique_ptr<core::HybridSwitchFramework> fw = materialize(spec);
    fw->enable_telemetry();
    report = fw->run(spec.duration, spec.warmup);
    doc = obs::telemetry_sidecar_json(*fw->telemetry(), spec.key(), spec_hash_hex(spec),
                                      spec.scenario);
  }
  const std::string hash = spec_hash_hex(spec);
  try {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    util::write_file((std::filesystem::path{dir} / (hash + ".telemetry.json")).string(), doc);
  } catch (const std::exception&) {
  }
  return report;
}

}  // namespace

// ------------------------------------------------------------- ExecutionPlan

WorkSourceSpec ExecutionPlan::resolved_source() const {
  const auto check_shard = [](const ShardOptions& s, const char* field) {
    if (s.count == 0) {
      throw std::invalid_argument{std::string{"ExecutionPlan: "} + field +
                                  ".count must be >= 1 (got 0)"};
    }
    if (s.index >= s.count) {
      throw std::invalid_argument{std::string{"ExecutionPlan: "} + field + ".index " +
                                  std::to_string(s.index) + " not in [0, " +
                                  std::to_string(s.count) + ")"};
    }
  };
  check_shard(shard, "shard");
  const bool legacy_shard = shard.index != 0 || shard.count != 1;

  WorkSourceSpec resolved = source;
  if (resolved.kind == WorkSourceSpec::Kind::kLease) {
    if (legacy_shard) {
      throw std::invalid_argument{
          "ExecutionPlan: shard cannot combine with a lease source — elastic workers claim "
          "points dynamically"};
    }
    if (resolved.lease_dir.empty()) {
      throw std::invalid_argument{"ExecutionPlan: source.lease_dir must not be empty"};
    }
    if (!(resolved.lease_ttl_s > 0.0)) {
      throw std::invalid_argument{"ExecutionPlan: source.lease_ttl_s must be > 0"};
    }
    return resolved;
  }

  check_shard(resolved.shard, "source.shard");
  const bool source_shard = resolved.shard.index != 0 || resolved.shard.count != 1;
  if (legacy_shard && source_shard &&
      (shard.index != resolved.shard.index || shard.count != resolved.shard.count)) {
    throw std::invalid_argument{
        "ExecutionPlan: shard " + std::to_string(shard.index) + "/" +
        std::to_string(shard.count) + " conflicts with source.shard " +
        std::to_string(resolved.shard.index) + "/" + std::to_string(resolved.shard.count)};
  }
  if (legacy_shard) resolved.shard = shard;
  return resolved;
}

// --------------------------------------------------------------- SweepResult

core::RunReport SweepResult::merged() const {
  core::RunReport total;
  for (const auto& p : points) total.merge(p.report);
  return total;
}

namespace {

std::vector<stats::Field> point_fields(const PointResult& p) {
  std::vector<stats::Field> f = p.spec.fields();
  std::vector<stats::Field> r = p.report.fields();
  f.insert(f.end(), std::make_move_iterator(r.begin()), std::make_move_iterator(r.end()));
  return f;
}

}  // namespace

std::string SweepResult::to_csv() const {
  std::string out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto fields = point_fields(points[i]);
    if (i == 0) out += stats::csv_header(fields) + '\n';
    out += stats::csv_row(fields) + '\n';
  }
  return out;
}

std::string SweepResult::to_json() const {
  std::string out{"{\n  \"points\": [\n"};
  for (std::size_t i = 0; i < points.size(); ++i) {
    out += "    " + stats::to_json_object(point_fields(points[i]));
    if (i + 1 < points.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n  \"merged\": " + merged().to_json() + "\n}\n";
  return out;
}

stats::Table SweepResult::table(const std::vector<std::string>& columns) const {
  stats::Table t{columns};
  for (const auto& p : points) {
    const auto fields = point_fields(p);
    auto& row = t.row();
    for (const auto& col : columns) {
      const auto it = std::find_if(fields.begin(), fields.end(),
                                   [&col](const stats::Field& f) { return f.name() == col; });
      row.cell(it == fields.end() ? std::string{"-"} : it->csv());
    }
  }
  return t;
}

// ------------------------------------------------------- sharded reassembly

std::string SweepResult::to_shard_json() const {
  // A well-formed worker result holds its points in strictly ascending grid
  // order within the grid — what both the static hand-out order and the
  // lease compaction produce.  Anything else is corrupted metadata.
  for (std::size_t j = 0; j < points.size(); ++j) {
    if (points[j].index >= grid_size || (j > 0 && points[j].index <= points[j - 1].index)) {
      throw std::invalid_argument{"to_shard_json: result does not match its shard/grid metadata"};
    }
  }
  if (shard.count == 0) {
    throw std::invalid_argument{"to_shard_json: result does not match its shard/grid metadata"};
  }
  std::string out{"{\n  \"sweep_schema\": "};
  out += std::to_string(kShardSchema);
  out += ",\n  \"schema_version\": " + std::to_string(core::RunReport::kSchemaVersion);
  out += ",\n  \"shard_index\": " + std::to_string(shard.index);
  out += ",\n  \"shard_count\": " + std::to_string(shard.count);
  out += ",\n  \"grid_size\": " + std::to_string(grid_size);
  out += ",\n  \"points\": [\n";
  for (std::size_t j = 0; j < points.size(); ++j) {
    const PointResult& p = points[j];
    out += "    {\"index\":" + std::to_string(p.index);
    out += ",\"spec_hash\":\"" + spec_hash_hex(p.spec) + '"';
    out += ",\"key\":\"" + stats::json_escape(p.spec.key()) + '"';
    out += ",\"wall_us\":" + std::to_string(p.wall_us);
    out += ",\"cached\":";
    out += p.cached ? "true" : "false";
    out += ",\"report\":" + core::report_state_json(p.report) + '}';
    if (j + 1 < points.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

SweepResult SweepResult::merge_shards(const std::vector<ScenarioSpec>& grid,
                                      const std::vector<std::string>& shard_jsons) {
  return merge_shards(grid, shard_jsons, nullptr);
}

SweepResult SweepResult::merge_shards(const std::vector<ScenarioSpec>& grid,
                                      const std::vector<std::string>& shard_jsons,
                                      ResultCache* fill_cache) {
  SweepResult result;
  result.grid_size = grid.size();
  result.points.resize(grid.size());
  std::vector<bool> covered(grid.size(), false);

  for (std::size_t s = 0; s < shard_jsons.size(); ++s) {
    const auto fail = [s](const std::string& what) {
      throw std::invalid_argument{"merge_shards: shard " + std::to_string(s) + ": " + what};
    };
    stats::JsonValue doc;
    try {
      doc = stats::parse_json(shard_jsons[s]);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
    if (doc.at("sweep_schema").as_u64() != kShardSchema) fail("unsupported sweep_schema");
    if (doc.at("schema_version").as_u64() != core::RunReport::kSchemaVersion) {
      fail("report schema_version mismatch");
    }
    if (doc.at("grid_size").as_u64() != grid.size()) {
      fail("grid_size " + doc.at("grid_size").number_text() + " != expected grid of " +
           std::to_string(grid.size()));
    }
    for (const stats::JsonValue& entry : doc.at("points").items()) {
      const std::uint64_t index = entry.at("index").as_u64();
      if (index >= grid.size()) fail("point index " + std::to_string(index) + " out of range");
      if (covered[index]) fail("point " + std::to_string(index) + " already covered");
      // The stored hash ties the report to the exact spec the shard ran;
      // comparing against the caller's grid rejects stale shard files after
      // a grid or schema edit.
      if (entry.at("spec_hash").as_str() != spec_hash_hex(grid[index])) {
        fail("point " + std::to_string(index) + " spec hash does not match the grid");
      }
      result.points[index].spec = grid[index];
      result.points[index].index = index;
      try {
        result.points[index].report = core::report_from_state(entry.at("report"));
        // Older shard files (envelope additions are backward compatible)
        // carry no wall time; treat it as unmeasured, not an error.
        if (const stats::JsonValue* wall = entry.find("wall_us")) {
          result.points[index].wall_us = wall->as_i64();
        }
        // Same vintage tolerance for the cached flag (added later still).
        if (const stats::JsonValue* cached = entry.find("cached")) {
          result.points[index].cached = cached->as_bool();
        }
      } catch (const std::invalid_argument& e) {
        fail("point " + std::to_string(index) + ": " + e.what());
      }
      covered[index] = true;
    }
  }

  // Backfill pass for elastic sweeps: a worker killed between computing a
  // point (cache store) and publishing its shard file leaves the report in
  // the shared cache — recover it from there rather than failing the merge.
  if (fill_cache != nullptr) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (covered[i]) continue;
      std::optional<core::RunReport> hit = fill_cache->lookup(grid[i]);
      if (!hit) continue;
      result.points[i].spec = grid[i];
      result.points[i].index = i;
      result.points[i].report = *std::move(hit);
      result.points[i].cached = true;
      covered[i] = true;
    }
  }

  const std::size_t missing =
      static_cast<std::size_t>(std::count(covered.begin(), covered.end(), false));
  if (missing != 0) {
    throw std::invalid_argument{"merge_shards: " + std::to_string(missing) + " of " +
                                std::to_string(grid.size()) + " grid points missing"};
  }
  return result;
}

// ---------------------------------------------------------- ExperimentRunner

namespace {

/// Materialises the plan's work source against one grid.
std::unique_ptr<WorkSource> make_work_source(const WorkSourceSpec& spec,
                                             const std::vector<ScenarioSpec>& grid) {
  if (spec.kind == WorkSourceSpec::Kind::kStatic) {
    return std::make_unique<StaticShardSource>(spec.shard, grid.size());
  }
  std::vector<std::string> hashes;
  hashes.reserve(grid.size());
  for (const ScenarioSpec& s : grid) hashes.push_back(spec_hash_hex(s));
  LeaseOptions lo;
  lo.dir = spec.lease_dir;
  lo.ttl_s = spec.lease_ttl_s;
  return std::make_unique<LeaseWorkSource>(std::move(lo), std::move(hashes));
}

}  // namespace

SweepResult ExperimentRunner::run(const std::vector<ScenarioSpec>& grid) const {
  const WorkSourceSpec source_spec = plan_.resolved_source();

  SweepResult result;
  result.shard =
      source_spec.kind == WorkSourceSpec::Kind::kStatic ? source_spec.shard : ShardOptions{};
  result.grid_size = grid.size();
  if (grid.empty()) return result;

  const std::unique_ptr<WorkSource> source = make_work_source(source_spec, grid);
  // The progress denominator: exact for a static slice, the whole grid for
  // elastic runs (how much THIS worker wins is unknowable up front).
  const std::size_t total_hint = source_spec.kind == WorkSourceSpec::Kind::kStatic
                                     ? source_spec.shard.owned_of(grid.size())
                                     : grid.size();
  if (total_hint == 0) return result;

  // Completion order is nondeterministic (threads, steals), so workers drop
  // results into grid-indexed slots and the tail compacts them in grid
  // order — the artefact bytes can't tell how points were claimed.
  std::vector<PointResult> slots(grid.size());
  std::vector<char> filled(grid.size(), 0);  // char: vector<bool> is not thread-safe
  std::atomic<bool> failed{false};
  std::size_t completed = 0;
  std::mutex mutex;  // guards `completed`, `error` and the progress callback
  std::exception_ptr error;

  const auto work = [&] {
    for (;;) {
      // A failed point aborts the whole sweep: don't burn the remaining
      // grid on the surviving workers just to rethrow afterwards.
      if (failed.load(std::memory_order_relaxed)) return;
      const std::optional<std::size_t> claim = source->next_point();
      if (!claim) return;
      const std::size_t i = *claim;
      PointResult& slot = slots[i];
      slot.spec = grid[i];
      slot.index = i;
      const auto point_began = std::chrono::steady_clock::now();
      try {
        std::optional<core::RunReport> cached;
        if (plan_.cache != nullptr) cached = plan_.cache->lookup(slot.spec);
        if (cached) {
          slot.report = *std::move(cached);
          slot.cached = true;
        } else {
          slot.report = plan_.telemetry_dir.empty()
                            ? run_scenario(slot.spec)
                            : run_with_telemetry(slot.spec, plan_.telemetry_dir);
          if (plan_.cache != nullptr) {
            // Caching is best-effort: a full disk or permission flap on the
            // cache directory must not abort a sweep whose simulations are
            // succeeding.  The cache counts the failure (store_failures).
            // For lease runs the order matters: the store precedes the
            // completion marker, so a completed point's report is always
            // recoverable from the cache even if this process dies now.
            try {
              plan_.cache->store(slot.spec, slot.report);
            } catch (const std::runtime_error&) {
            }
          }
        }
      } catch (...) {
        source->abandon(i);
        failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock{mutex};
        if (!error) error = std::current_exception();
        return;
      }
      slot.wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - point_began)
                         .count();
      // complete() returning false means another worker finished a stolen
      // twin of this claim first; drop our copy so merges stay exactly-once.
      if (source->complete(i, slot.wall_us)) filled[i] = 1;
      if (plan_.progress) {
        const std::lock_guard<std::mutex> lock{mutex};
        plan_.progress(++completed, total_hint, slot.spec);
      }
    }
  };

  unsigned threads = plan_.threads != 0 ? plan_.threads
                                        : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, total_hint));

  if (threads <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(work);
    for (auto& t : pool) t.join();
  }

  result.source_stats = source->stats();
  if (error) std::rethrow_exception(error);

  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (filled[i] != 0) result.points.push_back(std::move(slots[i]));
  }
  return result;
}

// ------------------------------------------------------------------- grids

std::vector<ScenarioSpec> expand(const std::vector<ScenarioSpec>& in,
                                 const std::vector<Mutator>& axis) {
  if (axis.empty()) throw std::invalid_argument{"expand: empty axis"};
  std::vector<ScenarioSpec> out;
  out.reserve(in.size() * axis.size());
  for (const auto& spec : in) {
    for (const auto& mutate : axis) {
      ScenarioSpec s = spec;
      mutate(s);
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<Mutator> axis_ports(const std::vector<std::uint32_t>& values) {
  std::vector<Mutator> axis;
  axis.reserve(values.size());
  for (const std::uint32_t v : values) {
    axis.push_back([v](ScenarioSpec& s) { s.with_ports(v); });
  }
  return axis;
}

std::vector<Mutator> axis_load(const std::vector<double>& values) {
  std::vector<Mutator> axis;
  axis.reserve(values.size());
  for (const double v : values) {
    axis.push_back([v](ScenarioSpec& s) { s.with_load(v); });
  }
  return axis;
}

std::vector<Mutator> axis_matcher(const std::vector<std::string>& specs) {
  std::vector<Mutator> axis;
  axis.reserve(specs.size());
  for (const auto& v : specs) {
    axis.push_back([v](ScenarioSpec& s) { s.with_matcher(v); });
  }
  return axis;
}

std::vector<Mutator> axis_circuit(const std::vector<std::string>& specs) {
  std::vector<Mutator> axis;
  axis.reserve(specs.size());
  for (const auto& v : specs) {
    axis.push_back([v](ScenarioSpec& s) { s.with_circuit(v); });
  }
  return axis;
}

std::vector<Mutator> axis_estimator(const std::vector<std::string>& specs) {
  std::vector<Mutator> axis;
  axis.reserve(specs.size());
  for (const auto& v : specs) {
    axis.push_back([v](ScenarioSpec& s) { s.with_estimator(v); });
  }
  return axis;
}

std::vector<Mutator> axis_timing(const std::vector<std::string>& models) {
  std::vector<Mutator> axis;
  axis.reserve(models.size());
  for (const auto& v : models) {
    axis.push_back([v](ScenarioSpec& s) { s.with_timing(v); });
  }
  return axis;
}

std::vector<Mutator> axis_seed(const std::vector<std::uint64_t>& seeds) {
  std::vector<Mutator> axis;
  axis.reserve(seeds.size());
  for (const std::uint64_t v : seeds) {
    axis.push_back([v](ScenarioSpec& s) { s.with_seed(v); });
  }
  return axis;
}

std::vector<Mutator> axis_racks(const std::vector<std::uint32_t>& values) {
  std::vector<Mutator> axis;
  axis.reserve(values.size());
  for (const std::uint32_t v : values) {
    axis.push_back([v](ScenarioSpec& s) { s.with_racks(v); });
  }
  return axis;
}

std::vector<Mutator> axis_oversubscription(const std::vector<double>& values) {
  std::vector<Mutator> axis;
  axis.reserve(values.size());
  for (const double v : values) {
    axis.push_back([v](ScenarioSpec& s) { s.with_oversubscription(v); });
  }
  return axis;
}

std::vector<Mutator> axis_locality(const std::vector<double>& values) {
  std::vector<Mutator> axis;
  axis.reserve(values.size());
  for (const double v : values) {
    axis.push_back([v](ScenarioSpec& s) { s.with_locality(v); });
  }
  return axis;
}

}  // namespace xdrs::exp
