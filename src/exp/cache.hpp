// Content-addressed result cache for sweep points.
//
// A sweep point is fully determined by its ScenarioSpec (the simulator is
// deterministic), so its RunReport can be cached on disk and reused across
// runs, processes and hosts.  The key is a stable 64-bit FNV-1a hash of the
// spec's serialized identity fields plus RunReport::kSchemaVersion — change
// any axis value, any policy spec, or the report schema and the point gets
// a fresh entry.  One JSON file per point:
//
//   <dir>/<16-hex-digit spec hash>.json
//     { "cache_schema": 1, "schema_version": 2, "spec_hash": "…",
//       "spec": { …ScenarioSpec::fields()… },
//       "report": { …full report state (core/report_io)… } }
//
// lookup() verifies the stored spec object byte-for-byte against the probe
// spec before trusting an entry, so hash collisions and any semantic drift
// in the spec encoding invalidate automatically (counted as `stale`, same
// as schema mismatches and unparseable files).  Writes go through a
// temp-file rename, so concurrent shard processes can share one directory.
//
// Elastic sweeps (exp/lease.hpp) co-locate their lease state in a
// `<dir>/leases/` subdirectory beside the entries; gc() only ever touches
// regular files matching the cache's own `<16-hex>.json[.tmp.*]` naming
// scheme, so lease files are never collected.
#ifndef XDRS_EXP_CACHE_HPP
#define XDRS_EXP_CACHE_HPP

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "exp/scenario.hpp"

namespace xdrs::exp {

/// Stable content hash of one sweep point: FNV-1a 64 over the spec's
/// exhaustive serialized identity (ScenarioSpec::identity_json(), a
/// superset of fields()) and the report schema version.
[[nodiscard]] std::uint64_t spec_hash(const ScenarioSpec& spec);

/// spec_hash() as the canonical 16-hex-digit string used in entry
/// filenames and shard-file "spec_hash" members.
[[nodiscard]] std::string spec_hash_hex(const ScenarioSpec& spec);

/// Running hit/miss accounting of one ResultCache.
struct CacheStats {
  std::uint64_t hits{0};            ///< entry present and valid
  std::uint64_t misses{0};          ///< no entry file
  std::uint64_t stale{0};           ///< entry present but invalid (schema/spec mismatch)
  std::uint64_t stores{0};          ///< entries written
  std::uint64_t store_failures{0};  ///< writes that failed (counted before store() throws)
};

/// What one gc() pass did.
struct GcStats {
  std::uint64_t removed{0};  ///< entries (and orphaned temp files) deleted
  std::uint64_t kept{0};     ///< entries young enough to survive
};

class ResultCache {
 public:
  /// Opens (creating if needed) the cache directory.  Throws
  /// std::runtime_error if the directory cannot be created.
  explicit ResultCache(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  [[nodiscard]] static std::string entry_name(const ScenarioSpec& spec);
  [[nodiscard]] std::string entry_path(const ScenarioSpec& spec) const;

  /// Returns the cached report for `spec`, or nullopt (miss or stale).
  /// Thread-safe; never throws on bad cache contents — a corrupt entry is
  /// just stale.
  [[nodiscard]] std::optional<core::RunReport> lookup(const ScenarioSpec& spec);

  /// Writes/overwrites the entry for `spec` atomically (temp file + rename).
  /// Throws std::runtime_error on I/O failure.
  void store(const ScenarioSpec& spec, const core::RunReport& report);

  /// Evicts entries whose file modification time is older than `keep_days`
  /// days (lookups refresh nothing, so age == time since the point was
  /// stored).  Only files matching the cache's own naming scheme are
  /// touched: "<16 hex>.json" entries and their orphaned
  /// "<16 hex>.json.tmp.*" temp files (crashed writers); anything else in
  /// the directory is left alone.  Unreadable/undeletable files are
  /// skipped, never fatal.
  GcStats gc(double keep_days);

  [[nodiscard]] CacheStats stats() const;

 private:
  /// The one place the "<16-hex-hash>.json" naming scheme lives: lookup(),
  /// store() and entry_path() all go through it, so the scheme cannot
  /// drift between writer and reader.
  [[nodiscard]] std::string path_for(const std::string& hash_hex) const;

  std::string dir_;
  mutable std::mutex mutex_;  // guards stats_; file I/O needs no lock
  CacheStats stats_;
};

}  // namespace xdrs::exp

#endif  // XDRS_EXP_CACHE_HPP
