// The parallel sweep engine.
//
// The simulator is single-threaded by design (determinism beats parallel
// speed for a scheduling study); experiments scale instead by parallelising
// across parameter points.  ExperimentRunner takes a grid of ScenarioSpecs,
// materialises an independent HybridSwitchFramework per point on a pool of
// worker threads, and collects the RunReports *in grid order* — so for a
// fixed grid and seeds, every emitted byte is identical whether the sweep
// ran on 1 thread or 64, and regardless of completion order.
#ifndef XDRS_EXP_RUNNER_HPP
#define XDRS_EXP_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "stats/table.hpp"

namespace xdrs::exp {

struct SweepOptions {
  /// Worker threads; 0 = one per hardware thread.
  unsigned threads{0};
  /// Optional progress callback, invoked after each completed point with
  /// (completed, total, point).  Called from worker threads under a lock;
  /// completion order is nondeterministic, so route it to stderr/logging,
  /// never into result artefacts.
  std::function<void(std::size_t, std::size_t, const ScenarioSpec&)> progress;
};

/// One grid point: the spec that was run and what came back.
struct PointResult {
  ScenarioSpec spec;
  core::RunReport report;
};

/// Results of one sweep, in grid order.
class SweepResult {
 public:
  std::vector<PointResult> points;

  /// Grid totals: every point's report folded into one.
  [[nodiscard]] core::RunReport merged() const;

  /// Deterministic emits.  Columns/keys are the specs' identity fields
  /// followed by the reports' fields; rows are in grid order.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;  ///< {"points":[...],"merged":{...}}

  /// Markdown table of selected columns (by field name) for bench output.
  [[nodiscard]] stats::Table table(const std::vector<std::string>& columns) const;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(SweepOptions opts = {}) : opts_{std::move(opts)} {}

  /// Runs every point of `grid`.  Exceptions thrown by a point (unknown
  /// policy names, config errors) are rethrown on the calling thread after
  /// the pool drains.
  [[nodiscard]] SweepResult run(const std::vector<ScenarioSpec>& grid) const;

 private:
  SweepOptions opts_;
};

// ------------------------------------------------------- grid construction

/// A grid axis: each mutator stamps one axis value onto a spec copy.
using Mutator = std::function<void(ScenarioSpec&)>;

/// Cartesian expansion: every spec in `in` times every mutator in `axis`.
[[nodiscard]] std::vector<ScenarioSpec> expand(const std::vector<ScenarioSpec>& in,
                                               const std::vector<Mutator>& axis);

/// Convenience axes for the common sweep dimensions.
[[nodiscard]] std::vector<Mutator> axis_ports(const std::vector<std::uint32_t>& values);
[[nodiscard]] std::vector<Mutator> axis_load(const std::vector<double>& values);
[[nodiscard]] std::vector<Mutator> axis_matcher(const std::vector<std::string>& specs);
[[nodiscard]] std::vector<Mutator> axis_timing(const std::vector<std::string>& models);
[[nodiscard]] std::vector<Mutator> axis_seed(const std::vector<std::uint64_t>& seeds);

}  // namespace xdrs::exp

#endif  // XDRS_EXP_RUNNER_HPP
