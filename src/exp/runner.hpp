// The parallel sweep engine.
//
// The simulator is single-threaded by design (determinism beats parallel
// speed for a scheduling study); experiments scale instead by parallelising
// across parameter points.  ExperimentRunner takes a grid of ScenarioSpecs,
// materialises an independent HybridSwitchFramework per point on a pool of
// worker threads, and collects the RunReports *in grid order* — so for a
// fixed grid and seeds, every emitted byte is identical whether the sweep
// ran on 1 thread or 64, and regardless of completion order.
//
// Three orthogonal scale-out mechanisms ride on that determinism:
//   * A WorkSource (exp/work_source.hpp) decides which points this process
//     runs: StaticShardSource slices the grid by index (point i belongs to
//     shard i % count), LeaseWorkSource (exp/lease.hpp) lets any number of
//     worker processes claim points dynamically through lease files in a
//     shared directory, stealing from workers that die.
//   * Per-worker results serialize with to_shard_json() and
//     SweepResult::merge_shards() reassembles the full grid-order result,
//     byte-identical to a single-process run however points were claimed.
//   * A ResultCache (exp/cache.hpp) skips points whose reports are already
//     on disk, making iteration on one axis cheap — and backfilling merges
//     when an elastic worker died after computing (cache write) but before
//     publishing its shard file.
#ifndef XDRS_EXP_RUNNER_HPP
#define XDRS_EXP_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/work_source.hpp"
#include "stats/table.hpp"

namespace xdrs::exp {

class ResultCache;

/// Everything that shapes one sweep's execution — threads, work source,
/// cache, telemetry — in one validated value.  (Formerly `SweepOptions`;
/// the alias below keeps existing field-assignment call sites compiling
/// unchanged.)
struct ExecutionPlan {
  /// Worker threads; 0 = one per hardware thread.
  unsigned threads{0};
  /// Legacy grid-slice knob, kept so `plan.shard = {i, n}` call sites work
  /// unchanged; resolved_source() folds it into `source`.  Leave default
  /// when setting `source` directly — a conflicting combination throws.
  ShardOptions shard{};
  /// Which points this process runs and in what order: a static shard
  /// (default: the whole grid) or a lease directory for elastic workers.
  WorkSourceSpec source{};
  /// Optional result cache: points whose reports are cached are not
  /// simulated (cache->stats() says how many), fresh reports are stored
  /// best-effort (a failing cache directory never aborts the sweep).
  ResultCache* cache{nullptr};
  /// When nonempty, every point this process actually simulates runs with
  /// telemetry enabled and writes a `<spec_hash_hex>.telemetry.json`
  /// sidecar (obs::telemetry_sidecar_json) into this directory, created on
  /// demand.  Cache hits write no sidecar — their compute never happened
  /// here.  Sidecars ride BESIDE the result artefacts: reports, cache
  /// entries and shard files are byte-identical with this set or not
  /// (CI-gated), and writes are best-effort like cache stores.
  std::string telemetry_dir;
  /// Optional progress callback, invoked after each completed point with
  /// (completed, total-claimable, point).  Called from worker threads under
  /// a lock; completion order is nondeterministic, so route it to
  /// stderr/logging, never into result artefacts.
  std::function<void(std::size_t, std::size_t, const ScenarioSpec&)> progress;

  /// The single source of truth for execution-plan validation: folds the
  /// legacy `shard` field into `source` and returns the effective spec, or
  /// throws std::invalid_argument naming the bad field (shard.count of 0,
  /// shard.index out of range, empty lease_dir, non-positive lease_ttl_s,
  /// shard combined with a conflicting source).
  [[nodiscard]] WorkSourceSpec resolved_source() const;
};

/// Deprecated name for ExecutionPlan, kept for source compatibility.
using SweepOptions = ExecutionPlan;

/// One grid point: the spec that was run and what came back.
struct PointResult {
  ScenarioSpec spec;
  core::RunReport report;
  /// Index of this point in the full grid; to_shard_json() records it so
  /// merges reassemble grid order no matter which worker claimed what.
  std::size_t index{0};
  /// Wall-clock microseconds this point took in this process (simulation,
  /// or the cache round-trip that replaced it — cached points read as ~0).
  /// Recorded in shard files so merges and `sweepctl status` can report
  /// straggler shards; deliberately NOT part of to_json()/to_csv(), which
  /// must stay byte-identical across thread counts and machines.
  std::int64_t wall_us{0};
  /// True when the report came from the ResultCache instead of a fresh
  /// simulation in this process.  Shard files carry it so `sweepctl status`
  /// can split cache round-trips from real compute when attributing shard
  /// wall time; like wall_us it never enters to_json()/to_csv().
  bool cached{false};
};

/// Results of one sweep: the points this run computed, in grid order.  For
/// an unsharded static run that is the whole grid; for a sharded or
/// lease-claimed run it is the subsequence this worker won (each point
/// carries its grid index).
class SweepResult {
 public:
  std::vector<PointResult> points;
  ShardOptions shard{};
  std::size_t grid_size{0};  ///< full grid size (== points.size() iff complete)
  /// Claim/steal accounting from the run's work source (all-zero for
  /// merged results, which nobody claimed).
  WorkSourceStats source_stats{};

  /// Totals: every held point's report folded into one.
  [[nodiscard]] core::RunReport merged() const;

  /// Deterministic artefact emits.  Columns/keys are the specs' identity
  /// fields followed by the reports' fields; rows are in grid order.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;  ///< {"points":[...],"merged":{...}}

  /// Markdown table of selected columns (by field name) for bench output.
  [[nodiscard]] stats::Table table(const std::vector<std::string>& columns) const;

  // ---- sharded-sweep reassembly -------------------------------------------

  /// Exact-state shard file: every held point's grid index, spec hash and
  /// full report state.  merge_shards() consumes these.
  [[nodiscard]] std::string to_shard_json() const;

  /// Reassembles shard payloads (to_shard_json() outputs) produced from the
  /// same `grid` into one complete result — equal, byte for byte through
  /// to_json()/to_csv(), to what a single-process run of `grid` returns.
  /// Throws std::invalid_argument on schema/grid mismatches, points not in
  /// `grid` (stale shard files), duplicate or missing points.
  [[nodiscard]] static SweepResult merge_shards(const std::vector<ScenarioSpec>& grid,
                                                const std::vector<std::string>& shard_jsons);

  /// Same, but points no shard file covers are filled from `fill_cache`
  /// before the missing-point check — the recovery path for elastic sweeps
  /// where a worker died after computing points (cache stores happen first)
  /// but before publishing its shard file.  Filled points read as cached
  /// with unmeasured wall time; byte-identity of to_json()/to_csv() holds
  /// because cache entries round-trip exact report state.
  [[nodiscard]] static SweepResult merge_shards(const std::vector<ScenarioSpec>& grid,
                                                const std::vector<std::string>& shard_jsons,
                                                ResultCache* fill_cache);
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExecutionPlan plan = {}) : plan_{std::move(plan)} {}

  /// Runs every point of `grid` the plan's work source hands this process.
  /// Exceptions thrown by a point (unknown policy names, config errors) are
  /// rethrown on the calling thread after the pool drains; the claims of
  /// unfinished points are released first.  Throws std::invalid_argument on
  /// malformed plans (ExecutionPlan::resolved_source) and
  /// std::runtime_error when a lease directory cannot be created.
  [[nodiscard]] SweepResult run(const std::vector<ScenarioSpec>& grid) const;

 private:
  ExecutionPlan plan_;
};

// ------------------------------------------------------- grid construction

/// A grid axis: each mutator stamps one axis value onto a spec copy.
using Mutator = std::function<void(ScenarioSpec&)>;

/// Cartesian expansion: every spec in `in` times every mutator in `axis`.
[[nodiscard]] std::vector<ScenarioSpec> expand(const std::vector<ScenarioSpec>& in,
                                               const std::vector<Mutator>& axis);

/// Convenience axes for the common sweep dimensions.
[[nodiscard]] std::vector<Mutator> axis_ports(const std::vector<std::uint32_t>& values);
[[nodiscard]] std::vector<Mutator> axis_load(const std::vector<double>& values);
[[nodiscard]] std::vector<Mutator> axis_matcher(const std::vector<std::string>& specs);
[[nodiscard]] std::vector<Mutator> axis_circuit(const std::vector<std::string>& specs);
[[nodiscard]] std::vector<Mutator> axis_estimator(const std::vector<std::string>& specs);
[[nodiscard]] std::vector<Mutator> axis_timing(const std::vector<std::string>& models);
[[nodiscard]] std::vector<Mutator> axis_seed(const std::vector<std::uint64_t>& seeds);
[[nodiscard]] std::vector<Mutator> axis_racks(const std::vector<std::uint32_t>& values);
[[nodiscard]] std::vector<Mutator> axis_oversubscription(const std::vector<double>& values);
[[nodiscard]] std::vector<Mutator> axis_locality(const std::vector<double>& values);

}  // namespace xdrs::exp

#endif  // XDRS_EXP_RUNNER_HPP
