// The parallel sweep engine.
//
// The simulator is single-threaded by design (determinism beats parallel
// speed for a scheduling study); experiments scale instead by parallelising
// across parameter points.  ExperimentRunner takes a grid of ScenarioSpecs,
// materialises an independent HybridSwitchFramework per point on a pool of
// worker threads, and collects the RunReports *in grid order* — so for a
// fixed grid and seeds, every emitted byte is identical whether the sweep
// ran on 1 thread or 64, and regardless of completion order.
//
// Two orthogonal scale-out mechanisms ride on that determinism:
//   * ShardOptions splits a grid across processes/hosts by index (point i
//     belongs to shard i % count); per-shard results serialize with
//     to_shard_json() and SweepResult::merge_shards() reassembles the full
//     grid-order result, byte-identical to a single-process run.
//   * A ResultCache (exp/cache.hpp) skips points whose reports are already
//     on disk, making iteration on one axis cheap.
#ifndef XDRS_EXP_RUNNER_HPP
#define XDRS_EXP_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "stats/table.hpp"

namespace xdrs::exp {

class ResultCache;

/// Deterministic shard-by-index slice of a grid: this process owns point i
/// iff i % count == index.  The default {0, 1} owns everything.
struct ShardOptions {
  std::size_t index{0};
  std::size_t count{1};

  [[nodiscard]] bool owns(std::size_t i) const noexcept { return i % count == index; }
  /// Points of an n-point grid this shard owns.
  [[nodiscard]] std::size_t owned_of(std::size_t n) const noexcept {
    return n / count + (n % count > index ? 1 : 0);
  }
};

struct SweepOptions {
  /// Worker threads; 0 = one per hardware thread.
  unsigned threads{0};
  /// Grid slice to run (default: the whole grid).
  ShardOptions shard{};
  /// Optional result cache: points whose reports are cached are not
  /// simulated (cache->stats() says how many), fresh reports are stored
  /// best-effort (a failing cache directory never aborts the sweep).
  ResultCache* cache{nullptr};
  /// When nonempty, every point this process actually simulates runs with
  /// telemetry enabled and writes a `<spec_hash_hex>.telemetry.json`
  /// sidecar (obs::telemetry_sidecar_json) into this directory, created on
  /// demand.  Cache hits write no sidecar — their compute never happened
  /// here.  Sidecars ride BESIDE the result artefacts: reports, cache
  /// entries and shard files are byte-identical with this set or not
  /// (CI-gated), and writes are best-effort like cache stores.
  std::string telemetry_dir;
  /// Optional progress callback, invoked after each completed point with
  /// (completed, total-owned, point).  Called from worker threads under a
  /// lock; completion order is nondeterministic, so route it to
  /// stderr/logging, never into result artefacts.
  std::function<void(std::size_t, std::size_t, const ScenarioSpec&)> progress;
};

/// One grid point: the spec that was run and what came back.
struct PointResult {
  ScenarioSpec spec;
  core::RunReport report;
  /// Wall-clock microseconds this point took in this process (simulation,
  /// or the cache round-trip that replaced it — cached points read as ~0).
  /// Recorded in shard files so merges and `sweepctl status` can report
  /// straggler shards; deliberately NOT part of to_json()/to_csv(), which
  /// must stay byte-identical across thread counts and machines.
  std::int64_t wall_us{0};
  /// True when the report came from the ResultCache instead of a fresh
  /// simulation in this process.  Shard files carry it so `sweepctl status`
  /// can split cache round-trips from real compute when attributing shard
  /// wall time; like wall_us it never enters to_json()/to_csv().
  bool cached{false};
};

/// Results of one sweep: the points this run owned, in grid order.  For an
/// unsharded run that is the whole grid; for a sharded run it is the owned
/// subsequence (grid index of points[j] = shard.index + j * shard.count).
class SweepResult {
 public:
  std::vector<PointResult> points;
  ShardOptions shard{};
  std::size_t grid_size{0};  ///< full grid size (== points.size() iff unsharded)

  /// Totals: every owned point's report folded into one.
  [[nodiscard]] core::RunReport merged() const;

  /// Deterministic artefact emits.  Columns/keys are the specs' identity
  /// fields followed by the reports' fields; rows are in grid order.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;  ///< {"points":[...],"merged":{...}}

  /// Markdown table of selected columns (by field name) for bench output.
  [[nodiscard]] stats::Table table(const std::vector<std::string>& columns) const;

  // ---- sharded-sweep reassembly -------------------------------------------

  /// Exact-state shard file: every owned point's grid index, spec hash and
  /// full report state.  merge_shards() consumes these.
  [[nodiscard]] std::string to_shard_json() const;

  /// Reassembles shard payloads (to_shard_json() outputs) produced from the
  /// same `grid` into one complete result — equal, byte for byte through
  /// to_json()/to_csv(), to what a single-process run of `grid` returns.
  /// Throws std::invalid_argument on schema/grid mismatches, points not in
  /// `grid` (stale shard files), duplicate or missing points.
  [[nodiscard]] static SweepResult merge_shards(const std::vector<ScenarioSpec>& grid,
                                                const std::vector<std::string>& shard_jsons);
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(SweepOptions opts = {}) : opts_{std::move(opts)} {}

  /// Runs every point of `grid` this run's shard owns.  Exceptions thrown by
  /// a point (unknown policy names, config errors) are rethrown on the
  /// calling thread after the pool drains.  Throws std::invalid_argument on
  /// malformed ShardOptions (count == 0 or index >= count).
  [[nodiscard]] SweepResult run(const std::vector<ScenarioSpec>& grid) const;

 private:
  SweepOptions opts_;
};

// ------------------------------------------------------- grid construction

/// A grid axis: each mutator stamps one axis value onto a spec copy.
using Mutator = std::function<void(ScenarioSpec&)>;

/// Cartesian expansion: every spec in `in` times every mutator in `axis`.
[[nodiscard]] std::vector<ScenarioSpec> expand(const std::vector<ScenarioSpec>& in,
                                               const std::vector<Mutator>& axis);

/// Convenience axes for the common sweep dimensions.
[[nodiscard]] std::vector<Mutator> axis_ports(const std::vector<std::uint32_t>& values);
[[nodiscard]] std::vector<Mutator> axis_load(const std::vector<double>& values);
[[nodiscard]] std::vector<Mutator> axis_matcher(const std::vector<std::string>& specs);
[[nodiscard]] std::vector<Mutator> axis_circuit(const std::vector<std::string>& specs);
[[nodiscard]] std::vector<Mutator> axis_estimator(const std::vector<std::string>& specs);
[[nodiscard]] std::vector<Mutator> axis_timing(const std::vector<std::string>& models);
[[nodiscard]] std::vector<Mutator> axis_seed(const std::vector<std::uint64_t>& seeds);
[[nodiscard]] std::vector<Mutator> axis_racks(const std::vector<std::uint32_t>& values);
[[nodiscard]] std::vector<Mutator> axis_oversubscription(const std::vector<double>& values);
[[nodiscard]] std::vector<Mutator> axis_locality(const std::vector<double>& values);

}  // namespace xdrs::exp

#endif  // XDRS_EXP_RUNNER_HPP
