#include "exp/work_source.hpp"

#include <stdexcept>
#include <string_view>

#include "stats/serialize.hpp"
#include "util/parse.hpp"

namespace xdrs::exp {

namespace {

bool parse_shard_token(std::string_view token, ShardOptions& shard) {
  const auto slash = token.find('/');
  if (slash == std::string_view::npos) return false;
  // Whole-token, in-range parses only: "0x1/2", "1/2x" and "1/-2" must be
  // rejected, not silently truncated or wrapped to the wrong shard.
  if (!util::parse_number(token.substr(0, slash), shard.index)) return false;
  if (!util::parse_number(token.substr(slash + 1), shard.count)) return false;
  return shard.count >= 1 && shard.index < shard.count;
}

}  // namespace

WorkSourceSpec WorkSourceSpec::parse(const std::string& text) {
  constexpr std::string_view kStaticPrefix = "static:";
  constexpr std::string_view kLeasePrefix = "lease:";
  const std::string_view sv{text};

  if (sv.substr(0, kStaticPrefix.size()) == kStaticPrefix) {
    ShardOptions shard;
    if (!parse_shard_token(sv.substr(kStaticPrefix.size()), shard)) {
      throw std::invalid_argument{"WorkSourceSpec: bad static shard '" + text +
                                  "' (want static:I/N with I < N)"};
    }
    return static_shard(shard);
  }

  if (sv.substr(0, kLeasePrefix.size()) == kLeasePrefix) {
    std::string_view tail = sv.substr(kLeasePrefix.size());
    double ttl = 60.0;
    // The tail after the LAST ':' is the TTL iff it parses as a positive
    // number; otherwise the whole tail is the directory (paths with ':'
    // stay usable as long as the final segment is not numeric).
    const auto colon = tail.rfind(':');
    if (colon != std::string_view::npos) {
      double parsed = 0.0;
      if (util::parse_number(tail.substr(colon + 1), parsed)) {
        if (!(parsed > 0.0)) {
          throw std::invalid_argument{"WorkSourceSpec: lease TTL must be > 0 in '" + text + "'"};
        }
        ttl = parsed;
        tail = tail.substr(0, colon);
      }
    }
    if (tail.empty()) {
      throw std::invalid_argument{"WorkSourceSpec: empty lease directory in '" + text +
                                  "' (want lease:DIR[:TTL_SECONDS])"};
    }
    return lease(std::string{tail}, ttl);
  }

  throw std::invalid_argument{"WorkSourceSpec: unknown source '" + text +
                              "' (want static:I/N or lease:DIR[:TTL_SECONDS])"};
}

std::string WorkSourceSpec::describe() const {
  if (kind == Kind::kStatic) {
    return "static:" + std::to_string(shard.index) + "/" + std::to_string(shard.count);
  }
  return "lease:" + lease_dir + " (ttl " + stats::format_double(lease_ttl_s) + "s)";
}

}  // namespace xdrs::exp
