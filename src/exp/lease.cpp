#include "exp/lease.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string_view>
#include <utility>

#include <unistd.h>

#include "stats/json.hpp"
#include "stats/serialize.hpp"
#include "util/file_io.hpp"

namespace xdrs::exp {

namespace fs = std::filesystem;

namespace {

/// Bump when the lease/done/gen file format changes.
constexpr std::uint64_t kLeaseSchema = 1;

constexpr std::string_view kLeaseSuffix = ".lease";
constexpr std::string_view kDoneSuffix = ".done";
constexpr std::string_view kGenSuffix = ".gen";

std::string default_owner() {
  char host[256] = "host";
  // gethostname may leave the buffer unterminated on truncation.
  if (::gethostname(host, sizeof host) != 0) host[0] = '\0';
  host[sizeof host - 1] = '\0';
  return std::string{host[0] != '\0' ? host : "host"} + ":" + std::to_string(::getpid()) + ":" +
         util::unique_tmp_token();
}

std::string lease_json(const std::string& owner, const std::string& hash, std::uint64_t attempt) {
  return "{\"lease_schema\":" + std::to_string(kLeaseSchema) + ",\"spec_hash\":\"" + hash +
         "\",\"owner\":\"" + stats::json_escape(owner) +
         "\",\"attempt\":" + std::to_string(attempt) + "}\n";
}

std::string done_json(const std::string& owner, const std::string& hash, std::uint64_t attempt,
                      std::int64_t wall_us) {
  return "{\"lease_schema\":" + std::to_string(kLeaseSchema) + ",\"spec_hash\":\"" + hash +
         "\",\"owner\":\"" + stats::json_escape(owner) +
         "\",\"attempt\":" + std::to_string(attempt) + ",\"wall_us\":" + std::to_string(wall_us) +
         "}\n";
}

std::string gen_json(std::uint64_t attempt) {
  return "{\"lease_schema\":" + std::to_string(kLeaseSchema) +
         ",\"attempt\":" + std::to_string(attempt) + "}\n";
}

/// Best-effort read of one numeric/string field pair from a lease-family
/// file.  Half-written or vanished files are normal under concurrency —
/// callers get defaults, never exceptions.
struct LeaseFileFields {
  std::uint64_t attempt{1};
  std::string owner;
};

LeaseFileFields read_fields(const std::string& path) {
  LeaseFileFields out;
  const std::optional<std::string> raw = util::read_file(path);
  if (!raw) return out;
  try {
    const stats::JsonValue doc = stats::parse_json(*raw);
    if (const stats::JsonValue* attempt = doc.find("attempt")) out.attempt = attempt->as_u64();
    if (const stats::JsonValue* owner = doc.find("owner")) out.owner = owner->as_str();
  } catch (const std::invalid_argument&) {
  }
  return out;
}

/// Age of `path` in seconds against this host's view of the file clock;
/// nullopt when the file is gone (or unreadable — treat as "not stale",
/// somebody may be mid-publish).
std::optional<double> age_seconds(const std::string& path) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return std::nullopt;
  const auto now = fs::file_time_type::clock::now();
  return std::chrono::duration_cast<std::chrono::duration<double>>(now - mtime).count();
}

/// Atomic publish-by-link: writes a unique temp beside `target`, links it
/// into place, removes the temp.  Returns false when the target already
/// exists (a concurrent publisher won) or on I/O failure, with
/// `target_existed` telling the two apart.
bool publish_exclusive(const std::string& target, const std::string& content,
                       bool& target_existed) {
  target_existed = false;
  const std::string tmp = target + ".tmp." + util::unique_tmp_token();
  try {
    util::write_file(tmp, content);
  } catch (const std::runtime_error&) {
    return false;
  }
  std::error_code ec;
  fs::create_hard_link(tmp, target, ec);
  std::error_code ignore;
  fs::remove(tmp, ignore);
  if (!ec) return true;
  target_existed = fs::exists(target, ignore);
  return false;
}

/// Atomic overwrite (temp + rename) for the generation file, where last
/// writer wins by design: only the thief that won the steal rename writes.
void publish_overwrite(const std::string& target, const std::string& content) {
  const std::string tmp = target + ".tmp." + util::unique_tmp_token();
  try {
    util::write_file(tmp, content);
  } catch (const std::runtime_error&) {
    return;
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) fs::remove(tmp, ec);
}

}  // namespace

LeaseWorkSource::LeaseWorkSource(LeaseOptions opts, std::vector<std::string> point_hashes)
    : opts_{std::move(opts)},
      hashes_{std::move(point_hashes)},
      state_(hashes_.size(), PointState::kPending) {
  if (opts_.dir.empty()) throw std::runtime_error{"LeaseWorkSource: empty directory"};
  if (!(opts_.ttl_s > 0.0)) throw std::runtime_error{"LeaseWorkSource: ttl_s must be > 0"};
  if (opts_.owner.empty()) opts_.owner = default_owner();
  lease_dir_ = (fs::path{opts_.dir} / "leases").string();
  std::error_code ec;
  fs::create_directories(lease_dir_, ec);
  if (ec || !fs::is_directory(lease_dir_)) {
    throw std::runtime_error{"LeaseWorkSource: cannot create '" + lease_dir_ + "'"};
  }
  if (opts_.heartbeat) heartbeat_ = std::thread{[this] { heartbeat_loop(); }};
}

LeaseWorkSource::~LeaseWorkSource() {
  {
    const std::lock_guard<std::mutex> lock{wait_mutex_};
    stopping_ = true;
  }
  wait_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  if (!opts_.release_on_exit) return;
  // Orderly exit releases unfinished claims so other workers pick them up
  // immediately instead of after a TTL.  (A crashed worker never gets
  // here — that is exactly what the TTL requeue is for.)
  const std::lock_guard<std::mutex> lock{mutex_};
  for (const auto& [i, attempt] : attempts_) {
    if (state_[i] == PointState::kOurs) release_lease(i);
  }
}

std::string LeaseWorkSource::lease_path(std::size_t i) const {
  return (fs::path{lease_dir_} / (hashes_[i] + std::string{kLeaseSuffix})).string();
}
std::string LeaseWorkSource::done_path(std::size_t i) const {
  return (fs::path{lease_dir_} / (hashes_[i] + std::string{kDoneSuffix})).string();
}
std::string LeaseWorkSource::gen_path(std::size_t i) const {
  return (fs::path{lease_dir_} / (hashes_[i] + std::string{kGenSuffix})).string();
}

bool LeaseWorkSource::steal(std::size_t i) {
  const std::string lease = lease_path(i);
  const std::string away = lease + ".stale." + util::unique_tmp_token();
  std::error_code ec;
  fs::rename(lease, away, ec);
  if (ec) return false;  // another worker stole it, or the owner completed
  // We won the steal: bump the generation so whoever claims next (us
  // included) records this as a requeue attempt.
  const std::uint64_t prev = read_fields(away).attempt;
  publish_overwrite(gen_path(i), gen_json(prev + 1));
  fs::remove(away, ec);
  return true;
}

bool LeaseWorkSource::claim(std::size_t i) {
  const std::uint64_t attempt = std::max<std::uint64_t>(read_fields(gen_path(i)).attempt, 1);
  bool existed = false;
  if (!publish_exclusive(lease_path(i), lease_json(opts_.owner, hashes_[i], attempt), existed)) {
    return false;  // lost the claim race (or I/O trouble — either way, skip)
  }
  attempts_[i] = attempt;
  return true;
}

void LeaseWorkSource::release_lease(std::size_t i) {
  const std::string lease = lease_path(i);
  // Only remove a lease that is still ours: after a steal, the file at this
  // path is the thief's fresh claim and must survive.
  if (read_fields(lease).owner != opts_.owner) return;
  std::error_code ec;
  fs::remove(lease, ec);
}

std::optional<std::size_t> LeaseWorkSource::try_next() {
  const std::lock_guard<std::mutex> lock{mutex_};
  const std::size_t n = hashes_.size();
  std::size_t pending = 0;
  std::error_code ec;
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (cursor_ + step) % n;
    PointState& st = state_[i];
    if (st == PointState::kDone) continue;
    if (st == PointState::kOurs) {
      ++pending;
      continue;
    }
    if (fs::exists(done_path(i), ec)) {
      st = PointState::kDone;
      ++stats_.already_done;
      // Janitor: a worker killed between publishing `done` and removing its
      // lease leaves an orphan claim; nobody will ever refresh or need it.
      if (fs::exists(lease_path(i), ec)) fs::remove(lease_path(i), ec);
      continue;
    }
    if (fs::exists(lease_path(i), ec)) {
      const std::optional<double> age = age_seconds(lease_path(i));
      if (!age || *age <= opts_.ttl_s) {
        ++pending;  // live claim (or mid-publish) — someone else's point, for now
        continue;
      }
      if (!steal(i)) {
        ++pending;  // another worker beat us to the steal
        continue;
      }
      ++stats_.requeued;
    }
    if (claim(i)) {
      st = PointState::kOurs;
      ++stats_.claimed;
      cursor_ = (i + 1) % n;
      return i;
    }
    ++pending;  // lost the claim race this round
  }
  exhausted_ = pending == 0;
  return std::nullopt;
}

std::optional<std::size_t> LeaseWorkSource::next_point() {
  const double poll = opts_.poll_s > 0.0 ? opts_.poll_s
                                         : std::clamp(opts_.ttl_s / 4.0, 0.05, 1.0);
  const auto period = std::chrono::duration<double>{poll};
  for (;;) {
    if (std::optional<std::size_t> i = try_next()) return i;
    if (exhausted()) return std::nullopt;
    // Everything still pending is leased to other workers: wait for one of
    // them to finish (we will see the done marker) or die (we will see the
    // lease go stale and requeue it).
    std::unique_lock<std::mutex> lock{wait_mutex_};
    wait_cv_.wait_for(lock, period, [this] { return stopping_; });
    if (stopping_) return std::nullopt;
  }
}

bool LeaseWorkSource::complete(std::size_t index, std::int64_t wall_us) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (index >= state_.size() || state_[index] != PointState::kOurs) return false;
  const auto it = attempts_.find(index);
  const std::uint64_t attempt = it != attempts_.end() ? it->second : 1;
  bool existed = false;
  const bool published = publish_exclusive(
      done_path(index), done_json(opts_.owner, hashes_[index], attempt, wall_us), existed);
  // `existed` means a stolen twin of this claim finished first — our copy
  // of the result must be dropped so the merge stays exactly-once.  A plain
  // I/O failure (disk full) is NOT a loss: our result is the only one, the
  // caller keeps it, and the missing marker merely risks recomputation.
  const bool lost = !published && existed;
  if (published) {
    std::error_code ec;
    fs::remove(gen_path(index), ec);
  }
  release_lease(index);
  state_[index] = PointState::kDone;
  if (it != attempts_.end()) attempts_.erase(it);
  if (lost) {
    ++stats_.lost;
  } else {
    ++stats_.completed;
  }
  return !lost;
}

void LeaseWorkSource::abandon(std::size_t index) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (index >= state_.size() || state_[index] != PointState::kOurs) return;
  release_lease(index);
  state_[index] = PointState::kPending;
  attempts_.erase(index);
}

std::size_t LeaseWorkSource::requeue_stale() {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::size_t requeued = 0;
  std::error_code ec;
  for (std::size_t i = 0; i < hashes_.size(); ++i) {
    if (state_[i] != PointState::kPending) continue;
    if (fs::exists(done_path(i), ec)) {
      state_[i] = PointState::kDone;
      ++stats_.already_done;
      if (fs::exists(lease_path(i), ec)) fs::remove(lease_path(i), ec);
      continue;
    }
    if (!fs::exists(lease_path(i), ec)) continue;
    const std::optional<double> age = age_seconds(lease_path(i));
    if (!age || *age <= opts_.ttl_s) continue;
    if (steal(i)) {
      ++requeued;
      ++stats_.requeued;
    }
  }
  return requeued;
}

WorkSourceStats LeaseWorkSource::stats() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

bool LeaseWorkSource::exhausted() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return exhausted_;
}

void LeaseWorkSource::heartbeat_loop() {
  // Refresh well inside the TTL so a healthy worker's claim can never look
  // stale, even with a scheduling hiccup or NFS attribute-cache lag.
  const auto period =
      std::chrono::duration<double>{std::clamp(opts_.ttl_s / 3.0, 0.01, 10.0)};
  std::unique_lock<std::mutex> lock{wait_mutex_};
  while (!stopping_) {
    if (wait_cv_.wait_for(lock, period, [this] { return stopping_; })) return;
    lock.unlock();
    {
      const std::lock_guard<std::mutex> state_lock{mutex_};
      const auto now = fs::file_time_type::clock::now();
      for (const auto& [i, attempt] : attempts_) {
        if (state_[i] != PointState::kOurs) continue;
        std::error_code ec;
        fs::last_write_time(lease_path(i), now, ec);
      }
    }
    lock.lock();
  }
}

// ----------------------------------------------------------- status scans

LeaseScan scan_leases(const std::string& dir, const std::vector<std::string>& point_hashes,
                      double ttl_s) {
  const fs::path base = fs::path{dir} / "leases";
  LeaseScan scan;
  scan.points.reserve(point_hashes.size());
  std::error_code ec;
  for (std::size_t i = 0; i < point_hashes.size(); ++i) {
    LeaseScan::Point p;
    p.index = i;
    const std::string done = (base / (point_hashes[i] + std::string{kDoneSuffix})).string();
    const std::string lease = (base / (point_hashes[i] + std::string{kLeaseSuffix})).string();
    const std::string gen = (base / (point_hashes[i] + std::string{kGenSuffix})).string();
    if (fs::exists(done, ec)) {
      const LeaseFileFields f = read_fields(done);
      p.state = LeaseScan::State::kDone;
      p.attempt = f.attempt;
      p.owner = f.owner;
      ++scan.done;
    } else if (fs::exists(lease, ec)) {
      const LeaseFileFields f = read_fields(lease);
      const std::optional<double> age = age_seconds(lease);
      p.state = (!age || *age <= ttl_s) ? LeaseScan::State::kLive : LeaseScan::State::kStale;
      p.attempt = f.attempt;
      p.owner = f.owner;
      ++(p.state == LeaseScan::State::kLive ? scan.live : scan.stale);
    } else {
      p.state = LeaseScan::State::kUnclaimed;
      // An unclaimed point can still have been requeued: the generation
      // survives between a steal and the next claim.
      if (fs::exists(gen, ec)) p.attempt = read_fields(gen).attempt;
      ++scan.unclaimed;
    }
    if (p.attempt > 1) ++scan.requeued;
    scan.points.push_back(std::move(p));
  }
  return scan;
}

std::map<std::string, std::int64_t> scan_done_walls(const std::string& dir) {
  std::map<std::string, std::int64_t> walls;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator{fs::path{dir} / "leases", ec}) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 16 + kDoneSuffix.size() ||
        std::string_view{name}.substr(16) != kDoneSuffix) {
      continue;
    }
    const std::optional<std::string> raw = util::read_file(entry.path().string());
    if (!raw) continue;
    try {
      const stats::JsonValue doc = stats::parse_json(*raw);
      const stats::JsonValue* wall = doc.find("wall_us");
      const stats::JsonValue* hash = doc.find("spec_hash");
      if (wall == nullptr || hash == nullptr) continue;
      if (wall->as_i64() > 0) walls[hash->as_str()] = wall->as_i64();
    } catch (const std::invalid_argument&) {
    }
  }
  return walls;
}

}  // namespace xdrs::exp
