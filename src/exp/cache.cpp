#include "exp/cache.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <ratio>
#include <stdexcept>
#include <string_view>

#include "core/report_io.hpp"
#include "stats/json.hpp"
#include "stats/serialize.hpp"
#include "util/file_io.hpp"
#include "util/hash.hpp"

namespace xdrs::exp {

namespace {

using util::hex16;

/// Bump when the cache entry envelope (not the report schema) changes.
constexpr std::uint64_t kCacheSchema = 1;

/// Hash of an already-rendered identity, so callers that need both the
/// rendering and the hash (lookup, store) build the identity once —
/// identity_json() walks every config knob and workload, and for trace
/// specs probes the digest cache, so repeated renders are pure waste.
std::uint64_t hash_of_identity(const std::string& identity) {
  std::uint64_t h = util::fnv1a(identity);
  h = util::fnv1a(std::string_view{"\0schema=", 8}, h);
  h = util::fnv1a(std::to_string(core::RunReport::kSchemaVersion), h);
  return h;
}

}  // namespace

std::uint64_t spec_hash(const ScenarioSpec& spec) {
  return hash_of_identity(spec.identity_json());
}

std::string spec_hash_hex(const ScenarioSpec& spec) { return hex16(spec_hash(spec)); }

ResultCache::ResultCache(std::string dir) : dir_{std::move(dir)} {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error{"ResultCache: cannot create directory '" + dir_ + "'"};
  }
}

std::string ResultCache::entry_name(const ScenarioSpec& spec) {
  return hex16(spec_hash(spec)) + ".json";
}

std::string ResultCache::path_for(const std::string& hash_hex) const {
  return (std::filesystem::path{dir_} / (hash_hex + ".json")).string();
}

std::string ResultCache::entry_path(const ScenarioSpec& spec) const {
  return path_for(hex16(spec_hash(spec)));
}

std::optional<core::RunReport> ResultCache::lookup(const ScenarioSpec& spec) {
  const auto bump = [this](std::uint64_t CacheStats::* counter) {
    const std::lock_guard<std::mutex> lock{mutex_};
    ++(stats_.*counter);
  };

  const std::string identity = spec.identity_json();
  const std::optional<std::string> raw =
      util::read_file(path_for(hex16(hash_of_identity(identity))));
  if (!raw) {
    bump(&CacheStats::misses);
    return std::nullopt;
  }
  try {
    const stats::JsonValue entry = stats::parse_json(*raw);
    if (entry.at("cache_schema").as_u64() != kCacheSchema) throw std::invalid_argument{"schema"};
    // Verify the stored identity byte-for-byte against the probe spec: this
    // catches FNV collisions and any change to what identity_json encodes
    // (policy-stack and config edits included) without trusting the hash
    // alone.
    if (entry.at("spec").dump() != identity) {
      throw std::invalid_argument{"spec mismatch"};
    }
    core::RunReport report = core::report_from_state(entry.at("report"));
    bump(&CacheStats::hits);
    return report;
  } catch (const std::invalid_argument&) {
    bump(&CacheStats::stale);
    return std::nullopt;
  }
}

void ResultCache::store(const ScenarioSpec& spec, const core::RunReport& report) {
  const std::string identity = spec.identity_json();
  const std::string hash_hex = hex16(hash_of_identity(identity));

  std::string entry{"{\"cache_schema\":"};
  entry += std::to_string(kCacheSchema);
  entry += ",\"schema_version\":" + std::to_string(core::RunReport::kSchemaVersion);
  entry += ",\"spec_hash\":\"" + hash_hex + '"';
  entry += ",\"spec\":" + identity;
  entry += ",\"report\":" + core::report_state_json(report);
  entry += "}\n";

  const std::string path = path_for(hash_hex);
  // Unique temp name per writer so concurrent threads and shard processes
  // sharing the directory never interleave; rename() is atomic within a
  // filesystem.
  const std::string tmp = path + ".tmp." + util::unique_tmp_token();
  const auto store_failed = [this, &tmp](const std::string& what) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      ++stats_.store_failures;
    }
    throw std::runtime_error{"ResultCache: " + what};
  };
  try {
    util::write_file(tmp, entry);
  } catch (const std::runtime_error& e) {
    store_failed(e.what());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) store_failed("cannot publish '" + path + "'");
  const std::lock_guard<std::mutex> lock{mutex_};
  ++stats_.stores;
}

namespace {

/// True for names the cache itself writes: "<16 hex>.json" entries and
/// "<16 hex>.json.tmp.<16 hex>" temp files a crashed writer left behind.
/// gc() must never touch anything else a user may have put in the
/// directory.
bool is_cache_file(const std::string& name, bool& is_temp) {
  const auto is_hex16 = [](std::string_view s) {
    if (s.size() != 16) return false;
    for (const char c : s) {
      if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
    }
    return true;
  };
  constexpr std::string_view kJson = ".json";
  constexpr std::string_view kTmp = ".json.tmp.";
  if (name.size() == 16 + kJson.size() && name.substr(16) == kJson) {
    is_temp = false;
    return is_hex16(std::string_view{name}.substr(0, 16));
  }
  if (name.size() == 16 + kTmp.size() + 16 && name.substr(16, kTmp.size()) == kTmp) {
    is_temp = true;
    return is_hex16(std::string_view{name}.substr(0, 16)) &&
           is_hex16(std::string_view{name}.substr(16 + kTmp.size()));
  }
  return false;
}

}  // namespace

GcStats ResultCache::gc(double keep_days) {
  if (!(keep_days >= 0.0)) throw std::invalid_argument{"ResultCache::gc: keep_days must be >= 0"};
  const auto now = std::filesystem::file_time_type::clock::now();
  // Ages are compared in floating-point days: casting a huge keep_days into
  // the file clock's duration would overflow (UB) and wrap the cutoff into
  // the future, turning "keep everything" into "delete everything".
  using FpDays = std::chrono::duration<double, std::ratio<86400>>;

  GcStats gcs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator{dir_, ec}) {
    bool is_temp = false;
    if (!entry.is_regular_file(ec) || !is_cache_file(entry.path().filename().string(), is_temp)) {
      continue;
    }
    const auto mtime = std::filesystem::last_write_time(entry.path(), ec);
    if (ec) continue;
    if (std::chrono::duration_cast<FpDays>(now - mtime).count() <= keep_days) {
      if (!is_temp) ++gcs.kept;  // live temp files are another writer's business
      continue;
    }
    if (std::filesystem::remove(entry.path(), ec) && !ec) ++gcs.removed;
  }
  return gcs;
}

CacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

}  // namespace xdrs::exp
