#include "exp/cache.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <random>
#include <stdexcept>

#include "core/report_io.hpp"
#include "stats/json.hpp"
#include "stats/serialize.hpp"
#include "util/file_io.hpp"

namespace xdrs::exp {

namespace {

/// Bump when the cache entry envelope (not the report schema) changes.
constexpr std::uint64_t kCacheSchema = 1;

void fnv1a_mix(std::uint64_t& h, std::string_view bytes) noexcept {
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::uint64_t spec_hash(const ScenarioSpec& spec) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  fnv1a_mix(h, spec.identity_json());
  fnv1a_mix(h, std::string_view{"\0schema=", 8});
  fnv1a_mix(h, std::to_string(core::RunReport::kSchemaVersion));
  return h;
}

std::string spec_hash_hex(const ScenarioSpec& spec) { return hex16(spec_hash(spec)); }

ResultCache::ResultCache(std::string dir) : dir_{std::move(dir)} {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error{"ResultCache: cannot create directory '" + dir_ + "'"};
  }
}

std::string ResultCache::entry_name(const ScenarioSpec& spec) {
  return hex16(spec_hash(spec)) + ".json";
}

std::string ResultCache::entry_path(const ScenarioSpec& spec) const {
  return (std::filesystem::path{dir_} / entry_name(spec)).string();
}

std::optional<core::RunReport> ResultCache::lookup(const ScenarioSpec& spec) {
  const auto bump = [this](std::uint64_t CacheStats::* counter) {
    const std::lock_guard<std::mutex> lock{mutex_};
    ++(stats_.*counter);
  };

  const std::optional<std::string> raw = util::read_file(entry_path(spec));
  if (!raw) {
    bump(&CacheStats::misses);
    return std::nullopt;
  }
  try {
    const stats::JsonValue entry = stats::parse_json(*raw);
    if (entry.at("cache_schema").as_u64() != kCacheSchema) throw std::invalid_argument{"schema"};
    // Verify the stored identity byte-for-byte against the probe spec: this
    // catches FNV collisions and any change to what identity_json encodes
    // (policy-stack and config edits included) without trusting the hash
    // alone.
    if (entry.at("spec").dump() != spec.identity_json()) {
      throw std::invalid_argument{"spec mismatch"};
    }
    core::RunReport report = core::report_from_state(entry.at("report"));
    bump(&CacheStats::hits);
    return report;
  } catch (const std::invalid_argument&) {
    bump(&CacheStats::stale);
    return std::nullopt;
  }
}

void ResultCache::store(const ScenarioSpec& spec, const core::RunReport& report) {
  std::string entry{"{\"cache_schema\":"};
  entry += std::to_string(kCacheSchema);
  entry += ",\"schema_version\":" + std::to_string(core::RunReport::kSchemaVersion);
  entry += ",\"spec_hash\":\"" + hex16(spec_hash(spec)) + '"';
  entry += ",\"spec\":" + spec.identity_json();
  entry += ",\"report\":" + core::report_state_json(report);
  entry += "}\n";

  const std::string path = entry_path(spec);
  // Unique temp name per writer so concurrent threads and shard processes
  // sharing the directory never interleave; rename() is atomic within a
  // filesystem.
  static std::atomic<std::uint64_t> tmp_seq{std::random_device{}()};
  const std::string tmp = path + ".tmp." + hex16(tmp_seq.fetch_add(1));
  const auto store_failed = [this, &tmp](const std::string& what) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      ++stats_.store_failures;
    }
    throw std::runtime_error{"ResultCache: " + what};
  };
  try {
    util::write_file(tmp, entry);
  } catch (const std::runtime_error& e) {
    store_failed(e.what());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) store_failed("cannot publish '" + path + "'");
  const std::lock_guard<std::mutex> lock{mutex_};
  ++stats_.stores;
}

CacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

}  // namespace xdrs::exp
