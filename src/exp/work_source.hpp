// Pluggable distribution of sweep points to workers.
//
// ExperimentRunner used to hard-code static shard-by-index assignment
// (point i belongs to shard i % count), which lets one slow shard gate a
// whole sweep — `sweepctl status` measures exactly that imbalance.  The
// assignment decision now lives behind WorkSource: the runner's worker
// threads ask next_point() for grid indices until the source runs dry and
// report complete(i) when a point's results are in; the source decides
// which worker gets what, and when.
//
//   StaticShardSource   reproduces the ShardOptions-modulo loop bit for
//                       bit: same indices, same hand-out order.
//   LeaseWorkSource     (exp/lease.hpp) dynamic work stealing: any number
//                       of worker processes atomically claim points via
//                       lease files in a shared directory, with
//                       heartbeat-stamped leases so points whose worker
//                       died are requeued after a TTL.
//
// WorkSourceSpec is the value-type description of a source ("static:1/4",
// "lease:cache-dir:30") that ExecutionPlan carries and the runner turns
// into a live source per run — sources themselves are stateful and bound
// to one grid.
#ifndef XDRS_EXP_WORK_SOURCE_HPP
#define XDRS_EXP_WORK_SOURCE_HPP

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace xdrs::exp {

/// Deterministic shard-by-index slice of a grid: this process owns point i
/// iff i % count == index.  The default {0, 1} owns everything.
struct ShardOptions {
  std::size_t index{0};
  std::size_t count{1};

  [[nodiscard]] bool owns(std::size_t i) const noexcept { return i % count == index; }
  /// Points of an n-point grid this shard owns.
  [[nodiscard]] std::size_t owned_of(std::size_t n) const noexcept {
    return n / count + (n % count > index ? 1 : 0);
  }
};

/// Running accounting of one WorkSource over one run.
struct WorkSourceStats {
  std::uint64_t claimed{0};       ///< points this worker claimed
  std::uint64_t completed{0};     ///< claims this worker completed first
  std::uint64_t requeued{0};      ///< stale leases this worker detected and requeued
  std::uint64_t already_done{0};  ///< points another worker had completed
  std::uint64_t lost{0};          ///< own completions that lost a requeue race
};

/// Hands grid indices to worker threads.  Implementations must be safe to
/// call from many threads of ONE process; cross-process coordination (the
/// lease source) goes through the filesystem.
class WorkSource {
 public:
  virtual ~WorkSource() = default;

  /// Claims the next grid index this worker should run.  May block
  /// (polling) while other workers hold claims that could yet expire;
  /// returns nullopt only when every remaining point is complete or
  /// permanently out of this worker's reach (static: outside its shard).
  [[nodiscard]] virtual std::optional<std::size_t> next_point() = 0;

  /// Marks a claimed point complete; `wall_us` is the wall-clock cost of
  /// computing it (recorded for fleet sizing; 0 = unmeasured).  Returns
  /// false when another worker completed the point first — the caller must
  /// drop its duplicate result so merges stay exactly-once.
  virtual bool complete(std::size_t index, std::int64_t wall_us) = 0;

  /// Releases a claim without completing it (failure path): the point
  /// becomes immediately claimable again.
  virtual void abandon(std::size_t index) = 0;

  /// Scans for claims whose worker died (lease TTL expired) and requeues
  /// them; returns how many.  next_point() requeues implicitly while
  /// polling; the explicit hook exists for tooling and tests.
  virtual std::size_t requeue_stale() = 0;

  [[nodiscard]] virtual WorkSourceStats stats() const = 0;
};

/// The classic static split, as a WorkSource: hands out the owned indices
/// shard.index, shard.index + count, ... in exactly the order the old
/// ShardOptions-modulo loop did, so sharded artefacts stay byte-identical.
class StaticShardSource final : public WorkSource {
 public:
  StaticShardSource(ShardOptions shard, std::size_t grid_size) noexcept
      : shard_{shard}, owned_{shard.owned_of(grid_size)} {}

  [[nodiscard]] std::optional<std::size_t> next_point() override {
    const std::size_t j = next_.fetch_add(1, std::memory_order_relaxed);
    if (j >= owned_) return std::nullopt;
    return shard_.index + j * shard_.count;
  }
  bool complete(std::size_t, std::int64_t) override {
    completed_.fetch_add(1, std::memory_order_relaxed);
    return true;  // nobody else can own a static slice's points
  }
  void abandon(std::size_t) override {}
  std::size_t requeue_stale() override { return 0; }
  [[nodiscard]] WorkSourceStats stats() const override {
    WorkSourceStats s;
    s.completed = completed_.load(std::memory_order_relaxed);
    s.claimed = s.completed;
    return s;
  }

 private:
  ShardOptions shard_;
  std::size_t owned_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> completed_{0};
};

/// Value-type description of a work source, carried by ExecutionPlan and
/// parseable from the `sweepctl --source` flag syntax.
struct WorkSourceSpec {
  enum class Kind { kStatic, kLease };

  Kind kind{Kind::kStatic};
  ShardOptions shard{};      ///< kStatic: the slice to run
  std::string lease_dir;     ///< kLease: shared directory (leases live in <dir>/leases)
  double lease_ttl_s{60.0};  ///< kLease: heartbeat TTL before a claim counts as dead

  [[nodiscard]] static WorkSourceSpec static_shard(ShardOptions shard) noexcept {
    WorkSourceSpec s;
    s.shard = shard;
    return s;
  }
  [[nodiscard]] static WorkSourceSpec lease(std::string dir, double ttl_s = 60.0) {
    WorkSourceSpec s;
    s.kind = Kind::kLease;
    s.lease_dir = std::move(dir);
    s.lease_ttl_s = ttl_s;
    return s;
  }

  /// Parses the CLI syntax: "static:I/N" (I < N) or "lease:DIR[:TTL_S]"
  /// (TTL in seconds; the tail after the last ':' is the TTL iff it parses
  /// as a positive number).  Throws std::invalid_argument naming the bad
  /// piece otherwise.
  [[nodiscard]] static WorkSourceSpec parse(const std::string& text);

  /// Human-readable rendering ("static:1/4", "lease:cache (ttl 30s)").
  [[nodiscard]] std::string describe() const;
};

}  // namespace xdrs::exp

#endif  // XDRS_EXP_WORK_SOURCE_HPP
