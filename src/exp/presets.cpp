#include "exp/presets.hpp"

#include <map>
#include <stdexcept>

#include "exp/runner.hpp"
#include "schedulers/policy_registry.hpp"

namespace xdrs::exp {

namespace {

using namespace sim::literals;

/// The BENCH_sweep.json grid: 2 scenarios x 2 port counts x 4 loads x
/// 4 matchers = 64 points.  Must stay byte-for-byte reproducible — the
/// checked-in baseline artefact and the CI shard-merge diff depend on it.
std::vector<ScenarioSpec> preset_small() {
  std::vector<ScenarioSpec> grid;
  for (const char* scenario : {"uniform", "permutation"}) {
    grid.push_back(make_scenario(scenario, 8, 0.5, 7).with_window(2_ms, 400_us));
  }
  grid = expand(grid, axis_ports({4, 8}));
  grid = expand(grid, axis_load({0.3, 0.5, 0.7, 0.9}));
  grid = expand(grid, axis_matcher({"islip:1", "islip:4", "pim:1", "maxweight"}));
  return grid;
}

/// The paper-scale grid: 64 ports at 10 Gbps per port (the testbed the
/// paper targets), 2 scenarios x 3 loads x 4 matchers = 24 points.  Heavier
/// per point than `small` by design; shard it or warm a cache for iteration.
std::vector<ScenarioSpec> preset_full() {
  std::vector<ScenarioSpec> grid;
  for (const char* scenario : {"uniform", "permutation"}) {
    grid.push_back(make_scenario(scenario, 64, 0.5, 7).with_window(2_ms, 400_us));
  }
  grid = expand(grid, axis_load({0.3, 0.6, 0.9}));
  grid = expand(grid, axis_matcher({"islip:1", "islip:4", "pim:1", "maxweight"}));
  return grid;
}

/// Every registered policy spec of every kind, crossed on one hybrid
/// scenario: the registry-driven comparison sweep the ROADMAP calls for.
/// User-registered policies join automatically via known_specs().
std::vector<ScenarioSpec> preset_policy_cross() {
  using schedulers::PolicyKind;
  const auto& reg = schedulers::PolicyRegistry::instance();
  std::vector<ScenarioSpec> grid{make_scenario("flows", 8, 0.7, 7).with_window(1_ms, 200_us)};
  grid = expand(grid, axis_matcher(reg.known_specs(PolicyKind::kMatcher)));
  grid = expand(grid, axis_circuit(reg.known_specs(PolicyKind::kCircuit)));
  grid = expand(grid, axis_estimator(reg.known_specs(PolicyKind::kEstimator)));
  grid = expand(grid, axis_timing(reg.known_specs(PolicyKind::kTiming)));
  return grid;
}

/// The composite mixes (incast+background, shuffle+voip, onoff+mice) across
/// loads and circuit schedulers: structured bursts riding on backgrounds,
/// the scenario family the hybrid split is actually judged on.
std::vector<ScenarioSpec> preset_composite() {
  std::vector<ScenarioSpec> grid;
  for (const char* scenario : {"incast+background", "shuffle+voip", "onoff+mice"}) {
    grid.push_back(make_scenario(scenario, 8, 0.5, 7).with_window(2_ms, 400_us));
  }
  grid = expand(grid, axis_load({0.4, 0.8}));
  grid = expand(grid, axis_circuit({"solstice", "cthrough"}));
  return grid;
}

/// Trace replay of the bundled example trace (exp::kDefaultTracePath,
/// relative to the repository root — run this preset from there) across
/// loads and circuit schedulers.  One trace file drives every point: the
/// replay time-scales it to each load.
std::vector<ScenarioSpec> preset_trace() {
  std::vector<ScenarioSpec> grid{make_scenario("trace", 8, 0.5, 7).with_window(2_ms, 400_us)};
  grid = expand(grid, axis_load({0.3, 0.6, 0.9}));
  grid = expand(grid, axis_circuit({"solstice", "cthrough"}));
  return grid;
}

/// The empirical flow-size mixes (websearch, datamining, websearch+incast;
/// bundled CDFs under examples/, relative to the repository root — run this
/// preset from there) across loads and circuit schedulers.  Sizes follow
/// the published heavy-tailed CDFs, so this is the grid where size-aware
/// circuit policies separate from size-blind ones.
std::vector<ScenarioSpec> preset_empirical() {
  std::vector<ScenarioSpec> grid;
  for (const char* scenario : {"websearch", "datamining", "websearch+incast"}) {
    grid.push_back(make_scenario(scenario, 8, 0.5, 7).with_window(4_ms, 800_us));
  }
  grid = expand(grid, axis_load({0.4, 0.8}));
  grid = expand(grid, axis_circuit({"solstice", "cthrough"}));
  return grid;  // 12 points
}

/// The 128-port paper-scale grid, unlocked by the bitset matcher kernels:
/// 2 scenarios x 2 loads x 3 hardware-style matchers = 12 points at the
/// largest port count the paper's scaling argument targets.  Windows are
/// shorter than `full` — per-point event counts grow with the port square,
/// and this grid exists to exercise matcher cost at scale, not to re-measure
/// long-horizon stats.  Recorded as BENCH_sweep_128.json.
std::vector<ScenarioSpec> preset_p128() {
  std::vector<ScenarioSpec> grid;
  for (const char* scenario : {"uniform", "permutation"}) {
    grid.push_back(make_scenario(scenario, 128, 0.5, 7).with_window(1_ms, 200_us));
  }
  grid = expand(grid, axis_load({0.5, 0.9}));
  grid = expand(grid, axis_matcher({"islip:1", "islip:4", "rrm:1"}));
  return grid;  // 12 points
}

/// Deadline-aware vs deadline-blind stacks on the SLO scenarios, recorded
/// as BENCH_sweep_deadline.json.  websearch_dl (slotted) fully crosses
/// {maxweight, srpt_w} x {instantaneous, edf} so the deadline-aware axes
/// separate per-dimension; rpc_slo (hybrid) crosses the estimator only,
/// since the circuit path never consults the matcher.  2x2x2x2 + 2x2 =
/// 12 points.
std::vector<ScenarioSpec> preset_deadline() {
  std::vector<ScenarioSpec> grid{
      make_scenario("websearch_dl", 8, 0.5, 7).with_window(2_ms, 400_us)};
  grid = expand(grid, axis_load({0.6, 0.9}));
  grid = expand(grid, axis_matcher({"maxweight", "srpt_w:2"}));
  grid = expand(grid, axis_estimator({"instantaneous", "edf"}));
  std::vector<ScenarioSpec> rpc{make_scenario("rpc_slo", 8, 0.5, 7).with_window(2_ms, 400_us)};
  rpc = expand(rpc, axis_load({0.6, 0.9}));
  rpc = expand(rpc, axis_estimator({"instantaneous", "edf"}));
  grid.insert(grid.end(), rpc.begin(), rpc.end());
  return grid;  // 12 points
}

/// The two-tier fat-tree grid, recorded as BENCH_sweep_ft2.json: 2 racks of
/// 32-host ToRs (64 hosts total; the ToR switch itself is 64-port at full
/// bisection), crossing the two topology axes — core oversubscription
/// {1:1, 2:1} and rack locality {0.5, 0.9} — on one slotted and one hybrid
/// scenario.  2 x 2 x 2 = 8 points, every one multi-rack so the per-hop
/// split (intra/cross-rack bytes and FCTs, core utilisation) is populated
/// throughout.  Windows match p128: the grid exists to exercise the
/// topology machinery, not long-horizon statistics.
std::vector<ScenarioSpec> preset_ft2() {
  std::vector<ScenarioSpec> grid;
  for (const char* scenario : {"uniform", "shuffle"}) {
    grid.push_back(make_scenario(scenario, 32, 0.5, 7).with_window(1_ms, 200_us).with_racks(2));
  }
  grid = expand(grid, axis_oversubscription({1.0, 2.0}));
  grid = expand(grid, axis_locality({0.5, 0.9}));
  return grid;  // 8 points
}

using PresetBuilder = std::vector<ScenarioSpec> (*)();

const std::map<std::string, PresetBuilder>& presets() {
  static const std::map<std::string, PresetBuilder> map{
      {"small", &preset_small},
      {"full", &preset_full},
      {"policy-cross", &preset_policy_cross},
      {"composite", &preset_composite},
      {"deadline", &preset_deadline},
      {"trace", &preset_trace},
      {"empirical", &preset_empirical},
      {"ft2", &preset_ft2},
      {"p128", &preset_p128},
  };
  return map;
}

}  // namespace

std::vector<std::string> known_presets() {
  std::vector<std::string> names;
  names.reserve(presets().size());
  for (const auto& [name, build] : presets()) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::vector<ScenarioSpec> make_preset(const std::string& name) {
  const auto it = presets().find(name);
  if (it == presets().end()) {
    std::string known;
    for (const auto& [n, build] : presets()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument{"make_preset: unknown preset '" + name + "' (known: " + known +
                                ")"};
  }
  return it->second();
}

}  // namespace xdrs::exp
