// Declarative experiment points.
//
// A ScenarioSpec is a copyable, value-typed description of ONE experiment:
// the switch (FrameworkConfig), the workloads (topo::WorkloadSpec list plus
// optional VOIP overlay), the policy stack (core::PolicyStack — every
// component chosen by PolicyRegistry spec string), the seed and the
// measurement window.  materialize() turns a spec into a ready-to-run
// HybridSwitchFramework; run_scenario() runs it to a RunReport.
//
// The scenario registry maps workload names ("uniform", "permutation",
// "incast", "shuffle", "hotspot", "voip", ...) to base specs, so benches,
// examples and sweeps select scenarios the way they already select matchers:
// by string.  New scenarios are one register_scenario() call.
#ifndef XDRS_EXP_SCENARIO_HPP
#define XDRS_EXP_SCENARIO_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "stats/serialize.hpp"
#include "topo/testbed.hpp"

namespace xdrs::exp {

struct ScenarioSpec {
  /// Registry name this spec was built from ("uniform", "incast", ...).
  std::string scenario{"uniform"};
  /// Point label for reports; empty means "derive from key()".
  std::string label;

  core::FrameworkConfig config{};
  std::vector<topo::WorkloadSpec> workloads;

  // Optional latency-sensitive CBR overlay (topo::attach_voip).
  std::uint32_t voip_pairs{0};
  sim::Time voip_period{sim::Time::microseconds(20)};
  std::int64_t voip_packet_bytes{200};

  /// Policy stack, selected by PolicyRegistry spec strings; constructed by
  /// materialize() through HybridSwitchFramework::set_policies.
  core::PolicyStack policies;

  sim::Time duration{sim::Time::milliseconds(10)};
  sim::Time warmup{sim::Time::milliseconds(2)};

  // ---- fluent mutators for grid construction ------------------------------
  /// Sets the port count and re-derives ports-dependent workload fields
  /// (incast response sizes).
  ScenarioSpec& with_ports(std::uint32_t ports);
  /// Applies `load` to every workload, re-deriving kinds that encode it
  /// indirectly: ON/OFF burst duty cycle (mean_off), incast response sizes.
  ScenarioSpec& with_load(double load);
  ScenarioSpec& with_policies(core::PolicyStack stack);
  ScenarioSpec& with_matcher(std::string spec);
  ScenarioSpec& with_circuit(std::string spec);
  ScenarioSpec& with_timing(std::string model);
  ScenarioSpec& with_estimator(std::string name);
  ScenarioSpec& with_seed(std::uint64_t seed);   ///< config and workload seeds
  ScenarioSpec& with_window(sim::Time duration, sim::Time warmup);
  ScenarioSpec& with_label(std::string label);

  /// First workload's load, or 0 with no workloads — the conventional
  /// x-axis of load sweeps.
  [[nodiscard]] double load() const noexcept;

  /// Canonical point key, e.g. "uniform/islip:4/p8/l0.50/s7".  Used as the
  /// default label and as the deterministic identity in serialized sweeps.
  [[nodiscard]] std::string key() const;

  /// Self-describing identity fields (prepended to the report's fields in
  /// sweep CSV/JSON emits).
  [[nodiscard]] std::vector<stats::Field> fields() const;

  /// Exhaustive canonical rendering of everything behaviour-affecting in
  /// the spec: fields() plus every FrameworkConfig knob, the full workload
  /// parameter lists and the VOIP overlay.  The result-cache key and the
  /// shard-file cross-check hash THIS, not fields(), so two specs share a
  /// cache entry only when they would run the identical simulation.
  [[nodiscard]] std::string identity_json() const;
};

/// Builds the framework a spec describes: configuration, policy stack and
/// workloads, ready for run().  Throws std::invalid_argument on unknown
/// policy or scenario names.
[[nodiscard]] std::unique_ptr<core::HybridSwitchFramework> materialize(const ScenarioSpec& spec);

/// materialize() + run(): the whole experiment point, one call.
[[nodiscard]] core::RunReport run_scenario(const ScenarioSpec& spec);

// ---------------------------------------------------------------- registry

using ScenarioBuilder =
    std::function<ScenarioSpec(std::uint32_t ports, double load, std::uint64_t seed)>;

/// Registers a scenario under `name`.  Throws std::invalid_argument if the
/// name is already taken.  Built-in scenarios: uniform, hotspot, zipf,
/// permutation, onoff, flows, shuffle, incast, voip.
void register_scenario(const std::string& name, ScenarioBuilder builder);

/// Instantiates a registered scenario.  Throws std::invalid_argument on
/// unknown names (the message lists what is known).
[[nodiscard]] ScenarioSpec make_scenario(const std::string& name, std::uint32_t ports = 8,
                                         double load = 0.5, std::uint64_t seed = 7);

/// All registered names, sorted.
[[nodiscard]] std::vector<std::string> known_scenarios();

}  // namespace xdrs::exp

#endif  // XDRS_EXP_SCENARIO_HPP
