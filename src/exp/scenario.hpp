// Declarative experiment points.
//
// A ScenarioSpec is a copyable, value-typed description of ONE experiment:
// the switch (FrameworkConfig), the workloads (topo::WorkloadSpec list plus
// optional VOIP overlay), the policy stack (core::PolicyStack — every
// component chosen by PolicyRegistry spec string), the seed and the
// measurement window.  materialize() turns a spec into a ready-to-run
// HybridSwitchFramework; run_scenario() runs it to a RunReport.
//
// The scenario registry maps workload names ("uniform", "permutation",
// "incast", "shuffle", "hotspot", "voip", ...) to base specs, so benches,
// examples and sweeps select scenarios the way they already select matchers:
// by string.  New scenarios are one register_scenario() call.
#ifndef XDRS_EXP_SCENARIO_HPP
#define XDRS_EXP_SCENARIO_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "stats/serialize.hpp"
#include "topo/fat_tree.hpp"
#include "topo/testbed.hpp"

namespace xdrs::exp {

struct ScenarioSpec {
  /// Registry name this spec was built from ("uniform", "incast", ...).
  std::string scenario{"uniform"};
  /// Point label for reports; empty means "derive from key()".
  std::string label;

  core::FrameworkConfig config{};
  /// Topology the point runs on.  Default (1 rack) is the single switch
  /// every pre-topology scenario ran: run_scenario() then takes the legacy
  /// path byte-for-byte.  Multi-rack specs build a topo::FatTree whose ToRs
  /// each get `config.ports` HOST ports plus derived uplinks.
  topo::TopologySpec topology{};
  std::vector<topo::WorkloadSpec> workloads;

  // Optional latency-sensitive CBR overlay (topo::attach_voip).
  std::uint32_t voip_pairs{0};
  sim::Time voip_period{sim::Time::microseconds(20)};
  std::int64_t voip_packet_bytes{200};

  /// Policy stack, selected by PolicyRegistry spec strings; constructed by
  /// materialize() through HybridSwitchFramework::set_policies.
  core::PolicyStack policies;

  sim::Time duration{sim::Time::milliseconds(10)};
  sim::Time warmup{sim::Time::milliseconds(2)};

  /// Composes several scenarios into one multi-workload spec: the first
  /// part anchors the switch config, policy stack and window; every part's
  /// workloads are concatenated with their loads scaled by that part's
  /// `share` (shares normally sum to 1, so the composite sweeps as one load
  /// axis); VOIP overlays are merged (largest pair count wins); workload
  /// seeds are re-spread so parts never correlate.  Throws
  /// std::invalid_argument on empty parts or a share-count mismatch.
  [[nodiscard]] static ScenarioSpec composite(std::string scenario,
                                              const std::vector<ScenarioSpec>& parts,
                                              const std::vector<double>& shares);

  // ---- fluent mutators for grid construction ------------------------------
  /// Sets the port count and re-derives ports-dependent workload fields
  /// (incast response sizes).
  ScenarioSpec& with_ports(std::uint32_t ports);
  /// Distributes `load` across the workloads by their share weights
  /// (normalised, so load() == load afterwards for any spec), re-deriving
  /// kinds that encode load indirectly: ON/OFF burst duty cycle (mean_off),
  /// incast response sizes, trace-replay time scaling.
  ScenarioSpec& with_load(double load);
  ScenarioSpec& with_policies(core::PolicyStack stack);
  ScenarioSpec& with_matcher(std::string spec);
  ScenarioSpec& with_circuit(std::string spec);
  ScenarioSpec& with_timing(std::string model);
  ScenarioSpec& with_estimator(std::string name);
  ScenarioSpec& with_seed(std::uint64_t seed);   ///< config and workload seeds
  ScenarioSpec& with_window(sim::Time duration, sim::Time warmup);
  ScenarioSpec& with_label(std::string label);
  // ---- topology axes ------------------------------------------------------
  ScenarioSpec& with_racks(std::uint32_t racks);
  ScenarioSpec& with_oversubscription(double ratio);
  /// Sets every workload's rack-locality fraction (fat-tree placement).
  ScenarioSpec& with_locality(double locality);

  /// Total requested load — the sum of the workloads' loads (for a single
  /// workload, its load; for composites whose shares sum to 1, the value
  /// last passed to with_load()) — the conventional x-axis of load sweeps.
  [[nodiscard]] double load() const noexcept;

  /// The load the spec actually runs at: like load(), but with each
  /// workload's value re-derived from the parameters the simulation uses
  /// (ON/OFF duty cycle from the burst means, incast from the floored
  /// response size), so clamping in the derivation is visible, never silent.
  [[nodiscard]] double effective_load() const noexcept;

  /// Share-weighted average of the workloads' locality fractions — the
  /// placement axis value artefacts record.  1.0 for an empty spec (all
  /// traffic rack-local, the single-switch behaviour).
  [[nodiscard]] double locality() const noexcept;

  /// Canonical point key, e.g.
  /// "uniform/slotted/islip:4/solstice/instantaneous/hardware/p8/l0.5/s7"
  /// — the scenario, the discipline, the FULL policy stack (matching
  /// core::PolicyStack's rendering), ports, load (shortest form, full
  /// precision) and seed.  Used as the default label and as the
  /// deterministic identity in serialized sweeps: points differing in any
  /// of THOSE axes — everything the built-in grid axes mutate — never
  /// share a key (test_presets asserts this for every preset).  Specs
  /// distinguished only by other knobs (window, share splits, trace
  /// content, raw config edits) need with_label(); the result cache keys
  /// on the exhaustive identity_json(), never on key().
  [[nodiscard]] std::string key() const;

  /// Self-describing identity fields (prepended to the report's fields in
  /// sweep CSV/JSON emits).
  [[nodiscard]] std::vector<stats::Field> fields() const;

  /// Exhaustive canonical rendering of everything behaviour-affecting in
  /// the spec: fields() plus every FrameworkConfig knob, the full workload
  /// parameter lists and the VOIP overlay.  The result-cache key and the
  /// shard-file cross-check hash THIS, not fields(), so two specs share a
  /// cache entry only when they would run the identical simulation.
  [[nodiscard]] std::string identity_json() const;
};

/// The load one workload actually offers under `cfg`, re-derived from the
/// parameters the simulation consumes: ON/OFF bursts report the duty cycle
/// implied by mean_on/mean_off (which rederivation clamps to [0.05, 0.95]),
/// incast reports the aggregator-downlink load implied by the (floored)
/// response size, everything else reports `w.load` as-is.
[[nodiscard]] double effective_workload_load(const topo::WorkloadSpec& w,
                                             const core::FrameworkConfig& cfg) noexcept;

/// Builds the framework a spec describes: configuration, policy stack and
/// workloads, ready for run().  Throws std::invalid_argument on unknown
/// policy or scenario names.  Single-switch view: multi-rack specs go
/// through materialize_fat_tree() instead.
[[nodiscard]] std::unique_ptr<core::HybridSwitchFramework> materialize(const ScenarioSpec& spec);

/// Builds the fat-tree a multi-rack spec describes: per-rack frameworks
/// with the spec's policies, workloads behind the placement transform
/// (each workload's own `locality`), and rack-local VOIP overlays.  Valid
/// for any rack count — a 1-rack tree reproduces materialize()'s run
/// byte-identically through the shared phased path.
[[nodiscard]] std::unique_ptr<topo::FatTree> materialize_fat_tree(const ScenarioSpec& spec);

/// materialize() + run(): the whole experiment point, one call.  Routes
/// multi-rack specs through materialize_fat_tree() automatically.
[[nodiscard]] core::RunReport run_scenario(const ScenarioSpec& spec);

// ---------------------------------------------------------------- registry

/// Trace file the built-in "trace" scenario replays by default, relative to
/// the repository root (run trace sweeps from there, or point
/// `workloads[0].trace_path` somewhere else).
inline constexpr const char* kDefaultTracePath = "examples/example_trace.csv";

/// CDF files the built-in "websearch"/"datamining" scenarios sample by
/// default, relative to the repository root (run empirical sweeps from
/// there, or point `workloads[0].cdf_path` somewhere else).
inline constexpr const char* kWebsearchCdfPath = "examples/cdf_websearch.csv";
inline constexpr const char* kDataminingCdfPath = "examples/cdf_datamining.csv";

using ScenarioBuilder =
    std::function<ScenarioSpec(std::uint32_t ports, double load, std::uint64_t seed)>;

/// Registers a scenario under `name`.  Throws std::invalid_argument if the
/// name is already taken.  Built-in scenarios: uniform, hotspot, zipf,
/// permutation, onoff, flows, shuffle, incast, voip, trace (CSV flow-trace
/// replay; see traffic/trace_replay.hpp), websearch and datamining (flows
/// sized by the bundled empirical CDFs; see traffic/empirical_cdf.hpp) and
/// the composites incast+background, shuffle+voip, onoff+mice,
/// websearch+incast.
void register_scenario(const std::string& name, ScenarioBuilder builder);

/// Instantiates a registered scenario.  Throws std::invalid_argument on
/// unknown names (the message lists what is known).
[[nodiscard]] ScenarioSpec make_scenario(const std::string& name, std::uint32_t ports = 8,
                                         double load = 0.5, std::uint64_t seed = 7);

/// All registered names, sorted.
[[nodiscard]] std::vector<std::string> known_scenarios();

}  // namespace xdrs::exp

#endif  // XDRS_EXP_SCENARIO_HPP
