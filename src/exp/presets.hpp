// Named sweep grids.
//
// A preset is a deterministic function from a name to a grid of
// ScenarioSpecs, shared by bench_sweep and sweepctl so that a recorded
// artefact can be reproduced, sharded across processes/hosts and merged
// back — every participant reconstructs the identical grid from the name
// alone.  Built-ins:
//
//   small        the 64-point ports x load x matcher grid behind
//                BENCH_sweep.json (laptop-fast)
//   full         the paper-scale 64-port x 10G grid behind
//                BENCH_sweep_full.json
//   policy-cross the full PolicyRegistry::known_specs() cross-product
//                (matcher x circuit x estimator x timing) on one hybrid
//                scenario — the registry-driven comparison sweep
//   composite    the bursty mixed workloads (incast+background,
//                shuffle+voip, onoff+mice) across loads and circuit
//                schedulers
//   trace        replay of the bundled example flow trace
//                (exp::kDefaultTracePath; run from the repo root) across
//                loads and circuit schedulers
//   empirical    the empirical flow-size mixes (websearch, datamining,
//                websearch+incast; bundled CDFs under examples/, run from
//                the repo root) across loads and circuit schedulers —
//                behind BENCH_sweep_empirical.json
#ifndef XDRS_EXP_PRESETS_HPP
#define XDRS_EXP_PRESETS_HPP

#include <string>
#include <vector>

#include "exp/scenario.hpp"

namespace xdrs::exp {

/// All preset names, sorted.
[[nodiscard]] std::vector<std::string> known_presets();

/// Builds the named grid.  Throws std::invalid_argument on unknown names
/// (the message lists what is known).
[[nodiscard]] std::vector<ScenarioSpec> make_preset(const std::string& name);

}  // namespace xdrs::exp

#endif  // XDRS_EXP_PRESETS_HPP
