// Lease-based work stealing across processes and hosts.
//
// Any number of worker processes — on one machine or many sharing a
// filesystem — run the same grid against the same directory, and lease
// files arbitrate who computes what.  Points are identified by their
// content hash (exp/cache.hpp spec_hash_hex), so every participant derives
// identical lease names from the preset alone.  Per point, under
// <dir>/leases/:
//
//   <hash>.lease   a live claim: single-line JSON {owner, attempt},
//                  mtime refreshed by the owner's heartbeat thread
//   <hash>.done    completion marker: {owner, attempt, wall_us}
//   <hash>.gen     requeue generation: bumped when a stale lease is stolen,
//                  so the next claimant's attempt number records the requeue
//
// All mutations are atomic on POSIX filesystems:
//   claim     write unique temp, then link(temp, lease) — EEXIST means a
//             concurrent claimer won, nobody ever half-claims
//   steal     rename(lease, unique name) — only one stealer's rename of the
//             same path succeeds, the losers see ENOENT
//   complete  write unique temp, then link(temp, done) — EEXIST means a
//             stolen twin finished first and OUR result must be dropped,
//             keeping merges exactly-once
//
// A worker that dies stops heartbeating; once its lease's mtime is older
// than the TTL any other worker steals the claim, bumps the generation and
// recomputes the point.  Because the simulator is deterministic, a requeued
// point's report is byte-identical no matter who finally computes it —
// merged artefacts cannot tell elastic runs from static ones (CI-gated).
//
// Clocks: staleness compares the shared filesystem's mtimes against this
// host's clock, so pick TTLs well above cross-host clock skew and NFS
// attribute-cache lag (seconds, not milliseconds, for real fleets).
#ifndef XDRS_EXP_LEASE_HPP
#define XDRS_EXP_LEASE_HPP

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exp/work_source.hpp"

namespace xdrs::exp {

struct LeaseOptions {
  /// Shared sweep directory (typically the result-cache dir); lease state
  /// lives in <dir>/leases, beside — never mixed with — cache entries.
  std::string dir;
  /// Claims whose lease mtime is older than this count as dead and get
  /// requeued.  Must comfortably exceed heartbeat period + clock skew.
  double ttl_s{60.0};
  /// Worker identity written into lease/done files; empty = generated
  /// "<host>:<pid>:<token>", unique per source instance.
  std::string owner;
  /// How long next_point() sleeps between claim scans when every pending
  /// point is leased to someone else; 0 = ttl/4 clamped to [50ms, 1s].
  double poll_s{0.0};
  /// Failure injection for tests: a worker that never heartbeats looks
  /// dead to everyone else one TTL after each claim.
  bool heartbeat{true};
  /// Failure injection for tests: false simulates `kill -9` — the
  /// destructor leaves in-flight leases behind for others to requeue.
  bool release_on_exit{true};
};

/// Work-stealing WorkSource over lease files.  Thread-safe within one
/// process; instances in different processes coordinate purely through the
/// shared directory.
class LeaseWorkSource final : public WorkSource {
 public:
  /// `point_hashes[i]` is spec_hash_hex of grid point i — every worker of
  /// the same grid derives the same names.  Creates <dir>/leases; throws
  /// std::runtime_error if it cannot.
  LeaseWorkSource(LeaseOptions opts, std::vector<std::string> point_hashes);
  ~LeaseWorkSource() override;

  LeaseWorkSource(const LeaseWorkSource&) = delete;
  LeaseWorkSource& operator=(const LeaseWorkSource&) = delete;

  [[nodiscard]] std::optional<std::size_t> next_point() override;
  bool complete(std::size_t index, std::int64_t wall_us) override;
  void abandon(std::size_t index) override;
  std::size_t requeue_stale() override;
  [[nodiscard]] WorkSourceStats stats() const override;

  /// One non-blocking claim pass (what next_point() loops over): requeues
  /// any stale lease it meets, claims and returns the first claimable
  /// point, or returns nullopt when nothing is claimable right now.
  [[nodiscard]] std::optional<std::size_t> try_next();

  /// True once a scan has found every point complete.
  [[nodiscard]] bool exhausted() const;

  [[nodiscard]] const std::string& owner() const noexcept { return opts_.owner; }

 private:
  enum class PointState : char { kPending, kOurs, kDone };

  [[nodiscard]] std::string lease_path(std::size_t i) const;
  [[nodiscard]] std::string done_path(std::size_t i) const;
  [[nodiscard]] std::string gen_path(std::size_t i) const;
  /// Steals a stale lease (atomic rename) and bumps the generation file;
  /// false when another worker stole or completed it first.
  bool steal(std::size_t i);
  /// Attempts the atomic link-claim of point i; records the attempt number
  /// from the generation file on success.
  bool claim(std::size_t i);
  /// Removes our lease file if it is still ours (a stolen lease belongs to
  /// the thief and is left alone).
  void release_lease(std::size_t i);
  void heartbeat_loop();

  LeaseOptions opts_;
  std::vector<std::string> hashes_;
  std::string lease_dir_;  // <dir>/leases

  mutable std::mutex mutex_;  // guards state_, attempts_, stats_, cursor_, exhausted_
  std::vector<PointState> state_;
  std::map<std::size_t, std::uint64_t> attempts_;  // in-flight claims -> attempt number
  WorkSourceStats stats_;
  std::size_t cursor_{0};
  bool exhausted_{false};

  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
  bool stopping_{false};  // guarded by wait_mutex_
  std::thread heartbeat_;
};

// ----------------------------------------------------------- status scans

/// Point-by-point lease state of one grid, as `sweepctl status --leases`
/// reports it.
struct LeaseScan {
  enum class State : char { kUnclaimed, kLive, kStale, kDone };
  struct Point {
    std::size_t index{0};
    State state{State::kUnclaimed};
    std::uint64_t attempt{1};
    std::string owner;  // of the lease or done marker, when readable
  };
  std::size_t done{0};
  std::size_t live{0};
  std::size_t stale{0};
  std::size_t unclaimed{0};
  std::size_t requeued{0};  ///< points whose attempt (done/lease/gen) exceeds 1
  std::vector<Point> points;
};

/// Read-only scan of <dir>/leases for the given grid hashes; `ttl_s` is the
/// live/stale boundary.  Never throws on unreadable state — a half-written
/// lease is another worker's business.
[[nodiscard]] LeaseScan scan_leases(const std::string& dir,
                                    const std::vector<std::string>& point_hashes, double ttl_s);

/// Recorded wall_us by spec hash from every readable completion marker in
/// <dir>/leases — the measured-cost source `sweepctl presets` estimates
/// fleet sizing from.  Unmeasured (wall_us <= 0) markers are skipped.
[[nodiscard]] std::map<std::string, std::int64_t> scan_done_walls(const std::string& dir);

}  // namespace xdrs::exp

#endif  // XDRS_EXP_LEASE_HPP
