#include "exp/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>

#include "traffic/deadline.hpp"
#include "traffic/empirical_cdf.hpp"
#include "traffic/trace_replay.hpp"

namespace xdrs::exp {

namespace {

/// Re-derives the workload fields that encode load/ports indirectly, so the
/// fluent mutators stay meaningful for every scenario kind: ON/OFF bursts
/// express load as a duty cycle (mean_off from mean_on), incast expresses
/// load x ports as the per-worker response size, trace replay derives its
/// time-scale factor from `load` at attach time (nothing stored here).
/// `load_changed` guards the ON/OFF case so hand-set mean_on/mean_off pairs
/// survive a ports change.  Derivation may clamp (duty into [0.05, 0.95],
/// response sizes up to one minimum frame); effective_workload_load()
/// reports the load that actually results, and fields()/identity_json()
/// record it, so clamping is visible in every artefact.
void rederive_workload(topo::WorkloadSpec& w, const core::FrameworkConfig& cfg,
                       bool load_changed) {
  using Kind = topo::WorkloadSpec::Kind;
  if (w.kind == Kind::kOnOffBursts && load_changed) {
    const double duty = std::clamp(w.load, 0.05, 0.95);
    w.mean_off = sim::Time::seconds_f(w.mean_on.sec() * (1.0 - duty) / duty);
  } else if (w.kind == Kind::kIncast) {
    const std::uint32_t workers = cfg.ports > 1 ? cfg.ports - 1 : 1;
    const std::int64_t window_bytes = cfg.link_rate.bytes_in(w.period);
    w.response_bytes = std::max<std::int64_t>(
        static_cast<std::int64_t>(w.load * static_cast<double>(window_bytes)) / workers,
        sim::kMinFrameBytes);
  }
}

}  // namespace

double effective_workload_load(const topo::WorkloadSpec& w,
                               const core::FrameworkConfig& cfg) noexcept {
  using Kind = topo::WorkloadSpec::Kind;
  switch (w.kind) {
    case Kind::kOnOffBursts: {
      const double on = w.mean_on.sec();
      const double off = w.mean_off.sec();
      return on + off > 0.0 ? on / (on + off) : 0.0;
    }
    case Kind::kIncast: {
      const std::uint32_t workers = cfg.ports > 1 ? cfg.ports - 1 : 1;
      const std::int64_t window_bytes = cfg.link_rate.bytes_in(w.period);
      if (window_bytes <= 0) return 0.0;
      return static_cast<double>(w.response_bytes) * static_cast<double>(workers) /
             static_cast<double>(window_bytes);
    }
    default:
      return w.load;
  }
}

// ------------------------------------------------------------ ScenarioSpec

ScenarioSpec& ScenarioSpec::with_ports(std::uint32_t ports) {
  config.ports = ports;
  for (auto& w : workloads) rederive_workload(w, config, /*load_changed=*/false);
  return *this;
}

ScenarioSpec& ScenarioSpec::with_load(double load) {
  // Shares are relative weights, normalised by their sum, so load() == load
  // afterwards for EVERY spec — composites whose shares sum to 1 split as
  // written, and a hand-assembled multi-workload spec that never touched
  // `share` (all-1.0 weights) splits evenly instead of silently offering
  // workloads.size() times the requested load.  Degenerate weights would
  // break that postcondition silently (a zeroed grid point still labelled
  // with its load), so they are an error instead.
  double total_share = 0.0;
  for (const auto& w : workloads) total_share += w.share;
  if (!workloads.empty() && (!std::isfinite(total_share) || total_share <= 0.0)) {
    throw std::invalid_argument{"ScenarioSpec::with_load: workload shares must be finite and "
                                "sum to a positive value"};
  }
  for (auto& w : workloads) {
    w.load = load * (w.share / total_share);
    rederive_workload(w, config, /*load_changed=*/true);
  }
  return *this;
}

ScenarioSpec& ScenarioSpec::with_policies(core::PolicyStack stack) {
  policies = std::move(stack);
  return *this;
}

ScenarioSpec& ScenarioSpec::with_matcher(std::string spec) {
  policies.matcher = std::move(spec);
  return *this;
}

ScenarioSpec& ScenarioSpec::with_circuit(std::string spec) {
  policies.circuit = std::move(spec);
  return *this;
}

ScenarioSpec& ScenarioSpec::with_timing(std::string model) {
  policies.timing = std::move(model);
  return *this;
}

ScenarioSpec& ScenarioSpec::with_estimator(std::string name) {
  policies.estimator = std::move(name);
  return *this;
}

ScenarioSpec& ScenarioSpec::with_seed(std::uint64_t seed) {
  config.seed = seed;
  std::uint64_t i = 0;
  for (auto& w : workloads) w.seed = seed + 100 * ++i;
  return *this;
}

ScenarioSpec& ScenarioSpec::with_window(sim::Time d, sim::Time w) {
  duration = d;
  warmup = w;
  return *this;
}

ScenarioSpec& ScenarioSpec::with_label(std::string l) {
  label = std::move(l);
  return *this;
}

ScenarioSpec& ScenarioSpec::with_racks(std::uint32_t racks) {
  if (racks == 0) throw std::invalid_argument{"ScenarioSpec::with_racks: racks must be >= 1"};
  topology.racks = racks;
  return *this;
}

ScenarioSpec& ScenarioSpec::with_oversubscription(double ratio) {
  if (!std::isfinite(ratio) || ratio <= 0.0) {
    throw std::invalid_argument{
        "ScenarioSpec::with_oversubscription: ratio must be finite and positive"};
  }
  topology.oversubscription = ratio;
  return *this;
}

ScenarioSpec& ScenarioSpec::with_locality(double locality) {
  if (!std::isfinite(locality) || locality < 0.0 || locality > 1.0) {
    throw std::invalid_argument{"ScenarioSpec::with_locality: locality must be in [0, 1]"};
  }
  for (auto& w : workloads) w.locality = locality;
  return *this;
}

double ScenarioSpec::locality() const noexcept {
  double total_share = 0.0;
  double weighted = 0.0;
  for (const auto& w : workloads) {
    total_share += w.share;
    weighted += w.share * w.locality;
  }
  return total_share > 0.0 ? weighted / total_share : 1.0;
}

double ScenarioSpec::load() const noexcept {
  double total = 0.0;
  for (const auto& w : workloads) total += w.load;
  return total;
}

double ScenarioSpec::effective_load() const noexcept {
  double total = 0.0;
  for (const auto& w : workloads) total += effective_workload_load(w, config);
  return total;
}

ScenarioSpec ScenarioSpec::composite(std::string scenario, const std::vector<ScenarioSpec>& parts,
                                     const std::vector<double>& shares) {
  if (parts.empty()) throw std::invalid_argument{"ScenarioSpec::composite: no parts"};
  if (shares.size() != parts.size()) {
    throw std::invalid_argument{"ScenarioSpec::composite: one share per part required"};
  }
  for (const double share : shares) {
    if (!std::isfinite(share) || share < 0.0) {
      throw std::invalid_argument{"ScenarioSpec::composite: shares must be finite and >= 0"};
    }
  }
  ScenarioSpec s = parts.front();  // anchor: config, policies, window, seed
  s.scenario = std::move(scenario);
  s.label.clear();
  s.workloads.clear();
  s.voip_pairs = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    // A zero-share part contributes overlays only (VOIP pairs below): its
    // workloads are dropped outright, because several kinds would still
    // emit traffic at load 0 (ON/OFF duty and incast responses are clamped
    // to a floor, trace replay rejects load 0 at materialize time).
    // Within a part, its workloads' own shares are normalised by their sum,
    // so the final weights mean "shares[i] of the total, split as the part
    // splits it" — and the very first with_load() reproduces exactly this
    // mix instead of silently reweighting it.
    double part_sum = 0.0;
    for (const auto& w : parts[i].workloads) part_sum += w.share;
    if (shares[i] != 0.0 && part_sum > 0.0) {
      for (topo::WorkloadSpec w : parts[i].workloads) {
        w.share = shares[i] * (w.share / part_sum);
        s.workloads.push_back(std::move(w));
      }
    }
    if (parts[i].voip_pairs > s.voip_pairs) {
      s.voip_pairs = parts[i].voip_pairs;
      s.voip_period = parts[i].voip_period;
      s.voip_packet_bytes = parts[i].voip_packet_bytes;
    }
  }
  // Re-spread workload seeds from the anchor seed (exactly with_seed()'s
  // scheme) so parts built from the same base seed never correlate, then
  // distribute the anchor's load across the merged mix — which also
  // re-derives every indirect load encoding.
  std::uint64_t i = 0;
  for (auto& w : s.workloads) w.seed = s.config.seed + 100 * ++i;
  if (!s.workloads.empty()) s.with_load(parts.front().load());
  return s;
}

std::string ScenarioSpec::key() const {
  // Every axis the built-in grids mutate must render distinctly: the
  // discipline (a mutator can flip slotted vs hybrid on one scenario), the
  // FULL policy stack (a grid axis can cross any of the four kinds) and
  // the load in shortest-round-trip form — format_double() loses no
  // precision, so loads differing in ANY bit get different keys, while 0.3
  // still prints "0.3" (test_presets asserts pairwise-distinct keys for
  // every preset).  Knobs outside these axes (window, share splits, trace
  // content) are deliberately not rendered — that is with_label()'s job,
  // and the cache identity is identity_json(), not this string.
  std::string k = scenario + '/' + to_string(config.discipline) + '/' + policies.to_string() +
                  "/p" + std::to_string(config.ports) + "/l" + stats::format_double(load()) +
                  "/s" + std::to_string(config.seed);
  // Topology axes render only for multi-rack points, so every pre-topology
  // key — and with it every committed artefact label — is unchanged.
  if (topology.multi_rack()) {
    k += "/r" + std::to_string(topology.racks) + "/o" +
         stats::format_double(topology.oversubscription) + "/loc" +
         stats::format_double(locality());
  }
  return k;
}

std::vector<stats::Field> ScenarioSpec::fields() const {
  using stats::Field;
  std::string names;
  for (const auto& w : workloads) {
    if (!names.empty()) names += '+';
    names += w.name();
  }
  std::vector<Field> f;
  f.reserve(15);
  f.push_back(Field::str("label", label.empty() ? key() : label));
  f.push_back(Field::str("scenario", scenario));
  f.push_back(Field::u64("ports", config.ports));
  f.push_back(Field::f64("load", load()));
  // The load the run actually offers: rederivation clamps at the edges
  // (ON/OFF duty, incast response floor), and artefacts must never claim a
  // load they did not run.
  f.push_back(Field::f64("effective_load", effective_load()));
  f.push_back(Field::str("discipline", to_string(config.discipline)));
  f.push_back(Field::str("matcher", policies.matcher));
  f.push_back(Field::str("circuit", policies.circuit));
  f.push_back(Field::str("estimator", policies.estimator));
  f.push_back(Field::str("timing", policies.timing));
  f.push_back(Field::str("workloads", names));
  f.push_back(Field::u64("seed", config.seed));
  f.push_back(Field::i64("spec_duration_ps", duration.ps()));
  f.push_back(Field::i64("warmup_ps", warmup.ps()));
  // Topology axes (appended, so pre-topology columns keep their positions;
  // single-switch points report the r1/o1/loc1 identity values).
  f.push_back(Field::u64("racks", topology.racks));
  f.push_back(Field::f64("oversubscription", topology.oversubscription));
  f.push_back(Field::f64("locality", locality()));
  return f;
}

std::string ScenarioSpec::identity_json() const {
  using stats::Field;
  std::vector<Field> f = fields();
  // Every behaviour-affecting FrameworkConfig knob fields() leaves out.  A
  // new config field MUST be added here, or specs differing only in it will
  // share cache entries; test_result_cache's axis-sensitivity test is the
  // reminder.
  f.push_back(Field::i64("link_rate_bps", config.link_rate.bits_per_sec()));
  f.push_back(Field::i64("eps_rate_bps", config.eps_rate.bits_per_sec()));
  f.push_back(Field::i64("link_latency_ps", config.link_latency.ps()));
  f.push_back(Field::i64("eps_latency_ps", config.eps_latency.ps()));
  f.push_back(Field::i64("ocs_fabric_latency_ps", config.ocs_fabric_latency.ps()));
  f.push_back(Field::i64("ocs_reconfig_ps", config.ocs_reconfig.ps()));
  f.push_back(Field::f64("ocs_failure_prob", config.ocs_failure_prob));
  f.push_back(Field::i64("eps_buffer_bytes", config.eps_buffer_bytes));
  f.push_back(Field::u64("eps_strict_priority", config.eps_strict_priority ? 1 : 0));
  f.push_back(Field::i64("voq_max_bytes", config.voq_limits.max_bytes_per_voq));
  f.push_back(Field::i64("voq_max_packets", config.voq_limits.max_packets_per_voq));
  f.push_back(Field::i64("voq_shared_bytes", config.voq_limits.shared_buffer_bytes));
  f.push_back(Field::str("placement", to_string(config.placement)));
  f.push_back(Field::i64("slot_time_ps", config.slot_time.ps()));
  f.push_back(Field::i64("epoch_ps", config.epoch.ps()));
  f.push_back(Field::i64("min_circuit_hold_ps", config.min_circuit_hold.ps()));
  f.push_back(Field::u64("latency_sensitive_to_eps", config.latency_sensitive_to_eps ? 1 : 0));
  f.push_back(Field::u64("configure_before_grant", config.configure_before_grant ? 1 : 0));
  f.push_back(Field::u64("eps_fallback_on_miss", config.eps_fallback_on_miss ? 1 : 0));
  f.push_back(Field::i64("sync_max_skew_ps", config.sync.max_skew.ps()));
  f.push_back(Field::i64("sync_jitter_ps", config.sync.jitter.ps()));
  f.push_back(Field::i64("sync_guard_band_ps", config.sync.guard_band.ps()));
  f.push_back(Field::u64("sync_seed", config.sync.seed));
  f.push_back(Field::u64("voip_pairs", voip_pairs));
  f.push_back(Field::i64("voip_period_ps", voip_period.ps()));
  f.push_back(Field::i64("voip_packet_bytes", voip_packet_bytes));
  // Topology knobs fields() leaves out; uplink count is derived but
  // recorded so a rounding change can never silently alias two specs.
  f.push_back(Field::i64("core_latency_ps", topology.core_latency.ps()));
  f.push_back(Field::i64("core_buffer_bytes", topology.core_buffer_bytes));
  f.push_back(Field::u64("uplink_ports",
                         topology.multi_rack() ? topology.uplinks(config.ports) : 0));

  std::string out = stats::to_json_object(f);
  out.pop_back();  // reopen to append the nested workload array
  out += ",\"workload_specs\":[";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const topo::WorkloadSpec& w = workloads[i];
    if (i != 0) out += ',';
    std::vector<Field> wf{
        Field::u64("kind", static_cast<std::uint64_t>(w.kind)),
        Field::f64("load", w.load),
        Field::f64("effective_load", effective_workload_load(w, config)),
        Field::f64("share", w.share),
        Field::f64("skew", w.skew),
        Field::i64("mean_on_ps", w.mean_on.ps()),
        Field::i64("mean_off_ps", w.mean_off.ps()),
        Field::f64("elephant_fraction", w.elephant_fraction),
        Field::i64("period_ps", w.period.ps()),
        Field::i64("response_bytes", w.response_bytes),
        Field::f64("locality", w.locality),
        Field::u64("seed", w.seed),
    };
    if (w.kind == topo::WorkloadSpec::Kind::kTraceReplay) {
      // Content digest, never the path: editing the trace invalidates
      // cached results, renaming or relocating the file does not.
      wf.push_back(Field::str("trace_digest", traffic::trace_digest_hex(w.trace_path)));
    }
    if (w.kind == topo::WorkloadSpec::Kind::kEmpirical) {
      // Same content-not-path contract for empirical flow-size CDFs.
      wf.push_back(Field::str("cdf_digest", traffic::cdf_digest_hex(w.cdf_path)));
    }
    // Deadline model knobs: two specs differing only in their SLO model run
    // different packet streams (deadline stamps) and different completion
    // metrics, so the cache identity must separate them.
    wf.push_back(Field::str("deadline_kind", traffic::to_string(w.deadline.kind)));
    if (w.deadline.enabled()) {
      wf.push_back(Field::i64("deadline_fixed_ps", w.deadline.fixed.ps()));
      wf.push_back(Field::f64("deadline_slo_fraction", w.deadline.slo_fraction));
      wf.push_back(Field::i64("deadline_slack_ps", w.deadline.slack.ps()));
      if (w.deadline.kind == traffic::DeadlineSpec::Kind::kCdf) {
        // Content digest again: the deadline budget distribution is part of
        // what the point measured.
        wf.push_back(
            Field::str("deadline_cdf_digest", traffic::cdf_digest_hex(w.deadline.cdf_path)));
      }
    }
    out += stats::to_json_object(wf);
  }
  out += "]}";
  return out;
}

// ------------------------------------------------------------- materialize

std::unique_ptr<core::HybridSwitchFramework> materialize(const ScenarioSpec& spec) {
  auto fw = std::make_unique<core::HybridSwitchFramework>(spec.config);
  // The whole stack comes from the PolicyRegistry; scenario code needs no
  // by-name construction of its own, and user-registered policies are
  // immediately sweepable.
  fw->set_policies(spec.policies);

  for (const auto& w : spec.workloads) topo::attach_workload(*fw, w);
  if (spec.voip_pairs > 0) {
    topo::attach_voip(*fw, spec.voip_pairs, spec.voip_period, spec.voip_packet_bytes,
                      spec.config.seed + 99);
  }
  return fw;
}

std::unique_ptr<topo::FatTree> materialize_fat_tree(const ScenarioSpec& spec) {
  auto ft = std::make_unique<topo::FatTree>(spec.topology, spec.config);
  for (std::uint32_t r = 0; r < ft->racks(); ++r) {
    auto& fw = ft->rack(r);
    fw.set_policies(spec.policies);
    for (const auto& w : spec.workloads) {
      // Offset the workload seed per rack so racks never emit correlated
      // streams; the placement transform hashes the BASE seed plus the rack
      // index itself, so host->rack assignment stays a pure function of the
      // spec.  (Per-port expansion multiplies the seed by 1000003, so +r
      // cannot collide across racks.)
      topo::WorkloadSpec wr = w;
      wr.seed = w.seed + r;
      topo::attach_workload(fw, wr, ft->placement_transform(r, w.locality, w.seed));
    }
    if (spec.voip_pairs > 0) {
      topo::attach_voip(fw, spec.voip_pairs, spec.voip_period, spec.voip_packet_bytes,
                        spec.config.seed + 99 + r);
    }
  }
  return ft;
}

core::RunReport run_scenario(const ScenarioSpec& spec) {
  if (spec.topology.multi_rack()) {
    return materialize_fat_tree(spec)->run(spec.duration, spec.warmup);
  }
  return materialize(spec)->run(spec.duration, spec.warmup);
}

// ---------------------------------------------------------------- registry

namespace {

ScenarioSpec slotted_base(std::uint32_t ports, std::uint64_t seed) {
  ScenarioSpec s;
  s.config.ports = ports;
  s.config.discipline = core::SchedulingDiscipline::kSlotted;
  // ~10 MTUs per slot: decision + reconfiguration overhead stays small
  // against the slot, so the matcher — not slot quantisation — dominates.
  s.config.slot_time = sim::Time::nanoseconds(12'500);
  s.config.ocs_reconfig = sim::Time::nanoseconds(50);
  s.config.seed = seed;
  return s;
}

ScenarioSpec hybrid_base(std::uint32_t ports, std::uint64_t seed) {
  ScenarioSpec s;
  s.config.ports = ports;
  s.config.discipline = core::SchedulingDiscipline::kHybridEpoch;
  s.config.epoch = sim::Time::microseconds(100);
  s.config.ocs_reconfig = sim::Time::microseconds(1);
  s.config.min_circuit_hold = sim::Time::microseconds(10);
  s.config.seed = seed;
  return s;
}

topo::WorkloadSpec poisson(topo::WorkloadSpec::Kind kind, double load, double skew,
                           std::uint64_t seed) {
  topo::WorkloadSpec w;
  w.kind = kind;
  w.load = load;
  w.skew = skew;
  w.seed = seed;
  return w;
}

using Registry = std::map<std::string, ScenarioBuilder>;

Registry built_in_scenarios() {
  using Kind = topo::WorkloadSpec::Kind;
  Registry r;
  r["uniform"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec s = slotted_base(ports, seed);
    s.scenario = "uniform";
    s.workloads.push_back(poisson(Kind::kPoissonUniform, load, 0.0, seed + 100));
    return s;
  };
  r["hotspot"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec s = slotted_base(ports, seed);
    s.scenario = "hotspot";
    s.workloads.push_back(poisson(Kind::kPoissonHotspot, load, 0.5, seed + 100));
    return s;
  };
  r["zipf"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec s = slotted_base(ports, seed);
    s.scenario = "zipf";
    s.workloads.push_back(poisson(Kind::kPoissonZipf, load, 1.2, seed + 100));
    return s;
  };
  r["permutation"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec s = slotted_base(ports, seed);
    s.scenario = "permutation";
    s.workloads.push_back(poisson(Kind::kPermutation, load, 0.0, seed + 100));
    return s;
  };
  r["onoff"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec s = hybrid_base(ports, seed);
    s.scenario = "onoff";
    topo::WorkloadSpec w;
    w.kind = Kind::kOnOffBursts;
    w.load = load;  // line-rate bursts with duty cycle = load
    w.mean_on = sim::Time::microseconds(80);
    w.seed = seed + 100;
    rederive_workload(w, s.config, /*load_changed=*/true);
    s.workloads.push_back(w);
    return s;
  };
  r["flows"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec s = hybrid_base(ports, seed);
    s.scenario = "flows";
    s.workloads.push_back(poisson(Kind::kFlows, load, 0.0, seed + 100));
    return s;
  };
  r["shuffle"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec s = hybrid_base(ports, seed);
    s.scenario = "shuffle";
    topo::WorkloadSpec w = poisson(Kind::kShuffle, load, 0.0, seed + 100);
    w.elephant_fraction = 0.3;  // shuffle partitions skew long
    s.workloads.push_back(w);
    return s;
  };
  r["incast"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec s = hybrid_base(ports, seed);
    s.scenario = "incast";
    topo::WorkloadSpec w;
    w.kind = Kind::kIncast;
    w.load = load;  // response sizes make the aggregator downlink see `load`
    w.period = sim::Time::milliseconds(1);
    w.seed = seed + 100;
    rederive_workload(w, s.config, /*load_changed=*/true);
    s.workloads.push_back(w);
    return s;
  };
  r["voip"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec s = hybrid_base(ports, seed);
    s.scenario = "voip";
    s.workloads.push_back(poisson(Kind::kPoissonUniform, load, 0.0, seed + 100));
    s.voip_pairs = std::max(1u, ports / 2);
    return s;
  };
  r["trace"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec s = hybrid_base(ports, seed);
    s.scenario = "trace";
    topo::WorkloadSpec w;
    w.kind = Kind::kTraceReplay;
    w.trace_path = kDefaultTracePath;
    w.load = load;  // replay time-scales the trace to this aggregate load
    w.seed = seed + 100;
    s.workloads.push_back(w);
    return s;
  };
  // Empirical flow-size mixes: Poisson flow arrivals whose sizes follow
  // the published websearch (DCTCP) and datamining (VL2) CDFs — the
  // heavy-tailed distributions that decide whether size-aware policies
  // actually win.
  const auto empirical = [](const char* name, const char* cdf_path) {
    return [name, cdf_path](std::uint32_t ports, double load, std::uint64_t seed) {
      ScenarioSpec s = hybrid_base(ports, seed);
      s.scenario = name;
      topo::WorkloadSpec w;
      w.kind = Kind::kEmpirical;
      w.cdf_path = cdf_path;
      w.load = load;
      w.seed = seed + 100;
      s.workloads.push_back(w);
      return s;
    };
  };
  r["websearch"] = empirical("websearch", kWebsearchCdfPath);
  r["datamining"] = empirical("datamining", kDataminingCdfPath);
  // Deadline/SLO scenarios — the grids BENCH_sweep_deadline.json runs on.
  r["rpc_slo"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    // RPC fan-out with per-request SLOs riding on a deadline-blind uniform
    // background: every incast response flow must complete within a
    // size-proportional budget (service at >= 25% of line rate) plus 100 us
    // of scheduling slack, while the background competes for the fabric.
    ScenarioSpec fanout = make_scenario("incast", ports, load, seed);
    for (auto& w : fanout.workloads) {
      w.deadline.kind = traffic::DeadlineSpec::Kind::kSlo;
      w.deadline.slo_fraction = 0.25;
      w.deadline.slack = sim::Time::microseconds(100);
    }
    return ScenarioSpec::composite(
        "rpc_slo", {fanout, make_scenario("uniform", ports, load, seed)}, {0.5, 0.5});
  };
  r["websearch_dl"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    // Websearch flow sizes with completion deadlines drawn from the same
    // published CDF (budget = SLO-rate transmission time of a drawn byte
    // count + slack).  Slotted, so deadline/size-aware matchers (srpt_w)
    // can separate from deadline-blind ones on miss ratio.
    ScenarioSpec s = slotted_base(ports, seed);
    s.scenario = "websearch_dl";
    topo::WorkloadSpec w;
    w.kind = Kind::kEmpirical;
    w.cdf_path = kWebsearchCdfPath;
    w.load = load;
    w.deadline.kind = traffic::DeadlineSpec::Kind::kCdf;
    w.deadline.cdf_path = kWebsearchCdfPath;
    w.deadline.slo_fraction = 0.25;
    w.deadline.slack = sim::Time::microseconds(50);
    w.seed = seed + 100;
    s.workloads.push_back(w);
    return s;
  };
  // Composites: the bursty mixes the hybrid design is actually judged on —
  // heavy structured traffic riding on a background the EPS must keep
  // serving.  Shares split one load axis across the constituent workloads.
  r["incast+background"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    return ScenarioSpec::composite("incast+background",
                                   {make_scenario("incast", ports, load, seed),
                                    make_scenario("uniform", ports, load, seed)},
                                   {0.4, 0.6});
  };
  r["shuffle+voip"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    // The zero-share voip part contributes only its CBR overlay; its
    // background workload is dropped by composite().
    return ScenarioSpec::composite("shuffle+voip",
                                   {make_scenario("shuffle", ports, load, seed),
                                    make_scenario("voip", ports, load, seed)},
                                   {1.0, 0.0});
  };
  r["onoff+mice"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    ScenarioSpec mice = make_scenario("flows", ports, load, seed);
    for (auto& w : mice.workloads) w.elephant_fraction = 0.02;  // mice-dominated
    return ScenarioSpec::composite("onoff+mice",
                                   {make_scenario("onoff", ports, load, seed), mice},
                                   {0.5, 0.5});
  };
  r["websearch+incast"] = [](std::uint32_t ports, double load, std::uint64_t seed) {
    // The paper-style stress mix: a realistic websearch background with a
    // partition/aggregate fan-in riding on top of it.
    return ScenarioSpec::composite("websearch+incast",
                                   {make_scenario("websearch", ports, load, seed),
                                    make_scenario("incast", ports, load, seed)},
                                   {0.6, 0.4});
  };
  return r;
}

std::mutex g_registry_mutex;

Registry& registry() {
  static Registry r = built_in_scenarios();
  return r;
}

}  // namespace

void register_scenario(const std::string& name, ScenarioBuilder builder) {
  if (!builder) throw std::invalid_argument{"register_scenario: null builder"};
  const std::lock_guard<std::mutex> lock{g_registry_mutex};
  const auto [it, inserted] = registry().emplace(name, std::move(builder));
  if (!inserted) {
    throw std::invalid_argument{"register_scenario: '" + name + "' already registered"};
  }
}

ScenarioSpec make_scenario(const std::string& name, std::uint32_t ports, double load,
                           std::uint64_t seed) {
  ScenarioBuilder builder;
  {
    const std::lock_guard<std::mutex> lock{g_registry_mutex};
    const auto it = registry().find(name);
    if (it == registry().end()) {
      std::string known;
      for (const auto& [n, b] : registry()) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw std::invalid_argument{"make_scenario: unknown scenario '" + name +
                                  "' (known: " + known + ")"};
    }
    builder = it->second;
  }
  ScenarioSpec s = builder(ports, load, seed);
  if (s.scenario.empty()) s.scenario = name;
  return s;
}

std::vector<std::string> known_scenarios() {
  const std::lock_guard<std::mutex> lock{g_registry_mutex};
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [n, b] : registry()) names.push_back(n);
  return names;  // std::map iterates sorted
}

}  // namespace xdrs::exp
