#include "schedulers/srpt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xdrs::schedulers {

namespace {

/// Weight ceiling.  Small enough that a full 128x128 matrix of saturated
/// weights (16384 * 1e14 ~ 1.6e18) stays clear of int64 overflow in the
/// DemandMatrix running total, large enough for ~14 decades of dynamic
/// range between "one byte left" and "bottomless elephant".
constexpr double kMaxWeight = 1e14;

}  // namespace

SrptWeightedMatcher::SrptWeightedMatcher(double gamma) : gamma_{gamma} {
  if (!(gamma > 0.0)) throw std::invalid_argument{"SrptWeightedMatcher: gamma must be positive"};
}

void SrptWeightedMatcher::compute_into(const demand::DemandMatrix& demand, Matching& out) {
  // d^gamma via one division (gamma 1, 2) instead of std::pow where the
  // result is identical: dd and dd*dd are exact doubles for any demand the
  // transform can distinguish, and pow() at ~40 ns/cell was ~98% of the
  // whole decision cost on a dense 64-port matrix.
  const int fast = gamma_ == 1.0 ? 1 : gamma_ == 2.0 ? 2 : 0;
  scratch_.copy_from(demand);
  for (std::uint32_t i = 0; i < demand.inputs(); ++i) {
    for (std::uint32_t j = 0; j < demand.outputs(); ++j) {
      const std::int64_t d = scratch_.at_unchecked(i, j);
      if (d == 0) continue;
      const auto dd = static_cast<double>(d);
      const double pow_d =
          fast == 1 ? dd : fast == 2 ? dd * dd : std::pow(dd, gamma_);
      const double raw = kMaxWeight / pow_d;
      const auto w = static_cast<std::int64_t>(
          std::llround(std::clamp(raw, 1.0, kMaxWeight)));
      scratch_.add_unchecked(i, j, w - d);
    }
  }
  inner_.compute_into(scratch_, out);
}

}  // namespace xdrs::schedulers
