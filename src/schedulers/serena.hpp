// SERENA (Giaccone, Prabhakar & Shah, 2003): merge the previous matching
// with a fresh arrival-seeded matching, keeping from each the heavier edges
// along alternating cycles.  Carries good matchings across slots, so it
// approaches max-weight quality at iSLIP-like per-slot cost — a natural
// candidate for the paper's "novel schedulers to prototype" and the reason
// the MatchingAlgorithm interface is stateful.
#ifndef XDRS_SCHEDULERS_SERENA_HPP
#define XDRS_SCHEDULERS_SERENA_HPP

#include <vector>

#include "schedulers/matcher.hpp"
#include "sim/random.hpp"
#include "util/bitset.hpp"

namespace xdrs::schedulers {

class SerenaMatcher final : public MatchingAlgorithm {
 public:
  SerenaMatcher(std::uint32_t ports, std::uint64_t seed);

  void compute_into(const demand::DemandMatrix& demand, Matching& out) override;
  [[nodiscard]] std::string name() const override { return "serena"; }
  [[nodiscard]] std::uint32_t last_iterations() const noexcept override {
    return last_iterations_;
  }
  /// The merge walks cycles of the union graph: sequential in hardware.
  [[nodiscard]] bool hardware_parallel() const noexcept override { return false; }

 private:
  /// A random maximal matching over positive-demand pairs (the "arrival"
  /// matching of the original algorithm), written into `out`.
  void random_matching_into(const demand::DemandMatrix& demand, Matching& out);

  /// MERGE: combines `a` and `b` by choosing, on every alternating
  /// cycle/path of their union, the sub-matching with the larger weight.
  void merge_into(const Matching& a, const Matching& b, const demand::DemandMatrix& demand,
                  Matching& out);

  std::uint32_t ports_;
  sim::Rng rng_;
  Matching previous_;
  std::uint32_t last_iterations_{1};
  // Recycled per-decision workspaces.  Candidate sets are bitset ANDs of a
  // demand row against the free-output mask; the uniform-random pick is
  // popcount + select-k, drawing the same rng stream the old sorted
  // candidate vector did.
  Matching carried_, fresh_;
  std::vector<std::uint32_t> order_;
  util::PortBitset free_in_, free_out_;
  std::vector<std::uint64_t> cand_;
  std::vector<std::size_t> uf_parent_;
  std::vector<std::int64_t> weight_a_, weight_b_;
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_SERENA_HPP
