#include "schedulers/baselines.hpp"

#include <algorithm>
#include <stdexcept>

#include "schedulers/bvn.hpp"
#include "schedulers/hungarian.hpp"

namespace xdrs::schedulers {

CircuitPlan CThroughScheduler::plan(const demand::DemandMatrix& dem) {
  CircuitPlan plan;
  plan.residual = dem;
  if (dem.total() == 0) return plan;

  HungarianMatcher hungarian;
  const Matching m = hungarian.compute(dem);
  if (m.empty()) return plan;

  // The single configuration serves each matched pair's full demand: the
  // circuit day is long in c-Through, so the plan's weight is the largest
  // matched backlog, and lighter pairs simply finish early.
  std::int64_t w = 0;
  m.for_each_pair([&](net::PortId i, net::PortId j) { w = std::max(w, dem.at(i, j)); });

  CircuitSlot slot;
  slot.configuration = m;
  slot.weight_bytes = w;
  m.for_each_pair([&](net::PortId i, net::PortId j) {
    plan.residual.subtract_clamped(i, j, w);
  });
  plan.slots.push_back(std::move(slot));
  return plan;
}

TmsScheduler::TmsScheduler(std::size_t max_days) : max_days_{max_days} {
  if (max_days == 0) throw std::invalid_argument{"TmsScheduler: max_days must be >= 1"};
}

CircuitPlan TmsScheduler::plan(const demand::DemandMatrix& dem) {
  BvnScheduler inner{max_days_};
  return inner.plan(dem);
}

}  // namespace xdrs::schedulers
