#include "schedulers/baselines.hpp"

#include <algorithm>
#include <stdexcept>

namespace xdrs::schedulers {

void CThroughScheduler::plan_into(const demand::DemandMatrix& dem, CircuitPlan& out) {
  out.residual.copy_from(dem);
  if (dem.total() == 0) {
    out.slots.clear();
    return;
  }

  hungarian_.compute_into(dem, day_);
  if (day_.empty()) {
    out.slots.clear();
    return;
  }

  // The single configuration serves each matched pair's full demand: the
  // circuit day is long in c-Through, so the plan's weight is the largest
  // matched backlog, and lighter pairs simply finish early.
  std::int64_t w = 0;
  day_.for_each_pair([&](net::PortId i, net::PortId j) { w = std::max(w, dem.at(i, j)); });

  CircuitSlot& slot = out.reuse_slot(0, dem.inputs(), dem.outputs());
  slot.weight_bytes = w;
  day_.for_each_pair([&](net::PortId i, net::PortId j) {
    slot.configuration.match(i, j);
    out.residual.subtract_clamped(i, j, w);
  });
  out.slots.resize(1);
}

TmsScheduler::TmsScheduler(std::size_t max_days) : max_days_{max_days}, inner_{max_days} {
  if (max_days == 0) throw std::invalid_argument{"TmsScheduler: max_days must be >= 1"};
}

void TmsScheduler::plan_into(const demand::DemandMatrix& dem, CircuitPlan& out) {
  inner_.plan_into(dem, out);
}

}  // namespace xdrs::schedulers
