// A matching between input and output ports — the "grant matrix" of the
// paper in its canonical sparse form.  Crossbar and circuit constraints are
// identical: an input drives at most one output, an output listens to at
// most one input, so a configuration is a partial permutation.
#ifndef XDRS_SCHEDULERS_MATCHING_HPP
#define XDRS_SCHEDULERS_MATCHING_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace xdrs::schedulers {

class Matching {
 public:
  Matching() = default;
  Matching(std::uint32_t inputs, std::uint32_t outputs);
  explicit Matching(std::uint32_t ports) : Matching(ports, ports) {}

  [[nodiscard]] std::uint32_t inputs() const noexcept { return static_cast<std::uint32_t>(out_of_.size()); }
  [[nodiscard]] std::uint32_t outputs() const noexcept { return static_cast<std::uint32_t>(in_of_.size()); }

  /// Pairs input `i` with output `j`.  Throws if either side is already
  /// matched to a different partner (a grant matrix must stay conflict-free).
  void match(net::PortId i, net::PortId j);

  /// Dissolves the pair containing input `i`, if any.
  void unmatch_input(net::PortId i);

  [[nodiscard]] std::optional<net::PortId> output_of(net::PortId input) const;
  [[nodiscard]] std::optional<net::PortId> input_of(net::PortId output) const;
  [[nodiscard]] bool input_matched(net::PortId input) const;
  [[nodiscard]] bool output_matched(net::PortId output) const;

  /// Number of matched pairs.
  [[nodiscard]] std::uint32_t size() const noexcept { return matched_; }
  [[nodiscard]] bool empty() const noexcept { return matched_ == 0; }

  /// True when every input (and hence every output, for square dimensions)
  /// is matched: a full permutation.
  [[nodiscard]] bool is_perfect() const noexcept;

  void clear() noexcept;

  /// Clears and re-dimensions in one step, reusing the existing allocation
  /// when the shape already matches — the per-decision path of compute_into
  /// implementations, which must not touch the heap in steady state.
  void reset(std::uint32_t inputs, std::uint32_t outputs);
  void reset(std::uint32_t ports) { reset(ports, ports); }

  /// Calls `fn(input, output)` for every matched pair, in input order.
  template <typename Fn>
  void for_each_pair(Fn&& fn) const {
    for (std::uint32_t i = 0; i < out_of_.size(); ++i) {
      if (out_of_[i] != kUnmatched) fn(net::PortId{i}, net::PortId{out_of_[i]});
    }
  }

  [[nodiscard]] bool operator==(const Matching& other) const noexcept = default;

  /// e.g. "{0>2, 1>0, 3>3}".
  [[nodiscard]] std::string to_string() const;

  /// The identity-rotated permutation: input i -> (i + shift) mod N.
  /// Building block of rotor-style fixed schedules.
  [[nodiscard]] static Matching rotation(std::uint32_t ports, std::uint32_t shift);

 private:
  static constexpr std::uint32_t kUnmatched = 0xffffffffu;
  std::vector<std::uint32_t> out_of_;  // indexed by input
  std::vector<std::uint32_t> in_of_;   // indexed by output
  std::uint32_t matched_{0};
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_MATCHING_HPP
