// Solstice-style hybrid circuit scheduling (Liu et al., after the REACToR
// line of work the paper cites): greedy threshold-halving decomposition that
// explicitly charges each additional circuit configuration a reconfiguration
// penalty, and hands short/residual demand to the packet switch.
//
// quickStuff + quickSlice, adapted:
//   1. pad the demand so all line sums are equal (as in BvN);
//   2. with threshold t starting at the largest power of two <= max entry,
//      repeatedly extract a perfect matching among entries >= t and schedule
//      it for t bytes; halve t when no such matching exists;
//   3. stop when the value of another slot cannot amortise the dark-time
//      cost (t < delta_bytes x amortisation factor) or a slot budget is hit;
//      whatever remains of the *real* demand becomes the EPS residual.
#ifndef XDRS_SCHEDULERS_SOLSTICE_HPP
#define XDRS_SCHEDULERS_SOLSTICE_HPP

#include <cstdint>
#include <vector>

#include "schedulers/circuit_scheduler.hpp"
#include "schedulers/hopcroft_karp.hpp"

namespace xdrs::schedulers {

struct SolsticeConfig {
  /// Bytes a port could have carried during one reconfiguration (dark time
  /// x link rate).  A slot must move at least `min_amortisation` times this
  /// to be worth scheduling.
  std::int64_t reconfig_cost_bytes{0};
  double min_amortisation{1.0};
  /// Hard cap on configurations per epoch (0 = unlimited).
  std::size_t max_slots{0};
};

class SolsticeScheduler final : public CircuitScheduler {
 public:
  explicit SolsticeScheduler(SolsticeConfig cfg);

  void plan_into(const demand::DemandMatrix& dem, CircuitPlan& out) override;
  [[nodiscard]] std::string name() const override { return "solstice"; }

  [[nodiscard]] const SolsticeConfig& config() const noexcept { return cfg_; }

 private:
  SolsticeConfig cfg_;
  // Recycled epoch workspaces: stuffed demand copy, line-slack scratch and
  // the perfect-matching solver.
  demand::DemandMatrix stuffed_;
  std::vector<std::int64_t> row_slack_, col_slack_;
  HopcroftKarp hk_{0, 0};
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_SOLSTICE_HPP
