#include "schedulers/serena.hpp"

#include <bit>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace xdrs::schedulers {
namespace {

/// Path-halving find over a caller-owned parent array (inputs then outputs).
std::size_t uf_find(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

SerenaMatcher::SerenaMatcher(std::uint32_t ports, std::uint64_t seed)
    : ports_{ports}, rng_{seed}, previous_{ports, ports} {
  if (ports == 0) throw std::invalid_argument{"SerenaMatcher: ports must be >= 1"};
}

void SerenaMatcher::random_matching_into(const demand::DemandMatrix& demand, Matching& out) {
  // Visit inputs in a random order; each grabs a random free positive-demand
  // output.  Maximality is not required — the merge step compensates.
  order_.resize(ports_);
  std::iota(order_.begin(), order_.end(), 0u);
  for (std::uint32_t k = ports_ - 1; k > 0; --k) {
    std::swap(order_[k], order_[rng_.next_below(k + 1)]);
  }

  out.reset(ports_, ports_);
  const std::uint32_t wpr = demand.words_per_row();
  if (cand_.size() != wpr) cand_.assign(wpr, 0);
  free_out_.reset_all_set(ports_);
  for (const std::uint32_t i : order_) {
    // Candidates: the input's demand row ANDed with the free-output mask.
    const std::uint64_t* row = demand.row_support(i);
    const std::uint64_t* fo = free_out_.words();
    std::uint32_t count = 0;
    for (std::uint32_t w = 0; w < wpr; ++w) {
      cand_[w] = row[w] & fo[w];
      count += static_cast<std::uint32_t>(std::popcount(cand_[w]));
    }
    if (count > 0) {
      // Same draw the sorted candidate vector produced: uniform index into
      // the ascending candidate list, realised as select-k.
      const util::BitsetView cv{cand_.data(), wpr};
      const std::uint32_t j = cv.kth_set(static_cast<std::uint32_t>(rng_.next_below(count)));
      out.match(i, j);
      free_out_.clear(j);
    }
  }
}

void SerenaMatcher::merge_into(const Matching& a, const Matching& b,
                               const demand::DemandMatrix& demand, Matching& out) {
  // Union components of a ∪ b are alternating paths/cycles; pick, per
  // component, whichever sub-matching carries more demand.
  uf_parent_.resize(static_cast<std::size_t>(ports_) * 2);
  std::iota(uf_parent_.begin(), uf_parent_.end(), std::size_t{0});
  auto& uf = uf_parent_;
  const auto out_node = [this](net::PortId j) { return static_cast<std::size_t>(ports_) + j; };
  const auto unite = [&uf](std::size_t x, std::size_t y) { uf[uf_find(uf, x)] = uf_find(uf, y); };
  a.for_each_pair([&](net::PortId i, net::PortId j) { unite(i, out_node(j)); });
  b.for_each_pair([&](net::PortId i, net::PortId j) { unite(i, out_node(j)); });

  weight_a_.assign(static_cast<std::size_t>(ports_) * 2, 0);
  weight_b_.assign(static_cast<std::size_t>(ports_) * 2, 0);
  a.for_each_pair(
      [&](net::PortId i, net::PortId j) { weight_a_[uf_find(uf, i)] += demand.at(i, j); });
  b.for_each_pair(
      [&](net::PortId i, net::PortId j) { weight_b_[uf_find(uf, i)] += demand.at(i, j); });

  out.reset(ports_, ports_);
  a.for_each_pair([&](net::PortId i, net::PortId j) {
    const std::size_t c = uf_find(uf, i);
    if (weight_a_[c] >= weight_b_[c]) out.match(i, j);
  });
  b.for_each_pair([&](net::PortId i, net::PortId j) {
    const std::size_t c = uf_find(uf, i);
    if (weight_b_[c] > weight_a_[c]) out.match(i, j);
  });
}

void SerenaMatcher::compute_into(const demand::DemandMatrix& demand, Matching& out) {
  if (demand.inputs() != ports_ || demand.outputs() != ports_) {
    throw std::invalid_argument{"SerenaMatcher: demand dimensions mismatch"};
  }
  // Age out pairs whose demand has drained since the last slot.
  carried_.reset(ports_, ports_);
  previous_.for_each_pair([&](net::PortId i, net::PortId j) {
    if (demand.has_demand(i, j)) carried_.match(i, j);
  });

  random_matching_into(demand, fresh_);
  merge_into(carried_, fresh_, demand, out);

  // Opportunistic completion: any still-free positive pair joins (lowest
  // free output with demand per free input — a find-first-set over the
  // demand row ANDed with the free-output mask).
  free_in_.reset_all_set(ports_);
  free_out_.reset_all_set(ports_);
  out.for_each_pair([&](net::PortId i, net::PortId j) {
    free_in_.clear(i);
    free_out_.clear(j);
  });
  const std::uint32_t wpr = demand.words_per_row();
  free_in_.view().for_each_set([&](std::uint32_t i) {
    const std::uint64_t* row = demand.row_support(i);
    const std::uint64_t* fo = free_out_.words();
    for (std::uint32_t w = 0; w < wpr; ++w) {
      const std::uint64_t word = row[w] & fo[w];
      if (word != 0) {
        const std::uint32_t j = w * 64u + static_cast<std::uint32_t>(std::countr_zero(word));
        out.match(i, j);
        free_out_.clear(j);
        break;
      }
    }
  });
  previous_ = out;
  last_iterations_ = 1;
}

}  // namespace xdrs::schedulers
