#include "schedulers/serena.hpp"

#include <numeric>
#include <stdexcept>
#include <vector>

namespace xdrs::schedulers {
namespace {

/// Minimal union-find over 2N nodes (inputs then outputs).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

SerenaMatcher::SerenaMatcher(std::uint32_t ports, std::uint64_t seed)
    : ports_{ports}, rng_{seed}, previous_{ports, ports} {
  if (ports == 0) throw std::invalid_argument{"SerenaMatcher: ports must be >= 1"};
}

Matching SerenaMatcher::random_matching(const demand::DemandMatrix& demand) {
  // Visit inputs in a random order; each grabs a random free positive-demand
  // output.  Maximality is not required — the merge step compensates.
  std::vector<std::uint32_t> order(ports_);
  std::iota(order.begin(), order.end(), 0u);
  for (std::uint32_t k = ports_ - 1; k > 0; --k) {
    std::swap(order[k], order[rng_.next_below(k + 1)]);
  }

  Matching m{ports_, ports_};
  std::vector<net::PortId> candidates;
  for (const std::uint32_t i : order) {
    candidates.clear();
    for (std::uint32_t j = 0; j < ports_; ++j) {
      if (!m.output_matched(j) && demand.at(i, j) > 0) candidates.push_back(j);
    }
    if (!candidates.empty()) {
      m.match(i, candidates[rng_.next_below(candidates.size())]);
    }
  }
  return m;
}

Matching SerenaMatcher::merge(const Matching& a, const Matching& b,
                              const demand::DemandMatrix& demand) {
  // Union components of a ∪ b are alternating paths/cycles; pick, per
  // component, whichever sub-matching carries more demand.
  UnionFind uf{static_cast<std::size_t>(ports_) * 2};
  const auto out_node = [this](net::PortId j) { return static_cast<std::size_t>(ports_) + j; };
  a.for_each_pair([&](net::PortId i, net::PortId j) { uf.unite(i, out_node(j)); });
  b.for_each_pair([&](net::PortId i, net::PortId j) { uf.unite(i, out_node(j)); });

  std::vector<std::int64_t> weight_a(static_cast<std::size_t>(ports_) * 2, 0);
  std::vector<std::int64_t> weight_b(static_cast<std::size_t>(ports_) * 2, 0);
  a.for_each_pair([&](net::PortId i, net::PortId j) { weight_a[uf.find(i)] += demand.at(i, j); });
  b.for_each_pair([&](net::PortId i, net::PortId j) { weight_b[uf.find(i)] += demand.at(i, j); });

  Matching result{ports_, ports_};
  a.for_each_pair([&](net::PortId i, net::PortId j) {
    const std::size_t c = uf.find(i);
    if (weight_a[c] >= weight_b[c]) result.match(i, j);
  });
  b.for_each_pair([&](net::PortId i, net::PortId j) {
    const std::size_t c = uf.find(i);
    if (weight_b[c] > weight_a[c]) result.match(i, j);
  });
  return result;
}

Matching SerenaMatcher::compute(const demand::DemandMatrix& demand) {
  if (demand.inputs() != ports_ || demand.outputs() != ports_) {
    throw std::invalid_argument{"SerenaMatcher: demand dimensions mismatch"};
  }
  // Age out pairs whose demand has drained since the last slot.
  Matching carried{ports_, ports_};
  previous_.for_each_pair([&](net::PortId i, net::PortId j) {
    if (demand.at(i, j) > 0) carried.match(i, j);
  });

  const Matching fresh = random_matching(demand);
  Matching merged = merge(carried, fresh, demand);

  // Opportunistic completion: any still-free positive pair joins.
  for (std::uint32_t i = 0; i < ports_; ++i) {
    if (merged.input_matched(i)) continue;
    for (std::uint32_t j = 0; j < ports_; ++j) {
      if (!merged.output_matched(j) && demand.at(i, j) > 0) {
        merged.match(i, j);
        break;
      }
    }
  }
  previous_ = merged;
  last_iterations_ = 1;
  return merged;
}

}  // namespace xdrs::schedulers
