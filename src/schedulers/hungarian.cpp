#include "schedulers/hungarian.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace xdrs::schedulers {

void HungarianMatcher::compute_into(const demand::DemandMatrix& demand, Matching& out) {
  // Solve the assignment problem on the square padding of -demand (the
  // classic potentials formulation minimises cost; negation maximises
  // weight).  Zero-demand assignments are stripped afterwards: they carry no
  // weight, so removing them preserves optimality while honouring the
  // "never grant an empty VOQ" contract.
  const std::uint32_t n32 = std::max(demand.inputs(), demand.outputs());
  const auto n = static_cast<std::size_t>(n32);
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

  const auto cost = [&demand](std::size_t i, std::size_t j) -> std::int64_t {
    if (i < demand.inputs() && j < demand.outputs()) {
      return -demand.at(static_cast<net::PortId>(i), static_cast<net::PortId>(j));
    }
    return 0;  // padding rows/columns
  };

  // 1-indexed arrays per the standard formulation; row 0 / column 0 are
  // sentinels.  All six workspaces are per-instance and recycled: assign()
  // reuses capacity, so repeated computes at a fixed port count stay off
  // the heap.
  auto& u = u_;
  auto& v = v_;
  auto& p = p_;      // p[j]: row matched to column j
  auto& way = way_;  // alternating-path bookkeeping
  u.assign(n + 1, 0);
  v.assign(n + 1, 0);
  p.assign(n + 1, 0);
  way.assign(n + 1, 0);

  last_iterations_ = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    auto& minv = minv_;
    auto& used = used_;
    minv.assign(n + 1, kInf);
    used.assign(n + 1, 0);
    do {
      ++last_iterations_;
      used[j0] = true;
      const std::size_t i0 = p[j0];
      std::int64_t delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const std::int64_t cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Unwind the augmenting path.
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  out.reset(demand.inputs(), demand.outputs());
  for (std::size_t j = 1; j <= n; ++j) {
    const std::size_t i = p[j];
    if (i == 0) continue;
    const std::size_t row = i - 1;
    const std::size_t col = j - 1;
    if (row < demand.inputs() && col < demand.outputs() &&
        demand.at(static_cast<net::PortId>(row), static_cast<net::PortId>(col)) > 0) {
      out.match(static_cast<net::PortId>(row), static_cast<net::PortId>(col));
    }
  }
}

std::int64_t HungarianMatcher::matching_weight(const Matching& m,
                                               const demand::DemandMatrix& demand) {
  std::int64_t w = 0;
  m.for_each_pair([&](net::PortId i, net::PortId j) { w += demand.at(i, j); });
  return w;
}

}  // namespace xdrs::schedulers
