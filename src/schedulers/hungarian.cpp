#include "schedulers/hungarian.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace xdrs::schedulers {

void HungarianMatcher::compute_into(const demand::DemandMatrix& demand, Matching& out) {
  // Epoch-warm replay: demand unchanged since the previous compute means
  // the answer is unchanged too (the algorithm below is deterministic and
  // stateless across calls).  The equality probe rejects via shape/total/
  // support-bitmap compares before it ever touches the dense grid.
  if (warm_valid_ && demand == prev_demand_) {
    out = prev_result_;
    last_iterations_ = prev_iterations_;
    return;
  }

  // Solve the assignment problem on the square padding of -demand (the
  // classic potentials formulation minimises cost; negation maximises
  // weight).  Zero-demand assignments are stripped afterwards: they carry no
  // weight, so removing them preserves optimality while honouring the
  // "never grant an empty VOQ" contract.
  const std::uint32_t n32 = std::max(demand.inputs(), demand.outputs());
  const auto n = static_cast<std::size_t>(n32);
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

  // Dense negated padded cost matrix, rebuilt each cold compute: the
  // augmenting search then scans contiguous rows instead of calling a
  // checked accessor O(N^3) times.
  if (cost_.size() != n * n) cost_.assign(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t* crow = cost_.data() + i * n;
    if (i < demand.inputs()) {
      const std::int64_t* drow = demand.row_data(static_cast<net::PortId>(i));
      for (std::size_t j = 0; j < demand.outputs(); ++j) crow[j] = -drow[j];
      for (std::size_t j = demand.outputs(); j < n; ++j) crow[j] = 0;
    } else {
      std::fill_n(crow, n, std::int64_t{0});
    }
  }

  // 1-indexed arrays per the standard formulation; row 0 / column 0 are
  // sentinels.  All workspaces are per-instance and recycled: assign()
  // reuses capacity, so repeated computes at a fixed port count stay off
  // the heap.
  auto& u = u_;
  auto& v = v_;
  auto& p = p_;      // p[j]: row matched to column j
  auto& way = way_;  // alternating-path bookkeeping
  u.assign(n + 1, 0);
  v.assign(n + 1, 0);
  p.assign(n + 1, 0);
  way.assign(n + 1, 0);

  last_iterations_ = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    auto& minv = minv_;
    minv.assign(n + 1, kInf);
    // Column frontier as a bitset over 0..n: bit j set <=> column j not yet
    // visited by this augmenting search.  used_cols_ records the visit
    // order for the dual-update sweep.
    unused_cols_.reset_all_set(n32 + 1);
    used_cols_.clear();
    do {
      ++last_iterations_;
      unused_cols_.clear(static_cast<std::uint32_t>(j0));
      used_cols_.push_back(static_cast<std::uint32_t>(j0));
      const std::size_t i0 = p[j0];
      const std::int64_t* crow = cost_.data() + (i0 - 1) * n;
      const std::int64_t ui0 = u[i0];
      std::int64_t delta = kInf;
      std::size_t j1 = 0;
      // Visit the unvisited columns by find-first-set; bit 0 was cleared on
      // the first pass, so every j here is >= 1.
      unused_cols_.view().for_each_set([&](std::uint32_t j) {
        const std::int64_t cur = crow[j - 1] - ui0 - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      });
      for (const std::uint32_t j : used_cols_) {
        u[p[j]] += delta;
        v[j] -= delta;
      }
      unused_cols_.view().for_each_set([&](std::uint32_t j) { minv[j] -= delta; });
      j0 = j1;
    } while (p[j0] != 0);
    // Unwind the augmenting path.
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  out.reset(demand.inputs(), demand.outputs());
  for (std::size_t j = 1; j <= n; ++j) {
    const std::size_t i = p[j];
    if (i == 0) continue;
    const auto row = static_cast<net::PortId>(i - 1);
    const auto col = static_cast<net::PortId>(j - 1);
    if (row < demand.inputs() && col < demand.outputs() && demand.has_demand(row, col)) {
      out.match(row, col);
    }
  }

  prev_demand_.copy_from(demand);
  prev_result_ = out;
  prev_iterations_ = last_iterations_;
  warm_valid_ = true;
}

std::int64_t HungarianMatcher::matching_weight(const Matching& m,
                                               const demand::DemandMatrix& demand) {
  std::int64_t w = 0;
  m.for_each_pair([&](net::PortId i, net::PortId j) { w += demand.at(i, j); });
  return w;
}

}  // namespace xdrs::schedulers
