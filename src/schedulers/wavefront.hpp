// Wavefront arbiter (WFA) — the classic *spatial* hardware scheduler
// (Tamir & Chi, 1993): requests fill an N x N grid; arbitration sweeps the
// anti-diagonals, and every cell on a diagonal decides in parallel because
// its row/column predecessors are all on earlier diagonals.  2N - 1
// combinational waves, no pointers, no iterations — the design FPGA/ASIC
// crossbar schedulers actually shipped, which makes it a natural citizen of
// the paper's hardware framework.
//
// A rotating diagonal offset provides fairness (a wrapped WFA / WWFA):
// the diagonal that arbitrates first advances every invocation.
#ifndef XDRS_SCHEDULERS_WAVEFRONT_HPP
#define XDRS_SCHEDULERS_WAVEFRONT_HPP

#include "schedulers/matcher.hpp"

namespace xdrs::schedulers {

class WavefrontMatcher final : public MatchingAlgorithm {
 public:
  explicit WavefrontMatcher(std::uint32_t ports);

  void compute_into(const demand::DemandMatrix& demand, Matching& out) override;
  [[nodiscard]] std::string name() const override { return "wavefront"; }

  /// Waves swept in the last compute (always 2N - 1 in hardware; reported
  /// as such so the timing models charge the full pipeline depth).
  [[nodiscard]] std::uint32_t last_iterations() const noexcept override {
    return last_iterations_;
  }
  [[nodiscard]] bool hardware_parallel() const noexcept override { return true; }

  [[nodiscard]] std::uint32_t priority_offset() const noexcept { return offset_; }

 private:
  std::uint32_t ports_;
  std::uint32_t offset_{0};
  std::uint32_t last_iterations_{0};
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_WAVEFRONT_HPP
