// Greedy maximal-weight matching (iLQF — iterative longest queue first).
//
// Repeatedly grants the heaviest remaining (input, output) pair until no
// positive-demand pair is free.  A 2-approximation of maximum-weight
// matching; in hardware it maps to a priority-encoder tree, but each pick
// depends on the previous one, so iterations are sequential in the matched
// pair count.
//
// Edge harvest walks the demand support bitmap (find-first-set per word) so
// sparse matrices cost proportional to their nonzeros; the matcher also
// keeps an epoch-warm cache — deterministic and stateless across calls, so
// an unchanged demand matrix replays the cached matching exactly.
#ifndef XDRS_SCHEDULERS_GREEDY_HPP
#define XDRS_SCHEDULERS_GREEDY_HPP

#include <vector>

#include "schedulers/matcher.hpp"

namespace xdrs::schedulers {

class GreedyMaxWeightMatcher final : public MatchingAlgorithm {
 public:
  GreedyMaxWeightMatcher() = default;

  void compute_into(const demand::DemandMatrix& demand, Matching& out) override;
  [[nodiscard]] std::string name() const override { return "ilqf-greedy"; }
  [[nodiscard]] std::uint32_t last_iterations() const noexcept override { return last_iterations_; }
  [[nodiscard]] bool hardware_parallel() const noexcept override { return false; }

 private:
  struct Edge {
    std::int64_t w;
    net::PortId i;
    net::PortId j;
  };

  std::uint32_t last_iterations_{0};
  std::vector<Edge> edges_;  ///< recycled sort workspace
  // Epoch-warm replay cache (see hungarian.hpp for the soundness argument).
  demand::DemandMatrix prev_demand_;
  Matching prev_result_;
  std::uint32_t prev_iterations_{0};
  bool warm_valid_{false};
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_GREEDY_HPP
