// The unified policy registry — one name-based construction surface for all
// four pluggable policy kinds of the scheduling logic (paper §3: "users
// implement novel design in the scheduling logic module"):
//
//   * matchers           "islip:4", "pim:2", "maxweight", ...
//   * circuit schedulers "solstice", "solstice:1.5", "cthrough", "tms:4", ...
//   * demand estimators  "instantaneous", "ewma:0.2", "windowed", ...
//   * timing models      "hardware", "hw:500MHz", "software", "ideal", ...
//
// A spec string is "name[:arg]"; the argument's meaning belongs to the
// factory (iteration count, EWMA alpha, clock frequency, slot budget).
// Construction parameters that come from the switch rather than the spec
// (port count, seed, reconfiguration cost) travel in a PolicyContext.
//
// User code registers new algorithms without touching library source:
//
//   static const bool registered = [] {
//     PolicyRegistry::instance().register_matcher(
//         "mine", [](const PolicySpec&, const PolicyContext& ctx) {
//           return std::make_unique<MyMatcher>(ctx.ports);
//         });
//     return true;
//   }();
//
// after which "mine" works everywhere a spec string does: PolicyStack
// parsing, ScenarioSpec sweeps, the explorer CLI and the benches.
#ifndef XDRS_SCHEDULERS_POLICY_REGISTRY_HPP
#define XDRS_SCHEDULERS_POLICY_REGISTRY_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "control/timing.hpp"
#include "demand/estimator.hpp"
#include "schedulers/circuit_scheduler.hpp"
#include "schedulers/matcher.hpp"

namespace xdrs::schedulers {

enum class PolicyKind : std::uint8_t { kMatcher, kCircuit, kEstimator, kTiming };

[[nodiscard]] constexpr const char* to_string(PolicyKind k) noexcept {
  switch (k) {
    case PolicyKind::kMatcher: return "matcher";
    case PolicyKind::kCircuit: return "circuit";
    case PolicyKind::kEstimator: return "estimator";
    case PolicyKind::kTiming: return "timing";
  }
  return "?";
}

/// Switch-derived construction parameters, shared by every factory.
struct PolicyContext {
  std::uint32_t ports{8};
  std::uint64_t seed{1};
  /// Bytes a port could have carried during one OCS reconfiguration — the
  /// quantity amortising circuit schedulers charge per slot.
  std::int64_t reconfig_cost_bytes{0};
};

/// A parsed "name[:arg]" policy spec.
class PolicySpec {
 public:
  /// Splits at the first ':'.  "islip:4" -> {"islip", "4"}; "ilqf" ->
  /// {"ilqf", ""}.  A trailing ':' with no argument is rejected by the
  /// typed accessors below, not by parse.
  [[nodiscard]] static PolicySpec parse(std::string_view spec);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& arg() const noexcept { return arg_; }
  [[nodiscard]] bool has_arg() const noexcept { return has_arg_; }

  /// Argument as a positive integer (iteration counts, slot budgets).
  /// Throws std::invalid_argument on a missing-after-colon, malformed or
  /// zero argument; returns `fallback` when no ':' was present.
  [[nodiscard]] std::uint32_t uint_arg(std::uint32_t fallback) const;

  /// Argument as a double; same error contract as uint_arg.
  [[nodiscard]] double double_arg(double fallback) const;

  /// Argument as a clock frequency in MHz: "500", "500MHz" or "1.2GHz".
  [[nodiscard]] double mhz_arg(double fallback) const;

  /// The original spec string ("name:arg" or "name").
  [[nodiscard]] std::string str() const;

 private:
  std::string name_;
  std::string arg_;
  bool has_arg_{false};
};

class PolicyRegistry {
 public:
  using MatcherFactory =
      std::function<std::unique_ptr<MatchingAlgorithm>(const PolicySpec&, const PolicyContext&)>;
  using CircuitFactory =
      std::function<std::unique_ptr<CircuitScheduler>(const PolicySpec&, const PolicyContext&)>;
  using EstimatorFactory = std::function<std::unique_ptr<demand::DemandEstimator>(
      const PolicySpec&, const PolicyContext&)>;
  using TimingFactory = std::function<std::unique_ptr<control::SchedulerTimingModel>(
      const PolicySpec&, const PolicyContext&)>;

  /// The process-wide registry, with all built-in policies registered.
  [[nodiscard]] static PolicyRegistry& instance();

  // ---- registration --------------------------------------------------------
  // Each registers a factory under `name`; `example_specs` seeds
  // known_specs() (pass {} for aliases that should not show up there).
  // Throws std::invalid_argument if `name` is already taken for that kind.
  void register_matcher(const std::string& name, MatcherFactory f,
                        std::vector<std::string> example_specs = {});
  void register_circuit(const std::string& name, CircuitFactory f,
                        std::vector<std::string> example_specs = {});
  void register_estimator(const std::string& name, EstimatorFactory f,
                          std::vector<std::string> example_specs = {});
  void register_timing(const std::string& name, TimingFactory f,
                       std::vector<std::string> example_specs = {});

  // ---- construction --------------------------------------------------------
  // Throws std::invalid_argument on unknown names (message lists what is
  // registered) or malformed arguments.
  [[nodiscard]] std::unique_ptr<MatchingAlgorithm> make_matcher(
      std::string_view spec, const PolicyContext& ctx = {}) const;
  [[nodiscard]] std::unique_ptr<CircuitScheduler> make_circuit(
      std::string_view spec, const PolicyContext& ctx = {}) const;
  [[nodiscard]] std::unique_ptr<demand::DemandEstimator> make_estimator(
      std::string_view spec, const PolicyContext& ctx = {}) const;
  [[nodiscard]] std::unique_ptr<control::SchedulerTimingModel> make_timing(
      std::string_view spec, const PolicyContext& ctx = {}) const;

  // ---- introspection -------------------------------------------------------
  /// Representative constructible specs of one kind, sorted — the sweep set
  /// of the comparison benches and the round-trip tests.
  [[nodiscard]] std::vector<std::string> known_specs(PolicyKind kind) const;

  /// True when `name` (the part before any ':') is registered under `kind`.
  [[nodiscard]] bool knows(PolicyKind kind, std::string_view name) const;

  /// Every kind `name` is registered under — the classifier PolicyStack
  /// parsing uses to assign free-form segments.
  [[nodiscard]] std::vector<PolicyKind> kinds_of(std::string_view name) const;

 private:
  PolicyRegistry();  // registers the built-ins

  struct Entry {
    MatcherFactory matcher;
    CircuitFactory circuit;
    EstimatorFactory estimator;
    TimingFactory timing;
    std::vector<std::string> examples;
  };

  using Table = std::map<std::string, Entry, std::less<>>;

  [[nodiscard]] const Table& table(PolicyKind kind) const;
  [[nodiscard]] Table& table(PolicyKind kind);
  void register_entry(PolicyKind kind, const std::string& name, Entry entry);
  [[nodiscard]] const Entry& find(PolicyKind kind, const PolicySpec& spec) const;

  mutable std::mutex mutex_;
  Table matchers_, circuits_, estimators_, timings_;
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_POLICY_REGISTRY_HPP
