// Name-based construction of matching algorithms, so benches, examples and
// the framework configuration can select schedulers from strings such as
// "islip:4" (algorithm:iterations).
#ifndef XDRS_SCHEDULERS_FACTORY_HPP
#define XDRS_SCHEDULERS_FACTORY_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "schedulers/matcher.hpp"

namespace xdrs::schedulers {

/// Builds a matcher from a spec string.  Accepted specs:
///   "rrm[:iters]", "islip[:iters]", "pim[:iters]" (default iters = 1),
///   "ilqf", "maxweight", "maxsize", "rotor", "wavefront", "serena".
/// `ports` dimensions pointer arrays; `seed` feeds randomized algorithms.
/// Throws std::invalid_argument on an unknown spec.
[[nodiscard]] std::unique_ptr<MatchingAlgorithm> make_matcher(std::string_view spec,
                                                              std::uint32_t ports,
                                                              std::uint64_t seed = 1);

/// All specs understood by make_matcher, with default iteration counts —
/// the sweep set used by the comparison benches.
[[nodiscard]] std::vector<std::string> known_matcher_specs();

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_FACTORY_HPP
