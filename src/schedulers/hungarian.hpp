// Exact maximum-weight matching via the Hungarian algorithm (Jonker-style
// potentials, O(N^3)).
//
// Max-weight matching on VOQ backlogs is the throughput-optimal crossbar
// policy (Tassiulas/Ephremides); it is far too slow for per-slot hardware
// arbitration, which is precisely the paper's point — we provide it as the
// quality yardstick the practical algorithms are measured against.
#ifndef XDRS_SCHEDULERS_HUNGARIAN_HPP
#define XDRS_SCHEDULERS_HUNGARIAN_HPP

#include <cstdint>
#include <vector>

#include "schedulers/matcher.hpp"

namespace xdrs::schedulers {

class HungarianMatcher final : public MatchingAlgorithm {
 public:
  HungarianMatcher() = default;

  void compute_into(const demand::DemandMatrix& demand, Matching& out) override;
  [[nodiscard]] std::string name() const override { return "maxweight-exact"; }
  [[nodiscard]] std::uint32_t last_iterations() const noexcept override { return last_iterations_; }
  [[nodiscard]] bool hardware_parallel() const noexcept override { return false; }

  /// Sum of demand over the matched pairs of `m` — the objective value.
  [[nodiscard]] static std::int64_t matching_weight(const Matching& m,
                                                    const demand::DemandMatrix& demand);

 private:
  std::uint32_t last_iterations_{0};
  // Recycled potential/augmenting-path workspaces (1-indexed, see .cpp).
  std::vector<std::int64_t> u_, v_, minv_;
  std::vector<std::size_t> p_, way_;
  std::vector<char> used_;
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_HUNGARIAN_HPP
