// Exact maximum-weight matching via the Hungarian algorithm (Jonker-style
// potentials, O(N^3)).
//
// Max-weight matching on VOQ backlogs is the throughput-optimal crossbar
// policy (Tassiulas/Ephremides); it is far too slow for per-slot hardware
// arbitration, which is precisely the paper's point — we provide it as the
// quality yardstick the practical algorithms are measured against.
//
// Two kernel-level accelerations, both exact:
//  * the augmenting search runs over a dense negated cost matrix built once
//    per compute (contiguous row scans, no checked accessor in the O(N^3)
//    inner loop) with the unused-column frontier kept as a uint64_t bitset;
//  * epoch-warm replay — the matcher caches its previous (demand, matching)
//    pair, and when the demand matrix is value-identical it replays the
//    cached result.  Sound because the algorithm is deterministic and
//    carries no state across computes, so equal input implies bit-equal
//    output; any difference falls back to the cold compute.
#ifndef XDRS_SCHEDULERS_HUNGARIAN_HPP
#define XDRS_SCHEDULERS_HUNGARIAN_HPP

#include <cstdint>
#include <vector>

#include "schedulers/matcher.hpp"
#include "util/bitset.hpp"

namespace xdrs::schedulers {

class HungarianMatcher final : public MatchingAlgorithm {
 public:
  HungarianMatcher() = default;

  void compute_into(const demand::DemandMatrix& demand, Matching& out) override;
  [[nodiscard]] std::string name() const override { return "maxweight-exact"; }
  [[nodiscard]] std::uint32_t last_iterations() const noexcept override { return last_iterations_; }
  [[nodiscard]] bool hardware_parallel() const noexcept override { return false; }

  /// Sum of demand over the matched pairs of `m` — the objective value.
  [[nodiscard]] static std::int64_t matching_weight(const Matching& m,
                                                    const demand::DemandMatrix& demand);

 private:
  std::uint32_t last_iterations_{0};
  // Recycled potential/augmenting-path workspaces (1-indexed, see .cpp).
  std::vector<std::int64_t> u_, v_, minv_;
  std::vector<std::size_t> p_, way_;
  std::vector<std::int64_t> cost_;           // dense negated padded cost, n x n
  util::PortBitset unused_cols_;             // augmenting-search frontier
  std::vector<std::uint32_t> used_cols_;     // columns visited this search
  // Epoch-warm replay cache.
  demand::DemandMatrix prev_demand_;
  Matching prev_result_;
  std::uint32_t prev_iterations_{0};
  bool warm_valid_{false};
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_HUNGARIAN_HPP
