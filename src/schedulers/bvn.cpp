#include "schedulers/bvn.hpp"

#include <algorithm>
#include <stdexcept>

#include "schedulers/hopcroft_karp.hpp"

namespace xdrs::schedulers {
namespace {

/// Northwest-corner slack: a non-negative matrix with prescribed row sums
/// `r` and column sums `c` (sum(r) == sum(c)).
demand::DemandMatrix build_slack(const demand::DemandMatrix& dem, std::int64_t phi) {
  const std::uint32_t n = dem.inputs();
  demand::DemandMatrix slack{n, n};
  std::vector<std::int64_t> r(n), c(n);
  for (std::uint32_t i = 0; i < n; ++i) r[i] = phi - dem.row_sum(i);
  for (std::uint32_t j = 0; j < n; ++j) c[j] = phi - dem.col_sum(j);
  std::uint32_t i = 0, j = 0;
  while (i < n && j < n) {
    const std::int64_t s = std::min(r[i], c[j]);
    if (s > 0) slack.set(i, j, slack.at(i, j) + s);
    r[i] -= s;
    c[j] -= s;
    if (r[i] == 0) ++i;
    if (j < n && c[j] == 0) ++j;
  }
  return slack;
}

}  // namespace

BvnResult bvn_decompose(const demand::DemandMatrix& dem, std::size_t max_terms) {
  if (dem.inputs() != dem.outputs()) {
    throw std::invalid_argument{"bvn_decompose: matrix must be square"};
  }
  const std::uint32_t n = dem.inputs();
  BvnResult result;
  if (dem.total() == 0) return result;

  demand::DemandMatrix real = dem;                       // remaining true demand
  const std::int64_t phi = dem.max_line_sum();
  demand::DemandMatrix slack = build_slack(dem, phi);    // remaining padding

  HopcroftKarp hk{n, n};
  while (real.total() > 0 && (max_terms == 0 || result.terms.size() < max_terms)) {
    // Perfect matching on the support of real + slack.  The padded matrix
    // has all line sums equal, so Birkhoff guarantees one exists.
    hk.clear_edges();
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        if (real.at(i, j) + slack.at(i, j) > 0) hk.add_edge(i, j);
      }
    }
    const std::uint32_t size = hk.solve();
    if (size < n) {
      throw std::logic_error{"bvn_decompose: padded matrix lost perfect-matching support"};
    }

    BvnTerm term;
    term.permutation = Matching{n, n};
    std::int64_t w = std::numeric_limits<std::int64_t>::max();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t j = hk.match_of_left(i);
      term.permutation.match(i, j);
      w = std::min(w, real.at(i, j) + slack.at(i, j));
    }
    term.weight = w;

    // Serve real demand before slack so terms retire demand fastest.
    term.permutation.for_each_pair([&](net::PortId i, net::PortId j) {
      const std::int64_t from_real = std::min(real.at(i, j), w);
      term.real_bytes += from_real;
      real.subtract_clamped(i, j, from_real);
      slack.subtract_clamped(i, j, w - from_real);
    });
    result.terms.push_back(std::move(term));
  }
  result.uncovered_bytes = real.total();
  return result;
}

void BvnScheduler::plan_into(const demand::DemandMatrix& dem, CircuitPlan& out) {
  // The full decomposition is inherently allocation-heavy (unbounded term
  // list, one permutation per term), so bvn/tms stay off the zero-alloc
  // contract the simpler planners honour; Solstice is the default hybrid
  // scheduler for exactly this reason.
  BvnResult d = bvn_decompose(dem, 0);
  // Keep the heaviest slots by real coverage; everything else goes electric.
  std::sort(d.terms.begin(), d.terms.end(), [](const BvnTerm& a, const BvnTerm& b) {
    return a.real_bytes > b.real_bytes;
  });
  if (max_slots_ > 0 && d.terms.size() > max_slots_) d.terms.resize(max_slots_);

  out.residual.copy_from(dem);
  std::size_t used = 0;
  for (auto& t : d.terms) {
    // Per-pair circuit service is min(weight, pair demand); subtract from
    // the residual so the EPS sees exactly what circuits will not carry.
    t.permutation.for_each_pair([&](net::PortId i, net::PortId j) {
      out.residual.subtract_clamped(i, j, t.weight);
    });
    // No reuse_slot here: the freshly decomposed permutation replaces the
    // slot's configuration wholesale, so resetting it first would be wasted.
    if (out.slots.size() <= used) out.slots.resize(used + 1);
    CircuitSlot& slot = out.slots[used++];
    slot.configuration = std::move(t.permutation);
    slot.weight_bytes = t.weight;
  }
  out.slots.resize(used);
}

}  // namespace xdrs::schedulers
