// The pluggable scheduling-algorithm interface — the module the paper says
// "users implement novel design in" (§3, scheduling logic).
//
// A matcher turns a demand matrix into one conflict-free matching (grant
// matrix).  Implementations also expose a hardware cost model: the number of
// pipeline iterations the algorithm needs, from which the control-plane
// timing models derive schedule-computation latency for a given clock.
#ifndef XDRS_SCHEDULERS_MATCHER_HPP
#define XDRS_SCHEDULERS_MATCHER_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "demand/demand_matrix.hpp"
#include "schedulers/matching.hpp"

namespace xdrs::schedulers {

class MatchingAlgorithm {
 public:
  virtual ~MatchingAlgorithm() = default;

  /// Computes a matching over the strictly positive entries of `demand`,
  /// writing it into `out` (re-dimensioned via Matching::reset as needed).
  /// Must never grant a pair with zero demand.
  ///
  /// This is the hot-path entry point: implementations keep per-instance
  /// workspaces so that steady-state calls with a stable `demand` shape and
  /// a recycled `out` perform zero heap allocations.
  ///
  /// Epoch-warm rematching contract: an implementation MAY cache its
  /// previous (input, result) pair and replay the cached matching, but only
  /// when the replay is provably bit-identical to a cold compute — i.e. the
  /// matcher is deterministic, carries no state across calls (no round-robin
  /// pointers, no rng, no previous-matching memory), and the cache key
  /// covers everything the algorithm reads (full values for weight-driven
  /// matchers, the support bitmap alone for pattern-driven ones).  Stateful
  /// matchers must always cold-compute; warm or cold, `last_iterations()`
  /// must report what the cold compute would have.
  virtual void compute_into(const demand::DemandMatrix& demand, Matching& out) = 0;

  /// By-value convenience wrapper over compute_into (tests, examples).
  [[nodiscard]] Matching compute(const demand::DemandMatrix& demand) {
    Matching out;
    compute_into(demand, out);
    return out;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Iterations (hardware pipeline passes) consumed by the last compute().
  /// Request-grant-accept algorithms run one parallel arbitration per
  /// iteration; sequential algorithms report their outer-loop count.
  [[nodiscard]] virtual std::uint32_t last_iterations() const noexcept = 0;

  /// True when one iteration is a parallel O(1)-depth hardware operation
  /// across ports (RGA family); false when each iteration is inherently
  /// sequential work proportional to the port count or worse.
  [[nodiscard]] virtual bool hardware_parallel() const noexcept = 0;
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_MATCHER_HPP
