// The request-grant-accept (RGA) arbiter family: RRM, iSLIP and PIM.
//
// These are the algorithms hardware crossbar schedulers actually ship with:
// every iteration is a constant-depth parallel arbitration across ports, so
// an FPGA or ASIC completes an iteration in a cycle or two — the concrete
// grounding of the paper's claim that hardware schedulers offer "fast
// schedule computation".
//
//  * RRM   — round-robin grant and accept pointers, always advanced.
//            Suffers pointer synchronisation; throughput saturates well
//            below 100% under uniform load.
//  * iSLIP — McKeown's fix: pointers advance only when a grant is accepted
//            and only on the first iteration; desynchronised pointers reach
//            100% throughput under uniform traffic.
//  * PIM   — DEC AN2 parallel iterative matching: uniform-random grant and
//            accept choices; converges in O(log N) iterations on average.
//
// The software kernel mirrors the hardware structure: port sets are
// uint64_t occupancy bitsets (64 ports per word).  A request round is one
// AND of an output's demand column against the free-input mask; grant and
// accept selections are find-first-set (round-robin) or popcount+select
// (PIM) over the candidate words.  The per-iteration working set at 128
// ports is a few KiB, so the whole arbitration runs out of L1 — this is
// where the 128-port grid stopped being matcher-bound.
#ifndef XDRS_SCHEDULERS_RGA_HPP
#define XDRS_SCHEDULERS_RGA_HPP

#include <cstdint>
#include <vector>

#include "schedulers/matcher.hpp"
#include "sim/random.hpp"
#include "util/bitset.hpp"

namespace xdrs::schedulers {

/// Shared request-grant-accept scaffolding.  Subclasses pick the selection
/// discipline and the pointer-update rule.
class RgaMatcherBase : public MatchingAlgorithm {
 public:
  void compute_into(const demand::DemandMatrix& demand, Matching& out) final;
  [[nodiscard]] std::uint32_t last_iterations() const noexcept final { return last_iterations_; }
  [[nodiscard]] bool hardware_parallel() const noexcept final { return true; }

  [[nodiscard]] std::uint32_t max_iterations() const noexcept { return max_iterations_; }

 protected:
  explicit RgaMatcherBase(std::uint32_t max_iterations);

  /// Grant selection for an output among requesting inputs; `candidates`
  /// is a non-empty bitset over inputs (ascending bit order replaces the
  /// old sorted-vector contract).
  [[nodiscard]] virtual net::PortId select_grant(net::PortId output,
                                                 util::BitsetView candidates) = 0;
  /// Accept selection for an input among granting outputs (bitset over
  /// outputs, non-empty).
  [[nodiscard]] virtual net::PortId select_accept(net::PortId input,
                                                  util::BitsetView candidates) = 0;
  /// Invoked when input `i` accepted output `j` during iteration `iter`.
  virtual void on_accept(net::PortId i, net::PortId j, std::uint32_t iter) = 0;

 private:
  std::uint32_t max_iterations_;
  std::uint32_t last_iterations_{0};
  // Recycled bitset workspaces, re-dimensioned only when the port count
  // changes, so steady-state computes never allocate:
  //   free_in_ / free_out_  — unmatched inputs/outputs ("occupancy" masks)
  //   has_grant_            — inputs holding >= 1 grant this round
  //   grant_bits_           — per-input grant sets (inputs x words-per-row)
  //   cand_                 — one output's requesters: column AND free_in_
  util::PortBitset free_in_, free_out_, has_grant_;
  std::vector<std::uint64_t> grant_bits_;
  std::vector<std::uint64_t> cand_;
};

/// Round-robin matching with unconditionally advancing pointers.
class RrmMatcher final : public RgaMatcherBase {
 public:
  RrmMatcher(std::uint32_t ports, std::uint32_t iterations);

  [[nodiscard]] std::string name() const override;

 protected:
  [[nodiscard]] net::PortId select_grant(net::PortId output, util::BitsetView candidates) override;
  [[nodiscard]] net::PortId select_accept(net::PortId input, util::BitsetView candidates) override;
  void on_accept(net::PortId i, net::PortId j, std::uint32_t iter) override;

 private:
  std::vector<std::uint32_t> grant_ptr_;   // per output
  std::vector<std::uint32_t> accept_ptr_;  // per input
};

/// iSLIP: pointers advance only on accepted grants in the first iteration.
class IslipMatcher final : public RgaMatcherBase {
 public:
  IslipMatcher(std::uint32_t ports, std::uint32_t iterations);

  [[nodiscard]] std::string name() const override;

 protected:
  [[nodiscard]] net::PortId select_grant(net::PortId output, util::BitsetView candidates) override;
  [[nodiscard]] net::PortId select_accept(net::PortId input, util::BitsetView candidates) override;
  void on_accept(net::PortId i, net::PortId j, std::uint32_t iter) override;

 private:
  std::vector<std::uint32_t> grant_ptr_;
  std::vector<std::uint32_t> accept_ptr_;
};

/// PIM: uniform-random grant and accept.
class PimMatcher final : public RgaMatcherBase {
 public:
  PimMatcher(std::uint32_t ports, std::uint32_t iterations, std::uint64_t seed);

  [[nodiscard]] std::string name() const override;

 protected:
  [[nodiscard]] net::PortId select_grant(net::PortId output, util::BitsetView candidates) override;
  [[nodiscard]] net::PortId select_accept(net::PortId input, util::BitsetView candidates) override;
  void on_accept(net::PortId i, net::PortId j, std::uint32_t iter) override;

 private:
  sim::Rng rng_;
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_RGA_HPP
