#include "schedulers/policy_registry.hpp"

#include <charconv>
#include <stdexcept>

#include "schedulers/baselines.hpp"
#include "schedulers/bvn.hpp"
#include "schedulers/greedy.hpp"
#include "schedulers/hopcroft_karp.hpp"
#include "schedulers/hungarian.hpp"
#include "schedulers/rga.hpp"
#include "schedulers/rotor.hpp"
#include "demand/edf.hpp"
#include "schedulers/serena.hpp"
#include "schedulers/solstice.hpp"
#include "schedulers/srpt.hpp"
#include "schedulers/wavefront.hpp"

namespace xdrs::schedulers {

// ----------------------------------------------------------------- PolicySpec

PolicySpec PolicySpec::parse(std::string_view spec) {
  PolicySpec p;
  const auto colon = spec.find(':');
  if (colon == std::string_view::npos) {
    p.name_ = std::string{spec};
  } else {
    p.name_ = std::string{spec.substr(0, colon)};
    p.arg_ = std::string{spec.substr(colon + 1)};
    p.has_arg_ = true;
  }
  return p;
}

std::uint32_t PolicySpec::uint_arg(std::uint32_t fallback) const {
  if (!has_arg_) return fallback;
  std::uint32_t v = 0;
  const char* end = arg_.data() + arg_.size();
  const auto [ptr, ec] = std::from_chars(arg_.data(), end, v);
  if (ec != std::errc{} || ptr != end || v == 0) {
    throw std::invalid_argument{"policy spec '" + str() + "': bad integer argument"};
  }
  return v;
}

double PolicySpec::double_arg(double fallback) const {
  if (!has_arg_) return fallback;
  double v = 0.0;
  const char* end = arg_.data() + arg_.size();
  const auto [ptr, ec] = std::from_chars(arg_.data(), end, v);
  if (ec != std::errc{} || ptr != end) {
    throw std::invalid_argument{"policy spec '" + str() + "': bad numeric argument"};
  }
  return v;
}

double PolicySpec::mhz_arg(double fallback) const {
  if (!has_arg_) return fallback;
  std::string_view s{arg_};
  double scale = 1.0;
  if (s.size() > 3 && (s.ends_with("MHz") || s.ends_with("mhz"))) {
    s.remove_suffix(3);
  } else if (s.size() > 3 && (s.ends_with("GHz") || s.ends_with("ghz"))) {
    s.remove_suffix(3);
    scale = 1000.0;
  }
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size() || v <= 0.0) {
    throw std::invalid_argument{"policy spec '" + str() +
                                "': bad frequency (want e.g. '500MHz' or '1.2GHz')"};
  }
  return v * scale;
}

std::string PolicySpec::str() const { return has_arg_ ? name_ + ":" + arg_ : name_; }

// ------------------------------------------------------------- PolicyRegistry

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry r;
  return r;
}

const PolicyRegistry::Table& PolicyRegistry::table(PolicyKind kind) const {
  switch (kind) {
    case PolicyKind::kMatcher: return matchers_;
    case PolicyKind::kCircuit: return circuits_;
    case PolicyKind::kEstimator: return estimators_;
    case PolicyKind::kTiming: return timings_;
  }
  throw std::logic_error{"PolicyRegistry: bad kind"};
}

PolicyRegistry::Table& PolicyRegistry::table(PolicyKind kind) {
  return const_cast<Table&>(static_cast<const PolicyRegistry*>(this)->table(kind));
}

void PolicyRegistry::register_entry(PolicyKind kind, const std::string& name, Entry entry) {
  if (name.empty() || name.find(':') != std::string::npos || name.find('/') != std::string::npos) {
    throw std::invalid_argument{"PolicyRegistry: policy name '" + name +
                                "' must be non-empty and contain no ':' or '/'"};
  }
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto [it, inserted] = table(kind).emplace(name, std::move(entry));
  if (!inserted) {
    throw std::invalid_argument{"PolicyRegistry: " + std::string{to_string(kind)} + " '" + name +
                                "' already registered"};
  }
}

void PolicyRegistry::register_matcher(const std::string& name, MatcherFactory f,
                                      std::vector<std::string> example_specs) {
  Entry e;
  e.matcher = std::move(f);
  e.examples = std::move(example_specs);
  register_entry(PolicyKind::kMatcher, name, std::move(e));
}

void PolicyRegistry::register_circuit(const std::string& name, CircuitFactory f,
                                      std::vector<std::string> example_specs) {
  Entry e;
  e.circuit = std::move(f);
  e.examples = std::move(example_specs);
  register_entry(PolicyKind::kCircuit, name, std::move(e));
}

void PolicyRegistry::register_estimator(const std::string& name, EstimatorFactory f,
                                        std::vector<std::string> example_specs) {
  Entry e;
  e.estimator = std::move(f);
  e.examples = std::move(example_specs);
  register_entry(PolicyKind::kEstimator, name, std::move(e));
}

void PolicyRegistry::register_timing(const std::string& name, TimingFactory f,
                                     std::vector<std::string> example_specs) {
  Entry e;
  e.timing = std::move(f);
  e.examples = std::move(example_specs);
  register_entry(PolicyKind::kTiming, name, std::move(e));
}

const PolicyRegistry::Entry& PolicyRegistry::find(PolicyKind kind, const PolicySpec& spec) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  const Table& t = table(kind);
  const auto it = t.find(spec.name());
  if (it == t.end()) {
    std::string known;
    for (const auto& [n, e] : t) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument{"PolicyRegistry: unknown " + std::string{to_string(kind)} + " '" +
                                spec.str() + "' (known: " + known + ")"};
  }
  return it->second;
}

std::unique_ptr<MatchingAlgorithm> PolicyRegistry::make_matcher(std::string_view spec,
                                                                const PolicyContext& ctx) const {
  const PolicySpec p = PolicySpec::parse(spec);
  return find(PolicyKind::kMatcher, p).matcher(p, ctx);
}

std::unique_ptr<CircuitScheduler> PolicyRegistry::make_circuit(std::string_view spec,
                                                               const PolicyContext& ctx) const {
  const PolicySpec p = PolicySpec::parse(spec);
  return find(PolicyKind::kCircuit, p).circuit(p, ctx);
}

std::unique_ptr<demand::DemandEstimator> PolicyRegistry::make_estimator(
    std::string_view spec, const PolicyContext& ctx) const {
  const PolicySpec p = PolicySpec::parse(spec);
  return find(PolicyKind::kEstimator, p).estimator(p, ctx);
}

std::unique_ptr<control::SchedulerTimingModel> PolicyRegistry::make_timing(
    std::string_view spec, const PolicyContext& ctx) const {
  const PolicySpec p = PolicySpec::parse(spec);
  return find(PolicyKind::kTiming, p).timing(p, ctx);
}

std::vector<std::string> PolicyRegistry::known_specs(PolicyKind kind) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<std::string> specs;
  for (const auto& [name, entry] : table(kind)) {
    specs.insert(specs.end(), entry.examples.begin(), entry.examples.end());
  }
  return specs;  // map order keeps this deterministic and near-sorted
}

bool PolicyRegistry::knows(PolicyKind kind, std::string_view name) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  const Table& t = table(kind);
  return t.find(name) != t.end();
}

std::vector<PolicyKind> PolicyRegistry::kinds_of(std::string_view name) const {
  std::vector<PolicyKind> kinds;
  for (const PolicyKind k : {PolicyKind::kMatcher, PolicyKind::kCircuit, PolicyKind::kEstimator,
                             PolicyKind::kTiming}) {
    if (knows(k, name)) kinds.push_back(k);
  }
  return kinds;
}

// ------------------------------------------------------------------ built-ins

PolicyRegistry::PolicyRegistry() {
  // ---- matchers: the RGA family takes an iteration count ------------------
  register_matcher(
      "rrm",
      [](const PolicySpec& s, const PolicyContext& c) -> std::unique_ptr<MatchingAlgorithm> {
        return std::make_unique<RrmMatcher>(c.ports, s.uint_arg(1));
      },
      {"rrm:1"});
  register_matcher(
      "islip",
      [](const PolicySpec& s, const PolicyContext& c) -> std::unique_ptr<MatchingAlgorithm> {
        return std::make_unique<IslipMatcher>(c.ports, s.uint_arg(1));
      },
      {"islip:1", "islip:4"});
  register_matcher(
      "pim",
      [](const PolicySpec& s, const PolicyContext& c) -> std::unique_ptr<MatchingAlgorithm> {
        return std::make_unique<PimMatcher>(c.ports, s.uint_arg(1), c.seed);
      },
      {"pim:1", "pim:4"});
  register_matcher(
      "ilqf",
      [](const PolicySpec&, const PolicyContext&) -> std::unique_ptr<MatchingAlgorithm> {
        return std::make_unique<GreedyMaxWeightMatcher>();
      },
      {"ilqf"});
  register_matcher(
      "maxweight",
      [](const PolicySpec&, const PolicyContext&) -> std::unique_ptr<MatchingAlgorithm> {
        return std::make_unique<HungarianMatcher>();
      },
      {"maxweight"});
  register_matcher(
      "maxsize",
      [](const PolicySpec&, const PolicyContext&) -> std::unique_ptr<MatchingAlgorithm> {
        return std::make_unique<MaxSizeMatcher>();
      },
      {"maxsize"});
  register_matcher(
      "rotor",
      [](const PolicySpec&, const PolicyContext& c) -> std::unique_ptr<MatchingAlgorithm> {
        return std::make_unique<RotorMatcher>(c.ports);
      },
      {"rotor"});
  register_matcher(
      "wavefront",
      [](const PolicySpec&, const PolicyContext& c) -> std::unique_ptr<MatchingAlgorithm> {
        return std::make_unique<WavefrontMatcher>(c.ports);
      },
      {"wavefront"});
  register_matcher(
      "serena",
      [](const PolicySpec&, const PolicyContext& c) -> std::unique_ptr<MatchingAlgorithm> {
        return std::make_unique<SerenaMatcher>(c.ports, c.seed);
      },
      {"serena"});
  register_matcher(
      "srpt_w",
      [](const PolicySpec& s, const PolicyContext&) -> std::unique_ptr<MatchingAlgorithm> {
        // Optional argument: urgency steepness gamma ("srpt_w:2.0").
        const double gamma = s.double_arg(1.0);
        if (gamma <= 0.0) {
          throw std::invalid_argument{"policy spec '" + s.str() + "': gamma must be positive"};
        }
        return std::make_unique<SrptWeightedMatcher>(gamma);
      },
      {"srpt_w:2"});

  // ---- circuit schedulers -------------------------------------------------
  register_circuit(
      "solstice",
      [](const PolicySpec& s, const PolicyContext& c) -> std::unique_ptr<CircuitScheduler> {
        SolsticeConfig sc;
        sc.reconfig_cost_bytes = c.reconfig_cost_bytes;
        sc.max_slots = c.ports;
        // Optional argument: minimum amortisation factor ("solstice:1.5");
        // an explicit 0 disables the threshold, no argument keeps the
        // library default.
        if (s.has_arg()) {
          const double amort = s.double_arg(0.0);
          if (amort < 0.0) {
            throw std::invalid_argument{"policy spec '" + s.str() +
                                        "': amortisation factor must be >= 0"};
          }
          sc.min_amortisation = amort;
        }
        return std::make_unique<SolsticeScheduler>(sc);
      },
      {"solstice"});
  register_circuit(
      "cthrough",
      [](const PolicySpec&, const PolicyContext&) -> std::unique_ptr<CircuitScheduler> {
        return std::make_unique<CThroughScheduler>();
      },
      {"cthrough"});
  register_circuit(
      "tms",
      [](const PolicySpec& s, const PolicyContext&) -> std::unique_ptr<CircuitScheduler> {
        return std::make_unique<TmsScheduler>(s.uint_arg(4));
      },
      {"tms:4"});
  register_circuit(
      "bvn",
      [](const PolicySpec& s, const PolicyContext& c) -> std::unique_ptr<CircuitScheduler> {
        return std::make_unique<BvnScheduler>(s.uint_arg(c.ports));
      },
      {"bvn:4"});

  // ---- demand estimators --------------------------------------------------
  register_estimator(
      "instantaneous",
      [](const PolicySpec&, const PolicyContext& c) -> std::unique_ptr<demand::DemandEstimator> {
        return std::make_unique<demand::InstantaneousEstimator>(c.ports, c.ports);
      },
      {"instantaneous"});
  register_estimator(  // alias
      "instant",
      [](const PolicySpec&, const PolicyContext& c) -> std::unique_ptr<demand::DemandEstimator> {
        return std::make_unique<demand::InstantaneousEstimator>(c.ports, c.ports);
      });
  register_estimator(
      "ewma",
      [](const PolicySpec& s, const PolicyContext& c) -> std::unique_ptr<demand::DemandEstimator> {
        const double alpha = s.double_arg(0.25);
        if (alpha <= 0.0 || alpha > 1.0) {
          throw std::invalid_argument{"policy spec '" + s.str() +
                                      "': EWMA alpha must be in (0, 1]"};
        }
        return std::make_unique<demand::EwmaEstimator>(c.ports, c.ports, alpha);
      },
      {"ewma:0.25"});
  register_estimator(
      "edf",
      [](const PolicySpec& s, const PolicyContext& c) -> std::unique_ptr<demand::DemandEstimator> {
        // Optional argument: urgency boost ("edf:4"); default 4 weights a
        // queue due within one epoch at 5x its raw backlog.
        const double boost = s.double_arg(4.0);
        if (boost <= 0.0) {
          throw std::invalid_argument{"policy spec '" + s.str() + "': boost must be positive"};
        }
        return std::make_unique<demand::EdfEstimator>(c.ports, c.ports, boost);
      },
      {"edf"});
  register_estimator(
      "windowed",
      [](const PolicySpec& s, const PolicyContext& c) -> std::unique_ptr<demand::DemandEstimator> {
        // Optional argument: bucket width in microseconds ("windowed:25").
        const double bucket_us = s.double_arg(25.0);
        if (bucket_us <= 0.0) {
          throw std::invalid_argument{"policy spec '" + s.str() +
                                      "': bucket width must be positive"};
        }
        return std::make_unique<demand::WindowedRateEstimator>(
            c.ports, c.ports, sim::Time::nanoseconds(static_cast<std::int64_t>(bucket_us * 1e3)),
            4);
      },
      {"windowed"});

  // ---- timing models ------------------------------------------------------
  const auto hardware_factory =
      [](const PolicySpec& s,
         const PolicyContext&) -> std::unique_ptr<control::SchedulerTimingModel> {
    control::HardwareTimingConfig cfg;
    // Optional argument: pipeline clock ("hw:500MHz"); default is the
    // 156.25 MHz NetFPGA-SUME datapath clock baked into the config.
    const double mhz = s.mhz_arg(0.0);
    if (mhz > 0.0) {
      cfg.clock_period = sim::Time::picoseconds(static_cast<std::int64_t>(1e6 / mhz));
    }
    return std::make_unique<control::HardwareSchedulerTimingModel>(cfg);
  };
  register_timing("hardware", hardware_factory, {"hardware", "hw:500MHz"});
  register_timing("hw", hardware_factory);  // alias
  const auto software_factory =
      [](const PolicySpec&,
         const PolicyContext&) -> std::unique_ptr<control::SchedulerTimingModel> {
    return std::make_unique<control::SoftwareSchedulerTimingModel>();
  };
  register_timing("software", software_factory, {"software"});
  register_timing("sw", software_factory);  // alias
  register_timing(
      "distributed",
      [](const PolicySpec&,
         const PolicyContext&) -> std::unique_ptr<control::SchedulerTimingModel> {
        return std::make_unique<control::DistributedSchedulerTimingModel>();
      },
      {"distributed"});
  register_timing(
      "ideal",
      [](const PolicySpec&,
         const PolicyContext&) -> std::unique_ptr<control::SchedulerTimingModel> {
        return std::make_unique<control::IdealTimingModel>();
      },
      {"ideal"});
}

}  // namespace xdrs::schedulers
