// SRPT urgency weighting for matchers (shortest-remaining-processing-time).
//
// Weight-driven matchers (maxweight, ilqf-greedy) serve the HEAVIEST
// backlog first — the right call for throughput, the wrong one for
// deadlines: a 2 KB RPC response with 50 us of slack loses every
// arbitration to a 100 MB shuffle flow that could not care less.  pFabric
// and PDQ invert the priority: serve the flow closest to done.  This
// wrapper expresses that inversion in the demand-matrix vocabulary by
// transforming each VOQ's backlog d into
//
//   w(d) = clamp(W / d^gamma, 1, W),  W = 10^14
//
// and handing the transformed matrix to an inner greedy max-weight matcher,
// which now grants the SMALLEST remaining queues first.  gamma sets the
// steepness: gamma -> 0 degenerates to maximal matching (size-blind),
// gamma = 1 is classic 1/remaining SRPT, larger gamma sharpens the
// preference for nearly-done queues.  The transform preserves support
// exactly (w >= 1 iff d >= 1), so the "never grant zero demand" contract
// holds, and is applied into a recycled scratch matrix, so the hot path
// stays allocation-free.
//
// Epoch-warm correctness: the inner matcher caches on equality of the
// TRANSFORMED matrix — the only input the algorithm reads — so any urgency
// change (backlog drains, EDF-estimator boosts shifting the demand)
// invalidates the warm entry by construction, while genuinely unchanged
// urgency replays bit-identically.
#ifndef XDRS_SCHEDULERS_SRPT_HPP
#define XDRS_SCHEDULERS_SRPT_HPP

#include "schedulers/greedy.hpp"
#include "schedulers/matcher.hpp"

namespace xdrs::schedulers {

class SrptWeightedMatcher final : public MatchingAlgorithm {
 public:
  /// Precondition: gamma > 0.
  explicit SrptWeightedMatcher(double gamma);

  void compute_into(const demand::DemandMatrix& demand, Matching& out) override;
  [[nodiscard]] std::string name() const override { return "srpt-weighted"; }
  [[nodiscard]] std::uint32_t last_iterations() const noexcept override {
    return inner_.last_iterations();
  }
  [[nodiscard]] bool hardware_parallel() const noexcept override { return false; }

  [[nodiscard]] double gamma() const noexcept { return gamma_; }

 private:
  double gamma_;
  GreedyMaxWeightMatcher inner_;
  demand::DemandMatrix scratch_;  ///< recycled urgency-transformed demand
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_SRPT_HPP
