#include "schedulers/hopcroft_karp.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace xdrs::schedulers {

namespace {
constexpr std::uint32_t kInfDist = std::numeric_limits<std::uint32_t>::max();
}

HopcroftKarp::HopcroftKarp(std::uint32_t left_count, std::uint32_t right_count)
    : left_count_{left_count},
      right_count_{right_count},
      adj_(left_count),
      match_left_(left_count, kFree),
      match_right_(right_count, kFree),
      dist_(left_count, kInfDist) {}

void HopcroftKarp::add_edge(std::uint32_t left, std::uint32_t right) {
  if (left >= left_count_ || right >= right_count_) {
    throw std::out_of_range{"HopcroftKarp::add_edge"};
  }
  adj_[left].push_back(right);
}

void HopcroftKarp::clear_edges() {
  for (auto& a : adj_) a.clear();
  std::fill(match_left_.begin(), match_left_.end(), kFree);
  std::fill(match_right_.begin(), match_right_.end(), kFree);
  phases_ = 0;
}

void HopcroftKarp::reset(std::uint32_t left_count, std::uint32_t right_count) {
  if (left_count == left_count_ && right_count == right_count_) {
    clear_edges();
    return;
  }
  left_count_ = left_count;
  right_count_ = right_count;
  adj_.resize(left_count);
  match_left_.resize(left_count);
  match_right_.resize(right_count);
  dist_.resize(left_count);
  clear_edges();
}

bool HopcroftKarp::bfs() {
  // Each left vertex enters the FIFO at most once per phase, so a flat
  // head-indexed vector replaces the deque without bounding assumptions.
  queue_.clear();
  std::size_t head = 0;
  for (std::uint32_t l = 0; l < left_count_; ++l) {
    if (match_left_[l] == kFree) {
      dist_[l] = 0;
      queue_.push_back(l);
    } else {
      dist_[l] = kInfDist;
    }
  }
  bool found_augmenting = false;
  while (head < queue_.size()) {
    const std::uint32_t l = queue_[head++];
    for (const std::uint32_t r : adj_[l]) {
      const std::uint32_t next = match_right_[r];
      if (next == kFree) {
        found_augmenting = true;
      } else if (dist_[next] == kInfDist) {
        dist_[next] = dist_[l] + 1;
        queue_.push_back(next);
      }
    }
  }
  return found_augmenting;
}

bool HopcroftKarp::dfs(std::uint32_t left) {
  for (const std::uint32_t r : adj_[left]) {
    const std::uint32_t next = match_right_[r];
    if (next == kFree || (dist_[next] == dist_[left] + 1 && dfs(next))) {
      match_left_[left] = r;
      match_right_[r] = left;
      return true;
    }
  }
  dist_[left] = kInfDist;
  return false;
}

std::uint32_t HopcroftKarp::solve() {
  std::fill(match_left_.begin(), match_left_.end(), kFree);
  std::fill(match_right_.begin(), match_right_.end(), kFree);
  phases_ = 0;
  std::uint32_t matched = 0;
  while (bfs()) {
    ++phases_;
    for (std::uint32_t l = 0; l < left_count_; ++l) {
      if (match_left_[l] == kFree && dfs(l)) ++matched;
    }
  }
  return matched;
}

std::uint32_t HopcroftKarp::match_of_left(std::uint32_t left) const {
  if (left >= left_count_) throw std::out_of_range{"HopcroftKarp::match_of_left"};
  return match_left_[left];
}

void MaxSizeMatcher::compute_into(const demand::DemandMatrix& demand, Matching& out) {
  // Warm replay on support equality: max-size matching never looks at the
  // demand values, only at which pairs are positive.
  if (warm_valid_ && demand.inputs() == prev_inputs_ && demand.outputs() == prev_outputs_ &&
      demand.row_support_words() == prev_support_) {
    out = prev_result_;
    last_iterations_ = prev_iterations_;
    return;
  }

  hk_.reset(demand.inputs(), demand.outputs());
  // Edge harvest straight off the support bitmap, row-major ascending.
  const std::uint32_t wpr = demand.words_per_row();
  for (std::uint32_t i = 0; i < demand.inputs(); ++i) {
    const std::uint64_t* bits = demand.row_support(i);
    for (std::uint32_t w = 0; w < wpr; ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        hk_.add_edge(i, w * 64u + static_cast<std::uint32_t>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }
  hk_.solve();
  last_iterations_ = hk_.phases();

  out.reset(demand.inputs(), demand.outputs());
  for (std::uint32_t l = 0; l < demand.inputs(); ++l) {
    const std::uint32_t r = hk_.match_of_left(l);
    if (r != HopcroftKarp::kFree) out.match(l, r);
  }

  prev_support_ = demand.row_support_words();
  prev_inputs_ = demand.inputs();
  prev_outputs_ = demand.outputs();
  prev_result_ = out;
  prev_iterations_ = last_iterations_;
  warm_valid_ = true;
}

}  // namespace xdrs::schedulers
