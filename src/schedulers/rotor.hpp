// Demand-oblivious rotor scheduling: cycle through the N-1 rotations of the
// identity permutation, giving every input-output pair equal service.
//
// Listed by the paper's framing as the extreme point of "fast but
// demand-unaware": it needs no demand estimation at all (zero scheduling
// latency) at the cost of stretching skewed traffic.  Included as an
// ablation endpoint (RotorNet-style designs made this respectable later).
#ifndef XDRS_SCHEDULERS_ROTOR_HPP
#define XDRS_SCHEDULERS_ROTOR_HPP

#include "schedulers/matcher.hpp"

namespace xdrs::schedulers {

class RotorMatcher final : public MatchingAlgorithm {
 public:
  explicit RotorMatcher(std::uint32_t ports);

  /// Writes the next rotation regardless of demand (skipping shift 0 only
  /// when ports == 1 would make it degenerate is unnecessary: shift 0 maps
  /// i -> i, which is a valid self-loop-free config because a port never has
  /// demand to itself in practice; we still start at shift 1 to avoid it).
  void compute_into(const demand::DemandMatrix& demand, Matching& out) override;

  [[nodiscard]] std::string name() const override { return "rotor"; }
  [[nodiscard]] std::uint32_t last_iterations() const noexcept override { return 1; }
  [[nodiscard]] bool hardware_parallel() const noexcept override { return true; }

  [[nodiscard]] std::uint32_t current_shift() const noexcept { return shift_; }

 private:
  std::uint32_t ports_;
  std::uint32_t shift_{1};
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_ROTOR_HPP
