#include "schedulers/solstice.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <vector>

#include "schedulers/hopcroft_karp.hpp"

namespace xdrs::schedulers {
namespace {

/// Largest power of two <= v (v > 0).
std::int64_t floor_pow2(std::int64_t v) {
  return std::int64_t{1} << (63 - std::countl_zero(static_cast<std::uint64_t>(v)));
}

demand::DemandMatrix pad_to_equal_lines(const demand::DemandMatrix& dem) {
  const std::uint32_t n = dem.inputs();
  const std::int64_t phi = dem.max_line_sum();
  demand::DemandMatrix padded = dem;
  std::vector<std::int64_t> r(n), c(n);
  for (std::uint32_t i = 0; i < n; ++i) r[i] = phi - dem.row_sum(i);
  for (std::uint32_t j = 0; j < n; ++j) c[j] = phi - dem.col_sum(j);
  std::uint32_t i = 0, j = 0;
  while (i < n && j < n) {
    const std::int64_t s = std::min(r[i], c[j]);
    if (s > 0) padded.add(i, j, s);
    r[i] -= s;
    c[j] -= s;
    if (r[i] == 0) ++i;
    if (j < n && c[j] == 0) ++j;
  }
  return padded;
}

}  // namespace

SolsticeScheduler::SolsticeScheduler(SolsticeConfig cfg) : cfg_{cfg} {
  if (cfg.reconfig_cost_bytes < 0) {
    throw std::invalid_argument{"SolsticeScheduler: negative reconfiguration cost"};
  }
  if (cfg.min_amortisation < 0.0) {
    throw std::invalid_argument{"SolsticeScheduler: negative amortisation factor"};
  }
}

CircuitPlan SolsticeScheduler::plan(const demand::DemandMatrix& dem) {
  if (dem.inputs() != dem.outputs()) {
    throw std::invalid_argument{"SolsticeScheduler: matrix must be square"};
  }
  const std::uint32_t n = dem.inputs();

  CircuitPlan plan;
  plan.residual = dem;
  if (dem.total() == 0) return plan;

  demand::DemandMatrix stuffed = pad_to_equal_lines(dem);
  // A slot of t bytes per pair must beat the dark-time opportunity cost.
  const auto min_slot_bytes = static_cast<std::int64_t>(
      cfg_.min_amortisation * static_cast<double>(cfg_.reconfig_cost_bytes));

  std::int64_t t = floor_pow2(std::max<std::int64_t>(1, stuffed.max_element()));
  HopcroftKarp hk{n, n};
  while (t > 0 && t >= std::max<std::int64_t>(1, min_slot_bytes)) {
    if (cfg_.max_slots > 0 && plan.slots.size() >= cfg_.max_slots) break;

    hk.clear_edges();
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        if (stuffed.at(i, j) >= t) hk.add_edge(i, j);
      }
    }
    if (hk.solve() < n) {
      t /= 2;  // threshold too demanding: no perfect matching at this level
      continue;
    }

    CircuitSlot slot;
    slot.configuration = Matching{n, n};
    slot.weight_bytes = t;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t j = hk.match_of_left(i);
      slot.configuration.match(i, j);
      stuffed.subtract_clamped(i, j, t);
      plan.residual.subtract_clamped(i, j, t);
    }
    plan.slots.push_back(std::move(slot));
    if (plan.residual.total() == 0) break;  // all real demand covered
  }
  return plan;
}

}  // namespace xdrs::schedulers
