#include "schedulers/solstice.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <vector>

namespace xdrs::schedulers {
namespace {

/// Largest power of two <= v (v > 0).
std::int64_t floor_pow2(std::int64_t v) {
  return std::int64_t{1} << (63 - std::countl_zero(static_cast<std::uint64_t>(v)));
}

}  // namespace

SolsticeScheduler::SolsticeScheduler(SolsticeConfig cfg) : cfg_{cfg} {
  if (cfg.reconfig_cost_bytes < 0) {
    throw std::invalid_argument{"SolsticeScheduler: negative reconfiguration cost"};
  }
  if (cfg.min_amortisation < 0.0) {
    throw std::invalid_argument{"SolsticeScheduler: negative amortisation factor"};
  }
}

void SolsticeScheduler::plan_into(const demand::DemandMatrix& dem, CircuitPlan& out) {
  if (dem.inputs() != dem.outputs()) {
    throw std::invalid_argument{"SolsticeScheduler: matrix must be square"};
  }
  const std::uint32_t n = dem.inputs();

  out.residual.copy_from(dem);
  if (dem.total() == 0) {
    out.slots.clear();
    return;
  }

  // Stuff the demand so all line sums equal phi (northwest-corner rule),
  // working in the recycled copy so the epoch allocates nothing.
  stuffed_.copy_from(dem);
  {
    const std::int64_t phi = dem.max_line_sum();
    row_slack_.resize(n);
    col_slack_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) row_slack_[i] = phi - dem.row_sum(i);
    for (std::uint32_t j = 0; j < n; ++j) col_slack_[j] = phi - dem.col_sum(j);
    std::uint32_t i = 0, j = 0;
    while (i < n && j < n) {
      const std::int64_t s = std::min(row_slack_[i], col_slack_[j]);
      if (s > 0) stuffed_.add(i, j, s);
      row_slack_[i] -= s;
      col_slack_[j] -= s;
      if (row_slack_[i] == 0) ++i;
      if (j < n && col_slack_[j] == 0) ++j;
    }
  }

  // A slot of t bytes per pair must beat the dark-time opportunity cost.
  const auto min_slot_bytes = static_cast<std::int64_t>(
      cfg_.min_amortisation * static_cast<double>(cfg_.reconfig_cost_bytes));

  std::int64_t t = floor_pow2(std::max<std::int64_t>(1, stuffed_.max_element()));
  std::size_t used = 0;
  while (t > 0 && t >= std::max<std::int64_t>(1, min_slot_bytes)) {
    if (cfg_.max_slots > 0 && used >= cfg_.max_slots) break;

    hk_.reset(n, n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::int64_t* row = stuffed_.row_data(i);
      for (std::uint32_t j = 0; j < n; ++j) {
        if (row[j] >= t) hk_.add_edge(i, j);
      }
    }
    if (hk_.solve() < n) {
      t /= 2;  // threshold too demanding: no perfect matching at this level
      continue;
    }

    CircuitSlot& slot = out.reuse_slot(used++, n);
    slot.weight_bytes = t;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t j = hk_.match_of_left(i);
      slot.configuration.match(i, j);
      stuffed_.subtract_clamped(i, j, t);
      out.residual.subtract_clamped(i, j, t);
    }
    if (out.residual.total() == 0) break;  // all real demand covered
  }
  out.slots.resize(used);
}

}  // namespace xdrs::schedulers
