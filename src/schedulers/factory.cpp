#include "schedulers/factory.hpp"

#include <charconv>
#include <stdexcept>

#include "schedulers/greedy.hpp"
#include "schedulers/hopcroft_karp.hpp"
#include "schedulers/hungarian.hpp"
#include "schedulers/rga.hpp"
#include "schedulers/rotor.hpp"
#include "schedulers/serena.hpp"
#include "schedulers/wavefront.hpp"

namespace xdrs::schedulers {
namespace {

struct ParsedSpec {
  std::string_view algo;
  std::uint32_t iterations;
};

ParsedSpec parse(std::string_view spec, std::uint32_t default_iters) {
  const auto colon = spec.find(':');
  if (colon == std::string_view::npos) return {spec, default_iters};
  const std::string_view algo = spec.substr(0, colon);
  const std::string_view iters_str = spec.substr(colon + 1);
  std::uint32_t iters = 0;
  const auto [ptr, ec] =
      std::from_chars(iters_str.data(), iters_str.data() + iters_str.size(), iters);
  if (ec != std::errc{} || ptr != iters_str.data() + iters_str.size() || iters == 0) {
    throw std::invalid_argument{"make_matcher: bad iteration count in spec '" +
                                std::string{spec} + "'"};
  }
  return {algo, iters};
}

}  // namespace

std::unique_ptr<MatchingAlgorithm> make_matcher(std::string_view spec, std::uint32_t ports,
                                                std::uint64_t seed) {
  const ParsedSpec p = parse(spec, 1);
  if (p.algo == "rrm") return std::make_unique<RrmMatcher>(ports, p.iterations);
  if (p.algo == "islip") return std::make_unique<IslipMatcher>(ports, p.iterations);
  if (p.algo == "pim") return std::make_unique<PimMatcher>(ports, p.iterations, seed);
  if (p.algo == "ilqf") return std::make_unique<GreedyMaxWeightMatcher>();
  if (p.algo == "maxweight") return std::make_unique<HungarianMatcher>();
  if (p.algo == "maxsize") return std::make_unique<MaxSizeMatcher>();
  if (p.algo == "rotor") return std::make_unique<RotorMatcher>(ports);
  if (p.algo == "serena") return std::make_unique<SerenaMatcher>(ports, seed);
  if (p.algo == "wavefront") return std::make_unique<WavefrontMatcher>(ports);
  throw std::invalid_argument{"make_matcher: unknown scheduler spec '" + std::string{spec} + "'"};
}

std::vector<std::string> known_matcher_specs() {
  return {"rrm:1", "islip:1", "islip:4", "pim:1", "pim:4", "ilqf", "maxweight", "maxsize", "rotor", "wavefront", "serena"};
}

}  // namespace xdrs::schedulers
