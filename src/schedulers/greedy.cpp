#include "schedulers/greedy.hpp"

#include <algorithm>
#include <vector>

namespace xdrs::schedulers {

void GreedyMaxWeightMatcher::compute_into(const demand::DemandMatrix& demand, Matching& out) {
  edges_.clear();
  demand.for_each_nonzero(
      [this](net::PortId i, net::PortId j, std::int64_t w) { edges_.push_back({w, i, j}); });

  // Heaviest first; ties broken by (input, output) for determinism.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.w != b.w) return a.w > b.w;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });

  out.reset(demand.inputs(), demand.outputs());
  last_iterations_ = 0;
  for (const Edge& e : edges_) {
    if (out.size() == std::min(demand.inputs(), demand.outputs())) break;
    if (out.input_matched(e.i) || out.output_matched(e.j)) continue;
    out.match(e.i, e.j);
    ++last_iterations_;
  }
}

}  // namespace xdrs::schedulers
