#include "schedulers/greedy.hpp"

#include <algorithm>
#include <bit>
#include <vector>

namespace xdrs::schedulers {

void GreedyMaxWeightMatcher::compute_into(const demand::DemandMatrix& demand, Matching& out) {
  if (warm_valid_ && demand == prev_demand_) {
    out = prev_result_;
    last_iterations_ = prev_iterations_;
    return;
  }

  // Harvest positive edges straight off the support bitmap: one word test
  // per 64 outputs, find-first-set within each word (row-major ascending,
  // same order the generic visitor produced).
  edges_.clear();
  const std::uint32_t wpr = demand.words_per_row();
  for (std::uint32_t i = 0; i < demand.inputs(); ++i) {
    const std::uint64_t* bits = demand.row_support(i);
    const std::int64_t* row = demand.row_data(i);
    for (std::uint32_t w = 0; w < wpr; ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        const std::uint32_t j = w * 64u + static_cast<std::uint32_t>(std::countr_zero(word));
        edges_.push_back({row[j], i, j});
        word &= word - 1;
      }
    }
  }

  // Heaviest first; ties broken by (input, output) for determinism.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.w != b.w) return a.w > b.w;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });

  out.reset(demand.inputs(), demand.outputs());
  last_iterations_ = 0;
  for (const Edge& e : edges_) {
    if (out.size() == std::min(demand.inputs(), demand.outputs())) break;
    if (out.input_matched(e.i) || out.output_matched(e.j)) continue;
    out.match(e.i, e.j);
    ++last_iterations_;
  }

  prev_demand_.copy_from(demand);
  prev_result_ = out;
  prev_iterations_ = last_iterations_;
  warm_valid_ = true;
}

}  // namespace xdrs::schedulers
