#include "schedulers/greedy.hpp"

#include <algorithm>
#include <vector>

namespace xdrs::schedulers {

Matching GreedyMaxWeightMatcher::compute(const demand::DemandMatrix& demand) {
  struct Edge {
    std::int64_t w;
    net::PortId i;
    net::PortId j;
  };
  std::vector<Edge> edges;
  edges.reserve(demand.nonzero_count());
  demand.for_each_nonzero(
      [&edges](net::PortId i, net::PortId j, std::int64_t w) { edges.push_back({w, i, j}); });

  // Heaviest first; ties broken by (input, output) for determinism.
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.w != b.w) return a.w > b.w;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });

  Matching m{demand.inputs(), demand.outputs()};
  last_iterations_ = 0;
  for (const Edge& e : edges) {
    if (m.size() == std::min(demand.inputs(), demand.outputs())) break;
    if (m.input_matched(e.i) || m.output_matched(e.j)) continue;
    m.match(e.i, e.j);
    ++last_iterations_;
  }
  return m;
}

}  // namespace xdrs::schedulers
