// Maximum-cardinality bipartite matching (Hopcroft–Karp, O(E sqrt(V))).
//
// Two roles in this repository:
//  * a matcher that maximises the number of busy ports per slot (max-size
//    matching — optimal instantaneous fabric utilisation, though not
//    starvation-free), and
//  * the perfect-matching engine inside the Birkhoff–von-Neumann
//    decomposition and the Solstice-style circuit scheduler.
#ifndef XDRS_SCHEDULERS_HOPCROFT_KARP_HPP
#define XDRS_SCHEDULERS_HOPCROFT_KARP_HPP

#include <cstdint>
#include <vector>

#include "schedulers/matcher.hpp"

namespace xdrs::schedulers {

/// Standalone solver usable on an arbitrary bipartite adjacency structure.
class HopcroftKarp {
 public:
  HopcroftKarp(std::uint32_t left_count, std::uint32_t right_count);

  void add_edge(std::uint32_t left, std::uint32_t right);
  void clear_edges();

  /// Re-dimensions the solver and clears all edges, reusing existing
  /// allocations when the dimensions already match — lets one solver
  /// instance serve every epoch of a circuit scheduler without churn.
  void reset(std::uint32_t left_count, std::uint32_t right_count);

  /// Computes a maximum matching; returns its cardinality.
  std::uint32_t solve();

  /// Partner of a left vertex after solve(), or kFree.
  [[nodiscard]] std::uint32_t match_of_left(std::uint32_t left) const;

  static constexpr std::uint32_t kFree = 0xffffffffu;

  [[nodiscard]] std::uint32_t phases() const noexcept { return phases_; }

 private:
  [[nodiscard]] bool bfs();
  [[nodiscard]] bool dfs(std::uint32_t left);

  std::uint32_t left_count_;
  std::uint32_t right_count_;
  std::vector<std::vector<std::uint32_t>> adj_;
  std::vector<std::uint32_t> match_left_;
  std::vector<std::uint32_t> match_right_;
  std::vector<std::uint32_t> dist_;
  std::vector<std::uint32_t> queue_;  ///< recycled BFS FIFO (head-indexed)
  std::uint32_t phases_{0};
};

/// MatchingAlgorithm adapter: max-size matching over positive demand.
///
/// The result depends only on the SUPPORT of the demand matrix (which pairs
/// are positive), not the values — so the epoch-warm cache keys on the
/// row-major support bitmap alone, and a backlog that changed in magnitude
/// but not in pattern still replays the previous matching exactly.
class MaxSizeMatcher final : public MatchingAlgorithm {
 public:
  MaxSizeMatcher() = default;

  void compute_into(const demand::DemandMatrix& demand, Matching& out) override;
  [[nodiscard]] std::string name() const override { return "maxsize-hk"; }
  [[nodiscard]] std::uint32_t last_iterations() const noexcept override { return last_iterations_; }
  [[nodiscard]] bool hardware_parallel() const noexcept override { return false; }

 private:
  std::uint32_t last_iterations_{0};
  HopcroftKarp hk_{0, 0};  ///< recycled solver
  // Epoch-warm replay cache, keyed on (dims, support bitmap).
  std::vector<std::uint64_t> prev_support_;
  std::uint32_t prev_inputs_{0}, prev_outputs_{0};
  Matching prev_result_;
  std::uint32_t prev_iterations_{0};
  bool warm_valid_{false};
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_HOPCROFT_KARP_HPP
