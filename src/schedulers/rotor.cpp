#include "schedulers/rotor.hpp"

#include <stdexcept>

namespace xdrs::schedulers {

RotorMatcher::RotorMatcher(std::uint32_t ports) : ports_{ports} {
  if (ports == 0) throw std::invalid_argument{"RotorMatcher: ports must be >= 1"};
}

void RotorMatcher::compute_into(const demand::DemandMatrix& demand, Matching& out) {
  if (demand.inputs() != ports_ || demand.outputs() != ports_) {
    throw std::invalid_argument{"RotorMatcher: demand dimensions mismatch"};
  }
  out.reset(ports_, ports_);
  for (std::uint32_t i = 0; i < ports_; ++i) out.match(i, (i + shift_) % ports_);
  shift_ = ports_ > 1 ? (shift_ % (ports_ - 1)) + 1 : 0;  // cycle 1..N-1
}

}  // namespace xdrs::schedulers
