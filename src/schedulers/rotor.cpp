#include "schedulers/rotor.hpp"

#include <stdexcept>

namespace xdrs::schedulers {

RotorMatcher::RotorMatcher(std::uint32_t ports) : ports_{ports} {
  if (ports == 0) throw std::invalid_argument{"RotorMatcher: ports must be >= 1"};
}

Matching RotorMatcher::compute(const demand::DemandMatrix& demand) {
  if (demand.inputs() != ports_ || demand.outputs() != ports_) {
    throw std::invalid_argument{"RotorMatcher: demand dimensions mismatch"};
  }
  const Matching m = Matching::rotation(ports_, shift_);
  shift_ = ports_ > 1 ? (shift_ % (ports_ - 1)) + 1 : 0;  // cycle 1..N-1
  return m;
}

}  // namespace xdrs::schedulers
