#include "schedulers/matching.hpp"

#include <stdexcept>

namespace xdrs::schedulers {

Matching::Matching(std::uint32_t inputs, std::uint32_t outputs)
    : out_of_(inputs, kUnmatched), in_of_(outputs, kUnmatched) {}

void Matching::match(net::PortId i, net::PortId j) {
  if (i >= out_of_.size() || j >= in_of_.size()) {
    throw std::out_of_range{"Matching::match: port out of range"};
  }
  if (out_of_[i] == j) return;  // already paired exactly so
  if (out_of_[i] != kUnmatched || in_of_[j] != kUnmatched) {
    throw std::logic_error{"Matching::match: conflicting pair"};
  }
  out_of_[i] = j;
  in_of_[j] = i;
  ++matched_;
}

void Matching::unmatch_input(net::PortId i) {
  if (i >= out_of_.size()) throw std::out_of_range{"Matching::unmatch_input"};
  if (out_of_[i] == kUnmatched) return;
  in_of_[out_of_[i]] = kUnmatched;
  out_of_[i] = kUnmatched;
  --matched_;
}

std::optional<net::PortId> Matching::output_of(net::PortId input) const {
  if (input >= out_of_.size()) throw std::out_of_range{"Matching::output_of"};
  if (out_of_[input] == kUnmatched) return std::nullopt;
  return net::PortId{out_of_[input]};
}

std::optional<net::PortId> Matching::input_of(net::PortId output) const {
  if (output >= in_of_.size()) throw std::out_of_range{"Matching::input_of"};
  if (in_of_[output] == kUnmatched) return std::nullopt;
  return net::PortId{in_of_[output]};
}

bool Matching::input_matched(net::PortId input) const {
  if (input >= out_of_.size()) throw std::out_of_range{"Matching::input_matched"};
  return out_of_[input] != kUnmatched;
}

bool Matching::output_matched(net::PortId output) const {
  if (output >= in_of_.size()) throw std::out_of_range{"Matching::output_matched"};
  return in_of_[output] != kUnmatched;
}

bool Matching::is_perfect() const noexcept {
  return matched_ == out_of_.size() && matched_ == in_of_.size();
}

void Matching::clear() noexcept {
  std::fill(out_of_.begin(), out_of_.end(), kUnmatched);
  std::fill(in_of_.begin(), in_of_.end(), kUnmatched);
  matched_ = 0;
}

void Matching::reset(std::uint32_t inputs, std::uint32_t outputs) {
  if (out_of_.size() == inputs && in_of_.size() == outputs) {
    clear();
    return;
  }
  out_of_.assign(inputs, kUnmatched);
  in_of_.assign(outputs, kUnmatched);
  matched_ = 0;
}

std::string Matching::to_string() const {
  std::string s = "{";
  bool first = true;
  for_each_pair([&](net::PortId i, net::PortId j) {
    if (!first) s += ", ";
    first = false;
    s += std::to_string(i) + ">" + std::to_string(j);
  });
  s += "}";
  return s;
}

Matching Matching::rotation(std::uint32_t ports, std::uint32_t shift) {
  Matching m{ports};
  for (std::uint32_t i = 0; i < ports; ++i) m.match(i, (i + shift) % ports);
  return m;
}

}  // namespace xdrs::schedulers
