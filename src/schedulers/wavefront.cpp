#include "schedulers/wavefront.hpp"

#include <stdexcept>

namespace xdrs::schedulers {

WavefrontMatcher::WavefrontMatcher(std::uint32_t ports) : ports_{ports} {
  if (ports == 0) throw std::invalid_argument{"WavefrontMatcher: ports must be >= 1"};
}

void WavefrontMatcher::compute_into(const demand::DemandMatrix& demand, Matching& out) {
  if (demand.inputs() != ports_ || demand.outputs() != ports_) {
    throw std::invalid_argument{"WavefrontMatcher: demand dimensions mismatch"};
  }
  out.reset(ports_, ports_);

  // Wrapped wavefront: N waves, wave w covering the rotation
  // { (i, (i + d) mod N) : i }, d = (w + offset) mod N.  Cells of a wave
  // share no row or column, so hardware evaluates a whole wave in one
  // combinational step; within a wave the loop order below cannot change
  // the outcome.  N waves cover all N^2 cells.
  for (std::uint32_t w = 0; w < ports_; ++w) {
    const std::uint32_t d = (w + offset_) % ports_;
    for (std::uint32_t i = 0; i < ports_; ++i) {
      const std::uint32_t j = (i + d) % ports_;
      if (out.input_matched(i) || out.output_matched(j)) continue;
      if (demand.has_demand(i, j)) out.match(i, j);
    }
  }
  last_iterations_ = ports_;
  offset_ = (offset_ + 1) % ports_;  // rotate the priority diagonal
}

}  // namespace xdrs::schedulers
