#include "schedulers/wavefront.hpp"

#include <stdexcept>

namespace xdrs::schedulers {

WavefrontMatcher::WavefrontMatcher(std::uint32_t ports) : ports_{ports} {
  if (ports == 0) throw std::invalid_argument{"WavefrontMatcher: ports must be >= 1"};
}

Matching WavefrontMatcher::compute(const demand::DemandMatrix& demand) {
  if (demand.inputs() != ports_ || demand.outputs() != ports_) {
    throw std::invalid_argument{"WavefrontMatcher: demand dimensions mismatch"};
  }
  Matching m{ports_, ports_};

  // Wrapped wavefront: N waves, wave w covering the rotation
  // { (i, (i + d) mod N) : i }, d = (w + offset) mod N.  Cells of a wave
  // share no row or column, so hardware evaluates a whole wave in one
  // combinational step; within a wave the loop order below cannot change
  // the outcome.  N waves cover all N^2 cells.
  for (std::uint32_t w = 0; w < ports_; ++w) {
    const std::uint32_t d = (w + offset_) % ports_;
    for (std::uint32_t i = 0; i < ports_; ++i) {
      const std::uint32_t j = (i + d) % ports_;
      if (m.input_matched(i) || m.output_matched(j)) continue;
      if (demand.at_unchecked(i, j) > 0) m.match(i, j);
    }
  }
  last_iterations_ = ports_;
  offset_ = (offset_ + 1) % ports_;  // rotate the priority diagonal
  return m;
}

}  // namespace xdrs::schedulers
