// The software-scheduler baselines the paper positions itself against.
//
//  * CThroughScheduler — c-Through (Wang et al., SIGCOMM CCR 2010): one
//    maximum-weight perfect matching per epoch ("one circuit day"); traffic
//    not on the matching rides the EPS.  Demand comes from host socket
//    buffer occupancy in the original system; here the pluggable demand
//    estimator plays that role.
//  * TmsScheduler — Helios-style traffic matrix scheduling (Farrington et
//    al., SIGCOMM 2010): BvN-decompose the estimated demand, keep the k
//    most valuable permutations as circuit days, EPS takes the rest.
#ifndef XDRS_SCHEDULERS_BASELINES_HPP
#define XDRS_SCHEDULERS_BASELINES_HPP

#include <cstdint>

#include "schedulers/bvn.hpp"
#include "schedulers/circuit_scheduler.hpp"
#include "schedulers/hungarian.hpp"

namespace xdrs::schedulers {

class CThroughScheduler final : public CircuitScheduler {
 public:
  CThroughScheduler() = default;

  void plan_into(const demand::DemandMatrix& dem, CircuitPlan& out) override;
  [[nodiscard]] std::string name() const override { return "cthrough"; }

 private:
  HungarianMatcher hungarian_;  ///< recycled max-weight solver
  Matching day_;                ///< recycled epoch configuration
};

class TmsScheduler final : public CircuitScheduler {
 public:
  /// `max_days`: circuit configurations kept per epoch (k).
  explicit TmsScheduler(std::size_t max_days);

  void plan_into(const demand::DemandMatrix& dem, CircuitPlan& out) override;
  [[nodiscard]] std::string name() const override { return "tms-" + std::to_string(max_days_); }

 private:
  std::size_t max_days_;
  BvnScheduler inner_;
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_BASELINES_HPP
