#include "schedulers/rga.hpp"

#include <algorithm>
#include <stdexcept>

namespace xdrs::schedulers {

RgaMatcherBase::RgaMatcherBase(std::uint32_t max_iterations) : max_iterations_{max_iterations} {
  if (max_iterations == 0) throw std::invalid_argument{"RGA: iterations must be >= 1"};
}

void RgaMatcherBase::compute_into(const demand::DemandMatrix& demand, Matching& out) {
  const std::uint32_t inputs = demand.inputs();
  const std::uint32_t outputs = demand.outputs();
  out.reset(inputs, outputs);
  last_iterations_ = 0;

  const std::uint32_t wpr = demand.words_per_row();  // words over outputs
  const std::uint32_t wpc = demand.words_per_col();  // words over inputs

  // Occupancy masks: all ports start free.  Workspaces only reallocate when
  // the port count changes; grant_bits_ rows are re-zeroed by the accept
  // phase of the round that set them, so assigning here is enough.
  free_in_.reset_all_set(inputs);
  free_out_.reset_all_set(outputs);
  has_grant_.reset(inputs);
  const std::size_t grant_words = static_cast<std::size_t>(inputs) * wpr;
  if (grant_bits_.size() != grant_words) grant_bits_.assign(grant_words, 0);
  if (cand_.size() != wpc) cand_.assign(wpc, 0);

  const std::uint32_t max_pairs = std::min(inputs, outputs);

  for (std::uint32_t iter = 0; iter < max_iterations_; ++iter) {
    ++last_iterations_;

    // Request + grant phase: each free output's requesters are its demand
    // column ANDed with the free-input mask — one word op per 64 inputs
    // instead of the old O(inputs) scan per output.
    bool any_grant = false;
    const std::uint64_t* fin = free_in_.words();
    free_out_.view().for_each_set([&](std::uint32_t j) {
      const std::uint64_t* col = demand.col_support(j);
      std::uint64_t nonzero = 0;
      for (std::uint32_t w = 0; w < wpc; ++w) {
        cand_[w] = col[w] & fin[w];
        nonzero |= cand_[w];
      }
      if (nonzero == 0) return;
      const net::PortId chosen = select_grant(j, {cand_.data(), wpc});
      grant_bits_[static_cast<std::size_t>(chosen) * wpr + j / 64u] |= std::uint64_t{1}
                                                                      << (j % 64u);
      has_grant_.set(chosen);
      any_grant = true;
    });
    if (!any_grant) break;  // no requests anywhere: the matching is maximal

    // Accept phase: each granted input accepts one output, ascending input
    // order (the contract the deterministic pointer disciplines and the
    // PIM rng stream both rely on).  Every grant row set this round is
    // cleared here, restoring the all-zero invariant.
    has_grant_.view().for_each_set([&](std::uint32_t i) {
      const std::size_t row = static_cast<std::size_t>(i) * wpr;
      const net::PortId chosen = select_accept(i, {grant_bits_.data() + row, wpr});
      out.match(i, chosen);
      free_in_.clear(i);
      free_out_.clear(chosen);
      on_accept(i, chosen, iter);
      std::fill_n(grant_bits_.begin() + static_cast<std::ptrdiff_t>(row), wpr, 0);
    });
    has_grant_.reset(inputs);

    // Early exit: a perfect matching cannot grow, so skip the remaining
    // rounds.  The scalar loop burned exactly one further round discovering
    // there were no requests left; account for it so last_iterations_ (an
    // input to the timing models) stays bit-identical.
    if (out.size() == max_pairs) {
      if (iter + 1 < max_iterations_) ++last_iterations_;
      break;
    }
  }
}

// ----------------------------------------------------------------------- RRM

RrmMatcher::RrmMatcher(std::uint32_t ports, std::uint32_t iterations)
    : RgaMatcherBase{iterations}, grant_ptr_(ports, 0), accept_ptr_(ports, 0) {}

std::string RrmMatcher::name() const {
  return "rrm-i" + std::to_string(max_iterations());
}

net::PortId RrmMatcher::select_grant(net::PortId output, util::BitsetView candidates) {
  const auto wrap = static_cast<std::uint32_t>(accept_ptr_.size());
  const net::PortId chosen = candidates.round_robin_pick(grant_ptr_[output]);
  // RRM advances the grant pointer unconditionally — the root cause of its
  // pointer synchronisation pathology.
  grant_ptr_[output] = (chosen + 1) % wrap;
  return chosen;
}

net::PortId RrmMatcher::select_accept(net::PortId input, util::BitsetView candidates) {
  const auto wrap = static_cast<std::uint32_t>(grant_ptr_.size());
  const net::PortId chosen = candidates.round_robin_pick(accept_ptr_[input]);
  accept_ptr_[input] = (chosen + 1) % wrap;
  return chosen;
}

void RrmMatcher::on_accept(net::PortId /*i*/, net::PortId /*j*/, std::uint32_t /*iter*/) {}

// --------------------------------------------------------------------- iSLIP

IslipMatcher::IslipMatcher(std::uint32_t ports, std::uint32_t iterations)
    : RgaMatcherBase{iterations}, grant_ptr_(ports, 0), accept_ptr_(ports, 0) {}

std::string IslipMatcher::name() const {
  return "islip-i" + std::to_string(max_iterations());
}

net::PortId IslipMatcher::select_grant(net::PortId output, util::BitsetView candidates) {
  // Pointer update deferred to on_accept: iSLIP moves it only if accepted.
  return candidates.round_robin_pick(grant_ptr_[output]);
}

net::PortId IslipMatcher::select_accept(net::PortId input, util::BitsetView candidates) {
  return candidates.round_robin_pick(accept_ptr_[input]);
}

void IslipMatcher::on_accept(net::PortId i, net::PortId j, std::uint32_t iter) {
  if (iter != 0) return;  // pointers move only on first-iteration accepts
  const auto ports = static_cast<std::uint32_t>(grant_ptr_.size());
  grant_ptr_[j] = (i + 1) % ports;
  accept_ptr_[i] = (j + 1) % ports;
}

// ----------------------------------------------------------------------- PIM

PimMatcher::PimMatcher(std::uint32_t /*ports*/, std::uint32_t iterations, std::uint64_t seed)
    : RgaMatcherBase{iterations}, rng_{seed} {}

std::string PimMatcher::name() const {
  return "pim-i" + std::to_string(max_iterations());
}

net::PortId PimMatcher::select_grant(net::PortId /*output*/, util::BitsetView candidates) {
  // popcount + select-k draws the same uniform index the sorted candidate
  // vector did, so the rng stream is unchanged.
  return candidates.kth_set(static_cast<std::uint32_t>(rng_.next_below(candidates.count())));
}

net::PortId PimMatcher::select_accept(net::PortId /*input*/, util::BitsetView candidates) {
  return candidates.kth_set(static_cast<std::uint32_t>(rng_.next_below(candidates.count())));
}

void PimMatcher::on_accept(net::PortId /*i*/, net::PortId /*j*/, std::uint32_t /*iter*/) {}

}  // namespace xdrs::schedulers
