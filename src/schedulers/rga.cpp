#include "schedulers/rga.hpp"

#include <stdexcept>

namespace xdrs::schedulers {
namespace {

/// Round-robin selection: the first candidate at or after `ptr`, wrapping.
/// `candidates` is sorted ascending.
net::PortId round_robin_pick(const std::vector<net::PortId>& candidates, std::uint32_t ptr,
                             std::uint32_t wrap) {
  for (const net::PortId c : candidates) {
    if (c >= ptr && c < wrap) return c;
  }
  return candidates.front();
}

}  // namespace

RgaMatcherBase::RgaMatcherBase(std::uint32_t max_iterations) : max_iterations_{max_iterations} {
  if (max_iterations == 0) throw std::invalid_argument{"RGA: iterations must be >= 1"};
}

void RgaMatcherBase::compute_into(const demand::DemandMatrix& demand, Matching& out) {
  const std::uint32_t inputs = demand.inputs();
  const std::uint32_t outputs = demand.outputs();
  out.reset(inputs, outputs);
  last_iterations_ = 0;

  // Size the workspaces for the worst case up front (every input requesting
  // every output), so steady-state arbitration — whatever the pointer state
  // produces — never grows a list.
  if (requests_.size() != outputs) {
    requests_.resize(outputs);
    for (auto& r : requests_) r.reserve(inputs);
  }
  if (grants_.size() != inputs) {
    grants_.resize(inputs);
    for (auto& g : grants_) g.reserve(outputs);
  }

  for (std::uint32_t iter = 0; iter < max_iterations_; ++iter) {
    ++last_iterations_;

    // Request phase: every unmatched input requests all unmatched outputs
    // for which it has demand.
    for (auto& r : requests_) r.clear();
    bool any_request = false;
    for (std::uint32_t i = 0; i < inputs; ++i) {
      if (out.input_matched(i)) continue;
      for (std::uint32_t j = 0; j < outputs; ++j) {
        if (out.output_matched(j)) continue;
        if (demand.at_unchecked(i, j) > 0) {
          requests_[j].push_back(i);
          any_request = true;
        }
      }
    }
    if (!any_request) break;

    // Grant phase: each requested output grants one input.
    for (auto& g : grants_) g.clear();
    for (std::uint32_t j = 0; j < outputs; ++j) {
      if (requests_[j].empty()) continue;
      const net::PortId chosen = select_grant(j, requests_[j]);
      grants_[chosen].push_back(j);
    }

    // Accept phase: each granted input accepts one output.
    bool any_accept = false;
    for (std::uint32_t i = 0; i < inputs; ++i) {
      if (grants_[i].empty()) continue;
      const net::PortId chosen = select_accept(i, grants_[i]);
      out.match(i, chosen);
      on_accept(i, chosen, iter);
      any_accept = true;
    }
    if (!any_accept) break;  // converged: further iterations cannot add pairs
  }
}

// ----------------------------------------------------------------------- RRM

RrmMatcher::RrmMatcher(std::uint32_t ports, std::uint32_t iterations)
    : RgaMatcherBase{iterations}, grant_ptr_(ports, 0), accept_ptr_(ports, 0) {}

std::string RrmMatcher::name() const {
  return "rrm-i" + std::to_string(max_iterations());
}

net::PortId RrmMatcher::select_grant(net::PortId output, const std::vector<net::PortId>& candidates) {
  const auto wrap = static_cast<std::uint32_t>(accept_ptr_.size());
  const net::PortId chosen = round_robin_pick(candidates, grant_ptr_[output], wrap);
  // RRM advances the grant pointer unconditionally — the root cause of its
  // pointer synchronisation pathology.
  grant_ptr_[output] = (chosen + 1) % wrap;
  return chosen;
}

net::PortId RrmMatcher::select_accept(net::PortId input, const std::vector<net::PortId>& candidates) {
  const auto wrap = static_cast<std::uint32_t>(grant_ptr_.size());
  const net::PortId chosen = round_robin_pick(candidates, accept_ptr_[input], wrap);
  accept_ptr_[input] = (chosen + 1) % wrap;
  return chosen;
}

void RrmMatcher::on_accept(net::PortId /*i*/, net::PortId /*j*/, std::uint32_t /*iter*/) {}

// --------------------------------------------------------------------- iSLIP

IslipMatcher::IslipMatcher(std::uint32_t ports, std::uint32_t iterations)
    : RgaMatcherBase{iterations},
      grant_ptr_(ports, 0),
      accept_ptr_(ports, 0),
      granted_output_of_input_(ports, 0) {}

std::string IslipMatcher::name() const {
  return "islip-i" + std::to_string(max_iterations());
}

net::PortId IslipMatcher::select_grant(net::PortId output, const std::vector<net::PortId>& candidates) {
  const auto wrap = static_cast<std::uint32_t>(accept_ptr_.size());
  const net::PortId chosen = round_robin_pick(candidates, grant_ptr_[output], wrap);
  // Pointer update deferred to on_accept: iSLIP moves it only if accepted.
  granted_output_of_input_[chosen] = output;
  return chosen;
}

net::PortId IslipMatcher::select_accept(net::PortId input, const std::vector<net::PortId>& candidates) {
  const auto wrap = static_cast<std::uint32_t>(grant_ptr_.size());
  return round_robin_pick(candidates, accept_ptr_[input], wrap);
}

void IslipMatcher::on_accept(net::PortId i, net::PortId j, std::uint32_t iter) {
  if (iter != 0) return;  // pointers move only on first-iteration accepts
  const auto ports = static_cast<std::uint32_t>(grant_ptr_.size());
  grant_ptr_[j] = (i + 1) % ports;
  accept_ptr_[i] = (j + 1) % ports;
}

// ----------------------------------------------------------------------- PIM

PimMatcher::PimMatcher(std::uint32_t /*ports*/, std::uint32_t iterations, std::uint64_t seed)
    : RgaMatcherBase{iterations}, rng_{seed} {}

std::string PimMatcher::name() const {
  return "pim-i" + std::to_string(max_iterations());
}

net::PortId PimMatcher::select_grant(net::PortId /*output*/,
                                     const std::vector<net::PortId>& candidates) {
  return candidates[rng_.next_below(candidates.size())];
}

net::PortId PimMatcher::select_accept(net::PortId /*input*/,
                                      const std::vector<net::PortId>& candidates) {
  return candidates[rng_.next_below(candidates.size())];
}

void PimMatcher::on_accept(net::PortId /*i*/, net::PortId /*j*/, std::uint32_t /*iter*/) {}

}  // namespace xdrs::schedulers
