// Circuit ("day") scheduling for the hybrid fabric.
//
// Where a MatchingAlgorithm answers "which pairs may talk *this slot*?", a
// CircuitScheduler answers the hybrid question of paper §1: which portion of
// the demand is worth paying an OCS reconfiguration for, in which sequence
// of circuit configurations and for how long — and which residual should
// fall through to the electrical packet switch.
#ifndef XDRS_SCHEDULERS_CIRCUIT_SCHEDULER_HPP
#define XDRS_SCHEDULERS_CIRCUIT_SCHEDULER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "demand/demand_matrix.hpp"
#include "schedulers/matching.hpp"

namespace xdrs::schedulers {

/// One circuit configuration and the traffic volume it is planned to carry.
struct CircuitSlot {
  Matching configuration;
  std::int64_t weight_bytes{0};  ///< per-pair volume this slot should move
};

/// A full plan for one scheduling epoch.
///
/// Plans are recyclable: plan_into implementations claim slots through
/// reuse_slot() and refresh `residual` with DemandMatrix::copy_from, so an
/// epoch whose shape matches the previous one reuses every buffer.
struct CircuitPlan {
  std::vector<CircuitSlot> slots;
  demand::DemandMatrix residual;  ///< demand left for the EPS

  /// Returns slot `k` ready for writing: grows the list if needed, resets
  /// the slot's configuration to `inputs` x `outputs` and zeroes its weight
  /// — reusing the allocations of a previous epoch's slot when present.
  CircuitSlot& reuse_slot(std::size_t k, std::uint32_t inputs, std::uint32_t outputs) {
    if (slots.size() <= k) slots.resize(k + 1);
    CircuitSlot& s = slots[k];
    s.configuration.reset(inputs, outputs);
    s.weight_bytes = 0;
    return s;
  }
  CircuitSlot& reuse_slot(std::size_t k, std::uint32_t ports) {
    return reuse_slot(k, ports, ports);
  }

  /// Total bytes the plan routes over circuits (weight x pairs per slot).
  [[nodiscard]] std::int64_t circuit_bytes() const {
    std::int64_t total = 0;
    for (const auto& s : slots) {
      total += s.weight_bytes * static_cast<std::int64_t>(s.configuration.size());
    }
    return total;
  }
};

class CircuitScheduler {
 public:
  virtual ~CircuitScheduler() = default;

  /// Plans circuit service for `dem`, writing the result into `out`
  /// (recycling its slot matchings and residual buffer).  The plan's slot
  /// weights, summed per pair, never exceed the pair's demand plus padding
  /// slack; `residual` holds exactly the demand the slots do not cover.
  ///
  /// Hot-path entry point: implementations keep per-instance workspaces so
  /// that steady-state calls with a stable `dem` shape and a recycled `out`
  /// avoid per-epoch heap allocation (solstice/cthrough honour this; the
  /// bvn-backed planners allocate per decomposition term by nature).
  virtual void plan_into(const demand::DemandMatrix& dem, CircuitPlan& out) = 0;

  /// By-value convenience wrapper over plan_into (tests, examples).
  [[nodiscard]] CircuitPlan plan(const demand::DemandMatrix& dem) {
    CircuitPlan out;
    plan_into(dem, out);
    return out;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_CIRCUIT_SCHEDULER_HPP
