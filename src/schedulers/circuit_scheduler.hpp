// Circuit ("day") scheduling for the hybrid fabric.
//
// Where a MatchingAlgorithm answers "which pairs may talk *this slot*?", a
// CircuitScheduler answers the hybrid question of paper §1: which portion of
// the demand is worth paying an OCS reconfiguration for, in which sequence
// of circuit configurations and for how long — and which residual should
// fall through to the electrical packet switch.
#ifndef XDRS_SCHEDULERS_CIRCUIT_SCHEDULER_HPP
#define XDRS_SCHEDULERS_CIRCUIT_SCHEDULER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "demand/demand_matrix.hpp"
#include "schedulers/matching.hpp"

namespace xdrs::schedulers {

/// One circuit configuration and the traffic volume it is planned to carry.
struct CircuitSlot {
  Matching configuration;
  std::int64_t weight_bytes{0};  ///< per-pair volume this slot should move
};

/// A full plan for one scheduling epoch.
struct CircuitPlan {
  std::vector<CircuitSlot> slots;
  demand::DemandMatrix residual;  ///< demand left for the EPS

  /// Total bytes the plan routes over circuits (weight x pairs per slot).
  [[nodiscard]] std::int64_t circuit_bytes() const {
    std::int64_t total = 0;
    for (const auto& s : slots) {
      total += s.weight_bytes * static_cast<std::int64_t>(s.configuration.size());
    }
    return total;
  }
};

class CircuitScheduler {
 public:
  virtual ~CircuitScheduler() = default;

  /// Plans circuit service for `dem`.  The plan's slot weights, summed per
  /// pair, never exceed the pair's demand plus padding slack; `residual`
  /// holds exactly the demand the slots do not cover.
  [[nodiscard]] virtual CircuitPlan plan(const demand::DemandMatrix& dem) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_CIRCUIT_SCHEDULER_HPP
