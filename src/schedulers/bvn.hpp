// Birkhoff–von-Neumann decomposition of a demand matrix into weighted
// permutations — the theoretical backbone of traffic-matrix scheduling
// (Helios' TMS and every "compute a day of circuit configurations" design).
//
// Any non-negative matrix padded so that all row and column sums equal the
// maximum line sum phi is phi times a doubly stochastic matrix, and Birkhoff
// guarantees it decomposes into at most (N-1)^2 + 1 weighted permutations.
// We construct the padding explicitly (northwest-corner rule) and peel
// permutations with Hopcroft–Karp perfect matchings, always serving real
// demand before slack.
#ifndef XDRS_SCHEDULERS_BVN_HPP
#define XDRS_SCHEDULERS_BVN_HPP

#include <cstdint>
#include <vector>

#include "demand/demand_matrix.hpp"
#include "schedulers/circuit_scheduler.hpp"
#include "schedulers/matching.hpp"

namespace xdrs::schedulers {

/// One term of the decomposition.
struct BvnTerm {
  Matching permutation;      ///< always a full permutation of the padded matrix
  std::int64_t weight{0};    ///< scalar coefficient (bytes)
  std::int64_t real_bytes{0};  ///< demand (not slack) bytes this term serves
};

struct BvnResult {
  std::vector<BvnTerm> terms;
  std::int64_t uncovered_bytes{0};  ///< demand left when max_terms was hit
};

/// Decomposes `dem` (square) into weighted permutations.  Stops early after
/// `max_terms` terms (0 = unlimited); anything left is reported uncovered.
[[nodiscard]] BvnResult bvn_decompose(const demand::DemandMatrix& dem, std::size_t max_terms = 0);

/// CircuitScheduler adapter: run the decomposition, keep the heaviest
/// `max_slots` terms, return the rest of the demand as EPS residual.
class BvnScheduler final : public CircuitScheduler {
 public:
  explicit BvnScheduler(std::size_t max_slots) : max_slots_{max_slots} {}

  void plan_into(const demand::DemandMatrix& dem, CircuitPlan& out) override;
  [[nodiscard]] std::string name() const override { return "bvn-" + std::to_string(max_slots_); }

 private:
  std::size_t max_slots_;
};

}  // namespace xdrs::schedulers

#endif  // XDRS_SCHEDULERS_BVN_HPP
