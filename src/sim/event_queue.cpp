#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace xdrs::sim {

EventId EventQueue::push(Time at, Callback cb) {
  const EventId id{next_seq_++};
  heap_.push_back(Entry{at, id.seq, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  queued_.insert(id.seq);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  return queued_.erase(id.seq) > 0;
}

void EventQueue::drop_dead_head() {
  while (!heap_.empty() && !queued_.contains(heap_.front().seq)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() {
  drop_dead_head();
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time on empty queue"};
  return heap_.front().at;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_head();
  if (heap_.empty()) throw std::logic_error{"EventQueue::pop on empty queue"};
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  queued_.erase(e.seq);
  return Popped{e.at, EventId{e.seq}, std::move(e.cb)};
}

}  // namespace xdrs::sim
