#include "sim/simulator.hpp"

#include <utility>

namespace xdrs::sim {

EventId Simulator::schedule(Time delay, EventQueue::Callback cb) {
  if (delay.is_negative()) delay = Time::zero();
  ++stats_.events_scheduled;
  return queue_.push(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(Time at, EventQueue::Callback cb) {
  if (at < now_) at = now_;
  ++stats_.events_scheduled;
  return queue_.push(at, std::move(cb));
}

bool Simulator::cancel(EventId id) {
  const bool was_pending = queue_.cancel(id);
  if (was_pending) ++stats_.events_cancelled;
  return was_pending;
}

void Simulator::run_until(Time horizon) {
  stopping_ = false;
  while (!stopping_ && !queue_.empty() && queue_.next_time() <= horizon) {
    auto popped = queue_.pop();
    now_ = popped.at;
    ++stats_.events_executed;
    popped.cb();
  }
  // Advance the clock to the horizon even if the queue drained early, so a
  // subsequent run_until continues from a consistent epoch.
  if (!stopping_ && now_ < horizon) now_ = horizon;
}

void Simulator::run() {
  stopping_ = false;
  while (!stopping_ && !queue_.empty()) {
    auto popped = queue_.pop();
    now_ = popped.at;
    ++stats_.events_executed;
    popped.cb();
  }
}

}  // namespace xdrs::sim
