#include "sim/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace xdrs::sim {

std::string DataRate::to_string() const {
  struct Unit {
    double scale;
    const char* suffix;
  };
  static constexpr std::array<Unit, 4> kUnits{{
      {1e9, "Gbps"}, {1e6, "Mbps"}, {1e3, "Kbps"}, {1.0, "bps"},
  }};
  const double v = static_cast<double>(bps_);
  for (const auto& u : kUnits) {
    if (std::abs(v) >= u.scale) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g%s", v / u.scale, u.suffix);
      return buf;
    }
  }
  return "0bps";
}

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 5> kSuffix{"B", "KiB", "MiB", "GiB", "TiB"};
  std::size_t i = 0;
  while (std::abs(bytes) >= 1024.0 && i + 1 < kSuffix.size()) {
    bytes /= 1024.0;
    ++i;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3g %s", bytes, kSuffix[i]);
  return buf;
}

}  // namespace xdrs::sim
