// Deterministic pseudo-random source for workload generation.
//
// We implement xoshiro256** seeded via SplitMix64 rather than relying on
// <random> engines + distributions: the standard distributions'
// value sequences are implementation-defined, and every experiment in
// EXPERIMENTS.md must replay bit-identically on any toolchain.
#ifndef XDRS_SIM_RANDOM_HPP
#define XDRS_SIM_RANDOM_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace xdrs::sim {

/// xoshiro256** 1.0 (Blackman & Vigna), period 2^256 - 1.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next 64 uniform random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept;

  /// Uniform integer in [0, bound).  Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponential with the given mean (inverse-CDF method).
  double exponential(double mean) noexcept;

  /// Pareto with shape alpha and minimum scale xm; heavy-tailed for
  /// alpha <= 2.  Used for ON/OFF burst and flow-size models.
  double pareto(double alpha, double xm) noexcept;

  /// Standard normal via Box-Muller (no state carried between calls).
  double normal(double mean, double stddev) noexcept;

  /// Geometric: number of Bernoulli(p) failures before the first success.
  std::uint64_t geometric(double p) noexcept;

  /// Forks an independent, reproducible child stream; children derived from
  /// the same parent state with distinct tags never correlate.
  [[nodiscard]] Rng fork(std::uint64_t tag) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Samples from a Zipf(s) distribution over {0, .., n-1} via a precomputed
/// inverse CDF table; O(log n) per sample.  Used for hotspot traffic
/// matrices where a few destinations attract most of the demand.
class ZipfSampler {
 public:
  /// Precondition: n >= 1, skew >= 0 (skew == 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double skew);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

  /// Probability mass of rank k (for test assertions).
  [[nodiscard]] double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace xdrs::sim

#endif  // XDRS_SIM_RANDOM_HPP
