// The discrete-event simulation engine.
//
// Substitutes for the paper's NetFPGA-SUME testbed: every component of the
// framework (hosts, VOQs, scheduler pipelines, optical switch
// reconfiguration) advances by scheduling callbacks on one of these engines.
// Single-threaded by design — determinism is worth more to a scheduling
// study than parallel speed, and each experiment instead parallelises across
// parameter points (exp::ExperimentRunner, see exp/runner.hpp).
#ifndef XDRS_SIM_SIMULATOR_HPP
#define XDRS_SIM_SIMULATOR_HPP

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace xdrs::sim {

/// Engine statistics, exposed for the scalability experiments (E10).
struct SimulatorStats {
  std::uint64_t events_executed{0};
  std::uint64_t events_scheduled{0};
  std::uint64_t events_cancelled{0};
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.  Monotonically non-decreasing.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `cb` to run `delay` from now.  Negative delays are clamped to
  /// zero (an event can never fire in the past).
  EventId schedule(Time delay, EventQueue::Callback cb);

  /// Schedules `cb` at an absolute timestamp, clamped to `now()`.
  EventId schedule_at(Time at, EventQueue::Callback cb);

  /// Cancels a pending event.  Returns true if it had not yet fired.
  bool cancel(EventId id);

  /// Runs until the event queue drains or `horizon` is reached, whichever is
  /// first.  Events stamped exactly at the horizon still execute.
  void run_until(Time horizon);

  /// Runs until the event queue drains.
  void run();

  /// Requests that the run loop stop after the current event returns.
  void stop() noexcept { stopping_ = true; }

  [[nodiscard]] const SimulatorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_{Time::zero()};
  bool stopping_{false};
  SimulatorStats stats_;
};

}  // namespace xdrs::sim

#endif  // XDRS_SIM_SIMULATOR_HPP
