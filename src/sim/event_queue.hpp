// The pending-event set of the discrete-event engine.
//
// A binary heap keyed on (time, sequence-number): the sequence number makes
// ordering among same-timestamp events FIFO and therefore deterministic,
// which the reproducibility of every experiment in this repository relies
// on.  Cancellation is lazy — cancelled entries are skipped on pop — because
// schedulers cancel far fewer events than they schedule.
#ifndef XDRS_SIM_EVENT_QUEUE_HPP
#define XDRS_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace xdrs::sim {

/// Opaque identifier of a scheduled event; usable to cancel it.
struct EventId {
  std::uint64_t seq{0};
  [[nodiscard]] constexpr bool valid() const noexcept { return seq != 0; }
  constexpr bool operator==(const EventId&) const noexcept = default;
};

/// Min-heap of timestamped callbacks with stable FIFO tie-breaking.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Inserts `cb` to fire at absolute time `at`.  O(log n).
  EventId push(Time at, Callback cb);

  /// Removes an event from the live set.  O(1); its heap entry is dropped
  /// when it surfaces.  Cancelling an unknown or already-fired id is a
  /// harmless no-op.  Returns true if the event was still pending.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return queued_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return queued_.size(); }

  /// Timestamp of the earliest live event.  Precondition: !empty().
  [[nodiscard]] Time next_time();

  /// Removes and returns the earliest live event.  Precondition: !empty().
  struct Popped {
    Time at;
    EventId id;
    Callback cb;
  };
  [[nodiscard]] Popped pop();

  /// Total events ever pushed (for engine statistics).
  [[nodiscard]] std::uint64_t total_pushed() const noexcept { return next_seq_ - 1; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops heap entries whose id was cancelled until a live one surfaces.
  void drop_dead_head();

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> queued_;  // ids pending and not cancelled
  std::uint64_t next_seq_{1};
};

}  // namespace xdrs::sim

#endif  // XDRS_SIM_EVENT_QUEUE_HPP
