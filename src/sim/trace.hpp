// Event tracing for pipeline analysis and transient detection.
//
// The paper argues a testbed "allows to detect and analyse transient effects
// that may not be visible under simulation environments"; the recorder below
// is our answer — every stage of the request/grant pipeline and every fabric
// reconfiguration can be stamped, then replayed by the transient benches
// (E8) and the Figure 2 pipeline bench (E9).
#ifndef XDRS_SIM_TRACE_HPP
#define XDRS_SIM_TRACE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace xdrs::sim {

enum class TraceCategory : std::uint8_t {
  kPacketArrival,   ///< packet entered the processing logic
  kEnqueue,         ///< packet placed in a VOQ
  kRequest,         ///< scheduling request emitted towards scheduling logic
  kDemandUpdate,    ///< demand matrix refreshed
  kScheduleStart,   ///< scheduling algorithm started
  kScheduleDone,    ///< grant matrix computed
  kReconfigStart,   ///< OCS began retuning (dark period start)
  kReconfigDone,    ///< OCS circuits established
  kGrant,           ///< grant delivered to processing logic
  kDequeue,         ///< packet released from a VOQ
  kDeliver,         ///< packet reached its destination port
  kDrop,            ///< packet dropped (buffer overflow)
};

[[nodiscard]] const char* to_string(TraceCategory c) noexcept;

/// One timestamped trace record.  `a` and `b` carry category-dependent
/// integers (typically source / destination port).
struct TraceEvent {
  Time at;
  TraceCategory category{};
  std::uint64_t a{0};
  std::uint64_t b{0};
};

/// Append-only, in-memory recorder.  Disabled recorders are free:
/// `record` is a branch on a bool.
class TraceRecorder {
 public:
  void enable() noexcept { enabled_ = true; }
  void disable() noexcept { enabled_ = false; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(Time at, TraceCategory category, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{at, category, a, b});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() noexcept { events_.clear(); }

  /// All events of one category, in time order (records are appended in
  /// simulation order, so no sort is needed).
  [[nodiscard]] std::vector<TraceEvent> filter(TraceCategory category) const;

  /// Count of events of one category.
  [[nodiscard]] std::size_t count(TraceCategory category) const noexcept;

 private:
  std::vector<TraceEvent> events_;
  bool enabled_{false};
};

}  // namespace xdrs::sim

#endif  // XDRS_SIM_TRACE_HPP
