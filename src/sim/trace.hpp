// Event tracing for pipeline analysis and transient detection.
//
// The paper argues a testbed "allows to detect and analyse transient effects
// that may not be visible under simulation environments"; the recorder below
// is our answer — every stage of the request/grant pipeline and every fabric
// reconfiguration can be stamped, then replayed by the transient benches
// (E8) and the Figure 2 pipeline bench (E9).
#ifndef XDRS_SIM_TRACE_HPP
#define XDRS_SIM_TRACE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace xdrs::sim {

enum class TraceCategory : std::uint8_t {
  kPacketArrival,   ///< packet entered the processing logic
  kEnqueue,         ///< packet placed in a VOQ
  kRequest,         ///< scheduling request emitted towards scheduling logic
  kDemandUpdate,    ///< demand matrix refreshed
  kScheduleStart,   ///< scheduling algorithm started
  kScheduleDone,    ///< grant matrix computed
  kReconfigStart,   ///< OCS began retuning (dark period start)
  kReconfigDone,    ///< OCS circuits established
  kGrant,           ///< grant delivered to processing logic
  kDequeue,         ///< packet released from a VOQ
  kDeliver,         ///< packet reached its destination port
  kDrop,            ///< packet dropped (buffer overflow)
};

[[nodiscard]] const char* to_string(TraceCategory c) noexcept;

/// One timestamped trace record.  `a` and `b` carry category-dependent
/// integers (typically source / destination port).
struct TraceEvent {
  Time at;
  TraceCategory category{};
  std::uint64_t a{0};
  std::uint64_t b{0};
};

/// What a bounded recorder does once its capacity is reached.
enum class TraceOverflow : std::uint8_t {
  kDropOldest,  ///< keep the newest events (evict the oldest half when full)
  kDecimate,    ///< keep a shape-preserving subsample (stride doubling, as
                ///< stats::TimeSeries does) spanning the whole run
};

/// Append-only, in-memory recorder.  Disabled recorders are free:
/// `record` is a branch on a bool.
///
/// Unbounded by default (capacity 0), which short runs and the existing
/// tests rely on; long telemetry runs call set_capacity() so a multi-second
/// simulation cannot grow the trace without limit.  Every event not kept is
/// counted by dropped(), so exports can state their own completeness.
class TraceRecorder {
 public:
  void enable() noexcept { enabled_ = true; }
  void disable() noexcept { enabled_ = false; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Bounds the recorder at `capacity` events (0 = unbounded).  Nonzero
  /// capacities are clamped to at least 2 so both overflow policies can
  /// make progress.  Storage is reserved up front.
  void set_capacity(std::size_t capacity, TraceOverflow policy = TraceOverflow::kDropOldest);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] TraceOverflow overflow_policy() const noexcept { return policy_; }

  void record(Time at, TraceCategory category, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!enabled_) return;
    ++offered_;
    if (capacity_ != 0) {
      if (policy_ == TraceOverflow::kDecimate && (offered_ - 1) % stride_ != 0) {
        ++dropped_;
        return;
      }
      if (events_.size() == capacity_) evict();
    }
    events_.push_back(TraceEvent{at, category, a, b});
  }

  /// Events offered to record() while enabled, kept or not.
  [[nodiscard]] std::uint64_t offered() const noexcept { return offered_; }
  /// Events not retained because of the capacity bound.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Current decimation stride (1 until a kDecimate recorder overflows).
  [[nodiscard]] std::uint64_t stride() const noexcept { return stride_; }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() noexcept {
    events_.clear();
    offered_ = 0;
    dropped_ = 0;
    stride_ = 1;
  }

  /// All events of one category, in time order (records are appended in
  /// simulation order, so no sort is needed).
  [[nodiscard]] std::vector<TraceEvent> filter(TraceCategory category) const;

  /// Count of events of one category.
  [[nodiscard]] std::size_t count(TraceCategory category) const noexcept;

 private:
  void evict();

  std::vector<TraceEvent> events_;
  bool enabled_{false};
  std::size_t capacity_{0};
  TraceOverflow policy_{TraceOverflow::kDropOldest};
  std::uint64_t offered_{0};
  std::uint64_t dropped_{0};
  std::uint64_t stride_{1};
};

}  // namespace xdrs::sim

#endif  // XDRS_SIM_TRACE_HPP
