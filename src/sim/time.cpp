#include "sim/time.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace xdrs::sim {

std::string Time::to_string() const {
  struct Unit {
    double scale;
    const char* suffix;
  };
  static constexpr std::array<Unit, 5> kUnits{{
      {1e12, "s"}, {1e9, "ms"}, {1e6, "us"}, {1e3, "ns"}, {1.0, "ps"},
  }};
  const double v = static_cast<double>(ps_);
  for (const auto& u : kUnits) {
    if (std::abs(v) >= u.scale) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g%s", v / u.scale, u.suffix);
      return buf;
    }
  }
  return "0ps";
}

}  // namespace xdrs::sim
