#include "sim/trace.hpp"

#include <algorithm>

namespace xdrs::sim {

const char* to_string(TraceCategory c) noexcept {
  switch (c) {
    case TraceCategory::kPacketArrival: return "packet_arrival";
    case TraceCategory::kEnqueue: return "enqueue";
    case TraceCategory::kRequest: return "request";
    case TraceCategory::kDemandUpdate: return "demand_update";
    case TraceCategory::kScheduleStart: return "schedule_start";
    case TraceCategory::kScheduleDone: return "schedule_done";
    case TraceCategory::kReconfigStart: return "reconfig_start";
    case TraceCategory::kReconfigDone: return "reconfig_done";
    case TraceCategory::kGrant: return "grant";
    case TraceCategory::kDequeue: return "dequeue";
    case TraceCategory::kDeliver: return "deliver";
    case TraceCategory::kDrop: return "drop";
  }
  return "unknown";
}

std::vector<TraceEvent> TraceRecorder::filter(TraceCategory category) const {
  std::vector<TraceEvent> out;
  std::copy_if(events_.begin(), events_.end(), std::back_inserter(out),
               [category](const TraceEvent& e) { return e.category == category; });
  return out;
}

std::size_t TraceRecorder::count(TraceCategory category) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [category](const TraceEvent& e) { return e.category == category; }));
}

}  // namespace xdrs::sim
