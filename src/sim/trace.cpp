#include "sim/trace.hpp"

#include <algorithm>

namespace xdrs::sim {

const char* to_string(TraceCategory c) noexcept {
  switch (c) {
    case TraceCategory::kPacketArrival: return "packet_arrival";
    case TraceCategory::kEnqueue: return "enqueue";
    case TraceCategory::kRequest: return "request";
    case TraceCategory::kDemandUpdate: return "demand_update";
    case TraceCategory::kScheduleStart: return "schedule_start";
    case TraceCategory::kScheduleDone: return "schedule_done";
    case TraceCategory::kReconfigStart: return "reconfig_start";
    case TraceCategory::kReconfigDone: return "reconfig_done";
    case TraceCategory::kGrant: return "grant";
    case TraceCategory::kDequeue: return "dequeue";
    case TraceCategory::kDeliver: return "deliver";
    case TraceCategory::kDrop: return "drop";
  }
  return "unknown";
}

void TraceRecorder::set_capacity(std::size_t capacity, TraceOverflow policy) {
  capacity_ = capacity == 0 ? 0 : std::max<std::size_t>(capacity, 2);
  policy_ = policy;
  if (capacity_ != 0) events_.reserve(capacity_);
}

void TraceRecorder::evict() {
  if (policy_ == TraceOverflow::kDropOldest) {
    // Evict the oldest half in one move; amortised O(1) per record and the
    // vector stays contiguous for events().
    const std::size_t keep = capacity_ / 2;
    dropped_ += events_.size() - keep;
    events_.erase(events_.begin(), events_.end() - static_cast<std::ptrdiff_t>(keep));
    return;
  }
  // kDecimate: drop every other kept event and double the stride, exactly
  // the stats::TimeSeries scheme — the retained subsample keeps spanning
  // the whole run instead of only its tail.
  std::size_t w = 0;
  for (std::size_t r = 0; r < events_.size(); r += 2) events_[w++] = events_[r];
  dropped_ += events_.size() - w;
  events_.resize(w);
  stride_ *= 2;
}

std::vector<TraceEvent> TraceRecorder::filter(TraceCategory category) const {
  std::vector<TraceEvent> out;
  std::copy_if(events_.begin(), events_.end(), std::back_inserter(out),
               [category](const TraceEvent& e) { return e.category == category; });
  return out;
}

std::size_t TraceRecorder::count(TraceCategory category) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [category](const TraceEvent& e) { return e.category == category; }));
}

}  // namespace xdrs::sim
