// Picosecond-resolution simulated time.
//
// The framework models phenomena spanning nine orders of magnitude: optical
// switch reconfiguration can be single-digit nanoseconds (PLZT devices) while
// software control loops run for milliseconds.  At 100 Gbps a minimum-size
// Ethernet frame serialises in 6.72 ns, so nanosecond resolution would accrue
// rounding error across long runs.  A signed 64-bit picosecond count covers
// +/- 106 days, far beyond any simulation horizon.
#ifndef XDRS_SIM_TIME_HPP
#define XDRS_SIM_TIME_HPP

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace xdrs::sim {

/// A point in (or span of) simulated time with picosecond resolution.
///
/// `Time` is a strong type: it cannot be silently mixed with raw integers.
/// Construct values through the factory functions (`picoseconds`,
/// `nanoseconds`, ... `seconds`) or the user-defined literals in
/// `xdrs::sim::literals`.
class Time {
 public:
  constexpr Time() noexcept = default;

  /// Named constructors.  All take integral counts except `seconds_f`,
  /// which accepts fractional seconds for convenience in configuration.
  [[nodiscard]] static constexpr Time picoseconds(std::int64_t n) noexcept { return Time{n}; }
  [[nodiscard]] static constexpr Time nanoseconds(std::int64_t n) noexcept { return Time{n * 1'000}; }
  [[nodiscard]] static constexpr Time microseconds(std::int64_t n) noexcept { return Time{n * 1'000'000}; }
  [[nodiscard]] static constexpr Time milliseconds(std::int64_t n) noexcept { return Time{n * 1'000'000'000}; }
  [[nodiscard]] static constexpr Time seconds(std::int64_t n) noexcept { return Time{n * 1'000'000'000'000}; }
  [[nodiscard]] static constexpr Time seconds_f(double s) noexcept {
    return Time{static_cast<std::int64_t>(s * 1e12)};
  }

  [[nodiscard]] static constexpr Time zero() noexcept { return Time{0}; }
  [[nodiscard]] static constexpr Time max() noexcept {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ps() const noexcept { return ps_; }
  [[nodiscard]] constexpr double ns() const noexcept { return static_cast<double>(ps_) / 1e3; }
  [[nodiscard]] constexpr double us() const noexcept { return static_cast<double>(ps_) / 1e6; }
  [[nodiscard]] constexpr double ms() const noexcept { return static_cast<double>(ps_) / 1e9; }
  [[nodiscard]] constexpr double sec() const noexcept { return static_cast<double>(ps_) / 1e12; }

  [[nodiscard]] constexpr bool is_zero() const noexcept { return ps_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const noexcept { return ps_ < 0; }

  constexpr auto operator<=>(const Time&) const noexcept = default;

  constexpr Time& operator+=(Time rhs) noexcept { ps_ += rhs.ps_; return *this; }
  constexpr Time& operator-=(Time rhs) noexcept { ps_ -= rhs.ps_; return *this; }

  friend constexpr Time operator+(Time a, Time b) noexcept { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) noexcept { return Time{a.ps_ - b.ps_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) noexcept { return Time{a.ps_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) noexcept { return Time{a.ps_ * k}; }
  friend constexpr std::int64_t operator/(Time a, Time b) noexcept { return a.ps_ / b.ps_; }
  friend constexpr Time operator/(Time a, std::int64_t k) noexcept { return Time{a.ps_ / k}; }
  friend constexpr Time operator%(Time a, Time b) noexcept { return Time{a.ps_ % b.ps_}; }

  /// Ratio of two durations as a double (e.g. duty cycles).
  [[nodiscard]] constexpr double ratio(Time denom) const noexcept {
    return static_cast<double>(ps_) / static_cast<double>(denom.ps_);
  }

  /// Human-readable rendering with an auto-selected unit, e.g. "1.5us".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t ps) noexcept : ps_{ps} {}
  std::int64_t ps_{0};
};

namespace literals {
constexpr Time operator""_ps(unsigned long long n) { return Time::picoseconds(static_cast<std::int64_t>(n)); }
constexpr Time operator""_ns(unsigned long long n) { return Time::nanoseconds(static_cast<std::int64_t>(n)); }
constexpr Time operator""_us(unsigned long long n) { return Time::microseconds(static_cast<std::int64_t>(n)); }
constexpr Time operator""_ms(unsigned long long n) { return Time::milliseconds(static_cast<std::int64_t>(n)); }
constexpr Time operator""_s(unsigned long long n) { return Time::seconds(static_cast<std::int64_t>(n)); }
}  // namespace literals

}  // namespace xdrs::sim

#endif  // XDRS_SIM_TIME_HPP
