// Link-rate and data-size quantities used throughout the framework.
//
// Rates are stored as bits per second and sizes as bytes; conversions to
// transmission times are exact in 128-bit intermediate arithmetic so that
// long simulations do not drift.
#ifndef XDRS_SIM_UNITS_HPP
#define XDRS_SIM_UNITS_HPP

#include <compare>
#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace xdrs::sim {

/// A link or port data rate in bits per second.
class DataRate {
 public:
  constexpr DataRate() noexcept = default;

  [[nodiscard]] static constexpr DataRate bps(std::int64_t v) noexcept { return DataRate{v}; }
  [[nodiscard]] static constexpr DataRate kbps(std::int64_t v) noexcept { return DataRate{v * 1'000}; }
  [[nodiscard]] static constexpr DataRate mbps(std::int64_t v) noexcept { return DataRate{v * 1'000'000}; }
  [[nodiscard]] static constexpr DataRate gbps(std::int64_t v) noexcept { return DataRate{v * 1'000'000'000}; }

  [[nodiscard]] constexpr std::int64_t bits_per_sec() const noexcept { return bps_; }
  [[nodiscard]] constexpr double gbit_per_sec() const noexcept { return static_cast<double>(bps_) / 1e9; }
  [[nodiscard]] constexpr bool is_zero() const noexcept { return bps_ == 0; }

  constexpr auto operator<=>(const DataRate&) const noexcept = default;

  friend constexpr DataRate operator+(DataRate a, DataRate b) noexcept { return DataRate{a.bps_ + b.bps_}; }
  friend constexpr DataRate operator-(DataRate a, DataRate b) noexcept { return DataRate{a.bps_ - b.bps_}; }
  friend constexpr DataRate operator*(DataRate a, std::int64_t k) noexcept { return DataRate{a.bps_ * k}; }
  friend constexpr DataRate operator/(DataRate a, std::int64_t k) noexcept { return DataRate{a.bps_ / k}; }

  /// Time to serialise `bytes` at this rate.  Exact (rounded up to the next
  /// picosecond) via 128-bit intermediates; returns Time::max() for a zero
  /// rate, which callers treat as "never".
  [[nodiscard]] constexpr Time transmission_time(std::int64_t bytes) const noexcept {
    if (bps_ <= 0) return Time::max();
    const auto bits = static_cast<__int128>(bytes) * 8;
    const __int128 ps = (bits * 1'000'000'000'000LL + bps_ - 1) / bps_;
    return Time::picoseconds(static_cast<std::int64_t>(ps));
  }

  /// Bytes that can be carried in `t` at this rate (rounded down).
  [[nodiscard]] constexpr std::int64_t bytes_in(Time t) const noexcept {
    const __int128 bits = static_cast<__int128>(bps_) * t.ps() / 1'000'000'000'000LL;
    return static_cast<std::int64_t>(bits / 8);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit DataRate(std::int64_t bps) noexcept : bps_{bps} {}
  std::int64_t bps_{0};
};

/// Ethernet frame-size constants used by the generators and fabrics.
inline constexpr std::int64_t kMinFrameBytes = 64;
inline constexpr std::int64_t kMaxFrameBytes = 1518;
/// Overhead on the wire per frame: preamble + SFD (8) and minimum IFG (12).
inline constexpr std::int64_t kWireOverheadBytes = 20;

/// Pretty-prints a byte count with an auto-selected binary unit ("1.2 MiB").
[[nodiscard]] std::string format_bytes(double bytes);

}  // namespace xdrs::sim

#endif  // XDRS_SIM_UNITS_HPP
