#include "sim/random.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace xdrs::sim {
namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion guarantees a non-zero xoshiro state for any seed.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire 2019: unbiased bounded integers without division in the fast path.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) noexcept {
  // 1 - U avoids log(0); U in [0,1) so 1-U in (0,1].
  return -mean * std::log(1.0 - next_double());
}

double Rng::pareto(double alpha, double xm) noexcept {
  return xm / std::pow(1.0 - next_double(), 1.0 / alpha);
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; draw u1 from (0,1] to keep the log finite.
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return 0;  // degenerate; callers validate p
  return static_cast<std::uint64_t>(std::floor(std::log(1.0 - next_double()) / std::log(1.0 - p)));
}

Rng Rng::fork(std::uint64_t tag) noexcept {
  // Mix the child tag with fresh output so that sibling forks differ and the
  // parent stream advances (forking twice with the same tag still yields
  // distinct children).
  return Rng{next_u64() ^ (tag * 0xd1342543de82ef95ULL)};
}

ZipfSampler::ZipfSampler(std::size_t n, double skew) {
  if (n == 0) throw std::invalid_argument{"ZipfSampler: n must be >= 1"};
  if (skew < 0.0) throw std::invalid_argument{"ZipfSampler: skew must be >= 0"};
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t k) const {
  if (k >= cdf_.size()) throw std::out_of_range{"ZipfSampler::pmf"};
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace xdrs::sim
