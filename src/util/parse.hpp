// Strict numeric token parsing shared by the CLIs, the benches and the
// trace parser, so the whole-token rule lives in one place.
#ifndef XDRS_UTIL_PARSE_HPP
#define XDRS_UTIL_PARSE_HPP

#include <charconv>
#include <cmath>
#include <string_view>
#include <system_error>
#include <type_traits>

namespace xdrs::util {

/// Whole-token, in-range numeric parse via std::from_chars: the entire
/// token must be consumed and the value must fit T, so "12x", "1.5e",
/// " 7", "+7", out-of-range values and (for unsigned T) "-2" all fail
/// instead of being silently truncated or wrapped.  Floating-point targets
/// additionally reject "inf"/"nan" — every numeric flag and trace field in
/// this codebase means a finite quantity.
template <typename T>
[[nodiscard]] bool parse_number(std::string_view token, T& out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || ptr != last || token.empty()) return false;
  if constexpr (std::is_floating_point_v<T>) {
    if (!std::isfinite(out)) return false;
  }
  return true;
}

}  // namespace xdrs::util

#endif  // XDRS_UTIL_PARSE_HPP
