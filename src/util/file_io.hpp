// Whole-file slurp/spill helpers shared by the result cache, the sweep CLI
// and the benches, so short-read/short-write handling lives in one place.
#ifndef XDRS_UTIL_FILE_IO_HPP
#define XDRS_UTIL_FILE_IO_HPP

#include <optional>
#include <string>
#include <string_view>

namespace xdrs::util {

/// Reads a whole file as bytes; nullopt if it cannot be opened or read.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

/// Writes `content` (binary, truncating) and flushes; throws
/// std::runtime_error naming the path on any failure.
void write_file(const std::string& path, std::string_view content);

}  // namespace xdrs::util

#endif  // XDRS_UTIL_FILE_IO_HPP
