// Whole-file slurp/spill helpers shared by the result cache, the sweep CLI
// and the benches, so short-read/short-write handling lives in one place.
#ifndef XDRS_UTIL_FILE_IO_HPP
#define XDRS_UTIL_FILE_IO_HPP

#include <optional>
#include <string>
#include <string_view>

namespace xdrs::util {

/// Reads a whole file as bytes; nullopt if it cannot be opened or read.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

/// Writes `content` (binary, truncating) and flushes; throws
/// std::runtime_error naming the path on any failure.
void write_file(const std::string& path, std::string_view content);

/// A 16-hex token unique across threads and (with overwhelming probability)
/// processes, for naming temp files that concurrent writers publish via
/// atomic rename/link — the cache and the lease protocol both build on it.
[[nodiscard]] std::string unique_tmp_token();

}  // namespace xdrs::util

#endif  // XDRS_UTIL_FILE_IO_HPP
