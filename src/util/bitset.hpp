// Flat uint64_t bitset primitives shared by the demand-matrix support
// bitmaps and the matcher kernels: 64 ports per word, find-first-set
// instead of O(N) scans, popcount + select-k for random disciplines.
//
// The helpers operate on raw word spans so the same code serves both the
// DemandMatrix-owned bitmaps and matcher-local masks; PortBitset is the
// small owning workspace matchers recycle across decisions (resize happens
// only when the port count changes, so steady-state computes stay off the
// heap).  Invariant everywhere: bits at positions >= bit_count in the last
// word are zero — iteration, popcounts and whole-word compares rely on it.
#ifndef XDRS_UTIL_BITSET_HPP
#define XDRS_UTIL_BITSET_HPP

#include <bit>
#include <cstdint>
#include <vector>

namespace xdrs::util {

inline constexpr std::uint32_t kBitsetNone = 0xffffffffu;

[[nodiscard]] constexpr std::uint32_t words_for_bits(std::uint32_t bits) noexcept {
  return (bits + 63u) / 64u;
}

/// Mask of the valid bits of the LAST word of a `bits`-bit set (all-ones
/// when bits is a multiple of 64 — a zero-bit set has no words at all).
[[nodiscard]] constexpr std::uint64_t tail_mask(std::uint32_t bits) noexcept {
  const std::uint32_t rem = bits % 64u;
  return rem == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1u;
}

/// Non-owning view of a word span; the unit the selection disciplines
/// (round-robin, uniform-random) receive as their candidate set.
struct BitsetView {
  const std::uint64_t* words{nullptr};
  std::uint32_t word_count{0};

  [[nodiscard]] bool any() const noexcept {
    for (std::uint32_t w = 0; w < word_count; ++w) {
      if (words[w] != 0) return true;
    }
    return false;
  }

  [[nodiscard]] std::uint32_t count() const noexcept {
    std::uint32_t c = 0;
    for (std::uint32_t w = 0; w < word_count; ++w) {
      c += static_cast<std::uint32_t>(std::popcount(words[w]));
    }
    return c;
  }

  /// Lowest set bit; kBitsetNone when empty.
  [[nodiscard]] std::uint32_t first_set() const noexcept {
    for (std::uint32_t w = 0; w < word_count; ++w) {
      if (words[w] != 0) return w * 64u + static_cast<std::uint32_t>(std::countr_zero(words[w]));
    }
    return kBitsetNone;
  }

  /// Lowest set bit at position >= from; kBitsetNone when there is none.
  [[nodiscard]] std::uint32_t first_set_at_or_after(std::uint32_t from) const noexcept {
    std::uint32_t w = from / 64u;
    if (w >= word_count) return kBitsetNone;
    std::uint64_t word = words[w] & (~std::uint64_t{0} << (from % 64u));
    while (true) {
      if (word != 0) return w * 64u + static_cast<std::uint32_t>(std::countr_zero(word));
      if (++w >= word_count) return kBitsetNone;
      word = words[w];
    }
  }

  /// k-th (0-based) set bit; precondition k < count().
  [[nodiscard]] std::uint32_t kth_set(std::uint32_t k) const noexcept {
    for (std::uint32_t w = 0; w < word_count; ++w) {
      std::uint64_t word = words[w];
      const auto c = static_cast<std::uint32_t>(std::popcount(word));
      if (k >= c) {
        k -= c;
        continue;
      }
      while (k > 0) {
        word &= word - 1;  // drop lowest set bit
        --k;
      }
      return w * 64u + static_cast<std::uint32_t>(std::countr_zero(word));
    }
    return kBitsetNone;
  }

  /// Round-robin pick: lowest set bit at or after `ptr`, wrapping to the
  /// lowest set bit overall.  Precondition: any().  Matches the scalar
  /// "first candidate >= ptr, else candidates.front()" rule exactly.
  [[nodiscard]] std::uint32_t round_robin_pick(std::uint32_t ptr) const noexcept {
    const std::uint32_t at = first_set_at_or_after(ptr);
    return at != kBitsetNone ? at : first_set();
  }

  /// Calls fn(bit_index) for every set bit, ascending.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::uint32_t w = 0; w < word_count; ++w) {
      std::uint64_t word = words[w];
      while (word != 0) {
        fn(w * 64u + static_cast<std::uint32_t>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }
};

/// Owning fixed-universe bitset workspace.  reset() re-dimensions without
/// reallocating when the universe is unchanged — the per-decision path.
class PortBitset {
 public:
  PortBitset() = default;

  /// Clears and re-dimensions to a `bits`-bit universe, all zero.
  void reset(std::uint32_t bits) {
    bits_ = bits;
    w_.assign(words_for_bits(bits), 0);
  }

  /// Clears and re-dimensions to a `bits`-bit universe, all ones (tail
  /// bits beyond the universe stay zero).
  void reset_all_set(std::uint32_t bits) {
    bits_ = bits;
    w_.assign(words_for_bits(bits), ~std::uint64_t{0});
    if (!w_.empty()) w_.back() = tail_mask(bits);
  }

  [[nodiscard]] std::uint32_t bits() const noexcept { return bits_; }
  [[nodiscard]] std::uint32_t word_count() const noexcept {
    return static_cast<std::uint32_t>(w_.size());
  }
  [[nodiscard]] const std::uint64_t* words() const noexcept { return w_.data(); }
  [[nodiscard]] std::uint64_t* words() noexcept { return w_.data(); }

  void set(std::uint32_t b) noexcept { w_[b / 64u] |= std::uint64_t{1} << (b % 64u); }
  void clear(std::uint32_t b) noexcept { w_[b / 64u] &= ~(std::uint64_t{1} << (b % 64u)); }
  [[nodiscard]] bool test(std::uint32_t b) const noexcept {
    return (w_[b / 64u] >> (b % 64u)) & 1u;
  }

  [[nodiscard]] BitsetView view() const noexcept {
    return {w_.data(), static_cast<std::uint32_t>(w_.size())};
  }

 private:
  std::vector<std::uint64_t> w_;
  std::uint32_t bits_{0};
};

}  // namespace xdrs::util

#endif  // XDRS_UTIL_BITSET_HPP
