#include "util/file_io.hpp"

#include <atomic>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>

#include "util/hash.hpp"

namespace xdrs::util {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(buf).str();
}

void write_file(const std::string& path, std::string_view content) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();  // surface write errors here, not in the silent destructor
  if (!out) throw std::runtime_error{"cannot write '" + path + "'"};
}

std::string unique_tmp_token() {
  // Random seed separates processes; the counter separates threads within
  // one process without further synchronisation cost.
  static std::atomic<std::uint64_t> seq{std::random_device{}()};
  return hex16(seq.fetch_add(1));
}

}  // namespace xdrs::util
