// Process-wide (path, size, mtime)-keyed cache of parsed file content,
// shared by every file-backed workload input (flow traces, empirical flow
// -size CDFs).  A sweep probes the same file for every grid point — twice
// per point for cache identity, plus the attach-time parse — so the read,
// the FNV-1a digest and the parse happen once per distinct file state
// instead of once per point.  The stat is taken BEFORE the read: if the
// file changes in between, the stored stamp no longer matches the next
// stat and the entry reloads — stale entries cannot stick.
#ifndef XDRS_UTIL_CONTENT_CACHE_HPP
#define XDRS_UTIL_CONTENT_CACHE_HPP

#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/file_io.hpp"
#include "util/hash.hpp"

namespace xdrs::util {

/// One cache instance per parsed type (a function-local static in the
/// consuming module).  `Parsed` is the immutable result of parsing the
/// file's bytes; every caller sharing a file state shares one instance.
template <typename Parsed>
class FileContentCache {
 public:
  /// FNV-1a 64 of the file's bytes as a 16-hex-digit string, or
  /// "unreadable" when the file cannot be opened (so identity strings stay
  /// deterministic even for missing inputs).
  [[nodiscard]] std::string digest_hex(const std::string& path) {
    std::uintmax_t size = 0;
    std::filesystem::file_time_type mtime{};
    const bool have_stat = stat_file(path, size, mtime);
    if (have_stat) {
      const std::lock_guard<std::mutex> lock{mutex_};
      const auto it = entries_.find(path);
      if (it != entries_.end() && it->second.size == size && it->second.mtime == mtime) {
        return it->second.digest_hex;
      }
    }
    const std::optional<std::string> raw = read_file(path);
    if (!raw) return "unreadable";
    std::string hex = hex16(fnv1a(*raw));
    if (have_stat) {
      const std::lock_guard<std::mutex> lock{mutex_};
      Entry& entry = entries_[path];
      // Keep a concurrently stored parse for the same file state —
      // resetting it would force the next load to re-read and re-parse for
      // nothing.
      if (entry.size != size || entry.mtime != mtime) entry.parsed = nullptr;
      entry.size = size;
      entry.mtime = mtime;
      entry.digest_hex = hex;
    }
    return hex;
  }

  /// read_file + `parse` through the cache: one read and parse per distinct
  /// file state, however many callers probe it.  Throws std::runtime_error
  /// with `what` naming the path when the file cannot be read; whatever
  /// `parse` throws propagates unchanged.
  [[nodiscard]] std::shared_ptr<const Parsed> load(
      const std::string& path, const std::function<Parsed(std::string_view)>& parse,
      std::string_view who) {
    std::uintmax_t size = 0;
    std::filesystem::file_time_type mtime{};
    const bool have_stat = stat_file(path, size, mtime);
    if (have_stat) {
      const std::lock_guard<std::mutex> lock{mutex_};
      const auto it = entries_.find(path);
      if (it != entries_.end() && it->second.size == size && it->second.mtime == mtime &&
          it->second.parsed != nullptr) {
        return it->second.parsed;
      }
    }
    const std::optional<std::string> raw = read_file(path);
    if (!raw) {
      throw std::runtime_error{std::string{who} + ": cannot read '" + path + "'"};
    }
    auto parsed = std::make_shared<const Parsed>(parse(*raw));
    if (have_stat) {
      const std::lock_guard<std::mutex> lock{mutex_};
      entries_[path] = Entry{size, mtime, hex16(fnv1a(*raw)), parsed};
    }
    return parsed;
  }

 private:
  struct Entry {
    std::uintmax_t size{0};
    std::filesystem::file_time_type mtime{};
    std::string digest_hex;
    std::shared_ptr<const Parsed> parsed;  ///< filled lazily by load()
  };

  static bool stat_file(const std::string& path, std::uintmax_t& size,
                        std::filesystem::file_time_type& mtime) {
    std::error_code ec;
    size = std::filesystem::file_size(path, ec);
    if (ec) return false;
    mtime = std::filesystem::last_write_time(path, ec);
    return !ec;
  }

  std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace xdrs::util

#endif  // XDRS_UTIL_CONTENT_CACHE_HPP
