// The identity-hash primitive shared by the result cache and the trace
// digest: FNV-1a 64 plus its canonical 16-hex-digit rendering.  One copy,
// so the constants and the width cannot drift between the two identity
// encodings (both feed ScenarioSpec-keyed artefacts).
#ifndef XDRS_UTIL_HASH_HPP
#define XDRS_UTIL_HASH_HPP

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace xdrs::util {

inline constexpr std::uint64_t kFnv1aBasis = 1469598103934665603ULL;

/// Folds `bytes` into an FNV-1a 64 running hash (pass the previous return
/// value as `h` to chain multiple pieces).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes,
                                            std::uint64_t h = kFnv1aBasis) noexcept {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Canonical 16-hex-digit rendering used in cache entry names, shard-file
/// "spec_hash" members and trace digests.
[[nodiscard]] inline std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace xdrs::util

#endif  // XDRS_UTIL_HASH_HPP
