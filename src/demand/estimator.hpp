// Demand estimation — the first stage of the scheduling logic (paper §3):
// "The scheduling logic processes the incoming requests, estimates the
//  demand matrix, and runs the scheduling algorithm."
//
// Estimators observe per-VOQ arrival/departure events (the "scheduling
// requests" of the paper carry exactly this information) and produce a
// demand matrix on request.  Three strategies are provided, matching the
// design space explored by the software baselines:
//   * Instantaneous — current backlog; what a hardware scheduler reading
//     VOQ occupancy registers sees.  Zero lag, zero smoothing.
//   * EWMA          — exponentially weighted backlog; smooths bursts, the
//     c-Through approach.
//   * Windowed rate — arrivals over a sliding window; the Helios approach,
//     estimating offered rate rather than backlog.
// A hysteresis wrapper suppresses demand flapping that would thrash OCS
// circuits.
#ifndef XDRS_DEMAND_ESTIMATOR_HPP
#define XDRS_DEMAND_ESTIMATOR_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "demand/demand_matrix.hpp"
#include "sim/time.hpp"

namespace xdrs::demand {

class DemandEstimator {
 public:
  virtual ~DemandEstimator() = default;

  /// `bytes` arrived at VOQ (src, dst) at time `at`.
  virtual void on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at) = 0;

  /// `bytes` departed from VOQ (src, dst) at time `at`.
  virtual void on_departure(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at) = 0;

  /// A packet carrying a flow deadline entered VOQ (src, dst): `deadline`
  /// is the absolute time its flow must complete by.  Defaulted to a no-op
  /// so deadline-blind estimators ignore SLO information entirely; only
  /// deadline-aware estimators (EDF) override it.
  virtual void on_deadline(net::PortId src, net::PortId dst, sim::Time deadline, sim::Time at) {
    (void)src;
    (void)dst;
    (void)deadline;
    (void)at;
  }

  /// Writes the current estimate into `out` (resizing it as needed).
  virtual void snapshot(sim::Time now, DemandMatrix& out) = 0;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Exact current backlog.  The hardware design reads this directly from VOQ
/// occupancy counters, which is why hardware demand estimation is "quick".
class InstantaneousEstimator final : public DemandEstimator {
 public:
  InstantaneousEstimator(std::uint32_t inputs, std::uint32_t outputs);

  void on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at) override;
  void on_departure(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at) override;
  void snapshot(sim::Time now, DemandMatrix& out) override;
  [[nodiscard]] const char* name() const noexcept override { return "instantaneous"; }

 private:
  DemandMatrix backlog_;
};

/// Exponentially weighted moving average of backlog, sampled at snapshot
/// times: est <- alpha * backlog + (1 - alpha) * est.
class EwmaEstimator final : public DemandEstimator {
 public:
  /// Precondition: 0 < alpha <= 1.
  EwmaEstimator(std::uint32_t inputs, std::uint32_t outputs, double alpha);

  void on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at) override;
  void on_departure(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at) override;
  void snapshot(sim::Time now, DemandMatrix& out) override;
  [[nodiscard]] const char* name() const noexcept override { return "ewma"; }

 private:
  DemandMatrix backlog_;
  std::vector<double> est_;
  double alpha_;
};

/// Bytes that *arrived* within the trailing window, independent of whether
/// they have since been served: an offered-rate estimator.  Implemented as a
/// ring of time buckets per (src, dst) pair.
class WindowedRateEstimator final : public DemandEstimator {
 public:
  /// The window is `bucket_count * bucket_width` long.
  WindowedRateEstimator(std::uint32_t inputs, std::uint32_t outputs, sim::Time bucket_width,
                        std::uint32_t bucket_count);

  void on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at) override;
  void on_departure(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at) override;
  void snapshot(sim::Time now, DemandMatrix& out) override;
  [[nodiscard]] const char* name() const noexcept override { return "windowed-rate"; }

  [[nodiscard]] sim::Time window() const noexcept {
    return bucket_width_ * static_cast<std::int64_t>(bucket_count_);
  }

 private:
  /// Index of the bucket containing time `at`, with stale buckets zeroed.
  void advance_to(sim::Time at);

  std::uint32_t inputs_;
  std::uint32_t outputs_;
  sim::Time bucket_width_;
  std::uint32_t bucket_count_;
  std::vector<std::int64_t> buckets_;  // [pair][bucket]
  std::int64_t current_epoch_{0};      // absolute bucket number of ring head
};

/// Wraps another estimator and applies on/off hysteresis per element:
/// demand becomes visible only after exceeding `on_threshold` and remains
/// visible until it falls below `off_threshold`.  Prevents borderline
/// demand from thrashing circuit assignments.
class HysteresisEstimator final : public DemandEstimator {
 public:
  HysteresisEstimator(std::unique_ptr<DemandEstimator> inner, std::int64_t on_threshold,
                      std::int64_t off_threshold);

  void on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at) override;
  void on_departure(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at) override;
  void snapshot(sim::Time now, DemandMatrix& out) override;
  [[nodiscard]] const char* name() const noexcept override { return "hysteresis"; }

 private:
  std::unique_ptr<DemandEstimator> inner_;
  std::int64_t on_threshold_;
  std::int64_t off_threshold_;
  std::vector<bool> active_;
  DemandMatrix scratch_;
};

}  // namespace xdrs::demand

#endif  // XDRS_DEMAND_ESTIMATOR_HPP
