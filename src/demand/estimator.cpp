#include "demand/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xdrs::demand {

// ---------------------------------------------------------------- Instantaneous

InstantaneousEstimator::InstantaneousEstimator(std::uint32_t inputs, std::uint32_t outputs)
    : backlog_{inputs, outputs} {}

void InstantaneousEstimator::on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes,
                                        sim::Time /*at*/) {
  backlog_.add(src, dst, bytes);
}

void InstantaneousEstimator::on_departure(net::PortId src, net::PortId dst, std::int64_t bytes,
                                          sim::Time /*at*/) {
  backlog_.subtract_clamped(src, dst, bytes);
}

void InstantaneousEstimator::snapshot(sim::Time /*now*/, DemandMatrix& out) {
  out.copy_from(backlog_);
}

// ------------------------------------------------------------------------ EWMA

EwmaEstimator::EwmaEstimator(std::uint32_t inputs, std::uint32_t outputs, double alpha)
    : backlog_{inputs, outputs},
      est_(static_cast<std::size_t>(inputs) * outputs, 0.0),
      alpha_{alpha} {
  if (!(alpha > 0.0 && alpha <= 1.0)) {
    throw std::invalid_argument{"EwmaEstimator: alpha must be in (0, 1]"};
  }
}

void EwmaEstimator::on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes,
                               sim::Time /*at*/) {
  backlog_.add(src, dst, bytes);
}

void EwmaEstimator::on_departure(net::PortId src, net::PortId dst, std::int64_t bytes,
                                 sim::Time /*at*/) {
  backlog_.subtract_clamped(src, dst, bytes);
}

void EwmaEstimator::snapshot(sim::Time /*now*/, DemandMatrix& out) {
  out.resize(backlog_.inputs(), backlog_.outputs());
  std::size_t k = 0;
  for (std::uint32_t i = 0; i < backlog_.inputs(); ++i) {
    for (std::uint32_t j = 0; j < backlog_.outputs(); ++j, ++k) {
      est_[k] = alpha_ * static_cast<double>(backlog_.at_unchecked(i, j)) + (1.0 - alpha_) * est_[k];
      out.set(i, j, static_cast<std::int64_t>(std::llround(est_[k])));
    }
  }
}

// --------------------------------------------------------------- Windowed rate

WindowedRateEstimator::WindowedRateEstimator(std::uint32_t inputs, std::uint32_t outputs,
                                             sim::Time bucket_width, std::uint32_t bucket_count)
    : inputs_{inputs},
      outputs_{outputs},
      bucket_width_{bucket_width},
      bucket_count_{bucket_count},
      buckets_(static_cast<std::size_t>(inputs) * outputs * bucket_count, 0) {
  if (bucket_width <= sim::Time::zero() || bucket_count == 0) {
    throw std::invalid_argument{"WindowedRateEstimator: window must be positive"};
  }
}

void WindowedRateEstimator::advance_to(sim::Time at) {
  const std::int64_t epoch = at.ps() / bucket_width_.ps();
  if (epoch <= current_epoch_) return;
  const std::int64_t steps =
      std::min<std::int64_t>(epoch - current_epoch_, bucket_count_);
  const std::size_t pairs = static_cast<std::size_t>(inputs_) * outputs_;
  for (std::int64_t s = 1; s <= steps; ++s) {
    const std::size_t slot =
        static_cast<std::size_t>((current_epoch_ + s) % bucket_count_);
    for (std::size_t p = 0; p < pairs; ++p) {
      buckets_[p * bucket_count_ + slot] = 0;
    }
  }
  current_epoch_ = epoch;
}

void WindowedRateEstimator::on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes,
                                       sim::Time at) {
  advance_to(at);
  const std::size_t pair = static_cast<std::size_t>(src) * outputs_ + dst;
  const std::size_t slot = static_cast<std::size_t>(current_epoch_ % bucket_count_);
  buckets_[pair * bucket_count_ + slot] += bytes;
}

void WindowedRateEstimator::on_departure(net::PortId /*src*/, net::PortId /*dst*/,
                                         std::int64_t /*bytes*/, sim::Time /*at*/) {
  // Offered-rate estimation deliberately ignores service events.
}

void WindowedRateEstimator::snapshot(sim::Time now, DemandMatrix& out) {
  advance_to(now);
  out.resize(inputs_, outputs_);
  for (std::uint32_t i = 0; i < inputs_; ++i) {
    for (std::uint32_t j = 0; j < outputs_; ++j) {
      const std::size_t pair = static_cast<std::size_t>(i) * outputs_ + j;
      std::int64_t sum = 0;
      for (std::uint32_t b = 0; b < bucket_count_; ++b) sum += buckets_[pair * bucket_count_ + b];
      out.set(i, j, sum);
    }
  }
}

// ------------------------------------------------------------------ Hysteresis

HysteresisEstimator::HysteresisEstimator(std::unique_ptr<DemandEstimator> inner,
                                         std::int64_t on_threshold, std::int64_t off_threshold)
    : inner_{std::move(inner)}, on_threshold_{on_threshold}, off_threshold_{off_threshold} {
  if (!inner_) throw std::invalid_argument{"HysteresisEstimator: null inner estimator"};
  if (off_threshold_ > on_threshold_) {
    throw std::invalid_argument{"HysteresisEstimator: off threshold must not exceed on threshold"};
  }
}

void HysteresisEstimator::on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes,
                                     sim::Time at) {
  inner_->on_arrival(src, dst, bytes, at);
}

void HysteresisEstimator::on_departure(net::PortId src, net::PortId dst, std::int64_t bytes,
                                       sim::Time at) {
  inner_->on_departure(src, dst, bytes, at);
}

void HysteresisEstimator::snapshot(sim::Time now, DemandMatrix& out) {
  inner_->snapshot(now, scratch_);
  const std::size_t pairs =
      static_cast<std::size_t>(scratch_.inputs()) * scratch_.outputs();
  if (active_.size() != pairs) active_.assign(pairs, false);

  out.resize(scratch_.inputs(), scratch_.outputs());
  std::size_t k = 0;
  for (std::uint32_t i = 0; i < scratch_.inputs(); ++i) {
    for (std::uint32_t j = 0; j < scratch_.outputs(); ++j, ++k) {
      const std::int64_t d = scratch_.at_unchecked(i, j);
      if (active_[k]) {
        if (d < off_threshold_) active_[k] = false;
      } else {
        if (d >= on_threshold_) active_[k] = true;
      }
      out.set(i, j, active_[k] ? d : 0);
    }
  }
}

}  // namespace xdrs::demand
