#include "demand/demand_matrix.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>

namespace xdrs::demand {

DemandMatrix::DemandMatrix(std::uint32_t inputs, std::uint32_t outputs)
    : inputs_{inputs},
      outputs_{outputs},
      wpr_{util::words_for_bits(outputs)},
      wpc_{util::words_for_bits(inputs)},
      v_(static_cast<std::size_t>(inputs) * outputs, 0),
      row_bits_(static_cast<std::size_t>(inputs) * wpr_, 0),
      col_bits_(static_cast<std::size_t>(outputs) * wpc_, 0) {
  if (inputs == 0 || outputs == 0) {
    throw std::invalid_argument{"DemandMatrix: dimensions must be >= 1"};
  }
}

std::size_t DemandMatrix::idx(net::PortId i, net::PortId j) const {
  if (i >= inputs_ || j >= outputs_) throw std::out_of_range{"DemandMatrix: index"};
  return static_cast<std::size_t>(i) * outputs_ + j;
}

std::int64_t DemandMatrix::at(net::PortId i, net::PortId j) const { return v_[idx(i, j)]; }

void DemandMatrix::set(net::PortId i, net::PortId j, std::int64_t v) {
  if (v < 0) throw std::invalid_argument{"DemandMatrix: negative demand"};
  auto& slot = v_[idx(i, j)];
  total_ += v - slot;
  slot = v;
  update_support(i, j, v > 0);
}

void DemandMatrix::add(net::PortId i, net::PortId j, std::int64_t delta) {
  auto& slot = v_[idx(i, j)];
  if (slot + delta < 0) throw std::invalid_argument{"DemandMatrix: add would go negative"};
  slot += delta;
  total_ += delta;
  update_support(i, j, slot > 0);
}

void DemandMatrix::subtract_clamped(net::PortId i, net::PortId j, std::int64_t delta) {
  auto& slot = v_[idx(i, j)];
  const std::int64_t removed = std::min(slot, delta);
  slot -= removed;
  total_ -= removed;
  update_support(i, j, slot > 0);
}

void DemandMatrix::clear() noexcept {
  std::fill(v_.begin(), v_.end(), 0);
  std::fill(row_bits_.begin(), row_bits_.end(), 0);
  std::fill(col_bits_.begin(), col_bits_.end(), 0);
  total_ = 0;
}

void DemandMatrix::resize(std::uint32_t inputs, std::uint32_t outputs) {
  if (inputs == 0 || outputs == 0) {
    throw std::invalid_argument{"DemandMatrix: dimensions must be >= 1"};
  }
  inputs_ = inputs;
  outputs_ = outputs;
  wpr_ = util::words_for_bits(outputs);
  wpc_ = util::words_for_bits(inputs);
  v_.assign(static_cast<std::size_t>(inputs) * outputs, 0);
  row_bits_.assign(static_cast<std::size_t>(inputs) * wpr_, 0);
  col_bits_.assign(static_cast<std::size_t>(outputs) * wpc_, 0);
  total_ = 0;
}

void DemandMatrix::fill(std::int64_t v) {
  if (v < 0) throw std::invalid_argument{"DemandMatrix: negative demand"};
  std::fill(v_.begin(), v_.end(), v);
  total_ = v * static_cast<std::int64_t>(v_.size());
  if (v > 0) {
    std::fill(row_bits_.begin(), row_bits_.end(), ~std::uint64_t{0});
    std::fill(col_bits_.begin(), col_bits_.end(), ~std::uint64_t{0});
    // Tail bits past the dimensions must stay zero for every row/column.
    const std::uint64_t rt = util::tail_mask(outputs_);
    for (std::uint32_t i = 0; i < inputs_; ++i) {
      row_bits_[static_cast<std::size_t>(i) * wpr_ + wpr_ - 1] = rt;
    }
    const std::uint64_t ct = util::tail_mask(inputs_);
    for (std::uint32_t j = 0; j < outputs_; ++j) {
      col_bits_[static_cast<std::size_t>(j) * wpc_ + wpc_ - 1] = ct;
    }
  } else {
    std::fill(row_bits_.begin(), row_bits_.end(), 0);
    std::fill(col_bits_.begin(), col_bits_.end(), 0);
  }
}

void DemandMatrix::copy_from(const DemandMatrix& other) {
  inputs_ = other.inputs_;
  outputs_ = other.outputs_;
  wpr_ = other.wpr_;
  wpc_ = other.wpc_;
  v_.assign(other.v_.begin(), other.v_.end());
  row_bits_.assign(other.row_bits_.begin(), other.row_bits_.end());
  col_bits_.assign(other.col_bits_.begin(), other.col_bits_.end());
  total_ = other.total_;
}

std::int64_t DemandMatrix::row_sum(net::PortId i) const {
  if (i >= inputs_) throw std::out_of_range{"DemandMatrix::row_sum"};
  std::int64_t s = 0;
  for (std::uint32_t j = 0; j < outputs_; ++j) s += v_[static_cast<std::size_t>(i) * outputs_ + j];
  return s;
}

std::int64_t DemandMatrix::col_sum(net::PortId j) const {
  if (j >= outputs_) throw std::out_of_range{"DemandMatrix::col_sum"};
  std::int64_t s = 0;
  for (std::uint32_t i = 0; i < inputs_; ++i) s += v_[static_cast<std::size_t>(i) * outputs_ + j];
  return s;
}

std::int64_t DemandMatrix::max_element() const {
  return v_.empty() ? 0 : *std::max_element(v_.begin(), v_.end());
}

std::int64_t DemandMatrix::max_line_sum() const {
  std::int64_t best = 0;
  for (std::uint32_t i = 0; i < inputs_; ++i) best = std::max(best, row_sum(i));
  for (std::uint32_t j = 0; j < outputs_; ++j) best = std::max(best, col_sum(j));
  return best;
}

std::size_t DemandMatrix::nonzero_count() const {
  std::size_t c = 0;
  for (const std::uint64_t w : row_bits_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

void DemandMatrix::for_each_nonzero(
    const std::function<void(net::PortId, net::PortId, std::int64_t)>& fn) const {
  for (std::uint32_t i = 0; i < inputs_; ++i) {
    const std::int64_t* row = v_.data() + static_cast<std::size_t>(i) * outputs_;
    const std::uint64_t* bits = row_support(i);
    for (std::uint32_t w = 0; w < wpr_; ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        const std::uint32_t j = w * 64u + static_cast<std::uint32_t>(std::countr_zero(word));
        fn(i, j, row[j]);
        word &= word - 1;
      }
    }
  }
}

bool DemandMatrix::operator==(const DemandMatrix& other) const noexcept {
  return inputs_ == other.inputs_ && outputs_ == other.outputs_ && total_ == other.total_ &&
         row_bits_ == other.row_bits_ && v_ == other.v_;
}

std::string DemandMatrix::to_string() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(inputs_) * outputs_ * 8);
  for (std::uint32_t i = 0; i < inputs_; ++i) {
    for (std::uint32_t j = 0; j < outputs_; ++j) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%8lld",
                    static_cast<long long>(v_[static_cast<std::size_t>(i) * outputs_ + j]));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace xdrs::demand
