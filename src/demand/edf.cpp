#include "demand/edf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xdrs::demand {

namespace {

/// Urgency reference timescale: the hybrid scheduling epoch.  Deadlines are
/// compared against this horizon, so "urgent" means "due within about one
/// scheduling decision from now".
constexpr sim::Time kRefHorizon = sim::Time::microseconds(100);

}  // namespace

EdfEstimator::EdfEstimator(std::uint32_t inputs, std::uint32_t outputs, double boost)
    : backlog_{inputs, outputs},
      earliest_(static_cast<std::size_t>(inputs) * outputs, sim::Time::zero()),
      boost_{boost} {
  if (!(boost > 0.0)) throw std::invalid_argument{"EdfEstimator: boost must be positive"};
}

void EdfEstimator::on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes,
                              sim::Time /*at*/) {
  backlog_.add(src, dst, bytes);
}

void EdfEstimator::on_departure(net::PortId src, net::PortId dst, std::int64_t bytes,
                                sim::Time /*at*/) {
  backlog_.subtract_clamped(src, dst, bytes);
  if (backlog_.at_unchecked(src, dst) == 0) {
    // Drained VOQ: whatever deadline flow was pending has left this queue.
    earliest_[static_cast<std::size_t>(src) * backlog_.outputs() + dst] = sim::Time::zero();
  }
}

void EdfEstimator::on_deadline(net::PortId src, net::PortId dst, sim::Time deadline,
                               sim::Time /*at*/) {
  if (deadline.is_zero()) return;
  sim::Time& slot = earliest_[static_cast<std::size_t>(src) * backlog_.outputs() + dst];
  if (slot.is_zero() || deadline < slot) slot = deadline;
}

void EdfEstimator::snapshot(sim::Time now, DemandMatrix& out) {
  out.copy_from(backlog_);
  const std::int64_t floor_ps = kRefHorizon.ps() / 64;
  for (std::uint32_t i = 0; i < backlog_.inputs(); ++i) {
    for (std::uint32_t j = 0; j < backlog_.outputs(); ++j) {
      const sim::Time dl = earliest_[static_cast<std::size_t>(i) * backlog_.outputs() + j];
      if (dl.is_zero()) continue;
      const std::int64_t d = out.at_unchecked(i, j);
      if (d == 0) continue;
      const std::int64_t left_ps = std::max(dl.ps() - now.ps(), floor_ps);
      const double urgency =
          1.0 + boost_ * static_cast<double>(kRefHorizon.ps()) / static_cast<double>(left_ps);
      const auto weighted = static_cast<std::int64_t>(
          std::llround(static_cast<double>(d) * urgency));
      out.add_unchecked(i, j, weighted - d);
    }
  }
}

}  // namespace xdrs::demand
