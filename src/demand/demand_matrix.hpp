// The demand matrix: element (i, j) is the estimated traffic (bytes) that
// input i wants to send to output j.  This is the data structure the
// scheduling logic computes over, and the interface between demand
// estimation and the scheduling algorithms.
#ifndef XDRS_DEMAND_DEMAND_MATRIX_HPP
#define XDRS_DEMAND_DEMAND_MATRIX_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace xdrs::demand {

class DemandMatrix {
 public:
  DemandMatrix() = default;
  DemandMatrix(std::uint32_t inputs, std::uint32_t outputs);

  /// Square convenience constructor.
  explicit DemandMatrix(std::uint32_t ports) : DemandMatrix(ports, ports) {}

  [[nodiscard]] std::uint32_t inputs() const noexcept { return inputs_; }
  [[nodiscard]] std::uint32_t outputs() const noexcept { return outputs_; }

  [[nodiscard]] std::int64_t at(net::PortId i, net::PortId j) const;
  void set(net::PortId i, net::PortId j, std::int64_t v);
  void add(net::PortId i, net::PortId j, std::int64_t delta);

  // Unchecked flat-store accessors for hot paths (matcher inner loops,
  // estimator snapshots).  Preconditions: i < inputs(), j < outputs(), and
  // for add_unchecked the element must stay non-negative.
  [[nodiscard]] std::int64_t at_unchecked(net::PortId i, net::PortId j) const noexcept {
    return v_[static_cast<std::size_t>(i) * outputs_ + j];
  }
  void add_unchecked(net::PortId i, net::PortId j, std::int64_t delta) noexcept {
    v_[static_cast<std::size_t>(i) * outputs_ + j] += delta;
    total_ += delta;
  }

  /// Clamped subtraction: never drives an element below zero.
  void subtract_clamped(net::PortId i, net::PortId j, std::int64_t delta);

  void clear() noexcept;
  void resize(std::uint32_t inputs, std::uint32_t outputs);

  /// Sets every element to `v` (>= 0) without changing the shape.
  void fill(std::int64_t v);

  /// Becomes a copy of `other`, reusing the existing allocation when the
  /// element count already matches — the per-snapshot path of the sweep
  /// runner, where reallocation churn would dominate small matrices.
  void copy_from(const DemandMatrix& other);

  [[nodiscard]] std::int64_t row_sum(net::PortId i) const;
  [[nodiscard]] std::int64_t col_sum(net::PortId j) const;
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] std::int64_t max_element() const;

  /// Largest row or column sum — the quantity BvN-style decompositions
  /// must cover (the matrix "fits" in that many service units).
  [[nodiscard]] std::int64_t max_line_sum() const;

  [[nodiscard]] std::size_t nonzero_count() const;

  /// Calls `fn(i, j, value)` for every strictly positive element.
  void for_each_nonzero(const std::function<void(net::PortId, net::PortId, std::int64_t)>& fn) const;

  [[nodiscard]] bool operator==(const DemandMatrix& other) const noexcept = default;

  /// Multi-line human-readable rendering for debugging and examples.
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::size_t idx(net::PortId i, net::PortId j) const;

  std::uint32_t inputs_{0};
  std::uint32_t outputs_{0};
  std::vector<std::int64_t> v_;
  std::int64_t total_{0};
};

}  // namespace xdrs::demand

#endif  // XDRS_DEMAND_DEMAND_MATRIX_HPP
