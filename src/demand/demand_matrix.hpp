// The demand matrix: element (i, j) is the estimated traffic (bytes) that
// input i wants to send to output j.  This is the data structure the
// scheduling logic computes over, and the interface between demand
// estimation and the scheduling algorithms.
//
// Alongside the dense int64 store the matrix maintains two uint64_t
// support bitmaps — row-major over outputs and column-major over inputs,
// 64 ports per word — updated incrementally by every mutation.  Matcher
// kernels consume these views directly (find-first-set, mask-AND) instead
// of scanning the int64 grid: at 128 ports the whole bitmap pair is 4 KiB,
// so a matcher's per-iteration working set lives in L1 instead of walking
// 128 KiB of demand values.  Invariant: a bit is set iff the element is
// strictly positive, and bits beyond the dimensions are zero.
#ifndef XDRS_DEMAND_DEMAND_MATRIX_HPP
#define XDRS_DEMAND_DEMAND_MATRIX_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "util/bitset.hpp"

namespace xdrs::demand {

class DemandMatrix {
 public:
  DemandMatrix() = default;
  DemandMatrix(std::uint32_t inputs, std::uint32_t outputs);

  /// Square convenience constructor.
  explicit DemandMatrix(std::uint32_t ports) : DemandMatrix(ports, ports) {}

  [[nodiscard]] std::uint32_t inputs() const noexcept { return inputs_; }
  [[nodiscard]] std::uint32_t outputs() const noexcept { return outputs_; }

  [[nodiscard]] std::int64_t at(net::PortId i, net::PortId j) const;
  void set(net::PortId i, net::PortId j, std::int64_t v);
  void add(net::PortId i, net::PortId j, std::int64_t delta);

  // Unchecked flat-store accessors for hot paths (matcher inner loops,
  // estimator snapshots).  Preconditions: i < inputs(), j < outputs(), and
  // for add_unchecked the element must stay non-negative.
  [[nodiscard]] std::int64_t at_unchecked(net::PortId i, net::PortId j) const noexcept {
    return v_[static_cast<std::size_t>(i) * outputs_ + j];
  }
  void add_unchecked(net::PortId i, net::PortId j, std::int64_t delta) noexcept {
    auto& slot = v_[static_cast<std::size_t>(i) * outputs_ + j];
    slot += delta;
    total_ += delta;
    update_support(i, j, slot > 0);
  }

  /// Clamped subtraction: never drives an element below zero.
  void subtract_clamped(net::PortId i, net::PortId j, std::int64_t delta);

  void clear() noexcept;
  void resize(std::uint32_t inputs, std::uint32_t outputs);

  /// Sets every element to `v` (>= 0) without changing the shape.
  void fill(std::int64_t v);

  /// Becomes a copy of `other`, reusing the existing allocation when the
  /// element count already matches — the per-snapshot path of the sweep
  /// runner, where reallocation churn would dominate small matrices.
  void copy_from(const DemandMatrix& other);

  [[nodiscard]] std::int64_t row_sum(net::PortId i) const;
  [[nodiscard]] std::int64_t col_sum(net::PortId j) const;
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] std::int64_t max_element() const;

  /// Largest row or column sum — the quantity BvN-style decompositions
  /// must cover (the matrix "fits" in that many service units).
  [[nodiscard]] std::int64_t max_line_sum() const;

  [[nodiscard]] std::size_t nonzero_count() const;

  // ---- support bitmap views (matcher kernel hot path) ---------------------
  // Row view: one bit per OUTPUT, set iff demand(i, j) > 0.
  // Column view: one bit per INPUT, set iff demand(i, j) > 0.
  // Word counts are words_per_row()/words_per_col(); tail bits are zero.
  [[nodiscard]] std::uint32_t words_per_row() const noexcept { return wpr_; }
  [[nodiscard]] std::uint32_t words_per_col() const noexcept { return wpc_; }
  [[nodiscard]] const std::uint64_t* row_support(net::PortId i) const noexcept {
    return row_bits_.data() + static_cast<std::size_t>(i) * wpr_;
  }
  [[nodiscard]] const std::uint64_t* col_support(net::PortId j) const noexcept {
    return col_bits_.data() + static_cast<std::size_t>(j) * wpc_;
  }
  [[nodiscard]] util::BitsetView row_view(net::PortId i) const noexcept {
    return {row_support(i), wpr_};
  }
  [[nodiscard]] util::BitsetView col_view(net::PortId j) const noexcept {
    return {col_support(j), wpc_};
  }
  /// The whole row-major support bitmap — the cheap O(N^2/64) identity the
  /// warm-rematch caches compare (equal bitmap <=> equal support).
  [[nodiscard]] const std::vector<std::uint64_t>& row_support_words() const noexcept {
    return row_bits_;
  }
  /// True iff demand(i, j) > 0, via one bit test instead of an int64 load.
  [[nodiscard]] bool has_demand(net::PortId i, net::PortId j) const noexcept {
    return (row_bits_[static_cast<std::size_t>(i) * wpr_ + j / 64u] >> (j % 64u)) & 1u;
  }
  /// Contiguous row of demand values (outputs() elements) — the dense view
  /// kernels that need values (not just support) iterate.
  [[nodiscard]] const std::int64_t* row_data(net::PortId i) const noexcept {
    return v_.data() + static_cast<std::size_t>(i) * outputs_;
  }

  /// Calls `fn(i, j, value)` for every strictly positive element, in
  /// row-major order (bitmap-driven: zero rows cost one word test each).
  void for_each_nonzero(const std::function<void(net::PortId, net::PortId, std::int64_t)>& fn) const;

  /// Value equality.  Ordered cheapest-reject-first: shape and total, then
  /// the support bitmaps (word compares), then the dense values — so the
  /// warm-rematch equality probe usually answers without touching the grid.
  [[nodiscard]] bool operator==(const DemandMatrix& other) const noexcept;

  /// Multi-line human-readable rendering for debugging and examples.
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::size_t idx(net::PortId i, net::PortId j) const;

  /// Keeps both support bitmaps consistent with element (i, j) being
  /// strictly positive (`nz`).  Branchless: two masked stores.
  void update_support(net::PortId i, net::PortId j, bool nz) noexcept {
    const std::uint64_t rm = std::uint64_t{1} << (j % 64u);
    std::uint64_t& rw = row_bits_[static_cast<std::size_t>(i) * wpr_ + j / 64u];
    rw = nz ? (rw | rm) : (rw & ~rm);
    const std::uint64_t cm = std::uint64_t{1} << (i % 64u);
    std::uint64_t& cw = col_bits_[static_cast<std::size_t>(j) * wpc_ + i / 64u];
    cw = nz ? (cw | cm) : (cw & ~cm);
  }

  std::uint32_t inputs_{0};
  std::uint32_t outputs_{0};
  std::uint32_t wpr_{0};  ///< words per row-support row  (= ceil(outputs/64))
  std::uint32_t wpc_{0};  ///< words per col-support column (= ceil(inputs/64))
  std::vector<std::int64_t> v_;
  std::vector<std::uint64_t> row_bits_;  ///< inputs x wpr_, bit j of row i <=> v(i,j) > 0
  std::vector<std::uint64_t> col_bits_;  ///< outputs x wpc_, bit i of col j <=> v(i,j) > 0
  std::int64_t total_{0};
};

}  // namespace xdrs::demand

#endif  // XDRS_DEMAND_DEMAND_MATRIX_HPP
