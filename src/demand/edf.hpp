// EDF-flavoured demand estimation: backlog weighted by deadline urgency.
//
// A deadline-blind estimator reports how much traffic each VOQ holds; this
// one also reports how URGENT it is.  It tracks the earliest pending flow
// deadline per VOQ (from the on_deadline hook) and, at snapshot time,
// multiplies the instantaneous backlog by an urgency factor that grows as
// that deadline approaches and caps once it has passed:
//
//   urgency(i, j) = 1 + boost * T_ref / max(deadline - now, T_ref / 64)
//
// with T_ref = 100 us (the hybrid scheduling epoch).  Far-future deadlines
// leave demand almost untouched (factor -> 1), a deadline one epoch out
// weights it by 1 + boost, and an expired deadline by 1 + 64 * boost — so a
// matcher or circuit scheduler maximising weight preferentially serves the
// queues whose flows are about to miss.  This is earliest-deadline-first
// pressure expressed in the only vocabulary the scheduling algorithms
// speak: the demand matrix.
//
// The per-VOQ deadline clears when the VOQ drains (no bytes left means no
// pending deadline flow at this granularity — the estimator deliberately
// does not track individual flows, matching what switch hardware could
// read from occupancy registers plus one "earliest deadline" tag per VOQ).
#ifndef XDRS_DEMAND_EDF_HPP
#define XDRS_DEMAND_EDF_HPP

#include <cstdint>
#include <vector>

#include "demand/estimator.hpp"

namespace xdrs::demand {

class EdfEstimator final : public DemandEstimator {
 public:
  /// Precondition: boost > 0 (boost = 0 would be exactly "instantaneous").
  EdfEstimator(std::uint32_t inputs, std::uint32_t outputs, double boost);

  void on_arrival(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at) override;
  void on_departure(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time at) override;
  void on_deadline(net::PortId src, net::PortId dst, sim::Time deadline, sim::Time at) override;
  void snapshot(sim::Time now, DemandMatrix& out) override;
  [[nodiscard]] const char* name() const noexcept override { return "edf"; }

  [[nodiscard]] double boost() const noexcept { return boost_; }

 private:
  DemandMatrix backlog_;
  /// Earliest pending deadline per (src, dst) VOQ; zero = none.
  std::vector<sim::Time> earliest_;
  double boost_;
};

}  // namespace xdrs::demand

#endif  // XDRS_DEMAND_EDF_HPP
