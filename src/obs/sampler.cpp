#include "obs/sampler.hpp"

#include "stats/serialize.hpp"

namespace xdrs::obs {

TimelineSampler::TimelineSampler(std::size_t capacity)
    : voq_total_{capacity},
      voq_max_{capacity},
      demand_nz_{capacity},
      ocs_{capacity},
      eps_{capacity},
      urgent_flows_{capacity},
      urgent_bytes_{capacity} {}

void TimelineSampler::record(sim::Time at, const TimelineSnapshot& s) {
  ++offered_;
  voq_total_.record(at, static_cast<double>(s.voq_total_bytes));
  voq_max_.record(at, static_cast<double>(s.voq_max_bytes));
  demand_nz_.record(at, static_cast<double>(s.demand_nonzeros));
  ocs_.record(at, static_cast<double>(s.ocs_delivered_bytes));
  eps_.record(at, static_cast<double>(s.eps_delivered_bytes));
  urgent_flows_.record(at, static_cast<double>(s.urgent_flows));
  urgent_bytes_.record(at, static_cast<double>(s.urgent_bytes));
}

namespace {

void append_series(std::string& out, const char* name, const char* unit,
                   const stats::TimeSeries& ts) {
  out += "    {\"name\":\"";
  out += name;
  out += "\",\"unit\":\"";
  out += unit;
  out += "\",\"stride\":" + std::to_string(ts.stride());
  out += ",\"peak\":" + stats::format_double(ts.peak());
  out += ",\"samples\":[";
  const auto& samples = ts.samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i != 0) out += ',';
    out += '[' + stats::format_double(samples[i].at.us()) + ',' +
           stats::format_double(samples[i].value) + ']';
  }
  out += "]}";
}

}  // namespace

std::string timeline_json(const TimelineSampler& s, sim::Time sample_period) {
  std::string out{"{\n  \"timeline_schema\": 1,\n  \"sample_period_us\": "};
  out += stats::format_double(sample_period.us());
  out += ",\n  \"samples_offered\": " + std::to_string(s.samples_offered());
  out += ",\n  \"series\": [\n";
  struct Entry {
    const char* name;
    const char* unit;
    const stats::TimeSeries& ts;
  };
  const Entry entries[] = {
      {"voq_total_bytes", "bytes", s.voq_total_bytes()},
      {"voq_max_bytes", "bytes", s.voq_max_bytes()},
      {"demand_nonzeros", "pairs", s.demand_nonzeros()},
      {"ocs_delivered_bytes", "bytes", s.ocs_delivered_bytes()},
      {"eps_delivered_bytes", "bytes", s.eps_delivered_bytes()},
      {"deadline_urgent_flows", "flows", s.urgent_flows()},
      {"deadline_urgent_bytes", "bytes", s.urgent_bytes()},
  };
  for (std::size_t i = 0; i < std::size(entries); ++i) {
    append_series(out, entries[i].name, entries[i].unit, entries[i].ts);
    if (i + 1 < std::size(entries)) out += ',';
    out += '\n';
  }
  out += "  ]\n}";
  return out;
}

}  // namespace xdrs::obs
