// Chrome trace-event export: one JSON document loadable by Perfetto
// (ui.perfetto.dev) or chrome://tracing, merging two tracks:
//
//   pid 1 "virtual time"  — the simulation's TraceRecorder events.
//                           kScheduleStart/kScheduleDone and
//                           kReconfigStart/kReconfigDone pairs become
//                           duration ("X") slices; everything else becomes
//                           instant events carrying its (a, b) payload.
//   pid 2 "host time"     — the registry's span log (stage compute spans),
//                           normalised so the earliest span starts at 0.
//
// Both tracks are in microseconds.  The two clocks are unrelated (virtual
// picoseconds vs host monotonic ns); putting them in separate trace
// processes keeps Perfetto from implying alignment while still allowing
// side-by-side inspection.  Output is deterministic for deterministic
// inputs (golden-file tested), so exports diff cleanly.
#ifndef XDRS_OBS_TRACE_EXPORT_HPP
#define XDRS_OBS_TRACE_EXPORT_HPP

#include <string>

#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace xdrs::obs {

[[nodiscard]] std::string chrome_trace_json(const sim::TraceRecorder& sim_trace,
                                            const Registry& registry);

}  // namespace xdrs::obs

#endif  // XDRS_OBS_TRACE_EXPORT_HPP
