// Chrome trace-event export: one JSON document loadable by Perfetto
// (ui.perfetto.dev) or chrome://tracing, merging two tracks:
//
//   pid 1 "virtual time"  — the simulation's TraceRecorder events.
//                           kScheduleStart/kScheduleDone and
//                           kReconfigStart/kReconfigDone pairs become
//                           duration ("X") slices; everything else becomes
//                           instant events carrying its (a, b) payload.
//   pid 2 "host time"     — the registry's span log (stage compute spans),
//                           normalised so the earliest span starts at 0.
//   pid 3 "tiers"         — optional named counter tracks ("C" events) in
//                           virtual time: one per tier series (per-ToR VOQ
//                           depth, core queue depth) of a fat-tree run.
//                           Present only when counter tracks are passed.
//
// All tracks are in microseconds.  The virtual and host clocks are
// unrelated (virtual picoseconds vs host monotonic ns); putting them in
// separate trace processes keeps Perfetto from implying alignment while
// still allowing side-by-side inspection.  Output is deterministic for
// deterministic inputs (golden-file tested), so exports diff cleanly.
#ifndef XDRS_OBS_TRACE_EXPORT_HPP
#define XDRS_OBS_TRACE_EXPORT_HPP

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/trace.hpp"
#include "stats/timeseries.hpp"

namespace xdrs::obs {

/// One named counter track: (track name, virtual-time series).
using CounterTracks = std::vector<std::pair<std::string, const stats::TimeSeries*>>;

[[nodiscard]] std::string chrome_trace_json(const sim::TraceRecorder& sim_trace,
                                            const Registry& registry);

/// As above, plus one pid-3 counter track per entry of `counters` — the
/// per-tier gauge series of a fat-tree run (topo::FatTree::tier_series()).
/// Null or empty series are skipped; an empty list reproduces the two-track
/// output byte-for-byte.
[[nodiscard]] std::string chrome_trace_json(const sim::TraceRecorder& sim_trace,
                                            const Registry& registry,
                                            const CounterTracks& counters);

}  // namespace xdrs::obs

#endif  // XDRS_OBS_TRACE_EXPORT_HPP
