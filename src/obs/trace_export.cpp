#include "obs/trace_export.hpp"

#include <algorithm>
#include <optional>

#include "stats/serialize.hpp"

namespace xdrs::obs {

namespace {

using sim::TraceCategory;

void append_event(std::string& out, bool& first, const std::string& body) {
  if (!first) out += ",\n";
  first = false;
  out += "  {" + body + '}';
}

[[nodiscard]] std::string ts_us(double us) { return stats::format_double(us); }

/// Duration slice on the virtual-time track.
void append_sim_slice(std::string& out, bool& first, const char* name, double start_us,
                      double dur_us, std::uint64_t arg) {
  append_event(out, first,
               "\"name\":\"" + std::string{name} + "\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":" +
                   ts_us(start_us) + ",\"dur\":" + ts_us(dur_us) +
                   ",\"pid\":1,\"tid\":1,\"args\":{\"result\":" + std::to_string(arg) + '}');
}

/// Instant event on the virtual-time track.
void append_sim_instant(std::string& out, bool& first, const sim::TraceEvent& e) {
  append_event(out, first,
               "\"name\":\"" + std::string{sim::to_string(e.category)} +
                   "\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + ts_us(e.at.us()) +
                   ",\"pid\":1,\"tid\":1,\"args\":{\"a\":" + std::to_string(e.a) +
                   ",\"b\":" + std::to_string(e.b) + '}');
}

}  // namespace

std::string chrome_trace_json(const sim::TraceRecorder& sim_trace, const Registry& registry) {
  return chrome_trace_json(sim_trace, registry, CounterTracks{});
}

std::string chrome_trace_json(const sim::TraceRecorder& sim_trace, const Registry& registry,
                              const CounterTracks& counters) {
  std::string out{"{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n"};
  bool first = true;

  // Keep only usable counter tracks so the pid-3 process appears exactly
  // when it will carry events.
  CounterTracks tiers;
  for (const auto& [name, series] : counters) {
    if (series != nullptr && !series->samples().empty()) tiers.emplace_back(name, series);
  }

  // Track naming metadata.
  append_event(out, first,
               "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":"
               "\"virtual time (simulation)\"}");
  append_event(out, first,
               "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":{\"name\":"
               "\"host time (compute spans)\"}");
  if (!tiers.empty()) {
    append_event(out, first,
                 "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,\"args\":{\"name\":"
                 "\"tiers (queue depth, virtual time)\"}");
  }

  // ---- virtual-time track: recorder events in record order ----------------
  // Start/done pairs fold into duration slices, emitted when the done event
  // is reached (JSON event order is free; ts carries the chronology).
  std::optional<sim::TraceEvent> schedule_open;
  std::optional<sim::TraceEvent> reconfig_open;
  for (const sim::TraceEvent& e : sim_trace.events()) {
    switch (e.category) {
      case TraceCategory::kScheduleStart:
        schedule_open = e;
        break;
      case TraceCategory::kScheduleDone:
        if (schedule_open) {
          append_sim_slice(out, first, "schedule", schedule_open->at.us(),
                           (e.at - schedule_open->at).us(), e.a);
          schedule_open.reset();
        } else {
          append_sim_instant(out, first, e);
        }
        break;
      case TraceCategory::kReconfigStart:
        reconfig_open = e;
        break;
      case TraceCategory::kReconfigDone:
        if (reconfig_open) {
          append_sim_slice(out, first, "reconfig", reconfig_open->at.us(),
                           (e.at - reconfig_open->at).us(), e.a);
          reconfig_open.reset();
        } else {
          append_sim_instant(out, first, e);
        }
        break;
      default:
        append_sim_instant(out, first, e);
        break;
    }
  }
  // Unclosed pairs at the end of the run surface as instants, not silence.
  if (schedule_open) append_sim_instant(out, first, *schedule_open);
  if (reconfig_open) append_sim_instant(out, first, *reconfig_open);

  // ---- host-time track: span log, normalised to the earliest span ---------
  std::int64_t epoch_ns = 0;
  if (!registry.spans().empty()) {
    epoch_ns = std::min_element(registry.spans().begin(), registry.spans().end(),
                                [](const Span& a, const Span& b) {
                                  return a.start_ns < b.start_ns;
                                })
                   ->start_ns;
  }
  for (const Span& s : registry.spans()) {
    const Timer* t = registry.timer_by_id(s.timer_id);
    const std::string name = t != nullptr ? t->name() : ("timer#" + std::to_string(s.timer_id));
    append_event(out, first,
                 "\"name\":\"" + stats::json_escape(name) +
                     "\",\"cat\":\"host\",\"ph\":\"X\",\"ts\":" +
                     ts_us(static_cast<double>(s.start_ns - epoch_ns) / 1e3) +
                     ",\"dur\":" + ts_us(static_cast<double>(s.dur_ns) / 1e3) +
                     ",\"pid\":2,\"tid\":1");
  }

  // ---- tier counter tracks: one Perfetto counter per named series ---------
  for (const auto& [name, series] : tiers) {
    for (const stats::TimeSeries::Sample& s : series->samples()) {
      append_event(out, first,
                   "\"name\":\"" + stats::json_escape(name) +
                       "\",\"cat\":\"tier\",\"ph\":\"C\",\"ts\":" + ts_us(s.at.us()) +
                       ",\"pid\":3,\"tid\":1,\"args\":{\"value\":" +
                       stats::format_double(s.value) + '}');
    }
  }

  out += "\n]\n}\n";
  return out;
}

}  // namespace xdrs::obs
