// Per-run telemetry bundle: the metric registry plus the timeline sampler,
// owned by HybridSwitchFramework and switched on with enable_telemetry().
//
// The hard invariant (CI-gated): telemetry NEVER perturbs results.  It
// writes sidecar documents only — nothing here feeds RunReport::to_json()
// or ScenarioSpec::identity_json(), so artefacts are byte-identical with
// telemetry on and off, and cache keys are oblivious to it.
#ifndef XDRS_OBS_TELEMETRY_HPP
#define XDRS_OBS_TELEMETRY_HPP

#include <string>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "sim/time.hpp"

namespace xdrs::obs {

struct TelemetryConfig {
  /// Virtual-time distance between timeline samples.  zero = auto: the
  /// measured duration / 256, clamped to at least 1 us, derived at run().
  sim::Time sample_period{};
  /// Bound on every timeline series (stride decimation beyond it).
  std::size_t timeline_capacity{4096};
  /// Individual compute spans retained for Chrome-trace export (drop-newest
  /// past the bound).  0 = aggregate stage summaries only.
  std::size_t span_log_capacity{0};
};

/// The telemetry state of one framework run.
class RunTelemetry {
 public:
  explicit RunTelemetry(const TelemetryConfig& cfg)
      : config_{cfg}, timeline_{cfg.timeline_capacity} {
    registry_.enable();
    if (cfg.span_log_capacity > 0) registry_.reserve_span_log(cfg.span_log_capacity);
  }

  [[nodiscard]] Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const Registry& registry() const noexcept { return registry_; }
  [[nodiscard]] TimelineSampler& timeline() noexcept { return timeline_; }
  [[nodiscard]] const TimelineSampler& timeline() const noexcept { return timeline_; }
  [[nodiscard]] const TelemetryConfig& config() const noexcept { return config_; }

  /// The period the run actually sampled at (run() resolves auto-derivation
  /// and records it here for the sidecar).
  void set_resolved_period(sim::Time p) noexcept { resolved_period_ = p; }
  [[nodiscard]] sim::Time resolved_period() const noexcept { return resolved_period_; }

 private:
  TelemetryConfig config_;
  Registry registry_;
  TimelineSampler timeline_;
  sim::Time resolved_period_{};
};

/// The per-point telemetry sidecar document: identity header (point key,
/// spec hash, scenario), per-stage wall-clock summaries (count, total,
/// Welford mean/stddev, extrema, p50/p99 from the log-bucketed histogram),
/// counters, gauges, span-log accounting and the embedded timeline
/// document.  Sidecar-only by construction: callers write this next to —
/// never into — the result artefact.
[[nodiscard]] std::string telemetry_sidecar_json(const RunTelemetry& t, const std::string& key,
                                                 const std::string& spec_hash,
                                                 const std::string& scenario);

}  // namespace xdrs::obs

#endif  // XDRS_OBS_TELEMETRY_HPP
