// Periodic timeline sampling of switch state — the "transient effects that
// may not be visible under simulation" instrument, in exportable form.
//
// HybridSwitchFramework drives one TimelineSampler on a fixed virtual-time
// period when telemetry is enabled: each tick snapshots VOQ occupancy
// (total and worst single queue), demand-matrix sparsity, circuit-vs-packet
// delivered bytes and the deadline-urgent backlog into bounded
// stats::TimeSeries (shape-preserving stride decimation, so arbitrarily
// long runs stay at fixed memory).  timeline_json() renders the whole set
// as the self-describing `timeline` sidecar document.
//
// Sampling is read-only against simulator state and rides its own event
// chain, so enabling it never perturbs results — RunReport artefacts stay
// byte-identical (CI-gated).
#ifndef XDRS_OBS_SAMPLER_HPP
#define XDRS_OBS_SAMPLER_HPP

#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "stats/timeseries.hpp"

namespace xdrs::obs {

/// One tick's worth of switch state, gathered by the framework.
struct TimelineSnapshot {
  std::int64_t voq_total_bytes{0};     ///< whole-bank backlog
  std::int64_t voq_max_bytes{0};       ///< worst single VOQ
  std::uint64_t demand_nonzeros{0};    ///< nonzero pairs in the last demand estimate
  std::int64_t ocs_delivered_bytes{0}; ///< cumulative, measured window
  std::int64_t eps_delivered_bytes{0}; ///< cumulative, measured window
  std::uint64_t urgent_flows{0};       ///< open deadline flows due within the horizon
  std::int64_t urgent_bytes{0};        ///< their undelivered bytes
};

class TimelineSampler {
 public:
  /// `capacity` bounds every series (stride decimation beyond it).
  explicit TimelineSampler(std::size_t capacity = 4096);

  void record(sim::Time at, const TimelineSnapshot& s);

  [[nodiscard]] std::uint64_t samples_offered() const noexcept { return offered_; }

  [[nodiscard]] const stats::TimeSeries& voq_total_bytes() const noexcept { return voq_total_; }
  [[nodiscard]] const stats::TimeSeries& voq_max_bytes() const noexcept { return voq_max_; }
  [[nodiscard]] const stats::TimeSeries& demand_nonzeros() const noexcept { return demand_nz_; }
  [[nodiscard]] const stats::TimeSeries& ocs_delivered_bytes() const noexcept { return ocs_; }
  [[nodiscard]] const stats::TimeSeries& eps_delivered_bytes() const noexcept { return eps_; }
  [[nodiscard]] const stats::TimeSeries& urgent_flows() const noexcept { return urgent_flows_; }
  [[nodiscard]] const stats::TimeSeries& urgent_bytes() const noexcept { return urgent_bytes_; }

 private:
  std::uint64_t offered_{0};
  stats::TimeSeries voq_total_;
  stats::TimeSeries voq_max_;
  stats::TimeSeries demand_nz_;
  stats::TimeSeries ocs_;
  stats::TimeSeries eps_;
  stats::TimeSeries urgent_flows_;
  stats::TimeSeries urgent_bytes_;
};

/// Self-describing timeline document (the `timeline.json` sidecar schema):
/// sample period, offered count, then one entry per series with name, unit,
/// final decimation stride, peak over ALL offered samples and the kept
/// [t_us, value] pairs.  Deterministic for deterministic inputs.
[[nodiscard]] std::string timeline_json(const TimelineSampler& s, sim::Time sample_period);

}  // namespace xdrs::obs

#endif  // XDRS_OBS_SAMPLER_HPP
