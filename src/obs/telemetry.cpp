#include "obs/telemetry.hpp"

#include "stats/serialize.hpp"

namespace xdrs::obs {

std::string telemetry_sidecar_json(const RunTelemetry& t, const std::string& key,
                                   const std::string& spec_hash, const std::string& scenario) {
  const Registry& reg = t.registry();
  std::string out{"{\n  \"telemetry_schema\": 1"};
  out += ",\n  \"key\": \"" + stats::json_escape(key) + '"';
  out += ",\n  \"spec_hash\": \"" + stats::json_escape(spec_hash) + '"';
  out += ",\n  \"scenario\": \"" + stats::json_escape(scenario) + '"';

  out += ",\n  \"stages\": [";
  bool first = true;
  for (const auto& timer : reg.timers()) {
    if (!first) out += ',';
    first = false;
    const stats::Summary& s = timer->summary();
    const stats::Histogram& h = timer->histogram();
    out += "\n    {\"name\":\"" + stats::json_escape(timer->name()) + '"';
    out += ",\"count\":" + std::to_string(timer->count());
    out += ",\"total_ns\":" + std::to_string(timer->total_ns());
    out += ",\"mean_ns\":" + stats::format_double(s.mean());
    out += ",\"stddev_ns\":" + stats::format_double(s.stddev());
    out += ",\"min_ns\":" + stats::format_double(s.min());
    out += ",\"max_ns\":" + stats::format_double(s.max());
    out += ",\"p50_ns\":" + std::to_string(h.p50());
    out += ",\"p99_ns\":" + std::to_string(h.p99());
    out += '}';
  }
  out += first ? "]" : "\n  ]";

  out += ",\n  \"counters\": [";
  first = true;
  for (const auto& c : reg.counters()) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"name\":\"" + stats::json_escape(c->name()) +
           "\",\"value\":" + std::to_string(c->value()) + '}';
  }
  out += first ? "]" : "\n  ]";

  out += ",\n  \"gauges\": [";
  first = true;
  for (const auto& g : reg.gauges()) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"name\":\"" + stats::json_escape(g->name()) +
           "\",\"value\":" + stats::format_double(g->value()) + '}';
  }
  out += first ? "]" : "\n  ]";

  out += ",\n  \"spans_kept\": " + std::to_string(reg.spans().size());
  out += ",\n  \"spans_dropped\": " + std::to_string(reg.spans_dropped());

  out += ",\n  \"timeline\": ";
  // timeline_json() renders with 2-space indentation from column 0; reindent
  // under the "timeline" key so the sidecar stays readable as a whole.
  const std::string tl = timeline_json(t.timeline(), t.resolved_period());
  for (char ch : tl) {
    out += ch;
    if (ch == '\n') out += "  ";
  }
  out += "\n}\n";
  return out;
}

}  // namespace xdrs::obs
