#include "obs/metrics.hpp"

namespace xdrs::obs {

namespace {

/// Linear find-by-name: registries hold a handful of metrics and lookups
/// happen at setup time, so a map would buy nothing.
template <typename T>
[[nodiscard]] T* find_named(const std::vector<std::unique_ptr<T>>& v, std::string_view name) {
  for (const auto& m : v) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  if (Counter* c = find_named(counters_, name)) return *c;
  counters_.emplace_back(new Counter{std::string{name}});
  return *counters_.back();
}

Gauge& Registry::gauge(std::string_view name) {
  if (Gauge* g = find_named(gauges_, name)) return *g;
  gauges_.emplace_back(new Gauge{std::string{name}});
  return *gauges_.back();
}

Timer& Registry::timer(std::string_view name) {
  if (Timer* t = find_named(timers_, name)) return *t;
  timers_.emplace_back(new Timer{std::string{name}, static_cast<std::uint32_t>(timers_.size())});
  return *timers_.back();
}

void Registry::reserve_span_log(std::size_t capacity) {
  span_capacity_ = capacity;
  spans_.reserve(capacity);
}

}  // namespace xdrs::obs
