// Host-side (wall-clock) observability primitives: a lightweight registry of
// named counters, gauges and timers, plus scoped monotonic-clock spans.
//
// The paper's testbed argument — transient effects invisible to end-of-run
// aggregates — cuts both ways: the *central decision loop's* wall-clock cost
// (estimator snapshot, matcher compute, circuit planning, OCS retune driving)
// decides whether centralized scheduling keeps up with line rate at all, and
// one coarse `wall_us` per sweep point cannot attribute it.  Every stage of
// SchedulingLogic/SwitchingLogic wraps its compute in a ScopedSpan; spans
// aggregate into per-stage Welford summaries + log-bucketed histograms and,
// when the span log is enabled, are kept individually for Chrome-trace
// export (obs/trace_export.hpp).
//
// Cost contract, CI-gated by `bench_matching_compute --alloc-check`: with
// the registry disabled (the default), a ScopedSpan is a null/enabled check
// — no clock read, no allocation, nothing recorded.  Metric *creation*
// (timer()/counter()/gauge()) allocates and is meant for setup time only;
// hot paths hold pre-resolved pointers.
#ifndef XDRS_OBS_METRICS_HPP
#define XDRS_OBS_METRICS_HPP

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace xdrs::obs {

/// Monotonically increasing event count (grants emitted, samples dropped).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_{std::move(name)} {}
  std::string name_;
  std::uint64_t value_{0};
};

/// Last-write-wins scalar (configured sample period, final stride).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_{std::move(name)} {}
  std::string name_;
  double value_{0.0};
};

/// Aggregated duration metric: every recorded span folds into a Welford
/// summary (exact mean/stddev/extrema) and a log-bucketed histogram
/// (quantiles), both in nanoseconds, plus an exact running total.
class Timer {
 public:
  void record_ns(std::int64_t ns) {
    total_ns_ += ns;
    summary_.record(static_cast<double>(ns));
    histogram_.record(ns);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return summary_.count(); }
  [[nodiscard]] std::int64_t total_ns() const noexcept { return total_ns_; }
  [[nodiscard]] const stats::Summary& summary() const noexcept { return summary_; }
  [[nodiscard]] const stats::Histogram& histogram() const noexcept { return histogram_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Registry-assigned creation index; span-log entries refer to timers by
  /// this id so a span is 3 integers, not a string.
  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

 private:
  friend class Registry;
  Timer(std::string name, std::uint32_t id) : name_{std::move(name)}, id_{id} {}
  std::string name_;
  std::uint32_t id_;
  std::int64_t total_ns_{0};
  stats::Summary summary_;
  stats::Histogram histogram_;
};

/// One retained span, for trace export: which timer, when (host monotonic
/// clock, ns), how long.
struct Span {
  std::uint32_t timer_id{0};
  std::int64_t start_ns{0};
  std::int64_t dur_ns{0};
};

/// Named-metric registry for one run.  Disabled by default: spans check one
/// flag and bail.  Not thread-safe — each simulated switch is
/// single-threaded and owns its own registry (sweep workers never share).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  void enable() noexcept { enabled_ = true; }
  void disable() noexcept { enabled_ = false; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Finds or creates the named metric.  References are stable for the
  /// registry's lifetime (metrics are heap-held).  Setup-time only.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Timer& timer(std::string_view name);

  [[nodiscard]] const std::vector<std::unique_ptr<Counter>>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Gauge>>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Timer>>& timers() const noexcept {
    return timers_;
  }
  /// Timer lookup by span id; nullptr when out of range.
  [[nodiscard]] const Timer* timer_by_id(std::uint32_t id) const noexcept {
    return id < timers_.size() ? timers_[id].get() : nullptr;
  }

  // ---- span log (individual spans, for trace export) ----------------------
  /// Retain up to `capacity` individual spans (drop-newest once full, counted
  /// by spans_dropped()).  Storage is reserved here, so recording never
  /// allocates.  0 disables the log (aggregation only).
  void reserve_span_log(std::size_t capacity);
  [[nodiscard]] const std::vector<Span>& spans() const noexcept { return spans_; }
  [[nodiscard]] std::uint64_t spans_dropped() const noexcept { return spans_dropped_; }

  /// Folds one finished span into its timer and, if the log is on, retains
  /// it.  Public so deterministic tests (and replayers) can inject spans
  /// with fixed timestamps; live code goes through ScopedSpan.
  void record_span(Timer& t, std::int64_t start_ns, std::int64_t dur_ns) {
    t.record_ns(dur_ns);
    if (span_capacity_ == 0) return;
    if (spans_.size() < span_capacity_) {
      spans_.push_back(Span{t.id(), start_ns, dur_ns});
    } else {
      ++spans_dropped_;
    }
  }

  /// Host monotonic clock in nanoseconds (steady_clock; epoch arbitrary —
  /// consumers normalise to the first span).
  [[nodiscard]] static std::int64_t now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  bool enabled_{false};
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Timer>> timers_;
  std::vector<Span> spans_;
  std::size_t span_capacity_{0};
  std::uint64_t spans_dropped_{0};
};

/// RAII wall-clock span around one stage of the decision loop.  With a null
/// or disabled registry the constructor is a branch and the destructor a
/// null check — the telemetry-off hot path stays allocation- and
/// clock-read-free (CI-gated).
class ScopedSpan {
 public:
  ScopedSpan(Registry* reg, Timer* timer) noexcept
      : reg_{reg != nullptr && timer != nullptr && reg->enabled() ? reg : nullptr},
        timer_{timer} {
    if (reg_ != nullptr) start_ns_ = Registry::now_ns();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (reg_ == nullptr) return;
    reg_->record_span(*timer_, start_ns_, Registry::now_ns() - start_ns_);
  }

 private:
  Registry* reg_;
  Timer* timer_;
  std::int64_t start_ns_{0};
};

}  // namespace xdrs::obs

#endif  // XDRS_OBS_METRICS_HPP
