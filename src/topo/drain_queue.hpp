// A rate-limited FIFO link stage: packets queue in bounded buffer space and
// drain at a fixed rate, optionally followed by a propagation delay.
//
// This is the uplink-queue model RackAggregator introduced (host bursts
// serialising onto a shared ToR uplink), factored out so the fat-tree core
// tier reuses the exact same stage for its core-switch downlinks instead of
// growing a parallel abstraction.  Latency zero delivers inline at the end
// of serialisation (RackAggregator's historical event sequence, preserved
// byte-for-byte); a positive latency models propagation pipelined behind
// serialisation, as a real link does.
#ifndef XDRS_TOPO_DRAIN_QUEUE_HPP
#define XDRS_TOPO_DRAIN_QUEUE_HPP

#include <cstdint>
#include <deque>
#include <functional>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace xdrs::topo {

class DrainQueue {
 public:
  using Sink = std::function<void(const net::Packet&)>;

  struct Config {
    sim::DataRate rate{sim::DataRate::gbps(10)};
    std::int64_t buffer_bytes{4 << 20};  ///< 0 = unlimited
    sim::Time latency{};                 ///< propagation after serialisation
  };

  explicit DrainQueue(Config cfg);

  /// Binds the queue to its simulator and downstream sink.  Must be called
  /// before the first offer().
  void attach(sim::Simulator& sim, Sink sink);

  /// Enqueues `p` (starting the drain chain if idle) or drops it when the
  /// buffer would overflow.  Returns false on drop.
  bool offer(const net::Packet& p);

  [[nodiscard]] std::int64_t queue_bytes() const noexcept { return queue_bytes_; }
  [[nodiscard]] std::int64_t peak_queue_bytes() const noexcept { return peak_queue_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t forwarded_packets() const noexcept { return forwarded_packets_; }
  [[nodiscard]] std::int64_t forwarded_bytes() const noexcept { return forwarded_bytes_; }

  /// Restarts the peak high-water mark at the current occupancy
  /// (measurement-window boundary).
  void reset_peak() noexcept { peak_queue_ = queue_bytes_; }

 private:
  void drain();

  Config cfg_;
  sim::Simulator* sim_{nullptr};
  Sink sink_;
  std::deque<net::Packet> queue_;
  std::int64_t queue_bytes_{0};
  std::int64_t peak_queue_{0};
  std::uint64_t drops_{0};
  std::uint64_t forwarded_packets_{0};
  std::int64_t forwarded_bytes_{0};
  bool draining_{false};
};

}  // namespace xdrs::topo

#endif  // XDRS_TOPO_DRAIN_QUEUE_HPP
