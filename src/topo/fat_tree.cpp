#include "topo/fat_tree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xdrs::topo {

namespace {

/// splitmix64 finaliser: full avalanche, so structured inputs (port
/// indices, sequential flow ids) still draw uniform placements.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint32_t TopologySpec::uplinks(std::uint32_t host_ports) const {
  const double u = static_cast<double>(host_ports) / oversubscription;
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::llround(u)));
}

Placement place_flow(std::uint64_t seed, std::uint32_t rack, net::PortId src, net::PortId dst,
                     net::FlowId flow, double locality, std::uint32_t racks,
                     std::uint32_t uplinks) {
  Placement out;
  out.dst_rack = rack;
  if (racks <= 1 || uplinks == 0) return out;
  // Hash the flow's full identity; dst is included so packet-level sources
  // (flow id constant per port) still place per destination pair.
  std::uint64_t h = mix64(seed ^ mix64(flow));
  h = mix64(h ^ (static_cast<std::uint64_t>(src) << 32 | dst));
  h = mix64(h ^ rack);
  const double u01 = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u01 < locality) return out;
  const std::uint64_t h2 = mix64(h);
  std::uint32_t other = static_cast<std::uint32_t>(h2 % (racks - 1));
  if (other >= rack) ++other;  // skip self: remote means a DIFFERENT rack
  out.remote = true;
  out.dst_rack = other;
  out.uplink = static_cast<std::uint32_t>(mix64(h2) % uplinks);
  return out;
}

FatTree::FatTree(TopologySpec topo, core::FrameworkConfig tor)
    : topo_{topo}, host_ports_{tor.ports}, uplink_ports_{0} {
  if (topo_.racks == 0) throw std::invalid_argument{"FatTree: racks must be >= 1"};
  if (host_ports_ == 0) throw std::invalid_argument{"FatTree: a ToR needs host ports"};
  if (!(topo_.oversubscription > 0.0) || !std::isfinite(topo_.oversubscription)) {
    throw std::invalid_argument{"FatTree: oversubscription must be finite and positive"};
  }
  uplink_ports_ = topo_.multi_rack() ? topo_.uplinks(host_ports_) : 0;

  racks_.reserve(topo_.racks);
  for (std::uint32_t r = 0; r < topo_.racks; ++r) {
    core::FrameworkConfig cfg = tor;
    cfg.ports = host_ports_ + uplink_ports_;
    cfg.uplink_ports = uplink_ports_;
    // Decorrelate the racks' internal randomness (OCS failure draws, host
    // clock skew); rack 0 keeps the base seeds, so a single-rack FatTree
    // builds EXACTLY the single-switch framework.
    cfg.seed = tor.seed + 7919ULL * r;
    cfg.sync.seed = tor.sync.seed + r;
    racks_.push_back(std::make_unique<core::HybridSwitchFramework>(sim_, cfg));
  }

  if (!topo_.multi_rack()) return;

  DrainQueue::Config qc;
  qc.rate = tor.link_rate;
  qc.buffer_bytes = topo_.core_buffer_bytes;
  qc.latency = topo_.core_latency;
  core_.reserve(static_cast<std::size_t>(uplink_ports_) * topo_.racks);
  for (std::uint32_t u = 0; u < uplink_ports_; ++u) {
    for (std::uint32_t r = 0; r < topo_.racks; ++r) {
      auto q = std::make_unique<DrainQueue>(qc);
      q->attach(sim_, [this, r](const net::Packet& p) { racks_[r]->reinject(p); });
      core_.push_back(std::move(q));
    }
  }
  for (std::uint32_t r = 0; r < topo_.racks; ++r) {
    racks_[r]->set_uplink_hook(host_ports_,
                               [this, r](const net::Packet& p, control::FabricPath) {
                                 route_uplink(r, p);
                               });
  }
}

void FatTree::route_uplink(std::uint32_t src_rack, const net::Packet& p) {
  // The source ToR delivered `p` at uplink egress port host_ports_ + u:
  // that is core switch u.  Its downlink FIFO into the destination rack
  // serialises + propagates, then reinjects at the same uplink index of
  // the destination ToR, retargeted at the final host port.
  const std::uint32_t u = p.dst - host_ports_;
  net::Packet q = p;
  q.src = host_ports_ + u;  // ingress port at the destination ToR
  q.dst = p.final_dst;
  core_[static_cast<std::size_t>(u) * topo_.racks + p.dst_rack]->offer(q);
  (void)src_rack;
}

core::HybridSwitchFramework::IngressTransform FatTree::placement_transform(
    std::uint32_t rack, double locality, std::uint64_t seed) const {
  if (!topo_.multi_rack()) return {};
  const std::uint32_t racks = topo_.racks;
  const std::uint32_t uplinks = uplink_ports_;
  const std::uint32_t host = host_ports_;
  return [seed, rack, locality, racks, uplinks, host](net::Packet& p) {
    const Placement pl = place_flow(seed, rack, p.src, p.dst, p.flow, locality, racks, uplinks);
    p.src_rack = rack;
    p.dst_rack = pl.dst_rack;
    if (!pl.remote) return;
    p.final_dst = p.dst;
    p.dst = host + pl.uplink;
    p.remote = true;
    // Rack-namespace the flow id: destination-side completion tracking keys
    // on (ingress uplink port, flow id), and two racks' generators emit
    // overlapping id sequences.
    p.flow |= (static_cast<std::uint64_t>(rack) + 1) << 48;
  };
}

void FatTree::enable_telemetry(const obs::TelemetryConfig& tcfg) {
  if (ran_) throw std::logic_error{"FatTree: enable_telemetry() must precede run()"};
  if (telemetry_) return;
  telemetry_ = std::make_unique<obs::RunTelemetry>(tcfg);
  for (auto& fw : racks_) fw->attach_stage_timers(&telemetry_->registry());
  // One VOQ-occupancy track per ToR plus the core tier's aggregate queue
  // depth — the per-tier counter tracks `sweepctl trace` renders.
  tier_series_.reserve(racks_.size() + 1);
  for (std::uint32_t r = 0; r < racks_.size(); ++r) {
    tier_series_.emplace_back("tor" + std::to_string(r) + ".voq_bytes", tcfg.timeline_capacity);
  }
  tier_series_.emplace_back("core.queue_bytes", tcfg.timeline_capacity);
}

std::vector<std::pair<std::string, const stats::TimeSeries*>> FatTree::tier_series() const {
  std::vector<std::pair<std::string, const stats::TimeSeries*>> out;
  out.reserve(tier_series_.size());
  for (const auto& t : tier_series_) out.emplace_back(t.name, &t.series);
  return out;
}

std::int64_t FatTree::core_queue_bytes() const noexcept {
  std::int64_t total = 0;
  for (const auto& q : core_) total += q->queue_bytes();
  return total;
}

void FatTree::sample_tiers(sim::Time period, sim::Time horizon) {
  const sim::Time now = sim_.now();
  obs::TimelineSnapshot agg;
  obs::Registry& reg = telemetry_->registry();
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    const obs::TimelineSnapshot s = racks_[r]->timeline_snapshot(period);
    agg.voq_total_bytes += s.voq_total_bytes;
    agg.voq_max_bytes = std::max(agg.voq_max_bytes, s.voq_max_bytes);
    agg.demand_nonzeros += s.demand_nonzeros;
    agg.ocs_delivered_bytes += s.ocs_delivered_bytes;
    agg.eps_delivered_bytes += s.eps_delivered_bytes;
    agg.urgent_flows += s.urgent_flows;
    agg.urgent_bytes += s.urgent_bytes;
    tier_series_[r].series.record(now, static_cast<double>(s.voq_total_bytes));
    reg.gauge(tier_series_[r].name).set(static_cast<double>(s.voq_total_bytes));
  }
  const std::int64_t core_bytes = core_queue_bytes();
  tier_series_.back().series.record(now, static_cast<double>(core_bytes));
  reg.gauge(tier_series_.back().name).set(static_cast<double>(core_bytes));
  telemetry_->timeline().record(now, agg);
  if (now + period <= horizon) {
    sim_.schedule(period, [this, period, horizon] { sample_tiers(period, horizon); });
  }
}

core::RunReport FatTree::run(sim::Time duration, sim::Time warmup) {
  if (ran_) throw std::logic_error{"FatTree: run() is one-shot per instance"};
  ran_ = true;

  for (auto& fw : racks_) fw->start_run(duration, warmup);
  const sim::Time horizon = warmup + duration;
  // Same 1 ps early stop as HybridSwitchFramework::run(): boundary-stamped
  // injections must land inside the measured window.
  if (warmup > sim::Time::zero()) sim_.run_until(warmup - sim::Time::picoseconds(1));
  for (auto& fw : racks_) fw->begin_measurement();
  base_core_bytes_ = 0;
  base_core_drops_ = 0;
  for (auto& q : core_) {
    q->reset_peak();
    base_core_bytes_ += q->forwarded_bytes();
    base_core_drops_ += q->drops();
  }
  if (telemetry_) {
    sim::Time period = telemetry_->config().sample_period;
    if (period <= sim::Time::zero()) {
      period = std::max(duration / 256, sim::Time::microseconds(1));
    }
    telemetry_->set_resolved_period(period);
    sim_.schedule_at(warmup, [this, period, horizon] { sample_tiers(period, horizon); });
  }

  sim_.run_until(horizon);

  core::RunReport fleet = racks_.front()->finalize_run();
  for (std::size_t r = 1; r < racks_.size(); ++r) fleet.merge(racks_[r]->finalize_run());
  // merge() accumulates durations (its sweep-aggregation contract), but the
  // racks ran the SAME window — normalise back to one.  Duration-weighted
  // rates (duty cycle) merged over equal windows reduce to plain means, so
  // they stay correct.
  fleet.duration = duration;

  std::int64_t core_bytes = 0;
  std::uint64_t core_drops = 0;
  std::int64_t peak = 0;
  for (const auto& q : core_) {
    core_bytes += q->forwarded_bytes();
    core_drops += q->drops();
    peak = std::max(peak, q->peak_queue_bytes());
  }
  fleet.core_link_bytes = core_bytes - base_core_bytes_;
  fleet.core_drops = core_drops - base_core_drops_;
  fleet.peak_core_queue_bytes = peak;
  if (!core_.empty()) {
    const double capacity_bytes =
        static_cast<double>(racks_.front()->config().link_rate.bits_per_sec()) / 8.0 *
        duration.sec() * static_cast<double>(core_.size());
    fleet.core_utilization =
        capacity_bytes > 0.0 ? static_cast<double>(fleet.core_link_bytes) / capacity_bytes : 0.0;
  }
  return fleet;
}

}  // namespace xdrs::topo
