// Testbed assembly: the paper's "large testbed ... using tens of processing
// elements, a centralized scheduling entity and a commercial OCS" (§3),
// reduced to convenient builders that attach whole workloads to a framework.
#ifndef XDRS_TOPO_TESTBED_HPP
#define XDRS_TOPO_TESTBED_HPP

#include <cstdint>
#include <string>

#include "core/framework.hpp"
#include "sim/time.hpp"
#include "traffic/deadline.hpp"

namespace xdrs::topo {

/// A uniform description of per-port traffic, expandable to one generator
/// per ingress port.
struct WorkloadSpec {
  enum class Kind : std::uint8_t {
    kPoissonUniform,   ///< Poisson arrivals, uniform destinations
    kPoissonHotspot,   ///< Poisson arrivals, `skew` fraction to port 0
    kPoissonZipf,      ///< Poisson arrivals, Zipf(skew) destinations
    kPermutation,      ///< Poisson arrivals, fixed shifted permutation
    kOnOffBursts,      ///< Pareto ON/OFF bursts (OCS-friendly elephants)
    kFlows,            ///< flow-level mice/elephant mixture
    kShuffle,          ///< flow-level all-to-all (MapReduce shuffle rotation)
    kIncast,           ///< periodic partition/aggregate fan-in to port 0
    kTraceReplay,      ///< CSV flow-trace replay (traffic/trace_replay.hpp)
    kEmpirical,        ///< flows sized by an empirical CDF file (traffic/empirical_cdf.hpp)
  };

  Kind kind{Kind::kPoissonUniform};
  double load{0.5};          ///< offered load per port, fraction of line rate
  /// Fraction of a composite scenario's load this workload carries; the
  /// ScenarioSpec load mutator distributes `load x share` to each workload,
  /// so a mixed scenario sweeps as one load axis.  1.0 for single workloads.
  double share{1.0};
  double skew{0.0};          ///< hotspot fraction or Zipf exponent
  sim::Time mean_on{sim::Time::microseconds(100)};   ///< kOnOffBursts
  sim::Time mean_off{sim::Time::microseconds(100)};  ///< kOnOffBursts
  double elephant_fraction{0.1};                     ///< kFlows / kShuffle
  sim::Time period{sim::Time::milliseconds(1)};      ///< kIncast round period
  std::int64_t response_bytes{64'000};               ///< kIncast per-worker answer
  std::string trace_path;                            ///< kTraceReplay CSV file
  std::string cdf_path;                              ///< kEmpirical bytes,cdf file
  /// Completion-deadline model for flow-level workloads (kFlows, kShuffle,
  /// kEmpirical, kIncast).  Packet-level kinds have no flow to complete and
  /// ignore it; kTraceReplay carries deadlines in the trace file itself.
  traffic::DeadlineSpec deadline{};
  /// Fat-tree placement: fraction of each source's flows that stay inside
  /// its own rack (1.0 = everything rack-local, the single-switch
  /// behaviour).  Ignored when the topology has a single rack — the
  /// placement stage is only built for multi-rack runs.
  double locality{1.0};
  std::uint64_t seed{7};

  [[nodiscard]] std::string name() const;
};

/// Creates one generator per host port of `fw` according to `spec` (uplink
/// ports, when the config reserves any, carry transit traffic and get no
/// sources).  The optional `transform` is installed on every generator —
/// the fat-tree placement stage rides here.
void attach_workload(core::HybridSwitchFramework& fw, const WorkloadSpec& spec,
                     core::HybridSwitchFramework::IngressTransform transform = {});

/// Adds `pairs` bidirectional VOIP-like CBR streams between distinct host
/// port pairs (src i <-> dst (i + ports/2) % ports), `packet_bytes` every
/// `period`.  Marked latency-sensitive.  Always rack-local: VOIP overlays
/// model intra-rack service traffic even in fat-tree runs.
void attach_voip(core::HybridSwitchFramework& fw, std::uint32_t pairs, sim::Time period,
                 std::int64_t packet_bytes, std::uint64_t seed = 99);

}  // namespace xdrs::topo

#endif  // XDRS_TOPO_TESTBED_HPP
