// Multi-rack aggregation: the paper's "large testbed ... using tens of
// processing elements" and "hybrid topologies for data center networks".
//
// Each port of the hybrid core switch is a rack of H hosts behind a shared
// uplink.  The aggregator multiplexes the hosts' packet processes into the
// core port: arrivals queue in the rack's uplink FIFO (topo::DrainQueue, the
// same stage the fat-tree core tier uses) and drain at the uplink rate, so
// host-level burst coincidence and rack-level oversubscription (H x
// host_rate vs uplink_rate) are modelled explicitly — the rack queue is
// itself a buffering stage that fast core scheduling cannot remove.
#ifndef XDRS_TOPO_RACK_HPP
#define XDRS_TOPO_RACK_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/framework.hpp"
#include "topo/drain_queue.hpp"
#include "traffic/generators.hpp"
#include "traffic/patterns.hpp"

namespace xdrs::topo {

/// One rack: H host-level sources feeding a shared uplink FIFO that drains
/// onto core port `rack_id`.
class RackAggregator final : public traffic::TrafficGenerator {
 public:
  struct Config {
    net::PortId rack_id{0};
    std::uint32_t racks{0};            ///< core switch size (destination space)
    std::uint32_t hosts{4};            ///< hosts in this rack
    sim::DataRate host_rate{sim::DataRate::gbps(10)};
    sim::DataRate uplink_rate{sim::DataRate::gbps(40)};  ///< shared ToR uplink
    double load_per_host{0.5};         ///< of host_rate
    std::int64_t uplink_buffer_bytes{4 << 20};  ///< 0 = unlimited
    std::uint64_t seed{1};
  };

  explicit RackAggregator(Config cfg);

  void start(sim::Simulator& sim, Sink sink, sim::Time horizon) override;
  [[nodiscard]] std::string name() const override { return "rack"; }

  [[nodiscard]] std::int64_t peak_uplink_queue_bytes() const noexcept {
    return uplink_.peak_queue_bytes();
  }
  [[nodiscard]] std::uint64_t uplink_drops() const noexcept { return uplink_.drops(); }

  // TrafficGenerator ingress-queue surface: the framework folds these into
  // RunReport::peak_uplink_queue_bytes / uplink_drops.
  [[nodiscard]] std::int64_t peak_queue_bytes() const noexcept override {
    return uplink_.peak_queue_bytes();
  }
  [[nodiscard]] std::uint64_t queue_drops() const noexcept override { return uplink_.drops(); }
  void reset_queue_peak() noexcept override { uplink_.reset_peak(); }

 private:
  void on_host_packet(const net::Packet& p);

  Config cfg_;
  std::vector<std::unique_ptr<traffic::PoissonGenerator>> hosts_;
  DrainQueue uplink_;
};

/// Builds one RackAggregator per core port of `fw`.  Returns non-owning
/// observers for the uplink statistics (valid for the framework's life).
std::vector<const RackAggregator*> attach_racks(core::HybridSwitchFramework& fw,
                                                std::uint32_t hosts_per_rack,
                                                sim::DataRate host_rate,
                                                double load_per_host, std::uint64_t seed = 11);

}  // namespace xdrs::topo

#endif  // XDRS_TOPO_RACK_HPP
