// Two-tier fat-tree of hybrid switches — the multi-rack testbed.
//
// N ToR switches, each a full HybridSwitchFramework (its own VOQ bank,
// policy stack, OCS/EPS fabrics), share ONE sim::Simulator and connect
// through a core tier:
//
//   hosts --> ToR r (P host ports + U uplink ports) --uplink u--> core
//   switch u --downlink--> ToR r' (ingress at uplink port P+u) --> host
//
// The ToR fabric schedules uplink ports exactly like host ports, so the
// U : P ratio IS the oversubscription: cross-rack traffic contends for U
// uplink columns while rack-local traffic never leaves the switch.  The
// core tier is modelled as one rate-limited FIFO per (core switch u,
// destination rack r') — the core switch's downlink into that rack — with
// configurable propagation latency and buffer (topo::DrainQueue, the same
// stage RackAggregator uses for its host-side uplink).
//
// Placement is a pure function of (seed, rack, src, dst, flow): every
// packet of a flow hashes to the same keep-local/go-remote decision, remote
// rack and uplink, so host->rack assignment is deterministic by
// construction — identical across thread counts and shard splits (tested).
//
// A single-rack FatTree degenerates to exactly one framework with no
// uplinks, no transforms and no core tier, run through the same phased
// start_run/begin_measurement/finalize_run path run() itself uses — so its
// report is byte-identical to the plain single-switch run (tested).
#ifndef XDRS_TOPO_FAT_TREE_HPP
#define XDRS_TOPO_FAT_TREE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/framework.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "stats/timeseries.hpp"
#include "topo/drain_queue.hpp"

namespace xdrs::topo {

/// The topology axes of an experiment point.  Default-constructed ==
/// single switch (racks 1), which every pre-topology scenario implicitly
/// ran; multi_rack() gates all fat-tree machinery.
struct TopologySpec {
  std::uint32_t racks{1};
  /// Host-port to uplink-port ratio per ToR (1.0 = full bisection,
  /// 2.0 = classic 2:1 oversubscription).  uplinks() derives the count.
  double oversubscription{1.0};
  /// Core-switch downlink propagation (after serialisation).
  sim::Time core_latency{sim::Time::microseconds(1)};
  /// Per core-downlink FIFO bound; 0 = unlimited.
  std::int64_t core_buffer_bytes{4 << 20};

  [[nodiscard]] bool multi_rack() const noexcept { return racks > 1; }

  /// Uplink ports per ToR for `host_ports` hosts: host_ports /
  /// oversubscription, rounded, never below 1.
  [[nodiscard]] std::uint32_t uplinks(std::uint32_t host_ports) const;
};

/// Where one flow goes — the output of the pure placement function.
struct Placement {
  bool remote{false};        ///< crosses the core tier
  std::uint32_t dst_rack{0}; ///< == source rack when local
  std::uint32_t uplink{0};   ///< uplink index within the ToR (remote only)
};

/// Deterministic flow placement: hashes (seed, rack, src, dst, flow) to a
/// uniform [0,1) keep-local draw against `locality`, then (remote case) to
/// a destination rack != rack and an uplink.  Pure — no simulator state,
/// no RNG stream — so the host->rack assignment of a workload is a
/// function of its spec alone.
[[nodiscard]] Placement place_flow(std::uint64_t seed, std::uint32_t rack, net::PortId src,
                                   net::PortId dst, net::FlowId flow, double locality,
                                   std::uint32_t racks, std::uint32_t uplinks);

/// The assembled two-tier topology.  Construction builds the shared
/// simulator, the per-rack frameworks (ports = host_ports + uplinks, seeds
/// decorrelated per rack) and the core FIFOs; the caller then installs
/// policies and workloads on each rack() — placement_transform() supplies
/// the ingress stage — and run() drives the phased execution and folds the
/// per-rack reports plus core-tier accounting into one RunReport.
class FatTree {
 public:
  /// `tor` describes one ToR as a single-switch config whose `ports` field
  /// counts HOST ports; FatTree adds the uplink ports itself.  Throws
  /// std::invalid_argument on zero racks/ports or a non-positive
  /// oversubscription.
  FatTree(TopologySpec topo, core::FrameworkConfig tor);

  FatTree(const FatTree&) = delete;
  FatTree& operator=(const FatTree&) = delete;

  [[nodiscard]] std::uint32_t racks() const noexcept { return topo_.racks; }
  [[nodiscard]] std::uint32_t host_ports() const noexcept { return host_ports_; }
  [[nodiscard]] std::uint32_t uplink_ports() const noexcept { return uplink_ports_; }
  [[nodiscard]] const TopologySpec& topology() const noexcept { return topo_; }

  [[nodiscard]] core::HybridSwitchFramework& rack(std::uint32_t r) { return *racks_.at(r); }
  [[nodiscard]] const core::HybridSwitchFramework& rack(std::uint32_t r) const {
    return *racks_.at(r);
  }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  /// The ingress transform rack `r`'s generators should run behind:
  /// place_flow() with this topology's shape, rewriting remote packets at
  /// the chosen uplink port (final_dst keeps the host index) and
  /// namespacing their flow ids by source rack so cross-rack flows never
  /// collide in the destination tracker.  Empty for single-rack
  /// topologies — the single-switch path stays untouched.
  [[nodiscard]] core::HybridSwitchFramework::IngressTransform placement_transform(
      std::uint32_t rack, double locality, std::uint64_t seed) const;

  /// Topology-owned telemetry: one registry for every tier (per-rack stage
  /// timers attach to it), per-rack VOQ + core-uplink gauges and
  /// TimeSeries tracks, and an aggregate timeline folded across racks.
  /// Sidecar-only, like the single-switch layer.  Call before run().
  void enable_telemetry(const obs::TelemetryConfig& tcfg = {});
  [[nodiscard]] obs::RunTelemetry* telemetry() noexcept { return telemetry_.get(); }
  [[nodiscard]] const obs::RunTelemetry* telemetry() const noexcept { return telemetry_.get(); }

  /// Per-tier counter tracks for Chrome-trace export: one named series per
  /// ToR ("tor<r>.voq_bytes") plus the core tier's aggregate queue depth
  /// ("core.queue_bytes").  Populated only when telemetry is enabled.
  [[nodiscard]] std::vector<std::pair<std::string, const stats::TimeSeries*>> tier_series() const;

  /// Phased execution across every rack on the shared clock; returns the
  /// fleet report: per-rack reports merged, duration normalised back to
  /// one window, core-tier bytes/drops/occupancy/utilisation added.
  /// One-shot, like HybridSwitchFramework::run().
  [[nodiscard]] core::RunReport run(sim::Time duration, sim::Time warmup = sim::Time::zero());

  // ---- core-tier accounting (tests) ---------------------------------------
  [[nodiscard]] std::int64_t core_queue_bytes() const noexcept;

 private:
  void route_uplink(std::uint32_t src_rack, const net::Packet& p);
  void sample_tiers(sim::Time period, sim::Time horizon);

  TopologySpec topo_;
  std::uint32_t host_ports_;
  std::uint32_t uplink_ports_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<core::HybridSwitchFramework>> racks_;
  /// core_[u * racks + r]: core switch u's downlink FIFO into rack r.
  std::vector<std::unique_ptr<DrainQueue>> core_;

  std::unique_ptr<obs::RunTelemetry> telemetry_;
  struct TierSeries {
    std::string name;
    stats::TimeSeries series;
    TierSeries(std::string n, std::size_t cap) : name{std::move(n)}, series{cap} {}
  };
  std::vector<TierSeries> tier_series_;

  bool ran_{false};
  // Core-tier baselines, snapshotted at the measurement boundary.
  std::int64_t base_core_bytes_{0};
  std::uint64_t base_core_drops_{0};
};

}  // namespace xdrs::topo

#endif  // XDRS_TOPO_FAT_TREE_HPP
