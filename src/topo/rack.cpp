#include "topo/rack.hpp"

#include <stdexcept>
#include <utility>

namespace xdrs::topo {

namespace {

DrainQueue::Config uplink_config(const RackAggregator::Config& cfg) {
  DrainQueue::Config qc;
  qc.rate = cfg.uplink_rate;
  qc.buffer_bytes = cfg.uplink_buffer_bytes;
  qc.latency = sim::Time::zero();  // the ToR is the rack; no propagation stage
  return qc;
}

}  // namespace

RackAggregator::RackAggregator(Config cfg) : cfg_{cfg}, uplink_{uplink_config(cfg)} {
  if (cfg.racks < 2) throw std::invalid_argument{"RackAggregator: need >= 2 racks"};
  if (cfg.rack_id >= cfg.racks) throw std::invalid_argument{"RackAggregator: rack id range"};
  if (cfg.hosts == 0) throw std::invalid_argument{"RackAggregator: need >= 1 host"};
  if (cfg.host_rate.is_zero() || cfg.uplink_rate.is_zero()) {
    throw std::invalid_argument{"RackAggregator: rates must be positive"};
  }

  for (std::uint32_t h = 0; h < cfg_.hosts; ++h) {
    traffic::PoissonGenerator::Config gc;
    gc.src = cfg_.rack_id;  // packets carry the *rack's* core port
    gc.line_rate = cfg_.host_rate;
    gc.load = cfg_.load_per_host;
    gc.dest = std::make_shared<traffic::UniformChooser>(cfg_.racks);
    gc.size = std::make_shared<traffic::DatacenterPacketMix>();
    gc.seed = cfg_.seed * 1000003ULL + h;
    hosts_.push_back(std::make_unique<traffic::PoissonGenerator>(gc));
  }
}

void RackAggregator::start(sim::Simulator& sim, Sink sink, sim::Time horizon) {
  uplink_.attach(sim, std::move(sink));
  for (auto& host : hosts_) {
    host->start(sim, [this](const net::Packet& p) { on_host_packet(p); }, horizon);
  }
}

void RackAggregator::on_host_packet(const net::Packet& p) {
  if (uplink_.offer(p)) {
    ++stats_.packets;
    stats_.bytes += p.size_bytes;
  }
}

std::vector<const RackAggregator*> attach_racks(core::HybridSwitchFramework& fw,
                                                std::uint32_t hosts_per_rack,
                                                sim::DataRate host_rate, double load_per_host,
                                                std::uint64_t seed) {
  const std::uint32_t racks = fw.config().ports;
  std::vector<const RackAggregator*> observers;
  observers.reserve(racks);
  for (std::uint32_t r = 0; r < racks; ++r) {
    RackAggregator::Config rc;
    rc.rack_id = r;
    rc.racks = racks;
    rc.hosts = hosts_per_rack;
    rc.host_rate = host_rate;
    rc.uplink_rate = fw.config().link_rate;
    rc.load_per_host = load_per_host;
    rc.seed = seed + r;
    auto agg = std::make_unique<RackAggregator>(rc);
    observers.push_back(agg.get());
    fw.add_generator(std::move(agg));
  }
  return observers;
}

}  // namespace xdrs::topo
