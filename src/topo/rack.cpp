#include "topo/rack.hpp"

#include <algorithm>
#include <stdexcept>

namespace xdrs::topo {

RackAggregator::RackAggregator(Config cfg) : cfg_{cfg} {
  if (cfg.racks < 2) throw std::invalid_argument{"RackAggregator: need >= 2 racks"};
  if (cfg.rack_id >= cfg.racks) throw std::invalid_argument{"RackAggregator: rack id range"};
  if (cfg.hosts == 0) throw std::invalid_argument{"RackAggregator: need >= 1 host"};
  if (cfg.host_rate.is_zero() || cfg.uplink_rate.is_zero()) {
    throw std::invalid_argument{"RackAggregator: rates must be positive"};
  }

  for (std::uint32_t h = 0; h < cfg_.hosts; ++h) {
    traffic::PoissonGenerator::Config gc;
    gc.src = cfg_.rack_id;  // packets carry the *rack's* core port
    gc.line_rate = cfg_.host_rate;
    gc.load = cfg_.load_per_host;
    gc.dest = std::make_shared<traffic::UniformChooser>(cfg_.racks);
    gc.size = std::make_shared<traffic::DatacenterPacketMix>();
    gc.seed = cfg_.seed * 1000003ULL + h;
    hosts_.push_back(std::make_unique<traffic::PoissonGenerator>(gc));
  }
}

void RackAggregator::start(sim::Simulator& sim, Sink sink, sim::Time horizon) {
  sink_ = std::move(sink);
  for (auto& host : hosts_) {
    host->start(sim, [this, &sim](const net::Packet& p) { on_host_packet(sim, p); }, horizon);
  }
}

void RackAggregator::on_host_packet(sim::Simulator& sim, const net::Packet& p) {
  if (cfg_.uplink_buffer_bytes > 0 &&
      queue_bytes_ + p.size_bytes > cfg_.uplink_buffer_bytes) {
    ++drops_;
    return;
  }
  ++stats_.packets;
  stats_.bytes += p.size_bytes;
  uplink_queue_.push_back(p);
  queue_bytes_ += p.size_bytes;
  peak_queue_ = std::max(peak_queue_, queue_bytes_);
  if (!draining_) {
    draining_ = true;
    drain(sim);
  }
}

void RackAggregator::drain(sim::Simulator& sim) {
  if (uplink_queue_.empty()) {
    draining_ = false;
    return;
  }
  const net::Packet p = uplink_queue_.front();
  const sim::Time tx =
      cfg_.uplink_rate.transmission_time(p.size_bytes + sim::kWireOverheadBytes);
  sim.schedule(tx, [this, &sim] {
    // The host's creation timestamp is preserved: end-to-end latency spans
    // the rack uplink queue as well as the core fabric.
    const net::Packet out = uplink_queue_.front();
    uplink_queue_.pop_front();
    queue_bytes_ -= out.size_bytes;
    sink_(out);
    drain(sim);
  });
}

std::vector<const RackAggregator*> attach_racks(core::HybridSwitchFramework& fw,
                                                std::uint32_t hosts_per_rack,
                                                sim::DataRate host_rate, double load_per_host,
                                                std::uint64_t seed) {
  const std::uint32_t racks = fw.config().ports;
  std::vector<const RackAggregator*> observers;
  observers.reserve(racks);
  for (std::uint32_t r = 0; r < racks; ++r) {
    RackAggregator::Config rc;
    rc.rack_id = r;
    rc.racks = racks;
    rc.hosts = hosts_per_rack;
    rc.host_rate = host_rate;
    rc.uplink_rate = fw.config().link_rate;
    rc.load_per_host = load_per_host;
    rc.seed = seed + r;
    auto agg = std::make_unique<RackAggregator>(rc);
    observers.push_back(agg.get());
    fw.add_generator(std::move(agg));
  }
  return observers;
}

}  // namespace xdrs::topo
