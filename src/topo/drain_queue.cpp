#include "topo/drain_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace xdrs::topo {

DrainQueue::DrainQueue(Config cfg) : cfg_{cfg} {
  if (cfg.rate.is_zero()) throw std::invalid_argument{"DrainQueue: rate must be positive"};
}

void DrainQueue::attach(sim::Simulator& sim, Sink sink) {
  if (!sink) throw std::invalid_argument{"DrainQueue: null sink"};
  sim_ = &sim;
  sink_ = std::move(sink);
}

bool DrainQueue::offer(const net::Packet& p) {
  if (sim_ == nullptr) throw std::logic_error{"DrainQueue: offer() before attach()"};
  if (cfg_.buffer_bytes > 0 && queue_bytes_ + p.size_bytes > cfg_.buffer_bytes) {
    ++drops_;
    return false;
  }
  queue_.push_back(p);
  queue_bytes_ += p.size_bytes;
  peak_queue_ = std::max(peak_queue_, queue_bytes_);
  if (!draining_) {
    draining_ = true;
    drain();
  }
  return true;
}

void DrainQueue::drain() {
  if (queue_.empty()) {
    draining_ = false;
    return;
  }
  const net::Packet& head = queue_.front();
  const sim::Time tx = cfg_.rate.transmission_time(head.size_bytes + sim::kWireOverheadBytes);
  sim_->schedule(tx, [this] {
    // Timestamps are preserved: end-to-end latency spans this queue as well
    // as the fabrics either side of it.
    const net::Packet out = queue_.front();
    queue_.pop_front();
    queue_bytes_ -= out.size_bytes;
    ++forwarded_packets_;
    forwarded_bytes_ += out.size_bytes;
    if (cfg_.latency.is_zero()) {
      // Inline delivery keeps the historical rack-uplink event sequence.
      sink_(out);
    } else {
      sim_->schedule(cfg_.latency, [this, out] { sink_(out); });
    }
    drain();
  });
}

}  // namespace xdrs::topo
