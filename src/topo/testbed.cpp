#include "topo/testbed.hpp"

#include <memory>
#include <stdexcept>

#include "traffic/empirical_cdf.hpp"
#include "traffic/patterns.hpp"
#include "traffic/trace_replay.hpp"

namespace xdrs::topo {

using traffic::CbrGenerator;
using traffic::FlowGenerator;
using traffic::OnOffGenerator;
using traffic::PoissonGenerator;

std::string WorkloadSpec::name() const {
  switch (kind) {
    case Kind::kPoissonUniform: return "uniform";
    case Kind::kPoissonHotspot: return "hotspot";
    case Kind::kPoissonZipf: return "zipf";
    case Kind::kPermutation: return "permutation";
    case Kind::kOnOffBursts: return "onoff";
    case Kind::kFlows: return "flows";
    case Kind::kShuffle: return "shuffle";
    case Kind::kIncast: return "incast";
    case Kind::kTraceReplay: return "trace";
    case Kind::kEmpirical: return "empirical";
  }
  return "unknown";
}

void attach_workload(core::HybridSwitchFramework& fw, const WorkloadSpec& spec,
                     core::HybridSwitchFramework::IngressTransform transform) {
  const auto& cfg = fw.config();
  // Sources and destinations live on host ports only; uplink ports (fat-tree
  // mode) are transit.  Single-switch configs have host_ports() == ports.
  const std::uint32_t ports = cfg.host_ports();

  // Trace replay is a single generator spanning all ports: it remaps the
  // trace's port ids onto this switch and time-scales to the spec's load.
  if (spec.kind == WorkloadSpec::Kind::kTraceReplay) {
    traffic::TraceReplayGenerator::Config gc;
    gc.trace = traffic::load_trace_cached(spec.trace_path);
    gc.ports = ports;
    gc.line_rate = cfg.link_rate;
    gc.load = spec.load;
    gc.seed = spec.seed;
    fw.add_generator(std::make_unique<traffic::TraceReplayGenerator>(gc), transform);
    return;
  }

  // Incast is a single many-to-one generator, not one source per port.
  if (spec.kind == WorkloadSpec::Kind::kIncast) {
    traffic::IncastGenerator::Config gc;
    gc.aggregator = 0;
    gc.ports = ports;
    gc.fan_in = 0;  // every other port answers each round
    gc.response_bytes = spec.response_bytes;
    gc.period = spec.period;
    gc.line_rate = cfg.link_rate;
    gc.deadline = spec.deadline;
    gc.seed = spec.seed;
    fw.add_generator(std::make_unique<traffic::IncastGenerator>(gc), transform);
    return;
  }

  // Empirical flow sizes share one immutable parsed CDF across every port
  // (and every concurrently-running sweep point replaying the same file).
  std::shared_ptr<traffic::EmpiricalSize> empirical_size;
  if (spec.kind == WorkloadSpec::Kind::kEmpirical) {
    empirical_size =
        std::make_shared<traffic::EmpiricalSize>(traffic::load_cdf_cached(spec.cdf_path));
  }

  for (std::uint32_t p = 0; p < ports; ++p) {
    const std::uint64_t seed = spec.seed * 1000003ULL + p;
    std::shared_ptr<traffic::DestinationChooser> dest;
    switch (spec.kind) {
      case WorkloadSpec::Kind::kPoissonUniform:
      case WorkloadSpec::Kind::kOnOffBursts:
      case WorkloadSpec::Kind::kFlows:
      case WorkloadSpec::Kind::kEmpirical:
        dest = std::make_shared<traffic::UniformChooser>(ports);
        break;
      case WorkloadSpec::Kind::kPoissonHotspot:
        dest = std::make_shared<traffic::HotspotChooser>(ports, 0, spec.skew);
        break;
      case WorkloadSpec::Kind::kPoissonZipf:
        dest = std::make_shared<traffic::ZipfChooser>(ports, spec.skew);
        break;
      case WorkloadSpec::Kind::kPermutation:
        dest = std::make_shared<traffic::PermutationChooser>(ports, 1);
        break;
      case WorkloadSpec::Kind::kShuffle:
        dest = std::make_shared<traffic::ShuffleChooser>(ports);
        break;
      case WorkloadSpec::Kind::kIncast:
      case WorkloadSpec::Kind::kTraceReplay:
        break;  // handled above
    }

    switch (spec.kind) {
      case WorkloadSpec::Kind::kOnOffBursts: {
        OnOffGenerator::Config gc;
        gc.src = p;
        gc.line_rate = cfg.link_rate;
        gc.mean_on = spec.mean_on;
        gc.mean_off = spec.mean_off;
        gc.dest = dest;
        gc.size = std::make_shared<traffic::FixedSize>(sim::kMaxFrameBytes);
        gc.seed = seed;
        fw.add_generator(std::make_unique<OnOffGenerator>(gc), transform);
        break;
      }
      case WorkloadSpec::Kind::kShuffle:
      case WorkloadSpec::Kind::kFlows:
      case WorkloadSpec::Kind::kEmpirical: {
        FlowGenerator::Config gc;
        gc.src = p;
        gc.line_rate = cfg.link_rate;
        gc.load = spec.load;
        gc.elephant_fraction = spec.elephant_fraction;
        gc.size = empirical_size;  // null for kShuffle/kFlows: built-in mixture
        gc.dest = dest;
        gc.deadline = spec.deadline;
        gc.seed = seed;
        fw.add_generator(std::make_unique<FlowGenerator>(gc), transform);
        break;
      }
      default: {
        PoissonGenerator::Config gc;
        gc.src = p;
        gc.line_rate = cfg.link_rate;
        gc.load = spec.load;
        gc.dest = dest;
        gc.size = std::make_shared<traffic::DatacenterPacketMix>();
        gc.seed = seed;
        fw.add_generator(std::make_unique<PoissonGenerator>(gc), transform);
        break;
      }
    }
  }
}

void attach_voip(core::HybridSwitchFramework& fw, std::uint32_t pairs, sim::Time period,
                 std::int64_t packet_bytes, std::uint64_t seed) {
  const std::uint32_t ports = fw.config().host_ports();
  if (pairs > ports) throw std::invalid_argument{"attach_voip: more pairs than ports"};
  for (std::uint32_t i = 0; i < pairs; ++i) {
    CbrGenerator::Config gc;
    gc.src = i;
    gc.dst = (i + ports / 2) % ports;
    if (gc.dst == gc.src) gc.dst = (gc.src + 1) % ports;
    gc.packet_bytes = packet_bytes;
    gc.period = period;
    // Stagger phases so streams do not synchronise.
    gc.phase = sim::Time::picoseconds((period.ps() / (pairs + 1)) * (i + 1));
    gc.seed = seed + i;
    fw.add_generator(std::make_unique<CbrGenerator>(gc));
  }
}

}  // namespace xdrs::topo
