// Virtual Output Queues — the buffering stage of the processing logic.
//
// An N-port input-queued switch keeps, at each input, one FIFO per output
// ("VOQ") so that a blocked head-of-line packet for one output never stalls
// traffic to another.  The bank tracks byte/packet occupancy exactly and
// records *peak* occupancy, which is the quantity Figure 1 of the paper is
// about: the peak decides whether buffers fit in a ToR switch (kilobytes,
// fast scheduling) or must live in the hosts (gigabytes, slow scheduling).
#ifndef XDRS_QUEUEING_VOQ_HPP
#define XDRS_QUEUEING_VOQ_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "net/packet.hpp"

namespace xdrs::queueing {

/// Buffer-admission limits.  A value of 0 means "unlimited".
struct VoqLimits {
  std::int64_t max_bytes_per_voq{0};
  std::int64_t max_packets_per_voq{0};
  std::int64_t shared_buffer_bytes{0};  ///< across all VOQs of the bank
};

/// VOQ status transitions reported to the request generator.
enum class VoqStatus : std::uint8_t {
  kBecameNonEmpty,  ///< 0 -> >0 packets: emit a scheduling request
  kBecameEmpty,     ///< >0 -> 0 packets: demand for this pair vanished
};

/// Drop/occupancy counters for one bank.
struct VoqBankStats {
  std::uint64_t enqueued_packets{0};
  std::uint64_t dequeued_packets{0};
  std::uint64_t dropped_packets{0};
  std::int64_t dropped_bytes{0};
  std::int64_t peak_total_bytes{0};
};

/// A bank of `inputs x outputs` VOQs with exact occupancy accounting.
class VoqBank {
 public:
  using StatusCallback = std::function<void(net::PortId input, net::PortId output, VoqStatus)>;

  VoqBank(std::uint32_t inputs, std::uint32_t outputs, VoqLimits limits = {});

  [[nodiscard]] std::uint32_t inputs() const noexcept { return inputs_; }
  [[nodiscard]] std::uint32_t outputs() const noexcept { return outputs_; }

  /// Invoked on kBecameNonEmpty / kBecameEmpty transitions.
  void set_status_callback(StatusCallback cb) { status_cb_ = std::move(cb); }

  /// Admits `p` to VOQ(input, p.dst).  Returns false (and counts a drop)
  /// when an admission limit would be exceeded.
  bool enqueue(net::PortId input, const net::Packet& p);

  /// Removes the head-of-line packet of VOQ(input, output), if any.
  std::optional<net::Packet> dequeue(net::PortId input, net::PortId output);

  /// Head-of-line packet without removal.
  [[nodiscard]] const net::Packet* peek(net::PortId input, net::PortId output) const;

  [[nodiscard]] std::int64_t bytes(net::PortId input, net::PortId output) const;
  [[nodiscard]] std::size_t packets(net::PortId input, net::PortId output) const;
  [[nodiscard]] bool empty(net::PortId input, net::PortId output) const;

  /// Occupancy across all VOQs sharing input `input` (a host's buffer in
  /// host-buffered mode).
  [[nodiscard]] std::int64_t input_bytes(net::PortId input) const;
  [[nodiscard]] std::int64_t peak_input_bytes(net::PortId input) const;

  /// Whole-bank occupancy (the ToR buffer in switch-buffered mode).
  [[nodiscard]] std::int64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::int64_t total_packets() const noexcept { return total_packets_; }

  [[nodiscard]] const VoqBankStats& stats() const noexcept { return stats_; }

  /// Longest queue (bytes) over the whole bank; used by max-weight tests.
  [[nodiscard]] std::int64_t max_voq_bytes() const;

  /// Resets peak-occupancy water marks (not the queues themselves); used to
  /// measure steady-state peaks after warm-up.
  void reset_peaks() noexcept;

 private:
  struct Cell {
    std::deque<net::Packet> fifo;
    std::int64_t bytes{0};
  };

  [[nodiscard]] Cell& cell(net::PortId input, net::PortId output);
  [[nodiscard]] const Cell& cell(net::PortId input, net::PortId output) const;
  void check_ports(net::PortId input, net::PortId output) const;

  std::uint32_t inputs_;
  std::uint32_t outputs_;
  VoqLimits limits_;
  std::vector<Cell> cells_;                 // row-major [input][output]
  std::vector<std::int64_t> input_bytes_;   // per-input occupancy
  std::vector<std::int64_t> input_peaks_;   // per-input high-water mark
  std::int64_t total_bytes_{0};
  std::int64_t total_packets_{0};
  VoqBankStats stats_;
  StatusCallback status_cb_;
};

}  // namespace xdrs::queueing

#endif  // XDRS_QUEUEING_VOQ_HPP
