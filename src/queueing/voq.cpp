#include "queueing/voq.hpp"

#include <algorithm>
#include <stdexcept>

namespace xdrs::queueing {

VoqBank::VoqBank(std::uint32_t inputs, std::uint32_t outputs, VoqLimits limits)
    : inputs_{inputs},
      outputs_{outputs},
      limits_{limits},
      cells_(static_cast<std::size_t>(inputs) * outputs),
      input_bytes_(inputs, 0),
      input_peaks_(inputs, 0) {
  if (inputs == 0 || outputs == 0) {
    throw std::invalid_argument{"VoqBank: ports must be >= 1"};
  }
}

VoqBank::Cell& VoqBank::cell(net::PortId input, net::PortId output) {
  return cells_[static_cast<std::size_t>(input) * outputs_ + output];
}

const VoqBank::Cell& VoqBank::cell(net::PortId input, net::PortId output) const {
  return cells_[static_cast<std::size_t>(input) * outputs_ + output];
}

void VoqBank::check_ports(net::PortId input, net::PortId output) const {
  if (input >= inputs_ || output >= outputs_) {
    throw std::out_of_range{"VoqBank: port index out of range"};
  }
}

bool VoqBank::enqueue(net::PortId input, const net::Packet& p) {
  check_ports(input, p.dst);
  Cell& c = cell(input, p.dst);

  const bool over_voq_bytes =
      limits_.max_bytes_per_voq > 0 && c.bytes + p.size_bytes > limits_.max_bytes_per_voq;
  const bool over_voq_packets =
      limits_.max_packets_per_voq > 0 &&
      static_cast<std::int64_t>(c.fifo.size()) + 1 > limits_.max_packets_per_voq;
  const bool over_shared =
      limits_.shared_buffer_bytes > 0 && total_bytes_ + p.size_bytes > limits_.shared_buffer_bytes;
  if (over_voq_bytes || over_voq_packets || over_shared) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += p.size_bytes;
    return false;
  }

  const bool was_empty = c.fifo.empty();
  c.fifo.push_back(p);
  c.bytes += p.size_bytes;
  input_bytes_[input] += p.size_bytes;
  input_peaks_[input] = std::max(input_peaks_[input], input_bytes_[input]);
  total_bytes_ += p.size_bytes;
  ++total_packets_;
  stats_.peak_total_bytes = std::max(stats_.peak_total_bytes, total_bytes_);
  ++stats_.enqueued_packets;

  if (was_empty && status_cb_) status_cb_(input, p.dst, VoqStatus::kBecameNonEmpty);
  return true;
}

std::optional<net::Packet> VoqBank::dequeue(net::PortId input, net::PortId output) {
  check_ports(input, output);
  Cell& c = cell(input, output);
  if (c.fifo.empty()) return std::nullopt;

  net::Packet p = c.fifo.front();
  c.fifo.pop_front();
  c.bytes -= p.size_bytes;
  input_bytes_[input] -= p.size_bytes;
  total_bytes_ -= p.size_bytes;
  --total_packets_;
  ++stats_.dequeued_packets;

  if (c.fifo.empty() && status_cb_) status_cb_(input, output, VoqStatus::kBecameEmpty);
  return p;
}

const net::Packet* VoqBank::peek(net::PortId input, net::PortId output) const {
  check_ports(input, output);
  const Cell& c = cell(input, output);
  return c.fifo.empty() ? nullptr : &c.fifo.front();
}

std::int64_t VoqBank::bytes(net::PortId input, net::PortId output) const {
  check_ports(input, output);
  return cell(input, output).bytes;
}

std::size_t VoqBank::packets(net::PortId input, net::PortId output) const {
  check_ports(input, output);
  return cell(input, output).fifo.size();
}

bool VoqBank::empty(net::PortId input, net::PortId output) const {
  check_ports(input, output);
  return cell(input, output).fifo.empty();
}

std::int64_t VoqBank::input_bytes(net::PortId input) const {
  if (input >= inputs_) throw std::out_of_range{"VoqBank::input_bytes"};
  return input_bytes_[input];
}

std::int64_t VoqBank::peak_input_bytes(net::PortId input) const {
  if (input >= inputs_) throw std::out_of_range{"VoqBank::peak_input_bytes"};
  return input_peaks_[input];
}

std::int64_t VoqBank::max_voq_bytes() const {
  std::int64_t best = 0;
  for (const Cell& c : cells_) best = std::max(best, c.bytes);
  return best;
}

void VoqBank::reset_peaks() noexcept {
  stats_.peak_total_bytes = total_bytes_;
  for (std::uint32_t i = 0; i < inputs_; ++i) input_peaks_[i] = input_bytes_[i];
}

}  // namespace xdrs::queueing
