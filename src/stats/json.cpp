#include "stats/json.hpp"

#include <cctype>
#include <charconv>
#include <limits>
#include <stdexcept>

#include "stats/serialize.hpp"

namespace xdrs::stats {

namespace {

[[noreturn]] void kind_error(const char* wanted, JsonValue::Kind got) {
  static constexpr const char* kNames[] = {"null", "bool", "number", "string", "array", "object"};
  throw std::invalid_argument{std::string{"json: expected "} + wanted + ", got " +
                              kNames[static_cast<int>(got)]};
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

std::int64_t JsonValue::as_i64() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  std::int64_t v = 0;
  const char* first = scalar_.data();
  const char* last = first + scalar_.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) {
    throw std::invalid_argument{"json: '" + scalar_ + "' is not an int64"};
  }
  return v;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  std::uint64_t v = 0;
  const char* first = scalar_.data();
  const char* last = first + scalar_.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) {
    throw std::invalid_argument{"json: '" + scalar_ + "' is not a uint64"};
  }
  return v;
}

namespace {

/// Given a number token from_chars flagged result_out_of_range, decides
/// overflow (true) vs underflow (false) by the sign of its effective
/// decimal exponent: explicit exponent plus the most-significant-digit
/// position of the mantissa.  "1e999" -> overflow; "0.00…01" and
/// "0.0…1e5" with enough zeros -> underflow.
bool out_of_range_is_overflow(std::string_view token) {
  if (!token.empty() && (token.front() == '-' || token.front() == '+')) token.remove_prefix(1);
  std::int64_t exponent = 0;
  const auto e = token.find_first_of("eE");
  if (e != std::string_view::npos) {
    // The grammar already validated the exponent digits; saturate absurd
    // lengths rather than parsing them exactly.
    std::string_view digits = token.substr(e + 1);
    bool negative = false;
    if (!digits.empty() && (digits.front() == '-' || digits.front() == '+')) {
      negative = digits.front() == '-';
      digits.remove_prefix(1);
    }
    for (const char c : digits.substr(0, 18)) exponent = exponent * 10 + (c - '0');
    if (negative) exponent = -exponent;
    token = token.substr(0, e);
  }
  // Most-significant-digit position: digit k before the '.' contributes
  // 10^k, digit k after it contributes 10^-(k+1).
  const auto dot = token.find('.');
  const std::string_view int_part = token.substr(0, dot);
  const auto first_int = int_part.find_first_not_of('0');
  if (first_int != std::string_view::npos) {
    return exponent + static_cast<std::int64_t>(int_part.size() - first_int) - 1 >= 0;
  }
  if (dot == std::string_view::npos) return exponent >= 0;  // mantissa is 0
  const std::string_view frac = token.substr(dot + 1);
  const auto first_frac = frac.find_first_not_of('0');
  if (first_frac == std::string_view::npos) return exponent >= 0;  // mantissa is 0
  return exponent - static_cast<std::int64_t>(first_frac) - 1 >= 0;
}

}  // namespace

double JsonValue::as_f64() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  // from_chars (locale-independent, unlike strtod) round-trips the shortest
  // representations format_double() emits exactly.
  double v = 0.0;
  const char* first = scalar_.data();
  const char* last = first + scalar_.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec == std::errc::result_out_of_range) {
    // Overflow saturates to +-inf (the emitter writes "1e999" for
    // infinities on purpose); underflow to +-0.
    const bool negative = scalar_.front() == '-';
    if (!out_of_range_is_overflow(scalar_)) return negative ? -0.0 : 0.0;
    return negative ? -std::numeric_limits<double>::infinity()
                    : std::numeric_limits<double>::infinity();
  }
  if (ec != std::errc{} || ptr != last) {
    throw std::invalid_argument{"json: '" + scalar_ + "' is not a double"};
  }
  return v;
}

const std::string& JsonValue::as_str() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return scalar_;
}

const std::string& JsonValue::number_text() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::invalid_argument{"json: missing key '" + std::string{key} + "'"};
  return *v;
}

std::string JsonValue::dump() const {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kBool: return bool_ ? "true" : "false";
    case Kind::kNumber: return scalar_;
    case Kind::kString: return '"' + json_escape(scalar_) + '"';
    case Kind::kArray: {
      std::string out{'['};
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        out += items_[i].dump();
      }
      out += ']';
      return out;
    }
    case Kind::kObject: {
      std::string out{'{'};
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        out += '"' + json_escape(members_[i].first) + "\":" + members_[i].second.dump();
      }
      out += '}';
      return out;
    }
  }
  return "null";
}

// ------------------------------------------------------------------- parser

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_{text} {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument{"json: " + what + " at byte " + std::to_string(pos_)};
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_ws() noexcept {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) fail(std::string{"expected '"} + c + '\'');
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_ws();
    if (eof()) fail("unexpected end of input");
    JsonValue v;
    switch (peek()) {
      case '{': parse_object(v); break;
      case '[': parse_array(v); break;
      case '"':
        v.kind_ = JsonValue::Kind::kString;
        v.scalar_ = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        break;
      default: parse_number(v); break;
    }
    --depth_;
    return v;
  }

  void parse_object(JsonValue& v) {
    v.kind_ = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      JsonValue member = parse_value();
      v.members_.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(JsonValue& v) {
    v.kind_ = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return;
    }
    for (;;) {
      v.items_.push_back(parse_value());
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out); break;
        default: fail("bad escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return cp;
  }

  void append_codepoint(std::string& out) {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: pair required
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate");
      }
      pos_ += 2;
      const std::uint32_t lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  void parse_number(JsonValue& v) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    const auto digits = [this] {
      std::size_t n = 0;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (eof()) fail("bad number");
    if (peek() == '0') {
      ++pos_;  // no leading zeros
    } else if (digits() == 0) {
      fail("bad number");
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number: missing fraction digits");
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (digits() == 0) fail("bad number: missing exponent digits");
    }
    v.kind_ = JsonValue::Kind::kNumber;
    v.scalar_.assign(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  std::size_t pos_{0};
  int depth_{0};
};

JsonValue parse_json(std::string_view text) { return JsonParser{text}.parse_document(); }

}  // namespace xdrs::stats
