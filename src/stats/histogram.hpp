// Log-bucketed histogram for latency-scale values (HdrHistogram-style):
// power-of-two buckets, each split into 16 linear sub-buckets, giving a
// worst-case quantile error of ~6% across the full picosecond..second range
// at constant memory.  Used for every latency/jitter distribution reported
// in EXPERIMENTS.md.
#ifndef XDRS_STATS_HISTOGRAM_HPP
#define XDRS_STATS_HISTOGRAM_HPP

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace xdrs::stats {

class Histogram {
 public:
  Histogram() = default;

  void record(std::int64_t value);
  void record_time(sim::Time t) { record(t.ps()); }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::int64_t max() const noexcept { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1]; returns an upper bound of the matching
  /// sub-bucket.  0 when empty.
  [[nodiscard]] std::int64_t quantile(double q) const;

  [[nodiscard]] std::int64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::int64_t p99() const { return quantile(0.99); }
  [[nodiscard]] std::int64_t p999() const { return quantile(0.999); }

  [[nodiscard]] sim::Time quantile_time(double q) const {
    return sim::Time::picoseconds(quantile(q));
  }
  [[nodiscard]] sim::Time mean_time() const {
    return sim::Time::picoseconds(static_cast<std::int64_t>(mean()));
  }

  void merge(const Histogram& other);
  void clear() noexcept;

  /// Full internal state, for exact serialization: `slots` holds the nonzero
  /// (slot index, count) pairs in ascending slot order; `count` is their sum.
  /// from_state(h.state()) reproduces a histogram whose every accessor —
  /// including quantiles and merge behaviour — matches `h` exactly.
  struct State {
    std::uint64_t count{0};
    std::int64_t sum{0};
    std::int64_t min{0};
    std::int64_t max{0};
    std::vector<std::pair<int, std::uint64_t>> slots;
  };
  [[nodiscard]] State state() const;
  /// Throws std::invalid_argument on out-of-range slot indices, zero slot
  /// counts or a count that disagrees with the slot sum.
  [[nodiscard]] static Histogram from_state(const State& s);

  /// "n=1234 mean=1.2us p50=1us p99=3us max=9us"
  [[nodiscard]] std::string summary_time() const;

 private:
  static constexpr int kSubBits = 4;                       // 16 sub-buckets
  static constexpr int kBuckets = 64 - kSubBits;           // exponent range
  static constexpr int kSlots = kBuckets << kSubBits;

  [[nodiscard]] static int slot_of(std::int64_t value) noexcept;
  [[nodiscard]] static std::int64_t slot_upper_bound(int slot) noexcept;

  std::array<std::uint64_t, static_cast<std::size_t>(kSlots)> slots_{};
  std::uint64_t count_{0};
  std::int64_t sum_{0};
  std::int64_t min_{0};
  std::int64_t max_{0};
};

}  // namespace xdrs::stats

#endif  // XDRS_STATS_HISTOGRAM_HPP
