#include "stats/timeseries.hpp"

#include <algorithm>
#include <stdexcept>

namespace xdrs::stats {

TimeSeries::TimeSeries(std::size_t max_samples) : max_samples_{max_samples} {
  if (max_samples < 2) throw std::invalid_argument{"TimeSeries: capacity must be >= 2"};
  samples_.reserve(max_samples);
}

void TimeSeries::record(sim::Time at, double value) {
  peak_ = offered_ == 0 ? value : std::max(peak_, value);
  const std::uint64_t idx = offered_++;
  if (idx % stride_ != 0) return;

  if (samples_.size() == max_samples_) {
    // Decimate in place: keep every other sample, double the stride.
    std::size_t w = 0;
    for (std::size_t r = 0; r < samples_.size(); r += 2) samples_[w++] = samples_[r];
    samples_.resize(w);
    stride_ *= 2;
    if (idx % stride_ != 0) return;  // this sample no longer aligns
  }
  samples_.push_back(Sample{at, value});
}

void TimeSeries::clear() noexcept {
  samples_.clear();
  stride_ = 1;
  offered_ = 0;
  peak_ = 0.0;
}

}  // namespace xdrs::stats
