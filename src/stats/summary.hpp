// Streaming scalar summary (Welford's online mean/variance) and the RFC 3550
// interarrival-jitter estimator used for the VOIP experiment (E4).
#ifndef XDRS_STATS_SUMMARY_HPP
#define XDRS_STATS_SUMMARY_HPP

#include <cmath>
#include <cstdint>

#include "sim/time.hpp"

namespace xdrs::stats {

/// Numerically stable running mean / variance / extrema.
class Summary {
 public:
  void record(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1) {
      min_ = max_ = x;
    } else {
      if (x < min_) min_ = x;
      if (x > max_) max_ = x;
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return n_ == 0 ? 0.0 : max_; }

  /// Combines another summary as if its samples had been recorded here too
  /// (Chan et al. parallel Welford update).  Deterministic for identical
  /// operand states, which the mergeable RunReport relies on.
  void merge(const Summary& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const std::uint64_t n = n_ + other.n_;
    const double delta = other.mean_ - mean_;
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / static_cast<double>(n);
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    n_ = n;
  }

  void clear() noexcept { *this = Summary{}; }

  /// Full internal state, for exact serialization: from_state(s.state())
  /// reproduces a summary whose accessors and merge behaviour match `s`
  /// bit-for-bit (the doubles are the raw Welford accumulators).
  struct State {
    std::uint64_t n{0};
    double mean{0.0};
    double m2{0.0};
    double min{0.0};
    double max{0.0};
  };
  [[nodiscard]] State state() const noexcept { return {n_, mean_, m2_, min_, max_}; }
  [[nodiscard]] static Summary from_state(const State& s) noexcept {
    Summary out;
    out.n_ = s.n;
    out.mean_ = s.mean;
    out.m2_ = s.m2;
    out.min_ = s.min;
    out.max_ = s.max;
    return out;
  }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// RFC 3550 §6.4.1 interarrival jitter: J += (|D| - J) / 16, where D is the
/// difference in transit time between consecutive packets of a flow.  The
/// metric VOIP monitoring actually uses, hence the paper's QoE framing.
class Rfc3550Jitter {
 public:
  /// Feed each delivered packet's send and receive timestamps in arrival
  /// order.
  void record(sim::Time sent, sim::Time received) noexcept {
    const std::int64_t transit = (received - sent).ps();
    if (has_prev_) {
      const double d = std::abs(static_cast<double>(transit - prev_transit_));
      jitter_ += (d - jitter_) / 16.0;
      ++samples_;
    }
    prev_transit_ = transit;
    has_prev_ = true;
  }

  [[nodiscard]] sim::Time jitter() const noexcept {
    return sim::Time::picoseconds(static_cast<std::int64_t>(jitter_));
  }
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

 private:
  double jitter_{0.0};
  std::int64_t prev_transit_{0};
  bool has_prev_{false};
  std::uint64_t samples_{0};
};

}  // namespace xdrs::stats

#endif  // XDRS_STATS_SUMMARY_HPP
