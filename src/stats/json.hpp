// Minimal JSON reader — the read side of the serialization layer.
//
// serialize.hpp gives every artefact exactly one textual rendering; this
// parser closes the loop so emitted artefacts (sweep JSON, cache entries,
// shard files) can be *read back*.  Two properties matter more than speed:
//
//   * Numbers keep their raw source text, so re-serializing a parsed value
//     (dump()) reproduces the bytes the emitter wrote — the foundation of
//     the shard-merge and cache byte-identity guarantees.
//   * Typed accessors are strict: as_i64() on "1.5" or as_u64() on "-3"
//     throws instead of truncating, so schema drift fails loudly.
//
// The grammar is full RFC 8259 JSON (objects keep insertion order,
// duplicate keys keep the first occurrence for find()).
#ifndef XDRS_STATS_JSON_HPP
#define XDRS_STATS_JSON_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xdrs::stats {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }

  // ---- strict typed accessors; throw std::invalid_argument on mismatch ----
  [[nodiscard]] bool as_bool() const;
  /// Integral accessors reject fractional/exponent forms and out-of-range
  /// values rather than rounding.
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] double as_f64() const;
  [[nodiscard]] const std::string& as_str() const;

  /// The raw number token as it appeared in the source ("0.30000000000000004").
  [[nodiscard]] const std::string& number_text() const;

  // ---- containers ---------------------------------------------------------
  [[nodiscard]] const std::vector<JsonValue>& items() const;    ///< array elements
  [[nodiscard]] const std::vector<Member>& members() const;     ///< object, insertion order
  /// Object member by key; nullptr when absent.  Throws if not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object member by key; throws std::invalid_argument naming the missing key.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Compact re-serialization.  Number tokens are emitted verbatim and
  /// strings re-escaped canonically, so dump(parse_json(s)) == s for any
  /// artefact this library emitted.
  [[nodiscard]] std::string dump() const;

 private:
  friend class JsonParser;

  Kind kind_{Kind::kNull};
  bool bool_{false};
  std::string scalar_;  ///< raw number text, or decoded string payload
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parses one JSON document (throws std::invalid_argument with a byte offset
/// on malformed input or trailing garbage).
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace xdrs::stats

#endif  // XDRS_STATS_JSON_HPP
