#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace xdrs::stats {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {
  if (headers_.empty()) throw std::invalid_argument{"Table: need at least one column"};
}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& v) {
  if (cells_.empty()) throw std::logic_error{"Table: cell before row"};
  if (cells_.back().size() >= headers_.size()) throw std::logic_error{"Table: row overflow"};
  cells_.back().push_back(v);
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string{v}); }

Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return cell(std::string{buf});
}

std::string Table::markdown() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : cells_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& r) {
    out += '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string{};
      out += ' ';
      out += v;
      out.append(width[c] - v.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
  };
  emit_row(headers_);
  out += '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(width[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& r : cells_) emit_row(r);
  return out;
}

std::string Table::csv() const {
  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c > 0) out += ',';
      out += r[c];
    }
    out += '\n';
  };
  emit_row(headers_);
  for (const auto& r : cells_) emit_row(r);
  return out;
}

void Table::print(std::ostream& os) const { os << markdown(); }

}  // namespace xdrs::stats
