#include "stats/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>

namespace xdrs::stats {

int Histogram::slot_of(std::int64_t value) noexcept {
  if (value < 0) value = 0;
  const auto v = static_cast<std::uint64_t>(value);
  if (v < (1u << kSubBits)) return static_cast<int>(v);  // exact small values
  const int exp = 63 - std::countl_zero(v);
  const int sub = static_cast<int>((v >> (exp - kSubBits)) & ((1u << kSubBits) - 1));
  return ((exp - kSubBits + 1) << kSubBits) + sub;
}

std::int64_t Histogram::slot_upper_bound(int slot) noexcept {
  if (slot < (1 << kSubBits)) return slot;
  const int bucket = slot >> kSubBits;
  const int sub = slot & ((1 << kSubBits) - 1);
  const int exp = bucket + kSubBits - 1;
  const std::uint64_t base = std::uint64_t{1} << exp;
  const std::uint64_t step = base >> kSubBits;
  return static_cast<std::int64_t>(base + static_cast<std::uint64_t>(sub + 1) * step - 1);
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  const int slot = std::min(slot_of(value), kSlots - 1);
  ++slots_[static_cast<std::size_t>(slot)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

std::int64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (int s = 0; s < kSlots; ++s) {
    seen += slots_[static_cast<std::size_t>(s)];
    if (seen >= target) return std::min(slot_upper_bound(s), max_);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int s = 0; s < kSlots; ++s) {
    slots_[static_cast<std::size_t>(s)] += other.slots_[static_cast<std::size_t>(s)];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Histogram::State Histogram::state() const {
  State s;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max();
  for (int i = 0; i < kSlots; ++i) {
    const std::uint64_t c = slots_[static_cast<std::size_t>(i)];
    if (c != 0) s.slots.emplace_back(i, c);
  }
  return s;
}

Histogram Histogram::from_state(const State& s) {
  Histogram h;
  std::uint64_t total = 0;
  for (const auto& [slot, c] : s.slots) {
    if (slot < 0 || slot >= kSlots) {
      throw std::invalid_argument{"Histogram::from_state: slot index out of range"};
    }
    if (c == 0) throw std::invalid_argument{"Histogram::from_state: zero slot count"};
    h.slots_[static_cast<std::size_t>(slot)] += c;
    total += c;
  }
  if (total != s.count) {
    throw std::invalid_argument{"Histogram::from_state: count does not match slot sum"};
  }
  h.count_ = s.count;
  h.sum_ = s.sum;
  h.min_ = s.min;
  h.max_ = s.max;
  return h;
}

void Histogram::clear() noexcept {
  slots_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::string Histogram::summary_time() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "n=%llu mean=%s p50=%s p99=%s max=%s",
                static_cast<unsigned long long>(count_), mean_time().to_string().c_str(),
                quantile_time(0.5).to_string().c_str(), quantile_time(0.99).to_string().c_str(),
                sim::Time::picoseconds(max()).to_string().c_str());
  return buf;
}

}  // namespace xdrs::stats
