#include "stats/serialize.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace xdrs::stats {

Field Field::i64(std::string name, std::int64_t v) {
  Field f{std::move(name), Kind::kI64};
  f.i_ = v;
  return f;
}

Field Field::u64(std::string name, std::uint64_t v) {
  Field f{std::move(name), Kind::kU64};
  f.u_ = v;
  return f;
}

Field Field::f64(std::string name, double v) {
  Field f{std::move(name), Kind::kF64};
  f.d_ = v;
  return f;
}

Field Field::str(std::string name, std::string v) {
  Field f{std::move(name), Kind::kStr};
  f.s_ = std::move(v);
  return f;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e999" : (v < 0 ? "-1e999" : "0");
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string{"0"};
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Field::json() const {
  switch (kind_) {
    case Kind::kI64: return std::to_string(i_);
    case Kind::kU64: return std::to_string(u_);
    case Kind::kF64: return format_double(d_);
    case Kind::kStr: return '"' + json_escape(s_) + '"';
  }
  return "null";
}

std::string Field::csv() const {
  if (kind_ != Kind::kStr) return json();
  if (s_.find_first_of(",\"\n\r") == std::string::npos) return s_;
  std::string out{'"'};
  for (const char c : s_) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string to_json_object(const std::vector<Field>& fields) {
  std::string out{'{'};
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += ',';
    out += '"' + json_escape(fields[i].name()) + "\":" + fields[i].json();
  }
  out += '}';
  return out;
}

std::string csv_header(const std::vector<Field>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += ',';
    out += fields[i].name();
  }
  return out;
}

std::string csv_row(const std::vector<Field>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += ',';
    out += fields[i].csv();
  }
  return out;
}

}  // namespace xdrs::stats
