// Bounded time series for transient analysis (experiment E8): record
// (time, value) samples; when the capacity is exceeded, every other sample
// is dropped and the sampling stride doubles, preserving shape at bounded
// memory (a standard reservoir-free decimation scheme).
#ifndef XDRS_STATS_TIMESERIES_HPP
#define XDRS_STATS_TIMESERIES_HPP

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace xdrs::stats {

class TimeSeries {
 public:
  explicit TimeSeries(std::size_t max_samples = 1 << 16);

  void record(sim::Time at, double value);

  struct Sample {
    sim::Time at;
    double value;
  };

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] std::uint64_t stride() const noexcept { return stride_; }

  /// Samples offered to record(), kept or decimated away.
  [[nodiscard]] std::uint64_t offered() const noexcept { return offered_; }

  /// Peak value observed (over *all* offered samples, not only kept ones).
  [[nodiscard]] double peak() const noexcept { return peak_; }

  void clear() noexcept;

 private:
  std::size_t max_samples_;
  std::vector<Sample> samples_;
  std::uint64_t stride_{1};
  std::uint64_t offered_{0};
  double peak_{0.0};
};

}  // namespace xdrs::stats

#endif  // XDRS_STATS_TIMESERIES_HPP
