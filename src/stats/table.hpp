// Table rendering for the benchmark harness: every experiment prints a
// GitHub-markdown table (for EXPERIMENTS.md) and can emit CSV for plotting.
#ifndef XDRS_STATS_TABLE_HPP
#define XDRS_STATS_TABLE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace xdrs::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(const std::string& v);
  Table& cell(const char* v);
  Table& cell(std::int64_t v);
  Table& cell(std::uint64_t v);
  Table& cell(double v, int precision = 3);

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }

  /// Markdown rendering with aligned columns.
  [[nodiscard]] std::string markdown() const;
  [[nodiscard]] std::string csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace xdrs::stats

#endif  // XDRS_STATS_TABLE_HPP
