// Deterministic serialization primitives for self-describing records.
//
// Every result artefact the experiment engine emits (CSV rows, JSON sweep
// files, golden test fixtures) is built from `Field`s: ordered name/value
// pairs with exactly one textual rendering per value.  Doubles use
// shortest-round-trip formatting (std::to_chars), so output is bit-identical
// across runs, thread counts and optimisation levels for identical inputs.
#ifndef XDRS_STATS_SERIALIZE_HPP
#define XDRS_STATS_SERIALIZE_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xdrs::stats {

/// One named scalar of a self-describing record.
class Field {
 public:
  [[nodiscard]] static Field i64(std::string name, std::int64_t v);
  [[nodiscard]] static Field u64(std::string name, std::uint64_t v);
  [[nodiscard]] static Field f64(std::string name, double v);
  [[nodiscard]] static Field str(std::string name, std::string v);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// JSON literal: quoted/escaped for strings, shortest-round-trip numbers.
  [[nodiscard]] std::string json() const;

  /// CSV cell: like json() but strings are unquoted (commas/quotes escaped
  /// per RFC 4180 if present).
  [[nodiscard]] std::string csv() const;

 private:
  enum class Kind : std::uint8_t { kI64, kU64, kF64, kStr };

  Field(std::string name, Kind kind) : name_{std::move(name)}, kind_{kind} {}

  std::string name_;
  Kind kind_;
  std::int64_t i_{0};
  std::uint64_t u_{0};
  double d_{0.0};
  std::string s_;
};

/// Shortest decimal string that round-trips to exactly `v`.
[[nodiscard]] std::string format_double(double v);

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Renders `fields` as a single-line JSON object in insertion order.
[[nodiscard]] std::string to_json_object(const std::vector<Field>& fields);

/// CSV header / row for a field list (insertion order, comma-separated).
[[nodiscard]] std::string csv_header(const std::vector<Field>& fields);
[[nodiscard]] std::string csv_row(const std::vector<Field>& fields);

}  // namespace xdrs::stats

#endif  // XDRS_STATS_SERIALIZE_HPP
