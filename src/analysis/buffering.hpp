// Closed-form buffering model behind Figure 1 of the paper ("Host buffering
// vs Switch buffering").
//
// While the fabric is being reconfigured (dark time T_sw), while a schedule
// is being computed/distributed (control latency T_ctrl), and while other
// VOQs hold the fabric (schedule period T_period), arrivals must be
// buffered.  For lossless operation the buffer must absorb
//
//     B_total = N_ports x R_port x load x (T_sw + T_period + T_ctrl)
//
// where T_period is tied to T_sw by the target duty cycle
// (T_period = T_sw x duty / (1 - duty)): slow switches force long periods
// to amortise their dark time.  The paper's anchors fall out directly:
//   * T_sw = 1 ms, software control (ms-scale), 64x64 @ 10 Gbps
//       -> hundreds of MB to ~GB   ("gigabytes ... not available in ToR")
//   * T_sw = ns..10 ns, hardware control (sub-us)
//       -> single-digit..tens of KB ("kilobytes ... buffer in the ToR")
#ifndef XDRS_ANALYSIS_BUFFERING_HPP
#define XDRS_ANALYSIS_BUFFERING_HPP

#include <cstdint>

#include "sim/time.hpp"
#include "sim/units.hpp"

namespace xdrs::analysis {

/// Packet-buffer SRAM of a typical 2015-era commodity ToR switch: the
/// threshold separating the two regimes of Figure 1 (e.g. Broadcom
/// Trident II class devices carried 12 MB; we allow a generous 32 MB).
inline constexpr std::int64_t kTypicalTorBufferBytes = 32LL * 1024 * 1024;

struct BufferingScenario {
  std::uint32_t ports{64};
  sim::DataRate port_rate{sim::DataRate::gbps(10)};
  sim::Time switching_time{};          ///< OCS dark time T_sw
  sim::Time control_loop_latency{};    ///< demand+compute+IO+propagation+sync
  double duty_cycle{0.9};              ///< fraction of time circuits carry data
  double load{1.0};                    ///< offered load as fraction of line rate
};

struct BufferingRequirement {
  sim::Time schedule_period{};      ///< T_period implied by the duty cycle
  sim::Time exposure{};             ///< T_sw + T_period + T_ctrl
  std::int64_t total_bytes{0};      ///< aggregate buffer for lossless operation
  std::int64_t per_port_bytes{0};
  bool fits_in_tor{false};          ///< vs kTypicalTorBufferBytes
};

/// Evaluates the model.  Throws std::invalid_argument on nonsensical
/// parameters (duty outside (0,1), negative load, zero ports).
[[nodiscard]] BufferingRequirement compute_buffering(const BufferingScenario& s);

/// Smallest switching time whose requirement still fits a buffer of
/// `buffer_bytes` under scenario `s` (ignoring s.switching_time); binary
/// search over the closed form.  Answers "how fast must scheduling get
/// before buffering moves into the ToR?".
[[nodiscard]] sim::Time max_switching_time_for_buffer(BufferingScenario s,
                                                      std::int64_t buffer_bytes);

}  // namespace xdrs::analysis

#endif  // XDRS_ANALYSIS_BUFFERING_HPP
