#include "analysis/buffering.hpp"

#include <stdexcept>

namespace xdrs::analysis {

BufferingRequirement compute_buffering(const BufferingScenario& s) {
  if (s.ports == 0) throw std::invalid_argument{"compute_buffering: ports must be >= 1"};
  if (!(s.duty_cycle > 0.0 && s.duty_cycle < 1.0)) {
    throw std::invalid_argument{"compute_buffering: duty cycle must be in (0, 1)"};
  }
  if (s.load < 0.0 || s.load > 1.0) {
    throw std::invalid_argument{"compute_buffering: load must be in [0, 1]"};
  }
  if (s.switching_time.is_negative() || s.control_loop_latency.is_negative()) {
    throw std::invalid_argument{"compute_buffering: negative time"};
  }

  BufferingRequirement r;
  // T_period = T_sw * duty / (1 - duty): the circuit-holding time needed so
  // that dark time is only (1 - duty) of the cycle.
  const double period_ps =
      static_cast<double>(s.switching_time.ps()) * s.duty_cycle / (1.0 - s.duty_cycle);
  r.schedule_period = sim::Time::picoseconds(static_cast<std::int64_t>(period_ps));
  r.exposure = s.switching_time + r.schedule_period + s.control_loop_latency;

  const double per_port_bits = static_cast<double>(s.port_rate.bits_per_sec()) *
                               s.load * r.exposure.sec();
  r.per_port_bytes = static_cast<std::int64_t>(per_port_bits / 8.0);
  r.total_bytes = r.per_port_bytes * s.ports;
  r.fits_in_tor = r.total_bytes <= kTypicalTorBufferBytes;
  return r;
}

sim::Time max_switching_time_for_buffer(BufferingScenario s, std::int64_t buffer_bytes) {
  if (buffer_bytes <= 0) return sim::Time::zero();
  sim::Time lo = sim::Time::zero();
  sim::Time hi = sim::Time::seconds(1);
  // The requirement is monotone in switching time; 60 halvings of a second
  // reach sub-picosecond precision.
  for (int iter = 0; iter < 60; ++iter) {
    const sim::Time mid = sim::Time::picoseconds((lo.ps() + hi.ps()) / 2);
    s.switching_time = mid;
    if (compute_buffering(s).total_bytes <= buffer_bytes) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace xdrs::analysis
