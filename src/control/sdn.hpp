// SDN control over the hybrid switch (paper §3: the implementation
// "allows to explore SDN practices over the hybrid network").
//
// Two pieces:
//  * SdnController — a flow-table facade over the processing-logic
//    classifier: install/modify/remove match-action rules with ids,
//    priorities and per-rule counters (OpenFlow-style flow statistics).
//  * ElephantPinner — a sample reactive application: it polls VOQ backlog
//    and pins heavy source/destination pairs to the throughput class
//    (making them OCS candidates) with hysteresis, unpinning them when
//    their backlog drains.  The classic c-Through/Helios elephant-
//    detection loop, expressed as an SDN app on this framework.
#ifndef XDRS_CONTROL_SDN_HPP
#define XDRS_CONTROL_SDN_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/classifier.hpp"
#include "queueing/voq.hpp"
#include "sim/simulator.hpp"

namespace xdrs::control {

class SdnController {
 public:
  explicit SdnController(net::Classifier& classifier);

  /// Installs `rule` (its `id` field is overwritten); returns the assigned
  /// flow id.
  std::uint64_t install(net::Rule rule);

  /// Removes a previously installed flow.  Returns false for unknown ids.
  bool remove(std::uint64_t flow_id);

  /// Atomically replaces the matching criteria/action of an installed flow
  /// (counters continue across the modification).  False for unknown ids.
  bool modify(std::uint64_t flow_id, const net::Rule& updated);

  [[nodiscard]] std::size_t installed_flows() const noexcept { return flows_.size(); }
  [[nodiscard]] std::vector<std::uint64_t> flow_ids() const;

  /// OpenFlow-style flow statistics.
  [[nodiscard]] net::RuleCounters flow_stats(std::uint64_t flow_id) const;

 private:
  net::Classifier& classifier_;
  std::unordered_map<std::uint64_t, net::Rule> flows_;
  std::uint64_t next_id_{1};
};

/// Reactive elephant-pinning application.
class ElephantPinner {
 public:
  struct Config {
    sim::Time poll_period{sim::Time::microseconds(100)};
    std::int64_t pin_threshold_bytes{64 * 1024};    ///< backlog to pin at
    std::int64_t unpin_threshold_bytes{8 * 1024};   ///< backlog to unpin at
  };

  ElephantPinner(sim::Simulator& sim, SdnController& controller,
                 const queueing::VoqBank& voqs, Config cfg);

  /// Begins periodic polling until `horizon`.
  void start(sim::Time horizon);

  [[nodiscard]] std::size_t pinned_pairs() const noexcept { return pinned_.size(); }
  [[nodiscard]] std::uint64_t pin_events() const noexcept { return pin_events_; }
  [[nodiscard]] std::uint64_t unpin_events() const noexcept { return unpin_events_; }

 private:
  void poll(sim::Time horizon);
  [[nodiscard]] static std::uint64_t key(net::PortId src, net::PortId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  sim::Simulator& sim_;
  SdnController& controller_;
  const queueing::VoqBank& voqs_;
  Config cfg_;
  std::unordered_map<std::uint64_t, std::uint64_t> pinned_;  // pair key -> flow id
  std::uint64_t pin_events_{0};
  std::uint64_t unpin_events_{0};
};

}  // namespace xdrs::control

#endif  // XDRS_CONTROL_SDN_HPP
