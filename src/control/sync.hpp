// Host <-> switch synchronisation model.
//
// §2: software scheduling "requires tight synchronization between the host
// and switch, which is difficult to achieve at faster switching times and
// higher transmission rates".  In host-buffered mode a grant names a
// transmission window on the *switch* clock; each host launches according to
// its own clock, which is offset by a bounded skew.  The guard band added
// around circuit activation absorbs skew at the price of duty cycle —
// experiment E7 sweeps exactly this trade-off.
#ifndef XDRS_CONTROL_SYNC_HPP
#define XDRS_CONTROL_SYNC_HPP

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace xdrs::control {

struct SyncConfig {
  /// Per-host clock offsets are drawn uniformly from [-max_skew, +max_skew].
  sim::Time max_skew{};
  /// Additional per-message timing noise, uniform in [0, jitter].
  sim::Time jitter{};
  /// Dead time inserted after circuit activation before hosts may launch
  /// (and reserved before deactivation): absorbs skew, costs duty cycle.
  sim::Time guard_band{};
  std::uint64_t seed{42};
};

class SyncModel {
 public:
  SyncModel(std::uint32_t hosts, SyncConfig cfg);

  /// The fixed clock offset of `host` relative to the switch.
  [[nodiscard]] sim::Time offset_of(std::uint32_t host) const;

  /// One sample of per-message jitter (non-negative).
  [[nodiscard]] sim::Time sample_jitter();

  /// When a host believes the time is `switch_time`, the switch clock
  /// actually reads `switch_time - offset`; equivalently a host acting on a
  /// switch-timestamped grant acts at switch time `granted + offset`.
  [[nodiscard]] sim::Time host_action_time(std::uint32_t host, sim::Time granted_switch_time);

  [[nodiscard]] const SyncConfig& config() const noexcept { return cfg_; }

 private:
  SyncConfig cfg_;
  std::vector<sim::Time> offsets_;
  sim::Rng rng_;
};

}  // namespace xdrs::control

#endif  // XDRS_CONTROL_SYNC_HPP
