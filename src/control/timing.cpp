#include "control/timing.hpp"

namespace xdrs::control {

TimingBreakdown SoftwareSchedulerTimingModel::decision_latency(std::uint32_t ports,
                                                               std::uint32_t iterations,
                                                               bool hardware_parallel) const {
  TimingBreakdown b;
  // Demand collection polls the host agents over the control network.
  b.demand_estimation = cfg_.demand_poll;
  // Software executes nominally-parallel arbitration iterations as loops
  // over ports; sequential algorithms report their total step count in
  // `iterations` already.
  const std::int64_t ops = hardware_parallel
                               ? static_cast<std::int64_t>(iterations) * ports * ports
                               : static_cast<std::int64_t>(iterations) * ports;
  b.schedule_computation = cfg_.op_cost * ops;
  b.io_processing = cfg_.io_overhead;
  // Grants travel controller -> hosts; demand travelled hosts -> controller.
  b.propagation = cfg_.propagation * 2;
  b.synchronisation = cfg_.sync_slack;
  return b;
}

TimingBreakdown HardwareSchedulerTimingModel::decision_latency(std::uint32_t ports,
                                                               std::uint32_t iterations,
                                                               bool hardware_parallel) const {
  TimingBreakdown b;
  b.demand_estimation = cfg_.clock_period * cfg_.demand_cycles;
  // A parallel arbitration iteration costs a fixed number of cycles
  // independent of the port count; sequential algorithms pay one cycle per
  // reported step and an additional log2-depth reduction per pass.
  std::int64_t cycles = 0;
  if (hardware_parallel) {
    cycles = static_cast<std::int64_t>(iterations) * cfg_.cycles_per_iteration;
  } else {
    std::uint32_t depth = 0;
    for (std::uint32_t p = 1; p < ports; p <<= 1) ++depth;  // priority-tree depth
    cycles = static_cast<std::int64_t>(iterations) * (1 + depth);
  }
  b.schedule_computation = cfg_.clock_period * cycles;
  b.io_processing = cfg_.clock_period * cfg_.io_cycles;
  b.propagation = cfg_.propagation;
  b.synchronisation = sim::Time::zero();  // scheduler and VOQs share a clock domain
  return b;
}

TimingBreakdown DistributedSchedulerTimingModel::decision_latency(
    std::uint32_t ports, std::uint32_t iterations, bool hardware_parallel) const {
  TimingBreakdown b;
  // Each agent reads only its own VOQ registers.
  b.demand_estimation = cfg_.clock_period * cfg_.demand_cycles;
  // An arbitration iteration = local work + a request/grant message
  // round-trip across the mesh.  Sequential algorithms additionally pay a
  // token pass around the ring (one hop per port).
  const sim::Time per_iter_local = cfg_.clock_period * cfg_.cycles_per_iteration;
  const sim::Time per_iter_mesh = 2 * cfg_.hop_latency;
  std::int64_t effective_iters = iterations;
  if (!hardware_parallel) {
    effective_iters = static_cast<std::int64_t>(iterations) +
                      static_cast<std::int64_t>(ports);
  }
  b.schedule_computation = (per_iter_local + per_iter_mesh) * effective_iters;
  // Grants are already at their agents: no separate distribution step.
  b.io_processing = cfg_.clock_period * 2;
  b.propagation = cfg_.hop_latency;
  b.synchronisation = cfg_.sync_guard;
  return b;
}

}  // namespace xdrs::control
