// Control-plane message types exchanged between the three partitions of
// Figure 2: processing logic -> scheduling logic (requests) and scheduling
// logic -> switching logic / processing logic (grants).
#ifndef XDRS_CONTROL_MESSAGES_HPP
#define XDRS_CONTROL_MESSAGES_HPP

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace xdrs::control {

/// Which fabric a grant directs traffic onto.
enum class FabricPath : std::uint8_t { kOcs, kEps };

[[nodiscard]] constexpr const char* to_string(FabricPath p) noexcept {
  return p == FabricPath::kOcs ? "ocs" : "eps";
}

/// "As the status of a VOQ changes, the subsystem generates scheduling
/// requests" (§3).  A request reports the backlog of one VOQ.
struct SchedulingRequest {
  net::PortId src{0};
  net::PortId dst{0};
  std::int64_t backlog_bytes{0};
  sim::Time issued_at{};
};

/// A transmission grant for one VOQ: up to `bytes` may be dequeued towards
/// `dst` on fabric `via` during [valid_from, valid_until).
struct Grant {
  net::PortId src{0};
  net::PortId dst{0};
  std::int64_t bytes{0};
  FabricPath via{FabricPath::kEps};
  sim::Time valid_from{};
  sim::Time valid_until{};
};

/// The full output of one scheduling decision, as handed first to the
/// switching logic (to configure circuits) and then to the processing logic.
struct GrantSet {
  std::vector<Grant> grants;
  sim::Time computed_at{};
  std::uint64_t epoch{0};
};

}  // namespace xdrs::control

#endif  // XDRS_CONTROL_MESSAGES_HPP
