#include "control/sdn.hpp"

#include <stdexcept>

namespace xdrs::control {

SdnController::SdnController(net::Classifier& classifier) : classifier_{classifier} {}

std::uint64_t SdnController::install(net::Rule rule) {
  rule.id = next_id_++;
  classifier_.add_rule(rule);
  flows_.emplace(rule.id, rule);
  return rule.id;
}

bool SdnController::remove(std::uint64_t flow_id) {
  const auto it = flows_.find(flow_id);
  if (it == flows_.end()) return false;
  classifier_.remove_rule(flow_id);
  flows_.erase(it);
  return true;
}

bool SdnController::modify(std::uint64_t flow_id, const net::Rule& updated) {
  const auto it = flows_.find(flow_id);
  if (it == flows_.end()) return false;
  net::Rule replacement = updated;
  replacement.id = flow_id;  // identity (and counters) survive modification
  classifier_.remove_rule(flow_id);
  classifier_.add_rule(replacement);
  it->second = replacement;
  return true;
}

std::vector<std::uint64_t> SdnController::flow_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(flows_.size());
  for (const auto& [id, rule] : flows_) ids.push_back(id);
  return ids;
}

net::RuleCounters SdnController::flow_stats(std::uint64_t flow_id) const {
  return classifier_.rule_counters(flow_id);
}

ElephantPinner::ElephantPinner(sim::Simulator& sim, SdnController& controller,
                               const queueing::VoqBank& voqs, Config cfg)
    : sim_{sim}, controller_{controller}, voqs_{voqs}, cfg_{cfg} {
  if (cfg.poll_period <= sim::Time::zero()) {
    throw std::invalid_argument{"ElephantPinner: poll period must be positive"};
  }
  if (cfg.unpin_threshold_bytes > cfg.pin_threshold_bytes) {
    throw std::invalid_argument{"ElephantPinner: unpin threshold above pin threshold"};
  }
}

void ElephantPinner::start(sim::Time horizon) {
  sim_.schedule(cfg_.poll_period, [this, horizon] { poll(horizon); });
}

void ElephantPinner::poll(sim::Time horizon) {
  for (net::PortId i = 0; i < voqs_.inputs(); ++i) {
    for (net::PortId j = 0; j < voqs_.outputs(); ++j) {
      const std::int64_t backlog = voqs_.bytes(i, j);
      const std::uint64_t k = key(i, j);
      const auto it = pinned_.find(k);
      if (it == pinned_.end()) {
        if (backlog >= cfg_.pin_threshold_bytes) {
          // Pin: exact-match on the generators' synthetic addressing
          // (10.0/16 + port index), action = throughput class on the same
          // output port.
          net::Rule r;
          r.src_addr_value = 0x0a000000u | i;
          r.src_addr_mask = 0xffffffffu;
          r.dst_addr_value = 0x0a000000u | j;
          r.dst_addr_mask = 0xffffffffu;
          r.priority = 10;
          r.verdict = net::Verdict{j, net::TrafficClass::kThroughput};
          pinned_.emplace(k, controller_.install(r));
          ++pin_events_;
        }
      } else if (backlog <= cfg_.unpin_threshold_bytes) {
        controller_.remove(it->second);
        pinned_.erase(it);
        ++unpin_events_;
      }
    }
  }
  if (sim_.now() + cfg_.poll_period < horizon) {
    sim_.schedule(cfg_.poll_period, [this, horizon] { poll(horizon); });
  }
}

}  // namespace xdrs::control
