// Scheduler decision-latency models: the paper's central quantitative
// contrast.
//
// §2: "Software based schedulers used in hybrid switching architectures
// operate in the order of milliseconds due to their inherent latency (delays
// during demand estimation, schedule calculation, Input/Output (IO)
// processing, propagation delay between host and switch)."  Hardware
// schedulers, by contrast, offer "quick demand estimation, fast schedule
// computation and rapid communication of computed schedules".
//
// Both models expose the same component breakdown so experiment E2 can print
// them side by side, and the framework uses them to delay grant delivery —
// the latency is *lived*, not just reported.
#ifndef XDRS_CONTROL_TIMING_HPP
#define XDRS_CONTROL_TIMING_HPP

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace xdrs::control {

/// Component-wise latency of one scheduling decision.
struct TimingBreakdown {
  sim::Time demand_estimation{};
  sim::Time schedule_computation{};
  sim::Time io_processing{};
  sim::Time propagation{};
  sim::Time synchronisation{};

  [[nodiscard]] sim::Time total() const noexcept {
    return demand_estimation + schedule_computation + io_processing + propagation +
           synchronisation;
  }
};

class SchedulerTimingModel {
 public:
  virtual ~SchedulerTimingModel() = default;

  /// Latency of one decision for a switch with `ports` ports whose
  /// algorithm used `iterations` passes; `hardware_parallel` says whether a
  /// pass is a constant-depth parallel arbitration or sequential work.
  [[nodiscard]] virtual TimingBreakdown decision_latency(std::uint32_t ports,
                                                         std::uint32_t iterations,
                                                         bool hardware_parallel) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Software control loop, calibrated to the published Helios / c-Through
/// numbers (both run host agents over TCP to a central scheduler process).
struct SoftwareTimingConfig {
  /// Collecting per-host demand reports (socket polls + aggregation).
  sim::Time demand_poll{sim::Time::microseconds(500)};
  /// Executing one elementary scheduling operation in software (amortised
  /// interpreter/cache cost per inner-loop step).
  sim::Time op_cost{sim::Time::nanoseconds(50)};
  /// Kernel/NIC I/O on the control path, per decision.
  sim::Time io_overhead{sim::Time::microseconds(120)};
  /// Host <-> controller propagation (cable + switch hops), one way.
  sim::Time propagation{sim::Time::microseconds(5)};
  /// Host clock-sync slack that must be waited out before acting on a grant.
  sim::Time sync_slack{sim::Time::microseconds(200)};
};

class SoftwareSchedulerTimingModel final : public SchedulerTimingModel {
 public:
  explicit SoftwareSchedulerTimingModel(SoftwareTimingConfig cfg = {}) : cfg_{cfg} {}

  [[nodiscard]] TimingBreakdown decision_latency(std::uint32_t ports, std::uint32_t iterations,
                                                 bool hardware_parallel) const override;
  [[nodiscard]] std::string name() const override { return "software"; }

  [[nodiscard]] const SoftwareTimingConfig& config() const noexcept { return cfg_; }

 private:
  SoftwareTimingConfig cfg_;
};

/// On-chip hardware pipeline (the paper's NetFPGA-SUME target).
struct HardwareTimingConfig {
  /// Pipeline clock period; 156.25 MHz -> 6.4 ns is the SUME 10G datapath
  /// clock, 200+ MHz is routine for scheduler logic.
  sim::Time clock_period{sim::Time::picoseconds(6400)};
  /// Cycles to latch all VOQ occupancy counters (parallel register read).
  std::uint32_t demand_cycles{2};
  /// Cycles per arbitration iteration (request/grant/accept as a pipeline).
  std::uint32_t cycles_per_iteration{3};
  /// Cycles to serialise the grant matrix to switching + processing logic.
  std::uint32_t io_cycles{4};
  /// On-board trace propagation.
  sim::Time propagation{sim::Time::nanoseconds(5)};
};

class HardwareSchedulerTimingModel final : public SchedulerTimingModel {
 public:
  explicit HardwareSchedulerTimingModel(HardwareTimingConfig cfg = {}) : cfg_{cfg} {}

  [[nodiscard]] TimingBreakdown decision_latency(std::uint32_t ports, std::uint32_t iterations,
                                                 bool hardware_parallel) const override;
  [[nodiscard]] std::string name() const override { return "hardware"; }

  [[nodiscard]] const HardwareTimingConfig& config() const noexcept { return cfg_; }

 private:
  HardwareTimingConfig cfg_;
};

/// Distributed hardware scheduling (paper §3: the architecture supports
/// "both centralized and distributed implementations"): per-port arbitration
/// agents exchange request/grant messages over a control mesh instead of
/// sharing a chip.  Demand estimation stays local (fast), but every
/// arbitration iteration costs a message round-trip across the mesh, and
/// agents must hold a synchronisation guard for their neighbours' clocks.
struct DistributedTimingConfig {
  /// One-way control-mesh hop (serialisation + propagation between agents).
  sim::Time hop_latency{sim::Time::nanoseconds(150)};
  /// Local pipeline clock of each agent.
  sim::Time clock_period{sim::Time::picoseconds(6400)};
  std::uint32_t demand_cycles{2};
  std::uint32_t cycles_per_iteration{3};
  /// Inter-agent clock guard per decision.
  sim::Time sync_guard{sim::Time::nanoseconds(50)};
};

class DistributedSchedulerTimingModel final : public SchedulerTimingModel {
 public:
  explicit DistributedSchedulerTimingModel(DistributedTimingConfig cfg = {}) : cfg_{cfg} {}

  [[nodiscard]] TimingBreakdown decision_latency(std::uint32_t ports, std::uint32_t iterations,
                                                 bool hardware_parallel) const override;
  [[nodiscard]] std::string name() const override { return "distributed"; }

  [[nodiscard]] const DistributedTimingConfig& config() const noexcept { return cfg_; }

 private:
  DistributedTimingConfig cfg_;
};

/// Zero-latency model for unit tests and idealised upper bounds.
class IdealTimingModel final : public SchedulerTimingModel {
 public:
  [[nodiscard]] TimingBreakdown decision_latency(std::uint32_t, std::uint32_t,
                                                 bool) const override {
    return {};
  }
  [[nodiscard]] std::string name() const override { return "ideal"; }
};

}  // namespace xdrs::control

#endif  // XDRS_CONTROL_TIMING_HPP
