#include "control/sync.hpp"

#include <stdexcept>

namespace xdrs::control {

SyncModel::SyncModel(std::uint32_t hosts, SyncConfig cfg)
    : cfg_{cfg}, offsets_(hosts), rng_{cfg.seed} {
  if (hosts == 0) throw std::invalid_argument{"SyncModel: hosts must be >= 1"};
  if (cfg.max_skew.is_negative() || cfg.jitter.is_negative() || cfg.guard_band.is_negative()) {
    throw std::invalid_argument{"SyncModel: negative timing parameter"};
  }
  for (auto& off : offsets_) {
    const std::int64_t bound = cfg.max_skew.ps();
    off = bound == 0 ? sim::Time::zero()
                     : sim::Time::picoseconds(rng_.uniform_int(-bound, bound));
  }
}

sim::Time SyncModel::offset_of(std::uint32_t host) const {
  if (host >= offsets_.size()) throw std::out_of_range{"SyncModel::offset_of"};
  return offsets_[host];
}

sim::Time SyncModel::sample_jitter() {
  const std::int64_t bound = cfg_.jitter.ps();
  return bound == 0 ? sim::Time::zero()
                    : sim::Time::picoseconds(rng_.uniform_int(0, bound));
}

sim::Time SyncModel::host_action_time(std::uint32_t host, sim::Time granted_switch_time) {
  return granted_switch_time + offset_of(host) + sample_jitter();
}

}  // namespace xdrs::control
