// Empirical flow-size distributions as first-class SizeDistributions.
//
// Policy rankings in the flow-scheduling literature (PDQ, pFabric-style
// studies) flip depending on whether flow sizes follow the heavy-tailed
// websearch/datamining CDFs measured in production datacenters; the
// synthetic mice/elephant mixture cannot express those tails.  This module
// loads a cumulative distribution from a simple CSV format
//
//   bytes,cdf
//
// (one point per line, `#` comments and an optional header allowed, bytes
// strictly increasing, cdf non-decreasing and ending at exactly 1) and
// samples it by inverse transform: the CDF is treated as piecewise linear
// between points, with an atom of mass cdf[0] at the first size — the
// convention of the ns2/pFabric workload files the published CDFs ship in.
//
// Bundled inputs: examples/cdf_websearch.csv (the DCTCP websearch mix) and
// examples/cdf_datamining.csv (the VL2 datamining mix).
//
// Identity for result caching is the file's CONTENT (cdf_digest_hex),
// never its path: editing the file invalidates cached sweep points,
// renaming it does not — exactly the flow-trace contract.
#ifndef XDRS_TRAFFIC_EMPIRICAL_CDF_HPP
#define XDRS_TRAFFIC_EMPIRICAL_CDF_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "traffic/patterns.hpp"

namespace xdrs::traffic {

/// One point of an empirical CDF: P(size <= bytes) = p.
struct CdfPoint {
  std::int64_t bytes{0};
  double p{0.0};
};

/// A validated, immutable empirical size distribution.
class EmpiricalCdf {
 public:
  /// Parses the `bytes,cdf` CSV format above.  Strict: every malformed
  /// line — wrong field count, trailing garbage after a number,
  /// non-positive sizes, probabilities outside [0, 1], non-increasing
  /// bytes, decreasing probabilities — throws std::invalid_argument naming
  /// the 1-based line, as does a final probability != 1 or an empty file.
  /// A single-point CDF (all mass at one size) is valid.
  [[nodiscard]] static EmpiricalCdf parse(std::string_view csv);

  /// read_file + parse.  Throws std::runtime_error naming the path when
  /// the file cannot be read, std::invalid_argument on malformed content.
  [[nodiscard]] static EmpiricalCdf load(const std::string& path);

  /// Inverse transform: the size at cumulative probability `p` (clamped to
  /// [0, 1]) under linear interpolation between points.  quantile(0) is the
  /// smallest size, quantile(1) the largest; a plateau of duplicate
  /// probabilities carries zero mass, so no p strictly inside it is ever
  /// produced.
  [[nodiscard]] std::int64_t quantile(double p) const noexcept;

  /// Analytic mean of the piecewise-linear model: the atom at the first
  /// point plus each segment's mass times its midpoint.  Sampling converges
  /// to exactly this value (test-asserted within 2%).
  [[nodiscard]] double mean_bytes() const noexcept { return mean_bytes_; }

  [[nodiscard]] std::int64_t min_bytes() const noexcept { return points_.front().bytes; }
  [[nodiscard]] std::int64_t max_bytes() const noexcept { return points_.back().bytes; }
  [[nodiscard]] const std::vector<CdfPoint>& points() const noexcept { return points_; }

 private:
  explicit EmpiricalCdf(std::vector<CdfPoint> points);

  std::vector<CdfPoint> points_;
  double mean_bytes_{0.0};
};

/// FNV-1a 64 of the CDF file's bytes as a 16-hex-digit string, or
/// "unreadable" when the file cannot be opened.  Served from a process-wide
/// (path, size, mtime)-keyed cache (util/content_cache.hpp), so a sweep
/// that renders every point's identity does not re-read the file per point.
[[nodiscard]] std::string cdf_digest_hex(const std::string& path);

/// EmpiricalCdf::load through the same process-wide cache: one read + parse
/// per distinct file state, however many points probe it.  Errors behave
/// exactly like load().
[[nodiscard]] std::shared_ptr<const EmpiricalCdf> load_cdf_cached(const std::string& path);

/// SizeDistribution adapter: one immutable EmpiricalCdf shared by every
/// generator (and every concurrently-running sweep point) replaying the
/// same file; sampling is stateless, so sharing is thread-safe.
class EmpiricalSize final : public SizeDistribution {
 public:
  explicit EmpiricalSize(std::shared_ptr<const EmpiricalCdf> cdf);

  [[nodiscard]] std::int64_t sample(sim::Rng& rng) override;
  [[nodiscard]] double mean_bytes() const override { return cdf_->mean_bytes(); }
  [[nodiscard]] std::string name() const override { return "empirical"; }

 private:
  std::shared_ptr<const EmpiricalCdf> cdf_;
};

}  // namespace xdrs::traffic

#endif  // XDRS_TRAFFIC_EMPIRICAL_CDF_HPP
