#include "traffic/empirical_cdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/content_cache.hpp"
#include "util/file_io.hpp"
#include "util/parse.hpp"

namespace xdrs::traffic {

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  throw std::invalid_argument{"EmpiricalCdf: line " + std::to_string(line) + ": " + what};
}

}  // namespace

EmpiricalCdf::EmpiricalCdf(std::vector<CdfPoint> points) : points_{std::move(points)} {
  // Mean of the piecewise-linear model: an atom of mass p0 at the first
  // size, then each segment's mass times the segment midpoint (the mean of
  // a uniform draw across it under linear CDF interpolation).
  mean_bytes_ = points_.front().p * static_cast<double>(points_.front().bytes);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].p - points_[i - 1].p;
    mean_bytes_ +=
        mass * 0.5 * static_cast<double>(points_[i - 1].bytes + points_[i].bytes);
  }
}

EmpiricalCdf EmpiricalCdf::parse(std::string_view csv) {
  std::vector<CdfPoint> points;
  std::size_t line_no = 0;
  bool saw_header_candidate = false;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t eol = csv.find('\n', pos);
    std::string_view line =
        csv.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? csv.size() + 1 : eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    // One optional header line, before any point.
    if (!saw_header_candidate && points.empty() && line == "bytes,cdf") {
      saw_header_candidate = true;
      continue;
    }

    const std::size_t comma = line.find(',');
    if (comma == std::string_view::npos || line.find(',', comma + 1) != std::string_view::npos) {
      parse_error(line_no, "expected bytes,cdf");
    }

    CdfPoint pt;
    if (!util::parse_number(line.substr(0, comma), pt.bytes) || pt.bytes <= 0) {
      parse_error(line_no,
                  "bad bytes '" + std::string{line.substr(0, comma)} + "' (must be positive)");
    }
    if (!util::parse_number(line.substr(comma + 1), pt.p) || !std::isfinite(pt.p) || pt.p < 0.0 ||
        pt.p > 1.0) {
      parse_error(line_no,
                  "bad cdf '" + std::string{line.substr(comma + 1)} + "' (must be in [0, 1])");
    }
    if (!points.empty()) {
      if (pt.bytes <= points.back().bytes) {
        parse_error(line_no, "bytes must increase (CDF support is not monotone)");
      }
      if (pt.p < points.back().p) {
        parse_error(line_no, "cdf decreased (a CDF is non-decreasing)");
      }
    }
    points.push_back(pt);
  }
  if (points.empty()) throw std::invalid_argument{"EmpiricalCdf: no points"};
  if (points.back().p != 1.0) {
    throw std::invalid_argument{"EmpiricalCdf: final cdf is " +
                                std::to_string(points.back().p) + ", must reach exactly 1"};
  }
  return EmpiricalCdf{std::move(points)};
}

EmpiricalCdf EmpiricalCdf::load(const std::string& path) {
  const std::optional<std::string> raw = util::read_file(path);
  if (!raw) throw std::runtime_error{"EmpiricalCdf: cannot read '" + path + "'"};
  return parse(*raw);
}

std::int64_t EmpiricalCdf::quantile(double p) const noexcept {
  if (!(p > 0.0)) return points_.front().bytes;  // p <= 0 and NaN: the minimum size
  if (p >= 1.0) return points_.back().bytes;
  // The atom at the first point absorbs p <= p0; past it, find the first
  // point at or above p and interpolate linearly across that segment.
  if (p <= points_.front().p) return points_.front().bytes;
  const auto it = std::lower_bound(points_.begin(), points_.end(), p,
                                   [](const CdfPoint& pt, double v) { return pt.p < v; });
  const CdfPoint& hi = *it;
  const CdfPoint& lo = *(it - 1);
  if (hi.p <= lo.p) return hi.bytes;  // zero-mass plateau boundary
  const double t = (p - lo.p) / (hi.p - lo.p);
  const double bytes = static_cast<double>(lo.bytes) +
                       t * static_cast<double>(hi.bytes - lo.bytes);
  return std::clamp(static_cast<std::int64_t>(std::llround(bytes)), lo.bytes, hi.bytes);
}

namespace {

util::FileContentCache<EmpiricalCdf>& cdf_cache() {
  static util::FileContentCache<EmpiricalCdf> cache;
  return cache;
}

}  // namespace

std::string cdf_digest_hex(const std::string& path) { return cdf_cache().digest_hex(path); }

std::shared_ptr<const EmpiricalCdf> load_cdf_cached(const std::string& path) {
  return cdf_cache().load(path, &EmpiricalCdf::parse, "EmpiricalCdf");
}

EmpiricalSize::EmpiricalSize(std::shared_ptr<const EmpiricalCdf> cdf) : cdf_{std::move(cdf)} {
  if (cdf_ == nullptr) throw std::invalid_argument{"EmpiricalSize: null CDF"};
}

std::int64_t EmpiricalSize::sample(sim::Rng& rng) { return cdf_->quantile(rng.next_double()); }

}  // namespace xdrs::traffic
