// Trace-replay workload: empirical flow traces as a first-class source.
//
// Related hybrid-switch evaluations (PDQ, pFabric-style studies) are driven
// by flow traces with realistic size distributions rather than synthetic
// matrices alone.  This module parses a simple CSV flow-trace format
//
//   start_us,src,dst,bytes[,priority[,deadline_us]]
//
// with one flow per line; `#` comments and an optional header line are
// allowed and records must be time-sorted.  Column grammar:
//
//   start_us     fractional microseconds from the trace origin, >= 0,
//                non-decreasing, at most 1e12
//   src, dst     trace port ids (remapped at replay), src != dst
//   bytes        flow size, > 0
//   priority     optional: 0 best-effort (default), 1 throughput,
//                2 latency-sensitive
//   deadline_us  optional (requires priority): completion SLO as a
//                fractional-microsecond offset from the FLOW's start,
//                >= 0 and at most 1e12; 0 means "no deadline", so mixed
//                traces can give deadlines to some flows only.  The offset
//                is NOT time-scaled at replay: an SLO is a property of the
//                flow, not of the offered-load scaling.
//
// The trace replays through a TrafficGenerator.  One trace file drives ANY
// port count and ANY offered load deterministically:
//
//   * time scaling — the trace's time axis is stretched/compressed so that
//     the aggregate offered rate equals `load` x ports x line_rate; the
//     trace loops (each lap shifted by the scaled span) until the horizon.
//   * port remapping — trace port ids map onto the simulated ports through
//     a seeded deterministic table, rebuilt per lap so laps decorrelate.
//
// Identity for caching is the trace file's CONTENT (trace_digest), never
// its path: editing the file invalidates cached results, renaming it does
// not.
#ifndef XDRS_TRAFFIC_TRACE_REPLAY_HPP
#define XDRS_TRAFFIC_TRACE_REPLAY_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"
#include "traffic/generators.hpp"

namespace xdrs::traffic {

/// One flow of a parsed trace, in trace coordinates (ports and times as
/// written in the file; remapping and scaling happen at replay).
struct TraceRecord {
  sim::Time start{};         ///< offset from the trace origin
  std::uint32_t src{0};      ///< trace port id (not a switch port yet)
  std::uint32_t dst{0};
  std::int64_t bytes{0};     ///< flow size
  std::uint8_t priority{0};  ///< 0 best-effort, 1 throughput, 2 latency-sensitive
  sim::Time deadline{};      ///< completion SLO, offset from the flow start (zero = none)
};

/// A validated, immutable flow trace.
struct FlowTrace {
  std::vector<TraceRecord> records;
  std::uint32_t max_port{0};    ///< largest port id referenced
  std::int64_t total_bytes{0};  ///< sum of record sizes
  sim::Time span{};             ///< last record's start time

  /// Parses the CSV format above.  Strict: every malformed line — wrong
  /// field count, trailing garbage after a number, negative/zero sizes,
  /// src == dst, priority outside 0..2, negative/non-finite/out-of-range
  /// deadline_us, out-of-order start times, an empty trace — throws
  /// std::invalid_argument naming the 1-based line.
  [[nodiscard]] static FlowTrace parse(std::string_view csv);

  /// read_file + parse.  Throws std::runtime_error naming the path when the
  /// file cannot be read, std::invalid_argument on malformed content.
  [[nodiscard]] static FlowTrace load(const std::string& path);
};

/// FNV-1a 64 over raw bytes — the content identity of a trace.
[[nodiscard]] std::uint64_t trace_digest(std::string_view bytes);

/// trace_digest of the file's bytes as a 16-hex-digit string, or
/// "unreadable" when the file cannot be opened (so identity strings stay
/// deterministic even for missing traces).  Served from the process-wide
/// (path, size, mtime)-keyed cache below, so a sweep that renders every
/// point's identity does not re-read the file per point.
[[nodiscard]] std::string trace_digest_hex(const std::string& path);

/// FlowTrace::load through the same process-wide cache: one read + parse
/// per distinct file state, however many points probe it.  An edited file
/// (size or mtime change) reloads; errors behave exactly like load().
[[nodiscard]] std::shared_ptr<const FlowTrace> load_trace_cached(const std::string& path);

/// Replays a FlowTrace: each record becomes one flow streamed at line rate
/// from its (remapped) source to its (remapped) destination, starting at
/// its scaled start time.  Deterministic for a fixed (trace, ports, load,
/// seed) tuple.
class TraceReplayGenerator final : public TrafficGenerator {
 public:
  struct Config {
    /// Shared, immutable: every grid point replaying the same file holds
    /// the one parsed instance from load_trace_cached(), never a copy.
    std::shared_ptr<const FlowTrace> trace;
    std::uint32_t ports{0};              ///< switch size to remap onto
    sim::DataRate line_rate{};
    /// Target aggregate offered load as a fraction of ports x line_rate;
    /// sets the time-scale factor.  Must be in (0, 1].
    double load{0.5};
    std::int64_t packet_bytes{sim::kMaxFrameBytes};
    std::uint64_t seed{1};
  };

  explicit TraceReplayGenerator(Config cfg);

  void start(sim::Simulator& sim, Sink sink, sim::Time horizon) override;
  [[nodiscard]] std::string name() const override { return "trace-replay"; }

  /// The scaled duration of one trace lap (the loop period).
  [[nodiscard]] sim::Time scaled_span() const noexcept { return scaled_span_; }
  /// Scaled start offset of record `i` within a lap (for test assertions).
  [[nodiscard]] sim::Time scaled_start(std::size_t i) const;
  [[nodiscard]] std::uint64_t laps() const noexcept { return lap_; }

 private:
  void rebuild_remap();
  void arm_next(sim::Simulator& sim, sim::Time horizon);
  void launch(sim::Simulator& sim, sim::Time horizon, const TraceRecord& rec, net::FlowId flow);
  void stream(sim::Simulator& sim, sim::Time horizon, net::PortId src, net::PortId dst,
              std::int64_t remaining, net::FlowId flow, net::TrafficClass tclass,
              std::int64_t flow_bytes, sim::Time deadline);

  Config cfg_;
  Sink sink_;
  double time_scale_{1.0};          ///< replay ps per trace ps
  sim::Time scaled_span_{};         ///< lap period after scaling
  std::vector<net::PortId> remap_;  ///< trace port id -> switch port
  sim::Time lap_origin_{};
  std::size_t next_record_{0};
  std::uint64_t lap_{0};
};

}  // namespace xdrs::traffic

#endif  // XDRS_TRAFFIC_TRACE_REPLAY_HPP
