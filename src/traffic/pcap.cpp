#include "traffic/pcap.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <tuple>

namespace xdrs::traffic {

namespace {

[[noreturn]] void corrupt(const std::string& what) {
  throw std::invalid_argument{"pcap: " + what};
}

/// Bounds-checked little/big-endian integer reads over the raw capture.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_{bytes} {}

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

  [[nodiscard]] std::uint8_t u8(std::size_t off) const {
    if (off >= bytes_.size()) corrupt("truncated at byte " + std::to_string(off));
    return static_cast<std::uint8_t>(bytes_[off]);
  }

  [[nodiscard]] std::uint16_t u16(std::size_t off, bool swap) const {
    const std::uint16_t lo = u8(off);
    const std::uint16_t hi = u8(off + 1);
    // File data is read byte-wise, so "swap" means "file is big-endian".
    return swap ? static_cast<std::uint16_t>(lo << 8 | hi)
                : static_cast<std::uint16_t>(hi << 8 | lo);
  }

  [[nodiscard]] std::uint32_t u32(std::size_t off, bool swap) const {
    const std::uint32_t a = u8(off);
    const std::uint32_t b = u8(off + 1);
    const std::uint32_t c = u8(off + 2);
    const std::uint32_t d = u8(off + 3);
    return swap ? (a << 24 | b << 16 | c << 8 | d) : (d << 24 | c << 16 | b << 8 | a);
  }

  [[nodiscard]] std::string_view slice(std::size_t off, std::size_t len) const {
    if (off > bytes_.size() || bytes_.size() - off < len) {
      corrupt("truncated packet data at byte " + std::to_string(off));
    }
    return bytes_.substr(off, len);
  }

 private:
  std::string_view bytes_;
};

// Link-layer types we can decode (the pcap LINKTYPE_* registry values).
constexpr std::uint32_t kLinkEthernet = 1;
constexpr std::uint32_t kLinkRawIp = 101;

/// Decodes one captured frame into `out`.  Returns false (not an error) for
/// anything that is not an IPv4 packet; `wire_bytes` is the original
/// length, `frame` the possibly snaplen-truncated capture slice.
bool decode_frame(std::string_view frame, std::uint32_t link_type, std::uint64_t time_ns,
                  std::uint32_t wire_bytes, PcapPacket& out) {
  const Reader r{frame};
  std::size_t ip_off = 0;
  if (link_type == kLinkEthernet) {
    if (frame.size() < 14) return false;
    std::size_t type_off = 12;
    std::uint16_t ethertype = r.u16(type_off, /*swap=*/true);  // network order
    // Up to two VLAN tags (802.1Q / QinQ): each inserts 4 bytes.
    for (int tags = 0; tags < 2 && (ethertype == 0x8100 || ethertype == 0x88a8); ++tags) {
      if (frame.size() < type_off + 6) return false;
      type_off += 4;
      ethertype = r.u16(type_off, /*swap=*/true);
    }
    if (ethertype != 0x0800) return false;  // not IPv4
    ip_off = type_off + 2;
  } else if (link_type != kLinkRawIp) {
    corrupt("unsupported link type " + std::to_string(link_type) +
            " (Ethernet and raw IPv4 only)");
  }

  if (frame.size() < ip_off + 20) return false;  // no room for an IPv4 header
  const std::uint8_t version_ihl = r.u8(ip_off);
  if (version_ihl >> 4 != 4) return false;
  const std::size_t ihl = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
  if (ihl < 20 || frame.size() < ip_off + ihl) return false;

  out.time_ns = time_ns;
  out.bytes = wire_bytes;
  out.proto = r.u8(ip_off + 9);
  out.src_addr = r.u32(ip_off + 12, /*swap=*/true);
  out.dst_addr = r.u32(ip_off + 16, /*swap=*/true);
  out.src_port = 0;
  out.dst_port = 0;
  // TCP/UDP ports when the capture slice reaches them (snaplen may not).
  if ((out.proto == 6 || out.proto == 17) && frame.size() >= ip_off + ihl + 4) {
    out.src_port = r.u16(ip_off + ihl, /*swap=*/true);
    out.dst_port = r.u16(ip_off + ihl + 2, /*swap=*/true);
  }
  return true;
}

// ------------------------------------------------------------- classic pcap

PcapCapture parse_classic(const Reader& r) {
  const std::uint32_t magic_le = r.u32(0, /*swap=*/false);
  bool swap = false;
  std::uint64_t frac_to_ns = 1000;  // stored fraction is microseconds
  switch (magic_le) {
    case 0xa1b2c3d4u: break;
    case 0xd4c3b2a1u: swap = true; break;
    case 0xa1b23c4du: frac_to_ns = 1; break;          // nanosecond variant
    case 0x4d3cb2a1u: frac_to_ns = 1; swap = true; break;
    default: corrupt("bad magic");
  }
  if (r.size() < 24) corrupt("truncated global header");
  const std::uint32_t link_type = r.u32(20, swap) & 0x0fffffffu;  // high bits: FCS info

  PcapCapture capture;
  std::size_t off = 24;
  while (off < r.size()) {
    if (r.size() - off < 16) corrupt("truncated record header at byte " + std::to_string(off));
    const std::uint64_t ts_sec = r.u32(off, swap);
    const std::uint64_t ts_frac = r.u32(off + 4, swap);
    const std::uint32_t incl_len = r.u32(off + 8, swap);
    const std::uint32_t orig_len = r.u32(off + 12, swap);
    if (incl_len > (1u << 30)) corrupt("implausible record length at byte " + std::to_string(off));
    const std::string_view frame = r.slice(off + 16, incl_len);
    off += 16 + incl_len;

    PcapPacket pkt;
    if (decode_frame(frame, link_type, ts_sec * 1'000'000'000ull + ts_frac * frac_to_ns,
                     orig_len != 0 ? orig_len : incl_len, pkt)) {
      capture.packets.push_back(pkt);
    } else {
      ++capture.skipped;
    }
  }
  return capture;
}

// ------------------------------------------------------------------- pcapng

constexpr std::uint32_t kBlockSection = 0x0a0d0d0au;
constexpr std::uint32_t kBlockInterface = 1;
constexpr std::uint32_t kBlockSimplePacket = 3;
constexpr std::uint32_t kBlockEnhancedPacket = 6;

struct Interface {
  std::uint32_t link_type{0};
  long double ns_per_tick{1000.0L};  ///< default if_tsresol is microseconds
};

/// Walks an options list for if_tsresol (code 9); everything else skipped.
long double tsresol_of(const Reader& r, std::size_t off, std::size_t end, bool swap) {
  long double ns_per_tick = 1000.0L;
  while (off + 4 <= end) {
    const std::uint16_t code = r.u16(off, swap);
    const std::uint16_t len = r.u16(off + 2, swap);
    if (code == 0) break;  // opt_endofopt
    if (off + 4 + len > end) break;
    if (code == 9 && len >= 1) {
      const std::uint8_t v = r.u8(off + 4);
      // MSB clear: 10^-v seconds per tick; MSB set: 2^-(v&0x7f).
      const long double ticks_per_sec =
          std::pow((v & 0x80) ? 2.0L : 10.0L, static_cast<long double>(v & 0x7f));
      ns_per_tick = 1e9L / ticks_per_sec;
    }
    off += 4 + ((len + 3u) & ~3u);  // options pad to 32 bits
  }
  return ns_per_tick;
}

PcapCapture parse_pcapng(const Reader& r) {
  PcapCapture capture;
  bool swap = false;
  std::vector<Interface> interfaces;

  std::size_t off = 0;
  while (off < r.size()) {
    if (r.size() - off < 12) corrupt("truncated block header at byte " + std::to_string(off));
    std::uint32_t type = r.u32(off, swap);

    if (type == kBlockSection) {
      // A new section decides its own byte order (the SHB type value is a
      // byte palindrome, so it reads the same either way; the byte-order
      // magic inside disambiguates).
      const std::uint32_t bom = r.u32(off + 8, /*swap=*/false);
      if (bom == 0x1a2b3c4du) {
        swap = false;
      } else if (bom == 0x4d3c2b1au) {
        swap = true;
      } else {
        corrupt("bad byte-order magic at byte " + std::to_string(off + 8));
      }
      interfaces.clear();
    }

    const std::uint32_t total_len = r.u32(off + 4, swap);
    if (total_len < 12 || total_len % 4 != 0 || r.size() - off < total_len) {
      corrupt("bad block length at byte " + std::to_string(off + 4));
    }
    const std::size_t body = off + 8;
    const std::size_t body_end = off + total_len - 4;

    if (type == kBlockInterface) {
      if (body_end - body < 8) corrupt("truncated interface block");
      Interface ifc;
      ifc.link_type = r.u16(body, swap);
      ifc.ns_per_tick = tsresol_of(r, body + 8, body_end, swap);
      interfaces.push_back(ifc);
    } else if (type == kBlockEnhancedPacket) {
      if (body_end - body < 20) corrupt("truncated enhanced packet block");
      const std::uint32_t ifc_id = r.u32(body, swap);
      if (ifc_id >= interfaces.size()) {
        corrupt("enhanced packet block references unknown interface " + std::to_string(ifc_id));
      }
      const std::uint64_t ts =
          (static_cast<std::uint64_t>(r.u32(body + 4, swap)) << 32) | r.u32(body + 8, swap);
      const std::uint32_t incl_len = r.u32(body + 12, swap);
      const std::uint32_t orig_len = r.u32(body + 16, swap);
      if (incl_len > body_end - (body + 20)) corrupt("enhanced packet data overruns its block");
      const std::string_view frame = r.slice(body + 20, incl_len);
      const Interface& ifc = interfaces[ifc_id];
      PcapPacket pkt;
      if (decode_frame(frame, ifc.link_type,
                       static_cast<std::uint64_t>(static_cast<long double>(ts) * ifc.ns_per_tick),
                       orig_len != 0 ? orig_len : incl_len, pkt)) {
        capture.packets.push_back(pkt);
      } else {
        ++capture.skipped;
      }
    } else if (type == kBlockSimplePacket) {
      ++capture.skipped;  // no timestamp: useless for a flow trace
    }
    // Every other block type (name resolution, statistics, ...) is skipped.

    off += total_len;
  }
  return capture;
}

}  // namespace

PcapCapture parse_pcap(std::string_view bytes) {
  const Reader r{bytes};
  if (bytes.size() < 4) corrupt("file shorter than any capture magic");
  const std::uint32_t magic = r.u32(0, /*swap=*/false);
  if (magic == kBlockSection) return parse_pcapng(r);
  return parse_classic(r);
}

// -------------------------------------------------------------- flow folding

std::string trace_from_pcap(const PcapCapture& capture, const TraceOptions& options) {
  if (!(options.flow_gap_us > 0.0)) {
    throw std::invalid_argument{"trace_from_pcap: flow gap must be positive"};
  }

  struct Flow {
    std::uint64_t start_ns{0};
    std::uint64_t last_ns{0};
    std::uint32_t src{0};
    std::uint32_t dst{0};
    std::int64_t bytes{0};
    std::uint8_t proto{0};
  };
  using Tuple = std::tuple<std::uint32_t, std::uint32_t, std::uint8_t, std::uint16_t,
                           std::uint16_t>;

  std::map<std::uint32_t, std::uint32_t> port_of;  // IP address -> dense trace port id
  const auto port_for = [&port_of](std::uint32_t addr) {
    return port_of.emplace(addr, static_cast<std::uint32_t>(port_of.size())).first->second;
  };

  const auto gap_ns = static_cast<std::uint64_t>(options.flow_gap_us * 1000.0);
  std::map<Tuple, std::size_t> open;  // 5-tuple -> index of its current flow
  std::vector<Flow> flows;
  for (const PcapPacket& pkt : capture.packets) {
    if (pkt.src_addr == pkt.dst_addr || pkt.bytes == 0) continue;  // unreplayable
    const Tuple key{pkt.src_addr, pkt.dst_addr, pkt.proto, pkt.src_port, pkt.dst_port};
    const auto it = open.find(key);
    if (it != open.end() && pkt.time_ns >= flows[it->second].last_ns &&
        pkt.time_ns - flows[it->second].last_ns <= gap_ns) {
      Flow& f = flows[it->second];
      f.bytes += pkt.bytes;
      f.last_ns = pkt.time_ns;
      continue;
    }
    Flow f;
    f.start_ns = pkt.time_ns;
    f.last_ns = pkt.time_ns;
    f.src = port_for(pkt.src_addr);
    f.dst = port_for(pkt.dst_addr);
    f.bytes = pkt.bytes;
    f.proto = pkt.proto;
    open[key] = flows.size();
    flows.push_back(f);
  }
  if (flows.empty()) {
    throw std::invalid_argument{"trace_from_pcap: capture contains no usable IPv4 flows"};
  }

  std::stable_sort(flows.begin(), flows.end(),
                   [](const Flow& a, const Flow& b) { return a.start_ns < b.start_ns; });
  const std::uint64_t origin_ns = flows.front().start_ns;

  const bool with_deadlines = options.slo_rate_gbps > 0.0;
  std::string csv{"# generated by pcap2trace\n"};
  csv += with_deadlines ? "start_us,src,dst,bytes,priority,deadline_us\n"
                        : "start_us,src,dst,bytes,priority\n";
  for (const Flow& f : flows) {
    const int priority = f.proto == 17 ? 2 : (f.bytes >= options.elephant_bytes ? 1 : 0);
    char line[128];
    if (with_deadlines) {
      const double deadline_us =
          priority == 1 ? 0.0
                        : static_cast<double>(f.bytes) * 8.0 / (options.slo_rate_gbps * 1e3) +
                              options.slo_slack_us;
      std::snprintf(line, sizeof line, "%.3f,%u,%u,%lld,%d,%.3f\n",
                    static_cast<double>(f.start_ns - origin_ns) / 1000.0, f.src, f.dst,
                    static_cast<long long>(f.bytes), priority, deadline_us);
    } else {
      std::snprintf(line, sizeof line, "%.3f,%u,%u,%lld,%d\n",
                    static_cast<double>(f.start_ns - origin_ns) / 1000.0, f.src, f.dst,
                    static_cast<long long>(f.bytes), priority);
    }
    csv += line;
  }
  return csv;
}

}  // namespace xdrs::traffic
