#include "traffic/patterns.hpp"

#include <stdexcept>

namespace xdrs::traffic {

UniformChooser::UniformChooser(std::uint32_t ports) : ports_{ports} {
  if (ports < 2) throw std::invalid_argument{"UniformChooser: need >= 2 ports"};
}

net::PortId UniformChooser::pick(sim::Rng& rng, net::PortId src) {
  const auto d = static_cast<net::PortId>(rng.next_below(ports_ - 1));
  return d >= src ? d + 1 : d;  // skip the source port
}

PermutationChooser::PermutationChooser(std::uint32_t ports, std::uint32_t shift)
    : ports_{ports}, shift_{shift % ports} {
  if (ports < 2) throw std::invalid_argument{"PermutationChooser: need >= 2 ports"};
  if (shift_ == 0) shift_ = 1;  // identity would mean self-traffic
}

net::PortId PermutationChooser::pick(sim::Rng& /*rng*/, net::PortId src) {
  return (src + shift_) % ports_;
}

HotspotChooser::HotspotChooser(std::uint32_t ports, net::PortId hot, double hot_fraction)
    : ports_{ports}, hot_{hot}, hot_fraction_{hot_fraction}, uniform_{ports} {
  if (hot >= ports) throw std::invalid_argument{"HotspotChooser: hot port out of range"};
  if (hot_fraction < 0.0 || hot_fraction > 1.0) {
    throw std::invalid_argument{"HotspotChooser: fraction must be in [0, 1]"};
  }
}

net::PortId HotspotChooser::pick(sim::Rng& rng, net::PortId src) {
  if (src != hot_ && rng.bernoulli(hot_fraction_)) return hot_;
  return uniform_.pick(rng, src);
}

ShuffleChooser::ShuffleChooser(std::uint32_t ports) : ports_{ports}, next_(ports, 0) {
  if (ports < 2) throw std::invalid_argument{"ShuffleChooser: need >= 2 ports"};
}

net::PortId ShuffleChooser::pick(sim::Rng& /*rng*/, net::PortId src) {
  const std::uint32_t offset = 1 + next_[src] % (ports_ - 1);
  ++next_[src];
  return (src + offset) % ports_;
}

ZipfChooser::ZipfChooser(std::uint32_t ports, double skew)
    : ports_{ports}, sampler_{ports - 1, skew} {
  if (ports < 2) throw std::invalid_argument{"ZipfChooser: need >= 2 ports"};
}

net::PortId ZipfChooser::pick(sim::Rng& rng, net::PortId src) {
  const auto rank = static_cast<std::uint32_t>(sampler_.sample(rng));
  return (src + 1 + rank) % ports_;
}

// ---------------------------------------------------------------------------

FixedSize::FixedSize(std::int64_t bytes) : bytes_{bytes} {
  if (bytes <= 0) throw std::invalid_argument{"FixedSize: bytes must be positive"};
}

std::int64_t FixedSize::sample(sim::Rng& /*rng*/) { return bytes_; }

BimodalSize::BimodalSize(double small_fraction, std::int64_t small_bytes,
                         std::int64_t large_bytes)
    : small_fraction_{small_fraction}, small_bytes_{small_bytes}, large_bytes_{large_bytes} {
  if (small_fraction < 0.0 || small_fraction > 1.0) {
    throw std::invalid_argument{"BimodalSize: fraction must be in [0, 1]"};
  }
  if (small_bytes <= 0 || large_bytes < small_bytes) {
    throw std::invalid_argument{"BimodalSize: invalid sizes"};
  }
}

std::int64_t BimodalSize::sample(sim::Rng& rng) {
  return rng.bernoulli(small_fraction_) ? small_bytes_ : large_bytes_;
}

double BimodalSize::mean_bytes() const {
  return small_fraction_ * static_cast<double>(small_bytes_) +
         (1.0 - small_fraction_) * static_cast<double>(large_bytes_);
}

std::int64_t DatacenterPacketMix::sample(sim::Rng& rng) {
  const double u = rng.next_double();
  if (u < 0.50) return 64 + rng.uniform_int(0, 80);    // control / ACK
  if (u < 0.60) return 576;                            // legacy mid-size
  return sim::kMaxFrameBytes;                          // MTU data
}

double DatacenterPacketMix::mean_bytes() const {
  return 0.50 * 104.0 + 0.10 * 576.0 + 0.40 * static_cast<double>(sim::kMaxFrameBytes);
}

}  // namespace xdrs::traffic
