// Minimal, dependency-free packet-capture reader: real traces into the
// flow-trace workload without libpcap.
//
// Supports the two formats captures actually come in:
//
//   * classic pcap  — all four magics (both byte orders, microsecond and
//     nanosecond timestamps),
//   * pcapng        — Section Header / Interface Description / Enhanced
//     Packet blocks, per-section byte order, if_tsresol honoured.
//
// Link layers: Ethernet (VLAN tags skipped) and raw IPv4.  Anything that
// is not an IPv4 packet is counted, never an error — captures are full of
// ARP/IPv6/LLDP noise.  Structural corruption (truncated headers, bad
// magics, lying block lengths) throws std::invalid_argument.
//
// trace_from_pcap() then folds the packets into flows (5-tuple plus an
// idle-gap split) and renders the flow-trace CSV that
// traffic/trace_replay.hpp parses, mapping IP addresses to dense trace
// port ids — the bridge from a real capture to TraceReplayGenerator.
#ifndef XDRS_TRAFFIC_PCAP_HPP
#define XDRS_TRAFFIC_PCAP_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xdrs::traffic {

/// One captured IPv4 packet, already down to the fields flow folding needs.
struct PcapPacket {
  std::uint64_t time_ns{0};   ///< capture timestamp, ns since the epoch
  std::uint32_t src_addr{0};  ///< IPv4 addresses, host byte order
  std::uint32_t dst_addr{0};
  std::uint8_t proto{0};      ///< IP protocol (6 TCP, 17 UDP, ...)
  std::uint16_t src_port{0};  ///< 0 when not TCP/UDP or truncated by snaplen
  std::uint16_t dst_port{0};
  std::uint32_t bytes{0};     ///< original wire length, not the captured slice
};

struct PcapCapture {
  std::vector<PcapPacket> packets;  ///< in file order
  std::uint64_t skipped{0};         ///< non-IPv4 frames and packetless blocks
};

/// Parses a whole capture file's bytes (classic pcap or pcapng, detected by
/// magic).  Throws std::invalid_argument on structural corruption or an
/// unsupported link layer.
[[nodiscard]] PcapCapture parse_pcap(std::string_view bytes);

struct TraceOptions {
  /// Quiet time on a 5-tuple that splits it into a new flow; captures have
  /// no explicit flow boundaries, so long-lived connections become one
  /// flow per burst.
  double flow_gap_us{1000.0};
  /// Flows at or above this size are marked priority 1 (throughput); UDP
  /// flows are marked 2 (latency-sensitive), everything else 0.
  std::int64_t elephant_bytes{1'000'000};
  /// > 0 emits the optional deadline_us column: every non-elephant flow
  /// must complete within its transmission time at this rate plus
  /// `slo_slack_us`; elephants carry deadline 0 (no completion SLO).
  double slo_rate_gbps{0.0};
  double slo_slack_us{50.0};
};

/// Folds a capture into flows and renders the trace-replay CSV
/// (start_us,src,dst,bytes,priority[,deadline_us] — FlowTrace::parse
/// round-trips it).
/// IP addresses map to dense trace port ids in order of first appearance;
/// times are relative to the earliest flow.  Throws std::invalid_argument
/// when the capture contains no usable IPv4 flows.
[[nodiscard]] std::string trace_from_pcap(const PcapCapture& capture,
                                          const TraceOptions& options = {});

}  // namespace xdrs::traffic

#endif  // XDRS_TRAFFIC_PCAP_HPP
