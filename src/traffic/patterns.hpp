// Spatial traffic patterns (destination choice) and packet-size models.
//
// The destination pattern controls how hard scheduling is: uniform traffic
// flatters round-robin arbiters, permutation isolates pointer pathologies,
// hotspot/Zipf create the skew hybrid designs exist for.
#ifndef XDRS_TRAFFIC_PATTERNS_HPP
#define XDRS_TRAFFIC_PATTERNS_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/units.hpp"

namespace xdrs::traffic {

class DestinationChooser {
 public:
  virtual ~DestinationChooser() = default;
  /// Picks a destination for a packet from `src`; never returns `src`.
  [[nodiscard]] virtual net::PortId pick(sim::Rng& rng, net::PortId src) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Uniform over all ports except the source.
class UniformChooser final : public DestinationChooser {
 public:
  explicit UniformChooser(std::uint32_t ports);
  [[nodiscard]] net::PortId pick(sim::Rng& rng, net::PortId src) override;
  [[nodiscard]] std::string name() const override { return "uniform"; }

 private:
  std::uint32_t ports_;
};

/// Fixed permutation: src i always sends to (i + shift) mod N.
class PermutationChooser final : public DestinationChooser {
 public:
  PermutationChooser(std::uint32_t ports, std::uint32_t shift);
  [[nodiscard]] net::PortId pick(sim::Rng& rng, net::PortId src) override;
  [[nodiscard]] std::string name() const override { return "permutation"; }

 private:
  std::uint32_t ports_;
  std::uint32_t shift_;
};

/// With probability `hot_fraction` send to the hot port, else uniform.
class HotspotChooser final : public DestinationChooser {
 public:
  HotspotChooser(std::uint32_t ports, net::PortId hot, double hot_fraction);
  [[nodiscard]] net::PortId pick(sim::Rng& rng, net::PortId src) override;
  [[nodiscard]] std::string name() const override { return "hotspot"; }

 private:
  std::uint32_t ports_;
  net::PortId hot_;
  double hot_fraction_;
  UniformChooser uniform_;
};

/// MapReduce-shuffle destinations: every source walks its peers in rotating
/// order (src+1, src+2, ... mod N), so demand spreads all-to-all
/// deterministically — each mapper streaming a partition to each reducer in
/// turn, rather than sampling destinations.
class ShuffleChooser final : public DestinationChooser {
 public:
  explicit ShuffleChooser(std::uint32_t ports);
  [[nodiscard]] net::PortId pick(sim::Rng& rng, net::PortId src) override;
  [[nodiscard]] std::string name() const override { return "shuffle"; }

 private:
  std::uint32_t ports_;
  std::vector<std::uint32_t> next_;  ///< per-source rotation state
};

/// Zipf-ranked destinations: rank r maps to port (src + 1 + r) mod N, so
/// every source has its own skewed preference list (avoids all sources
/// converging on one port, which HotspotChooser covers).
class ZipfChooser final : public DestinationChooser {
 public:
  ZipfChooser(std::uint32_t ports, double skew);
  [[nodiscard]] net::PortId pick(sim::Rng& rng, net::PortId src) override;
  [[nodiscard]] std::string name() const override { return "zipf"; }

 private:
  std::uint32_t ports_;
  sim::ZipfSampler sampler_;
};

// ---------------------------------------------------------------------------

class SizeDistribution {
 public:
  virtual ~SizeDistribution() = default;
  [[nodiscard]] virtual std::int64_t sample(sim::Rng& rng) = 0;
  [[nodiscard]] virtual double mean_bytes() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

class FixedSize final : public SizeDistribution {
 public:
  explicit FixedSize(std::int64_t bytes);
  [[nodiscard]] std::int64_t sample(sim::Rng& rng) override;
  [[nodiscard]] double mean_bytes() const override { return static_cast<double>(bytes_); }
  [[nodiscard]] std::string name() const override { return "fixed"; }

 private:
  std::int64_t bytes_;
};

/// Classic datacenter bimodal wire mix: minimum-size control/ACK packets and
/// MTU-size data packets.
class BimodalSize final : public SizeDistribution {
 public:
  BimodalSize(double small_fraction, std::int64_t small_bytes = sim::kMinFrameBytes,
              std::int64_t large_bytes = sim::kMaxFrameBytes);
  [[nodiscard]] std::int64_t sample(sim::Rng& rng) override;
  [[nodiscard]] double mean_bytes() const override;
  [[nodiscard]] std::string name() const override { return "bimodal"; }

 private:
  double small_fraction_;
  std::int64_t small_bytes_;
  std::int64_t large_bytes_;
};

/// Three-point mixture approximating published DC packet-size CDFs
/// (Benson et al., IMC 2010): ~50% small (<=144B), ~10% mid (~576B),
/// ~40% MTU.
class DatacenterPacketMix final : public SizeDistribution {
 public:
  DatacenterPacketMix() = default;
  [[nodiscard]] std::int64_t sample(sim::Rng& rng) override;
  [[nodiscard]] double mean_bytes() const override;
  [[nodiscard]] std::string name() const override { return "dc-mix"; }
};

}  // namespace xdrs::traffic

#endif  // XDRS_TRAFFIC_PATTERNS_HPP
