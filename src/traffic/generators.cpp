#include "traffic/generators.hpp"

#include <algorithm>
#include <stdexcept>

namespace xdrs::traffic {

net::Packet TrafficGenerator::make_packet(net::PortId src, net::PortId dst, std::int64_t bytes,
                                          sim::Time now) {
  net::Packet p;
  p.id = next_packet_id_++;
  p.src = src;
  p.dst = dst;
  p.size_bytes = bytes;
  p.created_at = now;
  // Synthesise a plausible 5-tuple so classification has something to chew
  // on: address = 10.0.0.0/16 + port index.
  p.tuple.src_addr = 0x0a000000u | src;
  p.tuple.dst_addr = 0x0a000000u | dst;
  p.tuple.proto = net::IpProto::kUdp;
  ++stats_.packets;
  stats_.bytes += bytes;
  return p;
}

// --------------------------------------------------------------------- Poisson

PoissonGenerator::PoissonGenerator(Config cfg) : cfg_{std::move(cfg)}, rng_{cfg_.seed} {
  if (!cfg_.dest || !cfg_.size) throw std::invalid_argument{"PoissonGenerator: missing pattern"};
  if (cfg_.load < 0.0 || cfg_.load > 1.0) {
    throw std::invalid_argument{"PoissonGenerator: load must be in [0, 1]"};
  }
  if (cfg_.line_rate.is_zero()) throw std::invalid_argument{"PoissonGenerator: zero line rate"};
}

void PoissonGenerator::start(sim::Simulator& sim, Sink sink, sim::Time horizon) {
  if (cfg_.load == 0.0) return;
  sink_ = std::move(sink);
  // Mean inter-arrival achieving `load`: E[size+overhead] / (rate * load).
  const double mean_wire_bytes = cfg_.size->mean_bytes() + sim::kWireOverheadBytes;
  const double bytes_per_ps =
      static_cast<double>(cfg_.line_rate.bits_per_sec()) * cfg_.load / 8e12;
  mean_gap_ps_ = mean_wire_bytes / bytes_per_ps;
  arm(sim, horizon);
}

void PoissonGenerator::arm(sim::Simulator& sim, sim::Time horizon) {
  const auto gap = sim::Time::picoseconds(
      static_cast<std::int64_t>(rng_.exponential(mean_gap_ps_)));
  const sim::Time at = sim.now() + gap;
  if (at >= horizon) return;
  sim.schedule(gap, [this, &sim, horizon] {
    const net::PortId dst = cfg_.dest->pick(rng_, cfg_.src);
    const std::int64_t bytes = cfg_.size->sample(rng_);
    sink_(make_packet(cfg_.src, dst, bytes, sim.now()));
    arm(sim, horizon);
  });
}

// ---------------------------------------------------------------------- OnOff

OnOffGenerator::OnOffGenerator(Config cfg) : cfg_{std::move(cfg)}, rng_{cfg_.seed} {
  if (!cfg_.dest || !cfg_.size) throw std::invalid_argument{"OnOffGenerator: missing pattern"};
  if (cfg_.line_rate.is_zero()) throw std::invalid_argument{"OnOffGenerator: zero line rate"};
  if (cfg_.mean_on <= sim::Time::zero() || cfg_.mean_off < sim::Time::zero()) {
    throw std::invalid_argument{"OnOffGenerator: invalid period means"};
  }
  if (cfg_.pareto_shape <= 1.0) {
    // Shape <= 1 has infinite mean; the configured mean would be meaningless.
    throw std::invalid_argument{"OnOffGenerator: pareto shape must be > 1"};
  }
}

void OnOffGenerator::start(sim::Simulator& sim, Sink sink, sim::Time horizon) {
  sink_ = std::move(sink);
  begin_burst(sim, horizon);
}

void OnOffGenerator::begin_burst(sim::Simulator& sim, sim::Time horizon) {
  // Pareto with mean m and shape a has scale xm = m * (a - 1) / a.
  const auto pareto_time = [this](sim::Time mean) {
    const double xm = mean.sec() * (cfg_.pareto_shape - 1.0) / cfg_.pareto_shape;
    return sim::Time::seconds_f(rng_.pareto(cfg_.pareto_shape, xm));
  };

  const sim::Time off = cfg_.mean_off.is_zero() ? sim::Time::zero() : pareto_time(cfg_.mean_off);
  const sim::Time on = pareto_time(cfg_.mean_on);
  const sim::Time begin = sim.now() + off;
  if (begin >= horizon) return;

  sim.schedule(off, [this, &sim, horizon, on] {
    if (cfg_.new_dest_per_burst || flow_seq_ == 0) {
      burst_dst_ = cfg_.dest->pick(rng_, cfg_.src);
      ++flow_seq_;
    }
    burst_end_ = std::min(sim.now() + on, horizon);
    emit(sim, horizon);
  });
}

void OnOffGenerator::emit(sim::Simulator& sim, sim::Time horizon) {
  if (sim.now() >= burst_end_) {
    begin_burst(sim, horizon);
    return;
  }
  const std::int64_t bytes = cfg_.size->sample(rng_);
  net::Packet p = make_packet(cfg_.src, burst_dst_, bytes, sim.now());
  p.flow = (static_cast<std::uint64_t>(cfg_.src) << 32) | flow_seq_;
  p.tclass = net::TrafficClass::kThroughput;
  sink_(p);
  const sim::Time tx = cfg_.line_rate.transmission_time(bytes + sim::kWireOverheadBytes);
  sim.schedule(tx, [this, &sim, horizon] { emit(sim, horizon); });
}

// ------------------------------------------------------------------------ CBR

CbrGenerator::CbrGenerator(Config cfg) : cfg_{cfg} {
  if (cfg.packet_bytes <= 0) throw std::invalid_argument{"CbrGenerator: bad packet size"};
  if (cfg.period <= sim::Time::zero()) throw std::invalid_argument{"CbrGenerator: bad period"};
  if (cfg.src == cfg.dst) throw std::invalid_argument{"CbrGenerator: src == dst"};
}

void CbrGenerator::start(sim::Simulator& sim, Sink sink, sim::Time horizon) {
  sink_ = std::move(sink);
  sim.schedule(cfg_.phase, [this, &sim, horizon] { emit(sim, horizon); });
}

void CbrGenerator::emit(sim::Simulator& sim, sim::Time horizon) {
  if (sim.now() >= horizon) return;
  net::Packet p = make_packet(cfg_.src, cfg_.dst, cfg_.packet_bytes, sim.now());
  p.flow = (static_cast<std::uint64_t>(cfg_.src) << 32) | cfg_.dst;
  p.tclass = net::TrafficClass::kLatencySensitive;
  p.tuple.proto = net::IpProto::kUdp;
  p.tuple.dst_port = 5004;  // RTP
  sink_(p);
  sim.schedule(cfg_.period, [this, &sim, horizon] { emit(sim, horizon); });
}

// ---------------------------------------------------------------------- Flows

FlowGenerator::FlowGenerator(Config cfg)
    : cfg_{std::move(cfg)},
      rng_{cfg_.seed},
      deadline_{cfg_.deadline, cfg_.line_rate, cfg_.seed} {
  if (!cfg_.dest) throw std::invalid_argument{"FlowGenerator: missing destination chooser"};
  if (cfg_.line_rate.is_zero()) throw std::invalid_argument{"FlowGenerator: zero line rate"};
  if (cfg_.load < 0.0 || cfg_.load > 1.0) {
    throw std::invalid_argument{"FlowGenerator: load must be in [0, 1]"};
  }
  if (cfg_.elephant_fraction < 0.0 || cfg_.elephant_fraction > 1.0) {
    throw std::invalid_argument{"FlowGenerator: elephant fraction must be in [0, 1]"};
  }
  if (cfg_.elephant_shape <= 1.0) {
    throw std::invalid_argument{"FlowGenerator: elephant shape must be > 1"};
  }
}

double FlowGenerator::mean_flow_bytes() const {
  if (cfg_.size) return cfg_.size->mean_bytes();
  const double elephant_mean = static_cast<double>(cfg_.elephant_min_bytes) *
                               cfg_.elephant_shape / (cfg_.elephant_shape - 1.0);
  return (1.0 - cfg_.elephant_fraction) * static_cast<double>(cfg_.mice_mean_bytes) +
         cfg_.elephant_fraction * elephant_mean;
}

void FlowGenerator::start(sim::Simulator& sim, Sink sink, sim::Time horizon) {
  if (cfg_.load == 0.0) return;
  sink_ = std::move(sink);
  next_flow(sim, horizon);
}

void FlowGenerator::next_flow(sim::Simulator& sim, sim::Time horizon) {
  // Flow arrival rate achieving the byte load: load * rate / mean flow size.
  const double bytes_per_ps =
      static_cast<double>(cfg_.line_rate.bits_per_sec()) * cfg_.load / 8e12;
  const double mean_gap_ps = mean_flow_bytes() / bytes_per_ps;
  const auto gap =
      sim::Time::picoseconds(static_cast<std::int64_t>(rng_.exponential(mean_gap_ps)));
  if (sim.now() + gap >= horizon) return;

  sim.schedule(gap, [this, &sim, horizon] {
    bool elephant = false;
    std::int64_t size = 0;
    if (cfg_.size) {
      // Explicit size model (empirical CDF): the draw decides the size and
      // the elephant threshold only the traffic-class marking.
      size = cfg_.size->sample(rng_);
      elephant = size >= cfg_.elephant_min_bytes;
    } else if (rng_.bernoulli(cfg_.elephant_fraction)) {
      elephant = true;
      size = static_cast<std::int64_t>(
          rng_.pareto(cfg_.elephant_shape, static_cast<double>(cfg_.elephant_min_bytes)));
    } else {
      size = std::max<std::int64_t>(
          sim::kMinFrameBytes,
          static_cast<std::int64_t>(rng_.exponential(static_cast<double>(cfg_.mice_mean_bytes))));
    }
    const net::PortId dst = cfg_.dest->pick(rng_, cfg_.src);
    const net::FlowId flow = (static_cast<std::uint64_t>(cfg_.src) << 32) | ++flow_seq_;
    const sim::Time deadline = deadline_.assign(sim.now(), size);
    stream(sim, horizon, dst, size, flow, elephant, size, deadline);
    next_flow(sim, horizon);
  });
}

void FlowGenerator::stream(sim::Simulator& sim, sim::Time horizon, net::PortId dst,
                           std::int64_t remaining, net::FlowId flow, bool elephant,
                           std::int64_t flow_bytes, sim::Time deadline) {
  if (remaining <= 0 || sim.now() >= horizon) return;
  const std::int64_t bytes = std::min(cfg_.packet_bytes, remaining);
  net::Packet p = make_packet(cfg_.src, dst, bytes, sim.now());
  p.flow = flow;
  p.tclass = elephant ? net::TrafficClass::kThroughput : net::TrafficClass::kBestEffort;
  p.tuple.proto = net::IpProto::kTcp;
  p.tuple.src_port = static_cast<std::uint16_t>(flow & 0xffff);
  p.deadline = deadline;
  p.flow_bytes = flow_bytes;
  sink_(p);
  const sim::Time tx = cfg_.line_rate.transmission_time(bytes + sim::kWireOverheadBytes);
  sim.schedule(tx, [this, &sim, horizon, dst, remaining, bytes, flow, elephant, flow_bytes,
                    deadline] {
    stream(sim, horizon, dst, remaining - bytes, flow, elephant, flow_bytes, deadline);
  });
}

// --------------------------------------------------------------------- Incast

IncastGenerator::IncastGenerator(Config cfg)
    : cfg_{std::move(cfg)}, rng_{cfg_.seed}, deadline_{cfg_.deadline, cfg_.line_rate, cfg_.seed} {
  if (cfg_.ports < 2) throw std::invalid_argument{"IncastGenerator: need >= 2 ports"};
  if (cfg_.aggregator >= cfg_.ports) {
    throw std::invalid_argument{"IncastGenerator: aggregator out of range"};
  }
  if (cfg_.fan_in > cfg_.ports - 1) {
    throw std::invalid_argument{"IncastGenerator: fan-in exceeds worker count"};
  }
  if (cfg_.response_bytes <= 0 || cfg_.packet_bytes <= 0) {
    throw std::invalid_argument{"IncastGenerator: sizes must be positive"};
  }
  if (cfg_.period <= sim::Time::zero()) {
    throw std::invalid_argument{"IncastGenerator: period must be positive"};
  }
  if (cfg_.line_rate.is_zero()) throw std::invalid_argument{"IncastGenerator: zero line rate"};
  if (cfg_.fan_in == 0) cfg_.fan_in = cfg_.ports - 1;
}

void IncastGenerator::start(sim::Simulator& sim, Sink sink, sim::Time horizon) {
  sink_ = std::move(sink);
  fire_round(sim, horizon);
}

void IncastGenerator::fire_round(sim::Simulator& sim, sim::Time horizon) {
  if (sim.now() >= horizon) return;
  ++round_;
  // Round-robin worker selection with a random rotation per round.
  const std::uint32_t workers = cfg_.ports - 1;
  const auto rotation = static_cast<std::uint32_t>(rng_.next_below(workers));
  for (std::uint32_t k = 0; k < cfg_.fan_in; ++k) {
    std::uint32_t w = (rotation + k) % workers;
    if (w >= cfg_.aggregator) ++w;  // skip the aggregator's own port
    const net::FlowId flow = (round_ << 16) | w;
    const sim::Time deadline = deadline_.assign(sim.now(), cfg_.response_bytes);
    stream(sim, horizon, w, cfg_.response_bytes, flow, deadline);
  }
  sim.schedule(cfg_.period, [this, &sim, horizon] { fire_round(sim, horizon); });
}

void IncastGenerator::stream(sim::Simulator& sim, sim::Time horizon, net::PortId worker,
                             std::int64_t remaining, net::FlowId flow, sim::Time deadline) {
  if (remaining <= 0 || sim.now() >= horizon) return;
  const std::int64_t bytes = std::min(cfg_.packet_bytes, remaining);
  net::Packet p = make_packet(worker, cfg_.aggregator, bytes, sim.now());
  p.flow = flow;
  p.tclass = net::TrafficClass::kThroughput;
  p.deadline = deadline;
  p.flow_bytes = cfg_.response_bytes;
  sink_(p);
  const sim::Time tx = cfg_.line_rate.transmission_time(bytes + sim::kWireOverheadBytes);
  sim.schedule(tx, [this, &sim, horizon, worker, remaining, bytes, flow, deadline] {
    stream(sim, horizon, worker, remaining - bytes, flow, deadline);
  });
}

}  // namespace xdrs::traffic
