// Per-flow deadline / SLO assignment models.
//
// The related work fights over exactly one axis our testbed could not
// express: flows that must FINISH by a time, not merely finish fast.  PDQ
// ("Finishing Flows Quickly with Preemptive Scheduling") cuts missed
// deadlines ~3x with deadline-aware preemption; "To schedule or not to
// schedule" argues simple policies win in identifiable regimes.  This
// module gives every flow source a pluggable deadline model so scenarios
// can ask that question on our own switch:
//
//   kNone   no deadline (the default; byte-identical to the pre-deadline
//           behaviour — the assigner draws from its OWN rng stream, so
//           enabling or disabling deadlines never perturbs arrival or
//           size randomness)
//   kFixed  deadline = flow start + fixed offset (hard per-request SLA)
//   kSlo    deadline = flow start + bytes / (slo_fraction * line_rate)
//           + slack — the size-proportional SLO of PDQ/D3-style studies:
//           a flow is "on time" if it achieves a fraction of line rate
//   kCdf    like kSlo, but the byte budget is drawn from an empirical CDF
//           (e.g. the websearch mix) instead of the flow's own size, so
//           deadline tightness is distributed like real flow sizes and
//           decoupled from the individual flow
//
// Deadlines are stamped on every packet of the flow as an ABSOLUTE
// simulation time (net::Packet::deadline, zero = none) together with the
// flow's total size (net::Packet::flow_bytes), which is what lets the
// completion recorder and the deadline-aware policies operate without any
// out-of-band flow table.
#ifndef XDRS_TRAFFIC_DEADLINE_HPP
#define XDRS_TRAFFIC_DEADLINE_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"

namespace xdrs::traffic {

class EmpiricalCdf;

/// Declarative description of a deadline model; lives in workload specs and
/// generator configs, and renders into scenario identity JSON.
struct DeadlineSpec {
  enum class Kind : std::uint8_t { kNone, kFixed, kSlo, kCdf };

  Kind kind{Kind::kNone};
  sim::Time fixed{};           ///< kFixed: offset added to the flow start
  double slo_fraction{0.25};   ///< kSlo/kCdf: SLO rate as a fraction of line rate
  sim::Time slack{};           ///< kSlo/kCdf: slack added to the byte budget
  std::string cdf_path;        ///< kCdf: byte budgets drawn from this CDF

  [[nodiscard]] bool enabled() const noexcept { return kind != Kind::kNone; }
};

/// Stable lowercase name for identity JSON ("none", "fixed", "slo", "cdf").
[[nodiscard]] const char* to_string(DeadlineSpec::Kind k) noexcept;

/// Applies a DeadlineSpec to a stream of flows.  Owns a private rng stream
/// (seeded independently of the generator's arrival/size randomness) so the
/// kNone configuration replays the exact pre-deadline packet sequence.
class DeadlineAssigner {
 public:
  /// Disabled assigner: assign() always returns "no deadline".
  DeadlineAssigner() = default;

  /// `seed` is the owning generator's workload seed; the assigner forks a
  /// dedicated child stream from it.  Throws (via EmpiricalCdf::load) when a
  /// kCdf spec names an unreadable or malformed CDF file.
  DeadlineAssigner(const DeadlineSpec& spec, sim::DataRate line_rate, std::uint64_t seed);

  /// Absolute deadline for a flow of `flow_bytes` starting at `flow_start`,
  /// or Time::zero() when the model is kNone.  Deterministic given the
  /// construction seed and call order.
  [[nodiscard]] sim::Time assign(sim::Time flow_start, std::int64_t flow_bytes);

  [[nodiscard]] bool enabled() const noexcept { return spec_.enabled(); }
  [[nodiscard]] const DeadlineSpec& spec() const noexcept { return spec_; }

 private:
  DeadlineSpec spec_{};
  sim::DataRate slo_rate_{};  ///< slo_fraction * line_rate, floored at 1 bps
  std::shared_ptr<const EmpiricalCdf> cdf_;
  sim::Rng rng_{0};
};

}  // namespace xdrs::traffic

#endif  // XDRS_TRAFFIC_DEADLINE_HPP
