// Packet and flow sources.
//
// Each generator drives one ingress port of the hybrid switch, scheduling
// itself on the simulator and handing finished packets to a sink (the
// framework's processing logic).  All randomness flows from an explicit
// seed; identical configurations replay identical workloads.
#ifndef XDRS_TRAFFIC_GENERATORS_HPP
#define XDRS_TRAFFIC_GENERATORS_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"
#include "traffic/deadline.hpp"
#include "traffic/patterns.hpp"

namespace xdrs::traffic {

struct GeneratorStats {
  std::uint64_t packets{0};
  std::int64_t bytes{0};
};

class TrafficGenerator {
 public:
  using Sink = std::function<void(const net::Packet&)>;

  virtual ~TrafficGenerator() = default;

  /// Begins emitting packets into `sink` until `horizon` (exclusive).
  virtual void start(sim::Simulator& sim, Sink sink, sim::Time horizon) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] const GeneratorStats& stats() const noexcept { return stats_; }

  // ---- ingress-queue statistics ------------------------------------------
  // Generators that model a buffering stage in front of the switch (the
  // rack-aggregation uplink FIFO, topo::RackAggregator) report it through
  // these; plain per-port sources have no queue and return zeros.  The
  // framework folds them into RunReport::peak_uplink_queue_bytes /
  // uplink_drops at finalize.
  [[nodiscard]] virtual std::int64_t peak_queue_bytes() const noexcept { return 0; }
  [[nodiscard]] virtual std::uint64_t queue_drops() const noexcept { return 0; }
  /// Restarts the peak high-water mark (measurement-window boundary).
  virtual void reset_queue_peak() noexcept {}

 protected:
  net::Packet make_packet(net::PortId src, net::PortId dst, std::int64_t bytes, sim::Time now);

  GeneratorStats stats_;

 private:
  std::uint64_t next_packet_id_{1};
};

/// Poisson packet arrivals at a target load (fraction of `line_rate`),
/// destinations and sizes from pluggable patterns.
class PoissonGenerator final : public TrafficGenerator {
 public:
  struct Config {
    net::PortId src{0};
    sim::DataRate line_rate{};
    double load{0.5};  ///< in [0, 1]; fraction of line rate offered
    std::shared_ptr<DestinationChooser> dest;
    std::shared_ptr<SizeDistribution> size;
    std::uint64_t seed{1};
  };

  explicit PoissonGenerator(Config cfg);

  void start(sim::Simulator& sim, Sink sink, sim::Time horizon) override;
  [[nodiscard]] std::string name() const override { return "poisson"; }

 private:
  void arm(sim::Simulator& sim, sim::Time horizon);

  Config cfg_;
  sim::Rng rng_;
  Sink sink_;
  double mean_gap_ps_{0.0};
};

/// Markov-modulated ON/OFF source: Pareto-distributed ON and OFF periods,
/// back-to-back packets at line rate while ON — "long bursts of traffic"
/// (paper §1), the workload OCS circuits exist to serve.
class OnOffGenerator final : public TrafficGenerator {
 public:
  struct Config {
    net::PortId src{0};
    sim::DataRate line_rate{};
    sim::Time mean_on{sim::Time::microseconds(100)};
    sim::Time mean_off{sim::Time::microseconds(100)};
    double pareto_shape{1.5};  ///< heavy-tailed periods for shape <= 2
    std::shared_ptr<DestinationChooser> dest;
    std::shared_ptr<SizeDistribution> size;
    bool new_dest_per_burst{true};  ///< one destination per burst (a "flow")
    std::uint64_t seed{1};
  };

  explicit OnOffGenerator(Config cfg);

  void start(sim::Simulator& sim, Sink sink, sim::Time horizon) override;
  [[nodiscard]] std::string name() const override { return "onoff-pareto"; }

 private:
  void begin_burst(sim::Simulator& sim, sim::Time horizon);
  void emit(sim::Simulator& sim, sim::Time horizon);

  Config cfg_;
  sim::Rng rng_;
  Sink sink_;
  net::PortId burst_dst_{0};
  sim::Time burst_end_{};
  std::uint64_t flow_seq_{0};
};

/// Constant-bit-rate source with fixed packet size and period: G.711-style
/// VOIP (160 B payload every 20 ms scaled down to simulation horizons) or
/// gaming update streams.  Latency-sensitive class by construction.
class CbrGenerator final : public TrafficGenerator {
 public:
  struct Config {
    net::PortId src{0};
    net::PortId dst{0};
    std::int64_t packet_bytes{200};
    sim::Time period{sim::Time::microseconds(20)};
    sim::Time phase{};  ///< offset of the first packet
    std::uint64_t seed{1};
  };

  explicit CbrGenerator(Config cfg);

  void start(sim::Simulator& sim, Sink sink, sim::Time horizon) override;
  [[nodiscard]] std::string name() const override { return "cbr"; }

 private:
  void emit(sim::Simulator& sim, sim::Time horizon);

  Config cfg_;
  Sink sink_;
};

/// Flow-level source: flows arrive as a Poisson process; each flow draws a
/// size from a mice/elephant mixture — or from an explicit SizeDistribution
/// (e.g. an empirical websearch/datamining CDF) — and streams it at the
/// host NIC rate.  This is the workload the hybrid split experiment (E5)
/// sweeps.
class FlowGenerator final : public TrafficGenerator {
 public:
  struct Config {
    net::PortId src{0};
    sim::DataRate line_rate{};
    double load{0.5};
    /// Mice: short flows; elephants: Pareto-tailed long flows.
    std::int64_t mice_mean_bytes{20'000};
    std::int64_t elephant_min_bytes{1'000'000};
    double elephant_shape{1.2};
    double elephant_fraction{0.1};  ///< of flows (by count)
    /// Optional flow-size model replacing the mixture above: when set,
    /// every flow size is one sample() and elephant_min_bytes only decides
    /// the traffic-class marking.  traffic::EmpiricalSize plugs in here.
    std::shared_ptr<SizeDistribution> size;
    std::int64_t packet_bytes{sim::kMaxFrameBytes};
    std::shared_ptr<DestinationChooser> dest;
    /// Optional deadline model; every flow's deadline is stamped on all of
    /// its packets.  kNone replays the pre-deadline packet sequence exactly
    /// (the assigner draws from its own rng stream).
    DeadlineSpec deadline{};
    std::uint64_t seed{1};
  };

  explicit FlowGenerator(Config cfg);

  void start(sim::Simulator& sim, Sink sink, sim::Time horizon) override;
  [[nodiscard]] std::string name() const override { return "flows"; }

  [[nodiscard]] std::uint64_t flows_started() const noexcept { return flow_seq_; }

 private:
  void next_flow(sim::Simulator& sim, sim::Time horizon);
  void stream(sim::Simulator& sim, sim::Time horizon, net::PortId dst, std::int64_t remaining,
              net::FlowId flow, bool elephant, std::int64_t flow_bytes, sim::Time deadline);
  [[nodiscard]] double mean_flow_bytes() const;

  Config cfg_;
  sim::Rng rng_;
  DeadlineAssigner deadline_;
  Sink sink_;
  std::uint64_t flow_seq_{0};
};

/// Incast: the partition/aggregate pattern — every `period`, `fan_in`
/// workers simultaneously stream a `response_bytes` answer to the same
/// aggregator port, all paced at line rate.  The hardest case for an
/// input-queued hybrid switch: instant many-to-one contention.
class IncastGenerator final : public TrafficGenerator {
 public:
  struct Config {
    net::PortId aggregator{0};
    std::uint32_t ports{0};          ///< switch size; workers = other ports
    std::uint32_t fan_in{0};         ///< workers per round (0 = all others)
    std::int64_t response_bytes{64'000};
    std::int64_t packet_bytes{sim::kMaxFrameBytes};
    sim::Time period{sim::Time::milliseconds(1)};
    sim::DataRate line_rate{};
    /// Optional per-request SLO: each worker's response flow gets a deadline
    /// relative to the round's fire time (rpc_slo scenario).
    DeadlineSpec deadline{};
    std::uint64_t seed{1};
  };

  explicit IncastGenerator(Config cfg);

  void start(sim::Simulator& sim, Sink sink, sim::Time horizon) override;
  [[nodiscard]] std::string name() const override { return "incast"; }

  [[nodiscard]] std::uint64_t rounds() const noexcept { return round_; }

 private:
  void fire_round(sim::Simulator& sim, sim::Time horizon);
  void stream(sim::Simulator& sim, sim::Time horizon, net::PortId worker,
              std::int64_t remaining, net::FlowId flow, sim::Time deadline);

  Config cfg_;
  sim::Rng rng_;
  DeadlineAssigner deadline_;
  Sink sink_;
  std::uint64_t round_{0};
};

}  // namespace xdrs::traffic

#endif  // XDRS_TRAFFIC_GENERATORS_HPP
