#include "traffic/deadline.hpp"

#include <algorithm>
#include <cmath>

#include "traffic/empirical_cdf.hpp"

namespace xdrs::traffic {
namespace {

/// Tag for the assigner's forked rng stream; any constant works as long as
/// it is fixed — determinism comes from the fork, independence from the tag
/// being reserved for deadlines.
constexpr std::uint64_t kDeadlineStreamTag = 0xD15C0DEADULL;

}  // namespace

const char* to_string(DeadlineSpec::Kind k) noexcept {
  switch (k) {
    case DeadlineSpec::Kind::kNone:
      return "none";
    case DeadlineSpec::Kind::kFixed:
      return "fixed";
    case DeadlineSpec::Kind::kSlo:
      return "slo";
    case DeadlineSpec::Kind::kCdf:
      return "cdf";
  }
  return "none";
}

DeadlineAssigner::DeadlineAssigner(const DeadlineSpec& spec, sim::DataRate line_rate,
                                   std::uint64_t seed)
    : spec_{spec}, rng_{sim::Rng{seed}.fork(kDeadlineStreamTag)} {
  if (spec_.kind == DeadlineSpec::Kind::kSlo || spec_.kind == DeadlineSpec::Kind::kCdf) {
    const double fraction = std::clamp(spec_.slo_fraction, 1e-6, 1.0);
    const auto bps = static_cast<std::int64_t>(
        std::llround(static_cast<double>(line_rate.bits_per_sec()) * fraction));
    slo_rate_ = sim::DataRate::bps(std::max<std::int64_t>(1, bps));
  }
  if (spec_.kind == DeadlineSpec::Kind::kCdf) cdf_ = load_cdf_cached(spec_.cdf_path);
}

sim::Time DeadlineAssigner::assign(sim::Time flow_start, std::int64_t flow_bytes) {
  switch (spec_.kind) {
    case DeadlineSpec::Kind::kNone:
      return sim::Time::zero();
    case DeadlineSpec::Kind::kFixed:
      return flow_start + spec_.fixed;
    case DeadlineSpec::Kind::kSlo:
      return flow_start + slo_rate_.transmission_time(std::max<std::int64_t>(1, flow_bytes)) +
             spec_.slack;
    case DeadlineSpec::Kind::kCdf: {
      // Budget bytes drawn from the CDF (NOT the flow's own size): tightness
      // is distributed like real flow sizes, so small flows can get loose
      // deadlines and large flows impossible ones — the regime PDQ studies.
      const std::int64_t budget = cdf_->quantile(rng_.next_double());
      return flow_start + slo_rate_.transmission_time(std::max<std::int64_t>(1, budget)) +
             spec_.slack;
    }
  }
  return sim::Time::zero();
}

}  // namespace xdrs::traffic
