#include "traffic/trace_replay.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/content_cache.hpp"
#include "util/file_io.hpp"
#include "util/hash.hpp"
#include "util/parse.hpp"

namespace xdrs::traffic {

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  throw std::invalid_argument{"FlowTrace: line " + std::to_string(line) + ": " + what};
}

using util::parse_number;

std::vector<std::string_view> split(std::string_view line, char sep) {
  std::vector<std::string_view> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = line.find(sep, begin);
    if (end == std::string_view::npos) {
      out.push_back(line.substr(begin));
      return out;
    }
    out.push_back(line.substr(begin, end - begin));
    begin = end + 1;
  }
}

net::TrafficClass class_of(std::uint8_t priority) noexcept {
  switch (priority) {
    case 2: return net::TrafficClass::kLatencySensitive;
    case 1: return net::TrafficClass::kThroughput;
    default: return net::TrafficClass::kBestEffort;
  }
}

}  // namespace

FlowTrace FlowTrace::parse(std::string_view csv) {
  FlowTrace trace;
  std::size_t line_no = 0;
  bool saw_header_candidate = false;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t eol = csv.find('\n', pos);
    std::string_view line =
        csv.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? csv.size() + 1 : eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    // One optional header line, before any record.
    if (!saw_header_candidate && trace.records.empty() &&
        (line == "start_us,src,dst,bytes" || line == "start_us,src,dst,bytes,priority" ||
         line == "start_us,src,dst,bytes,priority,deadline_us")) {
      saw_header_candidate = true;
      continue;
    }

    const std::vector<std::string_view> cells = split(line, ',');
    if (cells.size() < 4 || cells.size() > 6) {
      parse_error(line_no, "expected start_us,src,dst,bytes[,priority[,deadline_us]] (got " +
                               std::to_string(cells.size()) + " fields)");
    }

    TraceRecord rec;
    double start_us = 0.0;
    if (!parse_number(cells[0], start_us) || !(start_us >= 0.0) || !std::isfinite(start_us)) {
      parse_error(line_no, "bad start_us '" + std::string{cells[0]} + "'");
    }
    // Bound before the ps conversion: llround overflow is not UB-checked,
    // and a silently wrapped timestamp would corrupt the whole replay.
    // 1e12 us (~11.5 days) is far beyond any trace and far within int64 ps.
    if (start_us > 1e12) {
      parse_error(line_no, "start_us '" + std::string{cells[0]} + "' out of range (max 1e12)");
    }
    rec.start = sim::Time::picoseconds(static_cast<std::int64_t>(std::llround(start_us * 1e6)));
    if (!parse_number(cells[1], rec.src)) {
      parse_error(line_no, "bad src '" + std::string{cells[1]} + "'");
    }
    if (!parse_number(cells[2], rec.dst)) {
      parse_error(line_no, "bad dst '" + std::string{cells[2]} + "'");
    }
    if (rec.src == rec.dst) parse_error(line_no, "src == dst");
    if (!parse_number(cells[3], rec.bytes) || rec.bytes <= 0) {
      parse_error(line_no, "bad bytes '" + std::string{cells[3]} + "' (must be positive)");
    }
    if (cells.size() >= 5) {
      unsigned priority = 0;
      if (!parse_number(cells[4], priority) || priority > 2) {
        parse_error(line_no, "bad priority '" + std::string{cells[4]} + "' (must be 0, 1 or 2)");
      }
      rec.priority = static_cast<std::uint8_t>(priority);
    }
    if (cells.size() == 6) {
      // Completion SLO relative to the flow's own start; 0 = explicitly no
      // deadline, so a mixed trace can constrain only some flows.
      double deadline_us = 0.0;
      if (!parse_number(cells[5], deadline_us) || !(deadline_us >= 0.0) ||
          !std::isfinite(deadline_us)) {
        parse_error(line_no, "bad deadline_us '" + std::string{cells[5]} + "'");
      }
      if (deadline_us > 1e12) {
        parse_error(line_no,
                    "deadline_us '" + std::string{cells[5]} + "' out of range (max 1e12)");
      }
      rec.deadline =
          sim::Time::picoseconds(static_cast<std::int64_t>(std::llround(deadline_us * 1e6)));
    }
    if (!trace.records.empty() && rec.start < trace.records.back().start) {
      parse_error(line_no, "records must be time-sorted (start_us decreased)");
    }

    // Record indices must fit the 32-bit half of the replay FlowId
    // ((lap << 32) | index); at ~40 bytes a record this cap is far past
    // available memory anyway, so enforce it rather than alias flow ids.
    if (trace.records.size() >= 0xffffffffull) {
      parse_error(line_no, "trace too large (more than 2^32 - 1 records)");
    }
    trace.max_port = std::max({trace.max_port, rec.src, rec.dst});
    trace.total_bytes += rec.bytes;
    trace.span = rec.start;
    trace.records.push_back(rec);
  }
  if (trace.records.empty()) throw std::invalid_argument{"FlowTrace: trace has no records"};
  return trace;
}

FlowTrace FlowTrace::load(const std::string& path) {
  const std::optional<std::string> raw = util::read_file(path);
  if (!raw) throw std::runtime_error{"FlowTrace: cannot read '" + path + "'"};
  return parse(*raw);
}

std::uint64_t trace_digest(std::string_view bytes) { return util::fnv1a(bytes); }

namespace {

util::FileContentCache<FlowTrace>& trace_cache() {
  static util::FileContentCache<FlowTrace> cache;
  return cache;
}

}  // namespace

std::string trace_digest_hex(const std::string& path) { return trace_cache().digest_hex(path); }

std::shared_ptr<const FlowTrace> load_trace_cached(const std::string& path) {
  return trace_cache().load(path, &FlowTrace::parse, "FlowTrace");
}

// ---------------------------------------------------------- TraceReplayGenerator

TraceReplayGenerator::TraceReplayGenerator(Config cfg) : cfg_{std::move(cfg)} {
  if (cfg_.trace == nullptr || cfg_.trace->records.empty()) {
    throw std::invalid_argument{"TraceReplayGenerator: empty trace"};
  }
  if (cfg_.ports < 2) throw std::invalid_argument{"TraceReplayGenerator: need >= 2 ports"};
  if (cfg_.line_rate.is_zero()) {
    throw std::invalid_argument{"TraceReplayGenerator: zero line rate"};
  }
  if (!(cfg_.load > 0.0) || cfg_.load > 1.0) {
    throw std::invalid_argument{"TraceReplayGenerator: load must be in (0, 1]"};
  }
  if (cfg_.packet_bytes <= 0) {
    throw std::invalid_argument{"TraceReplayGenerator: packet size must be positive"};
  }

  // Time scaling: stretch/compress the trace's time axis so the aggregate
  // offered rate is `load` x ports x line_rate.  The lap period is fully
  // determined by the byte total and the target rate, so a trace recorded
  // at any rate drives any simulated load.
  const double target_bytes_per_ps = static_cast<double>(cfg_.ports) *
                                     static_cast<double>(cfg_.line_rate.bits_per_sec()) *
                                     cfg_.load / 8e12;
  const double scaled_span_ps =
      static_cast<double>(cfg_.trace->total_bytes) / target_bytes_per_ps;
  scaled_span_ = sim::Time::picoseconds(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(scaled_span_ps))));
  const double trace_span_ps = static_cast<double>(cfg_.trace->span.ps());
  time_scale_ = trace_span_ps > 0.0 ? scaled_span_ps / trace_span_ps : 0.0;

  rebuild_remap();
}

void TraceReplayGenerator::rebuild_remap() {
  // A fresh lap-indexed stream (not rng_'s running state) keeps the table a
  // pure function of (seed, lap): replays are identical however many other
  // draws happened, and each lap decorrelates from the last.
  sim::Rng lap_rng = sim::Rng{cfg_.seed}.fork(lap_);
  remap_.resize(static_cast<std::size_t>(cfg_.trace->max_port) + 1);
  for (auto& port : remap_) {
    port = static_cast<net::PortId>(lap_rng.next_below(cfg_.ports));
  }
}

sim::Time TraceReplayGenerator::scaled_start(std::size_t i) const {
  const sim::Time start = cfg_.trace->records.at(i).start;
  return sim::Time::picoseconds(
      static_cast<std::int64_t>(std::llround(static_cast<double>(start.ps()) * time_scale_)));
}

void TraceReplayGenerator::start(sim::Simulator& sim, Sink sink, sim::Time horizon) {
  sink_ = std::move(sink);
  lap_origin_ = sim.now();
  arm_next(sim, horizon);
}

void TraceReplayGenerator::arm_next(sim::Simulator& sim, sim::Time horizon) {
  // Loop the trace: after the last record the next lap starts one scaled
  // span after this lap's origin, with a fresh remap table.
  if (next_record_ >= cfg_.trace->records.size()) {
    next_record_ = 0;
    lap_origin_ = lap_origin_ + scaled_span_;
    ++lap_;
    rebuild_remap();
  }
  const std::size_t index = next_record_++;
  const sim::Time at = lap_origin_ + scaled_start(index);
  if (at >= horizon) return;
  sim.schedule(at - sim.now(), [this, &sim, horizon, index, lap = lap_] {
    const TraceRecord& rec = cfg_.trace->records[index];
    const net::FlowId flow = (lap << 32) | static_cast<net::FlowId>(index);
    launch(sim, horizon, rec, flow);
    arm_next(sim, horizon);
  });
}

void TraceReplayGenerator::launch(sim::Simulator& sim, sim::Time horizon, const TraceRecord& rec,
                                  net::FlowId flow) {
  const net::PortId src = remap_[rec.src];
  net::PortId dst = remap_[rec.dst];
  if (dst == src) dst = (dst + 1) % cfg_.ports;  // remap collision: shift off the source
  // The SLO offset is deliberately NOT time-scaled: scaling adjusts the
  // arrival process to hit the target load, but how long a flow may take is
  // a property of the flow itself.
  const sim::Time deadline = rec.deadline.is_zero() ? sim::Time::zero()
                                                    : sim.now() + rec.deadline;
  stream(sim, horizon, src, dst, rec.bytes, flow, class_of(rec.priority), rec.bytes, deadline);
}

void TraceReplayGenerator::stream(sim::Simulator& sim, sim::Time horizon, net::PortId src,
                                  net::PortId dst, std::int64_t remaining, net::FlowId flow,
                                  net::TrafficClass tclass, std::int64_t flow_bytes,
                                  sim::Time deadline) {
  if (remaining <= 0 || sim.now() >= horizon) return;
  const std::int64_t bytes = std::min(cfg_.packet_bytes, remaining);
  net::Packet p = make_packet(src, dst, bytes, sim.now());
  p.flow = flow;
  p.tclass = tclass;
  p.deadline = deadline;
  p.flow_bytes = flow_bytes;
  if (tclass == net::TrafficClass::kLatencySensitive) {
    p.tuple.proto = net::IpProto::kUdp;
    p.tuple.dst_port = 5004;  // RTP, so the classifier agrees with the marking
  } else {
    p.tuple.proto = net::IpProto::kTcp;
    p.tuple.src_port = static_cast<std::uint16_t>(flow & 0xffff);
  }
  sink_(p);
  if (remaining <= bytes) return;  // flow finished: no dead continuation event
  const sim::Time tx = cfg_.line_rate.transmission_time(bytes + sim::kWireOverheadBytes);
  sim.schedule(tx, [this, &sim, horizon, src, dst, remaining, bytes, flow, tclass, flow_bytes,
                    deadline] {
    stream(sim, horizon, src, dst, remaining - bytes, flow, tclass, flow_bytes, deadline);
  });
}

}  // namespace xdrs::traffic
