// Additional cross-module property sweeps: reference-model equivalence for
// the estimators, decomposition identities on structured matrices, and
// randomized consistency checks that complement the per-module suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "demand/estimator.hpp"
#include "net/classifier.hpp"
#include "schedulers/bvn.hpp"
#include "schedulers/solstice.hpp"
#include "sim/random.hpp"
#include "stats/histogram.hpp"
#include "switching/ocs.hpp"

namespace xdrs {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

// ------------------------------------------- estimator reference equivalence

class EstimatorEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimatorEquivalence, InstantaneousMatchesNaiveBookkeeping) {
  sim::Rng rng{GetParam()};
  constexpr std::uint32_t kPorts = 4;
  demand::InstantaneousEstimator est{kPorts, kPorts};
  std::vector<std::int64_t> reference(kPorts * kPorts, 0);

  for (int step = 0; step < 2000; ++step) {
    const auto i = static_cast<net::PortId>(rng.next_below(kPorts));
    const auto j = static_cast<net::PortId>(rng.next_below(kPorts));
    const Time at = Time::nanoseconds(step);
    if (rng.bernoulli(0.6)) {
      const std::int64_t bytes = rng.uniform_int(64, 1500);
      est.on_arrival(i, j, bytes, at);
      reference[i * kPorts + j] += bytes;
    } else {
      const std::int64_t bytes = rng.uniform_int(64, 3000);
      est.on_departure(i, j, bytes, at);
      auto& slot = reference[i * kPorts + j];
      slot = std::max<std::int64_t>(0, slot - bytes);
    }
  }
  demand::DemandMatrix m;
  est.snapshot(Time::microseconds(10), m);
  for (net::PortId i = 0; i < kPorts; ++i) {
    for (net::PortId j = 0; j < kPorts; ++j) {
      EXPECT_EQ(m.at(i, j), reference[i * kPorts + j]) << i << "," << j;
    }
  }
}

TEST_P(EstimatorEquivalence, EwmaNeverExceedsPeakBacklog) {
  sim::Rng rng{GetParam() ^ 0xabcdef};
  demand::EwmaEstimator est{2, 2, 0.3};
  std::int64_t peak = 0;
  std::int64_t backlog = 0;
  demand::DemandMatrix m;
  for (int step = 0; step < 500; ++step) {
    const std::int64_t bytes = rng.uniform_int(1, 1000);
    est.on_arrival(0, 1, bytes, Time::nanoseconds(step));
    backlog += bytes;
    peak = std::max(peak, backlog);
    if (rng.bernoulli(0.5)) {
      est.on_departure(0, 1, backlog / 2, Time::nanoseconds(step));
      backlog -= backlog / 2;
    }
    est.snapshot(Time::nanoseconds(step), m);
    EXPECT_LE(m.at(0, 1), peak + 1);  // rounding slack
  }
}

TEST_P(EstimatorEquivalence, WindowedMatchesReferenceSum) {
  sim::Rng rng{GetParam() * 31 + 5};
  const Time bucket = 10_us;
  const std::uint32_t buckets = 8;  // 80 us window
  demand::WindowedRateEstimator est{2, 2, bucket, buckets};

  struct Arrival {
    Time at;
    std::int64_t bytes;
  };
  std::vector<Arrival> arrivals;
  Time now = Time::zero();
  for (int step = 0; step < 300; ++step) {
    now += Time::microseconds(rng.uniform_int(1, 30));
    const std::int64_t bytes = rng.uniform_int(64, 1500);
    est.on_arrival(0, 1, bytes, now);
    arrivals.push_back({now, bytes});
  }
  demand::DemandMatrix m;
  est.snapshot(now, m);

  // Reference: everything in the bucket-aligned trailing window.  The ring
  // keeps whole buckets, so the cutoff is the start of the oldest kept one.
  const std::int64_t head_bucket = now.ps() / bucket.ps();
  const Time cutoff = Time::picoseconds((head_bucket - buckets + 1) * bucket.ps());
  std::int64_t expect = 0;
  for (const auto& a : arrivals) {
    if (a.at >= cutoff) expect += a.bytes;
  }
  EXPECT_EQ(m.at(0, 1), expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorEquivalence, ::testing::Values(1, 7, 42, 1234));

// --------------------------------------------------- decomposition identities

TEST(BvnStructured, SumOfPermutationsFullyRecovered) {
  // D = 300*P1 + 200*P2 + 100*P3 (rotations): the decomposition must cover
  // it exactly, with total real bytes equal to D's mass.
  constexpr std::uint32_t n = 5;
  demand::DemandMatrix d{n};
  const std::int64_t w[3] = {300, 200, 100};
  for (std::uint32_t k = 0; k < 3; ++k) {
    const auto p = schedulers::Matching::rotation(n, k + 1);
    p.for_each_pair([&](net::PortId i, net::PortId j) { d.add(i, j, w[k]); });
  }
  const schedulers::BvnResult r = schedulers::bvn_decompose(d);
  EXPECT_EQ(r.uncovered_bytes, 0);
  std::int64_t covered = 0;
  for (const auto& t : r.terms) covered += t.real_bytes;
  EXPECT_EQ(covered, d.total());
  // A doubly-balanced matrix needs no slack: weights sum to the line sum.
  std::int64_t weight_sum = 0;
  for (const auto& t : r.terms) weight_sum += t.weight;
  EXPECT_EQ(weight_sum, d.max_line_sum());
}

TEST(BvnStructured, UniformMatrixDecomposesIntoNPermutations) {
  constexpr std::uint32_t n = 4;
  demand::DemandMatrix d{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) d.set(i, j, 100);
  }
  const schedulers::BvnResult r = schedulers::bvn_decompose(d);
  EXPECT_EQ(r.uncovered_bytes, 0);
  EXPECT_EQ(r.terms.size(), n);  // n disjoint permutations of weight 100
  for (const auto& t : r.terms) EXPECT_EQ(t.weight, 100);
}

TEST(SolsticeStructured, ResidualNeverExceedsDemandElementwise) {
  sim::Rng rng{99};
  schedulers::SolsticeConfig sc;
  sc.reconfig_cost_bytes = 10'000;
  schedulers::SolsticeScheduler s{sc};
  for (int round = 0; round < 10; ++round) {
    demand::DemandMatrix d{6};
    for (net::PortId i = 0; i < 6; ++i) {
      for (net::PortId j = 0; j < 6; ++j) {
        if (rng.bernoulli(0.5)) d.set(i, j, rng.uniform_int(1, 200'000));
      }
    }
    const schedulers::CircuitPlan plan = s.plan(d);
    for (net::PortId i = 0; i < 6; ++i) {
      for (net::PortId j = 0; j < 6; ++j) {
        EXPECT_LE(plan.residual.at(i, j), d.at(i, j));
        EXPECT_GE(plan.residual.at(i, j), 0);
      }
    }
  }
}

// ----------------------------------------------------------- histogram sweep

class HistogramAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramAccuracy, QuantilesTrackExactOnHeavyTailedData) {
  sim::Rng rng{GetParam()};
  stats::Histogram h;
  std::vector<std::int64_t> exact;
  for (int i = 0; i < 50'000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.pareto(1.3, 100.0));
    h.record(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(exact.size() - 1));
    const double truth = static_cast<double>(exact[idx]);
    const double approx = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(approx, truth, truth * 0.08 + 2) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracy, ::testing::Values(3, 17, 255));

// ------------------------------------------------------------- rng edge cases

TEST(RngEdges, NextBelowOneIsAlwaysZero) {
  sim::Rng r{5};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(RngEdges, UniformIntDegenerateRange) {
  sim::Rng r{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

// ------------------------------------------------------------ classifier mix

TEST(ClassifierMix, SourceMaskedRules) {
  net::Classifier cl;
  net::Rule r;
  r.src_addr_value = 0x0a000000;
  r.src_addr_mask = 0xffffff00;  // 10.0.0.0/24 sources
  r.verdict = net::Verdict{2, net::TrafficClass::kThroughput};
  cl.add_rule(r);

  net::Packet in_subnet;
  in_subnet.tuple.src_addr = 0x0a000042;
  net::Packet outside;
  outside.tuple.src_addr = 0x0a000142;
  EXPECT_EQ(cl.classify(in_subnet, {}).out_port, 2u);
  EXPECT_EQ(cl.classify(outside, net::Verdict{7, {}}).out_port, 7u);
}

TEST(ClassifierMix, SrcPortRangeViaMask) {
  net::Classifier cl;
  net::Rule r;
  r.src_port_value = 0x8000;
  r.src_port_mask = 0x8000;  // any ephemeral-style port >= 32768
  r.verdict = net::Verdict{1, net::TrafficClass::kBestEffort};
  cl.add_rule(r);
  net::Packet hi, lo;
  hi.tuple.src_port = 40000;
  lo.tuple.src_port = 80;
  EXPECT_EQ(cl.classify(hi, net::Verdict{9, {}}).out_port, 1u);
  EXPECT_EQ(cl.classify(lo, net::Verdict{9, {}}).out_port, 9u);
}

// ----------------------------------------------------------------- OCS edges

TEST(OcsEdges, PortFreeAtNeverDecreasesAcrossSends) {
  sim::Simulator sim;
  switching::OcsConfig c;
  c.ports = 2;
  c.port_rate = sim::DataRate::gbps(10);
  c.reconfig_time = 100_ns;
  switching::OpticalCircuitSwitch ocs{sim, c};
  ocs.reconfigure(schedulers::Matching::rotation(2, 1));
  sim.run_until(1_us);

  net::Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = 1500;
  Time prev = ocs.port_free_at(0);
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(ocs.send(0, p).has_value());
    const Time cur = ocs.port_free_at(0);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(OcsEdges, SendDuringFailureRetryStaysDark) {
  sim::Simulator sim;
  switching::OcsConfig c;
  c.ports = 2;
  c.port_rate = sim::DataRate::gbps(10);
  c.reconfig_time = 1_us;
  c.retune_failure_prob = 1.0;
  switching::OpticalCircuitSwitch ocs{sim, c};
  ocs.reconfigure(schedulers::Matching::rotation(2, 1));
  sim.run_until(10_us);  // several failed retries by now
  net::Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = 100;
  EXPECT_FALSE(ocs.send(0, p).has_value());
}

}  // namespace
}  // namespace xdrs
