// Tests for the mergeable, self-describing RunReport: merge algebra,
// field enumeration, and golden CSV/JSON renderings.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/config.hpp"
#include "core/report_io.hpp"
#include "stats/json.hpp"
#include "stats/serialize.hpp"

namespace xdrs::core {
namespace {

using sim::Time;

/// A fully populated synthetic report with easy-to-check numbers.
RunReport sample_report() {
  RunReport r;
  r.policy_stack = "islip-i2/-/instantaneous/hardware";
  r.duration = Time::milliseconds(1);
  r.offered_packets = 10;
  r.offered_bytes = 15'000;
  r.delivered_packets = 8;
  r.delivered_bytes = 12'000;
  r.serviced_bytes = 13'000;
  r.ocs_bytes = 9'000;
  r.eps_bytes = 3'000;
  r.class_bytes = {1'000, 2'000, 9'000};
  r.voq_drops = 1;
  r.eps_drops = 2;
  r.sync_losses = 3;
  r.reconfig_cuts = 4;
  r.reconfigurations = 5;
  r.dark_time = Time::microseconds(2);
  r.ocs_duty_cycle = 0.5;
  r.peak_switch_buffer_bytes = 400;
  r.peak_host_buffer_bytes = 200;
  r.scheduler_decisions = 4;
  r.mean_decision_latency = Time::nanoseconds(250);
  r.latency.record(3);
  r.latency.record(7);
  r.latency_sensitive.record(5);
  r.jitter_us.record(1.5);
  r.deadline_flows_met = 6;
  r.deadline_flows_missed = 2;
  r.goodput_before_deadline_bytes = 11'000;
  r.fct_deadline.record_time(Time::microseconds(40));
  r.fct_other.record_time(Time::microseconds(90));
  r.intra_rack_bytes = 9'000;
  r.cross_rack_bytes = 3'000;
  r.fct_intra_rack.record_time(Time::microseconds(40));
  r.fct_cross_rack.record_time(Time::microseconds(90));
  r.peak_uplink_queue_bytes = 300;
  r.uplink_drops = 1;
  r.core_link_bytes = 3'000;
  r.core_drops = 2;
  r.peak_core_queue_bytes = 150;
  r.core_utilization = 0.25;
  return r;
}

TEST(RunReportMerge, CountersSumAndPeaksMax) {
  RunReport a = sample_report();
  RunReport b = sample_report();
  b.peak_switch_buffer_bytes = 900;
  b.peak_host_buffer_bytes = 100;
  a.merge(b);
  EXPECT_EQ(a.duration, Time::milliseconds(2));
  EXPECT_EQ(a.offered_packets, 20u);
  EXPECT_EQ(a.offered_bytes, 30'000);
  EXPECT_EQ(a.delivered_bytes, 24'000);
  EXPECT_EQ(a.class_bytes[1], 4'000);
  EXPECT_EQ(a.voq_drops, 2u);
  EXPECT_EQ(a.reconfigurations, 10u);
  EXPECT_EQ(a.dark_time, Time::microseconds(4));
  EXPECT_EQ(a.peak_switch_buffer_bytes, 900);
  EXPECT_EQ(a.peak_host_buffer_bytes, 200);
  EXPECT_EQ(a.latency.count(), 4u);
  EXPECT_EQ(a.latency_sensitive.count(), 2u);
  // Deadline metrics fold shard-wise: counters sum, histograms merge, and
  // the miss ratio re-derives from the merged counters.
  EXPECT_EQ(a.deadline_flows_met, 12u);
  EXPECT_EQ(a.deadline_flows_missed, 4u);
  EXPECT_DOUBLE_EQ(a.deadline_miss_ratio(), 0.25);
  EXPECT_EQ(a.goodput_before_deadline_bytes, 22'000);
  EXPECT_EQ(a.fct_deadline.count(), 2u);
  EXPECT_EQ(a.fct_other.count(), 2u);
  // Per-hop metrics (schema 4): byte totals and drops sum, queue peaks take
  // the max, the FCT locality split merges like every other histogram.
  EXPECT_EQ(a.intra_rack_bytes, 18'000);
  EXPECT_EQ(a.cross_rack_bytes, 6'000);
  EXPECT_EQ(a.fct_intra_rack.count(), 2u);
  EXPECT_EQ(a.fct_cross_rack.count(), 2u);
  EXPECT_EQ(a.peak_uplink_queue_bytes, 300);
  EXPECT_EQ(a.uplink_drops, 2u);
  EXPECT_EQ(a.core_link_bytes, 6'000);
  EXPECT_EQ(a.core_drops, 4u);
  EXPECT_EQ(a.peak_core_queue_bytes, 150);
}

TEST(RunReportMerge, CoreUtilizationIsDurationWeighted) {
  RunReport a = sample_report();  // 1 ms at 0.25
  RunReport b = sample_report();
  b.duration = Time::milliseconds(3);
  b.core_utilization = 0.65;
  a.merge(b);
  EXPECT_NEAR(a.core_utilization, (0.25 * 1.0 + 0.65 * 3.0) / 4.0, 1e-12);
}

TEST(RunReportMerge, DerivedRatesAreReweighted) {
  RunReport a = sample_report();  // 1 ms at duty 0.5, 4 decisions at 250 ns
  RunReport b = sample_report();
  b.duration = Time::milliseconds(3);
  b.ocs_duty_cycle = 0.9;
  b.scheduler_decisions = 12;
  b.mean_decision_latency = Time::nanoseconds(500);
  a.merge(b);
  EXPECT_NEAR(a.ocs_duty_cycle, (0.5 * 1.0 + 0.9 * 3.0) / 4.0, 1e-12);
  EXPECT_EQ(a.scheduler_decisions, 16u);
  EXPECT_EQ(a.mean_decision_latency.ps(), (4 * 250'000 + 12 * 500'000) / 16);
}

TEST(RunReportMerge, PolicyStackAgreesOrGoesMixed) {
  RunReport a = sample_report();
  a.merge(sample_report());
  EXPECT_EQ(a.policy_stack, "islip-i2/-/instantaneous/hardware");

  RunReport other = sample_report();
  other.policy_stack = "-/solstice/instantaneous/hardware";
  a.merge(other);
  EXPECT_EQ(a.policy_stack, "mixed");

  RunReport fresh;  // empty adopts the other side's stack
  fresh.merge(other);
  EXPECT_EQ(fresh.policy_stack, "-/solstice/instantaneous/hardware");
}

TEST(RunReportMerge, MergingEmptyIsIdentity) {
  RunReport a = sample_report();
  const std::string before = a.to_json();
  a.merge(RunReport{});
  EXPECT_EQ(a.to_json(), before);
}

TEST(RunReportMerge, SummaryMergeMatchesDirectRecording) {
  stats::Summary left, right, direct;
  for (const double x : {1.0, 2.0, 3.0}) {
    left.record(x);
    direct.record(x);
  }
  for (const double x : {10.0, 20.0}) {
    right.record(x);
    direct.record(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), direct.count());
  EXPECT_NEAR(left.mean(), direct.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), direct.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), 1.0);
  EXPECT_DOUBLE_EQ(left.max(), 20.0);
}

TEST(RunReportFields, EveryFieldHasAUniqueName) {
  const auto fields = sample_report().fields();
  ASSERT_FALSE(fields.empty());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    for (std::size_t j = i + 1; j < fields.size(); ++j) {
      EXPECT_NE(fields[i].name(), fields[j].name());
    }
  }
}

TEST(RunReportFields, CsvHeaderAndRowAgreeOnColumnCount) {
  const auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count_commas(RunReport::csv_header()), count_commas(sample_report().csv_row()));
}

// Golden renderings: these strings are the stable serialization contract.
// If a change to RunReport alters them intentionally, update the goldens —
// and know that every archived BENCH_sweep.json just changed schema.

TEST(RunReportGolden, Json) {
  EXPECT_EQ(
      sample_report().to_json(),
      R"({"schema_version":4,"policy_stack":"islip-i2/-/instantaneous/hardware",)"
      R"("duration_ps":1000000000,"offered_packets":10,"offered_bytes":15000,)"
      R"("delivered_packets":8,"delivered_bytes":12000,"serviced_bytes":13000,)"
      R"("ocs_bytes":9000,"eps_bytes":3000,"latency_sensitive_bytes":1000,)"
      R"("throughput_bytes":2000,"best_effort_bytes":9000,"voq_drops":1,"eps_drops":2,)"
      R"("sync_losses":3,"reconfig_cuts":4,"reconfigurations":5,"dark_time_ps":2000000,)"
      R"("ocs_duty_cycle":0.5,"peak_switch_buffer_bytes":400,"peak_host_buffer_bytes":200,)"
      R"("scheduler_decisions":4,"mean_decision_latency_ps":250000,"delivery_ratio":0.8,)"
      R"("latency_count":2,"latency_mean_ps":5,"latency_p50_ps":3,"latency_p99_ps":3,)"
      R"("latency_max_ps":7,"latency_sensitive_count":1,"latency_sensitive_mean_ps":5,)"
      R"("latency_sensitive_p99_ps":5,"jitter_flows":1,"jitter_mean_us":1.5,"jitter_max_us":1.5,)"
      R"("deadline_flows_met":6,"deadline_flows_missed":2,"deadline_miss_ratio":0.25,)"
      R"("goodput_before_deadline_bytes":11000,"fct_deadline_count":1,)"
      R"("fct_deadline_mean_ps":4e+07,"fct_deadline_p50_ps":40000000,)"
      R"("fct_deadline_p99_ps":40000000,"fct_deadline_max_ps":40000000,"fct_other_count":1,)"
      R"("fct_other_mean_ps":9e+07,"fct_other_p99_ps":90000000,"intra_rack_bytes":9000,)"
      R"("cross_rack_bytes":3000,"fct_intra_rack_count":1,"fct_intra_rack_mean_ps":4e+07,)"
      R"("fct_intra_rack_p99_ps":40000000,"fct_cross_rack_count":1,)"
      R"("fct_cross_rack_mean_ps":9e+07,"fct_cross_rack_p99_ps":90000000,)"
      R"("peak_uplink_queue_bytes":300,"uplink_drops":1,"core_link_bytes":3000,)"
      R"("core_drops":2,"peak_core_queue_bytes":150,"core_utilization":0.25})");
}

TEST(RunReportGolden, CsvRow) {
  EXPECT_EQ(RunReport::csv_header(),
            "schema_version,policy_stack,"
            "duration_ps,offered_packets,offered_bytes,delivered_packets,delivered_bytes,"
            "serviced_bytes,ocs_bytes,eps_bytes,latency_sensitive_bytes,throughput_bytes,"
            "best_effort_bytes,voq_drops,eps_drops,sync_losses,reconfig_cuts,reconfigurations,"
            "dark_time_ps,ocs_duty_cycle,peak_switch_buffer_bytes,peak_host_buffer_bytes,"
            "scheduler_decisions,mean_decision_latency_ps,delivery_ratio,latency_count,"
            "latency_mean_ps,latency_p50_ps,latency_p99_ps,latency_max_ps,"
            "latency_sensitive_count,latency_sensitive_mean_ps,latency_sensitive_p99_ps,"
            "jitter_flows,jitter_mean_us,jitter_max_us,deadline_flows_met,deadline_flows_missed,"
            "deadline_miss_ratio,goodput_before_deadline_bytes,fct_deadline_count,"
            "fct_deadline_mean_ps,fct_deadline_p50_ps,fct_deadline_p99_ps,fct_deadline_max_ps,"
            "fct_other_count,fct_other_mean_ps,fct_other_p99_ps,intra_rack_bytes,"
            "cross_rack_bytes,fct_intra_rack_count,fct_intra_rack_mean_ps,fct_intra_rack_p99_ps,"
            "fct_cross_rack_count,fct_cross_rack_mean_ps,fct_cross_rack_p99_ps,"
            "peak_uplink_queue_bytes,uplink_drops,core_link_bytes,core_drops,"
            "peak_core_queue_bytes,core_utilization");
  EXPECT_EQ(sample_report().csv_row(),
            "4,islip-i2/-/instantaneous/hardware,"
            "1000000000,10,15000,8,12000,13000,9000,3000,1000,2000,9000,1,2,3,4,5,2000000,0.5,"
            "400,200,4,250000,0.8,2,5,3,3,7,1,5,5,1,1.5,1.5,"
            "6,2,0.25,11000,1,4e+07,40000000,40000000,40000000,1,9e+07,90000000,"
            "9000,3000,1,4e+07,40000000,1,9e+07,90000000,300,1,3000,2,150,0.25");
}

// ---- state round-trip: the read side (core/report_io) ----------------------

TEST(RunReportStateIo, RoundTripIsByteIdentical) {
  const RunReport original = sample_report();
  const std::string state = report_state_json(original);
  const RunReport parsed = report_from_state_json(state);
  // Exact reconstruction: both the state form and the artefact digest of the
  // parsed report match the original byte for byte.
  EXPECT_EQ(report_state_json(parsed), state);
  EXPECT_EQ(parsed.to_json(), original.to_json());
  EXPECT_EQ(parsed.csv_row(), original.csv_row());
}

TEST(RunReportStateIo, StateIsASupersetOfTheArtefactObject) {
  // Every artefact key appears in the state object with the same rendering,
  // so state files stay greppable with artefact field names.
  const RunReport r = sample_report();
  const stats::JsonValue state = stats::parse_json(report_state_json(r));
  const stats::JsonValue artefact = stats::parse_json(r.to_json());
  for (const auto& [key, value] : artefact.members()) {
    EXPECT_EQ(state.at(key).dump(), value.dump()) << "field: " << key;
  }
  EXPECT_TRUE(state.find("latency_state") != nullptr);
  EXPECT_TRUE(state.find("jitter_state") != nullptr);
}

TEST(RunReportStateIo, ReconstructionMergesExactlyLikeTheOriginal) {
  RunReport a = sample_report();
  RunReport b = sample_report();
  b.ocs_duty_cycle = 0.9;
  b.duration = Time::milliseconds(3);
  b.latency.record(1'000'000);
  b.jitter_us.record(99.5);

  RunReport a2 = report_from_state_json(report_state_json(a));
  const RunReport b2 = report_from_state_json(report_state_json(b));
  a.merge(b);
  a2.merge(b2);
  EXPECT_EQ(a2.to_json(), a.to_json());
  EXPECT_EQ(report_state_json(a2), report_state_json(a));
}

TEST(RunReportStateIo, EmptyReportRoundTrips) {
  const RunReport empty;
  const RunReport parsed = report_from_state_json(report_state_json(empty));
  EXPECT_EQ(parsed.to_json(), empty.to_json());
}

TEST(RunReportStateIo, RejectsSchemaMismatchAndMissingKeys) {
  const std::string state = report_state_json(sample_report());

  // Wrong schema version: flip the leading "schema_version":4.
  std::string wrong = state;
  const auto pos = wrong.find("\"schema_version\":4");
  ASSERT_NE(pos, std::string::npos);
  wrong.replace(pos, 18, "\"schema_version\":1");
  EXPECT_THROW((void)report_from_state_json(wrong), std::invalid_argument);

  // Artefact digest alone (no distribution states) is not parseable state.
  EXPECT_THROW((void)report_from_state_json(sample_report().to_json()), std::invalid_argument);
  EXPECT_THROW((void)report_from_state_json("{}"), std::invalid_argument);
  EXPECT_THROW((void)report_from_state_json("not json"), std::invalid_argument);
}

TEST(RunReportStateIo, HistogramStateRoundTripPreservesQuantiles) {
  stats::Histogram h;
  for (std::int64_t v : {3, 7, 7, 250, 1'000'000, 123'456'789}) h.record(v);
  const stats::Histogram back = stats::Histogram::from_state(h.state());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.min(), h.min());
  EXPECT_EQ(back.max(), h.max());
  EXPECT_DOUBLE_EQ(back.mean(), h.mean());
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) EXPECT_EQ(back.quantile(q), h.quantile(q));

  stats::Histogram::State bad = h.state();
  bad.count += 1;  // disagrees with slot sum
  EXPECT_THROW((void)stats::Histogram::from_state(bad), std::invalid_argument);
}

TEST(SerializeField, JsonEscapingAndCsvQuoting) {
  const auto f = stats::Field::str("note", "a \"quoted\", line\nnext");
  EXPECT_EQ(f.json(), R"("a \"quoted\", line\nnext")");
  EXPECT_EQ(f.csv(), "\"a \"\"quoted\"\", line\nnext\"");
  EXPECT_EQ(stats::Field::f64("x", 0.1).json(), "0.1");
  EXPECT_EQ(stats::Field::i64("n", -3).csv(), "-3");
}

}  // namespace
}  // namespace xdrs::core
