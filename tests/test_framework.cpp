// End-to-end integration tests of the full framework (Figure 2 wired):
// traffic in, scheduled service, deliveries and reports out.
#include <gtest/gtest.h>

#include <memory>

#include "core/framework.hpp"
#include "topo/testbed.hpp"

namespace xdrs::core {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

FrameworkConfig fast_hybrid(std::uint32_t ports = 4) {
  FrameworkConfig c;
  c.ports = ports;
  c.discipline = SchedulingDiscipline::kHybridEpoch;
  c.epoch = 100_us;
  c.ocs_reconfig = 1_us;
  c.min_circuit_hold = 10_us;
  c.placement = BufferPlacement::kToRSwitch;
  return c;
}

FrameworkConfig slotted(std::uint32_t ports = 4) {
  FrameworkConfig c;
  c.ports = ports;
  c.discipline = SchedulingDiscipline::kSlotted;
  c.slot_time = 5_us;
  c.ocs_reconfig = 50_ns;
  return c;
}

TEST(Framework, ValidatesConfig) {
  FrameworkConfig c = fast_hybrid();
  c.ports = 1;
  EXPECT_THROW(HybridSwitchFramework{c}, std::invalid_argument);
}

TEST(Framework, RunIsOneShot) {
  HybridSwitchFramework fw{fast_hybrid()};
  fw.use_default_policies();
  (void)fw.run(100_us);
  EXPECT_THROW((void)fw.run(100_us), std::logic_error);
}

TEST(Framework, RejectsNonPositiveDuration) {
  HybridSwitchFramework fw{fast_hybrid()};
  fw.use_default_policies();
  EXPECT_THROW((void)fw.run(Time::zero()), std::invalid_argument);
}

TEST(Framework, HybridDeliversModerateUniformLoad) {
  HybridSwitchFramework fw{fast_hybrid()};
  fw.use_default_policies();
  topo::WorkloadSpec spec;
  spec.kind = topo::WorkloadSpec::Kind::kPoissonUniform;
  spec.load = 0.3;
  topo::attach_workload(fw, spec);

  const RunReport r = fw.run(4_ms, 1_ms);
  EXPECT_GT(r.offered_packets, 100u);
  EXPECT_GT(r.delivery_ratio(), 0.90) << r.summary();
  EXPECT_GT(r.scheduler_decisions, 10u);
}

TEST(Framework, SlottedIslipDeliversUniformLoad) {
  HybridSwitchFramework fw{slotted()};
  fw.use_default_policies();  // islip:2 for slotted
  topo::WorkloadSpec spec;
  spec.kind = topo::WorkloadSpec::Kind::kPoissonUniform;
  spec.load = 0.4;
  topo::attach_workload(fw, spec);

  const RunReport r = fw.run(4_ms, 1_ms);
  EXPECT_GT(r.delivery_ratio(), 0.90) << r.summary();
  // Slotted mode serves everything over the fabric circuits.
  EXPECT_GT(r.ocs_bytes, 0);
}

TEST(Framework, ConservationOfPackets) {
  HybridSwitchFramework fw{fast_hybrid()};
  fw.use_default_policies();
  topo::WorkloadSpec spec;
  spec.load = 0.4;
  topo::attach_workload(fw, spec);
  const RunReport r = fw.run(3_ms, 500_us);
  // Delivered never exceeds offered; the difference is queued or dropped.
  EXPECT_LE(r.delivered_bytes, r.offered_bytes);
  EXPECT_LE(r.delivered_packets, r.offered_packets);
}

TEST(Framework, OcsCarriesElephantsEpsCarriesResidual) {
  FrameworkConfig c = fast_hybrid();
  HybridSwitchFramework fw{c};
  fw.set_policies(PolicyStack{});

  topo::WorkloadSpec spec;
  spec.kind = topo::WorkloadSpec::Kind::kOnOffBursts;
  spec.mean_on = 50_us;
  spec.mean_off = 150_us;
  topo::attach_workload(fw, spec);

  const RunReport r = fw.run(4_ms, 1_ms);
  EXPECT_GT(r.ocs_bytes, 0) << r.summary();
  EXPECT_GT(r.delivery_ratio(), 0.5) << r.summary();
}

TEST(Framework, LatencySensitiveBypassInTorMode) {
  HybridSwitchFramework fw{fast_hybrid()};
  fw.use_default_policies();
  topo::attach_voip(fw, 2, 20_us, 200);
  const RunReport r = fw.run(2_ms, 200_us);
  EXPECT_GT(r.latency_sensitive.count(), 50u);
  // Bypass path: latency ~ link + EPS serialisation + EPS latency, well
  // under 10 us at these rates.
  EXPECT_LT(r.latency_sensitive.quantile_time(0.99), 10_us) << r.summary();
}

TEST(Framework, HardwareSchedulingBeatsSoftwareOnVoipLatency) {
  const auto run_with = [](bool hardware) {
    FrameworkConfig c = fast_hybrid();
    c.placement = hardware ? BufferPlacement::kToRSwitch : BufferPlacement::kHost;
    c.epoch = hardware ? Time::microseconds(100) : Time::milliseconds(1);
    HybridSwitchFramework fw{c};
    fw.set_policies(PolicyStack{}.with_timing(hardware ? "hardware" : "software"));
    topo::attach_voip(fw, 2, 20_us, 200);
    return fw.run(8_ms, 2_ms);
  };

  const RunReport hw = run_with(true);
  const RunReport sw = run_with(false);
  ASSERT_GT(hw.latency_sensitive.count(), 0u);
  ASSERT_GT(sw.latency_sensitive.count(), 0u);
  // The paper's claim: slow scheduling inflates interactive latency.
  EXPECT_LT(hw.latency_sensitive.quantile(0.99) * 10, sw.latency_sensitive.quantile(0.99))
      << "hw: " << hw.latency_sensitive.summary_time()
      << " sw: " << sw.latency_sensitive.summary_time();
}

TEST(Framework, HostModeBuffersAtHostsTorModeBuffersInSwitch) {
  const auto run_with = [](BufferPlacement placement) {
    FrameworkConfig c = fast_hybrid();
    c.placement = placement;
    c.epoch = 500_us;
    HybridSwitchFramework fw{c};
    fw.use_default_policies();
    topo::WorkloadSpec spec;
    spec.load = 0.5;
    topo::attach_workload(fw, spec);
    return fw.run(3_ms, 500_us);
  };
  const RunReport host = run_with(BufferPlacement::kHost);
  const RunReport tor = run_with(BufferPlacement::kToRSwitch);
  EXPECT_GT(host.peak_host_buffer_bytes, 0);
  EXPECT_GT(tor.peak_switch_buffer_bytes, 0);
}

TEST(Framework, ReconfigurationsAreCountedAndDutyCycleSane) {
  HybridSwitchFramework fw{fast_hybrid()};
  fw.use_default_policies();
  topo::WorkloadSpec spec;
  spec.load = 0.5;
  topo::attach_workload(fw, spec);
  const RunReport r = fw.run(3_ms, 500_us);
  EXPECT_GT(r.reconfigurations, 0u);
  EXPECT_GE(r.ocs_duty_cycle, 0.0);
  EXPECT_LE(r.ocs_duty_cycle, 1.0);
}

TEST(Framework, DeterministicAcrossRuns) {
  const auto run_once = [] {
    HybridSwitchFramework fw{fast_hybrid()};
    fw.use_default_policies();
    topo::WorkloadSpec spec;
    spec.load = 0.4;
    spec.seed = 31337;
    topo::attach_workload(fw, spec);
    return fw.run(2_ms, 500_us);
  };
  const RunReport a = run_once();
  const RunReport b = run_once();
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.ocs_bytes, b.ocs_bytes);
  EXPECT_EQ(a.latency.quantile(0.99), b.latency.quantile(0.99));
}

TEST(Framework, DirectInjectionWorks) {
  HybridSwitchFramework fw{fast_hybrid()};
  fw.use_default_policies();
  net::Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = 1500;
  fw.simulator().schedule(10_us, [&fw, p] { fw.inject(p); });
  const RunReport r = fw.run(2_ms);
  EXPECT_EQ(r.offered_packets, 1u);
  EXPECT_EQ(r.delivered_packets, 1u);
}

TEST(Framework, TraceCapturesPipelineWhenEnabled) {
  HybridSwitchFramework fw{fast_hybrid()};
  fw.use_default_policies();
  fw.trace().enable();
  topo::WorkloadSpec spec;
  spec.load = 0.3;
  topo::attach_workload(fw, spec);
  (void)fw.run(500_us);
  using sim::TraceCategory;
  EXPECT_GT(fw.trace().count(TraceCategory::kPacketArrival), 0u);
  EXPECT_GT(fw.trace().count(TraceCategory::kEnqueue), 0u);
  EXPECT_GT(fw.trace().count(TraceCategory::kScheduleDone), 0u);
  EXPECT_GT(fw.trace().count(TraceCategory::kGrant), 0u);
  EXPECT_GT(fw.trace().count(TraceCategory::kDeliver), 0u);
}

TEST(Framework, ThroughputFractionComputation) {
  RunReport r;
  r.duration = 1_ms;
  r.delivered_bytes = 1'250'000;  // 10 Gbps x 1 ms / 8 = 1.25 MB per port
  EXPECT_NEAR(r.throughput_fraction(sim::DataRate::gbps(10), 1), 1.0, 1e-9);
  EXPECT_NEAR(r.throughput_fraction(sim::DataRate::gbps(10), 4), 0.25, 1e-9);
}

TEST(Framework, SummaryStringMentionsKeyCounters) {
  HybridSwitchFramework fw{fast_hybrid()};
  fw.use_default_policies();
  topo::WorkloadSpec spec;
  spec.load = 0.2;
  topo::attach_workload(fw, spec);
  const RunReport r = fw.run(1_ms);
  const std::string s = r.summary();
  EXPECT_NE(s.find("delivered"), std::string::npos);
  EXPECT_NE(s.find("latency"), std::string::npos);
}

}  // namespace
}  // namespace xdrs::core
