// Tests for the multi-rack aggregation layer.
#include <gtest/gtest.h>

#include "topo/rack.hpp"

namespace xdrs::topo {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

RackAggregator::Config base_config() {
  RackAggregator::Config c;
  c.rack_id = 0;
  c.racks = 4;
  c.hosts = 4;
  c.host_rate = sim::DataRate::gbps(10);
  c.uplink_rate = sim::DataRate::gbps(40);
  c.load_per_host = 0.5;
  c.seed = 5;
  return c;
}

TEST(RackAggregator, ValidatesConfig) {
  auto c = base_config();
  c.racks = 1;
  EXPECT_THROW(RackAggregator{c}, std::invalid_argument);
  c = base_config();
  c.rack_id = 4;
  EXPECT_THROW(RackAggregator{c}, std::invalid_argument);
  c = base_config();
  c.hosts = 0;
  EXPECT_THROW(RackAggregator{c}, std::invalid_argument);
  c = base_config();
  c.uplink_rate = sim::DataRate{};
  EXPECT_THROW(RackAggregator{c}, std::invalid_argument);
}

TEST(RackAggregator, PacketsCarryTheRackPort) {
  sim::Simulator sim;
  RackAggregator agg{base_config()};
  int n = 0;
  agg.start(sim, [&](const net::Packet& p) {
    EXPECT_EQ(p.src, 0u);
    EXPECT_LT(p.dst, 4u);
    ++n;
  }, 1_ms);
  sim.run();
  EXPECT_GT(n, 100);
}

TEST(RackAggregator, MatchedUplinkKeepsQueueShallow) {
  // 4 hosts x 0.5 x 10G = 20G offered over a 40G uplink: the FIFO only
  // absorbs coincidence bursts.
  sim::Simulator sim;
  RackAggregator agg{base_config()};
  agg.start(sim, [](const net::Packet&) {}, 5_ms);
  sim.run();
  EXPECT_LT(agg.peak_uplink_queue_bytes(), 256 * 1024);
  EXPECT_EQ(agg.uplink_drops(), 0u);
}

TEST(RackAggregator, OversubscriptionBuildsQueue) {
  // 4 hosts x 0.9 x 10G = 36G offered over a 10G uplink: 3.6:1 overload.
  sim::Simulator sim;
  auto c = base_config();
  c.load_per_host = 0.9;
  c.uplink_rate = sim::DataRate::gbps(10);
  c.uplink_buffer_bytes = 1 << 20;
  RackAggregator agg{c};
  std::int64_t delivered = 0;
  agg.start(sim, [&](const net::Packet& p) {
    if (sim.now() <= 5_ms) delivered += p.size_bytes;  // exclude the tail flush
  }, 5_ms);
  sim.run();
  // The uplink caps throughput near its line rate...
  const double gbps = static_cast<double>(delivered) * 8 / 0.005 / 1e9;
  EXPECT_LT(gbps, 10.5);
  EXPECT_GT(gbps, 8.0);
  // ...and the finite buffer both fills and drops.
  EXPECT_GT(agg.peak_uplink_queue_bytes(), (1 << 20) - 64 * 1024);
  EXPECT_GT(agg.uplink_drops(), 0u);
}

TEST(RackAggregator, DeterministicPerSeed) {
  const auto run_once = [] {
    sim::Simulator sim;
    RackAggregator agg{base_config()};
    std::uint64_t n = 0;
    std::int64_t bytes = 0;
    agg.start(sim, [&](const net::Packet& p) {
      ++n;
      bytes += p.size_bytes;
    }, 2_ms);
    sim.run();
    return std::pair{n, bytes};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(AttachRacks, BuildsOneRackPerCorePort) {
  core::FrameworkConfig c;
  c.ports = 4;
  c.discipline = core::SchedulingDiscipline::kHybridEpoch;
  c.epoch = 100_us;
  c.ocs_reconfig = 1_us;
  c.link_rate = sim::DataRate::gbps(40);  // rack uplinks
  c.eps_rate = sim::DataRate::gbps(40);
  core::HybridSwitchFramework fw{c};
  fw.use_default_policies();

  const auto racks = attach_racks(fw, /*hosts_per_rack=*/4, sim::DataRate::gbps(10),
                                  /*load_per_host=*/0.4, /*seed=*/17);
  ASSERT_EQ(racks.size(), 4u);

  const core::RunReport r = fw.run(4_ms, 1_ms);
  EXPECT_GT(r.offered_packets, 1000u);
  EXPECT_GT(r.delivery_ratio(), 0.9) << r.summary();
  for (const auto* rack : racks) {
    EXPECT_EQ(rack->uplink_drops(), 0u);
  }
}

TEST(AttachRacks, EndToEndLatencyIncludesUplinkQueueing) {
  // Same core, one run with matched uplinks and one with heavily
  // oversubscribed uplinks: the oversubscribed rack queue must show up in
  // end-to-end latency.
  const auto run_with = [](double load_per_host) {
    core::FrameworkConfig c;
    c.ports = 4;
    c.discipline = core::SchedulingDiscipline::kHybridEpoch;
    c.epoch = 100_us;
    c.ocs_reconfig = 1_us;
    c.link_rate = sim::DataRate::gbps(10);  // uplink == 1 host's rate
    c.eps_rate = sim::DataRate::gbps(10);
    core::HybridSwitchFramework fw{c};
    fw.use_default_policies();
    (void)attach_racks(fw, 4, sim::DataRate::gbps(10), load_per_host, 23);
    return fw.run(4_ms, 1_ms);
  };
  const core::RunReport light = run_with(0.1);   // 4 Gbps onto 10 G uplink
  const core::RunReport heavy = run_with(0.45);  // 18 Gbps onto 10 G uplink
  EXPECT_GT(heavy.latency.quantile(0.99), 2 * light.latency.quantile(0.99));
}

}  // namespace
}  // namespace xdrs::topo
