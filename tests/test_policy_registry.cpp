// Tests for the unified PolicyRegistry and core::PolicyStack: construction
// of all four policy kinds from spec strings, error paths (unknown specs,
// malformed arguments, duplicate registration), user-side registration, and
// a round-trip guarantee that every advertised spec actually constructs and
// behaves.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/policy_stack.hpp"
#include "demand/demand_matrix.hpp"
#include "schedulers/policy_registry.hpp"
#include "schedulers/rotor.hpp"
#include "schedulers/solstice.hpp"

namespace xdrs::schedulers {
namespace {

PolicyContext ctx4() { return {.ports = 4, .seed = 42, .reconfig_cost_bytes = 1250}; }

demand::DemandMatrix full_demand(std::uint32_t n, std::int64_t v = 1000) {
  demand::DemandMatrix m{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) m.set(i, j, v);
  }
  return m;
}

// ----------------------------------------------------------------- PolicySpec

TEST(PolicySpec, ParsesNameAndArgument) {
  const PolicySpec bare = PolicySpec::parse("islip");
  EXPECT_EQ(bare.name(), "islip");
  EXPECT_FALSE(bare.has_arg());
  EXPECT_EQ(bare.uint_arg(3), 3u);

  const PolicySpec with_arg = PolicySpec::parse("islip:4");
  EXPECT_EQ(with_arg.name(), "islip");
  EXPECT_EQ(with_arg.arg(), "4");
  EXPECT_EQ(with_arg.uint_arg(1), 4u);
  EXPECT_EQ(with_arg.str(), "islip:4");
}

TEST(PolicySpec, RejectsMalformedArguments) {
  EXPECT_THROW((void)PolicySpec::parse("islip:").uint_arg(1), std::invalid_argument);
  EXPECT_THROW((void)PolicySpec::parse("islip:abc").uint_arg(1), std::invalid_argument);
  EXPECT_THROW((void)PolicySpec::parse("islip:0").uint_arg(1), std::invalid_argument);
  EXPECT_THROW((void)PolicySpec::parse("islip:4x").uint_arg(1), std::invalid_argument);
  EXPECT_THROW((void)PolicySpec::parse("ewma:x").double_arg(0.5), std::invalid_argument);
  EXPECT_THROW((void)PolicySpec::parse("hw:fast").mhz_arg(0.0), std::invalid_argument);
}

TEST(PolicySpec, ParsesFrequencies) {
  EXPECT_DOUBLE_EQ(PolicySpec::parse("hw:500MHz").mhz_arg(0.0), 500.0);
  EXPECT_DOUBLE_EQ(PolicySpec::parse("hw:500").mhz_arg(0.0), 500.0);
  EXPECT_DOUBLE_EQ(PolicySpec::parse("hw:1.25GHz").mhz_arg(0.0), 1250.0);
  EXPECT_DOUBLE_EQ(PolicySpec::parse("hw").mhz_arg(156.25), 156.25);
}

// ------------------------------------------------------------- error paths

TEST(PolicyRegistry, UnknownSpecsThrowWithKnownNamesListed) {
  auto& reg = PolicyRegistry::instance();
  EXPECT_THROW((void)reg.make_matcher("nope", ctx4()), std::invalid_argument);
  EXPECT_THROW((void)reg.make_circuit("wormhole", ctx4()), std::invalid_argument);
  EXPECT_THROW((void)reg.make_estimator("psychic", ctx4()), std::invalid_argument);
  EXPECT_THROW((void)reg.make_timing("quantum", ctx4()), std::invalid_argument);
  try {
    (void)reg.make_matcher("nope", ctx4());
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("islip"), std::string::npos)
        << "error should list known names: " << e.what();
  }
}

TEST(PolicyRegistry, BadIterationSuffixThrows) {
  auto& reg = PolicyRegistry::instance();
  EXPECT_THROW((void)reg.make_matcher("islip:0", ctx4()), std::invalid_argument);
  EXPECT_THROW((void)reg.make_matcher("islip:abc", ctx4()), std::invalid_argument);
  EXPECT_THROW((void)reg.make_matcher("islip:", ctx4()), std::invalid_argument);
  EXPECT_THROW((void)reg.make_estimator("ewma:1.5", ctx4()), std::invalid_argument);
  EXPECT_THROW((void)reg.make_estimator("ewma:0", ctx4()), std::invalid_argument);
  EXPECT_THROW((void)reg.make_timing("hw:0MHz", ctx4()), std::invalid_argument);
}

TEST(PolicyRegistry, DuplicateRegistrationThrows) {
  auto& reg = PolicyRegistry::instance();
  const auto factory = [](const PolicySpec&, const PolicyContext& c) {
    return std::make_unique<RotorMatcher>(c.ports);
  };
  // First registration of a fresh name succeeds...
  reg.register_matcher("test-dup", factory);
  EXPECT_TRUE(reg.knows(PolicyKind::kMatcher, "test-dup"));
  // ...re-registering it (and any built-in) throws.
  EXPECT_THROW(reg.register_matcher("test-dup", factory), std::invalid_argument);
  EXPECT_THROW(reg.register_matcher("islip", factory), std::invalid_argument);
  // Names that would break the spec / stack grammar are rejected outright.
  EXPECT_THROW(reg.register_matcher("bad:name", factory), std::invalid_argument);
  EXPECT_THROW(reg.register_matcher("bad/name", factory), std::invalid_argument);
  EXPECT_THROW(reg.register_matcher("", factory), std::invalid_argument);
}

// -------------------------------------------------------------- round trips

TEST(PolicyRegistry, EveryKnownMatcherSpecConstructsAndMatchesConflictFree) {
  auto& reg = PolicyRegistry::instance();
  const auto d = full_demand(4);
  const auto specs = reg.known_specs(PolicyKind::kMatcher);
  ASSERT_FALSE(specs.empty());
  for (const auto& spec : specs) {
    auto m = reg.make_matcher(spec, ctx4());
    ASSERT_NE(m, nullptr) << spec;
    EXPECT_FALSE(m->name().empty()) << spec;
    Matching out;
    m->compute_into(d, out);
    // Conflict-freedom is Matching's own invariant; check consistency and
    // bounds here: every granted pair is a real (demand-positive) pair.
    EXPECT_LE(out.size(), 4u) << spec;
    out.for_each_pair([&](net::PortId i, net::PortId j) { EXPECT_GT(d.at(i, j), 0) << spec; });
    EXPECT_GE(m->last_iterations(), 1u) << spec;
  }
}

TEST(PolicyRegistry, EveryKnownCircuitEstimatorTimingSpecConstructs) {
  auto& reg = PolicyRegistry::instance();
  const auto d = full_demand(4);
  for (const auto& spec : reg.known_specs(PolicyKind::kCircuit)) {
    auto s = reg.make_circuit(spec, ctx4());
    ASSERT_NE(s, nullptr) << spec;
    CircuitPlan plan;
    s->plan_into(d, plan);
    EXPECT_LE(plan.residual.total(), d.total()) << spec;
  }
  for (const auto& spec : reg.known_specs(PolicyKind::kEstimator)) {
    auto e = reg.make_estimator(spec, ctx4());
    ASSERT_NE(e, nullptr) << spec;
    demand::DemandMatrix snap;
    e->on_arrival(0, 1, 1000, sim::Time::microseconds(1));
    e->snapshot(sim::Time::microseconds(2), snap);
    EXPECT_EQ(snap.inputs(), 4u) << spec;
  }
  for (const auto& spec : reg.known_specs(PolicyKind::kTiming)) {
    auto t = reg.make_timing(spec, ctx4());
    ASSERT_NE(t, nullptr) << spec;
    const auto b = t->decision_latency(4, 2, true);
    EXPECT_GE(b.total(), sim::Time::zero()) << spec;
  }
}

TEST(PolicyRegistry, SolsticeArgumentSetsAmortisationIncludingZero) {
  auto& reg = PolicyRegistry::instance();
  const auto config_of = [&reg](const char* spec) {
    auto s = reg.make_circuit(spec, ctx4());
    return dynamic_cast<SolsticeScheduler&>(*s).config().min_amortisation;
  };
  EXPECT_DOUBLE_EQ(config_of("solstice"), 1.0);      // library default
  EXPECT_DOUBLE_EQ(config_of("solstice:2.5"), 2.5);
  EXPECT_DOUBLE_EQ(config_of("solstice:0"), 0.0);    // explicit 0 disables
  EXPECT_THROW((void)reg.make_circuit("solstice:-1", ctx4()), std::invalid_argument);
}

TEST(PolicyRegistry, HardwareClockArgumentScalesLatency) {
  auto& reg = PolicyRegistry::instance();
  const auto slow = reg.make_timing("hardware", ctx4());
  const auto fast = reg.make_timing("hw:500MHz", ctx4());
  EXPECT_LT(fast->decision_latency(16, 4, true).total(),
            slow->decision_latency(16, 4, true).total());
}

TEST(CircuitPlan, ReuseSlotGrowsToNonSequentialIndices) {
  // User-registered planners may claim slots out of order; the helper must
  // grow the list to cover the index, not just append one element.
  CircuitPlan plan;
  CircuitSlot& s2 = plan.reuse_slot(2, 4);
  ASSERT_EQ(plan.slots.size(), 3u);
  s2.weight_bytes = 7;
  EXPECT_EQ(plan.slots[2].weight_bytes, 7);
  EXPECT_EQ(plan.slots[2].configuration.inputs(), 4u);
  // Rectangular overload keeps non-square fabrics working (cthrough).
  CircuitSlot& r = plan.reuse_slot(0, 2, 6);
  EXPECT_EQ(r.configuration.inputs(), 2u);
  EXPECT_EQ(r.configuration.outputs(), 6u);
}

TEST(PolicyRegistry, KnownSpecNamesAreUniquePerKind) {
  auto& reg = PolicyRegistry::instance();
  for (const PolicyKind k : {PolicyKind::kMatcher, PolicyKind::kCircuit, PolicyKind::kEstimator,
                             PolicyKind::kTiming}) {
    const auto specs = reg.known_specs(k);
    const std::set<std::string> unique(specs.begin(), specs.end());
    EXPECT_EQ(unique.size(), specs.size()) << to_string(k);
  }
}

}  // namespace
}  // namespace xdrs::schedulers

// ---------------------------------------------------------------- PolicyStack

namespace xdrs::core {
namespace {

TEST(PolicyStack, DefaultsAndToString) {
  const PolicyStack s;
  EXPECT_EQ(s.to_string(), "islip:2/solstice/instantaneous/hardware");
}

TEST(PolicyStack, ParseClassifiesBareSegmentsByRegistry) {
  const PolicyStack s = PolicyStack::parse("islip:4/ewma:0.5/software");
  EXPECT_EQ(s.matcher, "islip:4");
  EXPECT_EQ(s.estimator, "ewma:0.5");
  EXPECT_EQ(s.timing, "software");
  EXPECT_EQ(s.circuit, "solstice");  // untouched default

  const PolicyStack hybrid = PolicyStack::parse("cthrough/instant/hw:500MHz");
  EXPECT_EQ(hybrid.circuit, "cthrough");
  EXPECT_EQ(hybrid.estimator, "instant");
  EXPECT_EQ(hybrid.timing, "hw:500MHz");
}

TEST(PolicyStack, ParseAcceptsExplicitKindPrefixes) {
  const PolicyStack s = PolicyStack::parse("matcher=maxweight/timing=ideal");
  EXPECT_EQ(s.matcher, "maxweight");
  EXPECT_EQ(s.timing, "ideal");
}

TEST(PolicyStack, ParseRejectsUnknownDuplicateAndBadKinds) {
  EXPECT_THROW((void)PolicyStack::parse("frobnicator"), std::invalid_argument);
  EXPECT_THROW((void)PolicyStack::parse("islip:2/islip:4"), std::invalid_argument);
  EXPECT_THROW((void)PolicyStack::parse("gizmo=islip:2"), std::invalid_argument);
  // A kind prefix must not smuggle a typo past classification.
  EXPECT_THROW((void)PolicyStack::parse("matcher=islp:4"), std::invalid_argument);
  EXPECT_THROW((void)PolicyStack::parse("circuit=islip:2"), std::invalid_argument);
}

TEST(PolicyStack, RoundTripsThroughToString) {
  const PolicyStack s = PolicyStack::parse("pim:2/tms:4/windowed/distributed");
  EXPECT_EQ(PolicyStack::parse(s.to_string()), s);
}

TEST(PolicyStack, ToStringQualifiesCrossKindAmbiguousNames) {
  // A name registered under two kinds needs a kind= prefix to survive the
  // round trip; to_string must add it.
  auto& reg = schedulers::PolicyRegistry::instance();
  reg.register_matcher("test-ambi",
                       [](const schedulers::PolicySpec&, const schedulers::PolicyContext& c) {
                         return std::make_unique<schedulers::RotorMatcher>(c.ports);
                       });
  reg.register_estimator(
      "test-ambi", [](const schedulers::PolicySpec&, const schedulers::PolicyContext& c) {
        return std::make_unique<demand::InstantaneousEstimator>(c.ports, c.ports);
      });
  PolicyStack s;
  s.matcher = "test-ambi";
  EXPECT_EQ(s.to_string(), "matcher=test-ambi/solstice/instantaneous/hardware");
  EXPECT_EQ(PolicyStack::parse(s.to_string()), s);
}

}  // namespace
}  // namespace xdrs::core
