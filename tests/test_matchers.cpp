// Property-based tests across every matching algorithm: conflict-freedom,
// demand-respect, maximality, optimality (where promised) and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "schedulers/policy_registry.hpp"
#include "schedulers/greedy.hpp"
#include "schedulers/hopcroft_karp.hpp"
#include "schedulers/hungarian.hpp"
#include "schedulers/rga.hpp"
#include "schedulers/rotor.hpp"
#include "sim/random.hpp"

namespace xdrs::schedulers {
namespace {

/// Registry shorthand used throughout this file.
std::unique_ptr<MatchingAlgorithm> make_matcher(std::string_view spec, std::uint32_t ports,
                                                std::uint64_t seed = 1) {
  return PolicyRegistry::instance().make_matcher(spec, {.ports = ports, .seed = seed});
}

std::vector<std::string> known_matcher_specs() {
  return PolicyRegistry::instance().known_specs(PolicyKind::kMatcher);
}

demand::DemandMatrix random_demand(std::uint32_t n, sim::Rng& rng, double density) {
  demand::DemandMatrix m{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) m.set(i, j, rng.uniform_int(1, 10'000));
    }
  }
  return m;
}

demand::DemandMatrix full_demand(std::uint32_t n, std::int64_t v = 1000) {
  demand::DemandMatrix m{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) m.set(i, j, v);
  }
  return m;
}

/// No matched pair without demand; used on every algorithm except rotor
/// (which is demand-oblivious by design).
void expect_respects_demand(const Matching& m, const demand::DemandMatrix& d) {
  m.for_each_pair([&](net::PortId i, net::PortId j) { EXPECT_GT(d.at(i, j), 0); });
}

/// Maximal: no augmenting single edge remains.
void expect_maximal(const Matching& m, const demand::DemandMatrix& d) {
  for (net::PortId i = 0; i < d.inputs(); ++i) {
    if (m.input_matched(i)) continue;
    for (net::PortId j = 0; j < d.outputs(); ++j) {
      if (d.at(i, j) > 0) {
        EXPECT_TRUE(m.output_matched(j))
            << "pair (" << i << "," << j << ") could still be matched";
      }
    }
  }
}

std::int64_t weight_of(const Matching& m, const demand::DemandMatrix& d) {
  return HungarianMatcher::matching_weight(m, d);
}

/// Exhaustive maximum-weight over all permutations (test oracle, n <= 6).
std::int64_t brute_force_max_weight(const demand::DemandMatrix& d) {
  std::vector<net::PortId> perm(d.inputs());
  std::iota(perm.begin(), perm.end(), 0);
  std::int64_t best = 0;
  do {
    std::int64_t w = 0;
    for (net::PortId i = 0; i < d.inputs(); ++i) w += d.at(i, perm[i]);
    best = std::max(best, w);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

// -------------------------------------------------------------- RGA family

struct RgaCase {
  const char* spec;
  std::uint32_t ports;
};

class RgaProperties : public ::testing::TestWithParam<RgaCase> {};

TEST_P(RgaProperties, RespectsDemandAndIsConflictFree) {
  const auto [spec, ports] = GetParam();
  auto matcher = make_matcher(spec, ports, 42);
  sim::Rng rng{ports * 17 + 1};
  for (int round = 0; round < 20; ++round) {
    const auto d = random_demand(ports, rng, 0.4);
    const Matching m = matcher->compute(d);
    expect_respects_demand(m, d);
    EXPECT_LE(m.size(), ports);
  }
}

TEST_P(RgaProperties, NIterationsYieldMaximalMatching) {
  const auto [spec, ports] = GetParam();
  // Re-spec with `ports` iterations: each iteration adds >= 1 pair while
  // any request exists, so N iterations guarantee maximality.
  const std::string base{spec};
  const std::string algo = base.substr(0, base.find(':'));
  auto matcher = make_matcher(algo + ":" + std::to_string(ports), ports, 42);
  sim::Rng rng{ports * 31 + 7};
  for (int round = 0; round < 20; ++round) {
    const auto d = random_demand(ports, rng, 0.5);
    const Matching m = matcher->compute(d);
    expect_maximal(m, d);
  }
}

TEST_P(RgaProperties, EmptyDemandYieldsEmptyMatching) {
  const auto [spec, ports] = GetParam();
  auto matcher = make_matcher(spec, ports, 42);
  const demand::DemandMatrix d{ports};
  EXPECT_TRUE(matcher->compute(d).empty());
  EXPECT_GE(matcher->last_iterations(), 1u);
}

TEST_P(RgaProperties, ReportsHardwareParallel) {
  const auto [spec, ports] = GetParam();
  auto matcher = make_matcher(spec, ports, 42);
  EXPECT_TRUE(matcher->hardware_parallel());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RgaProperties,
                         ::testing::Values(RgaCase{"rrm:1", 4}, RgaCase{"rrm:2", 8},
                                           RgaCase{"islip:1", 4}, RgaCase{"islip:2", 8},
                                           RgaCase{"islip:4", 16}, RgaCase{"pim:1", 4},
                                           RgaCase{"pim:2", 8}, RgaCase{"pim:4", 16}));

TEST(Islip, DesynchronisesToPerfectMatchingUnderFullLoad) {
  // The classic iSLIP result: persistent all-to-all demand desynchronises
  // the pointers; within a few N slots every slot yields a perfect match.
  constexpr std::uint32_t kPorts = 8;
  IslipMatcher matcher{kPorts, 1};
  const auto d = full_demand(kPorts);
  std::uint32_t last_size = 0;
  for (std::uint32_t slot = 0; slot < 3 * kPorts; ++slot) {
    last_size = matcher.compute(d).size();
  }
  EXPECT_EQ(last_size, kPorts);
}

TEST(Islip, OneIterationCountsOneIteration) {
  IslipMatcher matcher{4, 1};
  (void)matcher.compute(full_demand(4));
  EXPECT_EQ(matcher.last_iterations(), 1u);
}

TEST(Islip, ConvergenceStopsEarly) {
  // With demand only on one pair, further iterations add nothing; the
  // matcher should not burn all its iteration budget.
  IslipMatcher matcher{8, 8};
  demand::DemandMatrix d{8};
  d.set(3, 5, 100);
  const Matching m = matcher.compute(d);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_LE(matcher.last_iterations(), 2u);
}

TEST(Rrm, SynchronisationPathologyUnderUniformLoad) {
  // RRM's pointers move in lockstep: under persistent full demand its
  // 1-iteration matchings stay well below perfect — the motivation for
  // iSLIP.  (Documented behaviour, not a bug.)
  constexpr std::uint32_t kPorts = 8;
  RrmMatcher matcher{kPorts, 1};
  const auto d = full_demand(kPorts);
  std::uint32_t total = 0;
  constexpr int kSlots = 64;
  for (int slot = 0; slot < kSlots; ++slot) total += matcher.compute(d).size();
  const double mean_size = static_cast<double>(total) / kSlots;
  EXPECT_LT(mean_size, kPorts * 0.8);
}

TEST(Pim, DeterministicForSeed) {
  const auto d = full_demand(8);
  PimMatcher a{8, 2, 7}, b{8, 2, 7};
  for (int round = 0; round < 10; ++round) EXPECT_EQ(a.compute(d), b.compute(d));
}

TEST(Pim, LogIterationsNearPerfectOnFullDemand) {
  constexpr std::uint32_t kPorts = 16;
  PimMatcher matcher{kPorts, 5, 3};  // log2(16)+1
  const auto d = full_demand(kPorts);
  std::uint32_t total = 0;
  constexpr int kSlots = 50;
  for (int s = 0; s < kSlots; ++s) total += matcher.compute(d).size();
  EXPECT_GT(static_cast<double>(total) / kSlots, kPorts * 0.9);
}

TEST(Rga, RejectsZeroIterations) {
  EXPECT_THROW(IslipMatcher(4, 0), std::invalid_argument);
  EXPECT_THROW(RrmMatcher(4, 0), std::invalid_argument);
}

// ------------------------------------------------------------------ greedy

TEST(Greedy, PicksHeaviestEdgeFirst) {
  GreedyMaxWeightMatcher g;
  demand::DemandMatrix d{3};
  d.set(0, 0, 10);
  d.set(0, 1, 100);
  d.set(1, 1, 50);
  const Matching m = g.compute(d);
  EXPECT_EQ(m.output_of(0), 1u);  // heaviest edge claimed both sides
}

TEST(Greedy, IsMaximal) {
  GreedyMaxWeightMatcher g;
  sim::Rng rng{5};
  for (int round = 0; round < 30; ++round) {
    const auto d = random_demand(8, rng, 0.4);
    expect_maximal(g.compute(d), d);
  }
}

TEST(Greedy, AtLeastHalfOptimal) {
  // Greedy maximal-weight matching is a 2-approximation.
  GreedyMaxWeightMatcher g;
  HungarianMatcher exact;
  sim::Rng rng{9};
  for (int round = 0; round < 30; ++round) {
    const auto d = random_demand(6, rng, 0.6);
    const std::int64_t greedy_w = weight_of(g.compute(d), d);
    const std::int64_t exact_w = weight_of(exact.compute(d), d);
    EXPECT_GE(2 * greedy_w, exact_w);
    EXPECT_LE(greedy_w, exact_w);
  }
}

// --------------------------------------------------------------- Hungarian

TEST(Hungarian, MatchesBruteForceOnSmallMatrices) {
  HungarianMatcher h;
  sim::Rng rng{11};
  for (int round = 0; round < 40; ++round) {
    const auto d = random_demand(5, rng, 0.7);
    EXPECT_EQ(weight_of(h.compute(d), d), brute_force_max_weight(d)) << d.to_string();
  }
}

TEST(Hungarian, NeverMatchesZeroDemandPairs) {
  HungarianMatcher h;
  sim::Rng rng{13};
  for (int round = 0; round < 20; ++round) {
    const auto d = random_demand(6, rng, 0.3);
    expect_respects_demand(h.compute(d), d);
  }
}

TEST(Hungarian, PerfectOnFullDemand) {
  HungarianMatcher h;
  EXPECT_TRUE(h.compute(full_demand(8)).is_perfect());
}

TEST(Hungarian, RectangularMatrices) {
  HungarianMatcher h;
  demand::DemandMatrix d{2, 4};
  d.set(0, 3, 10);
  d.set(1, 1, 20);
  const Matching m = h.compute(d);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(weight_of(m, d), 30);
}

TEST(Hungarian, EmptyMatrix) {
  HungarianMatcher h;
  EXPECT_TRUE(h.compute(demand::DemandMatrix{4}).empty());
}

TEST(Hungarian, DiagonalIsOptimal) {
  HungarianMatcher h;
  demand::DemandMatrix d{4};
  for (net::PortId i = 0; i < 4; ++i) d.set(i, i, 100);
  const Matching m = h.compute(d);
  EXPECT_TRUE(m.is_perfect());
  EXPECT_EQ(weight_of(m, d), 400);
}

// ------------------------------------------------------------ Hopcroft-Karp

TEST(HopcroftKarp, FindsPerfectMatchingWhenOneExists) {
  HopcroftKarp hk{4, 4};
  for (std::uint32_t i = 0; i < 4; ++i) {
    hk.add_edge(i, i);
    hk.add_edge(i, (i + 1) % 4);
  }
  EXPECT_EQ(hk.solve(), 4u);
}

TEST(HopcroftKarp, MaxCardinalityOnStarGraph) {
  // All left vertices share one right vertex: maximum matching is 1.
  HopcroftKarp hk{4, 4};
  for (std::uint32_t i = 0; i < 4; ++i) hk.add_edge(i, 0);
  EXPECT_EQ(hk.solve(), 1u);
}

TEST(HopcroftKarp, AugmentingPathCase) {
  // Classic case requiring augmentation: greedy would find 1, maximum is 2.
  HopcroftKarp hk{2, 2};
  hk.add_edge(0, 0);
  hk.add_edge(0, 1);
  hk.add_edge(1, 0);
  EXPECT_EQ(hk.solve(), 2u);
}

TEST(HopcroftKarp, ClearEdgesResets) {
  HopcroftKarp hk{2, 2};
  hk.add_edge(0, 0);
  EXPECT_EQ(hk.solve(), 1u);
  hk.clear_edges();
  EXPECT_EQ(hk.solve(), 0u);
}

TEST(HopcroftKarp, EdgeValidation) {
  HopcroftKarp hk{2, 2};
  EXPECT_THROW(hk.add_edge(2, 0), std::out_of_range);
  EXPECT_THROW(hk.add_edge(0, 2), std::out_of_range);
}

TEST(MaxSizeMatcher, CardinalityAtLeastAnyOtherMatcher) {
  MaxSizeMatcher ms;
  GreedyMaxWeightMatcher g;
  sim::Rng rng{17};
  for (int round = 0; round < 30; ++round) {
    const auto d = random_demand(8, rng, 0.3);
    EXPECT_GE(ms.compute(d).size(), g.compute(d).size());
  }
}

TEST(MaxSizeMatcher, RespectsDemand) {
  MaxSizeMatcher ms;
  sim::Rng rng{19};
  const auto d = random_demand(8, rng, 0.4);
  expect_respects_demand(ms.compute(d), d);
}

// ------------------------------------------------------------------- rotor

TEST(Rotor, CyclesThroughRotations) {
  RotorMatcher r{4};
  const auto d = full_demand(4);
  const Matching m1 = r.compute(d);
  const Matching m2 = r.compute(d);
  const Matching m3 = r.compute(d);
  const Matching m4 = r.compute(d);
  EXPECT_EQ(m1, Matching::rotation(4, 1));
  EXPECT_EQ(m2, Matching::rotation(4, 2));
  EXPECT_EQ(m3, Matching::rotation(4, 3));
  EXPECT_EQ(m4, Matching::rotation(4, 1));  // wraps, skipping identity
}

TEST(Rotor, IgnoresDemand) {
  RotorMatcher r{4};
  const demand::DemandMatrix empty{4};
  EXPECT_TRUE(r.compute(empty).is_perfect());
}

TEST(Rotor, DimensionMismatchThrows) {
  RotorMatcher r{4};
  EXPECT_THROW((void)r.compute(demand::DemandMatrix{5}), std::invalid_argument);
}

// ----------------------------------------------------------------- factory

TEST(Factory, BuildsAllKnownSpecs) {
  for (const auto& spec : known_matcher_specs()) {
    auto m = make_matcher(spec, 8, 1);
    ASSERT_NE(m, nullptr) << spec;
    EXPECT_FALSE(m->name().empty());
  }
}

TEST(Factory, ParsesIterationCounts) {
  auto m = make_matcher("islip:4", 8, 1);
  (void)m->compute(full_demand(8));
  EXPECT_LE(m->last_iterations(), 4u);
  EXPECT_EQ(m->name(), "islip-i4");
}

TEST(Factory, RejectsUnknownAndMalformedSpecs) {
  EXPECT_THROW((void)make_matcher("nope", 8), std::invalid_argument);
  EXPECT_THROW((void)make_matcher("islip:0", 8), std::invalid_argument);
  EXPECT_THROW((void)make_matcher("islip:abc", 8), std::invalid_argument);
  EXPECT_THROW((void)make_matcher("islip:", 8), std::invalid_argument);
}

}  // namespace
}  // namespace xdrs::schedulers
