// Tests for the named grid presets, centred on the key-uniqueness
// guarantee: ScenarioSpec::key() is documented as "the deterministic
// identity in serialized sweeps", so expanding ANY preset — including the
// 960-point policy cross-product, whose points differ only in estimator or
// timing, and the composite mixes — must yield pairwise-distinct keys.
// (The seed key() truncated load to two decimals and printed only one
// policy spec, which made policy-cross points collide.)
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "exp/presets.hpp"

namespace xdrs::exp {
namespace {

TEST(Presets, KnowsTheBuiltInGrids) {
  const auto names = known_presets();
  for (const char* expected : {"small", "full", "policy-cross", "composite", "deadline", "trace",
                               "empirical", "ft2", "p128"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing preset " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Presets, PolicyCrossWalksTheFullRegistryCrossProduct) {
  // 12 matchers x 4 circuits x 4 estimators x 5 timing models.
  EXPECT_EQ(make_preset("policy-cross").size(), 960u);
}

TEST(Presets, CompositeAndTraceGridsHaveTheDocumentedShape) {
  // 3 composite scenarios x 2 loads x 2 circuit schedulers.
  EXPECT_EQ(make_preset("composite").size(), 12u);
  // 1 trace scenario x 3 loads x 2 circuit schedulers.
  EXPECT_EQ(make_preset("trace").size(), 6u);
  // 3 empirical scenarios x 2 loads x 2 circuit schedulers.
  EXPECT_EQ(make_preset("empirical").size(), 12u);
  // 2 paper-scale scenarios x 2 loads x 3 matchers, all at 128 ports.
  const std::vector<ScenarioSpec> p128 = make_preset("p128");
  EXPECT_EQ(p128.size(), 12u);
  for (const ScenarioSpec& spec : p128) EXPECT_EQ(spec.config.ports, 128u);
  // websearch_dl 2 loads x 2 matchers x 2 estimators + rpc_slo 2 loads x
  // 2 estimators.
  EXPECT_EQ(make_preset("deadline").size(), 12u);
  // 2 fat-tree scenarios x 2 oversubscriptions x 2 localities, all 2-rack.
  const std::vector<ScenarioSpec> ft2 = make_preset("ft2");
  EXPECT_EQ(ft2.size(), 8u);
  for (const ScenarioSpec& spec : ft2) {
    EXPECT_EQ(spec.topology.racks, 2u);
    EXPECT_TRUE(spec.topology.multi_rack());
  }
}

TEST(Presets, DeadlineGridCrossesAwareAndBlindStacks) {
  // The grid exists to answer "does deadline-awareness help": every point
  // carries a deadline-bearing workload, and both the aware and the blind
  // variant of each axis must be present.
  std::set<std::string> scenarios;
  std::set<std::string> matchers;
  std::set<std::string> estimators;
  for (const ScenarioSpec& spec : make_preset("deadline")) {
    scenarios.insert(spec.scenario);
    matchers.insert(spec.policies.matcher);
    estimators.insert(spec.policies.estimator);
    bool any_deadline = false;
    for (const auto& w : spec.workloads) any_deadline |= w.deadline.enabled();
    EXPECT_TRUE(any_deadline) << spec.key();
  }
  EXPECT_EQ(scenarios, (std::set<std::string>{"websearch_dl", "rpc_slo"}));
  EXPECT_TRUE(matchers.count("srpt_w:2"));
  EXPECT_TRUE(estimators.count("edf"));
  EXPECT_TRUE(estimators.count("instantaneous"));
}

TEST(Presets, EmpiricalGridCoversBothBundledCdfs) {
  // The grid must exercise websearch, datamining and the websearch+incast
  // composite — the key-uniqueness sweep below keeps their keys distinct.
  std::set<std::string> scenarios;
  for (const ScenarioSpec& spec : make_preset("empirical")) scenarios.insert(spec.scenario);
  EXPECT_EQ(scenarios, (std::set<std::string>{"websearch", "datamining", "websearch+incast"}));
}

TEST(Presets, EveryPresetExpandsToPairwiseDistinctKeys) {
  for (const std::string& name : known_presets()) {
    const std::vector<ScenarioSpec> grid = make_preset(name);
    ASSERT_FALSE(grid.empty()) << name;
    std::map<std::string, std::size_t> seen;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto [it, inserted] = seen.emplace(grid[i].key(), i);
      EXPECT_TRUE(inserted) << "preset '" << name << "': points " << it->second << " and " << i
                            << " share key '" << grid[i].key() << "'";
    }
  }
}

TEST(Presets, KeysAreStableAcrossExpansions) {
  // The key is an identity, not a transient label: rebuilding the grid
  // reproduces the same keys in the same order.
  for (const std::string& name : {std::string{"small"}, std::string{"composite"}}) {
    const std::vector<ScenarioSpec> a = make_preset(name);
    const std::vector<ScenarioSpec> b = make_preset(name);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].key(), b[i].key()) << name;
  }
}

TEST(Presets, UnknownNameThrowsWithKnownList) {
  try {
    (void)make_preset("no-such-preset");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("policy-cross"), std::string::npos);
  }
}

}  // namespace
}  // namespace xdrs::exp
