// Tests for the deadline/SLO subsystem: assigner math and determinism,
// flow-completion tracking (met / missed / censored), the SRPT weight
// transform and its epoch-warm invalidation, EDF urgency snapshots, and
// the end-to-end properties the sweep artefacts rely on — miss ratio is
// exactly zero without deadlines, monotone in offered load at a fixed
// seed, and byte-identical across runner thread counts and shard/merge.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/flow_tracker.hpp"
#include "demand/demand_matrix.hpp"
#include "demand/edf.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "net/packet.hpp"
#include "schedulers/greedy.hpp"
#include "schedulers/srpt.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"
#include "traffic/deadline.hpp"

namespace xdrs {
namespace {

using namespace xdrs::sim::literals;
using sim::Time;

// ---- DeadlineAssigner ------------------------------------------------------

TEST(DeadlineAssigner, NoneAlwaysReturnsZero) {
  traffic::DeadlineAssigner off;  // default-constructed = disabled
  EXPECT_FALSE(off.enabled());
  EXPECT_TRUE(off.assign(Time::microseconds(5), 1'000'000).is_zero());

  traffic::DeadlineSpec spec;  // kind defaults to kNone
  traffic::DeadlineAssigner a{spec, sim::DataRate::gbps(10), 7};
  EXPECT_FALSE(a.enabled());
  EXPECT_TRUE(a.assign(Time::zero(), 64).is_zero());
}

TEST(DeadlineAssigner, FixedAddsTheOffsetToTheFlowStart) {
  traffic::DeadlineSpec spec;
  spec.kind = traffic::DeadlineSpec::Kind::kFixed;
  spec.fixed = Time::microseconds(250);
  traffic::DeadlineAssigner a{spec, sim::DataRate::gbps(10), 7};
  EXPECT_TRUE(a.enabled());
  EXPECT_EQ(a.assign(Time::microseconds(10), 999), Time::microseconds(260));
  // Size-independent: a 1000x larger flow gets the same absolute offset.
  EXPECT_EQ(a.assign(Time::microseconds(10), 999'000), Time::microseconds(260));
}

TEST(DeadlineAssigner, SloScalesWithFlowBytesAtTheFractionalRate) {
  traffic::DeadlineSpec spec;
  spec.kind = traffic::DeadlineSpec::Kind::kSlo;
  spec.slo_fraction = 0.25;
  spec.slack = Time::microseconds(50);
  traffic::DeadlineAssigner a{spec, sim::DataRate::gbps(10), 7};
  // 1000 B at 0.25 x 10G = 2.5 Gb/s -> 8000 bits / 2.5e9 = 3.2 us exactly.
  const Time start = Time::microseconds(100);
  EXPECT_EQ(a.assign(start, 1000), start + Time::picoseconds(3'200'000) + spec.slack);
  // Double the bytes, double the transmission budget; the slack is flat.
  EXPECT_EQ(a.assign(start, 2000), start + Time::picoseconds(6'400'000) + spec.slack);
}

TEST(DeadlineAssigner, CdfDrawsAreDeterministicPerSeedAndIndependentOfFlowSize) {
  // Budget bytes come from the empirical CDF, not the flow's own size: the
  // same draw sequence yields the same deadlines for wildly different flows.
  const std::string cdf = (std::filesystem::temp_directory_path() /
                           ("xdrs_dl_cdf_" + std::to_string(::getpid()) + ".csv"))
                              .string();
  {
    std::ofstream out{cdf, std::ios::trunc};
    out << "bytes,cdf\n1000,0.5\n1000000,1.0\n";
  }
  traffic::DeadlineSpec spec;
  spec.kind = traffic::DeadlineSpec::Kind::kCdf;
  spec.slo_fraction = 0.5;
  spec.slack = Time::microseconds(10);
  spec.cdf_path = cdf;

  traffic::DeadlineAssigner a{spec, sim::DataRate::gbps(10), 7};
  traffic::DeadlineAssigner b{spec, sim::DataRate::gbps(10), 7};
  traffic::DeadlineAssigner c{spec, sim::DataRate::gbps(10), 8};
  std::vector<Time> from_a, from_b, from_c;
  for (int i = 0; i < 64; ++i) {
    const Time start = Time::microseconds(i);
    from_a.push_back(a.assign(start, 100));
    from_b.push_back(b.assign(start, 100'000'000));  // size must not matter
    from_c.push_back(c.assign(start, 100));
    EXPECT_GE(from_a.back(), start + spec.slack) << i;
  }
  EXPECT_EQ(from_a, from_b);
  EXPECT_NE(from_a, from_c);  // a different seed draws a different sequence
  std::filesystem::remove(cdf);
}

// ---- FlowCompletionTracker -------------------------------------------------

net::Packet packet(net::PortId src, net::FlowId flow, std::int64_t bytes, Time created,
                   Time deadline, std::int64_t flow_bytes) {
  net::Packet p;
  p.src = src;
  p.dst = src + 1;
  p.flow = flow;
  p.size_bytes = bytes;
  p.created_at = created;
  p.deadline = deadline;
  p.flow_bytes = flow_bytes;
  return p;
}

TEST(FlowCompletionTracker, SplitsMetMissedAndCensoredFlows) {
  core::FlowCompletionTracker t;
  const Time end = Time::milliseconds(1);

  // Flow 1: two packets, done at 40us, deadline 50us -> met, FCT 30us.
  t.on_deliver(packet(0, 1, 600, 10_us, 50_us, 1000), 20_us);
  t.on_deliver(packet(0, 1, 400, 10_us, 50_us, 1000), 40_us);
  // Flow 2: completes at 90us, deadline 60us -> missed (late completion).
  t.on_deliver(packet(0, 2, 1000, 10_us, 60_us, 1000), 90_us);
  // Flow 3: unfinished, deadline 80us < end -> missed (expired).
  t.on_deliver(packet(0, 3, 500, 10_us, 80_us, 1000), 70_us);
  // Flow 4: unfinished, deadline beyond the horizon -> censored.
  t.on_deliver(packet(0, 4, 500, 10_us, Time::milliseconds(5), 1000), 70_us);
  // Flow 5: no deadline, completes -> fct_other only.
  t.on_deliver(packet(1, 5, 1000, 10_us, Time::zero(), 1000), 35_us);
  // Flow 6: no deadline, unfinished -> censored entirely.
  t.on_deliver(packet(1, 6, 100, 10_us, Time::zero(), 1000), 35_us);
  // Packet-level source (no flow size): ignored even with a million bytes.
  t.on_deliver(packet(2, 7, 1'000'000, 10_us, 20_us, 0), 15_us);

  core::RunReport r;
  t.finalize(Time::zero(), end, r);
  EXPECT_EQ(r.deadline_flows_met, 1u);
  EXPECT_EQ(r.deadline_flows_missed, 2u);
  EXPECT_DOUBLE_EQ(r.deadline_miss_ratio(), 2.0 / 3.0);
  EXPECT_EQ(r.fct_deadline.count(), 2u);  // completions only (flows 1 and 2)
  EXPECT_EQ(r.fct_deadline.min(), (30_us).ps());
  EXPECT_EQ(r.fct_deadline.max(), (80_us).ps());
  EXPECT_EQ(r.fct_other.count(), 1u);
  EXPECT_EQ(r.fct_other.max(), (25_us).ps());
}

TEST(FlowCompletionTracker, GoodputCountsOnlyBytesDeliveredByTheDeadline) {
  core::FlowCompletionTracker t;
  // 600 B arrive before the 50us deadline, 400 B after: only the 600 count.
  t.on_deliver(packet(0, 1, 600, 10_us, 50_us, 1000), 45_us);
  t.on_deliver(packet(0, 1, 400, 10_us, 50_us, 1000), 55_us);
  // A no-deadline flow contributes nothing regardless of timing.
  t.on_deliver(packet(1, 2, 800, 10_us, Time::zero(), 800), 20_us);
  core::RunReport r;
  t.finalize(Time::zero(), Time::milliseconds(1), r);
  EXPECT_EQ(r.goodput_before_deadline_bytes, 600);
  EXPECT_EQ(r.deadline_flows_missed, 1u);  // completed late
}

TEST(FlowCompletionTracker, WarmupStraddlingFlowsAreExcluded) {
  core::FlowCompletionTracker t;
  // Born before the measurement window: observed but never reported, even
  // though it completes (and would have missed) inside the window.
  t.on_deliver(packet(0, 1, 1000, 10_us, 60_us, 1000), 90_us);
  // Born inside the window: reported.
  t.on_deliver(packet(0, 2, 1000, 120_us, 200_us, 1000), 150_us);
  EXPECT_EQ(t.tracked_flows(), 2u);
  core::RunReport r;
  t.finalize(100_us, Time::milliseconds(1), r);
  EXPECT_EQ(r.deadline_flows_met, 1u);
  EXPECT_EQ(r.deadline_flows_missed, 0u);
  EXPECT_EQ(r.goodput_before_deadline_bytes, 1000);
}

// ---- SrptWeightedMatcher ---------------------------------------------------

TEST(SrptWeighted, PrefersTheSmallestRemainingQueues) {
  // maxweight/greedy serve the heaviest backlog; SRPT inverts it.
  demand::DemandMatrix d{2};
  d.set(0, 0, 100);        // nearly-done RPC
  d.set(0, 1, 1'000'000);  // bulk shuffle
  d.set(1, 0, 1'000'000);
  d.set(1, 1, 100);
  schedulers::SrptWeightedMatcher srpt{2.0};
  const schedulers::Matching inverted = srpt.compute(d);
  EXPECT_EQ(inverted.output_of(0), 0u);
  EXPECT_EQ(inverted.output_of(1), 1u);
  schedulers::GreedyMaxWeightMatcher greedy;
  const schedulers::Matching heavy = greedy.compute(d);
  EXPECT_EQ(heavy.output_of(0), 1u);
  EXPECT_EQ(heavy.output_of(1), 0u);
}

TEST(SrptWeighted, NeverGrantsZeroDemandAndStaysWorkConserving) {
  demand::DemandMatrix d{8};
  sim::Rng rng{42};
  for (net::PortId i = 0; i < 8; ++i) {
    for (net::PortId j = 0; j < 8; ++j) {
      if (rng.bernoulli(0.4)) d.set(i, j, rng.uniform_int(1, 1'000'000'000));
    }
  }
  schedulers::SrptWeightedMatcher m{1.0};
  const schedulers::Matching got = m.compute(d);
  got.for_each_pair([&](net::PortId i, net::PortId j) { EXPECT_GT(d.at(i, j), 0); });
  // Maximal on its support: no augmenting single edge left unmatched.
  for (net::PortId i = 0; i < 8; ++i) {
    for (net::PortId j = 0; j < 8; ++j) {
      if (d.at(i, j) > 0 && !got.input_matched(i) && !got.output_matched(j)) {
        FAIL() << "unmatched grantable pair " << i << "->" << j;
      }
    }
  }
}

TEST(SrptWeighted, UrgencyChangesInvalidateTheWarmEntry) {
  demand::DemandMatrix d{2};
  d.set(0, 0, 100);
  d.set(0, 1, 1'000'000);
  d.set(1, 0, 1'000'000);
  d.set(1, 1, 100);
  schedulers::SrptWeightedMatcher warm{2.0};
  schedulers::Matching first, replay, after;
  warm.compute_into(d, first);
  warm.compute_into(d, replay);  // unchanged urgency: bit-identical replay
  EXPECT_EQ(first, replay);
  EXPECT_EQ(first.output_of(0), 0u);

  // A value-only change (same support — what an EDF boost or a partial
  // drain looks like) must flip the preference: the anti-diagonal queues
  // are now the nearly-done ones.
  d.set(0, 0, 1'000'000);
  d.set(1, 1, 1'000'000);
  d.set(0, 1, 100);
  d.set(1, 0, 100);
  warm.compute_into(d, after);
  schedulers::SrptWeightedMatcher cold{2.0};
  schedulers::Matching fresh;
  cold.compute_into(d, fresh);
  EXPECT_EQ(after, fresh);  // warm instance == cold compute, always
  EXPECT_NE(after, first);  // and the urgency flip actually changed grants
  EXPECT_EQ(after.output_of(0), 1u);
  EXPECT_EQ(after.output_of(1), 0u);
}

TEST(SrptWeighted, RejectsNonPositiveGamma) {
  EXPECT_THROW(schedulers::SrptWeightedMatcher{0.0}, std::invalid_argument);
  EXPECT_THROW(schedulers::SrptWeightedMatcher{-1.0}, std::invalid_argument);
}

// ---- EdfEstimator ----------------------------------------------------------

TEST(EdfEstimator, BoostsBacklogAsTheDeadlineApproaches) {
  demand::EdfEstimator e{4, 4, /*boost=*/4.0};
  demand::DemandMatrix out{4};
  e.on_arrival(0, 1, 1000, Time::zero());
  e.on_arrival(2, 3, 1000, Time::zero());

  // No deadline anywhere: snapshot is the plain backlog.
  e.snapshot(Time::zero(), out);
  EXPECT_EQ(out.at(0, 1), 1000);
  EXPECT_EQ(out.at(2, 3), 1000);

  // A deadline exactly one epoch (100us) out weights by 1 + boost = 5.
  e.on_deadline(0, 1, Time::microseconds(100), Time::zero());
  e.snapshot(Time::zero(), out);
  EXPECT_EQ(out.at(0, 1), 5000);
  EXPECT_EQ(out.at(2, 3), 1000);  // the deadline-free VOQ is untouched

  // An expired deadline saturates at 1 + 64 * boost = 257.
  e.snapshot(Time::milliseconds(10), out);
  EXPECT_EQ(out.at(0, 1), 257'000);

  // The earliest deadline wins when several flows share the VOQ.
  e.on_deadline(0, 1, Time::microseconds(50), Time::zero());
  e.on_deadline(0, 1, Time::microseconds(900), Time::zero());
  e.snapshot(Time::zero(), out);
  EXPECT_EQ(out.at(0, 1), 1000 + 4 * 2 * 1000);  // 50us left -> urgency 9
}

TEST(EdfEstimator, DrainingTheVoqClearsItsDeadline) {
  demand::EdfEstimator e{2, 2, 4.0};
  demand::DemandMatrix out{2};
  e.on_arrival(0, 1, 1000, Time::zero());
  e.on_deadline(0, 1, Time::microseconds(100), Time::zero());
  e.on_departure(0, 1, 1000, Time::microseconds(10));  // VOQ empty
  e.on_arrival(0, 1, 500, Time::microseconds(20));     // new, deadline-free flow
  e.snapshot(Time::microseconds(20), out);
  EXPECT_EQ(out.at(0, 1), 500);  // stale urgency must not leak forward
}

TEST(EdfEstimator, RejectsNonPositiveBoost) {
  EXPECT_THROW((demand::EdfEstimator{4, 4, 0.0}), std::invalid_argument);
  EXPECT_THROW((demand::EdfEstimator{4, 4, -2.0}), std::invalid_argument);
}

// ---- end-to-end properties -------------------------------------------------

TEST(DeadlineProperties, MissRatioIsExactlyZeroWithoutDeadlines) {
  for (const char* name : {"uniform", "flows", "incast"}) {
    const core::RunReport r =
        exp::run_scenario(exp::make_scenario(name, 4, 0.6, 7).with_window(1_ms, 200_us));
    EXPECT_EQ(r.deadline_flows_met, 0u) << name;
    EXPECT_EQ(r.deadline_flows_missed, 0u) << name;
    EXPECT_DOUBLE_EQ(r.deadline_miss_ratio(), 0.0) << name;
    EXPECT_EQ(r.goodput_before_deadline_bytes, 0) << name;
    EXPECT_EQ(r.fct_deadline.count(), 0u) << name;
  }
}

TEST(DeadlineProperties, EnablingDeadlinesDoesNotPerturbTheWorkload) {
  // The assigner draws from its own forked rng stream, so switching a
  // workload from kNone to kSlo must replay the exact same arrivals.
  // Incast bursts fire once per millisecond; the window must span a few.
  exp::ScenarioSpec plain = exp::make_scenario("incast", 4, 0.6, 7).with_window(3_ms, 400_us);
  exp::ScenarioSpec slo = plain;
  for (auto& w : slo.workloads) {
    w.deadline.kind = traffic::DeadlineSpec::Kind::kSlo;
    w.deadline.slo_fraction = 0.25;
    w.deadline.slack = Time::microseconds(100);
  }
  const core::RunReport a = exp::run_scenario(plain);
  const core::RunReport b = exp::run_scenario(slo);
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.offered_bytes, b.offered_bytes);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.deadline_flows_met + a.deadline_flows_missed, 0u);
  EXPECT_GT(b.deadline_flows_met + b.deadline_flows_missed, 0u);
}

TEST(DeadlineProperties, MissRatioIsMonotoneInOfferedLoad) {
  // At a fixed seed, pushing the same mix harder can only hurt: the ratio
  // of deadline flows that miss is non-decreasing in offered load.  The
  // `flows` scenario scales arrival rate (not flow size) with load, so the
  // SLO budgets stay put while queueing grows.
  double previous = -1.0;
  for (const double load : {0.3, 0.6, 0.9}) {
    exp::ScenarioSpec s = exp::make_scenario("flows", 8, load, 7).with_window(2_ms, 400_us);
    for (auto& w : s.workloads) {
      w.deadline.kind = traffic::DeadlineSpec::Kind::kSlo;
      w.deadline.slo_fraction = 0.25;
      w.deadline.slack = Time::microseconds(20);
    }
    const core::RunReport r = exp::run_scenario(s);
    const double ratio = r.deadline_miss_ratio();
    EXPECT_GE(ratio, previous) << "load " << load;
    previous = ratio;
  }
  EXPECT_GT(previous, 0.0);  // the high-load point genuinely misses
}

TEST(DeadlineProperties, DeadlineSweepIsThreadInvariantAndMergesExactly) {
  // A miniature deadline grid (no CDF files: rpc_slo + explicit SLO knobs)
  // crossing deadline-aware and deadline-blind stacks, as the `deadline`
  // preset does.  The artefact bytes must not depend on runner threads or
  // on sharding.
  std::vector<exp::ScenarioSpec> grid{
      exp::make_scenario("rpc_slo", 4, 0.6, 7).with_window(1_ms, 200_us)};
  grid = exp::expand(grid, exp::axis_load({0.5, 0.8}));
  grid = exp::expand(grid, exp::axis_matcher({"maxweight", "srpt_w:2"}));
  grid = exp::expand(grid, exp::axis_estimator({"instantaneous", "edf"}));
  ASSERT_EQ(grid.size(), 8u);

  exp::SweepOptions one;
  one.threads = 1;
  const exp::SweepResult serial = exp::ExperimentRunner{one}.run(grid);
  exp::SweepOptions four;
  four.threads = 4;
  const exp::SweepResult threaded = exp::ExperimentRunner{four}.run(grid);
  EXPECT_EQ(serial.to_json(), threaded.to_json());
  EXPECT_EQ(serial.to_csv(), threaded.to_csv());

  exp::SweepOptions s0, s1;
  s0.shard = {0, 2};
  s1.shard = {1, 2};
  const exp::SweepResult merged = exp::SweepResult::merge_shards(
      grid, {exp::ExperimentRunner{s0}.run(grid).to_shard_json(),
             exp::ExperimentRunner{s1}.run(grid).to_shard_json()});
  EXPECT_EQ(merged.to_json(), serial.to_json());

  // The metrics actually flow into the artefact: some point misses.
  EXPECT_NE(serial.to_json().find("\"deadline_flows_"), std::string::npos);
  std::uint64_t total = 0;
  for (const auto& p : serial.points) {
    total += p.report.deadline_flows_met + p.report.deadline_flows_missed;
  }
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace xdrs
