// Tests for the host <-> switch synchronisation model.
#include <gtest/gtest.h>

#include "control/sync.hpp"

namespace xdrs::control {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

SyncConfig config(Time skew, Time jitter = Time::zero()) {
  SyncConfig c;
  c.max_skew = skew;
  c.jitter = jitter;
  c.seed = 7;
  return c;
}

TEST(SyncModel, ValidatesArguments) {
  EXPECT_THROW(SyncModel(0, config(1_us)), std::invalid_argument);
  SyncConfig bad = config(1_us);
  bad.guard_band = Time::zero() - 1_ns;
  EXPECT_THROW(SyncModel(4, bad), std::invalid_argument);
}

TEST(SyncModel, OffsetsBoundedBySkew) {
  SyncModel m{64, config(5_us)};
  for (std::uint32_t h = 0; h < 64; ++h) {
    EXPECT_LE(m.offset_of(h).ps(), (5_us).ps());
    EXPECT_GE(m.offset_of(h).ps(), -(5_us).ps());
  }
}

TEST(SyncModel, ZeroSkewMeansZeroOffsets) {
  SyncModel m{16, config(Time::zero())};
  for (std::uint32_t h = 0; h < 16; ++h) EXPECT_EQ(m.offset_of(h), Time::zero());
}

TEST(SyncModel, DeterministicPerSeed) {
  SyncModel a{8, config(2_us)}, b{8, config(2_us)};
  for (std::uint32_t h = 0; h < 8; ++h) EXPECT_EQ(a.offset_of(h), b.offset_of(h));
}

TEST(SyncModel, DifferentSeedsGiveDifferentOffsets) {
  SyncConfig c1 = config(2_us);
  SyncConfig c2 = config(2_us);
  c2.seed = 8;
  SyncModel a{8, c1}, b{8, c2};
  int same = 0;
  for (std::uint32_t h = 0; h < 8; ++h) same += a.offset_of(h) == b.offset_of(h);
  EXPECT_LT(same, 4);
}

TEST(SyncModel, HostsHaveIndividualOffsets) {
  SyncModel m{32, config(3_us)};
  bool any_differ = false;
  for (std::uint32_t h = 1; h < 32; ++h) any_differ |= m.offset_of(h) != m.offset_of(0);
  EXPECT_TRUE(any_differ);
}

TEST(SyncModel, JitterIsNonNegativeAndBounded) {
  SyncModel m{4, config(Time::zero(), 500_ns)};
  for (int i = 0; i < 1000; ++i) {
    const Time j = m.sample_jitter();
    EXPECT_GE(j, Time::zero());
    EXPECT_LE(j, 500_ns);
  }
}

TEST(SyncModel, HostActionTimeShiftsByOffset) {
  SyncModel m{4, config(2_us)};
  const Time granted = 100_us;
  for (std::uint32_t h = 0; h < 4; ++h) {
    const Time acted = m.host_action_time(h, granted);
    EXPECT_EQ(acted, granted + m.offset_of(h));  // zero jitter configured
  }
}

TEST(SyncModel, OffsetOutOfRangeThrows) {
  SyncModel m{4, config(1_us)};
  EXPECT_THROW((void)m.offset_of(4), std::out_of_range);
}

}  // namespace
}  // namespace xdrs::control
