// Tests for the two-tier fat-tree: deterministic placement, single-rack
// degeneration to the single-switch run, the oversubscription property the
// topology exists to model, and sweep-level thread/shard invariance of the
// multi-rack path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/report_io.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "sim/time.hpp"
#include "topo/fat_tree.hpp"

namespace xdrs {
namespace {

using namespace sim::literals;
using exp::ScenarioSpec;
using exp::make_scenario;
using topo::Placement;
using topo::place_flow;
using topo::TopologySpec;

// ---- placement -------------------------------------------------------------

TEST(Placement, IsAPureFunctionOfItsArguments) {
  // Same inputs, same answer — placement carries no stream state, so the
  // host->rack assignment cannot depend on thread count, shard split or
  // call order.
  for (std::uint64_t flow = 0; flow < 64; ++flow) {
    const Placement a = place_flow(7, 1, 3, 5, flow, 0.5, 4, 8);
    const Placement b = place_flow(7, 1, 3, 5, flow, 0.5, 4, 8);
    EXPECT_EQ(a.remote, b.remote);
    EXPECT_EQ(a.dst_rack, b.dst_rack);
    EXPECT_EQ(a.uplink, b.uplink);
  }
}

TEST(Placement, LocalityExtremesAndRangeInvariants) {
  for (std::uint64_t flow = 0; flow < 256; ++flow) {
    // locality 1.0: nothing ever leaves the rack.
    EXPECT_FALSE(place_flow(7, 0, 1, 2, flow, 1.0, 4, 8).remote);
    // locality 0.0: everything leaves, to a DIFFERENT rack, on a valid
    // uplink.
    const Placement p = place_flow(7, 2, 1, 2, flow, 0.0, 4, 8);
    EXPECT_TRUE(p.remote);
    EXPECT_NE(p.dst_rack, 2u);
    EXPECT_LT(p.dst_rack, 4u);
    EXPECT_LT(p.uplink, 8u);
  }
}

TEST(Placement, LocalityFractionIsApproximatelyHonoured) {
  const double locality = 0.7;
  int local = 0;
  const int n = 4000;
  for (int flow = 0; flow < n; ++flow) {
    if (!place_flow(7, 1, 3, 5, static_cast<std::uint64_t>(flow), locality, 4, 8).remote) {
      ++local;
    }
  }
  EXPECT_NEAR(static_cast<double>(local) / n, locality, 0.03);
}

TEST(Placement, SeedAndLocalityChangeTheAssignment) {
  // Different seeds draw different assignments for at least some flows, and
  // the keep-local draw is monotone in locality: any flow local at 0.3
  // stays local at 0.9 (same hash, larger threshold).
  int differs = 0;
  for (std::uint64_t flow = 0; flow < 256; ++flow) {
    const Placement a = place_flow(7, 0, 1, 2, flow, 0.5, 4, 8);
    const Placement b = place_flow(8, 0, 1, 2, flow, 0.5, 4, 8);
    if (a.remote != b.remote || a.dst_rack != b.dst_rack) ++differs;
    if (!place_flow(7, 0, 1, 2, flow, 0.3, 4, 8).remote) {
      EXPECT_FALSE(place_flow(7, 0, 1, 2, flow, 0.9, 4, 8).remote);
    }
  }
  EXPECT_GT(differs, 0);
}

TEST(TopologySpecTest, UplinkDerivationFollowsOversubscription) {
  TopologySpec t;
  EXPECT_EQ(t.uplinks(8), 8u);  // full bisection
  t.oversubscription = 2.0;
  EXPECT_EQ(t.uplinks(8), 4u);
  t.oversubscription = 16.0;
  EXPECT_EQ(t.uplinks(8), 1u);  // never below 1
  EXPECT_FALSE(t.multi_rack());
  t.racks = 2;
  EXPECT_TRUE(t.multi_rack());
}

// ---- single-rack degeneration ----------------------------------------------

TEST(FatTreeRun, SingleRackReproducesTheSingleSwitchRunByteForByte) {
  const ScenarioSpec spec = make_scenario("uniform", 8, 0.7, 7).with_window(1_ms, 200_us);
  const core::RunReport plain = exp::run_scenario(spec);

  auto ft = exp::materialize_fat_tree(spec);
  ASSERT_EQ(ft->racks(), 1u);
  ASSERT_EQ(ft->uplink_ports(), 0u);
  const core::RunReport tree = ft->run(spec.duration, spec.warmup);

  EXPECT_EQ(core::report_state_json(tree), core::report_state_json(plain));
}

// ---- multi-rack runs -------------------------------------------------------

ScenarioSpec two_rack_spec(double locality, double oversub) {
  return make_scenario("uniform", 8, 0.7, 7)
      .with_window(1_ms, 200_us)
      .with_racks(2)
      .with_oversubscription(oversub)
      .with_locality(locality);
}

TEST(FatTreeRun, PerHopMetricsArePopulatedOnEveryMultiRackPoint) {
  const core::RunReport r = exp::run_scenario(two_rack_spec(0.5, 1.0));
  EXPECT_GT(r.intra_rack_bytes, 0);
  EXPECT_GT(r.cross_rack_bytes, 0);
  EXPECT_GT(r.core_link_bytes, 0);
  EXPECT_GT(r.core_utilization, 0.0);
  // Delivered bytes split exactly into the two hop classes.
  EXPECT_EQ(r.intra_rack_bytes + r.cross_rack_bytes, r.delivered_bytes);
}

TEST(FatTreeRun, FlowLevelWorkloadsSplitCompletionTimesByHopClass) {
  // "uniform" is packet-level (no flows, no FCTs); a flow-level scenario
  // records every completed flow into exactly one of the locality buckets.
  const ScenarioSpec spec = make_scenario("flows", 8, 0.7, 7)
                                .with_window(1_ms, 200_us)
                                .with_racks(2)
                                .with_locality(0.5);
  const core::RunReport r = exp::run_scenario(spec);
  EXPECT_GT(r.fct_intra_rack.count(), 0u);
  EXPECT_GT(r.fct_cross_rack.count(), 0u);
  // Both splits partition the same completed-flow population.
  EXPECT_EQ(r.fct_intra_rack.count() + r.fct_cross_rack.count(),
            r.fct_deadline.count() + r.fct_other.count());
}

TEST(FatTreeRun, MultiRackRunsAreDeterministic) {
  const core::RunReport a = exp::run_scenario(two_rack_spec(0.5, 2.0));
  const core::RunReport b = exp::run_scenario(two_rack_spec(0.5, 2.0));
  EXPECT_EQ(core::report_state_json(a), core::report_state_json(b));
}

TEST(FatTreeRun, OversubscriptionCapsCrossRackGoodputNotIntraRack) {
  // Mostly-remote traffic at high load: at 8:1 oversubscription the two
  // ToRs funnel ~80% of their offered load through a single uplink column
  // each, so cross-rack goodput must drop well below full bisection's,
  // while rack-local traffic — which never touches an uplink — stays in
  // the same ballpark.
  const ScenarioSpec full = two_rack_spec(0.2, 1.0).with_load(0.9);
  const ScenarioSpec tight = two_rack_spec(0.2, 8.0).with_load(0.9);
  const core::RunReport rf = exp::run_scenario(full);
  const core::RunReport rt = exp::run_scenario(tight);

  EXPECT_LT(rt.cross_rack_bytes, rf.cross_rack_bytes * 0.7);
  const double intra_ratio = static_cast<double>(rt.intra_rack_bytes) /
                             static_cast<double>(rf.intra_rack_bytes);
  EXPECT_GT(intra_ratio, 0.7);
  EXPECT_LT(intra_ratio, 1.3);
}

// ---- sweep invariance ------------------------------------------------------

std::vector<ScenarioSpec> small_ft_grid() {
  std::vector<ScenarioSpec> grid{
      make_scenario("uniform", 8, 0.7, 7).with_window(1_ms, 200_us).with_racks(2)};
  grid = exp::expand(grid, exp::axis_oversubscription({1.0, 2.0}));
  grid = exp::expand(grid, exp::axis_locality({0.5, 0.9}));
  return grid;  // 4 points, all multi-rack
}

TEST(FatTreeSweep, ThreadCountDoesNotChangeTheBytes) {
  const auto grid = small_ft_grid();
  exp::SweepOptions one;
  one.threads = 1;
  exp::SweepOptions four;
  four.threads = 4;
  const std::string a = exp::ExperimentRunner{one}.run(grid).to_json();
  const std::string b = exp::ExperimentRunner{four}.run(grid).to_json();
  EXPECT_EQ(a, b);
}

TEST(FatTreeSweep, TwoShardMergeMatchesTheUnshardedRun) {
  const auto grid = small_ft_grid();
  const std::string whole = exp::ExperimentRunner{}.run(grid).to_json();

  std::vector<std::string> shard_jsons;
  for (std::size_t i = 0; i < 2; ++i) {
    exp::SweepOptions opts;
    opts.shard = {i, 2};
    shard_jsons.push_back(exp::ExperimentRunner{opts}.run(grid).to_shard_json());
  }
  const exp::SweepResult merged = exp::SweepResult::merge_shards(grid, shard_jsons);
  EXPECT_EQ(merged.to_json(), whole);
}

}  // namespace
}  // namespace xdrs
