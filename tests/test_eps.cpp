// Tests for the electrical packet switch model: output queuing, drain
// pacing, buffer limits.
#include <gtest/gtest.h>

#include <vector>

#include "switching/eps.hpp"

namespace xdrs::switching {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

EpsConfig base_config() {
  EpsConfig c;
  c.ports = 4;
  c.port_rate = sim::DataRate::gbps(10);
  c.switching_latency = 500_ns;
  c.buffer_bytes_per_port = 10'000;
  return c;
}

net::Packet pkt(net::PortId src, net::PortId dst, std::int64_t bytes, std::uint64_t id = 0) {
  net::Packet p;
  p.id = id;
  p.src = src;
  p.dst = dst;
  p.size_bytes = bytes;
  return p;
}

TEST(Eps, ValidatesConfig) {
  sim::Simulator sim;
  EpsConfig c = base_config();
  c.ports = 0;
  EXPECT_THROW(ElectricalPacketSwitch(sim, c), std::invalid_argument);
  c = base_config();
  c.port_rate = sim::DataRate{};
  EXPECT_THROW(ElectricalPacketSwitch(sim, c), std::invalid_argument);
}

TEST(Eps, DeliversWithSerialisationPlusLatency) {
  sim::Simulator sim;
  ElectricalPacketSwitch eps{sim, base_config()};
  std::vector<std::int64_t> at;
  eps.set_deliver_callback([&](const net::Packet&, net::PortId) { at.push_back(sim.now().ps()); });
  ASSERT_TRUE(eps.send(pkt(0, 1, 1500)));
  sim.run();
  ASSERT_EQ(at.size(), 1u);
  // (1500+20) B at 10 Gbps = 1216 ns + 500 ns latency.
  EXPECT_EQ(at[0], (Time::nanoseconds(1216) + 500_ns).ps());
}

TEST(Eps, FifoPerOutputPort) {
  sim::Simulator sim;
  ElectricalPacketSwitch eps{sim, base_config()};
  std::vector<std::uint64_t> order;
  eps.set_deliver_callback([&](const net::Packet& p, net::PortId) { order.push_back(p.id); });
  (void)eps.send(pkt(0, 1, 1500, 1));
  (void)eps.send(pkt(2, 1, 1500, 2));
  (void)eps.send(pkt(3, 1, 1500, 3));
  sim.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Eps, DrainRateMatchesPortRate) {
  sim::Simulator sim;
  ElectricalPacketSwitch eps{sim, base_config()};
  std::vector<std::int64_t> at;
  eps.set_deliver_callback([&](const net::Packet&, net::PortId) { at.push_back(sim.now().ps()); });
  (void)eps.send(pkt(0, 1, 1500));
  (void)eps.send(pkt(0, 1, 1500));
  sim.run();
  ASSERT_EQ(at.size(), 2u);
  // Deliveries spaced by exactly one serialisation time (latency pipelined).
  EXPECT_EQ(at[1] - at[0], Time::nanoseconds(1216).ps());
}

TEST(Eps, IndependentOutputQueues) {
  sim::Simulator sim;
  ElectricalPacketSwitch eps{sim, base_config()};
  std::vector<std::int64_t> at;
  eps.set_deliver_callback([&](const net::Packet&, net::PortId) { at.push_back(sim.now().ps()); });
  (void)eps.send(pkt(0, 1, 1500));
  (void)eps.send(pkt(0, 2, 1500));  // different output: drains in parallel
  sim.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], at[1]);
}

TEST(Eps, BufferLimitDropsExcess) {
  sim::Simulator sim;
  EpsConfig c = base_config();
  c.buffer_bytes_per_port = 3000;
  ElectricalPacketSwitch eps{sim, c};
  EXPECT_TRUE(eps.send(pkt(0, 1, 1500)));
  EXPECT_TRUE(eps.send(pkt(0, 1, 1500)));
  EXPECT_FALSE(eps.send(pkt(0, 1, 1500)));  // 4500 > 3000
  EXPECT_EQ(eps.stats().packets_dropped, 1u);
  EXPECT_EQ(eps.stats().bytes_dropped, 1500);
  sim.run();
  EXPECT_EQ(eps.stats().packets_delivered, 2u);
}

TEST(Eps, UnlimitedBufferWhenZero) {
  sim::Simulator sim;
  EpsConfig c = base_config();
  c.buffer_bytes_per_port = 0;
  ElectricalPacketSwitch eps{sim, c};
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(eps.send(pkt(0, 1, 1500)));
  EXPECT_EQ(eps.stats().packets_dropped, 0u);
}

TEST(Eps, QueueIntrospection) {
  sim::Simulator sim;
  ElectricalPacketSwitch eps{sim, base_config()};
  (void)eps.send(pkt(0, 1, 1500));
  (void)eps.send(pkt(0, 1, 500));
  EXPECT_EQ(eps.queue_bytes(1), 2000);
  EXPECT_EQ(eps.queue_packets(1), 2u);
  EXPECT_EQ(eps.queue_bytes(2), 0);
  sim.run();
  EXPECT_EQ(eps.queue_bytes(1), 0);
}

TEST(Eps, PeakQueueTracking) {
  sim::Simulator sim;
  ElectricalPacketSwitch eps{sim, base_config()};
  (void)eps.send(pkt(0, 1, 1500));
  (void)eps.send(pkt(0, 1, 1500));
  EXPECT_EQ(eps.stats().peak_queue_bytes, 3000);
  sim.run();
  EXPECT_EQ(eps.stats().peak_queue_bytes, 3000);  // peak persists
}

TEST(Eps, StatsCountBytes) {
  sim::Simulator sim;
  ElectricalPacketSwitch eps{sim, base_config()};
  (void)eps.send(pkt(0, 1, 1000));
  (void)eps.send(pkt(1, 2, 500));
  sim.run();
  EXPECT_EQ(eps.stats().packets_delivered, 2u);
  EXPECT_EQ(eps.stats().bytes_delivered, 1500);
}

TEST(Eps, BadDestinationThrows) {
  sim::Simulator sim;
  ElectricalPacketSwitch eps{sim, base_config()};
  EXPECT_THROW((void)eps.send(pkt(0, 7, 100)), std::out_of_range);
  EXPECT_THROW((void)eps.queue_bytes(7), std::out_of_range);
  EXPECT_THROW((void)eps.queue_packets(7), std::out_of_range);
}

}  // namespace
}  // namespace xdrs::switching
