// Tests for the scheduler decision-latency models — the paper's central
// quantitative contrast (software: milliseconds; hardware: nanoseconds).
#include <gtest/gtest.h>

#include "control/timing.hpp"

namespace xdrs::control {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

TEST(SoftwareModel, OperatesInMilliseconds) {
  // Paper §2: "Software based schedulers ... operate in the order of
  // milliseconds."  A 64-port switch running a few iSLIP-like iterations.
  SoftwareSchedulerTimingModel model;
  const TimingBreakdown b = model.decision_latency(64, 4, true);
  EXPECT_GE(b.total(), 500_us);
  EXPECT_LE(b.total(), 50_ms);
}

TEST(HardwareModel, OperatesInNanoseconds) {
  HardwareSchedulerTimingModel model;
  const TimingBreakdown b = model.decision_latency(64, 4, true);
  EXPECT_LE(b.total(), 1_us);
  EXPECT_GT(b.total(), Time::zero());
}

TEST(Models, HardwareOrdersOfMagnitudeFaster) {
  SoftwareSchedulerTimingModel sw;
  HardwareSchedulerTimingModel hw;
  for (const std::uint32_t ports : {8u, 16u, 64u, 128u}) {
    const auto s = sw.decision_latency(ports, 4, true).total();
    const auto h = hw.decision_latency(ports, 4, true).total();
    // At least three orders of magnitude, per the ms-vs-ns framing.
    EXPECT_GT(s.ps() / h.ps(), 1000) << ports << " ports";
  }
}

TEST(SoftwareModel, ComputationGrowsWithPorts) {
  SoftwareSchedulerTimingModel m;
  const auto small = m.decision_latency(8, 2, true).schedule_computation;
  const auto large = m.decision_latency(64, 2, true).schedule_computation;
  EXPECT_GT(large, small);
  // Quadratic in ports for parallel-style algorithms run in software.
  EXPECT_EQ(large.ps(), small.ps() * 64);
}

TEST(SoftwareModel, ComputationGrowsWithIterations) {
  SoftwareSchedulerTimingModel m;
  const auto one = m.decision_latency(16, 1, true).schedule_computation;
  const auto four = m.decision_latency(16, 4, true).schedule_computation;
  EXPECT_EQ(four.ps(), one.ps() * 4);
}

TEST(HardwareModel, ParallelIterationCostIndependentOfPorts) {
  HardwareSchedulerTimingModel m;
  const auto p8 = m.decision_latency(8, 3, true).schedule_computation;
  const auto p256 = m.decision_latency(256, 3, true).schedule_computation;
  EXPECT_EQ(p8, p256);  // an arbitration pass is parallel across ports
}

TEST(HardwareModel, SequentialAlgorithmsPayPortDepth) {
  HardwareSchedulerTimingModel m;
  const auto p8 = m.decision_latency(8, 3, false).schedule_computation;
  const auto p256 = m.decision_latency(256, 3, false).schedule_computation;
  EXPECT_GT(p256, p8);  // priority-tree depth grows with log2(ports)
}

TEST(HardwareModel, NoSynchronisationComponent) {
  // Scheduler and VOQ state share a clock domain on-chip.
  HardwareSchedulerTimingModel m;
  EXPECT_EQ(m.decision_latency(64, 2, true).synchronisation, Time::zero());
}

TEST(SoftwareModel, HasAllLatencyComponents) {
  // §2 enumerates: demand estimation, schedule calculation, IO processing,
  // propagation; plus host synchronisation.
  SoftwareSchedulerTimingModel m;
  const TimingBreakdown b = m.decision_latency(64, 2, true);
  EXPECT_GT(b.demand_estimation, Time::zero());
  EXPECT_GT(b.schedule_computation, Time::zero());
  EXPECT_GT(b.io_processing, Time::zero());
  EXPECT_GT(b.propagation, Time::zero());
  EXPECT_GT(b.synchronisation, Time::zero());
}

TEST(Breakdown, TotalSumsComponents) {
  TimingBreakdown b;
  b.demand_estimation = 1_us;
  b.schedule_computation = 2_us;
  b.io_processing = 3_us;
  b.propagation = 4_us;
  b.synchronisation = 5_us;
  EXPECT_EQ(b.total(), 15_us);
}

TEST(IdealModel, IsZero) {
  IdealTimingModel m;
  EXPECT_EQ(m.decision_latency(64, 100, false).total(), Time::zero());
}

TEST(Models, NamesDistinct) {
  SoftwareSchedulerTimingModel sw;
  HardwareSchedulerTimingModel hw;
  IdealTimingModel ideal;
  EXPECT_NE(sw.name(), hw.name());
  EXPECT_NE(hw.name(), ideal.name());
}

TEST(HardwareModel, CustomClockScalesLatency) {
  HardwareTimingConfig slow;
  slow.clock_period = 10_ns;
  HardwareTimingConfig fast;
  fast.clock_period = 1_ns;
  HardwareSchedulerTimingModel a{slow}, b{fast};
  EXPECT_EQ(a.decision_latency(16, 2, true).schedule_computation.ps(),
            10 * b.decision_latency(16, 2, true).schedule_computation.ps());
}

}  // namespace
}  // namespace xdrs::control
