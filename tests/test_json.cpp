// Tests for the JSON reader: grammar coverage, strict typed accessors, and
// the dump() byte-identity guarantee the sweep cache and shard merge rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/json.hpp"
#include "stats/serialize.hpp"

namespace xdrs::stats {
namespace {

TEST(JsonParse, ScalarsAndContainers) {
  const JsonValue v = parse_json(R"({"a":1,"b":-2.5,"c":"hi","d":[true,false,null],"e":{}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_i64(), 1);
  EXPECT_EQ(v.at("a").as_u64(), 1u);
  EXPECT_DOUBLE_EQ(v.at("b").as_f64(), -2.5);
  EXPECT_EQ(v.at("c").as_str(), "hi");
  const auto& d = v.at("d").items();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_TRUE(d[0].as_bool());
  EXPECT_FALSE(d[1].as_bool());
  EXPECT_TRUE(d[2].is_null());
  EXPECT_TRUE(v.at("e").members().empty());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), std::invalid_argument);
}

TEST(JsonParse, ObjectsKeepInsertionOrder) {
  const JsonValue v = parse_json(R"({"z":1,"a":2,"m":3})");
  const auto& m = v.members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].first, "z");
  EXPECT_EQ(m[1].first, "a");
  EXPECT_EQ(m[2].first, "m");
}

TEST(JsonParse, StringEscapes) {
  const JsonValue v = parse_json(R"(["q\"b\\s\/n\nr\rt\tu\u0041snow\u2603pair\ud83d\ude00"])");
  EXPECT_EQ(v.items()[0].as_str(), "q\"b\\s/n\nr\rt\tuAsnow\xE2\x98\x83pair\xF0\x9F\x98\x80");
}

TEST(JsonParse, StrictAccessorsRejectMismatches) {
  const JsonValue v = parse_json(R"({"frac":1.5,"neg":-3,"big":18446744073709551615})");
  EXPECT_THROW((void)v.at("frac").as_i64(), std::invalid_argument);   // not integral
  EXPECT_THROW((void)v.at("neg").as_u64(), std::invalid_argument);    // negative
  EXPECT_THROW((void)v.at("big").as_i64(), std::invalid_argument);    // > int64 max
  EXPECT_EQ(v.at("big").as_u64(), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(v.at("frac").as_f64(), 1.5);
  EXPECT_THROW((void)v.at("frac").as_str(), std::invalid_argument);   // kind mismatch
  EXPECT_THROW((void)v.at("frac").items(), std::invalid_argument);
}

TEST(JsonParse, MalformedDocumentsThrow) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "nul", "01", "-",
                          "1.", "1e", "\"unterminated", "\"bad\\q\"", "{}x", "[1] 2",
                          "\"\\ud83d\"", "[\x01]"}) {
    EXPECT_THROW((void)parse_json(bad), std::invalid_argument) << "input: " << bad;
  }
}

TEST(JsonParse, DeepNestingIsRejectedNotACrash) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_THROW((void)parse_json(deep), std::invalid_argument);
}

TEST(JsonDump, RoundTripsEmittedArtefactsByteForByte) {
  // What the emitters produce: to_json_object over typed fields, including
  // a shortest-round-trip double with a long tail.
  const std::vector<Field> fields{
      Field::u64("schema_version", 2), Field::str("policy_stack", "islip:4/-/instant/hw"),
      Field::i64("delta", -42), Field::f64("ratio", 0.1 + 0.2), Field::f64("half", 0.5)};
  const std::string emitted = to_json_object(fields);
  EXPECT_EQ(parse_json(emitted).dump(), emitted);

  // Number tokens survive verbatim even when unusual.
  const std::string doc = R"({"a":1e-3,"b":1E+2,"c":-0.0,"d":[[1,2],[3,4]]})";
  EXPECT_EQ(parse_json(doc).dump(), doc);
}

TEST(JsonParse, OutOfRangeNumbersSaturateByMagnitude) {
  // Overflow -> +-inf (the emitter writes "1e999" for infinities on purpose).
  EXPECT_EQ(parse_json("1e999").as_f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(parse_json("-1e999").as_f64(), -std::numeric_limits<double>::infinity());
  // Underflow -> +-0, in exponent form and in plain decimal form.
  EXPECT_EQ(parse_json("1e-999").as_f64(), 0.0);
  EXPECT_EQ(parse_json("-1e-999").as_f64(), 0.0);
  const std::string tiny = "0." + std::string(400, '0') + "1";
  EXPECT_EQ(parse_json(tiny).as_f64(), 0.0);
  EXPECT_EQ(parse_json("-" + tiny).as_f64(), 0.0);
  EXPECT_TRUE(std::signbit(parse_json("-" + tiny).as_f64()));
  // Tiny mantissa with a positive exponent still underflows overall.
  EXPECT_EQ(parse_json(tiny + "e5").as_f64(), 0.0);
  // Huge plain-decimal integer overflows without any exponent.
  EXPECT_EQ(parse_json("1" + std::string(400, '0')).as_f64(),
            std::numeric_limits<double>::infinity());
}

TEST(JsonParse, WhitespaceIsInsignificant) {
  const JsonValue v = parse_json(" {\n\t\"a\" :\r [ 1 , 2 ] \n} ");
  EXPECT_EQ(v.at("a").items().size(), 2u);
}

TEST(JsonParse, DuplicateKeysKeepFirstForFind) {
  const JsonValue v = parse_json(R"({"k":1,"k":2})");
  EXPECT_EQ(v.at("k").as_i64(), 1);
  EXPECT_EQ(v.members().size(), 2u);  // both preserved for dump()
}

}  // namespace
}  // namespace xdrs::stats
