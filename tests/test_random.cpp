// Tests for the deterministic RNG and distribution helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.hpp"

namespace xdrs::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10'000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r{11};
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng r{13};
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[r.next_below(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBound), kDraws / 100);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r{17};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng r{19};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r{23};
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r{29};
  double sum = 0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.1);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng r{31};
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(r.pareto(1.5, 2.0), 2.0);
}

TEST(Rng, ParetoMeanMatchesTheory) {
  // E[X] = alpha * xm / (alpha - 1) for alpha > 1; use alpha=3 (light tail)
  // so the sample mean converges quickly.
  Rng r{37};
  double sum = 0;
  constexpr int kDraws = 300'000;
  for (int i = 0; i < kDraws; ++i) sum += r.pareto(3.0, 1.0);
  EXPECT_NEAR(sum / kDraws, 1.5, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng r{41};
  double sum = 0, sq = 0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, GeometricMean) {
  // Mean failures before first success = (1-p)/p = 4 for p = 0.2.
  Rng r{43};
  double sum = 0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(r.geometric(0.2));
  EXPECT_NEAR(sum / kDraws, 4.0, 0.1);
}

TEST(Rng, ForkedStreamsAreIndependentAndReproducible) {
  Rng parent1{99}, parent2{99};
  Rng childa1 = parent1.fork(1);
  Rng childb1 = parent1.fork(2);
  Rng childa2 = parent2.fork(1);
  // Same parent state + same tag -> same stream.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(childa1.next_u64(), childa2.next_u64());
  // Different tags -> different streams.
  Rng childa3 = Rng{99}.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += childb1.next_u64() == childa3.next_u64();
  EXPECT_LT(same, 2);
}

TEST(ZipfSampler, ValidatesArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(4, -0.5), std::invalid_argument);
}

TEST(ZipfSampler, ZeroSkewIsUniform) {
  ZipfSampler z{4, 0.0};
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(z.pmf(k), 0.25, 1e-12);
}

TEST(ZipfSampler, PmfDecreasesWithRank) {
  ZipfSampler z{16, 1.2};
  for (std::size_t k = 1; k < 16; ++k) EXPECT_GT(z.pmf(k - 1), z.pmf(k));
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler z{32, 0.9};
  double total = 0;
  for (std::size_t k = 0; k < 32; ++k) total += z.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, SampleFrequenciesMatchPmf) {
  ZipfSampler z{8, 1.0};
  Rng r{47};
  constexpr int kDraws = 200'000;
  std::vector<int> counts(8, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(r)];
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kDraws, z.pmf(k), 0.01);
  }
}

TEST(ZipfSampler, PmfOutOfRangeThrows) {
  ZipfSampler z{4, 1.0};
  EXPECT_THROW((void)z.pmf(4), std::out_of_range);
}

}  // namespace
}  // namespace xdrs::sim
