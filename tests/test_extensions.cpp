// Tests for the extension features: wavefront arbitration, EPS strict
// priority, incast traffic, OCS retune-failure injection, the distributed
// timing model, and per-class reporting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/framework.hpp"
#include "schedulers/policy_registry.hpp"
#include "schedulers/wavefront.hpp"
#include "topo/testbed.hpp"
#include "traffic/generators.hpp"

namespace xdrs {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

// ------------------------------------------------------------- wavefront

demand::DemandMatrix full_demand(std::uint32_t n, std::int64_t v = 100) {
  demand::DemandMatrix m{n};
  for (net::PortId i = 0; i < n; ++i) {
    for (net::PortId j = 0; j < n; ++j) m.set(i, j, v);
  }
  return m;
}

TEST(Wavefront, PerfectMatchingOnFullDemand) {
  schedulers::WavefrontMatcher w{8};
  EXPECT_TRUE(w.compute(full_demand(8)).is_perfect());
  EXPECT_EQ(w.last_iterations(), 8u);
  EXPECT_TRUE(w.hardware_parallel());
}

TEST(Wavefront, IsMaximal) {
  schedulers::WavefrontMatcher w{8};
  sim::Rng rng{3};
  for (int round = 0; round < 30; ++round) {
    demand::DemandMatrix d{8};
    for (net::PortId i = 0; i < 8; ++i) {
      for (net::PortId j = 0; j < 8; ++j) {
        if (rng.bernoulli(0.4)) {
          d.set(i, j, rng.uniform_int(1, 1000));
        }
      }
    }
    const schedulers::Matching m = w.compute(d);
    // No augmenting single edge: every unmatched demand pair has a busy
    // endpoint.
    for (net::PortId i = 0; i < 8; ++i) {
      if (m.input_matched(i)) continue;
      for (net::PortId j = 0; j < 8; ++j) {
        if (d.at(i, j) > 0) {
          EXPECT_TRUE(m.output_matched(j));
        }
      }
    }
    m.for_each_pair([&](net::PortId i, net::PortId j) { EXPECT_GT(d.at(i, j), 0); });
  }
}

TEST(Wavefront, RotatingPriorityIsFair) {
  // Persistent full demand: across N invocations, every pair must be
  // served at least once (the priority diagonal rotates through all N).
  constexpr std::uint32_t kPorts = 4;
  schedulers::WavefrontMatcher w{kPorts};
  const auto d = full_demand(kPorts);
  std::vector<int> served(kPorts * kPorts, 0);
  for (std::uint32_t round = 0; round < kPorts; ++round) {
    w.compute(d).for_each_pair(
        [&](net::PortId i, net::PortId j) { ++served[i * kPorts + j]; });
  }
  for (const int s : served) EXPECT_GE(s, 1);
}

TEST(Wavefront, FactorySpec) {
  auto m = schedulers::PolicyRegistry::instance().make_matcher("wavefront", {.ports = 8});
  EXPECT_EQ(m->name(), "wavefront");
  EXPECT_TRUE(m->compute(full_demand(8)).is_perfect());
}

TEST(Wavefront, DimensionMismatchThrows) {
  schedulers::WavefrontMatcher w{4};
  EXPECT_THROW((void)w.compute(demand::DemandMatrix{5}), std::invalid_argument);
}

// ------------------------------------------------------ EPS strict priority

net::Packet eps_pkt(net::PortId dst, std::int64_t bytes, net::TrafficClass tc,
                    std::uint64_t id) {
  net::Packet p;
  p.id = id;
  p.dst = dst;
  p.size_bytes = bytes;
  p.tclass = tc;
  return p;
}

TEST(EpsPriority, LatencySensitiveOvertakesBacklog) {
  sim::Simulator sim;
  switching::EpsConfig c;
  c.ports = 2;
  c.port_rate = sim::DataRate::gbps(10);
  c.strict_priority = true;
  switching::ElectricalPacketSwitch eps{sim, c};
  std::vector<std::uint64_t> order;
  eps.set_deliver_callback([&](const net::Packet& p, net::PortId) { order.push_back(p.id); });

  (void)eps.send(eps_pkt(0, 1500, net::TrafficClass::kBestEffort, 1));  // on the wire
  (void)eps.send(eps_pkt(0, 1500, net::TrafficClass::kBestEffort, 2));
  (void)eps.send(eps_pkt(0, 200, net::TrafficClass::kLatencySensitive, 3));
  sim.run();
  // Packet 1 is non-preemptible, but 3 overtakes 2.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 3, 2}));
  EXPECT_EQ(eps.stats().priority_packets_delivered, 1u);
}

TEST(EpsPriority, DisabledKeepsFifo) {
  sim::Simulator sim;
  switching::EpsConfig c;
  c.ports = 2;
  c.port_rate = sim::DataRate::gbps(10);
  c.strict_priority = false;
  switching::ElectricalPacketSwitch eps{sim, c};
  std::vector<std::uint64_t> order;
  eps.set_deliver_callback([&](const net::Packet& p, net::PortId) { order.push_back(p.id); });
  (void)eps.send(eps_pkt(0, 1500, net::TrafficClass::kBestEffort, 1));
  (void)eps.send(eps_pkt(0, 200, net::TrafficClass::kLatencySensitive, 2));
  sim.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(eps.stats().priority_packets_delivered, 0u);
}

TEST(EpsPriority, QueueAccountingSpansBothQueues) {
  sim::Simulator sim;
  switching::EpsConfig c;
  c.ports = 2;
  c.port_rate = sim::DataRate::gbps(10);
  c.strict_priority = true;
  switching::ElectricalPacketSwitch eps{sim, c};
  (void)eps.send(eps_pkt(0, 1000, net::TrafficClass::kBestEffort, 1));
  (void)eps.send(eps_pkt(0, 500, net::TrafficClass::kLatencySensitive, 2));
  EXPECT_EQ(eps.queue_bytes(0), 1500);
  EXPECT_EQ(eps.queue_packets(0), 2u);
}

TEST(EpsPriority, FrameworkReducesVoipTailUnderLoad) {
  const auto run_with = [](bool prio) {
    core::FrameworkConfig c;
    c.ports = 4;
    c.discipline = core::SchedulingDiscipline::kHybridEpoch;
    c.epoch = 100_us;
    c.ocs_reconfig = 1_us;
    c.eps_rate = sim::DataRate::gbps(1);  // congested electrical path
    c.eps_strict_priority = prio;
    core::HybridSwitchFramework fw{c};
    fw.use_default_policies();
    topo::attach_voip(fw, 2, 20_us, 200);
    topo::WorkloadSpec bg;
    bg.load = 0.2;
    bg.seed = 9;
    topo::attach_workload(fw, bg);
    return fw.run(5_ms, 1_ms);
  };
  const core::RunReport without = run_with(false);
  const core::RunReport with = run_with(true);
  ASSERT_GT(with.latency_sensitive.count(), 0u);
  EXPECT_LT(with.latency_sensitive.quantile(0.99), without.latency_sensitive.quantile(0.99));
}

// ------------------------------------------------------------------ incast

TEST(Incast, ValidatesConfig) {
  traffic::IncastGenerator::Config c;
  c.ports = 1;
  c.line_rate = sim::DataRate::gbps(10);
  EXPECT_THROW(traffic::IncastGenerator{c}, std::invalid_argument);
  c.ports = 8;
  c.fan_in = 8;  // more than the 7 workers
  EXPECT_THROW(traffic::IncastGenerator{c}, std::invalid_argument);
}

TEST(Incast, AllPacketsTargetAggregator) {
  sim::Simulator sim;
  traffic::IncastGenerator::Config c;
  c.aggregator = 3;
  c.ports = 8;
  c.response_bytes = 10'000;
  c.period = 500_us;
  c.line_rate = sim::DataRate::gbps(10);
  traffic::IncastGenerator g{c};
  g.start(sim, [&](const net::Packet& p) {
    EXPECT_EQ(p.dst, 3u);
    EXPECT_NE(p.src, 3u);
  }, 2_ms);
  sim.run();
  EXPECT_EQ(g.rounds(), 4u);
  // 4 rounds x 7 workers x 10 KB.
  EXPECT_EQ(g.stats().bytes, 4 * 7 * 10'000);
}

TEST(Incast, FanInLimitsWorkersPerRound) {
  sim::Simulator sim;
  traffic::IncastGenerator::Config c;
  c.aggregator = 0;
  c.ports = 8;
  c.fan_in = 3;
  c.response_bytes = 1500;
  c.period = 100_us;
  c.line_rate = sim::DataRate::gbps(10);
  traffic::IncastGenerator g{c};
  std::vector<net::PortId> sources;
  g.start(sim, [&](const net::Packet& p) { sources.push_back(p.src); }, 99_us);
  sim.run();
  EXPECT_EQ(sources.size(), 3u);  // one round, one packet per worker
}

TEST(Incast, DrivesManyToOneContention) {
  core::FrameworkConfig c;
  c.ports = 8;
  c.discipline = core::SchedulingDiscipline::kHybridEpoch;
  c.epoch = 100_us;
  c.ocs_reconfig = 1_us;
  core::HybridSwitchFramework fw{c};
  fw.use_default_policies();

  traffic::IncastGenerator::Config ic;
  ic.aggregator = 0;
  ic.ports = 8;
  ic.response_bytes = 50'000;
  ic.period = 1_ms;
  ic.line_rate = c.link_rate;
  fw.add_generator(std::make_unique<traffic::IncastGenerator>(ic));

  const core::RunReport r = fw.run(6_ms, 1_ms);
  EXPECT_GT(r.offered_packets, 0u);
  // Many-to-one is serviceable: the aggregator link is the bottleneck but
  // 7 x 50 KB per 1 ms fits 10 Gbps; the scheduler must time-share it.
  EXPECT_GT(r.delivery_ratio(), 0.85) << r.summary();
}

// -------------------------------------------------------- failure injection

TEST(OcsFailures, CertainFailureNeverEstablishes) {
  sim::Simulator sim;
  switching::OcsConfig c;
  c.ports = 2;
  c.port_rate = sim::DataRate::gbps(10);
  c.reconfig_time = 1_us;
  c.retune_failure_prob = 1.0;
  switching::OpticalCircuitSwitch ocs{sim, c};
  int configured = 0;
  ocs.set_configured_callback([&](const schedulers::Matching&) { ++configured; });
  ocs.reconfigure(schedulers::Matching::rotation(2, 1));
  sim.run_until(50_us);
  EXPECT_EQ(configured, 0);
  EXPECT_TRUE(ocs.is_dark());
  EXPECT_GE(ocs.stats().retune_failures, 10u);
}

TEST(OcsFailures, RetriesExtendDarkTime) {
  sim::Simulator sim;
  switching::OcsConfig c;
  c.ports = 2;
  c.port_rate = sim::DataRate::gbps(10);
  c.reconfig_time = 1_us;
  c.retune_failure_prob = 0.5;
  c.failure_seed = 7;
  switching::OpticalCircuitSwitch ocs{sim, c};
  int configured = 0;
  ocs.set_configured_callback([&](const schedulers::Matching&) { ++configured; });
  ocs.reconfigure(schedulers::Matching::rotation(2, 1));
  sim.run_until(1_ms);
  EXPECT_EQ(configured, 1);  // eventually succeeds
  EXPECT_EQ(ocs.stats().dark_time_total,
            Time::microseconds(1) * static_cast<std::int64_t>(1 + ocs.stats().retune_failures));
}

TEST(OcsFailures, InvalidProbabilityRejected) {
  sim::Simulator sim;
  switching::OcsConfig c;
  c.ports = 2;
  c.port_rate = sim::DataRate::gbps(10);
  c.retune_failure_prob = 1.5;
  EXPECT_THROW(switching::OpticalCircuitSwitch(sim, c), std::invalid_argument);
}

TEST(OcsFailures, FrameworkSurvivesFlakyOptics) {
  core::FrameworkConfig c;
  c.ports = 4;
  c.discipline = core::SchedulingDiscipline::kHybridEpoch;
  c.epoch = 100_us;
  c.ocs_reconfig = 1_us;
  c.ocs_failure_prob = 0.3;  // one in three retunes fails
  core::HybridSwitchFramework fw{c};
  fw.use_default_policies();
  topo::WorkloadSpec spec;
  spec.load = 0.3;
  topo::attach_workload(fw, spec);
  const core::RunReport r = fw.run(5_ms, 1_ms);
  EXPECT_GT(fw.ocs().stats().retune_failures, 0u);
  // Residual EPS grants keep traffic flowing despite flaky circuits.
  EXPECT_GT(r.delivery_ratio(), 0.8) << r.summary();
}

// ------------------------------------------------------- distributed timing

TEST(DistributedTiming, SitsBetweenCentralHardwareAndSoftware) {
  control::HardwareSchedulerTimingModel hw;
  control::DistributedSchedulerTimingModel dist;
  control::SoftwareSchedulerTimingModel sw;
  for (const std::uint32_t ports : {16u, 64u}) {
    const auto h = hw.decision_latency(ports, 4, true).total();
    const auto d = dist.decision_latency(ports, 4, true).total();
    const auto s = sw.decision_latency(ports, 4, true).total();
    EXPECT_GT(d, h) << ports;
    EXPECT_LT(d, s) << ports;
  }
}

TEST(DistributedTiming, MeshRoundTripsDominate) {
  control::DistributedTimingConfig cfg;
  cfg.hop_latency = 1_us;
  control::DistributedSchedulerTimingModel m{cfg};
  const auto b = m.decision_latency(16, 4, true);
  // 4 iterations x 2 hops x 1 us = 8 us of mesh time at minimum.
  EXPECT_GE(b.schedule_computation, 8_us);
}

TEST(DistributedTiming, SequentialAlgorithmsPayTokenRing) {
  control::DistributedSchedulerTimingModel m;
  const auto par = m.decision_latency(64, 4, true).schedule_computation;
  const auto seq = m.decision_latency(64, 4, false).schedule_computation;
  EXPECT_GT(seq, par);
}

// ---------------------------------------------------- per-class accounting

TEST(ClassAccounting, SplitsDeliveredBytesByClass) {
  core::FrameworkConfig c;
  c.ports = 4;
  c.discipline = core::SchedulingDiscipline::kHybridEpoch;
  c.epoch = 100_us;
  c.ocs_reconfig = 1_us;
  core::HybridSwitchFramework fw{c};
  fw.use_default_policies();
  topo::attach_voip(fw, 2, 20_us, 200);  // latency-sensitive
  topo::WorkloadSpec spec;               // best-effort DC mix
  spec.load = 0.2;
  topo::attach_workload(fw, spec);
  const core::RunReport r = fw.run(4_ms, 1_ms);

  const auto ls =
      r.class_bytes[static_cast<std::size_t>(net::TrafficClass::kLatencySensitive)];
  const auto be = r.class_bytes[static_cast<std::size_t>(net::TrafficClass::kBestEffort)];
  EXPECT_GT(ls, 0);
  EXPECT_GT(be, 0);
  EXPECT_EQ(ls + be + r.class_bytes[static_cast<std::size_t>(net::TrafficClass::kThroughput)],
            r.delivered_bytes);
}

}  // namespace
}  // namespace xdrs
