// Tests for the content-addressed result cache: spec-hash stability goldens,
// hit/miss/stale accounting, invalidation on schema or policy-stack change,
// and the headline guarantee — a warm-cache sweep executes zero simulations
// and still emits byte-identical artefacts.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "exp/cache.hpp"
#include "exp/runner.hpp"

namespace xdrs::exp {
namespace {

using namespace xdrs::sim::literals;

/// Fresh cache directory per test, removed on teardown.
class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("xdrs_cache_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

ScenarioSpec fixed_spec() {
  return make_scenario("uniform", 4, 0.5, 7).with_window(500_us, 100_us);
}

// ---- spec hashing ----------------------------------------------------------

// Golden: the cache key of a fixed spec.  This value is the on-disk contract
// for shared cache directories — if it changes, every cached point is
// (correctly) invalidated, but an *unintentional* change means the spec
// serialization or the FNV constants drifted.  Update it only alongside a
// deliberate ScenarioSpec::fields() / RunReport::kSchemaVersion change.
TEST_F(ResultCacheTest, SpecHashGoldenIsStable) {
  EXPECT_EQ(ResultCache::entry_name(fixed_spec()), "1a24f4c769e3e727.json");
  EXPECT_EQ(ResultCache::entry_name(fixed_spec()), "1a24f4c769e3e727.json");  // deterministic
}

TEST_F(ResultCacheTest, SpecHashSeesEveryAxisAndTheWholePolicyStack) {
  const std::uint64_t base = spec_hash(fixed_spec());
  EXPECT_NE(spec_hash(ScenarioSpec{fixed_spec()}.with_ports(8)), base);
  EXPECT_NE(spec_hash(ScenarioSpec{fixed_spec()}.with_load(0.6)), base);
  EXPECT_NE(spec_hash(ScenarioSpec{fixed_spec()}.with_seed(8)), base);
  EXPECT_NE(spec_hash(ScenarioSpec{fixed_spec()}.with_matcher("maxweight")), base);
  EXPECT_NE(spec_hash(ScenarioSpec{fixed_spec()}.with_circuit("cthrough")), base);
  EXPECT_NE(spec_hash(ScenarioSpec{fixed_spec()}.with_estimator("ewma:0.25")), base);
  EXPECT_NE(spec_hash(ScenarioSpec{fixed_spec()}.with_timing("ideal")), base);
  EXPECT_NE(spec_hash(ScenarioSpec{fixed_spec()}.with_window(600_us, 100_us)), base);
  EXPECT_NE(spec_hash(ScenarioSpec{fixed_spec()}.with_label("renamed")), base);
  EXPECT_EQ(spec_hash(fixed_spec()), base);

  // The key covers the exhaustive identity, not just the artefact fields:
  // FrameworkConfig knobs, workload parameters and the VOIP overlay all
  // participate, so behaviourally different specs never share an entry.
  ScenarioSpec tweaked = fixed_spec();
  tweaked.config.eps_buffer_bytes *= 2;
  EXPECT_NE(spec_hash(tweaked), base);
  tweaked = fixed_spec();
  tweaked.config.ocs_reconfig = sim::Time::microseconds(99);
  EXPECT_NE(spec_hash(tweaked), base);
  tweaked = fixed_spec();
  tweaked.config.link_rate = sim::DataRate::gbps(40);
  EXPECT_NE(spec_hash(tweaked), base);
  tweaked = fixed_spec();
  tweaked.config.eps_strict_priority = true;
  EXPECT_NE(spec_hash(tweaked), base);
  tweaked = fixed_spec();
  tweaked.config.sync.max_skew = sim::Time::nanoseconds(500);
  EXPECT_NE(spec_hash(tweaked), base);
  tweaked = fixed_spec();
  tweaked.voip_pairs = 2;
  EXPECT_NE(spec_hash(tweaked), base);
  tweaked = fixed_spec();
  ASSERT_FALSE(tweaked.workloads.empty());
  tweaked.workloads[0].skew = 0.9;
  EXPECT_NE(spec_hash(tweaked), base);
  tweaked = fixed_spec();
  tweaked.workloads[0].seed += 1;
  EXPECT_NE(spec_hash(tweaked), base);
}

// ---- hit / miss / stale paths ----------------------------------------------

TEST_F(ResultCacheTest, MissThenStoreThenHit) {
  ResultCache cache{dir_};
  const ScenarioSpec spec = fixed_spec();

  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  const core::RunReport report = run_scenario(spec);
  cache.store(spec, report);
  EXPECT_EQ(cache.stats().stores, 1u);

  const auto cached = cache.lookup(spec);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->to_json(), report.to_json());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().stale, 0u);

  // A different spec hashes elsewhere: miss, not a collision.
  EXPECT_FALSE(cache.lookup(ScenarioSpec{spec}.with_seed(8)).has_value());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(ResultCacheTest, CorruptAndMismatchedEntriesAreStaleNotFatal) {
  ResultCache cache{dir_};
  const ScenarioSpec spec = fixed_spec();
  cache.store(spec, run_scenario(spec));

  // Corrupt JSON -> stale.
  {
    std::ofstream out{cache.entry_path(spec), std::ios::binary | std::ios::trunc};
    out << "{ not json";
  }
  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.stats().stale, 1u);

  // An entry stored under this hash for a *different* spec (simulated
  // collision / spec-encoding drift) -> stale, never served.
  const ScenarioSpec other = ScenarioSpec{spec}.with_label("imposter");
  const std::string imposter_entry = [&] {
    ResultCache side{dir_ + "_side"};
    side.store(other, run_scenario(other));
    std::ifstream in{side.entry_path(other), std::ios::binary};
    std::string data{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
    std::filesystem::remove_all(dir_ + "_side");
    return data;
  }();
  {
    std::ofstream out{cache.entry_path(spec), std::ios::binary | std::ios::trunc};
    out << imposter_entry;
  }
  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.stats().stale, 2u);

  // store() repairs the entry in place.
  cache.store(spec, run_scenario(spec));
  EXPECT_TRUE(cache.lookup(spec).has_value());
}

TEST_F(ResultCacheTest, SchemaVersionMismatchIsStale) {
  ResultCache cache{dir_};
  const ScenarioSpec spec = fixed_spec();
  cache.store(spec, run_scenario(spec));

  // Rewrite the entry as if an older library (report schema 1) had written
  // it; the envelope parses but report_from_state must reject it.
  std::ifstream in{cache.entry_path(spec), std::ios::binary};
  std::string entry{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  in.close();
  const std::string needle = "\"report\":{\"schema_version\":4";
  const auto pos = entry.find(needle);
  ASSERT_NE(pos, std::string::npos);
  entry.replace(pos, needle.size(), "\"report\":{\"schema_version\":1");
  {
    std::ofstream out{cache.entry_path(spec), std::ios::binary | std::ios::trunc};
    out << entry;
  }
  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.stats().stale, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

// ---- the warm-rerun guarantee ----------------------------------------------

TEST_F(ResultCacheTest, WarmSweepExecutesZeroSimulationsAndEmitsIdenticalBytes) {
  std::vector<ScenarioSpec> grid{fixed_spec(), fixed_spec().with_seed(8)};
  grid = expand(grid, axis_load({0.3, 0.6}));
  grid = expand(grid, axis_matcher({"islip:1", "maxweight"}));  // 8 points

  ResultCache cold{dir_};
  SweepOptions cold_opts;
  cold_opts.cache = &cold;
  const SweepResult first = ExperimentRunner{cold_opts}.run(grid);
  EXPECT_EQ(cold.stats().misses, grid.size());
  EXPECT_EQ(cold.stats().stores, grid.size());
  EXPECT_EQ(cold.stats().hits, 0u);

  // Fresh cache object, same directory: every point must come from disk.
  ResultCache warm{dir_};
  SweepOptions warm_opts;
  warm_opts.cache = &warm;
  const SweepResult second = ExperimentRunner{warm_opts}.run(grid);

  const CacheStats ws = warm.stats();
  EXPECT_EQ(ws.hits, grid.size());
  EXPECT_EQ(ws.misses, 0u);   // zero simulations executed:
  EXPECT_EQ(ws.stale, 0u);    //   every lookup hit,
  EXPECT_EQ(ws.stores, 0u);   //   nothing was run-and-stored

  EXPECT_EQ(second.to_json(), first.to_json());
  EXPECT_EQ(second.to_csv(), first.to_csv());
}

TEST_F(ResultCacheTest, ShardsCanShareOneCacheDirectory) {
  std::vector<ScenarioSpec> grid{fixed_spec()};
  grid = expand(grid, axis_load({0.3, 0.6}));
  grid = expand(grid, axis_matcher({"islip:1", "maxweight"}));  // 4 points

  for (std::size_t shard = 0; shard < 2; ++shard) {
    ResultCache cache{dir_};
    SweepOptions opts;
    opts.shard = {shard, 2};
    opts.cache = &cache;
    (void)ExperimentRunner{opts}.run(grid);
    EXPECT_EQ(cache.stats().stores, 2u);
  }

  ResultCache warm{dir_};
  for (const ScenarioSpec& spec : grid) EXPECT_TRUE(warm.lookup(spec).has_value());
  EXPECT_EQ(warm.stats().hits, grid.size());
}

TEST_F(ResultCacheTest, UnwritableDirectoryThrows) {
  EXPECT_THROW(ResultCache{"/proc/definitely/not/writable"}, std::runtime_error);
}

// ---- eviction (sweepctl gc) ------------------------------------------------

TEST_F(ResultCacheTest, GcEvictsStaleEntriesAndKeepsFreshOnes) {
  ResultCache cache{dir_};
  const ScenarioSpec fresh = fixed_spec();
  const ScenarioSpec stale = ScenarioSpec{fixed_spec()}.with_seed(8);
  cache.store(fresh, run_scenario(fresh));
  cache.store(stale, run_scenario(stale));

  // Backdate one entry by 10 days; also plant an orphaned temp file (a
  // crashed writer) and an unrelated file gc must never touch.
  const auto ago =
      std::filesystem::file_time_type::clock::now() - std::chrono::hours{24 * 10};
  std::filesystem::last_write_time(cache.entry_path(stale), ago);
  const std::string orphan = cache.entry_path(stale) + ".tmp.0123456789abcdef";
  const std::string unrelated = (std::filesystem::path{dir_} / "notes.txt").string();
  {
    std::ofstream{orphan} << "{";
    std::ofstream{unrelated} << "keep me";
  }
  std::filesystem::last_write_time(orphan, ago);
  std::filesystem::last_write_time(unrelated, ago);

  const GcStats gcs = cache.gc(/*keep_days=*/7.0);
  EXPECT_EQ(gcs.removed, 2u);  // the stale entry and the orphaned temp file
  EXPECT_EQ(gcs.kept, 1u);
  EXPECT_FALSE(std::filesystem::exists(cache.entry_path(stale)));
  EXPECT_FALSE(std::filesystem::exists(orphan));
  EXPECT_TRUE(std::filesystem::exists(unrelated));

  // The fresh entry still serves; the evicted one is a clean miss.
  EXPECT_TRUE(cache.lookup(fresh).has_value());
  EXPECT_FALSE(cache.lookup(stale).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  // An astronomical keep_days means "keep everything" — it must not
  // overflow the age computation into deleting the whole cache.
  EXPECT_EQ(cache.gc(1e9).removed, 0u);
  EXPECT_EQ(cache.gc(1e9).kept, 1u);

  // keep_days = 0 wipes every entry; negative values are an error.
  EXPECT_EQ(cache.gc(0.0).removed, 1u);
  EXPECT_THROW((void)cache.gc(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace xdrs::exp
