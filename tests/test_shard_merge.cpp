// Tests for sharded sweeps: deterministic shard-by-index ownership, shard
// file round-trip, and the reassembly guarantee — merge_shards() of per-shard
// results is byte-identical through to_json()/to_csv() to a single-process
// run of the same grid.
#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/runner.hpp"
#include "stats/json.hpp"

namespace xdrs::exp {
namespace {

using namespace xdrs::sim::literals;

std::vector<ScenarioSpec> small_grid() {
  std::vector<ScenarioSpec> grid{
      make_scenario("uniform", 4, 0.5, 7).with_window(500_us, 100_us),
      make_scenario("permutation", 4, 0.5, 7).with_window(500_us, 100_us)};
  grid = expand(grid, axis_load({0.3, 0.6}));
  grid = expand(grid, axis_matcher({"islip:1", "maxweight"}));
  return grid;  // 8 points
}

SweepResult run_shard(const std::vector<ScenarioSpec>& grid, std::size_t index,
                      std::size_t count) {
  SweepOptions opts;
  opts.shard = {index, count};
  return ExperimentRunner{opts}.run(grid);
}

TEST(ShardOptions, OwnershipPartitionsTheGrid) {
  const ShardOptions a{0, 3};
  const ShardOptions b{1, 3};
  const ShardOptions c{2, 3};
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ((a.owns(i) ? 1 : 0) + (b.owns(i) ? 1 : 0) + (c.owns(i) ? 1 : 0), 1) << i;
  }
  EXPECT_EQ(a.owned_of(10), 4u);  // 0,3,6,9
  EXPECT_EQ(b.owned_of(10), 3u);  // 1,4,7
  EXPECT_EQ(c.owned_of(10), 3u);  // 2,5,8
  EXPECT_EQ(ShardOptions{}.owned_of(10), 10u);
}

TEST(ShardedRun, RunsExactlyTheOwnedSubsequenceInGridOrder) {
  const auto grid = small_grid();
  const SweepResult shard1 = run_shard(grid, 1, 3);
  ASSERT_EQ(shard1.points.size(), ShardOptions(1, 3).owned_of(grid.size()));
  for (std::size_t j = 0; j < shard1.points.size(); ++j) {
    EXPECT_EQ(shard1.points[j].spec.key(), grid[1 + j * 3].key());
    EXPECT_GT(shard1.points[j].report.offered_packets, 0u);
  }
  EXPECT_EQ(shard1.grid_size, grid.size());
}

TEST(ShardedRun, InvalidShardOptionsThrow) {
  SweepOptions zero;
  zero.shard = {0, 0};
  EXPECT_THROW((void)ExperimentRunner{zero}.run(small_grid()), std::invalid_argument);
  SweepOptions oob;
  oob.shard = {2, 2};
  EXPECT_THROW((void)ExperimentRunner{oob}.run(small_grid()), std::invalid_argument);
}

TEST(ShardMerge, TwoShardsReassembleByteIdenticalToOneProcess) {
  const auto grid = small_grid();
  SweepOptions single_opts;
  single_opts.threads = 1;
  const SweepResult single = ExperimentRunner{single_opts}.run(grid);

  const std::string payload0 = run_shard(grid, 0, 2).to_shard_json();
  const std::string payload1 = run_shard(grid, 1, 2).to_shard_json();
  const SweepResult merged = SweepResult::merge_shards(grid, {payload0, payload1});

  // The headline guarantee: the merged artefact is the single-process
  // artefact, byte for byte — points array, grid-total merge, CSV, all of it.
  EXPECT_EQ(merged.to_json(), single.to_json());
  EXPECT_EQ(merged.to_csv(), single.to_csv());
  EXPECT_EQ(merged.merged().to_json(), single.merged().to_json());
}

TEST(ShardMerge, UnevenShardCountsAlsoReassemble) {
  const auto grid = small_grid();  // 8 points across 3 shards: 3+3+2
  const SweepResult single = ExperimentRunner{}.run(grid);
  const SweepResult merged = SweepResult::merge_shards(
      grid, {run_shard(grid, 0, 3).to_shard_json(), run_shard(grid, 1, 3).to_shard_json(),
             run_shard(grid, 2, 3).to_shard_json()});
  EXPECT_EQ(merged.to_json(), single.to_json());
}

TEST(ShardMerge, ShardFileCarriesIndicesHashesAndState) {
  const auto grid = small_grid();
  const stats::JsonValue doc = stats::parse_json(run_shard(grid, 1, 2).to_shard_json());
  EXPECT_EQ(doc.at("sweep_schema").as_u64(), 1u);
  EXPECT_EQ(doc.at("schema_version").as_u64(), core::RunReport::kSchemaVersion);
  EXPECT_EQ(doc.at("shard_index").as_u64(), 1u);
  EXPECT_EQ(doc.at("shard_count").as_u64(), 2u);
  EXPECT_EQ(doc.at("grid_size").as_u64(), grid.size());
  const auto& points = doc.at("points").items();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].at("index").as_u64(), 1u);
  EXPECT_EQ(points[1].at("index").as_u64(), 3u);
  EXPECT_EQ(points[0].at("key").as_str(), grid[1].key());
  EXPECT_NE(points[0].at("report").find("latency_state"), nullptr);
  // Per-point wall time rides along for straggler reports (sweepctl
  // status); it never enters to_json()/to_csv(), which must stay
  // byte-identical across thread counts.
  EXPECT_GE(points[0].at("wall_us").as_i64(), 0);
}

TEST(ShardMerge, WallTimesSurviveMergeButNotTheArtefact) {
  const auto grid = small_grid();
  const SweepResult shard0 = run_shard(grid, 0, 2);
  const SweepResult shard1 = run_shard(grid, 1, 2);
  const SweepResult merged =
      SweepResult::merge_shards(grid, {shard0.to_shard_json(), shard1.to_shard_json()});
  std::int64_t total = 0;
  for (const PointResult& p : merged.points) total += p.wall_us;
  std::int64_t expected = 0;
  for (const PointResult& p : shard0.points) expected += p.wall_us;
  for (const PointResult& p : shard1.points) expected += p.wall_us;
  EXPECT_EQ(total, expected);
  EXPECT_GT(total, 0);  // a real simulation takes measurable wall time
  EXPECT_EQ(merged.to_json().find("wall_us"), std::string::npos);
  EXPECT_EQ(merged.to_csv().find("wall_us"), std::string::npos);

  // Shard files predating the wall-time field still merge (unmeasured = 0).
  std::string legacy = shard0.to_shard_json();
  for (std::size_t pos = 0; (pos = legacy.find(",\"wall_us\":")) != std::string::npos;) {
    const std::size_t end = legacy.find(",\"report\"", pos);
    ASSERT_NE(end, std::string::npos);
    legacy.erase(pos, end - pos);
  }
  const SweepResult old =
      SweepResult::merge_shards(grid, {legacy, shard1.to_shard_json()});
  EXPECT_EQ(old.points[0].wall_us, 0);
  EXPECT_EQ(old.to_json(), merged.to_json());
}

TEST(ShardMerge, RejectsMissingDuplicateAndForeignPoints) {
  const auto grid = small_grid();
  const std::string payload0 = run_shard(grid, 0, 2).to_shard_json();
  const std::string payload1 = run_shard(grid, 1, 2).to_shard_json();

  // Missing coverage: one shard alone.
  EXPECT_THROW((void)SweepResult::merge_shards(grid, {payload0}), std::invalid_argument);
  // Duplicate coverage: the same shard twice.
  EXPECT_THROW((void)SweepResult::merge_shards(grid, {payload0, payload0}),
               std::invalid_argument);
  // Stale shard file: produced from a different grid (seed changed), the
  // spec hashes no longer match.
  auto other_grid = small_grid();
  for (auto& spec : other_grid) spec.with_seed(99);
  const std::string foreign = run_shard(other_grid, 0, 2).to_shard_json();
  EXPECT_THROW((void)SweepResult::merge_shards(grid, {foreign, payload1}),
               std::invalid_argument);
  // Grid size mismatch.
  const std::vector<ScenarioSpec> short_grid{grid.begin(), grid.begin() + 4};
  EXPECT_THROW((void)SweepResult::merge_shards(short_grid, {payload0, payload1}),
               std::invalid_argument);
  // Garbage payloads.
  EXPECT_THROW((void)SweepResult::merge_shards(grid, {"not json"}), std::invalid_argument);
  EXPECT_THROW((void)SweepResult::merge_shards(grid, {"{}"}), std::invalid_argument);
}

TEST(ShardMerge, SingleShardOfOneIsTheWholeSweep) {
  const auto grid = small_grid();
  const SweepResult single = ExperimentRunner{}.run(grid);
  const SweepResult merged =
      SweepResult::merge_shards(grid, {run_shard(grid, 0, 1).to_shard_json()});
  EXPECT_EQ(merged.to_json(), single.to_json());
}

}  // namespace
}  // namespace xdrs::exp
