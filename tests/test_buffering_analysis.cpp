// Tests for the Figure 1 closed-form buffering model — including the
// paper's two numeric anchors (gigabytes at milliseconds, kilobytes at
// nanoseconds, for a 64x64 switch at 10 Gbps/port).
#include <gtest/gtest.h>

#include "analysis/buffering.hpp"
#include "control/timing.hpp"

namespace xdrs::analysis {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

BufferingScenario paper_switch() {
  BufferingScenario s;
  s.ports = 64;
  s.port_rate = sim::DataRate::gbps(10);
  s.duty_cycle = 0.9;
  s.load = 1.0;
  return s;
}

TEST(Buffering, PaperAnchorMillisecondSwitchingNeedsGigabytes) {
  // "a 64x64 input-queued switch (10 Gbps per port) with a millisecond
  //  switching time results in approximately gigabytes of buffering".
  BufferingScenario s = paper_switch();
  s.switching_time = 1_ms;
  s.control_loop_latency =
      control::SoftwareSchedulerTimingModel{}.decision_latency(64, 4, true).total();
  const BufferingRequirement r = compute_buffering(s);
  EXPECT_GE(r.total_bytes, 500LL * 1024 * 1024);   // hundreds of MB at least
  EXPECT_LE(r.total_bytes, 16LL * 1024 * 1024 * 1024);  // and not absurd
  EXPECT_FALSE(r.fits_in_tor);                     // forced to host buffering
}

TEST(Buffering, PaperAnchorNanosecondSwitchingNeedsKilobytes) {
  // "a nanosecond switching time requires only kilobytes".
  BufferingScenario s = paper_switch();
  s.switching_time = 10_ns;
  s.control_loop_latency =
      control::HardwareSchedulerTimingModel{}.decision_latency(64, 4, true).total();
  const BufferingRequirement r = compute_buffering(s);
  EXPECT_LE(r.total_bytes, 64 * 1024);  // tens of KB
  EXPECT_GT(r.total_bytes, 0);
  EXPECT_TRUE(r.fits_in_tor);           // buffering moves into the ToR
}

TEST(Buffering, MonotoneInSwitchingTime) {
  BufferingScenario s = paper_switch();
  s.control_loop_latency = 1_us;
  std::int64_t prev = 0;
  for (const Time t : {10_ns, 100_ns, 1_us, 10_us, 100_us, 1_ms}) {
    s.switching_time = t;
    const std::int64_t cur = compute_buffering(s).total_bytes;
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Buffering, ScalesLinearlyWithPortsAndRate) {
  BufferingScenario s = paper_switch();
  s.switching_time = 1_us;
  s.control_loop_latency = Time::zero();
  const std::int64_t base = compute_buffering(s).total_bytes;
  s.ports = 128;
  EXPECT_EQ(compute_buffering(s).total_bytes, base * 2);
  s.ports = 64;
  s.port_rate = sim::DataRate::gbps(40);
  EXPECT_NEAR(static_cast<double>(compute_buffering(s).total_bytes),
              static_cast<double>(base) * 4, static_cast<double>(base) * 0.01);
}

TEST(Buffering, LoadScalesRequirement) {
  BufferingScenario s = paper_switch();
  s.switching_time = 1_us;
  s.control_loop_latency = Time::zero();
  s.load = 1.0;
  const std::int64_t full = compute_buffering(s).total_bytes;
  s.load = 0.5;
  EXPECT_NEAR(static_cast<double>(compute_buffering(s).total_bytes),
              static_cast<double>(full) / 2, static_cast<double>(full) * 0.01);
}

TEST(Buffering, SchedulePeriodFollowsDutyCycle) {
  BufferingScenario s = paper_switch();
  s.switching_time = 100_us;
  s.duty_cycle = 0.9;
  // T_period = T_sw * 0.9 / 0.1 = 9 x T_sw.
  EXPECT_EQ(compute_buffering(s).schedule_period, 900_us);
  s.duty_cycle = 0.5;
  EXPECT_EQ(compute_buffering(s).schedule_period, 100_us);
}

TEST(Buffering, PerPortTimesPortsEqualsTotal) {
  BufferingScenario s = paper_switch();
  s.switching_time = 50_us;
  const BufferingRequirement r = compute_buffering(s);
  EXPECT_EQ(r.total_bytes, r.per_port_bytes * s.ports);
}

TEST(Buffering, ControlLoopLatencyAddsExposure) {
  BufferingScenario s = paper_switch();
  s.switching_time = 1_us;
  s.control_loop_latency = Time::zero();
  const auto without = compute_buffering(s);
  s.control_loop_latency = 1_ms;
  const auto with = compute_buffering(s);
  EXPECT_GT(with.total_bytes, without.total_bytes);
  EXPECT_EQ(with.exposure - without.exposure, 1_ms);
}

TEST(Buffering, ValidatesParameters) {
  BufferingScenario s = paper_switch();
  s.ports = 0;
  EXPECT_THROW((void)compute_buffering(s), std::invalid_argument);
  s = paper_switch();
  s.duty_cycle = 1.0;
  EXPECT_THROW((void)compute_buffering(s), std::invalid_argument);
  s = paper_switch();
  s.load = 1.5;
  EXPECT_THROW((void)compute_buffering(s), std::invalid_argument);
  s = paper_switch();
  s.switching_time = Time::zero() - 1_ns;
  EXPECT_THROW((void)compute_buffering(s), std::invalid_argument);
}

TEST(Buffering, MaxSwitchingTimeInvertsModel) {
  BufferingScenario s = paper_switch();
  s.control_loop_latency = 1_us;
  const Time t = max_switching_time_for_buffer(s, kTypicalTorBufferBytes);
  EXPECT_GT(t, Time::zero());
  // At the returned switching time the requirement fits...
  s.switching_time = t;
  EXPECT_LE(compute_buffering(s).total_bytes, kTypicalTorBufferBytes);
  // ...and at 2x it no longer does (tight inversion).
  s.switching_time = t * 2;
  EXPECT_GT(compute_buffering(s).total_bytes, kTypicalTorBufferBytes);
}

TEST(Buffering, MaxSwitchingTimeZeroBudget) {
  BufferingScenario s = paper_switch();
  EXPECT_EQ(max_switching_time_for_buffer(s, 0), Time::zero());
}

}  // namespace
}  // namespace xdrs::analysis
