// Tests for the statistics toolkit: histogram quantiles, Welford summary,
// RFC 3550 jitter, time series decimation and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"

namespace xdrs::stats {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.quantile(0.0), 42);
  EXPECT_EQ(h.quantile(1.0), 42);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (int v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(1.0), 15);
}

TEST(Histogram, QuantileWithinRelativeError) {
  // Log-bucketed with 16 sub-buckets: worst-case ~6.25% relative error.
  Histogram h;
  for (std::int64_t v = 1; v <= 100'000; ++v) h.record(v);
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    const double exact = q * 100'000;
    const auto approx = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(approx, exact, exact * 0.07 + 2) << "q=" << q;
  }
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  for (std::int64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.record(-100);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, QuantilesAreMonotone) {
  Histogram h;
  for (std::int64_t v = 1; v < 10'000; v = v * 3 / 2 + 1) h.record(v);
  std::int64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const std::int64_t cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  for (int v = 0; v < 100; ++v) a.record(v);
  for (int v = 100; v < 200; ++v) b.record(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 199);
  EXPECT_NEAR(static_cast<double>(a.quantile(0.5)), 100.0, 8.0);
}

TEST(Histogram, RecordTimeAndQuantileTime) {
  Histogram h;
  h.record_time(10_us);
  h.record_time(20_us);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.quantile_time(1.0), 19_us);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, SummaryStringContainsFields) {
  Histogram h;
  h.record_time(1_us);
  const std::string s = h.summary_time();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

TEST(Summary, WelfordMatchesDirectComputation) {
  Summary s;
  const std::vector<double> xs{1.5, 2.5, 3.5, 10.0, -4.0, 7.25};
  double sum = 0;
  for (const double x : xs) {
    s.record(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -4.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Summary, EmptyAndSingle) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.record(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Rfc3550Jitter, ConstantTransitMeansZeroJitter) {
  Rfc3550Jitter j;
  for (int i = 0; i < 100; ++i) {
    const Time sent = Time::microseconds(20 * i);
    j.record(sent, sent + 150_us);  // identical transit every packet
  }
  EXPECT_EQ(j.jitter(), Time::zero());
  EXPECT_EQ(j.samples(), 99u);
}

TEST(Rfc3550Jitter, AlternatingTransitConvergesToDelta) {
  // Transit alternates +/- 1 ms around a base: |D| = 1 ms every step, so
  // J converges towards 1 ms (from below, gain 1/16).
  Rfc3550Jitter j;
  for (int i = 0; i < 500; ++i) {
    const Time sent = Time::milliseconds(20 * i);
    const Time transit = (i % 2 == 0) ? 10_ms : 11_ms;
    j.record(sent, sent + transit);
  }
  EXPECT_GT(j.jitter(), 900_us);
  EXPECT_LE(j.jitter(), 1_ms);
}

TEST(Rfc3550Jitter, SinglePacketNoSamples) {
  Rfc3550Jitter j;
  j.record(Time::zero(), 1_ms);
  EXPECT_EQ(j.samples(), 0u);
  EXPECT_EQ(j.jitter(), Time::zero());
}

TEST(TimeSeries, RecordsAndReturnsSamples) {
  TimeSeries ts{16};
  ts.record(1_us, 10.0);
  ts.record(2_us, 20.0);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.samples()[0].at, 1_us);
  EXPECT_DOUBLE_EQ(ts.samples()[1].value, 20.0);
}

TEST(TimeSeries, DecimatesAtCapacity) {
  TimeSeries ts{8};
  for (int i = 0; i < 100; ++i) ts.record(Time::microseconds(i), static_cast<double>(i));
  EXPECT_LE(ts.size(), 8u);
  EXPECT_GT(ts.stride(), 1u);
  // Samples stay in time order after decimation.
  for (std::size_t k = 1; k < ts.size(); ++k) {
    EXPECT_LT(ts.samples()[k - 1].at, ts.samples()[k].at);
  }
}

TEST(TimeSeries, PeakSeesAllOfferedSamples) {
  TimeSeries ts{4};
  for (int i = 0; i < 1000; ++i) {
    ts.record(Time::microseconds(i), i == 637 ? 9999.0 : 1.0);
  }
  EXPECT_DOUBLE_EQ(ts.peak(), 9999.0);  // even though the sample was decimated
}

TEST(TimeSeries, ExactCapacityDoesNotDecimate) {
  TimeSeries ts{4};
  for (int i = 0; i < 4; ++i) ts.record(Time::microseconds(i), static_cast<double>(i));
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.stride(), 1u);
  EXPECT_EQ(ts.offered(), 4u);
  // The capacity+1-th sample triggers exactly one decimation.
  ts.record(Time::microseconds(4), 4.0);
  EXPECT_EQ(ts.stride(), 2u);
  ASSERT_EQ(ts.size(), 3u);  // kept 0, 2; sample 4 aligns with the new stride
  EXPECT_EQ(ts.samples()[2].at, Time::microseconds(4));
}

TEST(TimeSeries, StrideRealignmentSkipsMisalignedTrigger) {
  // Odd capacity: the sample that triggers decimation (index 3) is no
  // longer aligned once the stride doubles, so it must be dropped — the
  // kept set stays exactly {0, 2}, then every 2nd offered index.
  TimeSeries ts{3};
  for (int i = 0; i < 5; ++i) ts.record(Time::microseconds(i), static_cast<double>(i));
  EXPECT_EQ(ts.stride(), 2u);
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.samples()[0].at, Time::microseconds(0));
  EXPECT_EQ(ts.samples()[1].at, Time::microseconds(2));  // index 3 was skipped
  EXPECT_EQ(ts.samples()[2].at, Time::microseconds(4));
  EXPECT_EQ(ts.offered(), 5u);
}

TEST(TimeSeries, RepeatedDoublingKeepsStridePowerOfTwoCoverage) {
  TimeSeries ts{4};
  for (int i = 0; i < 64; ++i) ts.record(Time::microseconds(i), static_cast<double>(i));
  EXPECT_EQ(ts.offered(), 64u);
  EXPECT_GE(ts.stride(), 16u);
  // Every kept sample sits on a stride boundary and order is preserved.
  for (const auto& s : ts.samples()) {
    EXPECT_EQ(static_cast<std::uint64_t>(s.at.us()) % ts.stride(), 0u);
  }
  for (std::size_t k = 1; k < ts.size(); ++k) {
    EXPECT_LT(ts.samples()[k - 1].at, ts.samples()[k].at);
  }
}

TEST(TimeSeries, PeakSurvivesDecimationOfItsSample) {
  TimeSeries ts{2};
  ts.record(Time::microseconds(0), 5.0);
  ts.record(Time::microseconds(1), 50.0);  // will be decimated away
  for (int i = 2; i < 20; ++i) ts.record(Time::microseconds(i), 1.0);
  EXPECT_DOUBLE_EQ(ts.peak(), 50.0);
  EXPECT_EQ(ts.offered(), 20u);
}

TEST(TimeSeries, ValidatesCapacity) {
  EXPECT_THROW(TimeSeries{1}, std::invalid_argument);
}

TEST(TimeSeries, ClearResets) {
  TimeSeries ts{8};
  ts.record(1_us, 5.0);
  ts.clear();
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_EQ(ts.stride(), 1u);
}

TEST(Table, MarkdownLayout) {
  Table t{{"algo", "value"}};
  t.row().cell("islip").cell(std::int64_t{42});
  t.row().cell("pim").cell(3.14159, 3);
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| algo  | value |"), std::string::npos);
  EXPECT_NE(md.find("| islip | 42    |"), std::string::npos);
  EXPECT_NE(md.find("3.14"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t{{"a", "b"}};
  t.row().cell(std::int64_t{1}).cell(std::int64_t{2});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, Validation) {
  EXPECT_THROW(Table{{}}, std::invalid_argument);
  Table t{{"a"}};
  EXPECT_THROW(t.cell("x"), std::logic_error);  // no row yet
  t.row().cell("1");
  EXPECT_THROW(t.cell("overflow"), std::logic_error);
}

TEST(Table, PrintWritesToStream) {
  Table t{{"h"}};
  t.row().cell("v");
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace xdrs::stats
