// Tests for the VOQ bank: exact accounting, admission limits, status
// callbacks and peak tracking (the Figure 1 measurement).
#include <gtest/gtest.h>

#include <vector>

#include "queueing/voq.hpp"
#include "sim/random.hpp"

namespace xdrs::queueing {
namespace {

net::Packet pkt(net::PortId src, net::PortId dst, std::int64_t bytes, std::uint64_t id = 0) {
  net::Packet p;
  p.id = id;
  p.src = src;
  p.dst = dst;
  p.size_bytes = bytes;
  return p;
}

TEST(VoqBank, ConstructionValidation) {
  EXPECT_THROW(VoqBank(0, 4), std::invalid_argument);
  EXPECT_THROW(VoqBank(4, 0), std::invalid_argument);
}

TEST(VoqBank, EnqueueDequeueFifo) {
  VoqBank b{2, 2};
  EXPECT_TRUE(b.enqueue(0, pkt(0, 1, 100, 1)));
  EXPECT_TRUE(b.enqueue(0, pkt(0, 1, 200, 2)));
  auto first = b.dequeue(0, 1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 1u);
  auto second = b.dequeue(0, 1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, 2u);
  EXPECT_FALSE(b.dequeue(0, 1).has_value());
}

TEST(VoqBank, ByteAndPacketAccounting) {
  VoqBank b{2, 3};
  (void)b.enqueue(0, pkt(0, 1, 100));
  (void)b.enqueue(0, pkt(0, 2, 50));
  (void)b.enqueue(1, pkt(1, 0, 25));
  EXPECT_EQ(b.bytes(0, 1), 100);
  EXPECT_EQ(b.bytes(0, 2), 50);
  EXPECT_EQ(b.input_bytes(0), 150);
  EXPECT_EQ(b.input_bytes(1), 25);
  EXPECT_EQ(b.total_bytes(), 175);
  EXPECT_EQ(b.total_packets(), 3);
  (void)b.dequeue(0, 1);
  EXPECT_EQ(b.total_bytes(), 75);
  EXPECT_EQ(b.input_bytes(0), 50);
}

TEST(VoqBank, PeekDoesNotRemove) {
  VoqBank b{1, 2};
  (void)b.enqueue(0, pkt(0, 1, 100, 42));
  const net::Packet* head = b.peek(0, 1);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->id, 42u);
  EXPECT_EQ(b.packets(0, 1), 1u);
  EXPECT_EQ(b.peek(0, 0), nullptr);
}

TEST(VoqBank, PerVoqByteLimitDrops) {
  VoqLimits lim;
  lim.max_bytes_per_voq = 250;
  VoqBank b{1, 2, lim};
  EXPECT_TRUE(b.enqueue(0, pkt(0, 1, 200)));
  EXPECT_FALSE(b.enqueue(0, pkt(0, 1, 100)));  // would exceed 250
  EXPECT_TRUE(b.enqueue(0, pkt(0, 1, 50)));
  EXPECT_EQ(b.stats().dropped_packets, 1u);
  EXPECT_EQ(b.stats().dropped_bytes, 100);
}

TEST(VoqBank, PerVoqPacketLimitDrops) {
  VoqLimits lim;
  lim.max_packets_per_voq = 2;
  VoqBank b{1, 2, lim};
  EXPECT_TRUE(b.enqueue(0, pkt(0, 1, 10)));
  EXPECT_TRUE(b.enqueue(0, pkt(0, 1, 10)));
  EXPECT_FALSE(b.enqueue(0, pkt(0, 1, 10)));
  // A different VOQ of the same input is unaffected.
  EXPECT_TRUE(b.enqueue(0, pkt(0, 0, 10)));
}

TEST(VoqBank, SharedBufferLimitDrops) {
  VoqLimits lim;
  lim.shared_buffer_bytes = 300;
  VoqBank b{2, 2, lim};
  EXPECT_TRUE(b.enqueue(0, pkt(0, 1, 200)));
  EXPECT_TRUE(b.enqueue(1, pkt(1, 0, 100)));
  EXPECT_FALSE(b.enqueue(0, pkt(0, 0, 1)));  // bank full
  (void)b.dequeue(1, 0);
  EXPECT_TRUE(b.enqueue(0, pkt(0, 0, 1)));
}

TEST(VoqBank, StatusCallbackOnTransitions) {
  VoqBank b{2, 2};
  std::vector<std::tuple<net::PortId, net::PortId, VoqStatus>> events;
  b.set_status_callback([&](net::PortId i, net::PortId j, VoqStatus s) {
    events.emplace_back(i, j, s);
  });
  (void)b.enqueue(0, pkt(0, 1, 10));  // empty -> non-empty
  (void)b.enqueue(0, pkt(0, 1, 10));  // no transition
  (void)b.dequeue(0, 1);              // no transition
  (void)b.dequeue(0, 1);              // non-empty -> empty
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(std::get<2>(events[0]), VoqStatus::kBecameNonEmpty);
  EXPECT_EQ(std::get<2>(events[1]), VoqStatus::kBecameEmpty);
}

TEST(VoqBank, DroppedPacketDoesNotFireCallback) {
  VoqLimits lim;
  lim.max_packets_per_voq = 1;
  VoqBank b{1, 2, lim};
  int calls = 0;
  b.set_status_callback([&](net::PortId, net::PortId, VoqStatus) { ++calls; });
  (void)b.enqueue(0, pkt(0, 1, 10));
  (void)b.enqueue(0, pkt(0, 1, 10));  // dropped
  EXPECT_EQ(calls, 1);
}

TEST(VoqBank, PeakTracking) {
  VoqBank b{2, 2};
  (void)b.enqueue(0, pkt(0, 1, 100));
  (void)b.enqueue(1, pkt(1, 0, 300));
  (void)b.dequeue(1, 0);
  EXPECT_EQ(b.stats().peak_total_bytes, 400);
  EXPECT_EQ(b.peak_input_bytes(0), 100);
  EXPECT_EQ(b.peak_input_bytes(1), 300);
  EXPECT_EQ(b.total_bytes(), 100);
}

TEST(VoqBank, ResetPeaksToCurrentOccupancy) {
  VoqBank b{1, 2};
  (void)b.enqueue(0, pkt(0, 1, 500));
  (void)b.dequeue(0, 1);
  (void)b.enqueue(0, pkt(0, 1, 50));
  b.reset_peaks();
  EXPECT_EQ(b.stats().peak_total_bytes, 50);
  EXPECT_EQ(b.peak_input_bytes(0), 50);
}

TEST(VoqBank, MaxVoqBytes) {
  VoqBank b{2, 2};
  (void)b.enqueue(0, pkt(0, 1, 100));
  (void)b.enqueue(1, pkt(1, 0, 250));
  EXPECT_EQ(b.max_voq_bytes(), 250);
}

TEST(VoqBank, OutOfRangeThrows) {
  VoqBank b{2, 2};
  EXPECT_THROW((void)b.enqueue(2, pkt(2, 0, 10)), std::out_of_range);
  EXPECT_THROW((void)b.enqueue(0, pkt(0, 2, 10)), std::out_of_range);
  EXPECT_THROW((void)b.dequeue(0, 5), std::out_of_range);
  EXPECT_THROW((void)b.bytes(5, 0), std::out_of_range);
  EXPECT_THROW((void)b.input_bytes(9), std::out_of_range);
}

TEST(VoqBank, EnqueueDequeueCounters) {
  VoqBank b{1, 2};
  (void)b.enqueue(0, pkt(0, 1, 10));
  (void)b.enqueue(0, pkt(0, 1, 10));
  (void)b.dequeue(0, 1);
  EXPECT_EQ(b.stats().enqueued_packets, 2u);
  EXPECT_EQ(b.stats().dequeued_packets, 1u);
}

TEST(VoqBank, EnqueueStampsNothingButStoresPacketVerbatim) {
  VoqBank b{1, 2};
  net::Packet p = pkt(0, 1, 64, 7);
  p.flow = 1234;
  (void)b.enqueue(0, p);
  const auto out = b.dequeue(0, 1);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->flow, 1234u);
  EXPECT_EQ(out->id, 7u);
  EXPECT_EQ(out->size_bytes, 64);
}

// Property sweep: random enqueue/dequeue interleavings conserve bytes.
class VoqConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VoqConservation, BytesConservedUnderRandomOps) {
  sim::Rng rng{GetParam()};
  VoqBank b{4, 4};
  std::int64_t in = 0, out = 0;
  for (int op = 0; op < 5000; ++op) {
    const auto i = static_cast<net::PortId>(rng.next_below(4));
    const auto j = static_cast<net::PortId>(rng.next_below(4));
    if (rng.bernoulli(0.6)) {
      const std::int64_t sz = rng.uniform_int(64, 1500);
      if (b.enqueue(i, pkt(i, j, sz))) in += sz;
    } else if (const auto p = b.dequeue(i, j)) {
      out += p->size_bytes;
    }
  }
  EXPECT_EQ(b.total_bytes(), in - out);
  std::int64_t residual = 0;
  for (net::PortId i = 0; i < 4; ++i) {
    for (net::PortId j = 0; j < 4; ++j) residual += b.bytes(i, j);
  }
  EXPECT_EQ(residual, in - out);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VoqConservation, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace xdrs::queueing
