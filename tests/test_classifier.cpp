// Tests for the processing-logic classifier: wildcard rules, priorities,
// the exact-match flow cache, and fallback behaviour.
#include <gtest/gtest.h>

#include "net/classifier.hpp"

namespace xdrs::net {
namespace {

Packet make_packet(std::uint32_t src_addr, std::uint32_t dst_addr, std::uint16_t dport,
                   IpProto proto = IpProto::kUdp) {
  Packet p;
  p.tuple.src_addr = src_addr;
  p.tuple.dst_addr = dst_addr;
  p.tuple.dst_port = dport;
  p.tuple.proto = proto;
  return p;
}

TEST(Rule, ExactFieldMatch) {
  Rule r;
  r.dst_addr_value = 0x0a000001;
  r.dst_addr_mask = 0xffffffff;
  EXPECT_TRUE(r.matches(make_packet(1, 0x0a000001, 80).tuple));
  EXPECT_FALSE(r.matches(make_packet(1, 0x0a000002, 80).tuple));
}

TEST(Rule, MaskedPrefixMatch) {
  Rule r;
  r.dst_addr_value = 0x0a000000;
  r.dst_addr_mask = 0xff000000;  // 10.0.0.0/8
  EXPECT_TRUE(r.matches(make_packet(0, 0x0a123456, 0).tuple));
  EXPECT_FALSE(r.matches(make_packet(0, 0x0b000000, 0).tuple));
}

TEST(Rule, WildcardMatchesEverything) {
  const Rule r;  // all masks zero, no proto
  EXPECT_TRUE(r.matches(make_packet(1, 2, 3).tuple));
  EXPECT_TRUE(r.matches(make_packet(0xffffffff, 0, 65535, IpProto::kTcp).tuple));
}

TEST(Rule, ProtocolMatch) {
  Rule r;
  r.proto = IpProto::kTcp;
  EXPECT_TRUE(r.matches(make_packet(1, 2, 3, IpProto::kTcp).tuple));
  EXPECT_FALSE(r.matches(make_packet(1, 2, 3, IpProto::kUdp).tuple));
}

TEST(Rule, PortMatch) {
  Rule r;
  r.dst_port_value = 5004;
  r.dst_port_mask = 0xffff;
  EXPECT_TRUE(r.matches(make_packet(1, 2, 5004).tuple));
  EXPECT_FALSE(r.matches(make_packet(1, 2, 5005).tuple));
}

TEST(Classifier, FallbackWhenNoRules) {
  Classifier c;
  const Verdict fb{7, TrafficClass::kBestEffort};
  EXPECT_EQ(c.classify(make_packet(1, 2, 3), fb), fb);
  EXPECT_EQ(c.stats().default_hits, 1u);
}

TEST(Classifier, RuleOverridesFallback) {
  Classifier c;
  Rule r;
  r.dst_port_value = 5004;
  r.dst_port_mask = 0xffff;
  r.verdict = Verdict{3, TrafficClass::kLatencySensitive};
  c.add_rule(r);

  const Verdict fb{9, TrafficClass::kBestEffort};
  const Verdict v = c.classify(make_packet(1, 2, 5004), fb);
  EXPECT_EQ(v.out_port, 3u);
  EXPECT_EQ(v.tclass, TrafficClass::kLatencySensitive);
  EXPECT_EQ(c.stats().rule_hits, 1u);
}

TEST(Classifier, LowerPriorityValueWins) {
  Classifier c;
  Rule broad;  // matches everything
  broad.priority = 10;
  broad.verdict = Verdict{1, TrafficClass::kBestEffort};
  Rule narrow;
  narrow.dst_port_value = 80;
  narrow.dst_port_mask = 0xffff;
  narrow.priority = 1;
  narrow.verdict = Verdict{2, TrafficClass::kThroughput};
  c.add_rule(broad);
  c.add_rule(narrow);

  EXPECT_EQ(c.classify(make_packet(1, 2, 80), {}).out_port, 2u);
  EXPECT_EQ(c.classify(make_packet(1, 2, 81), {}).out_port, 1u);
}

TEST(Classifier, InsertionOrderBreaksPriorityTies) {
  Classifier c;
  Rule first, second;  // both match everything at equal priority
  first.verdict = Verdict{1, TrafficClass::kBestEffort};
  second.verdict = Verdict{2, TrafficClass::kBestEffort};
  c.add_rule(first);
  c.add_rule(second);
  EXPECT_EQ(c.classify(make_packet(1, 2, 3), {}).out_port, 1u);
}

TEST(Classifier, CacheHitsOnRepeatedFlow) {
  Classifier c;
  Rule r;
  r.verdict = Verdict{5, TrafficClass::kThroughput};
  c.add_rule(r);

  const Packet p = make_packet(1, 2, 3);
  (void)c.classify(p, {});
  (void)c.classify(p, {});
  (void)c.classify(p, {});
  EXPECT_EQ(c.stats().lookups, 3u);
  EXPECT_EQ(c.stats().cache_hits, 2u);
  EXPECT_EQ(c.stats().rule_hits, 1u);
}

TEST(Classifier, AddRuleInvalidatesCache) {
  Classifier c;
  const Packet p = make_packet(1, 2, 80);
  EXPECT_EQ(c.classify(p, Verdict{9, TrafficClass::kBestEffort}).out_port, 9u);

  Rule r;
  r.dst_port_value = 80;
  r.dst_port_mask = 0xffff;
  r.verdict = Verdict{4, TrafficClass::kThroughput};
  c.add_rule(r);
  EXPECT_EQ(c.classify(p, Verdict{9, TrafficClass::kBestEffort}).out_port, 4u);
}

TEST(Classifier, ClearRulesRestoresFallback) {
  Classifier c;
  Rule r;
  r.verdict = Verdict{4, TrafficClass::kThroughput};
  c.add_rule(r);
  EXPECT_EQ(c.rule_count(), 1u);
  c.clear_rules();
  EXPECT_EQ(c.rule_count(), 0u);
  EXPECT_EQ(c.classify(make_packet(1, 2, 3), Verdict{8, TrafficClass::kBestEffort}).out_port, 8u);
}

TEST(Classifier, CacheCapacityIsRespected) {
  Classifier c{4};
  for (std::uint32_t i = 0; i < 100; ++i) {
    (void)c.classify(make_packet(i, i + 1, static_cast<std::uint16_t>(i)), {});
  }
  // All distinct flows, tiny cache: no crashes, lookups all counted.
  EXPECT_EQ(c.stats().lookups, 100u);
}

TEST(FiveTuple, EqualityAndHash) {
  const FiveTuple a{1, 2, 3, 4, IpProto::kTcp};
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(FiveTupleHash{}(a), FiveTupleHash{}(b));
  b.dst_port = 5;
  EXPECT_NE(a, b);
}

TEST(FiveTuple, ToStringFormat) {
  const FiveTuple t{0x0a000001, 0x0a000002, 1234, 80, IpProto::kTcp};
  EXPECT_EQ(t.to_string(), "10.0.0.1:1234 > 10.0.0.2:80/6");
}

TEST(TrafficClassNames, Distinct) {
  EXPECT_STRNE(to_string(TrafficClass::kLatencySensitive), to_string(TrafficClass::kThroughput));
  EXPECT_STRNE(to_string(TrafficClass::kThroughput), to_string(TrafficClass::kBestEffort));
}

}  // namespace
}  // namespace xdrs::net
