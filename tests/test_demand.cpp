// Tests for the demand matrix and the demand estimators.
#include <gtest/gtest.h>

#include <memory>

#include "demand/demand_matrix.hpp"
#include "demand/estimator.hpp"

namespace xdrs::demand {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

TEST(DemandMatrix, ConstructionValidation) {
  EXPECT_THROW(DemandMatrix(0, 3), std::invalid_argument);
  EXPECT_THROW(DemandMatrix(3, 0), std::invalid_argument);
}

TEST(DemandMatrix, SetGetAndTotal) {
  DemandMatrix m{3};
  m.set(0, 1, 100);
  m.set(2, 0, 50);
  EXPECT_EQ(m.at(0, 1), 100);
  EXPECT_EQ(m.at(2, 0), 50);
  EXPECT_EQ(m.at(1, 1), 0);
  EXPECT_EQ(m.total(), 150);
  m.set(0, 1, 30);  // overwrite adjusts total
  EXPECT_EQ(m.total(), 80);
}

TEST(DemandMatrix, UncheckedAccessorsTrackTotals) {
  DemandMatrix m{3};
  m.add_unchecked(0, 1, 100);
  m.add_unchecked(2, 2, 50);
  EXPECT_EQ(m.at_unchecked(0, 1), 100);
  EXPECT_EQ(m.at(2, 2), 50);  // checked view sees the same store
  EXPECT_EQ(m.total(), 150);
  m.add_unchecked(0, 1, -40);
  EXPECT_EQ(m.at_unchecked(0, 1), 60);
  EXPECT_EQ(m.total(), 110);
}

TEST(DemandMatrix, FillAndCopyFrom) {
  DemandMatrix m{2, 3};
  m.fill(7);
  EXPECT_EQ(m.at(1, 2), 7);
  EXPECT_EQ(m.total(), 7 * 6);
  EXPECT_THROW(m.fill(-1), std::invalid_argument);

  DemandMatrix src{2, 3};
  src.set(0, 0, 11);
  src.set(1, 2, 22);
  m.copy_from(src);  // same shape: reuses storage
  EXPECT_EQ(m, src);

  DemandMatrix other{5};
  other.copy_from(src);  // shape change
  EXPECT_EQ(other, src);
  EXPECT_EQ(other.inputs(), 2u);
  EXPECT_EQ(other.total(), 33);
}

TEST(DemandMatrix, AddAndSubtractClamped) {
  DemandMatrix m{2};
  m.add(0, 1, 100);
  m.subtract_clamped(0, 1, 30);
  EXPECT_EQ(m.at(0, 1), 70);
  m.subtract_clamped(0, 1, 1000);  // clamps at zero
  EXPECT_EQ(m.at(0, 1), 0);
  EXPECT_EQ(m.total(), 0);
}

TEST(DemandMatrix, NegativeRejected) {
  DemandMatrix m{2};
  EXPECT_THROW(m.set(0, 0, -5), std::invalid_argument);
  m.set(0, 0, 10);
  EXPECT_THROW(m.add(0, 0, -20), std::invalid_argument);
}

TEST(DemandMatrix, RowColSums) {
  DemandMatrix m{3};
  m.set(0, 1, 10);
  m.set(0, 2, 20);
  m.set(1, 2, 5);
  EXPECT_EQ(m.row_sum(0), 30);
  EXPECT_EQ(m.row_sum(1), 5);
  EXPECT_EQ(m.col_sum(2), 25);
  EXPECT_EQ(m.col_sum(0), 0);
  EXPECT_EQ(m.max_line_sum(), 30);
}

TEST(DemandMatrix, MaxElementAndNonzeroCount) {
  DemandMatrix m{2};
  EXPECT_EQ(m.max_element(), 0);
  m.set(0, 1, 7);
  m.set(1, 0, 3);
  EXPECT_EQ(m.max_element(), 7);
  EXPECT_EQ(m.nonzero_count(), 2u);
}

TEST(DemandMatrix, ForEachNonzeroVisitsExactlyPositives) {
  DemandMatrix m{2};
  m.set(0, 1, 5);
  m.set(1, 1, 9);
  std::int64_t seen = 0;
  int visits = 0;
  m.for_each_nonzero([&](net::PortId, net::PortId, std::int64_t v) {
    seen += v;
    ++visits;
  });
  EXPECT_EQ(seen, 14);
  EXPECT_EQ(visits, 2);
}

TEST(DemandMatrix, ClearAndResize) {
  DemandMatrix m{2};
  m.set(0, 0, 42);
  m.clear();
  EXPECT_EQ(m.total(), 0);
  m.resize(4, 4);
  EXPECT_EQ(m.inputs(), 4u);
  EXPECT_EQ(m.at(3, 3), 0);
}

TEST(DemandMatrix, OutOfRangeThrows) {
  DemandMatrix m{2};
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.set(0, 2, 1), std::out_of_range);
  EXPECT_THROW((void)m.row_sum(2), std::out_of_range);
  EXPECT_THROW((void)m.col_sum(2), std::out_of_range);
}

// ---------------------------------------------------- support bitmap views

/// Checks every bitmap invariant against the dense store: bit set iff the
/// element is strictly positive (rows AND transposed columns), tail bits
/// past the dimensions zero, and the popcount-derived nonzero count right.
void expect_support_consistent(const DemandMatrix& m) {
  for (net::PortId i = 0; i < m.inputs(); ++i) {
    for (net::PortId j = 0; j < m.outputs(); ++j) {
      const bool nz = m.at(i, j) > 0;
      EXPECT_EQ(m.has_demand(i, j), nz) << "(" << i << "," << j << ")";
      EXPECT_EQ(((m.row_support(i)[j / 64] >> (j % 64)) & 1u) != 0, nz);
      EXPECT_EQ(((m.col_support(j)[i / 64] >> (i % 64)) & 1u) != 0, nz);
    }
  }
  for (net::PortId i = 0; i < m.inputs(); ++i) {
    EXPECT_EQ(m.row_support(i)[m.words_per_row() - 1] & ~util::tail_mask(m.outputs()), 0u);
  }
  for (net::PortId j = 0; j < m.outputs(); ++j) {
    EXPECT_EQ(m.col_support(j)[m.words_per_col() - 1] & ~util::tail_mask(m.inputs()), 0u);
  }
  std::size_t expected = 0;
  for (net::PortId i = 0; i < m.inputs(); ++i) {
    for (net::PortId j = 0; j < m.outputs(); ++j) expected += m.at(i, j) > 0 ? 1 : 0;
  }
  EXPECT_EQ(m.nonzero_count(), expected);
}

TEST(DemandMatrix, SupportBitmapTracksEveryMutation) {
  // 65 outputs forces a two-word row with a 1-bit tail.
  DemandMatrix m{3, 65};
  m.set(0, 0, 5);
  m.set(0, 64, 7);  // tail-word bit
  m.set(1, 63, 1);  // last bit of word 0
  m.add(2, 10, 3);
  expect_support_consistent(m);

  m.set(0, 0, 0);  // drain via set
  m.subtract_clamped(0, 64, 100);  // drain via clamped subtraction
  m.add_unchecked(1, 63, -1);  // drain via the unchecked hot path
  expect_support_consistent(m);

  m.fill(9);
  expect_support_consistent(m);
  m.fill(0);
  expect_support_consistent(m);

  m.set(2, 2, 4);
  m.clear();
  expect_support_consistent(m);

  m.resize(65, 3);
  m.set(64, 2, 8);
  expect_support_consistent(m);

  DemandMatrix copy{1, 1};
  copy.copy_from(m);
  expect_support_consistent(copy);
}

TEST(DemandMatrix, EqualityComparesValuesNotJustSupport) {
  DemandMatrix a{2}, b{2};
  a.set(0, 0, 3);
  a.set(0, 1, 5);
  b.set(0, 0, 3);
  b.set(0, 1, 5);
  EXPECT_EQ(a, b);
  // Same shape, same support bitmap, same total — only the dense values
  // differ, so the equality must fall through to the value compare.
  b.set(0, 0, 5);
  b.set(0, 1, 3);
  EXPECT_FALSE(a == b);
}

// ------------------------------------------------------------- estimators

TEST(InstantaneousEstimator, TracksBacklogExactly) {
  InstantaneousEstimator e{2, 2};
  e.on_arrival(0, 1, 100, 1_us);
  e.on_arrival(0, 1, 50, 2_us);
  e.on_departure(0, 1, 60, 3_us);
  DemandMatrix m;
  e.snapshot(3_us, m);
  EXPECT_EQ(m.at(0, 1), 90);
  EXPECT_EQ(m.total(), 90);
}

TEST(InstantaneousEstimator, DepartureClampsAtZero) {
  InstantaneousEstimator e{2, 2};
  e.on_arrival(0, 1, 10, 1_us);
  e.on_departure(0, 1, 1000, 2_us);
  DemandMatrix m;
  e.snapshot(2_us, m);
  EXPECT_EQ(m.at(0, 1), 0);
}

TEST(EwmaEstimator, ValidatesAlpha) {
  EXPECT_THROW(EwmaEstimator(2, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(EwmaEstimator(2, 2, 1.5), std::invalid_argument);
}

TEST(EwmaEstimator, AlphaOneEqualsInstantaneous) {
  EwmaEstimator e{2, 2, 1.0};
  e.on_arrival(0, 1, 500, 1_us);
  DemandMatrix m;
  e.snapshot(1_us, m);
  EXPECT_EQ(m.at(0, 1), 500);
}

TEST(EwmaEstimator, SmoothsTowardsBacklog) {
  EwmaEstimator e{2, 2, 0.5};
  e.on_arrival(0, 1, 1000, 1_us);
  DemandMatrix m;
  e.snapshot(1_us, m);
  EXPECT_EQ(m.at(0, 1), 500);  // 0.5 * 1000 + 0.5 * 0
  e.snapshot(2_us, m);
  EXPECT_EQ(m.at(0, 1), 750);  // 0.5 * 1000 + 0.5 * 500
}

TEST(EwmaEstimator, DecaysAfterService) {
  EwmaEstimator e{2, 2, 0.5};
  e.on_arrival(0, 1, 1000, 1_us);
  DemandMatrix m;
  e.snapshot(1_us, m);
  e.on_departure(0, 1, 1000, 2_us);
  e.snapshot(2_us, m);
  EXPECT_EQ(m.at(0, 1), 250);  // halves each snapshot with empty backlog
}

TEST(WindowedRateEstimator, CountsArrivalsInWindow) {
  WindowedRateEstimator e{2, 2, 10_us, 4};  // 40 us window
  e.on_arrival(0, 1, 100, 5_us);
  e.on_arrival(0, 1, 200, 15_us);
  DemandMatrix m;
  e.snapshot(20_us, m);
  EXPECT_EQ(m.at(0, 1), 300);
}

TEST(WindowedRateEstimator, OldArrivalsExpire) {
  WindowedRateEstimator e{2, 2, 10_us, 4};
  e.on_arrival(0, 1, 100, 5_us);
  DemandMatrix m;
  e.snapshot(100_us, m);  // far beyond the 40 us window
  EXPECT_EQ(m.at(0, 1), 0);
}

TEST(WindowedRateEstimator, IgnoresDepartures) {
  WindowedRateEstimator e{2, 2, 10_us, 4};
  e.on_arrival(0, 1, 100, 5_us);
  e.on_departure(0, 1, 100, 6_us);
  DemandMatrix m;
  e.snapshot(7_us, m);
  EXPECT_EQ(m.at(0, 1), 100);  // offered rate, not backlog
}

TEST(WindowedRateEstimator, ValidatesWindow) {
  EXPECT_THROW(WindowedRateEstimator(2, 2, Time::zero(), 4), std::invalid_argument);
  EXPECT_THROW(WindowedRateEstimator(2, 2, 1_us, 0), std::invalid_argument);
}

TEST(HysteresisEstimator, SuppressesBelowOnThreshold) {
  auto inner = std::make_unique<InstantaneousEstimator>(2, 2);
  auto* raw = inner.get();
  HysteresisEstimator h{std::move(inner), 100, 50};
  raw->on_arrival(0, 1, 80, 1_us);
  DemandMatrix m;
  h.snapshot(1_us, m);
  EXPECT_EQ(m.at(0, 1), 0);  // below the on threshold
  raw->on_arrival(0, 1, 40, 2_us);
  h.snapshot(2_us, m);
  EXPECT_EQ(m.at(0, 1), 120);  // crossed it
}

TEST(HysteresisEstimator, StaysOnUntilOffThreshold) {
  auto inner = std::make_unique<InstantaneousEstimator>(2, 2);
  auto* raw = inner.get();
  HysteresisEstimator h{std::move(inner), 100, 50};
  raw->on_arrival(0, 1, 150, 1_us);
  DemandMatrix m;
  h.snapshot(1_us, m);
  EXPECT_EQ(m.at(0, 1), 150);
  raw->on_departure(0, 1, 80, 2_us);  // backlog 70: between thresholds
  h.snapshot(2_us, m);
  EXPECT_EQ(m.at(0, 1), 70);  // hysteresis keeps it visible
  raw->on_departure(0, 1, 30, 3_us);  // backlog 40 < off threshold
  h.snapshot(3_us, m);
  EXPECT_EQ(m.at(0, 1), 0);
}

TEST(HysteresisEstimator, ValidatesArguments) {
  EXPECT_THROW(HysteresisEstimator(nullptr, 10, 5), std::invalid_argument);
  EXPECT_THROW(HysteresisEstimator(std::make_unique<InstantaneousEstimator>(2, 2), 10, 20),
               std::invalid_argument);
}

TEST(Estimators, NamesAreDistinct) {
  InstantaneousEstimator a{2, 2};
  EwmaEstimator b{2, 2, 0.5};
  WindowedRateEstimator c{2, 2, 1_us, 2};
  EXPECT_STRNE(a.name(), b.name());
  EXPECT_STRNE(b.name(), c.name());
}

}  // namespace
}  // namespace xdrs::demand
