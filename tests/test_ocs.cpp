// Tests for the optical circuit switch model: dark periods, circuit
// connectivity, serialisation pacing and cut-by-reconfiguration semantics.
#include <gtest/gtest.h>

#include <vector>

#include "switching/ocs.hpp"

namespace xdrs::switching {
namespace {

using sim::Time;
using namespace xdrs::sim::literals;

OcsConfig base_config() {
  OcsConfig c;
  c.ports = 4;
  c.port_rate = sim::DataRate::gbps(10);
  c.reconfig_time = 1_us;
  c.fabric_latency = 100_ns;
  return c;
}

net::Packet pkt(net::PortId src, net::PortId dst, std::int64_t bytes) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.size_bytes = bytes;
  return p;
}

TEST(Ocs, ValidatesConfig) {
  sim::Simulator sim;
  OcsConfig c = base_config();
  c.ports = 0;
  EXPECT_THROW(OpticalCircuitSwitch(sim, c), std::invalid_argument);
  c = base_config();
  c.port_rate = sim::DataRate{};
  EXPECT_THROW(OpticalCircuitSwitch(sim, c), std::invalid_argument);
}

TEST(Ocs, StartsWithNoCircuits) {
  sim::Simulator sim;
  OpticalCircuitSwitch ocs{sim, base_config()};
  EXPECT_FALSE(ocs.is_dark());
  for (net::PortId i = 0; i < 4; ++i) {
    for (net::PortId j = 0; j < 4; ++j) EXPECT_FALSE(ocs.circuit_up(i, j));
  }
}

TEST(Ocs, DarkDuringReconfiguration) {
  sim::Simulator sim;
  OpticalCircuitSwitch ocs{sim, base_config()};
  ocs.reconfigure(schedulers::Matching::rotation(4, 1));
  EXPECT_TRUE(ocs.is_dark());
  EXPECT_FALSE(ocs.circuit_up(0, 1));  // configured but still dark
  sim.run_until(2_us);
  EXPECT_FALSE(ocs.is_dark());
  EXPECT_TRUE(ocs.circuit_up(0, 1));
  EXPECT_FALSE(ocs.circuit_up(0, 2));
}

TEST(Ocs, ConfiguredCallbackFiresAfterDarkTime) {
  sim::Simulator sim;
  OpticalCircuitSwitch ocs{sim, base_config()};
  std::vector<std::int64_t> stamps;
  ocs.set_configured_callback(
      [&](const schedulers::Matching&) { stamps.push_back(sim.now().ps()); });
  ocs.reconfigure(schedulers::Matching::rotation(4, 1));
  sim.run();
  ASSERT_EQ(stamps.size(), 1u);
  EXPECT_EQ(stamps[0], (1_us).ps());
}

TEST(Ocs, SendRequiresCircuit) {
  sim::Simulator sim;
  OpticalCircuitSwitch ocs{sim, base_config()};
  EXPECT_FALSE(ocs.send(0, pkt(0, 1, 1500)).has_value());  // no circuit at all
  ocs.reconfigure(schedulers::Matching::rotation(4, 1));
  EXPECT_FALSE(ocs.send(0, pkt(0, 1, 1500)).has_value());  // dark
  sim.run_until(1_us);
  EXPECT_TRUE(ocs.send(0, pkt(0, 1, 1500)).has_value());   // circuit up
  EXPECT_FALSE(ocs.send(0, pkt(0, 2, 1500)).has_value());  // wrong destination
}

TEST(Ocs, DeliveryTimingIncludesSerialisationAndLatency) {
  sim::Simulator sim;
  OpticalCircuitSwitch ocs{sim, base_config()};
  ocs.reconfigure(schedulers::Matching::rotation(4, 1));
  sim.run_until(1_us);

  std::vector<std::int64_t> deliveries;
  ocs.set_deliver_callback(
      [&](const net::Packet&, net::PortId) { deliveries.push_back(sim.now().ps()); });
  // 1500 + 20 B at 10 Gbps = 1216 ns serialisation + 100 ns fabric latency.
  const auto at = ocs.send(0, pkt(0, 1, 1500));
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(*at, sim.now() + Time::nanoseconds(1216) + 100_ns);
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], at->ps());
}

TEST(Ocs, BackToBackSendsAreSerialised) {
  sim::Simulator sim;
  OpticalCircuitSwitch ocs{sim, base_config()};
  ocs.reconfigure(schedulers::Matching::rotation(4, 1));
  sim.run_until(1_us);
  const auto first = ocs.send(0, pkt(0, 1, 1500));
  const auto second = ocs.send(0, pkt(0, 1, 1500));
  ASSERT_TRUE(first && second);
  EXPECT_EQ(*second - *first, Time::nanoseconds(1216));
  EXPECT_GT(ocs.port_free_at(0), sim.now());
}

TEST(Ocs, ReconfigurationCutsInFlightPacket) {
  sim::Simulator sim;
  OpticalCircuitSwitch ocs{sim, base_config()};
  ocs.reconfigure(schedulers::Matching::rotation(4, 1));
  sim.run_until(1_us);

  int delivered = 0;
  ocs.set_deliver_callback([&](const net::Packet&, net::PortId) { ++delivered; });
  ASSERT_TRUE(ocs.send(0, pkt(0, 1, 1500)).has_value());
  // Retune while the packet is still serialising: it must be lost.
  ocs.reconfigure(schedulers::Matching::rotation(4, 2));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ocs.stats().packets_cut_by_reconfig, 1u);
}

TEST(Ocs, CompletedPacketIsNotCut) {
  sim::Simulator sim;
  OpticalCircuitSwitch ocs{sim, base_config()};
  ocs.reconfigure(schedulers::Matching::rotation(4, 1));
  sim.run_until(1_us);

  int delivered = 0;
  ocs.set_deliver_callback([&](const net::Packet&, net::PortId) { ++delivered; });
  ASSERT_TRUE(ocs.send(0, pkt(0, 1, 64)).has_value());
  sim.run_until(10_us);  // delivery completes
  ocs.reconfigure(schedulers::Matching::rotation(4, 2));
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(ocs.stats().packets_cut_by_reconfig, 0u);
}

TEST(Ocs, ReconfigureWhileDarkRestartsDarkPeriod) {
  sim::Simulator sim;
  OpticalCircuitSwitch ocs{sim, base_config()};
  int configured = 0;
  ocs.set_configured_callback([&](const schedulers::Matching&) { ++configured; });
  ocs.reconfigure(schedulers::Matching::rotation(4, 1));
  sim.run_until(500_ns);  // halfway through the dark period
  ocs.reconfigure(schedulers::Matching::rotation(4, 2));
  sim.run_until(1200_ns);
  EXPECT_TRUE(ocs.is_dark());  // restarted: up at 1.5 us, not 1 us
  EXPECT_EQ(configured, 0);
  sim.run();
  EXPECT_EQ(configured, 1);
  EXPECT_TRUE(ocs.circuit_up(0, 2));
}

TEST(Ocs, StatsAccumulate) {
  sim::Simulator sim;
  OpticalCircuitSwitch ocs{sim, base_config()};
  ocs.reconfigure(schedulers::Matching::rotation(4, 1));
  sim.run_until(1_us);
  (void)ocs.send(0, pkt(0, 1, 1000));
  sim.run();
  EXPECT_EQ(ocs.stats().reconfigurations, 1u);
  EXPECT_EQ(ocs.stats().dark_time_total, 1_us);
  EXPECT_EQ(ocs.stats().packets_delivered, 1u);
  EXPECT_EQ(ocs.stats().bytes_delivered, 1000);
  EXPECT_GT(ocs.stats().busy_time_total, Time::zero());
}

TEST(Ocs, ZeroReconfigTimeActsAsCrossbar) {
  sim::Simulator sim;
  OcsConfig c = base_config();
  c.reconfig_time = Time::zero();
  OpticalCircuitSwitch ocs{sim, c};
  ocs.reconfigure(schedulers::Matching::rotation(4, 1));
  sim.run();  // zero-delay configured event
  EXPECT_FALSE(ocs.is_dark());
  EXPECT_TRUE(ocs.circuit_up(0, 1));
}

TEST(Ocs, DimensionMismatchThrows) {
  sim::Simulator sim;
  OpticalCircuitSwitch ocs{sim, base_config()};
  EXPECT_THROW(ocs.reconfigure(schedulers::Matching::rotation(5, 1)), std::invalid_argument);
  EXPECT_THROW((void)ocs.circuit_up(4, 0), std::out_of_range);
  EXPECT_THROW((void)ocs.port_free_at(9), std::out_of_range);
}

}  // namespace
}  // namespace xdrs::switching
